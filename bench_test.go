package thermemu

// Benchmarks regenerating the performance side of every table and figure in
// the paper's evaluation, plus ablations of the design choices called out
// in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Workload sizes are scaled down so one bench sweep stays in minutes; the
// cmd/experiments binary runs the full-size configurations.

import (
	"fmt"
	"io"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/bus"
	"thermemu/internal/core"
	"thermemu/internal/cpu"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/mem"
	"thermemu/internal/mparm"
	"thermemu/internal/thermal"
	"thermemu/internal/workloads"
)

// --- Table 1: the activity-based power evaluation hot path -----------------

func BenchmarkTable1PowerEval(b *testing.B) {
	fp := floorplan.FourARM11()
	ev := core.NewPowerEvaluator(fp)
	prev := emu.Snapshot{Cycle: 0, FreqHz: 500e6}
	cur := emu.Snapshot{Cycle: 1_000_000, FreqHz: 500e6}
	for i := 0; i < 4; i++ {
		prev.Cores = append(prev.Cores, cpu.Stats{})
		cur.Cores = append(cur.Cores, cpu.Stats{ActiveCycles: 600_000, IdleCycles: 400_000})
		prev.ICaches = append(prev.ICaches, mem.CacheStats{})
		cur.ICaches = append(cur.ICaches, mem.CacheStats{Reads: 700_000})
		prev.DCaches = append(prev.DCaches, mem.CacheStats{})
		cur.DCaches = append(cur.DCaches, mem.CacheStats{Reads: 200_000, Writes: 90_000})
		prev.Ctrls = append(prev.Ctrls, mem.CtrlStats{})
		cur.Ctrls = append(cur.Ctrls, mem.CtrlStats{PrivateReads: 250_000, SharedReads: 20_000})
	}
	out := make([]float64, len(fp.Components))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Powers(prev, cur, out); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: emulator vs MPARM-class baseline per row ---------------------

func benchWorkload(b *testing.B, cfg PlatformConfig, spec *Workload, baseline bool) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		var rs RunStats
		var err error
		if baseline {
			rs, err = RunWorkloadMPARM(cfg, spec)
		} else {
			rs, err = RunWorkload(cfg, spec)
		}
		if err != nil {
			b.Fatal(err)
		}
		cycles = rs.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
}

func BenchmarkTable3(b *testing.B) {
	matrix := func(cores int) *Workload {
		spec, err := Matrix(cores, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		return spec
	}
	dither := func() *Workload {
		spec, err := Dithering(4, 16)
		if err != nil {
			b.Fatal(err)
		}
		return spec
	}
	b.Run("Matrix1Core/Emulator", func(b *testing.B) { benchWorkload(b, DefaultPlatform(1), matrix(1), false) })
	b.Run("Matrix1Core/MPARM", func(b *testing.B) { benchWorkload(b, DefaultPlatform(1), matrix(1), true) })
	b.Run("Matrix4Cores/Emulator", func(b *testing.B) { benchWorkload(b, DefaultPlatform(4), matrix(4), false) })
	b.Run("Matrix4Cores/MPARM", func(b *testing.B) { benchWorkload(b, DefaultPlatform(4), matrix(4), true) })
	b.Run("Matrix8Cores/Emulator", func(b *testing.B) { benchWorkload(b, DefaultPlatform(8), matrix(8), false) })
	b.Run("Matrix8Cores/MPARM", func(b *testing.B) { benchWorkload(b, DefaultPlatform(8), matrix(8), true) })
	b.Run("Dithering4CoresBus/Emulator", func(b *testing.B) { benchWorkload(b, DefaultPlatform(4), dither(), false) })
	b.Run("Dithering4CoresBus/MPARM", func(b *testing.B) { benchWorkload(b, DefaultPlatform(4), dither(), true) })
	b.Run("Dithering4CoresNoC/Emulator", func(b *testing.B) { benchWorkload(b, NoCPlatform(4), dither(), false) })
	b.Run("Dithering4CoresNoC/MPARM", func(b *testing.B) { benchWorkload(b, NoCPlatform(4), dither(), true) })
}

// BenchmarkTable3MatrixTM measures the full closed thermal loop (the
// Matrix-TM row) on both kernels.
func BenchmarkTable3MatrixTM(b *testing.B) {
	build := func() CoEmulationConfig {
		cfg, err := core.Fig6Config(3, true)
		if err != nil {
			b.Fatal(err)
		}
		cfg.WindowPs = 500_000_000
		cfg.ThermalTimeScale = 200
		return cfg
	}
	b.Run("Emulator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(build(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MPARM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := runMPARMThermal(build()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 6: closed-loop sampling window cost ----------------------------

func BenchmarkFig6Window(b *testing.B) {
	cfg, err := core.Fig6Config(1_000_000_000, true) // effectively endless
	if err != nil {
		b.Fatal(err)
	}
	cfg.WindowPs = 100_000_000
	cfg.MaxCycles = uint64(b.N+1) * 50_000 // one 0.1 ms window per iteration at 500 MHz
	b.ResetTimer()
	if _, err := core.Run(cfg, nil); err != nil {
		b.Fatal(err)
	}
}

// --- In-text: thermal solver speed (2 s on a 660-cell floorplan) -----------

func benchSolver(b *testing.B, cells int) {
	host, err := NewThermalHost(FourARM11(), cells)
	if err != nil {
		b.Fatal(err)
	}
	pw := make([]float64, host.NumComponents())
	for i, c := range host.FP.Components {
		pw[i] = c.Model.Power(0.6, 500e6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := host.StepWindow(pw, 0.01); err != nil { // one 10 ms step
			b.Fatal(err)
		}
	}
	simSeconds := float64(b.N) * 0.01
	b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "sim_s/wall_s")
}

func BenchmarkThermal660Cells(b *testing.B) { benchSolver(b, 660) }

func BenchmarkThermal28Cells(b *testing.B) { benchSolver(b, 28) }

// BenchmarkThermalScaling sweeps grid size x worker count over the sharded
// solver, on square uniform dies rather than the ARM11 floorplan so the cell
// counts land exactly on powers of two. MinParallelCells is forced to 1 so
// every {cells}x{workers} case exercises the path it names; real speedup
// requires as many free host CPUs as workers.
func BenchmarkThermalScaling(b *testing.B) {
	const die = 10e-3
	for _, n := range []int{16, 32, 64} { // 256, 1024, 4096 silicon cells
		si := thermal.UniformGrid(die, die, n, n)
		cu := thermal.UniformGrid(die, die, n/2, n/2)
		for _, workers := range []int{1, 2, 4} {
			opt := thermal.DefaultOptions()
			opt.Workers = workers
			opt.MinParallelCells = 1
			b.Run(fmt.Sprintf("%dx%d", n*n, workers), func(b *testing.B) {
				m, err := thermal.NewModel(si, cu, opt)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < m.NumSurfaceCells(); i++ {
					m.SetPower(i, 2.0/float64(n*n)) // 2 W spread uniformly
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Step(0.002) // one 2 ms window
				}
				simSeconds := float64(b.N) * 0.002
				b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "sim_s/wall_s")
			})
		}
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkKernelAblation isolates the per-cycle cost of the two kernels on
// an identical spinning platform: the direct-dispatch emulation kernel vs
// the signal-level evaluate/update kernel.
func BenchmarkKernelAblation(b *testing.B) {
	spec, err := Matrix(4, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	prep := func() *emu.Platform {
		p := emu.MustNew(emu.DefaultConfig(4))
		for i, im := range spec.Programs {
			if err := p.LoadProgram(i, im); err != nil {
				b.Fatal(err)
			}
		}
		for _, blk := range spec.Shared {
			p.WriteShared(blk.Addr, blk.Data)
		}
		return p
	}
	b.Run("DirectDispatch", func(b *testing.B) {
		p := prep()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.StepOne()
		}
	})
	b.Run("SignalLevel", func(b *testing.B) {
		k := mparm.New(prep())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.StepOne()
		}
	})
}

// BenchmarkSnifferAblation compares emulation with count-logging only (free)
// against exhaustive event-logging into the BRAM ring (the configuration
// that can congest the Ethernet link).
func BenchmarkSnifferAblation(b *testing.B) {
	run := func(b *testing.B, logging bool) {
		cfg := emu.DefaultConfig(4)
		cfg.EventLogging = logging
		cfg.EventBufCap = 1 << 16
		p := emu.MustNew(cfg)
		p.OnBufferFull = func() bool {
			for p.Ring.Len() > 0 {
				p.Ring.Pop()
			}
			return true
		}
		spec, err := Matrix(4, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		for i, im := range spec.Programs {
			if err := p.LoadProgram(i, im); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.StepOne()
		}
	}
	b.Run("CountLogging", func(b *testing.B) { run(b, false) })
	b.Run("EventLogging", func(b *testing.B) { run(b, true) })
}

// BenchmarkThermalNonlinearAblation compares the paper's non-linear silicon
// conductivity against a constant-k model.
func BenchmarkThermalNonlinearAblation(b *testing.B) {
	run := func(b *testing.B, exp float64) {
		fp := floorplan.FourARM11()
		opt := thermal.DefaultOptions()
		opt.Props.SiKExp = exp
		host, err := core.NewThermalHost(fp, 128, opt)
		if err != nil {
			b.Fatal(err)
		}
		pw := make([]float64, host.NumComponents())
		for i, c := range fp.Components {
			pw[i] = c.Model.Power(0.6, 500e6)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := host.StepWindow(pw, 0.01); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NonlinearK", func(b *testing.B) { run(b, 4.0/3.0) })
	b.Run("ConstantK", func(b *testing.B) { run(b, 0) })
}

// BenchmarkGridAblation compares a uniform grid against the multi-resolution
// grid of Figure 3(a) at equal cell count.
func BenchmarkGridAblation(b *testing.B) {
	fp := floorplan.FourARM11()
	run := func(b *testing.B, si []thermal.Rect) {
		cu := thermal.UniformGrid(fp.DieW, fp.DieH, 3, 3)
		m, err := thermal.NewModel(si, cu, thermal.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		pm := floorplan.NewPowerMap(fp, si)
		pw := make([]float64, len(fp.Components))
		for i, c := range fp.Components {
			pw[i] = c.Model.Power(0.6, 500e6)
		}
		cell := pm.CellPowers(pw, nil)
		if err := m.SetPowers(cell); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step(0.01)
		}
	}
	b.Run("Uniform8x8", func(b *testing.B) { run(b, fp.Grid(8, 8)) })
	b.Run("MultiRes64", func(b *testing.B) { run(b, fp.GridTargetCells(64)) })
}

// BenchmarkEtherlinkFrame measures the MAC frame codec round trip for a
// 28-cell statistics payload.
func BenchmarkEtherlinkFrame(b *testing.B) {
	s := &etherlink.Stats{Cycle: 12345, WindowPs: 10_000_000_000, PowerUW: make([]uint32, 28)}
	for i := range s.PowerUW {
		s.PowerUW[i] = uint32(i) * 1000
	}
	f := &etherlink.Frame{Dst: etherlink.HostMAC, Src: etherlink.DeviceMAC,
		Type: etherlink.MsgStats, Payload: s.MarshalPayload()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := f.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		g, err := etherlink.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := etherlink.UnmarshalStats(g.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEtherlinkLoopback measures a full stats->temps exchange over the
// in-process transport.
func BenchmarkEtherlinkLoopback(b *testing.B) {
	dev, hostTr := etherlink.LoopbackPair(8)
	host, err := NewThermalHost(FourARM11(), 28)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- host.Serve(hostTr) }()
	d := etherlink.NewDispatcher(dev, nil, 0)
	s := &etherlink.Stats{Cycle: 1, WindowPs: 1_000_000, PowerUW: make([]uint32, host.NumComponents())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SendStats(s); err != nil {
			b.Fatal(err)
		}
		if _, err := d.RecvTemps(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := d.SendCtrl(etherlink.CtrlStop, 0); err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil && err != io.EOF {
		b.Fatal(err)
	}
}

// --- Microbenchmarks of the substrates --------------------------------------

func BenchmarkCPUStep(b *testing.B) {
	spec, err := workloads.Matrix(1, 16, 1_000_000, 64)
	if err != nil {
		b.Fatal(err)
	}
	p := emu.MustNew(emu.DefaultConfig(1))
	if err := p.LoadProgram(0, spec.Programs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StepOne()
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache(mem.CacheConfig{Name: "b", SizeBytes: 8192, LineBytes: 16, Assoc: 2, HitLatency: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i*64) % 65536
		if hit, _ := c.Access(addr, i%4 == 0); !hit {
			c.Refill(addr, false)
		}
	}
}

func BenchmarkBusTransaction(b *testing.B) {
	bus := emu.MustNew(emu.DefaultConfig(4)).Bus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Transaction(i%4, uint64(i), 16, i%2 == 0, 6)
	}
}

func BenchmarkNoCTransaction(b *testing.B) {
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Fig6NoC(4)
	p := emu.MustNew(cfg)
	port := p.Net.TargetPort(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Transaction(i%4, uint64(i), 16, i%2 == 0, 6)
	}
}

// BenchmarkArbitrationAblation compares the bus arbitration policies under
// four contending masters.
func BenchmarkArbitrationAblation(b *testing.B) {
	run := func(b *testing.B, arb bus.Arbitration) {
		cfg := bus.Custom(4, arb, 32)
		bs := bus.MustNew(cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.Transaction(i%4, uint64(i), 16, i%2 == 0, 6)
		}
	}
	b.Run("RoundRobin", func(b *testing.B) { run(b, bus.RoundRobin) })
	b.Run("FixedPriority", func(b *testing.B) { run(b, bus.FixedPriority) })
	b.Run("TDMA", func(b *testing.B) { run(b, bus.TDMA) })
}

// BenchmarkL2Ablation measures the platform cycle rate of a shared-traffic
// loop with and without a per-core L2.
func BenchmarkL2Ablation(b *testing.B) {
	prog := asm.MustAssemble(`
		li   r1, 0x10000000
	loop:
		lw   r2, 0(r1)
		lw   r3, 4(r1)
		sw   r2, 8(r1)
		b    loop
	`)
	run := func(b *testing.B, withL2 bool) {
		cfg := emu.DefaultConfig(2)
		if withL2 {
			cfg.L2 = &mem.CacheConfig{Name: "l2", SizeBytes: 8192, LineBytes: 32, Assoc: 2, HitLatency: 2}
		}
		p := emu.MustNew(cfg)
		for i := 0; i < 2; i++ {
			if err := p.LoadProgram(i, prog); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.StepOne()
		}
		b.ReportMetric(float64(p.TotalInstructions())/float64(b.N), "instr/cycle")
	}
	b.Run("NoL2", func(b *testing.B) { run(b, false) })
	b.Run("WithL2", func(b *testing.B) { run(b, true) })
}

// BenchmarkDualIssueAblation compares single- and dual-issue cores on the
// matrix kernel.
func BenchmarkDualIssueAblation(b *testing.B) {
	spec, err := workloads.Matrix(1, 12, 1_000_000, 64)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, kind cpu.Kind) {
		cfg := emu.DefaultConfig(1)
		cfg.CoreKind = kind
		p := emu.MustNew(cfg)
		if err := p.LoadProgram(0, spec.Programs[0]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.StepOne()
		}
		b.ReportMetric(float64(p.TotalInstructions())/float64(b.N), "instr/cycle")
	}
	b.Run("SingleIssue", func(b *testing.B) { run(b, cpu.Microblaze) })
	b.Run("DualIssueVLIW", func(b *testing.B) { run(b, cpu.VLIW2) })
}
