// Command benchgate enforces the closed-loop performance contract on a
// `go test -json` benchmark stream (BENCH_loop.json from CI):
//
//   - BenchmarkClosedLoopPipelinedLink must beat BenchmarkClosedLoopSerialLink
//     in windows/s: pipelining exists to hide link latency, and that win is
//     processor-count independent.
//   - BenchmarkClosedLoopPipelined must beat BenchmarkClosedLoopSerial when
//     the runner has more than one processor; on a single-CPU runner, where
//     overlap is physically impossible, it must stay within 10% of serial
//     (the pipeline's bookkeeping overhead budget).
//   - The pipelined steady state must not allocate per window.
//
// Usage: benchgate [BENCH_loop.json]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// event is the subset of test2json's output we care about.
type event struct {
	Action string
	Output string
}

// metrics of one benchmark result line.
type metrics struct {
	windowsPerS float64
	allocsPerW  float64
	hasAllocs   bool
	maxprocs    float64
}

var resultLine = regexp.MustCompile(`^(BenchmarkClosedLoop\w+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parse(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Reassemble the raw test output: test2json splits benchmark result
	// lines across events (name first, numbers later).
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate plain `go test -bench` output as input too.
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]metrics)
	for _, line := range strings.Split(text.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var mt metrics
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "windows/s":
				mt.windowsPerS = v
			case "allocs/window":
				mt.allocsPerW = v
				mt.hasAllocs = true
			case "maxprocs":
				mt.maxprocs = v
			}
		}
		out[m[1]] = mt
	}
	return out, nil
}

func main() {
	path := "BENCH_loop.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	res, err := parse(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	get := func(name string) metrics {
		m, ok := res[name]
		if !ok || m.windowsPerS == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from %s\n", name, path)
			os.Exit(2)
		}
		return m
	}
	serial := get("BenchmarkClosedLoopSerial")
	pipe := get("BenchmarkClosedLoopPipelined")
	serialLink := get("BenchmarkClosedLoopSerialLink")
	pipeLink := get("BenchmarkClosedLoopPipelinedLink")

	fail := 0
	check := func(ok bool, format string, args ...any) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			fail = 1
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}

	check(pipeLink.windowsPerS > serialLink.windowsPerS,
		"link: pipelined %.1f windows/s vs serial %.1f windows/s",
		pipeLink.windowsPerS, serialLink.windowsPerS)

	if serial.maxprocs > 1 {
		check(pipe.windowsPerS > serial.windowsPerS,
			"in-process (%d cpus): pipelined %.1f windows/s vs serial %.1f windows/s",
			int(serial.maxprocs), pipe.windowsPerS, serial.windowsPerS)
	} else {
		check(pipe.windowsPerS >= 0.9*serial.windowsPerS,
			"in-process (1 cpu, parity gate): pipelined %.1f windows/s vs serial %.1f windows/s",
			pipe.windowsPerS, serial.windowsPerS)
	}

	if pipe.hasAllocs {
		check(pipe.allocsPerW < 1,
			"pipelined steady state: %.2f allocs/window", pipe.allocsPerW)
	} else {
		check(false, "pipelined allocs/window metric missing")
	}

	os.Exit(fail)
}
