// Command benchgate enforces the benchmark performance contracts on
// `go test -json` benchmark streams recorded by CI.
//
// Closed-loop mode (default) checks BENCH_loop.json:
//
//   - BenchmarkClosedLoopPipelinedLink must beat BenchmarkClosedLoopSerialLink
//     in windows/s: pipelining exists to hide link latency, and that win is
//     processor-count independent.
//   - BenchmarkClosedLoopPipelined must beat BenchmarkClosedLoopSerial when
//     the runner has more than one processor; on a single-CPU runner, where
//     overlap is physically impossible, it must stay within 10% of serial
//     (the pipeline's bookkeeping overhead budget).
//   - The pipelined steady state must not allocate per window.
//
// Emulation-kernel mode (-emu) compares a fresh BENCH_emu.json against the
// committed baseline: every BenchmarkRunSerial/BenchmarkRunParallel variant
// present in the baseline must still exist and must retain at least -ratio
// of its cycles/s (the slack absorbs runner noise). Kernel PRs may only
// make these numbers go up; their golden digests prove nothing else moved.
//
// Coverage mode (-cover) computes total statement coverage from a
// `go test -coverprofile` file and gates it against the committed
// COVERAGE.baseline: a PR may not lower coverage by more than -slack
// percentage points. When coverage rises past the baseline the gate still
// passes but asks for a baseline refresh, so the floor ratchets upward.
//
// Sweep mode (-sweep) gates BenchmarkSweep* rows (from the go test
// benchmarks or a `cmd/sweep -out` artifact) against a baseline: every
// baseline row must retain -ratio of its windows/s, and when the canonical
// scaling rows are present the contracts hold — Workers4 beats Workers1
// (multi-CPU runners; within 15% on one CPU), Workers8 holds 80% of
// Workers4, and the checkpoint-shared warm-up grid beats the cold one in
// wall time.
//
// Promote mode (-promote) atomically replaces a baseline with its freshly
// regenerated BASELINE.new sibling, so refreshes are a rename — a stray
// `.new` file can never linger as the accidental baseline (CI rejects any
// tracked *.json.new).
//
// Usage: benchgate [BENCH_loop.json]
//
//	benchgate -emu [-ratio 0.8] NEW_BENCH_emu.json BASELINE_BENCH_emu.json
//	benchgate -cover [-slack 0.3] coverage.out COVERAGE.baseline
//	benchgate -sweep [-ratio 0.8] NEW_BENCH_sweep.json BASELINE_BENCH_sweep.json
//	benchgate -promote BASELINE_BENCH_emu.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output we care about.
type event struct {
	Action string
	Output string
}

// metrics of one benchmark result line.
type metrics struct {
	windowsPerS float64
	cyclesPerS  float64
	nsPerOp     float64
	allocsPerW  float64
	hasAllocs   bool
	maxprocs    float64
}

var (
	loopResultLine  = regexp.MustCompile(`^(BenchmarkClosedLoop\w+?)(?:-\d+)?\s+\d+\s+(.*)$`)
	emuResultLine   = regexp.MustCompile(`^(BenchmarkRun(?:Serial|Parallel)\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)
	sweepResultLine = regexp.MustCompile(`^(BenchmarkSweep\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)
)

// readText reassembles the raw test output of a `go test -json` stream:
// test2json splits benchmark result lines across events (name first,
// numbers later). Plain `go test -bench` output passes through untouched.
func readText(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return text.String(), nil
}

func parse(path string, result *regexp.Regexp) (map[string]metrics, error) {
	text, err := readText(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]metrics)
	for _, line := range strings.Split(text, "\n") {
		m := result.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var mt metrics
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "windows/s":
				mt.windowsPerS = v
			case "cycles/s":
				mt.cyclesPerS = v
			case "ns/op":
				mt.nsPerOp = v
			case "allocs/window":
				mt.allocsPerW = v
				mt.hasAllocs = true
			case "maxprocs":
				mt.maxprocs = v
			}
		}
		out[m[1]] = mt
	}
	return out, nil
}

// checker prints one ok/FAIL line per contract and remembers any failure.
type checker struct{ fail int }

func (c *checker) check(ok bool, format string, args ...any) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		c.fail = 1
	}
	fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
}

func gateLoop(path string) int {
	res, err := parse(path, loopResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}

	get := func(name string) metrics {
		m, ok := res[name]
		if !ok || m.windowsPerS == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from %s\n", name, path)
			os.Exit(2)
		}
		return m
	}
	serial := get("BenchmarkClosedLoopSerial")
	pipe := get("BenchmarkClosedLoopPipelined")
	serialLink := get("BenchmarkClosedLoopSerialLink")
	pipeLink := get("BenchmarkClosedLoopPipelinedLink")

	var c checker
	c.check(pipeLink.windowsPerS > serialLink.windowsPerS,
		"link: pipelined %.1f windows/s vs serial %.1f windows/s",
		pipeLink.windowsPerS, serialLink.windowsPerS)

	if serial.maxprocs > 1 {
		c.check(pipe.windowsPerS > serial.windowsPerS,
			"in-process (%d cpus): pipelined %.1f windows/s vs serial %.1f windows/s",
			int(serial.maxprocs), pipe.windowsPerS, serial.windowsPerS)
	} else {
		c.check(pipe.windowsPerS >= 0.9*serial.windowsPerS,
			"in-process (1 cpu, parity gate): pipelined %.1f windows/s vs serial %.1f windows/s",
			pipe.windowsPerS, serial.windowsPerS)
	}

	if pipe.hasAllocs {
		c.check(pipe.allocsPerW < 1,
			"pipelined steady state: %.2f allocs/window", pipe.allocsPerW)
	} else {
		c.check(false, "pipelined allocs/window metric missing")
	}
	return c.fail
}

func gateEmu(newPath, basePath string, ratio float64) int {
	fresh, err := parse(newPath, emuResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	base, err := parse(basePath, emuResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no kernel benchmark results in baseline %s\n", basePath)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var c checker
	for _, name := range names {
		old := base[name]
		got, ok := fresh[name]
		if !ok || got.cyclesPerS == 0 {
			c.check(false, "%s: present in baseline but missing from %s", name, newPath)
			continue
		}
		c.check(got.cyclesPerS >= ratio*old.cyclesPerS,
			"%s: %.3g cycles/s vs baseline %.3g (floor %.0f%%)",
			name, got.cyclesPerS, old.cyclesPerS, ratio*100)
	}
	// Variants that exist only in the fresh run are new benchmarks: report
	// them so the baseline gets refreshed, but do not fail.
	extra := make([]string, 0)
	for name := range fresh {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("new  %s: %.3g cycles/s (not in baseline)\n", name, fresh[name].cyclesPerS)
	}
	return c.fail
}

// gateSweep compares a fresh BenchmarkSweep* run against the committed
// baseline. Rows are matched by name: throughput rows (windows/s) must
// retain -ratio of the baseline rate, wall-time-only rows (ns/op) must not
// grow past 1/-ratio of the baseline. On top of per-row retention the
// scaling contracts bind whenever their canonical rows exist in the fresh
// run — they encode *why* the sweep coordinator is worth having.
func gateSweep(newPath, basePath string, ratio float64) int {
	fresh, err := parse(newPath, sweepResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	base, err := parse(basePath, sweepResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no sweep benchmark results in baseline %s\n", basePath)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var c checker
	for _, name := range names {
		old := base[name]
		got, ok := fresh[name]
		if !ok {
			c.check(false, "%s: present in baseline but missing from %s", name, newPath)
			continue
		}
		switch {
		case old.windowsPerS > 0:
			c.check(got.windowsPerS >= ratio*old.windowsPerS,
				"%s: %.1f windows/s vs baseline %.1f (floor %.0f%%)",
				name, got.windowsPerS, old.windowsPerS, ratio*100)
		case old.nsPerOp > 0:
			c.check(got.nsPerOp <= old.nsPerOp/ratio,
				"%s: %.3gs wall vs baseline %.3gs (ceiling %.0f%%)",
				name, got.nsPerOp/1e9, old.nsPerOp/1e9, 100/ratio)
		default:
			c.check(false, "%s: baseline row has neither windows/s nor ns/op", name)
		}
	}

	// Scaling contracts: aggregate throughput must grow with the worker
	// pool when the runner has CPUs to back it, and may only pay a bounded
	// coordination tax when it does not (single-CPU parity gates, like the
	// closed-loop pipeline's).
	w1, ok1 := fresh["BenchmarkSweepWorkers1"]
	w4, ok4 := fresh["BenchmarkSweepWorkers4"]
	w8, ok8 := fresh["BenchmarkSweepWorkers8"]
	if ok1 && ok4 {
		if w1.maxprocs > 1 {
			c.check(w4.windowsPerS > w1.windowsPerS,
				"scaling (%d cpus): 4 workers %.1f windows/s vs 1 worker %.1f windows/s",
				int(w1.maxprocs), w4.windowsPerS, w1.windowsPerS)
		} else {
			c.check(w4.windowsPerS >= 0.85*w1.windowsPerS,
				"scaling (1 cpu, parity gate): 4 workers %.1f windows/s vs 1 worker %.1f windows/s",
				w4.windowsPerS, w1.windowsPerS)
		}
	}
	if ok4 && ok8 {
		c.check(w8.windowsPerS >= 0.8*w4.windowsPerS,
			"saturation: 8 workers %.1f windows/s vs 4 workers %.1f windows/s (floor 80%%)",
			w8.windowsPerS, w4.windowsPerS)
	}
	cold, okC := fresh["BenchmarkSweepWarmupCold"]
	shared, okS := fresh["BenchmarkSweepWarmupShared"]
	if okC && okS {
		c.check(shared.nsPerOp < cold.nsPerOp,
			"warm-up sharing: shared prefix %.3gs wall vs cold %.3gs wall",
			shared.nsPerOp/1e9, cold.nsPerOp/1e9)
	}

	extra := make([]string, 0)
	for name := range fresh {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("new  %s: not in baseline\n", name)
	}
	return c.fail
}

// promote replaces a baseline with its regenerated BASELINE.new sibling in
// one rename, so a refresh either fully lands or leaves the old baseline
// untouched — and no *.json.new file survives to be committed by accident.
func promote(basePath string) int {
	newPath := basePath + ".new"
	if _, err := os.Stat(newPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: nothing to promote: %v\n", err)
		return 2
	}
	if err := os.Rename(newPath, basePath); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	fmt.Printf("promoted %s -> %s\n", newPath, basePath)
	return 0
}

// parseCoverProfile totals the statements of a `go test -coverprofile`
// file. With -coverpkg each test binary reports every instrumented package,
// so the same block appears once per binary; blocks are merged by key with
// execution counts summed, and a statement counts as covered when any
// binary ran it.
func parseCoverProfile(path string) (covered, total int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	type block struct {
		stmts int
		count int
	}
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("%s: malformed profile line %q", path, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, 0, fmt.Errorf("%s: malformed statement count in %q", path, line)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return 0, 0, fmt.Errorf("%s: malformed execution count in %q", path, line)
		}
		b := blocks[fields[0]]
		b.stmts = stmts
		b.count += count
		blocks[fields[0]] = b
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for _, b := range blocks {
		total += b.stmts
		if b.count > 0 {
			covered += b.stmts
		}
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("%s: no coverage blocks", path)
	}
	return covered, total, nil
}

// readBaselinePercent reads the committed coverage floor: the first
// non-comment line of the baseline file is the percentage.
func readBaselinePercent(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strconv.ParseFloat(strings.Fields(line)[0], 64)
	}
	return 0, fmt.Errorf("%s: no baseline percentage found", path)
}

func gateCover(profilePath, basePath string, slack float64) int {
	covered, total, err := parseCoverProfile(profilePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	base, err := readBaselinePercent(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	pct := 100 * float64(covered) / float64(total)

	var c checker
	c.check(pct >= base-slack,
		"coverage: %.1f%% of statements (%d/%d) vs baseline %.1f%% (slack %.1f pts)",
		pct, covered, total, base, slack)
	if pct > base+slack {
		fmt.Printf("note coverage rose %.1f pts past the baseline: refresh %s to %.1f\n",
			pct-base, basePath, pct)
	}
	return c.fail
}

func main() {
	emu := flag.Bool("emu", false, "gate emulation-kernel cycles/s against a baseline (args: NEW BASELINE)")
	ratio := flag.Float64("ratio", 0.8, "fraction of the baseline each benchmark must retain (-emu, -sweep)")
	cover := flag.Bool("cover", false, "gate total statement coverage against a baseline (args: PROFILE BASELINE)")
	slack := flag.Float64("slack", 0.3, "percentage points coverage may drop below the baseline (-cover)")
	sweepMode := flag.Bool("sweep", false, "gate sweep throughput and scaling contracts against a baseline (args: NEW BASELINE)")
	promotePath := flag.String("promote", "", "atomically rename BASELINE.new over this baseline and exit")
	flag.Parse()

	if *promotePath != "" {
		os.Exit(promote(*promotePath))
	}
	if *sweepMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchgate -sweep [-ratio R] NEW_BENCH_sweep.json BASELINE_BENCH_sweep.json")
			os.Exit(2)
		}
		os.Exit(gateSweep(flag.Arg(0), flag.Arg(1), *ratio))
	}
	if *emu {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchgate -emu [-ratio R] NEW_BENCH_emu.json BASELINE_BENCH_emu.json")
			os.Exit(2)
		}
		os.Exit(gateEmu(flag.Arg(0), flag.Arg(1), *ratio))
	}
	if *cover {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchgate -cover [-slack P] coverage.out COVERAGE.baseline")
			os.Exit(2)
		}
		os.Exit(gateCover(flag.Arg(0), flag.Arg(1), *slack))
	}

	path := "BENCH_loop.json"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	os.Exit(gateLoop(path))
}
