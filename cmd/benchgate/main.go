// Command benchgate enforces the benchmark performance contracts on
// `go test -json` benchmark streams recorded by CI.
//
// Closed-loop mode (default) checks BENCH_loop.json:
//
//   - BenchmarkClosedLoopPipelinedLink must beat BenchmarkClosedLoopSerialLink
//     in windows/s: pipelining exists to hide link latency, and that win is
//     processor-count independent.
//   - BenchmarkClosedLoopPipelined must beat BenchmarkClosedLoopSerial when
//     the runner has more than one processor; on a single-CPU runner, where
//     overlap is physically impossible, it must stay within 10% of serial
//     (the pipeline's bookkeeping overhead budget).
//   - The pipelined steady state must not allocate per window.
//
// Emulation-kernel mode (-emu) compares a fresh BENCH_emu.json against the
// committed baseline: every BenchmarkRunSerial/BenchmarkRunParallel variant
// present in the baseline must still exist and must retain at least -ratio
// of its cycles/s (the slack absorbs runner noise). Kernel PRs may only
// make these numbers go up; their golden digests prove nothing else moved.
//
// Usage: benchgate [BENCH_loop.json]
//        benchgate -emu [-ratio 0.8] NEW_BENCH_emu.json BASELINE_BENCH_emu.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output we care about.
type event struct {
	Action string
	Output string
}

// metrics of one benchmark result line.
type metrics struct {
	windowsPerS float64
	cyclesPerS  float64
	allocsPerW  float64
	hasAllocs   bool
	maxprocs    float64
}

var (
	loopResultLine = regexp.MustCompile(`^(BenchmarkClosedLoop\w+?)(?:-\d+)?\s+\d+\s+(.*)$`)
	emuResultLine  = regexp.MustCompile(`^(BenchmarkRun(?:Serial|Parallel)\S*?)(?:-\d+)?\s+\d+\s+(.*)$`)
)

// readText reassembles the raw test output of a `go test -json` stream:
// test2json splits benchmark result lines across events (name first,
// numbers later). Plain `go test -bench` output passes through untouched.
func readText(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return text.String(), nil
}

func parse(path string, result *regexp.Regexp) (map[string]metrics, error) {
	text, err := readText(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]metrics)
	for _, line := range strings.Split(text, "\n") {
		m := result.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var mt metrics
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "windows/s":
				mt.windowsPerS = v
			case "cycles/s":
				mt.cyclesPerS = v
			case "allocs/window":
				mt.allocsPerW = v
				mt.hasAllocs = true
			case "maxprocs":
				mt.maxprocs = v
			}
		}
		out[m[1]] = mt
	}
	return out, nil
}

// checker prints one ok/FAIL line per contract and remembers any failure.
type checker struct{ fail int }

func (c *checker) check(ok bool, format string, args ...any) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		c.fail = 1
	}
	fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
}

func gateLoop(path string) int {
	res, err := parse(path, loopResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}

	get := func(name string) metrics {
		m, ok := res[name]
		if !ok || m.windowsPerS == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from %s\n", name, path)
			os.Exit(2)
		}
		return m
	}
	serial := get("BenchmarkClosedLoopSerial")
	pipe := get("BenchmarkClosedLoopPipelined")
	serialLink := get("BenchmarkClosedLoopSerialLink")
	pipeLink := get("BenchmarkClosedLoopPipelinedLink")

	var c checker
	c.check(pipeLink.windowsPerS > serialLink.windowsPerS,
		"link: pipelined %.1f windows/s vs serial %.1f windows/s",
		pipeLink.windowsPerS, serialLink.windowsPerS)

	if serial.maxprocs > 1 {
		c.check(pipe.windowsPerS > serial.windowsPerS,
			"in-process (%d cpus): pipelined %.1f windows/s vs serial %.1f windows/s",
			int(serial.maxprocs), pipe.windowsPerS, serial.windowsPerS)
	} else {
		c.check(pipe.windowsPerS >= 0.9*serial.windowsPerS,
			"in-process (1 cpu, parity gate): pipelined %.1f windows/s vs serial %.1f windows/s",
			pipe.windowsPerS, serial.windowsPerS)
	}

	if pipe.hasAllocs {
		c.check(pipe.allocsPerW < 1,
			"pipelined steady state: %.2f allocs/window", pipe.allocsPerW)
	} else {
		c.check(false, "pipelined allocs/window metric missing")
	}
	return c.fail
}

func gateEmu(newPath, basePath string, ratio float64) int {
	fresh, err := parse(newPath, emuResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	base, err := parse(basePath, emuResultLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no kernel benchmark results in baseline %s\n", basePath)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var c checker
	for _, name := range names {
		old := base[name]
		got, ok := fresh[name]
		if !ok || got.cyclesPerS == 0 {
			c.check(false, "%s: present in baseline but missing from %s", name, newPath)
			continue
		}
		c.check(got.cyclesPerS >= ratio*old.cyclesPerS,
			"%s: %.3g cycles/s vs baseline %.3g (floor %.0f%%)",
			name, got.cyclesPerS, old.cyclesPerS, ratio*100)
	}
	// Variants that exist only in the fresh run are new benchmarks: report
	// them so the baseline gets refreshed, but do not fail.
	extra := make([]string, 0)
	for name := range fresh {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("new  %s: %.3g cycles/s (not in baseline)\n", name, fresh[name].cyclesPerS)
	}
	return c.fail
}

func main() {
	emu := flag.Bool("emu", false, "gate emulation-kernel cycles/s against a baseline (args: NEW BASELINE)")
	ratio := flag.Float64("ratio", 0.8, "fraction of baseline cycles/s each kernel benchmark must retain (-emu)")
	flag.Parse()

	if *emu {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchgate -emu [-ratio R] NEW_BENCH_emu.json BASELINE_BENCH_emu.json")
			os.Exit(2)
		}
		os.Exit(gateEmu(flag.Arg(0), flag.Arg(1), *ratio))
	}

	path := "BENCH_loop.json"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	os.Exit(gateLoop(path))
}
