// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	experiments -table1              Table 1  (component power models)
//	experiments -table2              Table 2  (thermal properties)
//	experiments -table3              Table 3  (emulator vs MPARM timing)
//	experiments -fig6 -out fig6.csv  Figure 6 (Matrix-TM thermal evolution)
//	experiments -resources           in-text FPGA utilisation figures
//	experiments -solver              in-text thermal-solver speed (660 cells)
//	experiments -steady              steady-state hotspot on 660 cells
//	experiments -all                 everything
//	experiments -scenario f.scn      run a declarative scenario, print its digest
//
// Workload sizes are scaled so the whole suite runs in minutes; the paper's
// original sizes can be requested with the scaling flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"thermemu"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "print Table 1")
		table2    = flag.Bool("table2", false, "print Table 2")
		table3    = flag.Bool("table3", false, "run the Table 3 comparison")
		fig6      = flag.Bool("fig6", false, "run the Figure 6 thermal experiment")
		resources = flag.Bool("resources", false, "print the FPGA utilisation figures")
		solver    = flag.Bool("solver", false, "measure thermal-solver speed on 660 cells")
		steady    = flag.Bool("steady", false, "relax the 660-cell floorplan to steady state")
		scenPath  = flag.String("scenario", "", "run this declarative scenario file and print its golden digest")

		matrixN     = flag.Int("matrix-n", 0, "Table 3 matrix dimension (0 = default)")
		matrixIters = flag.Int("matrix-iters", 0, "Table 3 matrix iterations per core")
		ditherSize  = flag.Int("dither-size", 0, "Table 3 dithering image edge")
		paperDither = flag.Bool("paper-dither", false, "use the paper's 128x128 images")
		tmIters     = flag.Int("tm-iters", 0, "Table 3 Matrix-TM iterations")
		skipTM      = flag.Bool("skip-tm", false, "omit the Matrix-TM row")
		parallel    = flag.Bool("parallel", false, "step the emulator on concurrent host threads")

		fig6Iters = flag.Int("fig6-iters", 0, "Figure 6 Matrix-TM iterations")
		fig6Scale = flag.Float64("fig6-timescale", 0, "Figure 6 thermal time compression (1 = paper-faithful)")
		fig6Pipe  = flag.Int("fig6-pipeline", 0, "Figure 6 pipeline depth (DFS sensor latency in windows; 0 = serial loop)")
		out       = flag.String("out", "fig6.csv", "Figure 6 CSV output path")

		solverSimS    = flag.Float64("solver-sim", 2.0, "seconds of thermal simulation to run")
		solverWorkers = flag.Int("solver-workers", 0, "thermal solver shards (0 = auto, 1 = serial)")
		steadyTol     = flag.Float64("steady-tol", 1e-6, "steady-state convergence tolerance, K")
		steadySweeps  = flag.Int("steady-sweeps", 20000, "steady-state sweep budget")
	)
	flag.Parse()

	if !(*all || *table1 || *table2 || *table3 || *fig6 || *resources || *solver || *steady || *scenPath != "") {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *scenPath != "" {
		if err := runScenario(*scenPath); err != nil {
			fail(err)
		}
	}

	if *all || *table1 {
		fmt.Println(thermemu.Table1())
	}
	if *all || *table2 {
		fmt.Println(thermemu.Table2())
	}
	if *all || *resources {
		s, err := thermemu.Resources()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		fmt.Println()
	}
	if *all || *solver {
		r, err := thermemu.SolverPerf(660, *solverSimS, *solverWorkers)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		fmt.Println()
	}
	if *all || *steady {
		r, err := thermemu.SteadyHotspot(660, *steadyTol, *steadySweeps)
		if err != nil && !errors.Is(err, thermemu.ErrNoConvergence) {
			fail(err)
		}
		if errors.Is(err, thermemu.ErrNoConvergence) {
			fmt.Fprintf(os.Stderr, "experiments: warning: %v — printing best-effort result\n", err)
		}
		fmt.Println(r)
		fmt.Println()
	}
	if *all || *table3 {
		fmt.Println("Table 3: timing comparison, MPARM-class baseline vs emulation kernel")
		rows, err := thermemu.Table3(thermemu.Table3Options{
			MatrixN: *matrixN, MatrixIters: *matrixIters,
			DitherSize: *ditherSize, PaperDither: *paperDither,
			TMIters: *tmIters, SkipTM: *skipTM, Parallel: *parallel,
		})
		if err != nil {
			fail(err)
		}
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Println()
	}
	runFig6(all, fig6, fig6Iters, fig6Scale, fig6Pipe, out, fail)
}

// runScenario executes one declarative scenario end to end with a golden
// digest attached, so a scenario-driven run can be checked bit for bit
// against its flag-driven twin (or a committed conformance digest).
func runScenario(path string) error {
	s, err := thermemu.LoadScenario(path)
	if err != nil {
		return err
	}
	cfg, err := s.CoEmulation()
	if err != nil {
		return err
	}
	cfg.Golden = thermemu.NewGoldenTrace()
	res, err := thermemu.RunCoEmulation(cfg, nil)
	if err != nil {
		return err
	}
	name := s.Name
	if name == "" {
		name = path
	}
	fmt.Printf("scenario %s: workload %s on %d cores over %s\n", name, cfg.Workload.Name, s.Cores, s.IC)
	fmt.Printf("  cycles %d, %d samples, max temp %.2f K, %d DFS events\n",
		res.Cycles, len(res.Samples), res.MaxTempK, res.DFSEvents)
	fmt.Printf("  golden digest %s over %d records\n", cfg.Golden.Hex(), cfg.Golden.Len())
	if !res.Done {
		fmt.Println("  note: run stopped before the workload halted")
	}
	return nil
}

func runFig6(all, fig6 *bool, fig6Iters *int, fig6Scale *float64, fig6Pipe *int, out *string, fail func(error)) {
	if *all || *fig6 {
		d, err := thermemu.Fig6Series(thermemu.Fig6Options{
			Iters: *fig6Iters, TimeScale: *fig6Scale, PipelineDepth: *fig6Pipe,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("Figure 6: Matrix-TM at 500 MHz\n")
		fmt.Printf("  without TM: %d samples, max %.2f K\n", len(d.NoTM), d.MaxNoTM)
		fmt.Printf("  with TM:    %d samples, max %.2f K, %d DFS events, %d throttled samples\n",
			len(d.WithTM), d.MaxWithTM, d.DFSEvents, d.ThrottledN)
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("  series written to %s\n", *out)
		fmt.Printf("  policy/floorplan variants of this figure run as a grid: " +
			"go run ./cmd/sweep -spec examples/scenarios/noc-grid.sweep -workers 4\n")
	}
}
