// Command floorgen inspects, converts and renders MPSoC floorplans — the
// "definition of the floorplanning to be evaluated" step of the paper's
// flow (Figure 5). It loads one of the built-in Figure 4 floorplans or a
// JSON file, validates it, reports the component inventory and the thermal
// grid, and optionally writes JSON and SVG versions.
//
//	floorgen -plan arm11 -cells 28 -svg arm11.svg -json arm11.json
//	floorgen -in custom.json -cells 128
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"thermemu"
	"thermemu/internal/floorplan"
)

func main() {
	var (
		plan    = flag.String("plan", "arm11", "built-in floorplan: arm7 | arm11")
		inPath  = flag.String("in", "", "load a JSON floorplan instead of a built-in")
		cells   = flag.Int("cells", 28, "thermal cell target for the grid report")
		jsonOut = flag.String("json", "", "write the floorplan as JSON to this path")
		svgOut  = flag.String("svg", "", "render the floorplan as SVG to this path")
	)
	flag.Parse()
	if err := run(*plan, *inPath, *cells, *jsonOut, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "floorgen:", err)
		os.Exit(1)
	}
}

func run(plan, inPath string, cells int, jsonOut, svgOut string) error {
	var fp *thermemu.Floorplan
	switch {
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		loaded, err := floorplan.ReadJSON(f)
		if err != nil {
			return err
		}
		fp = loaded
	case plan == "arm7":
		fp = thermemu.FourARM7()
	case plan == "arm11":
		fp = thermemu.FourARM11()
	default:
		return fmt.Errorf("unknown built-in floorplan %q", plan)
	}
	if err := fp.Validate(); err != nil {
		return err
	}

	fmt.Printf("floorplan %s: %.2f x %.2f mm die, %d components, %.0f%% utilised\n",
		fp.Name, fp.DieW*1e3, fp.DieH*1e3, len(fp.Components), 100*fp.Utilisation())
	fmt.Printf("%-12s %-10s %8s %8s %10s %12s\n",
		"component", "kind", "x (µm)", "y (µm)", "area mm²", "max power")
	comps := append([]floorplan.Component(nil), fp.Components...)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	var maxPw float64
	for _, c := range comps {
		fmt.Printf("%-12s %-10s %8.0f %8.0f %10.3f %9.1f mW\n",
			c.Name, c.Kind, c.Rect.X*1e6, c.Rect.Y*1e6, c.Rect.Area()*1e6, c.Model.MaxPowerW*1e3)
		maxPw += c.Model.MaxPowerW
	}
	fmt.Printf("total max power: %.3f W\n", maxPw)

	grid := fp.GridTargetCells(cells)
	host, err := thermemu.NewThermalHost(fp, cells)
	if err != nil {
		return err
	}
	fmt.Printf("thermal grid:    %d surface cells requested, %d built; RC network %d nodes, %d resistors\n",
		cells, len(grid), host.Model.NumCells(), host.Model.NumEdges())

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := fp.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	if svgOut != "" {
		f, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		if err := fp.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgOut)
	}
	return nil
}
