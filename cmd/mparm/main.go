// Command mparm runs a workload on the signal-level cycle-accurate baseline
// kernel (the MPARM-class simulator the framework is compared against in
// Table 3) and reports both the run and the kernel's signal-management
// work — the overhead the FPGA emulator avoids.
//
//	mparm -cores 4 -workload matrix -n 12 -iters 2
package main

import (
	"flag"
	"fmt"
	"os"

	"thermemu"
	"thermemu/internal/emu"
	"thermemu/internal/mparm"
	"thermemu/internal/workloads"
)

func main() {
	var (
		cores    = flag.Int("cores", 4, "emulated cores")
		workload = flag.String("workload", "matrix", workloads.NamesHelp())
		n        = flag.Int("n", 12, "matrix dimension / FIR taps / histogram bins")
		iters    = flag.Int("iters", 2, "repetition count (sustained-load iterations)")
		size     = flag.Int("size", 32, "dithering image edge")
		words    = flag.Int("words", 64, "stream length (membound, fir, histogram) / pipeline items")
		ic       = flag.String("ic", "opb", "interconnect: opb | plb | custom | noc")
	)
	flag.Parse()
	if err := run(*cores, *workload, *n, *iters, *size, *words, *ic); err != nil {
		fmt.Fprintln(os.Stderr, "mparm:", err)
		os.Exit(1)
	}
}

func run(cores int, workload string, n, iters, size, words int, ic string) error {
	cfg := thermemu.DefaultPlatform(cores)
	switch ic {
	case "opb":
	case "plb":
		cfg.IC = emu.ICBusPLB
	case "custom":
		cfg.IC = emu.ICBusCustom
	case "noc":
		cfg.IC = emu.ICNoC
		cfg.NoC = emu.Table3NoC(cores)
	default:
		return fmt.Errorf("unknown interconnect %q", ic)
	}
	spec, err := workloads.Build(workload, workloads.Params{
		Cores: cores, PrivKB: cfg.PrivKB, N: n, Iters: iters, Size: size, Words: words,
	})
	if err != nil {
		return err
	}

	p, err := emu.New(cfg)
	if err != nil {
		return err
	}
	for i, im := range spec.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			return err
		}
	}
	for _, b := range spec.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
	k := mparm.New(p)
	cycles, done := k.Run(1 << 62)
	if err := p.Fault(); err != nil {
		return err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return err
		}
	}
	if err := k.VerifyObserved(); err != nil {
		return err
	}
	st := k.Stats()
	fmt.Printf("workload:         %s (%s interconnect)\n", spec.Name, ic)
	fmt.Printf("cycles simulated: %d (done=%v, verified)\n", cycles, done)
	fmt.Printf("delta cycles:     %d (%.2f per clock)\n", st.DeltaCycles, float64(st.DeltaCycles)/float64(st.Cycles))
	fmt.Printf("process evals:    %d (%.1f per clock)\n", st.Evaluations, float64(st.Evaluations)/float64(st.Cycles))
	fmt.Printf("signal ops:       %d (%.1f per clock)\n", st.SignalOps, float64(st.SignalOps)/float64(st.Cycles))
	fmt.Printf("bank checksum:    %#x\n", k.BankChecksum())
	return nil
}
