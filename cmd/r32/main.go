// Command r32 is the developer toolchain for the framework's R32 ISA — the
// counterpart of the gcc/EDK toolchain in the paper's flow, used to author
// and debug custom workloads before loading them into the emulated MPSoC.
//
//	r32 asm [-o prog.hex] prog.s         assemble to the hex image format
//	r32 dis  prog.hex                    disassemble an image
//	r32 run [-trace] [-max N] prog.s     execute on a single-core platform
//
// The hex image format is line-oriented: "ADDR: WORD" in hexadecimal, plus
// an "entry: ADDR" header — trivially diffable and easy to post-process.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"thermemu/internal/asm"
	"thermemu/internal/emu"
	"thermemu/internal/isa"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "r32:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: r32 asm|dis|run ...")
	os.Exit(2)
}

func assembleFile(path string) (*asm.Image, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("asm: need exactly one source file")
	}
	im, err := assembleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeHex(w, im)
}

func writeHex(w *os.File, im *asm.Image) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "entry: %08x\n", im.Entry)
	for _, s := range im.Sections {
		for i := 0; i+4 <= len(s.Data); i += 4 {
			word := uint32(s.Data[i]) | uint32(s.Data[i+1])<<8 |
				uint32(s.Data[i+2])<<16 | uint32(s.Data[i+3])<<24
			fmt.Fprintf(bw, "%08x: %08x\n", s.Addr+uint32(i), word)
		}
		// Trailing bytes (non-word-multiple sections).
		for i := len(s.Data) &^ 3; i < len(s.Data); i++ {
			fmt.Fprintf(bw, "%08x: byte %02x\n", s.Addr+uint32(i), s.Data[i])
		}
	}
	return bw.Flush()
}

func readHex(path string) (entry uint32, words map[uint32]uint32, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	words = map[uint32]uint32{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "entry:") {
			if _, err := fmt.Sscanf(text, "entry: %x", &entry); err != nil {
				return 0, nil, fmt.Errorf("line %d: bad entry: %v", line, err)
			}
			continue
		}
		var addr, word uint32
		if _, err := fmt.Sscanf(text, "%x: %x", &addr, &word); err != nil {
			return 0, nil, fmt.Errorf("line %d: %v", line, err)
		}
		words[addr] = word
	}
	return entry, words, sc.Err()
}

func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dis: need exactly one hex image")
	}
	entry, words, err := readHex(fs.Arg(0))
	if err != nil {
		return err
	}
	addrs := make([]uint32, 0, len(words))
	for a := range words {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	fmt.Printf("entry: %08x\n", entry)
	for _, a := range addrs {
		w := words[a]
		in := isa.Decode(w)
		if isa.Validate(in) == nil {
			fmt.Printf("%08x: %08x  %s\n", a, w, in)
		} else {
			fmt.Printf("%08x: %08x  .word 0x%08x\n", a, w, w)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	trace := fs.Bool("trace", false, "print every committed instruction")
	maxCycles := fs.Uint64("max", 10_000_000, "cycle budget")
	dual := fs.Bool("vliw", false, "run on the dual-issue VLIW core")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one source file")
	}
	im, err := assembleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := emu.DefaultConfig(1)
	p, err := emu.New(cfg)
	if err != nil {
		return err
	}
	if err := p.LoadProgram(0, im); err != nil {
		return err
	}
	if *dual {
		p.Cores[0].SetIssueWidth(2)
	}
	if *trace {
		p.Cores[0].SetTracer(func(pc, word uint32) {
			fmt.Printf("%08x: %s\n", pc, isa.Decode(word))
		})
	}
	cycles, done := p.Run(*maxCycles)
	if err := p.Fault(); err != nil {
		return err
	}
	fmt.Printf("-- halted=%v after %d cycles, %d instructions\n",
		done, cycles, p.TotalInstructions())
	st := p.Cores[0].Stats()
	fmt.Printf("-- active %d, stall %d, idle %d, loads %d, stores %d, paired %d\n",
		st.ActiveCycles, st.StallCycles, st.IdleCycles, st.Loads, st.Stores, st.Paired)
	// Non-zero registers.
	for r := uint8(1); r < isa.NumRegs; r++ {
		if v := p.Cores[0].Reg(r); v != 0 {
			fmt.Printf("-- r%-2d = 0x%08x (%d)\n", r, v, int32(v))
		}
	}
	return nil
}
