// Command sweep runs design-space exploration grids: it expands a
// versioned sweep-spec file into (scenario × workload × policy × floorplan
// × frequency) points, dispatches them to workers with work-stealing
// straggler re-dispatch, optionally shares each platform's TM-off warm-up
// prefix through TMCK checkpoints, and merges the per-point results into
// the benchgate line format.
//
// Single machine (in-process worker pool):
//
//	sweep -spec examples/scenarios/noc-grid.sweep -workers 4 -out sweep.txt
//
// Distributed (one coordinator, workers anywhere):
//
//	sweep -spec grid.sweep -listen :9080
//	sweep -worker -connect coordinator:9080 -name rack2   (per worker host)
//
// Every point's golden digest is bit-identical to the same scenario run
// serially through cmd/thermemu — whichever worker ran it, however faulty
// the link (-fault injects chaos on in-process worker links).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"thermemu/internal/etherlink"
	"thermemu/internal/sweep"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "sweep spec file (required unless -worker)")
		workers   = flag.Int("workers", 4, "in-process worker pool size (coordinator without -listen)")
		outPath   = flag.String("out", "", "write the benchgate-format result lines to this file")
		straggler = flag.Duration("straggler", 2*time.Second, "in-flight age before an idle worker re-dispatches a point (negative disables stealing)")
		fault     = flag.String("fault", "", "inject link faults on in-process worker links, e.g. drop=0.01,dup=0.005,reorder=0.01,corrupt=0.001")
		faultSeed = flag.Int64("fault-seed", 1, "PRNG seed base for -fault (worker i uses seed+i)")
		listen    = flag.String("listen", "", "serve the grid over TCP on this address instead of the in-process pool")
		worker    = flag.Bool("worker", false, "run as a worker process instead of a coordinator")
		connect   = flag.String("connect", "", "coordinator address to dial (-worker)")
		name      = flag.String("name", "", "worker name reported to the coordinator (-worker; default host PID)")
		redial    = flag.Bool("redial", false, "worker: on session loss, redial the coordinator with backoff and start a fresh session")
		verbose   = flag.Bool("v", false, "log dispatch events")
	)
	flag.Parse()
	if err := run(*specPath, *workers, *outPath, *straggler, *fault, *faultSeed,
		*listen, *worker, *connect, *name, *redial, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(specPath string, workers int, outPath string, straggler time.Duration,
	fault string, faultSeed int64, listen string, worker bool, connect, name string,
	redial, verbose bool) error {
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	if worker {
		if connect == "" {
			return fmt.Errorf("-worker requires -connect")
		}
		return runWorker(connect, name, redial, logf)
	}
	if specPath == "" {
		return fmt.Errorf("-spec is required (or -worker -connect)")
	}
	spec, err := sweep.LoadSpec(specPath)
	if err != nil {
		return err
	}
	fcfg, err := etherlink.ParseFaultSpec(fault)
	if err != nil {
		return err
	}
	opt := sweep.Options{
		Workers:        workers,
		StragglerAfter: straggler,
		Fault:          fcfg,
		FaultSeed:      faultSeed,
		Logf:           logf,
	}
	dir := filepath.Dir(specPath)
	var out *sweep.Outcome
	if listen != "" {
		if !fcfg.Zero() {
			return fmt.Errorf("-fault applies to in-process worker links; with -listen, wrap the workers' dials instead")
		}
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		fmt.Printf("sweep: serving %s on %s — start workers with: sweep -worker -connect %s\n",
			spec.Name, ln.Addr(), ln.Addr())
		out, err = sweep.Serve(spec, dir, ln, opt)
		if err != nil {
			return err
		}
	} else {
		out, err = sweep.Run(spec, dir, opt)
		if err != nil {
			return err
		}
	}
	if err := out.WriteTable(os.Stdout); err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := out.WriteBench(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// runWorker serves sweep jobs as a worker process. Each session dials the
// coordinator through the connection supervisor (capped exponential
// backoff); a session lost mid-grid starts over with a fresh endpoint when
// -redial is set — the coordinator re-queues whatever the death stranded.
func runWorker(addr, name string, redial bool, logf func(string, ...any)) error {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &sweep.Worker{Name: name, Logf: logf}
	for attempt := 0; ; attempt++ {
		tr, err := etherlink.DialSupervised(etherlink.SupervisorConfig{
			Addr:         addr,
			GracefulStop: true,
			Logf:         logf,
		})
		if err != nil {
			if errors.Is(err, etherlink.ErrLinkDown) && attempt > 0 {
				// The grid is most likely finished and the coordinator gone.
				logf("sweep: %s: coordinator gone, exiting", name)
				return nil
			}
			return err
		}
		err = w.Serve(tr)
		if err == nil {
			return nil // done received
		}
		if !redial {
			return err
		}
		logf("sweep: %s: session lost (%v), redialing", name, err)
	}
}
