// Command thermemu runs the HW/SW co-emulation framework from the command
// line: it emulates an MPSoC running one of the paper's workloads, streams
// per-window power statistics to the SW thermal library (in-process by
// default, or to a remote cmd/thermserver over TCP), applies the selected
// run-time thermal-management policy, and reports the run.
//
// Examples:
//
//	thermemu -cores 4 -workload matrix -n 16 -iters 100
//	thermemu -cores 4 -workload matrix-tm -iters 400 -tm -csv run.csv
//	thermemu -cores 4 -workload dithering -size 64 -ic noc
//	thermemu -scenario examples/scenarios/fir.scn -digest   (declarative run)
//	thermemu -workload matrix-tm -host 127.0.0.1:9077   (remote thermal host)
//	thermemu -workload matrix-tm -iters 400 -digest -checkpoint ck/   (checkpointed)
//	thermemu -workload matrix-tm -iters 400 -digest -resume ck/win-000010.tmck
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"thermemu"
	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/noc"
	"thermemu/internal/scenario"
	"thermemu/internal/tm"
	"thermemu/internal/trace"
	"thermemu/internal/workloads"
)

func main() {
	var (
		scenPath  = flag.String("scenario", "", "run a declarative scenario file instead of the platform/workload flags")
		cores     = flag.Int("cores", 4, "emulated cores (1-8)")
		workload  = flag.String("workload", "matrix", workloads.NamesHelp())
		n         = flag.Int("n", 16, "matrix dimension / FIR taps / histogram bins")
		iters     = flag.Int("iters", 10, "repetition count (sustained-load iterations)")
		size      = flag.Int("size", 64, "dithering image edge")
		words     = flag.Int("words", 64, "stream length (membound, fir, histogram) / pipeline items")
		ic        = flag.String("ic", "opb", "interconnect: opb | plb | custom | noc")
		nocSpec   = flag.String("noc", "pair", "NoC topology when -ic noc: pair | mesh:WxH | ring:N")
		freqMHz   = flag.Int("freq", 0, "virtual clock in MHz (0 = platform default)")
		blocks    = flag.Bool("blocks", false, "threaded-code block dispatch: translate straight-line R32 blocks at first execution (bit-identical results, faster on compute-bound code)")
		speculate = flag.Bool("speculate", false, "speculative shared-path kernel: cores free-run against logged shared state, validated and committed at chunk boundaries (implies the parallel kernel; bit-identical results, scales with cores)")
		withTM    = flag.Bool("tm", false, "enable the 350K/340K threshold DFS policy")
		windowMs  = flag.Float64("window", 1.0, "sampling window in virtual ms")
		pipeline  = flag.Int("pipeline", 0, "pipeline depth: overlap emulation with the thermal solve at a sensor latency of this many windows (0 = serial loop)")
		tscale    = flag.Float64("timescale", 100, "thermal time compression (1 = paper-faithful)")
		cells     = flag.Int("cells", 28, "thermal cells for the floorplan grid")
		workers   = flag.Int("workers", 0, "thermal solver shards (0 = auto, 1 = serial)")
		csvPath   = flag.String("csv", "", "write per-window samples to this CSV file")
		hostAddr  = flag.String("host", "", "remote thermal server address (empty = in-process)")
		fault     = flag.String("fault", "", "inject link faults, e.g. drop=0.01,dup=0.005,reorder=0.01,corrupt=0.001,delay=2ms,cut=500 (applied to both directions)")
		faultSeed = flag.Int64("fault-seed", 1, "PRNG seed for -fault")
		redial    = flag.Bool("redial", false, "supervise the host connection: reconnect with capped exponential backoff on link faults")
		report    = flag.Bool("report", false, "print the detailed platform statistics report")
		digest    = flag.Bool("digest", false, "accumulate and print the run's golden conformance digest")
		ckptDir   = flag.String("checkpoint", "", "write window-boundary checkpoints (win-NNNNNN.tmck) into this directory")
		ckptEvery = flag.Int("checkpoint-every", 10, "checkpoint cadence in sampling windows for -checkpoint")
		resume    = flag.String("resume", "", "resume a run from this checkpoint file (continues its golden digest lineage; flags must match the original run)")
		fork      = flag.String("fork", "", "like -resume but as a new experiment branching off the snapshot (fresh digest lineage)")
		vcdPath   = flag.String("vcd", "", "write the run as a VCD waveform to this path")
		jsonPath  = flag.String("json", "", "write the run's samples as JSON to this path")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		execTrace = flag.String("exectrace", "", "write a runtime execution trace of the run to this path (inspect with go tool trace)")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	)
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := profiled(*cpuProf, *memProf, *execTrace, func() error {
		return run(*scenPath, setFlags, *cores, *workload, *n, *iters, *size, *words, *ic, *nocSpec, *freqMHz, *blocks, *speculate, *withTM,
			*windowMs, *pipeline, *tscale, *cells, *workers, *csvPath, *hostAddr, *fault, *faultSeed,
			*redial, *report, *digest, *ckptDir, *ckptEvery, *resume, *fork, *vcdPath, *jsonPath)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "thermemu:", err)
		os.Exit(1)
	}
}

// scenarioOwned lists the flags a scenario file replaces; setting one of
// them together with -scenario is a conflict, not a silent override.
var scenarioOwned = []string{
	"cores", "workload", "n", "iters", "size", "words", "ic", "noc", "freq",
	"blocks", "speculate", "tm", "window", "pipeline", "timescale", "cells", "workers",
	"fault", "fault-seed",
}

// profiled runs body under the requested pprof collectors and the runtime
// execution tracer. The CPU profile and the execution trace cover the whole
// run; the heap profile is written after a final GC so it reflects live
// steady-state memory, not garbage.
func profiled(cpuPath, memPath, tracePath string, body func() error) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return err
		}
		defer rtrace.Stop()
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memPath != "" {
		defer func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "thermemu:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "thermemu:", err)
			}
		}()
	}
	return body()
}

func run(scenPath string, setFlags map[string]bool,
	cores int, workload string, n, iters, size, words int, ic, nocSpec string, freqMHz int,
	blocks, speculate, withTM bool, windowMs float64, pipeline int, tscale float64, cells, workers int,
	csvPath, hostAddr, fault string, faultSeed int64, redial, report, digest bool,
	ckptDir string, ckptEvery int, resumePath, forkPath string,
	vcdPath, jsonPath string) error {
	var cfg thermemu.CoEmulationConfig
	if scenPath != "" {
		for _, name := range scenarioOwned {
			if setFlags[name] {
				return fmt.Errorf("-%s conflicts with -scenario: set it in the scenario file", name)
			}
		}
		s, err := scenario.Load(scenPath)
		if err != nil {
			return err
		}
		for _, w := range s.Warnings() {
			fmt.Fprintf(os.Stderr, "thermemu: warning: %s: %s\n", scenPath, w)
		}
		cfg, err = s.CoEmulation()
		if err != nil {
			return err
		}
		// The report lines below describe the run through these locals.
		cores, ic = s.Cores, s.IC
		windowMs, pipeline = s.WindowMs, s.Pipeline
		fault, faultSeed = s.Fault, s.FaultSeed
		if s.Digest {
			digest = true // the scenario pins its own evidence
		}
	} else {
		pcfg := thermemu.DefaultPlatform(cores)
		switch ic {
		case "opb":
			pcfg.IC = emu.ICBusOPB
		case "plb":
			pcfg.IC = emu.ICBusPLB
		case "custom":
			pcfg.IC = emu.ICBusCustom
		case "noc":
			pcfg.IC = emu.ICNoC
			topo, err := noc.ParseTopology(nocSpec)
			if err != nil {
				return err
			}
			for c := 0; c < cores; c++ {
				topo.Attach(c, c%topo.Switches)
			}
			pcfg.NoC = &emu.NoCSpec{Topo: topo, Cfg: noc.DefaultConfig(), MemSwitch: topo.Switches - 1}
		default:
			return fmt.Errorf("unknown interconnect %q", ic)
		}
		if freqMHz > 0 {
			pcfg.FreqHz = uint64(freqMHz) * 1e6
		}
		spec, err := workloads.Build(workload, workloads.Params{
			Cores: cores, PrivKB: pcfg.PrivKB, N: n, Iters: iters, Size: size, Words: words,
		})
		if err != nil {
			return err
		}
		if b, _ := workloads.Lookup(workload); b.ForceFreqMHz > 0 {
			pcfg.FreqHz = uint64(b.ForceFreqMHz) * 1e6 // the workload's pinned operating point
		}
		pcfg.Blocks = blocks
		if speculate {
			// The speculative kernel rides on the parallel kernel's chunked
			// epochs; selecting it selects both.
			pcfg.Parallel = true
			pcfg.Speculate = true
		}

		topt := thermemu.DefaultThermalOptions()
		if workers > 0 {
			topt.Workers = workers
		}
		host, err := thermemu.NewThermalHostWith(thermemu.FourARM11(), cells, topt)
		if err != nil {
			return err
		}
		cfg = thermemu.CoEmulationConfig{
			Platform:         pcfg,
			Workload:         spec,
			Host:             host,
			WindowPs:         uint64(windowMs * 1e9),
			ThermalTimeScale: tscale,
			PipelineDepth:    pipeline,
		}
		if withTM {
			cfg.Policy = tm.NewThresholdDFS()
		}
	}
	spec := cfg.Workload
	if digest {
		cfg.Golden = thermemu.NewGoldenTrace()
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return err
		}
		cfg.CheckpointEvery = ckptEvery
		cfg.CheckpointSink = func(c *thermemu.Checkpoint) error {
			name := fmt.Sprintf("win-%06d.tmck", c.Window)
			if c.Partial {
				name = fmt.Sprintf("win-%06d-partial.tmck", c.Window)
			}
			return c.WriteFile(filepath.Join(ckptDir, name))
		}
	}
	if resumePath != "" && forkPath != "" {
		return fmt.Errorf("-resume and -fork are mutually exclusive")
	}
	if path := resumePath + forkPath; path != "" {
		c, err := thermemu.ReadCheckpoint(path)
		if err != nil {
			return err
		}
		cfg.Resume = c
		cfg.Fork = forkPath != ""
		fmt.Printf("resuming:       %s (window %d, cycle %d, partial=%v)\n",
			path, c.Window, c.Platform.Clock.Cycle, c.Partial)
	}
	if hostAddr != "" {
		fcfg, err := etherlink.ParseFaultSpec(fault)
		if err != nil {
			return err
		}
		wrap := func(tr thermemu.Transport) thermemu.Transport {
			if fcfg.Zero() {
				return tr
			}
			return etherlink.NewFaultTransport(tr, faultSeed, fcfg, fcfg)
		}
		var tr thermemu.Transport
		if redial {
			tr, err = etherlink.DialSupervised(etherlink.SupervisorConfig{
				Addr:         hostAddr,
				GracefulStop: true,
				Wrap:         wrap,
				Logf:         func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
			})
		} else {
			tr, err = thermemu.DialThermalHost(hostAddr)
			if err == nil {
				tr = wrap(tr)
			}
		}
		if err != nil {
			return err
		}
		defer tr.Close()
		cfg.Transport = tr
		cfg.DrainPhysCycles = 1000
	}

	var csv *os.File
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		csv = f
		defer csv.Close()
		fmt.Fprintln(csv, "time_s,cycle,freq_mhz,max_temp_k,total_power_w,throttled")
	}
	onSample := func(s core.Sample) {
		if csv == nil {
			return
		}
		var pw float64
		for _, w := range s.CompPowerW {
			pw += w
		}
		throttled := 0
		if s.Throttled {
			throttled = 1
		}
		fmt.Fprintf(csv, "%.6f,%d,%.0f,%.3f,%.4f,%d\n",
			float64(s.TimePs)*1e-12, s.Cycle, float64(s.FreqHz)/1e6, s.MaxTempK, pw, throttled)
	}

	res, err := thermemu.RunCoEmulation(cfg, onSample)
	if err != nil {
		return err
	}
	fmt.Printf("workload:       %s on %d cores over %s\n", spec.Name, cores, ic)
	fmt.Printf("cycles:         %d (%.4f s virtual)\n", res.Cycles, res.VirtualS)
	fmt.Printf("wall time:      %v\n", res.Wall)
	fmt.Printf("samples:        %d (window %.2f ms)\n", len(res.Samples), windowMs)
	fmt.Printf("max temp:       %.2f K\n", res.MaxTempK)
	fmt.Printf("DFS events:     %d\n", res.DFSEvents)
	if sp := res.Speculation; sp.SpecChunks > 0 || sp.GatedChunks > 0 {
		clean := 0.0
		if sp.SpecChunks > 0 {
			clean = 100 * float64(sp.CleanChunks) / float64(sp.SpecChunks)
		}
		fmt.Printf("speculation:    %d chunks (%.1f%% clean), %d conflicts, %d poisoned, %d replays, %d gated\n",
			sp.SpecChunks, clean, sp.Conflicts, sp.Poisoned, sp.Replays, sp.GatedChunks)
	}
	if pipeline > 0 {
		fmt.Printf("pipeline:       depth %d (sensor latency %d windows), thermal lag %.3f ms frozen\n",
			pipeline, pipeline, float64(res.ThermalLagPs)*1e-9)
	}
	if digest {
		// The digest pins the whole run: identical flags must reproduce it
		// bit for bit (serial or parallel platform alike).
		fmt.Printf("golden digest:  %s over %d records\n", cfg.Golden.Hex(), cfg.Golden.Len())
	}
	if hostAddr != "" {
		fmt.Printf("link stats:     %d stats frames, %d temps frames, %d congestions, %d retries\n",
			res.Congestion.StatsSent, res.Congestion.TempsRecv, res.Congestion.Congestions,
			res.Congestion.Retries)
		fmt.Printf("link layer:     %s\n", res.Link)
	}
	if !res.Done {
		fmt.Println("note:           run stopped before the workload halted")
	}
	if report {
		fmt.Println()
		fmt.Println(res.Report)
	}
	writeArtifact := func(path string, write func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return f.Close()
	}
	if err := writeArtifact(vcdPath, func(f *os.File) error {
		return trace.WriteSamplesVCD(f, cfg.Host.FP, res.Samples)
	}); err != nil {
		return err
	}
	return writeArtifact(jsonPath, func(f *os.File) error {
		// The structured run document: summary (final temps, windows/s,
		// digest, thermal lag) plus the per-window sample series.
		sum := trace.NewRunSummary(spec.Name, cfg.Host.FP, res, len(res.Samples), cfg.Golden)
		return trace.WriteRunJSON(f, cfg.Host.FP, sum, res.Samples)
	})
}
