// Command thermserver is the host-PC side of the framework: it listens for
// the device (the FPGA-side emulation, cmd/thermemu with -host) on TCP,
// receives per-window power statistics as framework MAC frames, integrates
// the RC thermal model and feeds the new cell temperatures back in real
// time (Sections 5 and 6 of the paper).
//
//	thermserver -listen :9077 -floorplan arm11 -cells 28
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"thermemu"
	"thermemu/internal/etherlink"
)

func main() {
	var (
		listen  = flag.String("listen", ":9077", "TCP listen address")
		plan    = flag.String("floorplan", "arm11", "floorplan: arm7 | arm11")
		cells   = flag.Int("cells", 28, "thermal cells for the floorplan grid")
		workers = flag.Int("workers", 0, "thermal solver shards (0 = auto, 1 = serial)")
		once    = flag.Bool("once", false, "serve a single connection, then exit")
	)
	flag.Parse()
	if err := run(*listen, *plan, *cells, *workers, *once); err != nil {
		fmt.Fprintln(os.Stderr, "thermserver:", err)
		os.Exit(1)
	}
}

func run(listen, plan string, cells, workers int, once bool) error {
	var fp *thermemu.Floorplan
	switch plan {
	case "arm7":
		fp = thermemu.FourARM7()
	case "arm11":
		fp = thermemu.FourARM11()
	default:
		return fmt.Errorf("unknown floorplan %q", plan)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("thermserver: %s floorplan, %d thermal cells, listening on %s\n",
		fp.Name, cells, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		fmt.Printf("thermserver: device connected from %s\n", conn.RemoteAddr())
		// Fresh thermal state per connection, as the paper launches the
		// thermal tool per emulation run.
		opt := thermemu.DefaultThermalOptions()
		if workers > 0 {
			opt.Workers = workers
		}
		host, err := thermemu.NewThermalHostWith(fp, cells, opt)
		if err != nil {
			return err
		}
		tr := etherlink.NewTCP(conn, 64)
		if err := host.Serve(tr); err != nil {
			fmt.Printf("thermserver: session ended: %v\n", err)
		} else {
			fmt.Printf("thermserver: run complete (%.3f s simulated, max %.2f K)\n",
				host.Model.Time(), host.Model.MaxTemp())
		}
		tr.Close()
		if once {
			return nil
		}
	}
}
