// Command thermserver is the host-PC side of the framework: it listens for
// devices (the FPGA-side emulation, cmd/thermemu with -host) on TCP,
// receives per-window power statistics as framework MAC frames, integrates
// the RC thermal model and feeds the new cell temperatures back in real
// time (Sections 5 and 6 of the paper). Each connection is served
// concurrently with its own thermal state; per-connection failures are
// logged and do not take the server down.
//
//	thermserver -listen :9077 -floorplan arm11 -cells 28 -metrics :9078
//
// With -metrics set, GET /metrics returns a JSON snapshot of the server and
// aggregate link-layer counters (frames, retries, gaps, CRC errors,
// congestion freezes, latency histogram).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"thermemu"
	"thermemu/internal/core"
	"thermemu/internal/etherlink"
)

func main() {
	var (
		listen  = flag.String("listen", ":9077", "TCP listen address")
		plan    = flag.String("floorplan", "arm11", "floorplan: arm7 | arm11")
		cells   = flag.Int("cells", 28, "thermal cells for the floorplan grid")
		workers = flag.Int("workers", 0, "thermal solver shards (0 = auto, 1 = serial)")
		once    = flag.Bool("once", false, "serve a single connection, then exit")
		metrics = flag.String("metrics", "", "HTTP metrics listen address (empty = disabled)")
		idle    = flag.Duration("idle", 30*time.Second, "drop a connection silent for this long")
		plain   = flag.Bool("plain-link", false, "disable the NACK/resend reliability protocol")
	)
	flag.Parse()
	if err := run(*listen, *plan, *cells, *workers, *once, *metrics, *idle, *plain); err != nil {
		fmt.Fprintln(os.Stderr, "thermserver:", err)
		os.Exit(1)
	}
}

// serverStats aggregates server-level counters across all connections.
type serverStats struct {
	Accepted    atomic.Uint64
	Active      atomic.Int64
	RunsOK      atomic.Uint64
	RunsFailed  atomic.Uint64
	link        etherlink.LinkStats
	startedUnix int64
}

// metricsSnapshot is the /metrics JSON document.
type metricsSnapshot struct {
	UptimeS     float64                `json:"uptime_s"`
	Accepted    uint64                 `json:"connections_accepted"`
	Active      int64                  `json:"connections_active"`
	RunsOK      uint64                 `json:"runs_ok"`
	RunsFailed  uint64                 `json:"runs_failed"`
	Link        etherlink.LinkSnapshot `json:"link"`
}

func (s *serverStats) snapshot() metricsSnapshot {
	return metricsSnapshot{
		UptimeS:    time.Since(time.Unix(s.startedUnix, 0)).Seconds(),
		Accepted:   s.Accepted.Load(),
		Active:     s.Active.Load(),
		RunsOK:     s.RunsOK.Load(),
		RunsFailed: s.RunsFailed.Load(),
		Link:       s.link.Snapshot(),
	}
}

func run(listen, plan string, cells, workers int, once bool, metricsAddr string,
	idle time.Duration, plain bool) error {
	var fp *thermemu.Floorplan
	switch plan {
	case "arm7":
		fp = thermemu.FourARM7()
	case "arm11":
		fp = thermemu.FourARM11()
	default:
		return fmt.Errorf("unknown floorplan %q", plan)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer l.Close()

	stats := &serverStats{startedUnix: time.Now().Unix()}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(stats.snapshot())
		})
		ml, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		go http.Serve(ml, mux)
		fmt.Printf("thermserver: metrics on http://%s/metrics\n", ml.Addr())
	}

	fmt.Printf("thermserver: %s floorplan, %d thermal cells, listening on %s\n",
		fp.Name, cells, l.Addr())

	handle := func(conn net.Conn) {
		stats.Accepted.Add(1)
		stats.Active.Add(1)
		defer stats.Active.Add(-1)
		remote := conn.RemoteAddr()
		log.Printf("thermserver: device connected from %s", remote)
		// Fresh thermal state per connection, as the paper launches the
		// thermal tool per emulation run.
		opt := thermemu.DefaultThermalOptions()
		if workers > 0 {
			opt.Workers = workers
		}
		host, err := thermemu.NewThermalHostWith(fp, cells, opt)
		if err != nil {
			stats.RunsFailed.Add(1)
			log.Printf("thermserver: %s: thermal host: %v", remote, err)
			conn.Close()
			return
		}
		tr := etherlink.NewTCP(conn, 64)
		defer tr.Close()
		sopt := core.ServeOptions{Stats: &stats.link, Plain: plain}
		if idle > 0 {
			// The reliable recv loop's retry budget doubles as the idle
			// timeout: retries × timeout ≈ idle.
			sopt.RetryTimeout = 250 * time.Millisecond
			sopt.MaxRetries = int(idle / sopt.RetryTimeout)
		}
		if err := host.ServeWith(tr, sopt); err != nil {
			stats.RunsFailed.Add(1)
			log.Printf("thermserver: %s: session ended: %v", remote, err)
			return
		}
		stats.RunsOK.Add(1)
		log.Printf("thermserver: %s: run complete (%.3f s simulated, max %.2f K)",
			remote, host.Model.Time(), host.Model.MaxTemp())
	}

	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if once {
			handle(conn)
			return nil
		}
		go handle(conn)
	}
}
