package thermemu_test

import (
	"fmt"
	"log"
	"os"

	"thermemu"
)

// Example_runWorkload emulates the MATRIX workload on a 4-core platform and
// prints the verified run summary.
func Example_runWorkload() {
	spec, err := thermemu.Matrix(4, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := thermemu.RunWorkload(thermemu.DefaultPlatform(4), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

// Example_closedLoop runs the Figure 6 thermal experiment with the paper's
// threshold-DFS policy and streams each sampling window.
func Example_closedLoop() {
	cfg, err := thermemu.Fig6(400, true)
	if err != nil {
		log.Fatal(err)
	}
	out, err := thermemu.RunCoEmulation(cfg, func(s thermemu.Sample) {
		fmt.Printf("t=%.4fs T=%.1fK f=%.0fMHz\n",
			float64(s.TimePs)*1e-12, s.MaxTempK, float64(s.FreqHz)/1e6)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max %.1f K, %d DFS events\n", out.MaxTempK, out.DFSEvents)
}

// Example_remoteThermalHost splits the framework across a TCP connection:
// the device side dials a running cmd/thermserver.
func Example_remoteThermalHost() {
	tr, err := thermemu.DialThermalHost("127.0.0.1:9077")
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	cfg, err := thermemu.Fig6(400, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Transport = tr
	cfg.DrainPhysCycles = 1000
	out, err := thermemu.RunCoEmulation(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frames exchanged\n", out.Congestion.StatsSent+out.Congestion.TempsRecv)
}

// Example_table3 regenerates the paper's Table 3 comparison at reduced
// workload sizes.
func Example_table3() {
	rows, err := thermemu.Table3(thermemu.Table3Options{SkipTM: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
}

// Example_fig6CSV writes both Figure 6 curves to a CSV file.
func Example_fig6CSV() {
	data, err := thermemu.Fig6Series(thermemu.Fig6Options{})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("fig6.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := data.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
}
