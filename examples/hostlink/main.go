// hostlink demonstrates the paper's HW/SW split over a real network path:
// the SW thermal library runs as a TCP server (the "host PC"), the MPSoC
// emulation connects as the device (the "FPGA board"), and the two exchange
// the framework's MAC-format frames — power statistics one way, cell
// temperatures back — while the DFS policy acts on the returned readings.
// Both endpoints run in this one process for convenience; point the device
// at a remote cmd/thermserver to split them across machines.
package main

import (
	"fmt"
	"log"
	"net"

	"thermemu"
	"thermemu/internal/etherlink"
	"thermemu/internal/tm"
)

func main() {
	// Host side: a TCP listener running the thermal service.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("thermal host listening on %s\n", l.Addr())

	serveDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serveDone <- err
			return
		}
		host, err := thermemu.NewThermalHost(thermemu.FourARM11(), 28)
		if err != nil {
			serveDone <- err
			return
		}
		tr := etherlink.NewTCP(conn, 64)
		defer tr.Close()
		serveDone <- host.Serve(tr)
	}()

	// Device side: the emulated MPSoC dials the host and runs Matrix-TM
	// with the threshold DFS policy driven by the temperatures the host
	// computes.
	deviceHost, err := thermemu.NewThermalHost(thermemu.FourARM11(), 28)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := thermemu.DialThermalHost(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	cfg, err := thermemu.Fig6(150, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Host = deviceHost // provides geometry; thermal state lives remotely
	cfg.Transport = tr
	cfg.DrainPhysCycles = 1000
	cfg.WindowPs = 500_000_000
	cfg.ThermalTimeScale = 240
	cfg.Policy = tm.NewThresholdDFS()

	res, err := thermemu.RunCoEmulation(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal("host:", err)
	}

	fmt.Printf("device finished: %d cycles, %d sampling windows\n", res.Cycles, len(res.Samples))
	fmt.Printf("link traffic:    %d stats frames out, %d temps frames in, %d congestion freezes\n",
		res.Congestion.StatsSent, res.Congestion.TempsRecv, res.Congestion.Congestions)
	fmt.Printf("thermal result:  max %.2f K, %d DFS events driven by remote readings\n",
		res.MaxTempK, res.DFSEvents)
}
