// leakage_runaway explores a future-work scenario the paper motivates but
// does not evaluate: at 130 nm it ignores leakage ("its impact is very
// limited"), while citing work showing leakage grows with temperature. This
// example enables the framework's temperature-dependent leakage extension
// at a future-node setting, closing a positive feedback loop — hotter
// silicon leaks more, which heats it further — and shows how the paper's
// threshold-DFS policy (strengthened with DVFS voltage scaling) contains
// the runaway that an unmanaged die suffers.
package main

import (
	"fmt"
	"log"

	"thermemu"
	"thermemu/internal/core"
	"thermemu/internal/power"
	"thermemu/internal/tm"
)

func build(withTM bool) core.Config {
	cfg, err := thermemu.Fig6(250, withTM)
	if err != nil {
		log.Fatal(err)
	}
	cfg.WindowPs = 500_000_000
	cfg.ThermalTimeScale = 240
	// A 90 nm-class setting: leakage is significant (8% of max power at
	// ambient, doubling every 25 K) but not yet past the point where no
	// frequency reduction can save the die.
	leak := power.LeakageModel{FracAtRef: 0.08, RefK: 300, DoubleEveryK: 25, CapFrac: 2}
	cfg.Leakage = &leak
	cfg.DVFS = power.Default130nmCurve()
	if withTM {
		cfg.Policy = tm.NewThresholdDFS()
	}
	return cfg
}

func main() {
	fmt.Println("Matrix-TM at 500 MHz with future-node leakage (P_leak doubles every 20 K):")

	unmanaged, err := thermemu.RunCoEmulation(build(false), nil)
	if err != nil {
		log.Fatal(err)
	}
	managed, err := thermemu.RunCoEmulation(build(true), nil)
	if err != nil {
		log.Fatal(err)
	}

	peakPower := func(res *thermemu.CoEmulationResult) float64 {
		var max float64
		for _, s := range res.Samples {
			var p float64
			for _, w := range s.CompPowerW {
				p += w
			}
			if p > max {
				max = p
			}
		}
		return max
	}

	fmt.Printf("  unmanaged: max %.1f K, peak total power %.2f W over %d windows\n",
		unmanaged.MaxTempK, peakPower(unmanaged), len(unmanaged.Samples))
	fmt.Printf("  with TM:   max %.1f K, peak total power %.2f W, %d DFS events\n",
		managed.MaxTempK, peakPower(managed), managed.DFSEvents)

	saved := unmanaged.MaxTempK - managed.MaxTempK
	fmt.Printf("\nThe DFS+DVFS policy cut the peak by %.1f K.\n", saved)
	fmt.Println("Because leakage feeds back through temperature, every kelvin the")
	fmt.Println("policy saves also removes the leakage that kelvin would have added —")
	fmt.Println("run-time thermal management matters *more* at leaky nodes, which is")
	fmt.Println("exactly the exploration this framework was built to make fast.")
}
