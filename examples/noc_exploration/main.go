// noc_exploration is the architecture-exploration use case from the paper's
// introduction: sweep interconnect alternatives (OPB, PLB, the custom
// exploration bus with different arbitration policies, and NoC topologies)
// under the shared-memory-heavy DITHERING workload, and compare cycle
// counts, stall behaviour and interconnect statistics — the kind of
// early-design-stage tuning the framework's speed makes practical.
package main

import (
	"fmt"
	"log"

	"thermemu"
	"thermemu/internal/bus"
	"thermemu/internal/emu"
	"thermemu/internal/noc"
	"thermemu/internal/workloads"
)

const cores = 4

func main() {
	spec, err := workloads.Dithering(cores, 32)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		cfg  thermemu.PlatformConfig
	}
	custom := func(arb bus.Arbitration, width int) thermemu.PlatformConfig {
		cfg := thermemu.DefaultPlatform(cores)
		cfg.IC = emu.ICBusCustom
		bc := bus.Custom(cores, arb, width)
		cfg.Bus = &bc
		return cfg
	}
	nocCfg := func(spec *emu.NoCSpec) thermemu.PlatformConfig {
		cfg := thermemu.DefaultPlatform(cores)
		cfg.IC = emu.ICNoC
		cfg.NoC = spec
		return cfg
	}
	mesh := noc.Mesh(2, 2)
	for c := 0; c < cores; c++ {
		mesh.Attach(c, c)
	}
	plb := thermemu.DefaultPlatform(cores)
	plb.IC = emu.ICBusPLB

	variants := []variant{
		{"OPB (32-bit, round-robin)", thermemu.DefaultPlatform(cores)},
		{"PLB (64-bit, fixed-prio)", plb},
		{"custom bus, round-robin", custom(bus.RoundRobin, 32)},
		{"custom bus, TDMA", custom(bus.TDMA, 32)},
		{"custom bus, 64-bit RR", custom(bus.RoundRobin, 64)},
		{"NoC 2 switches (Table 3)", nocCfg(emu.Table3NoC(cores))},
		{"NoC 2x2 mesh", nocCfg(&emu.NoCSpec{Topo: mesh, Cfg: noc.DefaultConfig(), MemSwitch: 0})},
	}

	fmt.Printf("DITHERING, %d cores, 2 x 32x32 images, shared memory traffic:\n\n", cores)
	fmt.Printf("%-28s %12s %10s %14s %s\n", "interconnect", "cycles", "wall", "stall cycles", "interconnect stats")
	var baseline uint64
	for i, v := range variants {
		p, err := emu.New(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		for c, im := range spec.Programs {
			if err := p.LoadProgram(c, im); err != nil {
				log.Fatal(err)
			}
		}
		for _, b := range spec.Shared {
			p.WriteShared(b.Addr, b.Data)
		}
		rs, err := thermemu.RunWorkload(v.cfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		// Re-run on the instantiated platform for the detailed stats.
		if _, done := p.Run(1 << 62); !done {
			log.Fatalf("%s: did not finish", v.name)
		}
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		var stalls uint64
		for _, c := range p.Cores {
			stalls += c.Stats().StallCycles
		}
		var icStats string
		if p.Bus != nil {
			s := p.Bus.Stats()
			icStats = fmt.Sprintf("%d txns, %d wait cyc, util %.0f%%",
				s.Transactions, s.WaitCycles, 100*p.Bus.Utilisation(p.VPCM.Cycle()))
		} else {
			s := p.Net.Stats()
			icStats = fmt.Sprintf("%d pkts, %d flits, %d wait cyc",
				s.Packets, s.Flits, s.WaitCycles)
		}
		mark := ""
		if i == 0 {
			baseline = rs.Cycles
		} else if rs.Cycles < baseline {
			mark = " (faster)"
		}
		fmt.Printf("%-28s %12d %10v %14d %s%s\n",
			v.name, rs.Cycles, rs.Wall.Round(100_000), stalls, icStats, mark)
	}
	fmt.Println("\nAll variants produce bit-identical dithered images (verified against")
	fmt.Println("the reference implementation); only the timing differs.")
}
