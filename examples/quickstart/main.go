// Quickstart: emulate a 4-core MPSoC running the MATRIX workload, print the
// extracted statistics, then close the loop with the thermal library for a
// few sampling windows — the minimal end-to-end tour of the framework.
package main

import (
	"fmt"
	"log"

	"thermemu"
)

func main() {
	// 1. A Table-3-style platform: 4 cores, 4 KB I/D caches, 16 KB private
	//    memories, 1 MB shared memory behind the OPB bus.
	cfg := thermemu.DefaultPlatform(4)

	// 2. The MATRIX workload: each core multiplies 16x16 matrices in its
	//    private memory and the results are combined in shared memory.
	spec, err := thermemu.Matrix(4, 16, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run it on the fast emulation kernel. The result is verified
	//    against the Go reference implementation automatically.
	res, err := thermemu.RunWorkload(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plain emulation:")
	fmt.Println(" ", res)

	// 4. Close the loop: the same workload with the thermal library
	//    attached, sampling every 0.5 virtual ms. The ARM11 floorplan of
	//    the paper's Figure 4(b) is gridded into 28 thermal cells.
	host, err := thermemu.NewThermalHost(thermemu.FourARM11(), 28)
	if err != nil {
		log.Fatal(err)
	}
	cocfg := thermemu.CoEmulationConfig{
		Platform:         cfg,
		Workload:         spec,
		Host:             host,
		WindowPs:         500_000_000,
		ThermalTimeScale: 1000, // compress the seconds-scale transient
	}
	out, err := thermemu.RunCoEmulation(cocfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed-loop co-emulation:")
	fmt.Printf("  %d sampling windows, max temperature %.2f K\n",
		len(out.Samples), out.MaxTempK)
	last := out.Samples[len(out.Samples)-1]
	var totalPw float64
	for _, w := range last.CompPowerW {
		totalPw += w
	}
	fmt.Printf("  final window: %.3f W total power across %d floorplan components\n",
		totalPw, len(last.CompPowerW))
	for i, name := range []string{"core0", "icache0", "dcache0"} {
		idx := host.FP.Find(name)
		fmt.Printf("  %-8s %6.2f K  %8.4f W\n", name, last.CompTempK[idx], last.CompPowerW[idx])
		_ = i
	}

	// 5. The same story, declaratively: a scenario file names the platform,
	//    workload and thermal setup in one place, and builds the identical
	//    co-emulation configuration (run from the repository root).
	scn, err := thermemu.LoadScenario("examples/scenarios/fir.scn")
	if err != nil {
		log.Fatal(err)
	}
	scncfg, err := scn.CoEmulation()
	if err != nil {
		log.Fatal(err)
	}
	sout, err := thermemu.RunCoEmulation(scncfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q (workload %s on %d cores):\n", scn.Name, scn.Workload, scn.Cores)
	fmt.Printf("  %d sampling windows, max temperature %.2f K\n",
		len(sout.Samples), sout.MaxTempK)
}
