// thermal_tm reproduces the paper's Figure 6 study: the temperature
// evolution of the Matrix-TM workload on the 500 MHz NoC platform, first
// without thermal management and then with the 350 K / 340 K threshold DFS
// policy, writing both series to fig6.csv. The printed summary shows the
// paper's qualitative result: without TM the die heats far past 350 K,
// while the policy holds it inside the hysteresis band by bouncing the
// platform between 500 MHz and 100 MHz.
package main

import (
	"fmt"
	"log"
	"os"

	"thermemu"
)

func main() {
	data, err := thermemu.Fig6Series(thermemu.Fig6Options{
		Iters: 400, // Matrix-TM iterations (the paper runs 100 K)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 6: Matrix-TM at 500 MHz")
	fmt.Printf("  without TM: max %.2f K over %d windows\n", data.MaxNoTM, len(data.NoTM))
	fmt.Printf("  with TM:    max %.2f K over %d windows, %d DFS events\n",
		data.MaxWithTM, len(data.WithTM), data.DFSEvents)
	if data.MaxWithTM < data.MaxNoTM {
		fmt.Printf("  => the threshold policy cut the peak by %.1f K\n",
			data.MaxNoTM-data.MaxWithTM)
	}

	// A terminal sketch of the with-TM trajectory (star = throttled).
	fmt.Println("\n  with-TM trajectory (each row one sample):")
	step := len(data.WithTM) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(data.WithTM); i += step {
		s := data.WithTM[i]
		bar := int(s.MaxTempK-300) / 2
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		mark := " "
		if s.Throttled {
			mark = "*"
		}
		fmt.Printf("  %7.4fs %6.1fK %s|", float64(s.TimePs)*1e-12, s.MaxTempK, mark)
		for j := 0; j < bar; j++ {
			fmt.Print("#")
		}
		fmt.Println()
	}

	f, err := os.Create("fig6.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := data.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nboth series written to fig6.csv")
}
