package thermemu

import (
	"fmt"
	"io"
	"strings"
	"time"

	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/fpga"
	"thermemu/internal/mparm"
	"thermemu/internal/power"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
)

// This file is the experiment harness: one entry point per table and figure
// of the paper's evaluation (see DESIGN.md §4 for the index). cmd/experiments
// drives these from the command line and bench_test.go measures them.

// Table1 renders the paper's Table 1 (component power @130 nm) from the
// power library.
func Table1() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: power for most important components of an MPSoC design (130nm bulk CMOS)")
	fmt.Fprintf(&b, "%-18s %14s %18s %12s\n", "component", "max power", "max density", "area")
	for _, m := range power.Table1() {
		fmt.Fprintf(&b, "%-18s %11.4g W @ %3.0f MHz %8.3g W/mm² %8.3g mm²\n",
			m.Name, m.MaxPowerW, m.RefFreqHz/1e6, m.DensityWmm2, m.AreaMM2())
	}
	return b.String()
}

// Table2 renders the paper's Table 2 (thermal properties) from the thermal
// library defaults.
func Table2() string {
	p := thermal.DefaultProperties()
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: thermal properties")
	fmt.Fprintf(&b, "silicon thermal conductivity  %.0f·(300/T)^(%.3f) W/mK\n", p.SiK300, p.SiKExp)
	fmt.Fprintf(&b, "silicon specific heat         %.3e J/(m³·K)  (%.3e J/(µm³·K))\n", p.SiCv, p.SiCv*1e-18)
	fmt.Fprintf(&b, "silicon thickness             %.0f µm\n", p.SiThick*1e6)
	fmt.Fprintf(&b, "copper thermal conductivity   %.0f W/mK\n", p.CuK)
	fmt.Fprintf(&b, "copper specific heat          %.3e J/(m³·K)  (%.3e J/(µm³·K))\n", p.CuCv, p.CuCv*1e-18)
	fmt.Fprintf(&b, "copper thickness              %.0f µm\n", p.CuThick*1e6)
	fmt.Fprintf(&b, "package-to-air conductivity   %.0f K/W (low power)\n", p.PkgRes)
	return b.String()
}

// Table3Row is one line of the Table 3 reproduction.
type Table3Row struct {
	Name       string
	Cores      int
	Cycles     uint64
	MPARMWall  time.Duration
	EmuWall    time.Duration
	Speedup    float64
	EmuMHz     float64 // emulated cycles per wall second, in MHz
	MPARMkHz   float64 // baseline simulated cycles per wall second, in kHz
	PaperLabel string  // the corresponding row of the paper's table
}

// String formats the row like the paper's table, plus the measured speed-up
// and the effective simulation frequencies (the paper's framing: MPARM runs
// at ~120 kHz while the emulator runs at multiple MHz).
func (r Table3Row) String() string {
	return fmt.Sprintf("%-28s %12v %12v %7.1fx  emu %7.2f MHz vs sim %8.2f kHz  (paper: %s)",
		r.Name, r.MPARMWall.Round(time.Microsecond), r.EmuWall.Round(time.Microsecond),
		r.Speedup, r.EmuMHz, r.MPARMkHz, r.PaperLabel)
}

// Table3Options scales the Table 3 workloads. The defaults keep the full
// table under a couple of minutes of wall time; the paper's original sizes
// (e.g. 100 K Matrix-TM iterations) can be requested explicitly.
type Table3Options struct {
	MatrixN     int // matrix dimension (default 16)
	MatrixIters int // multiplications per core (default 4)
	DitherSize  int // image edge (default 64; paper uses 128)
	TMIters     int // Matrix-TM iterations (default 12)
	TMWindowPs  uint64
	TMTimeScale float64
	SkipTM      bool // omit the Matrix-TM row (it is the slowest)
	PaperDither bool // use the paper's full 128x128 images
	// Parallel steps the emulator side on concurrent host threads, the
	// software analogue of the FPGA fabric's spatial parallelism; on a
	// multi-core host this reproduces the paper's near-constant emulator
	// wall time as cores are added. Cycle-identity between the two kernels
	// is not checked in this mode.
	Parallel bool
}

func (o *Table3Options) fill() {
	if o.MatrixN == 0 {
		o.MatrixN = 12
	}
	if o.MatrixIters == 0 {
		o.MatrixIters = 2
	}
	if o.DitherSize == 0 {
		o.DitherSize = 32
	}
	if o.PaperDither {
		o.DitherSize = 128
	}
	if o.TMIters == 0 {
		o.TMIters = 8
	}
	if o.TMWindowPs == 0 {
		o.TMWindowPs = 1_000_000_000 // 1 ms keeps the TM row tractable
	}
	if o.TMTimeScale == 0 {
		o.TMTimeScale = 200
	}
}

// Table3 reproduces the paper's Table 3: the same six workload/platform
// configurations run on both the fast emulation kernel and the signal-level
// MPARM-class baseline, reporting wall times and speed-ups. Absolute times
// depend on the machine; the shape to compare against the paper is that the
// speed-up grows with core count and component count, and is largest for the
// thermal-management run.
func Table3(opts Table3Options) ([]Table3Row, error) {
	opts.fill()
	var rows []Table3Row

	matrix := func(cores int, label string) error {
		spec, err := Matrix(cores, opts.MatrixN, opts.MatrixIters)
		if err != nil {
			return err
		}
		cfg := DefaultPlatform(cores)
		cfg.CoreKinds = emu.Table3Cores(cores) // 1 PPC405 hard-core + Microblazes
		return appendRow(&rows, cfg, spec,
			fmt.Sprintf("Matrix (%d core)", cores), cores, label, opts.Parallel)
	}
	if err := matrix(1, "106 s vs 1.2 s (88x)"); err != nil {
		return nil, err
	}
	if err := matrix(4, "5'23\" vs 1.2 s (269x)"); err != nil {
		return nil, err
	}
	if err := matrix(8, "13'17\" vs 1.2 s (664x)"); err != nil {
		return nil, err
	}

	dspec, err := Dithering(4, opts.DitherSize)
	if err != nil {
		return nil, err
	}
	dbus := DefaultPlatform(4)
	dbus.CoreKinds = emu.Table3Cores(4)
	if err := appendRow(&rows, dbus, dspec,
		"Dithering (4 cores-bus)", 4, "2'35\" vs 0.18 s (861x)", opts.Parallel); err != nil {
		return nil, err
	}
	dnoc := NoCPlatform(4)
	dnoc.CoreKinds = emu.Table3Cores(4)
	if err := appendRow(&rows, dnoc, dspec,
		"Dithering (4 cores-NoC)", 4, "3'15\" vs 0.17 s (1147x)", opts.Parallel); err != nil {
		return nil, err
	}

	if !opts.SkipTM {
		row, err := matrixTMRow(opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func appendRow(rows *[]Table3Row, cfg PlatformConfig, spec *Workload, name string, cores int, label string, parallel bool) error {
	slow, err := RunWorkloadMPARM(cfg, spec)
	if err != nil {
		return fmt.Errorf("%s (baseline): %w", name, err)
	}
	var fast RunStats
	if parallel {
		fast, err = RunWorkloadParallel(cfg, spec, 0)
	} else {
		fast, err = RunWorkload(cfg, spec)
	}
	if err != nil {
		return fmt.Errorf("%s (emulator): %w", name, err)
	}
	if !parallel && fast.Cycles != slow.Cycles {
		return fmt.Errorf("%s: kernels disagree on cycles (%d vs %d)", name, fast.Cycles, slow.Cycles)
	}
	*rows = append(*rows, newTable3Row(name, cores, label, slow, fast))
	return nil
}

func newTable3Row(name string, cores int, label string, slow, fast RunStats) Table3Row {
	return Table3Row{
		Name: name, Cores: cores, Cycles: fast.Cycles,
		MPARMWall: slow.Wall, EmuWall: fast.Wall,
		Speedup:    slow.Wall.Seconds() / fast.Wall.Seconds(),
		EmuMHz:     float64(fast.Cycles) / fast.Wall.Seconds() / 1e6,
		MPARMkHz:   float64(slow.Cycles) / slow.Wall.Seconds() / 1e3,
		PaperLabel: label,
	}
}

// matrixTMRow runs the Matrix-TM workload with the full thermal loop on
// both kernels: co-emulation for the framework, and the same window loop
// around the signal-level kernel for the baseline (MPARM with its SW
// thermal library, the paper's 2-day configuration).
func matrixTMRow(opts Table3Options) (Table3Row, error) {
	build := func() (core.Config, error) {
		cfg, err := core.Fig6Config(opts.TMIters, true)
		if err != nil {
			return cfg, err
		}
		cfg.WindowPs = opts.TMWindowPs
		cfg.ThermalTimeScale = opts.TMTimeScale
		return cfg, nil
	}

	// Baseline: signal kernel + thermal window loop.
	cfg, err := build()
	if err != nil {
		return Table3Row{}, err
	}
	slowWall, cycles, err := runMPARMThermal(cfg)
	if err != nil {
		return Table3Row{}, err
	}

	// Framework: the closed-loop co-emulator.
	cfg, err = build()
	if err != nil {
		return Table3Row{}, err
	}
	start := time.Now()
	res, err := core.Run(cfg, nil)
	if err != nil {
		return Table3Row{}, err
	}
	fastWall := time.Since(start)
	if !res.Done {
		return Table3Row{}, fmt.Errorf("matrix-tm: emulator run incomplete")
	}
	return Table3Row{
		Name: "Matrix-TM (4 cores-NoC)", Cores: 4, Cycles: cycles,
		MPARMWall: slowWall, EmuWall: fastWall,
		Speedup:    slowWall.Seconds() / fastWall.Seconds(),
		EmuMHz:     float64(res.Cycles) / fastWall.Seconds() / 1e6,
		MPARMkHz:   float64(cycles) / slowWall.Seconds() / 1e3,
		PaperLabel: "2 days vs 5'02\" (1612x)",
	}, nil
}

// runMPARMThermal mirrors core.Run's window loop around the signal-level
// kernel, stepping the same thermal host and policy.
func runMPARMThermal(cfg core.Config) (time.Duration, uint64, error) {
	p, err := emu.New(cfg.Platform)
	if err != nil {
		return 0, 0, err
	}
	for i, im := range cfg.Workload.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			return 0, 0, err
		}
	}
	for _, b := range cfg.Workload.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
	k := mparm.New(p)
	eval := core.NewPowerEvaluator(cfg.Host.FP)
	powers := make([]float64, cfg.Host.NumComponents())
	tscale := cfg.ThermalTimeScale
	if tscale <= 0 {
		tscale = 1
	}
	start := time.Now()
	prev := p.Snapshot()
	for !p.AllHalted() {
		period := uint64(1e12) / p.VPCM.Frequency()
		n := cfg.WindowPs / period
		if n == 0 {
			n = 1
		}
		k.Step(n)
		if err := p.Fault(); err != nil {
			return 0, 0, err
		}
		snap := p.Snapshot()
		if _, err := eval.Powers(prev, snap, powers); err != nil {
			return 0, 0, err
		}
		dt := float64(snap.TimePs-prev.TimePs) * 1e-12 * tscale
		prev = snap
		cellTemps, err := cfg.Host.StepWindow(powers, dt)
		if err != nil {
			return 0, 0, err
		}
		if cfg.Policy != nil {
			compTemps := cfg.Host.ComponentTemps(cellTemps)
			sensors := make([]tm.Sensor, len(compTemps))
			for i := range compTemps {
				sensors[i] = tm.Sensor{Name: cfg.Host.FP.Components[i].Name, TempK: compTemps[i]}
			}
			if a := cfg.Policy.Update(sensors); a.SetFreqHz != 0 {
				p.VPCM.SetFrequency(a.SetFreqHz)
			}
		}
	}
	wall := time.Since(start)
	if err := k.VerifyObserved(); err != nil {
		return 0, 0, err
	}
	// The baseline host mutated cfg.Host's thermal state; reset it so the
	// caller can rebuild or reuse cleanly.
	cfg.Host.Model.Reset()
	return wall, p.VPCM.Cycle(), nil
}

// Fig6Options scales the Figure 6 reproduction.
type Fig6Options struct {
	Iters     int     // Matrix-TM iterations (paper: 100000)
	WindowPs  uint64  // sampling window (paper: 10 ms)
	TimeScale float64 // thermal time compression (1 = paper-faithful)
	MaxCycles uint64  // optional hard bound
	// PipelineDepth overlaps emulation with the thermal solve; DFS actions
	// land this many windows later than in the serial loop (0 = serial).
	PipelineDepth int
}

func (o *Fig6Options) fill() {
	if o.Iters == 0 {
		o.Iters = 400
	}
	if o.WindowPs == 0 {
		o.WindowPs = 500_000_000 // 0.5 ms virtual per sample
	}
	if o.TimeScale == 0 {
		o.TimeScale = 240
	}
}

// Fig6Data is the Figure 6 reproduction: the temperature evolution of the
// Matrix-TM workload at 500 MHz, without and with the threshold-DFS policy.
type Fig6Data struct {
	NoTM   []Sample
	WithTM []Sample
	// Summary numbers for EXPERIMENTS.md.
	MaxNoTM    float64
	MaxWithTM  float64
	DFSEvents  int
	ThrottledN int
}

// Fig6Series runs the two Figure 6 experiments.
func Fig6Series(opts Fig6Options) (*Fig6Data, error) {
	opts.fill()
	build := func(withTM bool) (core.Config, error) {
		cfg, err := core.Fig6Config(opts.Iters, withTM)
		if err != nil {
			return cfg, err
		}
		cfg.WindowPs = opts.WindowPs
		cfg.ThermalTimeScale = opts.TimeScale
		cfg.MaxCycles = opts.MaxCycles
		cfg.PipelineDepth = opts.PipelineDepth
		return cfg, nil
	}
	out := &Fig6Data{}
	cfg, err := build(false)
	if err != nil {
		return nil, err
	}
	noTM, err := core.Run(cfg, nil)
	if err != nil {
		return nil, err
	}
	out.NoTM = noTM.Samples
	out.MaxNoTM = noTM.MaxTempK

	cfg, err = build(true)
	if err != nil {
		return nil, err
	}
	withTM, err := core.Run(cfg, nil)
	if err != nil {
		return nil, err
	}
	out.WithTM = withTM.Samples
	out.MaxWithTM = withTM.MaxTempK
	out.DFSEvents = withTM.DFSEvents
	for _, s := range withTM.Samples {
		if s.Throttled {
			out.ThrottledN++
		}
	}
	return out, nil
}

// WriteCSV streams the Figure 6 series as CSV: virtual time, max
// temperature and frequency for both runs (the two curves of the figure).
func (d *Fig6Data) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,time_s,max_temp_k,freq_mhz,throttled"); err != nil {
		return err
	}
	emit := func(name string, ss []Sample) error {
		for _, s := range ss {
			throttled := 0
			if s.Throttled {
				throttled = 1
			}
			if _, err := fmt.Fprintf(w, "%s,%.6f,%.3f,%.0f,%d\n",
				name, float64(s.TimePs)*1e-12, s.MaxTempK, float64(s.FreqHz)/1e6, throttled); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("no-tm", d.NoTM); err != nil {
		return err
	}
	return emit("with-tm", d.WithTM)
}

// Resources reproduces the in-text FPGA utilisation figures: the Table 3
// bus design (66%), its NoC variant (80%) and the six-switch system (70%),
// plus the per-block costs.
func Resources() (string, error) {
	var b strings.Builder
	dev := fpga.V2VP30()
	fmt.Fprintf(&b, "per-block slice costs on the %s (13,696 slices):\n", dev.Name)
	for _, k := range []fpga.BlockKind{fpga.Microblaze, fpga.MemController, fpga.PrivateMem,
		fpga.CustomBus, fpga.SnifferEvent, fpga.SnifferCount, fpga.NoCSwitch} {
		c := fpga.SliceCost(k)
		fmt.Fprintf(&b, "  %-16s %5d slices (%.2f%%)\n", k, c, 100*float64(c)/float64(dev.Slices))
	}
	for _, d := range []struct {
		design fpga.Design
		paper  string
	}{
		{fpga.BusDesign(1, 3, 10, 4), "paper: 66%"},
		{fpga.NoCDesign(1, 3, 2, 10, 4), "paper: 80%"},
		{fpga.NoCDesign(0, 2, 6, 8, 2), "paper: 70%"},
	} {
		rep, err := fpga.Estimate(d.design, dev)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n%s   [%s]\n", rep, d.paper)
	}
	return b.String(), nil
}

// SolverPerfResult reports the thermal-solver throughput experiment (the
// paper analyses 2 s of simulation on a 660-cell floorplan in 1.65 s on a
// 3 GHz Pentium 4).
type SolverPerfResult struct {
	Cells     int // RC nodes in the model
	Workers   int // solver shards actually used
	SimS      float64
	Wall      time.Duration
	RealTimeX float64 // simulated seconds per wall second
}

// String formats the result next to the paper's reference point.
func (r SolverPerfResult) String() string {
	return fmt.Sprintf("thermal solver: %.1f s simulated on %d cells (%d workers) in %v (%.1fx real time; paper: 2 s in 1.65 s)",
		r.SimS, r.Cells, r.Workers, r.Wall.Round(time.Millisecond), r.RealTimeX)
}

// SolverPerf measures the RC solver on a floorplan gridded to surfaceCells
// bottom cells, stepping simS simulated seconds in 10 ms windows under a
// representative ARM11 load. workers sets thermal.Options.Workers (<= 0
// leaves the auto GOMAXPROCS default); sharding only engages above the
// model's cell threshold, so small grids stay on the serial path either way.
func SolverPerf(surfaceCells int, simS float64, workers int) (SolverPerfResult, error) {
	opt := DefaultThermalOptions()
	if workers > 0 {
		opt.Workers = workers
	}
	host, err := NewThermalHostWith(FourARM11(), surfaceCells, opt)
	if err != nil {
		return SolverPerfResult{}, err
	}
	powers := make([]float64, host.NumComponents())
	for i, c := range host.FP.Components {
		powers[i] = c.Model.Power(0.6, 500e6)
	}
	start := time.Now()
	for t := 0.0; t < simS; t += 0.01 {
		if _, err := host.StepWindow(powers, 0.01); err != nil {
			return SolverPerfResult{}, err
		}
	}
	wall := time.Since(start)
	return SolverPerfResult{
		Cells: host.Model.NumCells(), Workers: host.Model.Workers(),
		SimS: simS, Wall: wall,
		RealTimeX: simS / wall.Seconds(),
	}, nil
}

// SteadyHotspotResult reports the steady-state hotspot experiment.
type SteadyHotspotResult struct {
	Cells     int
	Sweeps    int
	MaxTempK  float64
	Converged bool
}

// String formats the result, flagging a best-effort (non-converged) answer.
func (r SteadyHotspotResult) String() string {
	status := "converged"
	if !r.Converged {
		status = "NOT converged (best effort)"
	}
	return fmt.Sprintf("steady-state hotspot: %.2f K on %d cells after %d sweeps (%s)",
		r.MaxTempK, r.Cells, r.Sweeps, status)
}

// SteadyHotspot relaxes the FourARM11 floorplan under its full-utilisation
// power vector to thermal equilibrium and reports the hotspot. When the
// sweep budget is exhausted the error wraps ErrNoConvergence and the result
// still carries the best-effort temperatures, so callers (cmd/experiments)
// can branch with errors.Is instead of parsing the message.
func SteadyHotspot(surfaceCells int, tol float64, maxSweeps int) (SteadyHotspotResult, error) {
	host, err := NewThermalHost(FourARM11(), surfaceCells)
	if err != nil {
		return SteadyHotspotResult{}, err
	}
	powers := make([]float64, host.NumComponents())
	for i, c := range host.FP.Components {
		powers[i] = c.Model.Power(0.6, 500e6)
	}
	sweeps, temps, err := host.SteadyState(powers, tol, maxSweeps)
	res := SteadyHotspotResult{
		Cells:     host.Model.NumCells(),
		Sweeps:    sweeps,
		Converged: err == nil,
	}
	for _, t := range temps {
		if t > res.MaxTempK {
			res.MaxTempK = t
		}
	}
	return res, err
}
