module thermemu

go 1.22
