// Package asm implements a two-pass assembler for the R32 ISA.
//
// The assembler plays the role of the cross-compilation toolchain (Xilinx EDK
// gcc/g++) in the original framework: the paper's workloads are provided as
// R32 assembly sources, assembled to binary images, and loaded into the
// private memory of each emulated core (EDK "can load different binaries on
// each processor"; so can we).
//
// Syntax overview:
//
//	; comment        # comment
//	label:
//	    addi  r1, r0, 10
//	    lw    r2, 4(r1)        ; displacement addressing
//	    sw    r2, buf(r0)      ; symbols usable in expressions
//	    beq   r1, r2, done
//	    .equ  N, 16
//	    .org  0x1000
//	    .word 1, 2, N+3        ; expressions support + and - only
//	    .space 64
//
// Pseudo-instructions: nop, li, la, mv, b, ret, call, subi, bgt, ble,
// bgtu, bleu, inc, dec. String literals (.ascii/.asciz) must not contain
// ';', '#' or ':' — comment stripping and label scanning run before
// directive parsing.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"thermemu/internal/isa"
)

// Section is a contiguous run of assembled bytes at a fixed address.
type Section struct {
	Addr uint32
	Data []byte
}

// Image is the result of assembling a source file: a sparse set of sections
// plus the entry point (address of the first instruction assembled).
type Image struct {
	Sections []Section
	Entry    uint32
	Symbols  map[string]uint32
}

// End returns one past the highest address occupied by the image.
func (im *Image) End() uint32 {
	var end uint32
	for _, s := range im.Sections {
		if e := s.Addr + uint32(len(s.Data)); e > end {
			end = e
		}
	}
	return end
}

// Error describes an assembly failure at a specific source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	symbols map[string]uint32
	out     map[uint32]byte // sparse byte image
	pc      uint32
	entry   uint32
	haveEnt bool
	pass    int
	line    int
}

// Assemble translates R32 assembly source into a binary image.
func Assemble(src string) (*Image, error) {
	a := &assembler{symbols: make(map[string]uint32)}
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.pc = 0
		a.haveEnt = false
		if pass == 2 {
			a.out = make(map[uint32]byte)
		}
		for i, raw := range strings.Split(src, "\n") {
			a.line = i + 1
			if err := a.doLine(raw); err != nil {
				return nil, err
			}
		}
	}
	return a.image(), nil
}

// MustAssemble is like Assemble but panics on error. It is intended for
// programmatically generated sources that are expected to be well-formed.
func MustAssemble(src string) *Image {
	im, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return im
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			return a.errf("invalid label %q", label)
		}
		if a.pass == 1 {
			if _, dup := a.symbols[label]; dup {
				return a.errf("duplicate symbol %q", label)
			}
			a.symbols[label] = a.pc
		}
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	fields := strings.SplitN(s, " ", 2)
	mnem := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	if strings.HasPrefix(mnem, ".") {
		return a.directive(mnem, rest)
	}
	return a.instruction(mnem, rest)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (a *assembler) directive(name, rest string) error {
	switch name {
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return a.errf(".equ needs NAME, value")
		}
		if !isIdent(parts[0]) {
			return a.errf("invalid .equ name %q", parts[0])
		}
		v, err := a.eval(parts[1])
		if err != nil {
			return err
		}
		if a.pass == 1 {
			if _, dup := a.symbols[parts[0]]; dup {
				return a.errf("duplicate symbol %q", parts[0])
			}
		}
		a.symbols[parts[0]] = v
		return nil
	case ".org":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		a.pc = v
		return nil
	case ".word":
		for _, op := range splitOperands(rest) {
			v, err := a.eval(op)
			if err != nil {
				return err
			}
			a.emitWord(v)
		}
		return nil
	case ".byte":
		for _, op := range splitOperands(rest) {
			v, err := a.eval(op)
			if err != nil {
				return err
			}
			a.emitByte(byte(v))
		}
		return nil
	case ".space":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		for i := uint32(0); i < v; i++ {
			a.emitByte(0)
		}
		return nil
	case ".ascii", ".asciz":
		str := strings.TrimSpace(rest)
		if len(str) < 2 || str[0] != '"' || str[len(str)-1] != '"' {
			return a.errf("%s requires a double-quoted string", name)
		}
		body := str[1 : len(str)-1]
		i := 0
		for i < len(body) {
			ch := body[i]
			if ch == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '0':
					ch = 0
				case '\\':
					ch = '\\'
				case '"':
					ch = '"'
				default:
					return a.errf("unknown escape \\%c", body[i])
				}
			}
			a.emitByte(ch)
			i++
		}
		if name == ".asciz" {
			a.emitByte(0)
		}
		return nil
	case ".align":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		if v == 0 || v&(v-1) != 0 {
			return a.errf(".align requires a power of two, got %d", v)
		}
		for a.pc%v != 0 {
			a.emitByte(0)
		}
		return nil
	default:
		return a.errf("unknown directive %s", name)
	}
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// eval evaluates an expression of the form term (('+'|'-') term)* where a
// term is a number (decimal, 0x-hex, 'c' char) or a symbol. On pass 1,
// unresolved symbols evaluate to 0 (sizes must not depend on them).
func (a *assembler) eval(expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, a.errf("empty expression")
	}
	var total int64
	sign := int64(1)
	i := 0
	expectTerm := true
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case expectTerm && c == '-':
			sign = -sign
			i++
		case expectTerm && c == '+':
			i++
		case !expectTerm && (c == '+' || c == '-'):
			if c == '-' {
				sign = -1
			} else {
				sign = 1
			}
			expectTerm = true
			i++
		case expectTerm:
			j := i
			for j < len(expr) && expr[j] != '+' && expr[j] != '-' && expr[j] != ' ' && expr[j] != '\t' {
				j++
			}
			term := expr[i:j]
			v, err := a.term(term)
			if err != nil {
				return 0, err
			}
			total += sign * int64(v)
			sign = 1
			expectTerm = false
			i = j
		default:
			return 0, a.errf("unexpected %q in expression %q", string(c), expr)
		}
	}
	if expectTerm {
		return 0, a.errf("expression %q ends with an operator", expr)
	}
	return uint32(total), nil
}

func (a *assembler) term(t string) (uint32, error) {
	if len(t) >= 3 && t[0] == '\'' && t[len(t)-1] == '\'' {
		body := t[1 : len(t)-1]
		if len(body) == 1 {
			return uint32(body[0]), nil
		}
		return 0, a.errf("invalid char literal %s", t)
	}
	if v, err := strconv.ParseInt(t, 0, 64); err == nil {
		return uint32(v), nil
	}
	if v, err := strconv.ParseUint(t, 0, 64); err == nil {
		return uint32(v), nil
	}
	if isIdent(t) {
		if v, ok := a.symbols[t]; ok {
			return v, nil
		}
		if a.pass == 1 {
			return 0, nil // forward reference; resolved on pass 2
		}
		return 0, a.errf("undefined symbol %q", t)
	}
	return 0, a.errf("cannot parse term %q", t)
}

func (a *assembler) emitByte(b byte) {
	if a.pass == 2 {
		a.out[a.pc] = b
	}
	a.pc++
}

func (a *assembler) emitWord(w uint32) {
	a.emitByte(byte(w))
	a.emitByte(byte(w >> 8))
	a.emitByte(byte(w >> 16))
	a.emitByte(byte(w >> 24))
}

func (a *assembler) emitInstr(in isa.Instr) error {
	if !a.haveEnt {
		a.entry = a.pc
		a.haveEnt = true
	}
	if a.pc%4 != 0 {
		return a.errf("instruction at unaligned address 0x%x", a.pc)
	}
	if a.pass == 2 {
		if err := isa.Validate(in); err != nil {
			return a.errf("%v", err)
		}
		a.emitWord(isa.Encode(in))
		return nil
	}
	a.pc += 4
	return nil
}

func (a *assembler) reg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, a.errf("invalid register %q", s)
}

// memOperand parses "disp(reg)" or "(reg)" or "disp" (implies r0 base).
func (a *assembler) memOperand(s string) (base uint8, disp int32, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		v, err := a.eval(s)
		return 0, int32(v), err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("malformed memory operand %q", s)
	}
	base, err = a.reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		return base, 0, nil
	}
	v, err := a.eval(dispStr)
	return base, int32(v), err
}

// branchOffset converts a target expression to a word offset from pc+4.
func (a *assembler) branchOffset(target string) (int32, error) {
	v, err := a.eval(target)
	if err != nil {
		return 0, err
	}
	if a.pass == 1 {
		return 0, nil
	}
	diff := int64(int32(v)) - int64(int32(a.pc+4))
	if diff%4 != 0 {
		return 0, a.errf("branch target 0x%x not word aligned", v)
	}
	return int32(diff / 4), nil
}

var rtypeByName = map[string]isa.Funct{
	"add": isa.FnAdd, "sub": isa.FnSub, "and": isa.FnAnd, "or": isa.FnOr,
	"xor": isa.FnXor, "nor": isa.FnNor, "sll": isa.FnSll, "srl": isa.FnSrl,
	"sra": isa.FnSra, "slt": isa.FnSlt, "sltu": isa.FnSltu, "mul": isa.FnMul,
	"div": isa.FnDiv, "divu": isa.FnDivu, "rem": isa.FnRem, "remu": isa.FnRemu,
}

var itypeByName = map[string]isa.Opcode{
	"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri,
	"xori": isa.OpXori, "slti": isa.OpSlti, "sltiu": isa.OpSltiu,
	"slli": isa.OpSlli, "srli": isa.OpSrli, "srai": isa.OpSrai,
}

var branchByName = map[string]isa.Opcode{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
	"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
}

var memByName = map[string]isa.Opcode{
	"lw": isa.OpLw, "lb": isa.OpLb, "lbu": isa.OpLbu,
	"sw": isa.OpSw, "sb": isa.OpSb, "swap": isa.OpSwap,
}

func (a *assembler) instruction(mnem, rest string) error {
	ops := splitMemAware(rest)
	n := len(ops)
	need := func(k int) error {
		if n != k {
			return a.errf("%s expects %d operands, got %d", mnem, k, n)
		}
		return nil
	}
	if fn, ok := rtypeByName[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpRType, Funct: fn, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	if op, ok := itypeByName[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.eval(ops[2])
		if err != nil {
			return err
		}
		imm := int32(v)
		if op.ZeroExtImm() {
			imm = int32(v & 0xFFFF)
			if a.pass == 2 && int64(v) > 0xFFFF && int64(int32(v)) > 0xFFFF {
				return a.errf("%s: immediate 0x%x exceeds 16 bits", mnem, v)
			}
		}
		return a.emitInstr(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	}
	if op, ok := branchByName[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		off, err := a.branchOffset(ops[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	}
	if op, ok := memByName[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: op, Rd: rd, Rs1: base, Imm: disp})
	}
	switch mnem {
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.eval(ops[1])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpLui, Rd: rd, Imm: int32(v & 0xFFFF)})
	case "jal", "call":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.branchOffset(ops[0])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpJal, Imm: off})
	case "jalr":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.eval(ops[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: int32(v)})
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpHalt})
	// --- pseudo-instructions ---
	case "nop":
		return a.emitInstr(isa.Instr{Op: isa.OpAddi})
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rs})
	case "li", "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.eval(ops[1])
		if err != nil {
			return err
		}
		// Always two instructions so that pass-1 sizing is stable.
		if err := a.emitInstr(isa.Instr{Op: isa.OpLui, Rd: rd, Imm: int32(v >> 16)}); err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: int32(v & 0xFFFF)})
	case "b":
		if err := need(1); err != nil {
			return err
		}
		off, err := a.branchOffset(ops[0])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpBeq, Imm: off})
	case "ret":
		if err := need(0); err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpJalr, Rd: 0, Rs1: isa.LinkReg})
	case "subi":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		v, err := a.eval(ops[2])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: -int32(v)})
	case "inc":
		if err := need(1); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rd, Imm: 1})
	case "dec":
		if err := need(1); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		return a.emitInstr(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rd, Imm: -1})
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return err
		}
		rs1, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		off, err := a.branchOffset(ops[2])
		if err != nil {
			return err
		}
		op := map[string]isa.Opcode{"bgt": isa.OpBlt, "ble": isa.OpBge, "bgtu": isa.OpBltu, "bleu": isa.OpBgeu}[mnem]
		return a.emitInstr(isa.Instr{Op: op, Rs1: rs2, Rs2: rs1, Imm: off})
	}
	return a.errf("unknown mnemonic %q", mnem)
}

// splitMemAware splits operands on commas that are not inside parentheses.
func splitMemAware(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// image converts the sparse byte map into contiguous sections.
func (a *assembler) image() *Image {
	addrs := make([]uint32, 0, len(a.out))
	for addr := range a.out {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	im := &Image{Entry: a.entry, Symbols: a.symbols}
	var cur *Section
	for _, addr := range addrs {
		if cur == nil || addr != cur.Addr+uint32(len(cur.Data)) {
			im.Sections = append(im.Sections, Section{Addr: addr})
			cur = &im.Sections[len(im.Sections)-1]
		}
		cur.Data = append(cur.Data, a.out[addr])
	}
	return im
}
