package asm

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"thermemu/internal/isa"
)

// words extracts the instruction words of the section containing addr.
func words(t *testing.T, im *Image, addr uint32) []uint32 {
	t.Helper()
	for _, s := range im.Sections {
		if addr >= s.Addr && addr < s.Addr+uint32(len(s.Data)) {
			data := s.Data[addr-s.Addr:]
			out := make([]uint32, 0, len(data)/4)
			for i := 0; i+4 <= len(data); i += 4 {
				out = append(out, binary.LittleEndian.Uint32(data[i:]))
			}
			return out
		}
	}
	t.Fatalf("no section contains 0x%x", addr)
	return nil
}

func decodeAll(t *testing.T, im *Image, addr uint32, n int) []isa.Instr {
	t.Helper()
	ws := words(t, im, addr)
	if len(ws) < n {
		t.Fatalf("wanted %d instructions, section has %d words", n, len(ws))
	}
	out := make([]isa.Instr, n)
	for i := 0; i < n; i++ {
		out[i] = isa.Decode(ws[i])
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	im, err := Assemble(`
		addi r1, r0, 42     ; set r1
		add  r2, r1, r1
		lw   r3, 8(r2)
		sw   r3, -4(r2)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 5)
	want := []isa.Instr{
		{Op: isa.OpAddi, Rd: 1, Imm: 42},
		{Op: isa.OpRType, Funct: isa.FnAdd, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: isa.OpLw, Rd: 3, Rs1: 2, Imm: 8},
		{Op: isa.OpSw, Rd: 3, Rs1: 2, Imm: -4},
		{Op: isa.OpHalt},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d: got %v want %v", i, ins[i], want[i])
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	im, err := Assemble(`
	start:
		addi r1, r0, 10
	loop:
		subi r1, r1, 1
		bne  r1, r0, loop
		b    start
		jal  loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 5)
	if ins[2].Op != isa.OpBne || ins[2].Imm != -2 {
		t.Errorf("bne loop: got %v, want offset -2", ins[2])
	}
	if ins[3].Op != isa.OpBeq || ins[3].Imm != -4 {
		t.Errorf("b start: got %v, want beq offset -4", ins[3])
	}
	if ins[4].Op != isa.OpJal || ins[4].Imm != -4 {
		t.Errorf("jal loop: got %v, want offset -4", ins[4])
	}
}

func TestForwardReferences(t *testing.T) {
	im, err := Assemble(`
		beq r0, r0, done
		nop
		nop
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 1)
	if ins[0].Imm != 2 {
		t.Errorf("forward branch offset: got %d want 2", ins[0].Imm)
	}
}

func TestLiExpansion(t *testing.T) {
	im, err := Assemble(`
		li r5, 0xDEADBEEF
		li r6, 7
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 4)
	if ins[0].Op != isa.OpLui || uint32(ins[0].Imm) != 0xDEAD {
		t.Errorf("li hi: got %v", ins[0])
	}
	if ins[1].Op != isa.OpOri || uint32(ins[1].Imm) != 0xBEEF || ins[1].Rs1 != 5 {
		t.Errorf("li lo: got %v", ins[1])
	}
	if ins[2].Op != isa.OpLui || ins[2].Imm != 0 {
		t.Errorf("small li hi: got %v", ins[2])
	}
}

func TestDirectivesAndSections(t *testing.T) {
	im, err := Assemble(`
		.equ BASE, 0x1000
		addi r1, r0, BASE - 0x1000 + 5
		halt
		.org BASE
	data:
		.word 1, 2, 3
		.byte 0xAA
		.align 4
		.word 0x11223344
		.space 8
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 1)
	if ins[0].Imm != 5 {
		t.Errorf("expression: got %d want 5", ins[0].Imm)
	}
	ws := words(t, im, 0x1000)
	if ws[0] != 1 || ws[1] != 2 || ws[2] != 3 {
		t.Errorf("data words: got %v", ws[:3])
	}
	if ws[3]&0xFF != 0xAA {
		t.Errorf(".byte: got %#x", ws[3])
	}
	if ws[4] != 0x11223344 {
		t.Errorf(".align/.word: got %#x", ws[4])
	}
	if got := im.Symbols["data"]; got != 0x1000 {
		t.Errorf("symbol data = %#x, want 0x1000", got)
	}
	if im.End() != 0x1000+3*4+1+3+4+8 {
		t.Errorf("End() = %#x", im.End())
	}
}

func TestEntryPoint(t *testing.T) {
	im, err := Assemble(`
		.org 0x200
		addi r1, r0, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != 0x200 {
		t.Errorf("entry = %#x, want 0x200", im.Entry)
	}
}

func TestPseudoInstructions(t *testing.T) {
	im, err := Assemble(`
		nop
		mv  r2, r3
		inc r4
		dec r5
		ret
		bgt r1, r2, 0x20
		ble r1, r2, 0x20
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 7)
	if ins[0] != (isa.Instr{Op: isa.OpAddi}) {
		t.Errorf("nop: got %v", ins[0])
	}
	if ins[1].Op != isa.OpAddi || ins[1].Rd != 2 || ins[1].Rs1 != 3 {
		t.Errorf("mv: got %v", ins[1])
	}
	if ins[2].Imm != 1 || ins[3].Imm != -1 {
		t.Errorf("inc/dec: got %v %v", ins[2], ins[3])
	}
	if ins[4].Op != isa.OpJalr || ins[4].Rs1 != isa.LinkReg {
		t.Errorf("ret: got %v", ins[4])
	}
	if ins[5].Op != isa.OpBlt || ins[5].Rs1 != 2 || ins[5].Rs2 != 1 {
		t.Errorf("bgt: got %v", ins[5])
	}
	if ins[6].Op != isa.OpBge || ins[6].Rs1 != 2 || ins[6].Rs2 != 1 {
		t.Errorf("ble: got %v", ins[6])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"addi r1, r0", "expects 3 operands"},
		{"addi r99, r0, 1", "invalid register"},
		{"lw r1, 4(r2", "malformed memory operand"},
		{"beq r0, r0, nowhere", "undefined symbol"},
		{"x: \n x: halt", "duplicate symbol"},
		{".org 3\nhalt", "unaligned"},
		{".align 3", "power of two"},
		{".frob 1", "unknown directive"},
		{"addi r1, r0, 0x10000", "out of signed 16-bit range"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorCarriesLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("line = %d, want 3", ae.Line)
	}
}

func TestCharLiteralAndHex(t *testing.T) {
	im, err := Assemble(`
		addi r1, r0, 'A'
		addi r2, r0, 0x7F
	`)
	if err != nil {
		t.Fatal(err)
	}
	ins := decodeAll(t, im, 0, 2)
	if ins[0].Imm != 'A' || ins[1].Imm != 0x7F {
		t.Errorf("literals: got %d %d", ins[0].Imm, ins[1].Imm)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestAsciiDirectives(t *testing.T) {
	im, err := Assemble(`
		.org 0x100
	msg:
		.asciz "Hi\n"
		.ascii "AB"
	`)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	for _, s := range im.Sections {
		if s.Addr == 0x100 {
			data = s.Data
		}
	}
	want := []byte{'H', 'i', '\n', 0, 'A', 'B'}
	if len(data) != len(want) {
		t.Fatalf("data = %v", data)
	}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, data[i], want[i])
		}
	}
	// Escapes and errors.
	if _, err := Assemble(`.ascii "a\q"`); err == nil {
		t.Error("unknown escape accepted")
	}
	if _, err := Assemble(`.ascii abc`); err == nil {
		t.Error("unquoted string accepted")
	}
}

// Property: the expression evaluator agrees with Go arithmetic on random
// +/- chains of literals.
func TestExpressionEvaluatorQuick(t *testing.T) {
	f := func(terms []int16) bool {
		if len(terms) == 0 {
			return true
		}
		if len(terms) > 8 {
			terms = terms[:8]
		}
		expr := ""
		var want int64
		for i, v := range terms {
			abs := int64(v)
			if abs < 0 {
				abs = -abs
			}
			if i == 0 {
				expr = fmt.Sprintf("%d", abs)
				want = abs
			} else if v < 0 {
				expr += fmt.Sprintf(" - %d", abs)
				want -= abs
			} else {
				expr += fmt.Sprintf(" + %d", abs)
				want += abs
			}
		}
		src := fmt.Sprintf(".equ X, %s\n.word X\n", expr)
		im, err := Assemble(src)
		if err != nil {
			t.Logf("assemble %q: %v", expr, err)
			return false
		}
		got := binary.LittleEndian.Uint32(im.Sections[0].Data)
		return got == uint32(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
