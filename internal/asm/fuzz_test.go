package asm

import "testing"

// FuzzAssemble feeds arbitrary source text to the assembler: it must either
// return a structured error or an image whose sections stay within the
// 32-bit address space — never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("addi r1, r0, 5\nhalt\n")
	f.Add(".org 0x100\n.word 1, 2\n")
	f.Add("loop: bne r1, r0, loop\n")
	f.Add(".equ X, 5+3\nli r2, X\n")
	f.Add(".asciz \"hi\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		im, err := Assemble(src)
		if err != nil {
			if _, ok := err.(*Error); !ok {
				t.Fatalf("unstructured error type %T: %v", err, err)
			}
			return
		}
		for _, s := range im.Sections {
			if uint64(s.Addr)+uint64(len(s.Data)) > 1<<32 {
				t.Fatalf("section overflows the address space")
			}
		}
	})
}
