// Package bus models the shared-bus interconnects of the emulated MPSoC:
// the two Xilinx buses the paper includes (OPB for general-purpose devices,
// PLB for fast memories and processors) and the paper's own configurable
// 32-bit data/address exploration bus with selectable bandwidth and
// arbitration policies (Section 3.3).
//
// A Bus implements mem.Interconnect: it converts a burst transaction into
// cycles of arbitration, address phase, target service time and data phase,
// while tracking contention through a busy-until horizon. Switching-activity
// counters feed the interconnect power model.
package bus

import "fmt"

// Arbitration selects the bus arbitration policy.
type Arbitration int

// Arbitration policies.
const (
	// RoundRobin grants masters in rotating order; re-arbitration after a
	// different master held the bus costs one extra cycle.
	RoundRobin Arbitration = iota
	// FixedPriority grants lower master indices first; under contention a
	// master waits one extra cycle per higher-priority master.
	FixedPriority
	// TDMA divides bus time into fixed slots, one per master; a
	// transaction must wait for the start of its own slot.
	TDMA
)

// String returns the policy name.
func (a Arbitration) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	case TDMA:
		return "tdma"
	}
	return fmt.Sprintf("arbitration(%d)", int(a))
}

// Config parameterises a bus instance.
type Config struct {
	Name        string
	WidthBits   int // data width: bandwidth knob of the custom bus
	AddrCycles  uint64
	ArbCycles   uint64
	Arbitration Arbitration
	Masters     int
	SlotCycles  uint64 // TDMA slot length
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WidthBits <= 0 || c.WidthBits%8 != 0 {
		return fmt.Errorf("bus %s: width %d must be a positive multiple of 8", c.Name, c.WidthBits)
	}
	if c.Masters <= 0 {
		return fmt.Errorf("bus %s: needs at least one master", c.Name)
	}
	if c.Arbitration == TDMA && c.SlotCycles == 0 {
		return fmt.Errorf("bus %s: TDMA requires SlotCycles > 0", c.Name)
	}
	return nil
}

// OPB returns the configuration of the Xilinx On-chip Peripheral Bus class:
// 32-bit, round-robin, intended for general-purpose devices.
func OPB(masters int) Config {
	return Config{Name: "opb", WidthBits: 32, AddrCycles: 1, ArbCycles: 1,
		Arbitration: RoundRobin, Masters: masters}
}

// PLB returns the configuration of the Processor Local Bus class: 64-bit,
// fixed priority, intended for fast memories and processors.
func PLB(masters int) Config {
	return Config{Name: "plb", WidthBits: 64, AddrCycles: 1, ArbCycles: 1,
		Arbitration: FixedPriority, Masters: masters}
}

// Custom returns the paper's own configurable 32-bit exploration bus with
// the requested arbitration policy.
func Custom(masters int, arb Arbitration, widthBits int) Config {
	c := Config{Name: "custom", WidthBits: widthBits, AddrCycles: 1, ArbCycles: 1,
		Arbitration: arb, Masters: masters}
	if arb == TDMA {
		c.SlotCycles = 16
	}
	return c
}

// Stats holds the count-logging sniffer counters of a bus.
type Stats struct {
	Transactions uint64
	Reads        uint64
	Writes       uint64
	BusyCycles   uint64 // cycles the bus was held
	WaitCycles   uint64 // cycles initiators waited for grant
	BeatsCarried uint64 // data beats transferred
	Transitions  uint64 // estimated signal transitions (for power)
}

// Bus is a shared-bus timing model.
type Bus struct {
	cfg       Config
	busyUntil uint64
	lastGrant int
	stats     Stats
	perMaster []uint64 // wait cycles per master
}

// New builds a bus from cfg.
func New(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg, lastGrant: -1, perMaster: make([]uint64, cfg.Masters)}, nil
}

// MustNew is New for trusted configurations; it panics on error.
func MustNew(cfg Config) *Bus {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements mem.Interconnect.
func (b *Bus) Name() string { return b.cfg.Name }

// CopyStateFrom overwrites this bus's mutable timing state (busy horizon,
// arbitration pointer, counters) with src's. Both buses must share the same
// configuration; the speculative kernel uses identically configured shadow
// buses to predict transaction timing without disturbing the real one.
func (b *Bus) CopyStateFrom(src *Bus) {
	b.busyUntil = src.busyUntil
	b.lastGrant = src.lastGrant
	b.stats = src.stats
	copy(b.perMaster, src.perMaster)
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns the sniffer counters.
func (b *Bus) Stats() Stats { return b.stats }

// ResetStats zeroes the counters.
func (b *Bus) ResetStats() { b.stats = Stats{} }

// WaitCyclesOf returns the accumulated grant-wait cycles of one master.
func (b *Bus) WaitCyclesOf(master int) uint64 { return b.perMaster[master] }

// beats returns the number of data beats a burst of n bytes needs.
func (b *Bus) beats(bytes uint32) uint64 {
	bpb := uint32(b.cfg.WidthBits / 8)
	n := uint64((bytes + bpb - 1) / bpb)
	if n == 0 {
		n = 1
	}
	return n
}

// Transaction implements mem.Interconnect.
func (b *Bus) Transaction(initiator int, now uint64, bytes uint32, write bool, targetLatency uint64) uint64 {
	if initiator < 0 || initiator >= b.cfg.Masters {
		panic(fmt.Sprintf("bus %s: initiator %d out of range", b.cfg.Name, initiator))
	}
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	// Arbitration.
	arb := b.cfg.ArbCycles
	switch b.cfg.Arbitration {
	case FixedPriority:
		if b.busyUntil > now { // contended: lower priorities wait longer
			arb += uint64(initiator)
		}
	case RoundRobin:
		if b.lastGrant >= 0 && b.lastGrant != initiator {
			arb++ // re-arbitration to a different master
		}
	case TDMA:
		slot := b.cfg.SlotCycles
		frame := slot * uint64(b.cfg.Masters)
		pos := start % frame
		mySlot := uint64(initiator) * slot
		if pos > mySlot {
			start += frame - pos + mySlot
		} else {
			start += mySlot - pos
		}
		arb = 0
	}
	start += arb
	beats := b.beats(bytes)
	hold := b.cfg.AddrCycles + targetLatency + beats
	end := start + hold
	wait := start - now
	b.busyUntil = end
	b.lastGrant = initiator

	b.stats.Transactions++
	if write {
		b.stats.Writes++
	} else {
		b.stats.Reads++
	}
	b.stats.BusyCycles += hold
	b.stats.WaitCycles += wait
	b.perMaster[initiator] += wait
	b.stats.BeatsCarried += beats
	// Average-case switching estimate: half the data wires plus the
	// address wires toggle per beat.
	b.stats.Transitions += beats * uint64(b.cfg.WidthBits/2+16)
	return end - now
}

// NextEvent returns the cycle at which the bus's in-flight transaction
// completes (its busy horizon frees) and whether one is pending after now.
// Transaction timing is charged to the initiator at access time, so this is
// purely an event-query for skip-ahead kernels: jumping past an idle bus
// cannot change any outcome.
func (b *Bus) NextEvent(now uint64) (uint64, bool) {
	if b.busyUntil > now {
		return b.busyUntil, true
	}
	return 0, false
}

// Utilisation returns the fraction of cycles the bus was held over the
// given elapsed cycle count.
func (b *Bus) Utilisation(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(b.stats.BusyCycles) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
