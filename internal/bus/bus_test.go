package bus

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := OPB(4).Validate(); err != nil {
		t.Errorf("OPB rejected: %v", err)
	}
	if err := PLB(4).Validate(); err != nil {
		t.Errorf("PLB rejected: %v", err)
	}
	bad := []Config{
		{Name: "w", WidthBits: 0, Masters: 1},
		{Name: "w2", WidthBits: 33, Masters: 1},
		{Name: "m", WidthBits: 32, Masters: 0},
		{Name: "t", WidthBits: 32, Masters: 2, Arbitration: TDMA, SlotCycles: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestUncontendedTransaction(t *testing.T) {
	b := MustNew(OPB(2))
	// word read: arb(1) + addr(1) + target(5) + 1 beat = 8
	if got := b.Transaction(0, 0, 4, false, 5); got != 8 {
		t.Errorf("latency = %d, want 8", got)
	}
	s := b.Stats()
	if s.Transactions != 1 || s.Reads != 1 || s.WaitCycles != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBurstBeats(t *testing.T) {
	b32 := MustNew(Custom(1, RoundRobin, 32))
	b64 := MustNew(PLB(1))
	l32 := b32.Transaction(0, 0, 32, false, 0) // 8 beats
	l64 := b64.Transaction(0, 0, 32, false, 0) // 4 beats
	if l32 <= l64 {
		t.Errorf("32-bit burst (%d) should be slower than 64-bit (%d)", l32, l64)
	}
	if b32.Stats().BeatsCarried != 8 || b64.Stats().BeatsCarried != 4 {
		t.Errorf("beats = %d/%d", b32.Stats().BeatsCarried, b64.Stats().BeatsCarried)
	}
}

func TestContentionSerialises(t *testing.T) {
	b := MustNew(OPB(2))
	l0 := b.Transaction(0, 0, 4, true, 10)
	l1 := b.Transaction(1, 0, 4, true, 10)
	if l1 <= l0 {
		t.Errorf("contended transaction (%d) not delayed past first (%d)", l1, l0)
	}
	if b.WaitCyclesOf(1) == 0 {
		t.Error("master 1 recorded no wait cycles")
	}
	// After the bus drains, latency drops back.
	l2 := b.Transaction(1, 1000, 4, true, 10)
	if l2 >= l1 {
		t.Errorf("uncontended latency %d not below contended %d", l2, l1)
	}
}

func TestFixedPriorityPenalty(t *testing.T) {
	b := MustNew(PLB(4))
	b.Transaction(0, 0, 4, false, 50) // hold the bus
	lHigh := b.Transaction(0, 1, 4, false, 0)
	b2 := MustNew(PLB(4))
	b2.Transaction(0, 0, 4, false, 50)
	lLow := b2.Transaction(3, 1, 4, false, 0)
	if lLow <= lHigh {
		t.Errorf("low-priority master (%d) should wait longer than high (%d)", lLow, lHigh)
	}
}

func TestTDMASlotAlignment(t *testing.T) {
	cfg := Custom(4, TDMA, 32)
	cfg.SlotCycles = 10
	b := MustNew(cfg)
	// Master 2's slot starts at cycle 20 within the 40-cycle frame.
	lat := b.Transaction(2, 0, 4, false, 0)
	if lat < 20 {
		t.Errorf("TDMA master 2 at cycle 0 granted after %d, want >= 20", lat)
	}
	// Master 0 at the start of its own slot waits nothing extra.
	b2 := MustNew(cfg)
	lat0 := b2.Transaction(0, 0, 4, false, 0)
	if lat0 > 5 {
		t.Errorf("TDMA master 0 in-slot latency = %d", lat0)
	}
}

func TestRoundRobinReArbitration(t *testing.T) {
	b := MustNew(OPB(2))
	b.Transaction(0, 0, 4, false, 0)
	same := MustNew(OPB(2))
	same.Transaction(0, 0, 4, false, 0)
	lSame := same.Transaction(0, 100, 4, false, 0)
	lOther := b.Transaction(1, 100, 4, false, 0)
	if lOther != lSame+1 {
		t.Errorf("re-arbitration: other=%d same=%d, want +1", lOther, lSame)
	}
}

func TestUtilisation(t *testing.T) {
	b := MustNew(OPB(1))
	b.Transaction(0, 0, 4, false, 8)
	u := b.Utilisation(100)
	if u <= 0 || u > 1 {
		t.Errorf("utilisation = %v", u)
	}
	if b.Utilisation(0) != 0 {
		t.Error("zero elapsed must give 0")
	}
}

// Property: latency is always at least the intrinsic transfer time and the
// busy horizon never goes backwards.
func TestLatencyLowerBoundQuick(t *testing.T) {
	f := func(seed uint32) bool {
		b := MustNew(OPB(4))
		now := uint64(0)
		prevEnd := uint64(0)
		s := seed
		for i := 0; i < 50; i++ {
			s = s*1664525 + 1013904223
			init := int(s % 4)
			bytes := uint32(4 * (1 + s%8))
			tl := uint64(s % 16)
			lat := b.Transaction(init, now, bytes, s%2 == 0, tl)
			min := b.cfg.AddrCycles + tl + b.beats(bytes)
			if lat < min {
				t.Logf("lat %d < intrinsic %d", lat, min)
				return false
			}
			if b.busyUntil < prevEnd {
				t.Logf("busy horizon went backwards")
				return false
			}
			prevEnd = b.busyUntil
			now += uint64(s % 7)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInitiatorRangePanic(t *testing.T) {
	b := MustNew(OPB(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range initiator")
		}
	}()
	b.Transaction(5, 0, 4, false, 0)
}

func TestNextEventTracksBusyHorizon(t *testing.T) {
	b := MustNew(OPB(2))
	if _, ok := b.NextEvent(0); ok {
		t.Error("idle bus reported an event")
	}
	lat := b.Transaction(0, 0, 4, false, 5)
	e, ok := b.NextEvent(0)
	if !ok {
		t.Fatal("bus with an in-flight transaction reported no event")
	}
	if e != b.busyUntil {
		t.Errorf("event cycle %d != busy horizon %d", e, b.busyUntil)
	}
	if e == 0 || e > lat {
		t.Errorf("event cycle %d outside (0, %d]", e, lat)
	}
	// At and past the horizon the bus is free again.
	if _, ok := b.NextEvent(e); ok {
		t.Error("event reported at the busy horizon itself")
	}
}
