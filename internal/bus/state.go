package bus

import "fmt"

// State is the complete checkpointable bus state: the in-flight busy
// horizon, the arbitration memory and every counter.
type State struct {
	BusyUntil uint64
	LastGrant int
	Stats     Stats
	PerMaster []uint64 // wait cycles per master
}

// SaveState captures the bus for checkpointing.
func (b *Bus) SaveState() State {
	return State{
		BusyUntil: b.busyUntil,
		LastGrant: b.lastGrant,
		Stats:     b.stats,
		PerMaster: append([]uint64(nil), b.perMaster...),
	}
}

// RestoreState rewinds the bus to a saved state. The master count must
// match the live configuration.
func (b *Bus) RestoreState(s State) error {
	if len(s.PerMaster) != b.cfg.Masters {
		return fmt.Errorf("bus %s: checkpoint has %d masters, config has %d",
			b.cfg.Name, len(s.PerMaster), b.cfg.Masters)
	}
	if s.LastGrant < -1 || s.LastGrant >= b.cfg.Masters {
		return fmt.Errorf("bus %s: last grant %d out of range", b.cfg.Name, s.LastGrant)
	}
	b.busyUntil = s.BusyUntil
	b.lastGrant = s.LastGrant
	b.stats = s.Stats
	copy(b.perMaster, s.PerMaster)
	return nil
}
