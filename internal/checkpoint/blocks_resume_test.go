package checkpoint_test

// Satellite of the threaded-code block dispatch PR: checkpoints must carry
// no translated-block state, so a checkpoint is interchangeable between
// interpreter and block-dispatch platforms, and a resume into a
// block-dispatch platform starts from a cold cache mid-hot-loop and still
// reproduces the interpreter's golden digest bit-for-bit.

import (
	"testing"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/workloads"
)

func buildBlocksCase(t *testing.T, blocks bool) *emu.Platform {
	t.Helper()
	cfg := emu.DefaultConfig(2)
	cfg.Blocks = blocks
	p := emu.MustNew(cfg)
	spec, err := workloads.Matrix(2, 4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	loadSpec(t, p, spec)
	return p
}

func TestResumeBlocksColdCache(t *testing.T) {
	// Reference: the uninterrupted interpreter run.
	straight := golden.New()
	ref := buildBlocksCase(t, false)
	ref.RunDigest(matrixMax, matrixEvery, straight)

	// Checkpointed run with block dispatch on: capture a checkpoint and the
	// digest accumulator at every window boundary. Windows land mid-loop, so
	// the blocks are hot at every capture point.
	type point struct {
		ck  *checkpoint.Checkpoint
		sum uint64
		n   int
	}
	var pts []point
	tr := golden.New()
	q := buildBlocksCase(t, true)
	for q.VPCM.Cycle() < matrixMax && !q.AllHalted() {
		stepDigestWindow(q, false)
		emu.DigestSnapshot(tr, q.Snapshot())
		sum, n := tr.State()
		pts = append(pts, point{checkpoint.FromPlatform(q), sum, n})
	}
	q.DigestInto(tr)
	if tr.Sum64() != straight.Sum64() || tr.Len() != straight.Len() {
		t.Fatalf("blocks straight run digest %s/%d != interpreter %s/%d",
			tr.Hex(), tr.Len(), straight.Hex(), straight.Len())
	}
	if len(pts) < 3 {
		t.Fatalf("workload too short: %d windows", len(pts))
	}

	// Resume the mid-run checkpoint into both kernel flavours: the stream
	// holds no translated state, so a blocks platform restores to a cold
	// cache and an interpreter platform restores to exactly the same bits.
	mid := pts[len(pts)/2]
	for _, blocks := range []bool{true, false} {
		ck, err := checkpoint.Decode(checkpoint.Encode(mid.ck))
		if err != nil {
			t.Fatalf("blocks=%v: decode: %v", blocks, err)
		}
		r := buildBlocksCase(t, blocks)
		if err := ck.Apply(r); err != nil {
			t.Fatalf("blocks=%v: apply: %v", blocks, err)
		}
		rtr := golden.New()
		if err := rtr.Seed(mid.sum, mid.n); err != nil {
			t.Fatal(err)
		}
		for r.VPCM.Cycle() < matrixMax && !r.AllHalted() {
			stepDigestWindow(r, false)
			emu.DigestSnapshot(rtr, r.Snapshot())
		}
		r.DigestInto(rtr)
		if rtr.Sum64() != straight.Sum64() || rtr.Len() != straight.Len() {
			t.Errorf("resume into blocks=%v: digest %s/%d, want %s/%d",
				blocks, rtr.Hex(), rtr.Len(), straight.Hex(), straight.Len())
		}
	}
}
