// Package checkpoint provides versioned, self-describing serialization of
// the full emulated-platform state (and the closed co-emulation loop's
// thermal/policy state riding along), written at window boundaries so long
// Figure-6-class runs become resumable, forkable and debuggable.
//
// Integrity is layered: the byte stream carries an FNV checksum, so
// corruption is rejected at decode; and every checkpoint embeds the golden
// state digest (internal/golden over emu.Platform.DigestInto) computed when
// it was taken, so Apply can verify — after restoring — that the platform
// reproduces the exact architectural state the checkpoint described. A
// snapshot from a differently configured platform, or one that rotted on
// disk past the checksum, is rejected at load rather than silently resumed.
package checkpoint

import (
	"fmt"
	"os"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/isa"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
)

// Version is the current stream format version.
const Version = 1

// magic identifies a checkpoint stream ("TMCK").
const magic uint32 = 0x4b434d54

// Section tags. The stream is a fixed-order sequence of length-prefixed
// sections (meta, platform, optional loop, end), so readers can size and
// skip payloads without parsing them.
const (
	secMeta     = 1
	secPlatform = 2
	secLoop     = 3
	secEnd      = 0xff
)

// LoopState is the closed co-emulation loop's state outside the platform:
// the thermal model, the TM policy and the feedback temperatures in flight.
type LoopState struct {
	Thermal   *thermal.ModelState
	Policy    *tm.PolicyState
	CompTemps []float64 // last component temperatures fed back to the power model
	MaxTempK  float64   // running hottest-cell maximum of the run
}

// Checkpoint is one window-boundary snapshot.
type Checkpoint struct {
	// Window counts the sampling windows committed before this checkpoint
	// was taken.
	Window uint64
	// Partial marks a final flush written by an aborting run (the window in
	// flight when the error hit was emulated but its thermal solve is lost).
	Partial bool
	// GoldenSum/GoldenLen carry the run's golden-trace accumulator at the
	// boundary, so a resumed run continues the digest lineage and its final
	// digest equals the uninterrupted run's.
	GoldenSum uint64
	GoldenLen uint64
	// StateDigest is the golden digest of the platform's full architectural
	// state at the boundary (emu.Platform.DigestInto); Apply recomputes it
	// after restoring and refuses a mismatch.
	StateDigest uint64
	Platform    *emu.PlatformState
	Loop        *LoopState
}

// StateDigest computes the golden digest of the platform's current full
// architectural state.
func StateDigest(p *emu.Platform) uint64 {
	tr := golden.New()
	p.DigestInto(tr)
	return tr.Sum64()
}

// FromPlatform captures the platform into a checkpoint, embedding the state
// digest. Loop, Window and the golden accumulator are the caller's to fill.
func FromPlatform(p *emu.Platform) *Checkpoint {
	return &Checkpoint{Platform: p.SaveState(), StateDigest: StateDigest(p)}
}

// Apply restores the checkpoint into p and verifies the embedded state
// digest against the restored platform. An error means p was left in an
// undefined state and must not be resumed.
func (c *Checkpoint) Apply(p *emu.Platform) error {
	if c.Platform == nil {
		return fmt.Errorf("checkpoint: no platform state")
	}
	if err := p.RestoreState(c.Platform); err != nil {
		return err
	}
	if got := StateDigest(p); got != c.StateDigest {
		return fmt.Errorf("checkpoint: state digest %016x after restore, checkpoint recorded %016x (configuration mismatch?)",
			got, c.StateDigest)
	}
	return nil
}

// Encode serializes the checkpoint.
func Encode(c *Checkpoint) []byte {
	w := &writer{}
	w.u32(magic)
	w.u16(Version)

	section := func(tag uint8, fill func(*writer)) {
		body := &writer{}
		fill(body)
		w.u8(tag)
		w.u64(uint64(len(body.buf)))
		w.buf = append(w.buf, body.buf...)
	}
	section(secMeta, func(b *writer) {
		b.u64(c.Window)
		b.bool(c.Partial)
		b.u64(c.GoldenSum)
		b.u64(c.GoldenLen)
		b.u64(c.StateDigest)
	})
	section(secPlatform, func(b *writer) { encodePlatform(b, c.Platform) })
	if c.Loop != nil {
		section(secLoop, func(b *writer) { encodeLoop(b, c.Loop) })
	}
	w.u8(secEnd)
	w.u64(fnv64(w.buf))
	return w.buf
}

// Decode parses a checkpoint stream. It is strict: the checksum, the
// section order and every embedded count must be exactly right, and any
// successfully decoded stream re-encodes to the identical bytes.
func Decode(data []byte) (*Checkpoint, error) {
	r := &reader{b: data}
	if m := r.u32(); r.err == nil && m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %08x", m)
	}
	if v := r.u16(); r.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (have %d)", v, Version)
	}
	if r.err != nil {
		return nil, r.err
	}

	c := &Checkpoint{}
	readSection := func(wantTag uint8, parse func(*reader)) bool {
		if r.err != nil {
			return false
		}
		tag := r.u8()
		if r.err != nil {
			return false
		}
		if tag != wantTag {
			// Put the tag back for the caller to interpret (optional
			// sections, end marker).
			r.off--
			return false
		}
		n := r.u64()
		if r.err != nil {
			return false
		}
		if n > uint64(r.remaining()) {
			r.fail("section %d length %d exceeds remaining input", tag, n)
			return false
		}
		body := &reader{b: r.b[r.off : r.off+int(n)]}
		parse(body)
		if body.err != nil {
			r.err = body.err
			return false
		}
		if body.remaining() != 0 {
			r.fail("section %d has %d trailing bytes", tag, body.remaining())
			return false
		}
		r.off += int(n)
		return true
	}

	if !readSection(secMeta, func(b *reader) {
		c.Window = b.u64()
		c.Partial = b.bool()
		c.GoldenSum = b.u64()
		c.GoldenLen = b.u64()
		c.StateDigest = b.u64()
	}) {
		if r.err == nil {
			r.fail("missing meta section")
		}
		return nil, r.err
	}
	if !readSection(secPlatform, func(b *reader) { c.Platform = decodePlatform(b) }) {
		if r.err == nil {
			r.fail("missing platform section")
		}
		return nil, r.err
	}
	readSection(secLoop, func(b *reader) { c.Loop = decodeLoop(b) })
	if r.err != nil {
		return nil, r.err
	}
	if tag := r.u8(); r.err == nil && tag != secEnd {
		return nil, fmt.Errorf("checkpoint: unknown section tag %d", tag)
	}
	sumStart := r.off
	sum := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if want := fnv64(data[:sumStart]); sum != want {
		return nil, fmt.Errorf("checkpoint: checksum %016x, stream carries %016x (corrupt)", want, sum)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after checksum", r.remaining())
	}
	return c, nil
}

// WriteFile encodes the checkpoint to path atomically (temp file + rename).
func (c *Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, Encode(c), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile reads and decodes a checkpoint file.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

const numRegs = isa.NumRegs
