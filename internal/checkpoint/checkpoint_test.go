package checkpoint_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

const maxCycles = 5_000_000

func loadSpec(t *testing.T, p *emu.Platform, s *workloads.Spec) {
	t.Helper()
	for i, im := range s.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range s.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
}

func matrixSpec(t *testing.T, cores int) *workloads.Spec {
	t.Helper()
	s, err := workloads.Matrix(cores, 4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildRun creates a loaded 2-core bus platform.
func buildRun(t *testing.T) *emu.Platform {
	t.Helper()
	p := emu.MustNew(emu.DefaultConfig(2))
	loadSpec(t, p, matrixSpec(t, 2))
	return p
}

// fullCheckpoint runs the platform a while and captures a checkpoint with a
// loop section, exercising every format branch.
func fullCheckpoint(t *testing.T, p *emu.Platform) *checkpoint.Checkpoint {
	t.Helper()
	p.AttachActivitySniffers()
	p.Step(10_000)
	ck := checkpoint.FromPlatform(p)
	ck.Window = 3
	ck.GoldenSum, ck.GoldenLen = 0xdeadbeef, 42
	ck.Loop = &checkpoint.LoopState{
		Thermal:   &thermal.ModelState{T: []float64{300, 301}, TAtK: []float64{300, 300.5}, Pw: []float64{0.25, 0.5}, Time: 0.02},
		Policy:    &tm.PolicyState{Throttled: true, Switches: 7},
		CompTemps: []float64{302.5, 303.25},
		MaxTempK:  351.5,
	}
	return ck
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ck := fullCheckpoint(t, buildRun(t))
	data := checkpoint.Encode(ck)
	dec, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	re := checkpoint.Encode(dec)
	if !bytes.Equal(data, re) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(re))
	}
	if dec.Window != ck.Window || dec.GoldenSum != ck.GoldenSum || dec.GoldenLen != ck.GoldenLen ||
		dec.StateDigest != ck.StateDigest || dec.Partial != ck.Partial {
		t.Fatalf("meta drift: %+v vs %+v", dec, ck)
	}
	if dec.Loop == nil || dec.Loop.Thermal == nil || dec.Loop.Policy == nil {
		t.Fatalf("loop section lost")
	}
	if dec.Loop.MaxTempK != ck.Loop.MaxTempK || !dec.Loop.Policy.Throttled ||
		dec.Loop.Thermal.Time != ck.Loop.Thermal.Time {
		t.Fatalf("loop state drift: %+v", dec.Loop)
	}
}

func TestApplyRestoresExactState(t *testing.T) {
	p := buildRun(t)
	p.AttachActivitySniffers()
	p.Step(10_000)
	ck := checkpoint.FromPlatform(p)
	want := checkpoint.StateDigest(p)

	// Round-trip through bytes, restore into a *fresh* platform, and assert
	// the architectural state digest is reproduced exactly.
	dec, err := checkpoint.Decode(checkpoint.Encode(ck))
	if err != nil {
		t.Fatal(err)
	}
	q := buildRun(t)
	if err := dec.Apply(q); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got := checkpoint.StateDigest(q); got != want {
		t.Fatalf("restored digest %016x, want %016x", got, want)
	}

	// Both platforms must now evolve identically to completion.
	trP, trQ := golden.New(), golden.New()
	p.RunDigest(maxCycles, 1024, trP)
	q.RunDigest(maxCycles, 1024, trQ)
	if trP.Sum64() != trQ.Sum64() || trP.Len() != trQ.Len() {
		t.Fatalf("post-restore runs diverge: %s/%d vs %s/%d", trP.Hex(), trP.Len(), trQ.Hex(), trQ.Len())
	}
}

func TestApplyRejectsMismatchedConfig(t *testing.T) {
	p := buildRun(t)
	p.Step(5_000)
	ck := checkpoint.FromPlatform(p)

	q := emu.MustNew(emu.DefaultConfig(4)) // wrong core count
	loadSpec(t, q, matrixSpec(t, 4))
	if err := ck.Apply(q); err == nil {
		t.Fatal("apply to a 4-core platform should fail")
	}
}

func TestApplyRejectsTamperedDigest(t *testing.T) {
	p := buildRun(t)
	p.Step(5_000)
	ck := checkpoint.FromPlatform(p)
	ck.StateDigest ^= 1

	q := buildRun(t)
	if err := ck.Apply(q); err == nil {
		t.Fatal("apply with a tampered state digest should succeed-fail, got nil")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := checkpoint.Encode(fullCheckpoint(t, buildRun(t)))

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(data); n += 97 {
		if _, err := checkpoint.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Any single-byte flip must be caught by the checksum (or earlier).
	for i := 0; i < len(data); i += 131 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := checkpoint.Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded cleanly", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := checkpoint.Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

func TestWriteReadFile(t *testing.T) {
	ck := fullCheckpoint(t, buildRun(t))
	path := filepath.Join(t.TempDir(), "win3.tmck")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	dec, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dec.StateDigest != ck.StateDigest || dec.Window != ck.Window {
		t.Fatalf("file round-trip drift: %+v", dec)
	}
}

func TestStoreNearestAtOrBefore(t *testing.T) {
	mk := func(cycle uint64) *checkpoint.Checkpoint {
		c := &checkpoint.Checkpoint{Platform: &emu.PlatformState{}}
		c.Platform.Clock.Cycle = cycle
		return c
	}
	s := &checkpoint.Store{}
	s.Add(mk(3000))
	s.Add(mk(1000))
	s.Add(mk(2000))
	if s.Len() != 3 {
		t.Fatalf("store len %d", s.Len())
	}
	for _, tc := range []struct {
		at   uint64
		want uint64
		ok   bool
	}{{999, 0, false}, {1000, 1000, true}, {1500, 1000, true}, {2999, 2000, true}, {9999, 3000, true}} {
		got := s.NearestAtOrBefore(tc.at)
		if (got != nil) != tc.ok {
			t.Fatalf("NearestAtOrBefore(%d): got %v, ok=%v", tc.at, got, tc.ok)
		}
		if got != nil && got.Platform.Clock.Cycle != tc.want {
			t.Fatalf("NearestAtOrBefore(%d) = cycle %d, want %d", tc.at, got.Platform.Clock.Cycle, tc.want)
		}
	}
}
