package checkpoint

// Low-level binary codec: little-endian primitives over a byte buffer.
// The encoding is canonical — every value has exactly one valid byte
// representation (booleans must be 0 or 1, counts are fixed-width) — so
// decode followed by re-encode reproduces the input byte for byte, which is
// the round-trip property FuzzCheckpointRoundTrip enforces. The reader
// carries a sticky error and never panics: every length is validated
// against the remaining input before any allocation, so truncated or
// hostile inputs fail cleanly.

import (
	"fmt"
	"math"
)

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *writer) u64(v uint64) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

// need reports whether n more bytes are available, failing otherwise.
func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < n {
		r.fail("truncated: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
		return false
	}
	return true
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := uint16(r.b[r.off]) | uint16(r.b[r.off+1])<<8
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	b := r.b[r.off:]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	b := r.b[r.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	v := r.u8()
	if r.err == nil && v > 1 {
		r.fail("non-canonical boolean %d at offset %d", v, r.off-1)
	}
	return v == 1
}

// count reads an element count and validates count*elemSize against the
// remaining input, so a hostile length prefix cannot trigger a huge
// allocation.
func (r *reader) count(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n > r.remaining()/elemSize {
		r.fail("count %d at offset %d exceeds remaining input", n, r.off-4)
		return 0
	}
	return n
}

func (r *reader) bytes() []byte {
	n := r.count(1)
	if r.err != nil || !r.need(n) {
		return nil
	}
	out := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return out
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil || !r.need(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// FNV-1a 64-bit, matching internal/golden, used as the payload checksum.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnv64(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}
