package checkpoint_test

import (
	"bytes"
	"testing"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
)

// FuzzCheckpointRoundTrip feeds arbitrary bytes to the strict decoder. The
// contract under fuzz: never panic, and any input that decodes cleanly must
// re-encode to the identical bytes (the codec is canonical). Seeds include
// a real encoded checkpoint so the fuzzer starts inside the format.
func FuzzCheckpointRoundTrip(f *testing.F) {
	small := &checkpoint.Checkpoint{Platform: &emu.PlatformState{}}
	f.Add(checkpoint.Encode(small))

	p := emu.MustNew(emu.DefaultConfig(1))
	p.Step(100)
	f.Add(checkpoint.Encode(checkpoint.FromPlatform(p)))

	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4d, 0x43, 0x4b}) // bare magic

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := checkpoint.Decode(data)
		if err != nil {
			return
		}
		re := checkpoint.Encode(ck)
		if !bytes.Equal(data, re) {
			t.Fatalf("decode/re-encode not byte-identical: %d in, %d out", len(data), len(re))
		}
	})
}
