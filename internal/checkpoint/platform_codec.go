package checkpoint

// Serialization of emu.PlatformState and LoopState. Field order here IS the
// format: it must only change together with a Version bump.

import (
	"thermemu/internal/bus"
	"thermemu/internal/cpu"
	"thermemu/internal/emu"
	"thermemu/internal/mem"
	"thermemu/internal/noc"
	"thermemu/internal/sniffer"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/vpcm"
)

func encodeClock(w *writer, s *vpcm.State) {
	w.u64(s.PhysHz)
	w.u64(s.VirtHz)
	w.u64(s.Cycle)
	w.u64(s.TimePs)
	w.u64(s.WallPs)
	w.u64(s.FrozenPs)
	w.u32(uint32(len(s.Suppression)))
	for _, sc := range s.Suppression {
		w.str(sc.Source)
		w.u64(sc.Cycles)
	}
	w.u32(uint32(len(s.FrozenBySrc)))
	for _, sp := range s.FrozenBySrc {
		w.str(sp.Source)
		w.u64(sp.Ps)
	}
	w.u32(uint32(len(s.History)))
	for _, h := range s.History {
		w.u64(h.Cycle)
		w.u64(h.TimePs)
		w.u64(h.Hz)
	}
}

func decodeClock(r *reader) vpcm.State {
	var s vpcm.State
	s.PhysHz = r.u64()
	s.VirtHz = r.u64()
	s.Cycle = r.u64()
	s.TimePs = r.u64()
	s.WallPs = r.u64()
	s.FrozenPs = r.u64()
	for i, n := 0, r.count(5); i < n && r.err == nil; i++ {
		src := r.str()
		s.Suppression = append(s.Suppression, vpcm.SourceCycles{Source: src, Cycles: r.u64()})
	}
	for i, n := 0, r.count(5); i < n && r.err == nil; i++ {
		src := r.str()
		s.FrozenBySrc = append(s.FrozenBySrc, vpcm.SourcePs{Source: src, Ps: r.u64()})
	}
	for i, n := 0, r.count(24); i < n && r.err == nil; i++ {
		s.History = append(s.History, vpcm.FreqChange{Cycle: r.u64(), TimePs: r.u64(), Hz: r.u64()})
	}
	return s
}

func encodeCore(w *writer, c *cpu.CoreState) {
	for r := 0; r < numRegs; r++ {
		w.u32(c.Regs[r])
	}
	w.u32(c.PC)
	w.u64(c.Stall)
	w.bool(c.Halt)
	w.bool(c.HasFault)
	w.str(c.FaultMsg)
	w.u8(uint8(c.Mode))
	w.u64(c.Stats.Instructions)
	w.u64(c.Stats.ActiveCycles)
	w.u64(c.Stats.StallCycles)
	w.u64(c.Stats.IdleCycles)
	w.u64(c.Stats.Loads)
	w.u64(c.Stats.Stores)
	w.u64(c.Stats.Branches)
	w.u64(c.Stats.Taken)
	w.u64(c.Stats.Paired)
}

func decodeCore(r *reader) cpu.CoreState {
	var c cpu.CoreState
	for i := 0; i < numRegs; i++ {
		c.Regs[i] = r.u32()
	}
	c.PC = r.u32()
	c.Stall = r.u64()
	c.Halt = r.bool()
	c.HasFault = r.bool()
	c.FaultMsg = r.str()
	c.Mode = cpu.State(r.u8())
	c.Stats.Instructions = r.u64()
	c.Stats.ActiveCycles = r.u64()
	c.Stats.StallCycles = r.u64()
	c.Stats.IdleCycles = r.u64()
	c.Stats.Loads = r.u64()
	c.Stats.Stores = r.u64()
	c.Stats.Branches = r.u64()
	c.Stats.Taken = r.u64()
	c.Stats.Paired = r.u64()
	return c
}

func encodeCache(w *writer, c *mem.CacheState) {
	w.u32(uint32(len(c.Lines)))
	for _, ln := range c.Lines {
		w.u32(ln.Tag)
		w.bool(ln.Valid)
		w.bool(ln.Dirty)
		w.u64(ln.LRU)
	}
	w.u64(c.Stamp)
	w.u64(c.Stats.Reads)
	w.u64(c.Stats.Writes)
	w.u64(c.Stats.Hits)
	w.u64(c.Stats.Misses)
	w.u64(c.Stats.Evictions)
	w.u64(c.Stats.Writebacks)
	w.bool(c.Enabled)
}

func decodeCache(r *reader) mem.CacheState {
	var c mem.CacheState
	for i, n := 0, r.count(14); i < n && r.err == nil; i++ {
		c.Lines = append(c.Lines, mem.CacheLineState{
			Tag: r.u32(), Valid: r.bool(), Dirty: r.bool(), LRU: r.u64()})
	}
	c.Stamp = r.u64()
	c.Stats.Reads = r.u64()
	c.Stats.Writes = r.u64()
	c.Stats.Hits = r.u64()
	c.Stats.Misses = r.u64()
	c.Stats.Evictions = r.u64()
	c.Stats.Writebacks = r.u64()
	c.Enabled = r.bool()
	return c
}

func encodeCtrl(w *writer, c *mem.CtrlStats) {
	w.u64(c.Fetches)
	w.u64(c.PrivateReads)
	w.u64(c.PrivateWrits)
	w.u64(c.SharedReads)
	w.u64(c.SharedWrits)
	w.u64(c.DeviceOps)
	w.u64(c.StallCycles)
}

func decodeCtrl(r *reader) mem.CtrlStats {
	var c mem.CtrlStats
	c.Fetches = r.u64()
	c.PrivateReads = r.u64()
	c.PrivateWrits = r.u64()
	c.SharedReads = r.u64()
	c.SharedWrits = r.u64()
	c.DeviceOps = r.u64()
	c.StallCycles = r.u64()
	return c
}

func encodeMemory(w *writer, m *mem.MemoryState) {
	w.u32(uint32(len(m.Pages)))
	for _, pg := range m.Pages {
		w.u32(pg.Addr)
		w.bytes(pg.Data)
	}
	w.u64(m.Stats.Reads)
	w.u64(m.Stats.Writes)
}

func decodeMemory(r *reader) mem.MemoryState {
	var m mem.MemoryState
	for i, n := 0, r.count(8); i < n && r.err == nil; i++ {
		addr := r.u32()
		m.Pages = append(m.Pages, mem.PageState{Addr: addr, Data: r.bytes()})
	}
	m.Stats.Reads = r.u64()
	m.Stats.Writes = r.u64()
	return m
}

func encodeU64s(w *writer, vs []uint64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

func decodeU64s(r *reader) []uint64 {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u64())
	}
	return out
}

func encodeF64s(w *writer, vs []float64) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

func decodeF64s(r *reader) []float64 {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.f64())
	}
	return out
}

func encodePlatform(w *writer, s *emu.PlatformState) {
	if s == nil {
		s = &emu.PlatformState{}
	}
	clock := s.Clock
	encodeClock(w, &clock)
	w.u32(uint32(len(s.Cores)))
	for i := range s.Cores {
		encodeCore(w, &s.Cores[i])
	}
	w.u32(uint32(len(s.ICaches)))
	for i := range s.ICaches {
		encodeCache(w, &s.ICaches[i])
	}
	w.u32(uint32(len(s.DCaches)))
	for i := range s.DCaches {
		encodeCache(w, &s.DCaches[i])
	}
	w.u32(uint32(len(s.L2s)))
	for i := range s.L2s {
		encodeCache(w, &s.L2s[i])
	}
	w.u32(uint32(len(s.Ctrls)))
	for i := range s.Ctrls {
		encodeCtrl(w, &s.Ctrls[i])
	}
	w.u32(uint32(len(s.Privs)))
	for i := range s.Privs {
		encodeMemory(w, &s.Privs[i])
	}
	w.u32(uint32(len(s.Scratch)))
	for i := range s.Scratch {
		encodeMemory(w, &s.Scratch[i])
	}
	encodeMemory(w, &s.Shared)
	w.i64(int64(s.Barrier.Arrivals))
	w.u32(s.Barrier.Gen)
	w.bool(s.Bus != nil)
	if s.Bus != nil {
		w.u64(s.Bus.BusyUntil)
		w.i64(int64(s.Bus.LastGrant))
		w.u64(s.Bus.Stats.Transactions)
		w.u64(s.Bus.Stats.Reads)
		w.u64(s.Bus.Stats.Writes)
		w.u64(s.Bus.Stats.BusyCycles)
		w.u64(s.Bus.Stats.WaitCycles)
		w.u64(s.Bus.Stats.BeatsCarried)
		w.u64(s.Bus.Stats.Transitions)
		encodeU64s(w, s.Bus.PerMaster)
	}
	w.bool(s.Noc != nil)
	if s.Noc != nil {
		encodeU64s(w, s.Noc.LinkBusy)
		encodeU64s(w, s.Noc.LinkUse)
		w.u64(s.Noc.Stats.Packets)
		w.u64(s.Noc.Stats.Flits)
		w.u64(s.Noc.Stats.OCPReads)
		w.u64(s.Noc.Stats.OCPWrites)
		w.u64(s.Noc.Stats.WaitCycles)
		w.u64(s.Noc.Stats.HopsTraveled)
		w.u64(s.Noc.Stats.Transitions)
	}
	w.u64(s.Skip.EventCycles)
	w.u64(s.Skip.SkippedCycles)
	w.u64(s.Skip.CoreSteps)
	w.u32(uint32(len(s.Acts)))
	for _, a := range s.Acts {
		for _, c := range a.Counts {
			w.u64(c)
		}
		w.bool(a.Enabled)
	}
	w.u32(uint32(len(s.Events)))
	for _, e := range s.Events {
		w.u64(e.Logged)
		w.u64(e.Dropped)
		w.u64(e.FullHits)
		w.bool(e.Enabled)
	}
	w.u32(uint32(len(s.RingEvents)))
	for _, ev := range s.RingEvents {
		w.u64(ev.Cycle)
		w.u16(ev.Source)
		w.u8(uint8(ev.Kind))
		w.u32(ev.Addr)
		w.u32(ev.Info)
	}
}

func decodePlatform(r *reader) *emu.PlatformState {
	s := &emu.PlatformState{}
	s.Clock = decodeClock(r)
	for i, n := 0, r.count(4*numRegs+31); i < n && r.err == nil; i++ {
		s.Cores = append(s.Cores, decodeCore(r))
	}
	for i, n := 0, r.count(59); i < n && r.err == nil; i++ {
		s.ICaches = append(s.ICaches, decodeCache(r))
	}
	for i, n := 0, r.count(59); i < n && r.err == nil; i++ {
		s.DCaches = append(s.DCaches, decodeCache(r))
	}
	for i, n := 0, r.count(59); i < n && r.err == nil; i++ {
		s.L2s = append(s.L2s, decodeCache(r))
	}
	for i, n := 0, r.count(56); i < n && r.err == nil; i++ {
		s.Ctrls = append(s.Ctrls, decodeCtrl(r))
	}
	for i, n := 0, r.count(20); i < n && r.err == nil; i++ {
		s.Privs = append(s.Privs, decodeMemory(r))
	}
	for i, n := 0, r.count(20); i < n && r.err == nil; i++ {
		s.Scratch = append(s.Scratch, decodeMemory(r))
	}
	s.Shared = decodeMemory(r)
	s.Barrier.Arrivals = int(r.i64())
	s.Barrier.Gen = r.u32()
	if r.bool() {
		b := &bus.State{}
		b.BusyUntil = r.u64()
		b.LastGrant = int(r.i64())
		b.Stats.Transactions = r.u64()
		b.Stats.Reads = r.u64()
		b.Stats.Writes = r.u64()
		b.Stats.BusyCycles = r.u64()
		b.Stats.WaitCycles = r.u64()
		b.Stats.BeatsCarried = r.u64()
		b.Stats.Transitions = r.u64()
		b.PerMaster = decodeU64s(r)
		s.Bus = b
	}
	if r.bool() {
		n := &noc.State{}
		n.LinkBusy = decodeU64s(r)
		n.LinkUse = decodeU64s(r)
		n.Stats.Packets = r.u64()
		n.Stats.Flits = r.u64()
		n.Stats.OCPReads = r.u64()
		n.Stats.OCPWrites = r.u64()
		n.Stats.WaitCycles = r.u64()
		n.Stats.HopsTraveled = r.u64()
		n.Stats.Transitions = r.u64()
		s.Noc = n
	}
	s.Skip.EventCycles = r.u64()
	s.Skip.SkippedCycles = r.u64()
	s.Skip.CoreSteps = r.u64()
	for i, n := 0, r.count(25); i < n && r.err == nil; i++ {
		var a sniffer.ActivityState
		for j := range a.Counts {
			a.Counts[j] = r.u64()
		}
		a.Enabled = r.bool()
		s.Acts = append(s.Acts, a)
	}
	for i, n := 0, r.count(25); i < n && r.err == nil; i++ {
		s.Events = append(s.Events, sniffer.EventCounters{
			Logged: r.u64(), Dropped: r.u64(), FullHits: r.u64(), Enabled: r.bool()})
	}
	for i, n := 0, r.count(19); i < n && r.err == nil; i++ {
		s.RingEvents = append(s.RingEvents, sniffer.Event{
			Cycle: r.u64(), Source: r.u16(), Kind: sniffer.EventKind(r.u8()),
			Addr: r.u32(), Info: r.u32()})
	}
	return s
}

func encodeLoop(w *writer, l *LoopState) {
	w.bool(l.Thermal != nil)
	if l.Thermal != nil {
		encodeF64s(w, l.Thermal.T)
		encodeF64s(w, l.Thermal.TAtK)
		encodeF64s(w, l.Thermal.Pw)
		w.f64(l.Thermal.Time)
	}
	w.bool(l.Policy != nil)
	if l.Policy != nil {
		w.bool(l.Policy.Throttled)
		w.u64(l.Policy.LastFreqHz)
		w.i64(int64(l.Policy.Switches))
	}
	encodeF64s(w, l.CompTemps)
	w.f64(l.MaxTempK)
}

func decodeLoop(r *reader) *LoopState {
	l := &LoopState{}
	if r.bool() {
		t := &thermal.ModelState{}
		t.T = decodeF64s(r)
		t.TAtK = decodeF64s(r)
		t.Pw = decodeF64s(r)
		t.Time = r.f64()
		l.Thermal = t
	}
	if r.bool() {
		p := &tm.PolicyState{}
		p.Throttled = r.bool()
		p.LastFreqHz = r.u64()
		p.Switches = int(r.i64())
		l.Policy = p
	}
	l.CompTemps = decodeF64s(r)
	l.MaxTempK = r.f64()
	return l
}
