package checkpoint

// Replay-to-divergence: instead of only naming the first divergent golden
// record, rebuild both kernels' platforms from the nearest common
// checkpoint, lockstep them cycle by cycle with the per-cycle reference
// kernel (StepOne), and report the exact cycle, core and fields where their
// architectural state first disagrees — plus both full state dumps at that
// cycle.

import (
	"fmt"
	"sort"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
)

// Store is an ordered in-memory collection of window-boundary checkpoints,
// the replay debugger's seek index.
type Store struct {
	cks []*Checkpoint // ascending by platform cycle
}

// Add inserts a checkpoint, keeping the store ordered by platform cycle.
func (s *Store) Add(c *Checkpoint) {
	if c == nil || c.Platform == nil {
		return
	}
	s.cks = append(s.cks, c)
	sort.SliceStable(s.cks, func(i, j int) bool {
		return s.cks[i].Platform.Clock.Cycle < s.cks[j].Platform.Clock.Cycle
	})
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int { return len(s.cks) }

// NearestAtOrBefore returns the latest checkpoint taken at or before the
// given cycle, or nil when none qualifies.
func (s *Store) NearestAtOrBefore(cycle uint64) *Checkpoint {
	var best *Checkpoint
	for _, c := range s.cks {
		if c.Platform.Clock.Cycle <= cycle {
			best = c
		} else {
			break
		}
	}
	return best
}

// Replayer rebuilds one side of a divergence investigation: Build returns a
// fresh platform at cycle 0 with the workload loaded, and Store holds the
// side's window-boundary checkpoints (may be empty — replay then starts
// from cycle 0).
type Replayer struct {
	Build func() (*emu.Platform, error)
	Store *Store
	// AfterStep, when set, runs after every replayed cycle on this side —
	// the seam a test double uses to model a deterministic kernel bug
	// (e.g. flip one register bit at a fixed cycle), and a hook for
	// instrumented replays. It must be a pure function of the platform
	// state and cycle so the replay reproduces the original run.
	AfterStep func(p *emu.Platform, cycle uint64)
}

// Report is the outcome of a replay: the first cycle at which the two
// platforms' architectural state disagreed, the differing fields, and both
// sides' full state dumps at that cycle.
type Report struct {
	// FromCycle is where replay started (the common checkpoint's cycle, or
	// 0 when replay started from a fresh build).
	FromCycle uint64
	// Cycle is the first divergent cycle: after stepping both platforms
	// through this cycle their states first disagreed.
	Cycle uint64
	Diffs []emu.StateDiff
	DumpA string
	DumpB string
}

// String renders the report headline plus the first few diffs.
func (r *Report) String() string {
	s := fmt.Sprintf("divergence at cycle %d (replayed from %d), %d fields differ",
		r.Cycle, r.FromCycle, len(r.Diffs))
	for i, d := range r.Diffs {
		if i == 8 {
			s += fmt.Sprintf("\n  ... and %d more", len(r.Diffs)-8)
			break
		}
		s += "\n  " + d.String()
	}
	return s
}

// commonStart picks the latest checkpoint at or before hint that both
// stores hold with identical state digests — the safest point both sides
// agree on. A nil return means replay must start from a fresh build.
func commonStart(a, b *Store, hint uint64) (*Checkpoint, *Checkpoint) {
	if a == nil || b == nil {
		return nil, nil
	}
	limit := hint
	for {
		ca := a.NearestAtOrBefore(limit)
		if ca == nil {
			return nil, nil
		}
		cy := ca.Platform.Clock.Cycle
		cb := b.NearestAtOrBefore(cy)
		if cb != nil && cb.Platform.Clock.Cycle == cy && cb.StateDigest == ca.StateDigest {
			return ca, cb
		}
		if cy == 0 {
			return nil, nil
		}
		limit = cy - 1
	}
}

// ReplayToDivergence drives both sides from the nearest common checkpoint
// at or before hintCycle (the divergent cycle the golden journal named),
// single-stepping with StepOne and diffing the full platform state after
// every cycle. It returns the report for the first divergent cycle, or an
// error if the two sides never disagree by hintCycle — meaning the recorded
// divergence does not reproduce under per-cycle stepping.
func ReplayToDivergence(a, b *Replayer, hintCycle uint64) (*Report, error) {
	pa, err := a.Build()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: build A: %w", err)
	}
	pb, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: build B: %w", err)
	}
	from := uint64(0)
	if ca, cb := commonStart(a.Store, b.Store, hintCycle); ca != nil {
		if err := ca.Apply(pa); err != nil {
			return nil, fmt.Errorf("checkpoint: restore A: %w", err)
		}
		if err := cb.Apply(pb); err != nil {
			return nil, fmt.Errorf("checkpoint: restore B: %w", err)
		}
		from = ca.Platform.Clock.Cycle
	}
	if pa.VPCM.Cycle() != pb.VPCM.Cycle() {
		return nil, fmt.Errorf("checkpoint: replay starts misaligned (A at %d, B at %d)",
			pa.VPCM.Cycle(), pb.VPCM.Cycle())
	}

	diff := func() (*Report, error) {
		sa, sb := pa.SaveState(), pb.SaveState()
		diffs, err := emu.DiffStates(sa, sb)
		if err != nil {
			return nil, err
		}
		if len(diffs) == 0 {
			return nil, nil
		}
		return &Report{FromCycle: from, Cycle: pa.VPCM.Cycle(),
			Diffs: diffs, DumpA: sa.Dump(), DumpB: sb.Dump()}, nil
	}
	// The restored states themselves may already disagree (e.g. divergence
	// inside the checkpointed window of a run without journaling).
	if rep, err := diff(); rep != nil || err != nil {
		return rep, err
	}
	for pa.VPCM.Cycle() <= hintCycle {
		if pa.AllHalted() && pb.AllHalted() {
			break
		}
		pa.StepOne()
		pb.StepOne()
		if a.AfterStep != nil {
			a.AfterStep(pa, pa.VPCM.Cycle())
		}
		if b.AfterStep != nil {
			b.AfterStep(pb, pb.VPCM.Cycle())
		}
		if rep, err := diff(); rep != nil || err != nil {
			return rep, err
		}
	}
	return nil, fmt.Errorf("checkpoint: no divergence reproduced by cycle %d (replayed from %d)",
		hintCycle, from)
}

// HintFromDivergence extracts the replay target cycle from a golden
// divergence report: the cycle of the first differing record.
func HintFromDivergence(d *golden.Divergence) (uint64, bool) {
	switch {
	case d == nil:
		return 0, false
	case d.A != nil && d.B != nil:
		cy := d.A.Cycle
		if d.B.Cycle > cy {
			cy = d.B.Cycle
		}
		return cy, true
	case d.A != nil:
		return d.A.Cycle, true
	case d.B != nil:
		return d.B.Cycle, true
	}
	return 0, false
}
