package checkpoint_test

import (
	"strings"
	"testing"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/golden"
)

const (
	// corruptCycle is where the buggy kernel double flips one bit (the
	// 2-core matrix workload runs ~1.9k cycles, so this lands mid-run).
	corruptCycle = 1_200
	// sampleEvery/ckptEvery are the digest and checkpoint cadences of the
	// simulated original runs.
	sampleEvery = 256
	ckptEvery   = 2 * sampleEvery
	// runUntil bounds the original runs (generous: the corrupted side may
	// never halt).
	runUntil = 4_000
)

// corrupt is the deliberate one-bit kernel divergence: at corruptCycle,
// core 0's PC has bit 2 flipped, skewing its instruction stream by one
// word. It is a pure function of the cycle, so a replayed run reproduces
// the original divergence exactly.
func corrupt(p *emu.Platform, cycle uint64) {
	if cycle == corruptCycle {
		c := p.Cores[0]
		c.SetPC(c.PC() ^ 4)
	}
}

// originalRun simulates one side's original run with the per-cycle kernel:
// digest samples every sampleEvery cycles, window-boundary checkpoints
// every ckptEvery cycles, and the buggy double applied when buggy is set.
// It returns the journaled trace and the checkpoint store.
func originalRun(t *testing.T, until uint64, buggy bool) (*golden.Trace, *checkpoint.Store) {
	t.Helper()
	p := buildRun(t)
	tr := golden.NewJournal()
	store := &checkpoint.Store{}
	for p.VPCM.Cycle() < until && !p.AllHalted() {
		p.StepOne()
		cy := p.VPCM.Cycle()
		if buggy {
			corrupt(p, cy)
		}
		if cy%sampleEvery == 0 {
			emu.DigestSnapshot(tr, p.Snapshot())
		}
		if cy%ckptEvery == 0 {
			store.Add(checkpoint.FromPlatform(p))
		}
	}
	p.DigestInto(tr)
	return tr, store
}

func TestReplayToDivergence(t *testing.T) {
	trA, storeA := originalRun(t, runUntil, false)
	trB, storeB := originalRun(t, runUntil, true)

	div := golden.Compare(trA, trB)
	if div == nil {
		t.Fatal("corrupted run should diverge from the clean run")
	}
	hint, ok := checkpoint.HintFromDivergence(div)
	if !ok {
		t.Fatalf("no hint cycle in divergence %v", div)
	}
	// The journal can only localise to a sample boundary at or after the
	// corruption; replay must pin the exact cycle.
	if hint < corruptCycle {
		t.Fatalf("hint cycle %d precedes the corruption at %d", hint, corruptCycle)
	}

	a := &checkpoint.Replayer{Build: func() (*emu.Platform, error) { return buildRun(t), nil }, Store: storeA}
	b := &checkpoint.Replayer{Build: func() (*emu.Platform, error) { return buildRun(t), nil }, Store: storeB,
		AfterStep: corrupt}
	rep, err := checkpoint.ReplayToDivergence(a, b, hint)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}

	if rep.Cycle != corruptCycle {
		t.Errorf("replay found divergence at cycle %d, want %d", rep.Cycle, corruptCycle)
	}
	// Replay must have started from the nearest common checkpoint, not from
	// scratch: the last boundary before the corruption is 4096*1 = 4096.
	if wantFrom := uint64(corruptCycle/ckptEvery) * ckptEvery; rep.FromCycle != wantFrom {
		t.Errorf("replayed from cycle %d, want nearest checkpoint %d", rep.FromCycle, wantFrom)
	}
	found := false
	for _, d := range rep.Diffs {
		if d.Core == 0 && d.Field == "pc" {
			if d.A^d.B != 4 {
				t.Errorf("pc diff is not the injected one-bit flip: %s", d)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no core-0 pc diff in report: %v", rep)
	}
	if rep.DumpA == "" || rep.DumpB == "" || !strings.Contains(rep.DumpA, "core 0:") {
		t.Errorf("state dumps missing from report")
	}
	if !strings.Contains(rep.String(), "divergence at cycle") {
		t.Errorf("report headline malformed: %s", rep.String())
	}
}

// TestReplayNoDivergence: replaying two identical sides reports an error
// instead of fabricating a divergence.
func TestReplayNoDivergence(t *testing.T) {
	_, store := originalRun(t, runUntil, false)
	mk := func() *checkpoint.Replayer {
		return &checkpoint.Replayer{Build: func() (*emu.Platform, error) { return buildRun(t), nil }, Store: store}
	}
	if rep, err := checkpoint.ReplayToDivergence(mk(), mk(), 1_500); err == nil {
		t.Fatalf("identical sides produced a report: %v", rep)
	}
}

// TestReplayWithoutCheckpoints: with empty stores the replay falls back to
// a fresh build from cycle 0 and still pins the divergence.
func TestReplayWithoutCheckpoints(t *testing.T) {
	a := &checkpoint.Replayer{Build: func() (*emu.Platform, error) { return buildRun(t), nil }, Store: &checkpoint.Store{}}
	b := &checkpoint.Replayer{Build: func() (*emu.Platform, error) { return buildRun(t), nil }, Store: &checkpoint.Store{},
		AfterStep: corrupt}
	rep, err := checkpoint.ReplayToDivergence(a, b, corruptCycle+sampleEvery)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.FromCycle != 0 || rep.Cycle != corruptCycle {
		t.Errorf("replay from %d found cycle %d, want 0 and %d", rep.FromCycle, rep.Cycle, corruptCycle)
	}
}
