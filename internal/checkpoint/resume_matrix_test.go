package checkpoint_test

// The differential resume matrix: for the committed golden workloads on
// both interconnects and both emulation kernels, a run resumed from any
// window-boundary checkpoint must produce a final golden digest (and record
// count) bit-identical to the uninterrupted run's. The checkpointed run
// replays the exact RunDigest/RunParallelDigest window boundaries, so the
// straight digest is computed through the public API the golden-file suite
// uses. TestResumeMatrixDigestIdentity also runs under the CI race
// detector, covering the parallel kernel's restore path.

import (
	"fmt"
	"testing"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/workloads"
)

const (
	matrixEvery = 256
	matrixMax   = 2_000_000
)

// matrixCase is one cell of the workload × interconnect grid (the kernel
// axis is added by the test).
type matrixCase struct {
	name  string
	cores int
	spec  func(cores int) (*workloads.Spec, error)
	noc   bool
}

func matrixCases() []matrixCase {
	mk := func(f func(int) (*workloads.Spec, error)) func(int) (*workloads.Spec, error) { return f }
	matrix := mk(func(c int) (*workloads.Spec, error) { return workloads.Matrix(c, 4, 2, 64) })
	dither := mk(func(c int) (*workloads.Spec, error) { return workloads.Dithering(c, 8) })
	locks := mk(func(c int) (*workloads.Spec, error) { return workloads.Locks(c, 6) })
	return []matrixCase{
		{"matrix-bus", 2, matrix, false},
		{"matrix-noc", 2, matrix, true},
		{"dithering-bus", 2, dither, false},
		{"dithering-noc", 2, dither, true},
		{"locks-bus", 2, locks, false},
		{"locks-noc", 2, locks, true},
	}
}

func buildCase(t *testing.T, mc matrixCase, parallel bool) *emu.Platform {
	t.Helper()
	cfg := emu.DefaultConfig(mc.cores)
	if mc.noc {
		cfg.IC = emu.ICNoC
		cfg.NoC = emu.Table3NoC(mc.cores)
	}
	cfg.Parallel = parallel
	p := emu.MustNew(cfg)
	spec, err := mc.spec(mc.cores)
	if err != nil {
		t.Fatal(err)
	}
	loadSpec(t, p, spec)
	return p
}

// stepDigestWindow advances one digest window exactly as RunDigest /
// RunParallelDigest do, so manually-driven traces share their boundaries.
func stepDigestWindow(p *emu.Platform, parallel bool) {
	n := uint64(matrixEvery)
	if left := uint64(matrixMax) - p.VPCM.Cycle(); n > left {
		n = left
	}
	if parallel {
		p.RunParallel(0, p.VPCM.Cycle()+n)
	} else {
		p.Step(n)
	}
}

func TestResumeMatrixDigestIdentity(t *testing.T) {
	for _, mc := range matrixCases() {
		for _, parallel := range []bool{false, true} {
			kern := "serial"
			if parallel {
				kern = "parallel"
			}
			mc, parallel := mc, parallel
			t.Run(fmt.Sprintf("%s/%s", mc.name, kern), func(t *testing.T) {
				t.Parallel()
				// Uninterrupted run through the public digest API.
				straight := golden.New()
				p := buildCase(t, mc, parallel)
				if parallel {
					p.RunParallelDigest(0, matrixMax, matrixEvery, straight)
				} else {
					p.RunDigest(matrixMax, matrixEvery, straight)
				}

				// Checkpointed run: same boundaries, a checkpoint plus the
				// golden accumulator captured at every one.
				type point struct {
					ck  *checkpoint.Checkpoint
					sum uint64
					n   int
				}
				var pts []point
				tr := golden.New()
				q := buildCase(t, mc, parallel)
				for q.VPCM.Cycle() < matrixMax && !q.AllHalted() {
					stepDigestWindow(q, parallel)
					emu.DigestSnapshot(tr, q.Snapshot())
					sum, n := tr.State()
					pts = append(pts, point{checkpoint.FromPlatform(q), sum, n})
				}
				q.DigestInto(tr)
				if tr.Sum64() != straight.Sum64() || tr.Len() != straight.Len() {
					t.Fatalf("checkpointed run digest %s/%d != straight %s/%d",
						tr.Hex(), tr.Len(), straight.Hex(), straight.Len())
				}
				if len(pts) < 3 {
					t.Fatalf("workload too short for the resume matrix: %d windows", len(pts))
				}

				// Resume from the first, middle and last-but-one boundary,
				// round-tripping through the binary codec as a process
				// restart would.
				for _, wi := range []int{0, len(pts) / 2, len(pts) - 2} {
					pt := pts[wi]
					ck, err := checkpoint.Decode(checkpoint.Encode(pt.ck))
					if err != nil {
						t.Fatalf("window %d: decode: %v", wi+1, err)
					}
					r := buildCase(t, mc, parallel)
					if err := ck.Apply(r); err != nil {
						t.Fatalf("window %d: apply: %v", wi+1, err)
					}
					rtr := golden.New()
					if err := rtr.Seed(pt.sum, pt.n); err != nil {
						t.Fatal(err)
					}
					for r.VPCM.Cycle() < matrixMax && !r.AllHalted() {
						stepDigestWindow(r, parallel)
						emu.DigestSnapshot(rtr, r.Snapshot())
					}
					r.DigestInto(rtr)
					if rtr.Sum64() != straight.Sum64() || rtr.Len() != straight.Len() {
						t.Errorf("resume from window %d: digest %s/%d, want %s/%d",
							wi+1, rtr.Hex(), rtr.Len(), straight.Hex(), straight.Len())
					}
				}
			})
		}
	}
}
