package core

import (
	"runtime"
	"testing"
	"time"

	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/thermal"
	"thermemu/internal/workloads"
)

// benchLoopConfig is the CI reference closed loop: the 4-core OPB-bus
// platform from Table 3 running Matrix-TM, the ARM11 floorplan on 28 cells
// with the sharded solver enabled, and a thermal time scale heavy enough
// that the solve stage costs about as much as a window of emulation — the
// regime the pipelined loop is built for.
func benchLoopConfig(b testing.TB) Config {
	b.Helper()
	pcfg := emu.DefaultConfig(4)
	spec, err := workloads.MatrixTM(4, 8, 120, pcfg.PrivKB)
	if err != nil {
		b.Fatal(err)
	}
	opt := thermal.DefaultOptions()
	opt.Workers = 4
	host, err := NewThermalHost(floorplan.FourARM11(), 28, opt)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Platform:         pcfg,
		Workload:         spec,
		Host:             host,
		WindowPs:         100_000_000, // 0.1 ms virtual per window
		ThermalTimeScale: 40000,       // 0.1 ms window ≈ 4 s thermal transient
		DiscardSamples:   true,
	}
}

// delayTransport models a real Ethernet link: every frame the device
// receives costs a fixed latency. The sleep releases the processor, so the
// pipelined loop can emulate ahead while the reply is in flight even on a
// single-CPU runner.
type delayTransport struct {
	etherlink.Transport
	delay time.Duration
}

func (d delayTransport) Recv() ([]byte, error) {
	f, err := d.Transport.Recv()
	if err == nil {
		time.Sleep(d.delay)
	}
	return f, err
}

// benchClosedLoop runs full workloads at the given pipeline depth and
// reports windows/s plus the measured steady-state allocations per window
// (sampled between two onSample callbacks well past warm-up, so platform
// and pipeline construction are excluded). linkDelay > 0 routes the stats
// over a loopback transport whose replies each cost that latency.
func benchClosedLoop(b *testing.B, depth int, linkDelay time.Duration) {
	const (
		warmupWindow = 8  // first window of the steady-state probe
		probeWindows = 32 // windows between the two MemStats samples
	)
	var (
		totalWindows uint64
		steadyAllocs float64
		steadySeen   bool
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchLoopConfig(b)
		cfg.PipelineDepth = depth
		var serveErr chan error
		if linkDelay > 0 {
			devTr, hostTr := etherlink.LoopbackPair(16)
			cfg.Transport = delayTransport{Transport: devTr, delay: linkDelay}
			cfg.DrainPhysCycles = 100
			opt := thermal.DefaultOptions()
			opt.Workers = 4
			hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, opt)
			if err != nil {
				b.Fatal(err)
			}
			serveErr = make(chan error, 1)
			go func() { serveErr <- hostPlan.Serve(hostTr) }()
		}
		windows := 0
		var m0, m1 runtime.MemStats
		res, err := Run(cfg, func(Sample) {
			windows++
			switch windows {
			case warmupWindow:
				runtime.ReadMemStats(&m0)
			case warmupWindow + probeWindows:
				runtime.ReadMemStats(&m1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		if serveErr != nil {
			if err := <-serveErr; err != nil {
				b.Fatal(err)
			}
		}
		if !res.Done {
			b.Fatal("bench workload incomplete")
		}
		totalWindows += uint64(windows)
		if windows >= warmupWindow+probeWindows && !steadySeen {
			steadySeen = true
			steadyAllocs = float64(m1.Mallocs-m0.Mallocs) / probeWindows
		}
	}
	b.ReportMetric(float64(totalWindows)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
	if steadySeen && linkDelay == 0 {
		b.ReportMetric(steadyAllocs, "allocs/window")
	}
}

// BenchmarkClosedLoopSerial is the in-process baseline: emulate, solve,
// and feed back strictly in sequence.
func BenchmarkClosedLoopSerial(b *testing.B) { benchClosedLoop(b, 0, 0) }

// BenchmarkClosedLoopPipelined overlaps window N+1's emulation with window
// N's thermal solve (depth 1). The overlap needs a second processor; on a
// single-CPU runner this measures the pipeline's bookkeeping overhead
// (cmd/benchgate allows parity there, requires a win above it).
func BenchmarkClosedLoopPipelined(b *testing.B) { benchClosedLoop(b, 1, 0) }

// BenchmarkClosedLoopSerialLink sends every window over a loopback link
// whose reply costs 300 µs, the way a real Ethernet RTT does: the serial
// loop stalls for it once per window.
func BenchmarkClosedLoopSerialLink(b *testing.B) { benchClosedLoop(b, 0, 300*time.Microsecond) }

// BenchmarkClosedLoopPipelinedLink is the same link with a depth-4
// pipeline: queued windows coalesce into batch frames and the emulation
// runs on while replies are in flight, so the RTT is hidden even on one
// CPU. cmd/benchgate fails CI if this ever drops to the serial rate.
func BenchmarkClosedLoopPipelinedLink(b *testing.B) { benchClosedLoop(b, 4, 300*time.Microsecond) }
