package core

// Checkpoint/resume wiring for the co-emulation loops. A checkpoint is cut
// at committed sampling-window boundaries — the only points where the
// platform, the thermal model, the policy and the golden digest lineage are
// all consistent with each other — and carries everything a later process
// needs to continue the run bit-for-bit: the full architectural platform
// state, the RC thermal state, the policy state, the lagged component
// temperatures feeding the next power evaluation, and the golden trace
// accumulator so the resumed run's final digest equals an uninterrupted
// run's.

import (
	"fmt"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/tm"
)

// ckptRuntime carries one run's checkpoint/resume state. A nil *ckptRuntime
// means checkpointing is off: every method is a safe no-op on nil.
type ckptRuntime struct {
	cfg   *Config
	p     *emu.Platform
	every uint64
	// windows counts committed sampling windows across resumes: a run
	// resumed from window W continues at W+1, so the checkpoint cadence is
	// aligned with the original run's.
	windows uint64
	// lagTemps are the component temperatures in effect for the next power
	// evaluation at the last committed boundary (the serial loop's latest
	// SetComponentTemps, the pipeline's delayed feedback).
	lagTemps []float64
	// broken latches a sink failure so the abort path does not try the
	// failing sink again.
	broken bool
}

// newCkptRuntime validates the checkpoint configuration and, when a resume
// checkpoint is present, restores the platform, thermal model, policy and
// golden lineage. It returns (nil, 0, nil) when neither checkpointing nor
// resume is requested. The float64 is the running MaxTempK restored from
// the checkpoint (0 on a fresh run).
func newCkptRuntime(cfg *Config, p *emu.Platform, eval *PowerEvaluator) (*ckptRuntime, float64, error) {
	if cfg.CheckpointSink == nil && cfg.Resume == nil {
		if cfg.CheckpointEvery > 0 {
			return nil, 0, fmt.Errorf("core: CheckpointEvery is set without a CheckpointSink")
		}
		return nil, 0, nil
	}
	if cfg.Transport != nil {
		return nil, 0, fmt.Errorf("core: checkpoint/resume requires an in-process thermal host (a transport-mode run does not own the thermal state)")
	}
	if cfg.CheckpointSink != nil && cfg.Policy != nil {
		if _, ok := cfg.Policy.(tm.Checkpointable); !ok {
			return nil, 0, fmt.Errorf("core: policy %T cannot be checkpointed (no tm.Checkpointable)", cfg.Policy)
		}
	}
	ck := &ckptRuntime{cfg: cfg, p: p, every: uint64(cfg.CheckpointEvery)}
	if ck.every == 0 {
		ck.every = 1
	}
	var maxTempK float64
	if r := cfg.Resume; r != nil {
		if err := r.Apply(p); err != nil {
			return nil, 0, fmt.Errorf("core: resume: %w", err)
		}
		ck.windows = r.Window
		if l := r.Loop; l != nil {
			if l.Thermal != nil {
				if err := cfg.Host.Model.RestoreState(*l.Thermal); err != nil {
					return nil, 0, fmt.Errorf("core: resume thermal state: %w", err)
				}
			}
			if l.Policy != nil && cfg.Policy != nil {
				c, ok := cfg.Policy.(tm.Checkpointable)
				if !ok {
					return nil, 0, fmt.Errorf("core: resume: policy %T cannot restore checkpoint state", cfg.Policy)
				}
				c.RestoreCheckpoint(*l.Policy)
			}
			if len(l.CompTemps) > 0 {
				ck.lagTemps = append([]float64(nil), l.CompTemps...)
				eval.SetComponentTemps(ck.lagTemps)
			}
			maxTempK = l.MaxTempK
		}
		if cfg.Golden != nil && !cfg.Fork {
			if err := cfg.Golden.Seed(r.GoldenSum, int(r.GoldenLen)); err != nil {
				return nil, 0, fmt.Errorf("core: resume golden lineage: %w", err)
			}
		}
	}
	return ck, maxTempK, nil
}

// commit records one committed sampling window and the component
// temperatures its feedback applied.
func (ck *ckptRuntime) commit(compTemps []float64) {
	if ck == nil {
		return
	}
	ck.windows++
	ck.lagTemps = append(ck.lagTemps[:0], compTemps...)
}

// due reports whether the cadence calls for a checkpoint at the current
// committed window count (serial loop: ask right after commit).
func (ck *ckptRuntime) due() bool {
	return ck != nil && ck.cfg.CheckpointSink != nil && !ck.broken &&
		ck.windows%ck.every == 0
}

// pending reports whether a checkpoint will be due once the given number of
// in-flight windows commit (pipelined loop: ask before draining). The
// committed+inflight total advances by exactly one per emulated window, so
// each cadence multiple triggers exactly once.
func (ck *ckptRuntime) pending(inflight uint64) bool {
	return ck != nil && ck.cfg.CheckpointSink != nil && !ck.broken &&
		inflight > 0 && (ck.windows+inflight)%ck.every == 0
}

// capture builds the checkpoint of the current platform + loop state.
func (ck *ckptRuntime) capture(partial bool, maxTempK float64) *checkpoint.Checkpoint {
	c := checkpoint.FromPlatform(ck.p)
	c.Window = ck.windows
	c.Partial = partial
	if ck.cfg.Golden != nil {
		sum, n := ck.cfg.Golden.State()
		c.GoldenSum, c.GoldenLen = sum, uint64(n)
	}
	loop := &checkpoint.LoopState{MaxTempK: maxTempK}
	th := ck.cfg.Host.Model.SaveState()
	loop.Thermal = &th
	if cp, ok := ck.cfg.Policy.(tm.Checkpointable); ok {
		ps := cp.CheckpointState()
		loop.Policy = &ps
	}
	loop.CompTemps = append([]float64(nil), ck.lagTemps...)
	c.Loop = loop
	return c
}

// write cuts a checkpoint and hands it to the sink, latching sink failures.
func (ck *ckptRuntime) write(partial bool, maxTempK float64) error {
	if err := ck.cfg.CheckpointSink(ck.capture(partial, maxTempK)); err != nil {
		ck.broken = true
		return fmt.Errorf("core: checkpoint sink: %w", err)
	}
	return nil
}

// flushPartial cuts a final Partial checkpoint on the abort path, so a
// mid-run failure (solver error, link fault, platform fault) still leaves a
// loadable snapshot for postmortem replay. The original error is always
// preserved; a sink failure is reported alongside it. The snapshot is taken
// at the platform's current (post-abort) state with Partial set — the
// aborted window's emulation is kept, its thermal solve is lost.
func (ck *ckptRuntime) flushPartial(err error, maxTempK float64) error {
	if ck == nil || ck.cfg.CheckpointSink == nil || ck.broken {
		return err
	}
	if werr := ck.write(true, maxTempK); werr != nil {
		return fmt.Errorf("%w (and the partial checkpoint flush failed: %v)", err, werr)
	}
	return err
}
