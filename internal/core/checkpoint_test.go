package core

import (
	"fmt"
	"strings"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/golden"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// collectSink returns a CheckpointSink that round-trips every checkpoint
// through the binary codec (as a file-based sink would) and collects the
// decoded copies.
func collectSink(out *[]*checkpoint.Checkpoint) func(*checkpoint.Checkpoint) error {
	return func(c *checkpoint.Checkpoint) error {
		dec, err := checkpoint.Decode(checkpoint.Encode(c))
		if err != nil {
			return err
		}
		*out = append(*out, dec)
		return nil
	}
}

func TestCheckpointConfigValidation(t *testing.T) {
	sink := func(*checkpoint.Checkpoint) error { return nil }

	cfg := testConfig(t, 2, nil)
	cfg.CheckpointEvery = 2 // without a sink
	if _, err := Run(cfg, nil); err == nil {
		t.Error("CheckpointEvery without a CheckpointSink accepted")
	}

	cfg = testConfig(t, 2, nil)
	dev, _ := etherlink.LoopbackPair(4)
	cfg.Transport = dev
	cfg.CheckpointSink = sink
	if _, err := Run(cfg, nil); err == nil || !strings.Contains(err.Error(), "in-process") {
		t.Errorf("transport-mode checkpointing accepted: %v", err)
	}

	// A policy without checkpoint support cannot be silently dropped from
	// the snapshot: a resumed run would diverge.
	cfg = testConfig(t, 2, uncheckpointablePolicy{})
	cfg.CheckpointSink = sink
	if _, err := Run(cfg, nil); err == nil || !strings.Contains(err.Error(), "Checkpointable") {
		t.Errorf("uncheckpointable policy accepted: %v", err)
	}
}

type uncheckpointablePolicy struct{}

func (uncheckpointablePolicy) Name() string                 { return "uncheckpointable" }
func (uncheckpointablePolicy) Update([]tm.Sensor) tm.Action { return tm.Action{} }

// ckptConfig is testConfig with a finer sampling window (10k cycles at
// 500 MHz), so even the short test workloads span enough windows for the
// resume matrix.
func ckptConfig(t *testing.T, iters int, policy tm.Policy) Config {
	t.Helper()
	cfg := testConfig(t, iters, policy)
	cfg.WindowPs = 20_000_000
	return cfg
}

// runStraight executes one checkpointed reference run and returns its
// result, trace and collected checkpoints.
func runStraight(t *testing.T, iters int, policy tm.Policy, depth, every int) (*Result, *golden.Trace, []*checkpoint.Checkpoint) {
	t.Helper()
	cfg := ckptConfig(t, iters, policy)
	cfg.PipelineDepth = depth
	cfg.Golden = golden.New()
	var cks []*checkpoint.Checkpoint
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = collectSink(&cks)
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("reference run did not finish")
	}
	if len(cks) < 2 {
		t.Fatalf("reference run cut only %d checkpoints", len(cks))
	}
	return res, cfg.Golden, cks
}

// resumeFrom re-runs the same configuration from the given checkpoint.
func resumeFrom(t *testing.T, ck *checkpoint.Checkpoint, iters int, policy tm.Policy, depth, every int, fork bool) (*Result, *golden.Trace, []*checkpoint.Checkpoint) {
	t.Helper()
	cfg := ckptConfig(t, iters, policy)
	cfg.PipelineDepth = depth
	cfg.Golden = golden.New()
	var cks []*checkpoint.Checkpoint
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = collectSink(&cks)
	cfg.Resume = ck
	cfg.Fork = fork
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.Golden, cks
}

// TestSerialResumeDigestIdentity: resuming a serial closed-loop run from
// its first, middle and last checkpoint reproduces the uninterrupted run's
// final golden digest and result metrics bit for bit.
func TestSerialResumeDigestIdentity(t *testing.T) {
	straight, tr, cks := runStraight(t, 16, nil, 0, 2)

	for _, wi := range []int{0, len(cks) / 2, len(cks) - 1} {
		ck := cks[wi]
		res, rtr, rcks := resumeFrom(t, ck, 16, nil, 0, 2, false)
		if rtr.Sum64() != tr.Sum64() || rtr.Len() != tr.Len() {
			t.Errorf("resume from window %d: digest %s/%d, want %s/%d",
				ck.Window, rtr.Hex(), rtr.Len(), tr.Hex(), tr.Len())
		}
		if res.Cycles != straight.Cycles || res.VirtualS != straight.VirtualS ||
			res.MaxTempK != straight.MaxTempK || res.Done != straight.Done ||
			res.DFSEvents != straight.DFSEvents {
			t.Errorf("resume from window %d: metrics drifted: %+v vs %+v",
				ck.Window, res, straight)
		}
		if want := len(straight.Samples) - int(ck.Window); len(res.Samples) != want {
			t.Errorf("resume from window %d: %d samples, want the %d remaining windows",
				ck.Window, len(res.Samples), want)
		}
		// The resumed run's later checkpoints capture the same platform
		// states as the straight run's.
		for _, rck := range rcks {
			for _, sck := range cks {
				if sck.Window == rck.Window && sck.StateDigest != rck.StateDigest {
					t.Errorf("window %d state digest drifted after resume", rck.Window)
				}
			}
		}
	}
}

// TestInterruptedRunResumesToStraightDigest models the real operational
// story behind `thermemu -resume`: a run stops halfway (MaxCycles), and a
// second process resumes from its last checkpoint — the final digest must
// equal the one of a run that was never interrupted.
func TestInterruptedRunResumesToStraightDigest(t *testing.T) {
	straight, tr, _ := runStraight(t, 16, nil, 0, 1)

	cfg := ckptConfig(t, 16, nil)
	cfg.Golden = golden.New()
	var cks []*checkpoint.Checkpoint
	cfg.CheckpointEvery = 1
	cfg.CheckpointSink = collectSink(&cks)
	cfg.MaxCycles = straight.Cycles / 2
	half, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if half.Done {
		t.Fatal("half run unexpectedly finished")
	}
	if len(cks) < 2 {
		t.Fatal("half run cut too few checkpoints")
	}

	// The very last checkpoint sits on the MaxCycles-truncated window
	// boundary; resuming from it would shift every later window. Resume
	// from the last full-window checkpoint instead.
	res, rtr, _ := resumeFrom(t, cks[len(cks)-2], 16, nil, 0, 1, false)
	if !res.Done {
		t.Fatal("resumed run did not finish")
	}
	if rtr.Sum64() != tr.Sum64() || rtr.Len() != tr.Len() {
		t.Fatalf("resumed digest %s/%d != straight %s/%d", rtr.Hex(), rtr.Len(), tr.Hex(), tr.Len())
	}
}

// TestPipelinedResumeDigestIdentity: the same identity for the pipelined
// loop. The checkpoint cadence is part of the pipelined determinism
// contract (each checkpoint drains the pipeline), so both runs use the
// same cadence.
func TestPipelinedResumeDigestIdentity(t *testing.T) {
	straight, tr, cks := runStraight(t, 16, nil, 2, 2)

	for _, wi := range []int{0, len(cks) - 1} {
		ck := cks[wi]
		res, rtr, _ := resumeFrom(t, ck, 16, nil, 2, 2, false)
		if rtr.Sum64() != tr.Sum64() || rtr.Len() != tr.Len() {
			t.Errorf("resume from window %d: digest %s/%d, want %s/%d",
				ck.Window, rtr.Hex(), rtr.Len(), tr.Hex(), tr.Len())
		}
		if res.Cycles != straight.Cycles || res.Done != straight.Done {
			t.Errorf("resume from window %d: metrics drifted: %+v vs %+v",
				ck.Window, res, straight)
		}
	}
}

// TestPolicyStateResumes: a thermal-management run resumed mid-flight must
// restore the policy's internal state (hysteresis) and the thermal model
// exactly — proven by digest identity, which is frequency-trajectory
// sensitive.
func TestPolicyStateResumes(t *testing.T) {
	probe, err := Run(ckptConfig(t, 60, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if probe.MaxTempK <= 320 {
		t.Skipf("test workload only reached %.1f K; cannot exercise the policy", probe.MaxTempK)
	}
	mkPol := func() tm.Policy {
		return &tm.ThresholdDFS{HighK: 320, LowK: 315, HighFreqHz: 500e6, LowFreqHz: 100e6}
	}
	straight, tr, cks := runStraight(t, 60, mkPol(), 0, 2)
	if straight.DFSEvents == 0 {
		t.Fatal("policy never acted in the reference run")
	}

	ck := cks[len(cks)/2]
	res, rtr, _ := resumeFrom(t, ck, 60, mkPol(), 0, 2, false)
	if rtr.Sum64() != tr.Sum64() || rtr.Len() != tr.Len() {
		t.Fatalf("TM resume from window %d: digest %s/%d, want %s/%d",
			ck.Window, rtr.Hex(), rtr.Len(), tr.Hex(), tr.Len())
	}
	if res.DFSEvents != straight.DFSEvents || res.MaxTempK != straight.MaxTempK {
		t.Fatalf("TM resume: %d DFS events / %.6f K, want %d / %.6f K",
			res.DFSEvents, res.MaxTempK, straight.DFSEvents, straight.MaxTempK)
	}
}

// TestForkSkipsLineage: -fork branches a new experiment off the snapshot,
// so its digest lineage starts fresh instead of continuing the original's.
func TestForkSkipsLineage(t *testing.T) {
	_, tr, cks := runStraight(t, 16, nil, 0, 2)
	_, ftr, _ := resumeFrom(t, cks[0], 16, nil, 0, 2, true)
	if ftr.Len() >= tr.Len() {
		t.Fatalf("forked trace folded %d records, continuation would be %d", ftr.Len(), tr.Len())
	}
}

// faultingSpec builds a workload where core 0 spins for about 2*delay
// cycles and then executes an illegal opcode, while the other cores halt
// immediately — a deterministic mid-run platform error.
func faultingSpec(t *testing.T, cores, delay int) *workloads.Spec {
	t.Helper()
	bad := fmt.Sprintf(`
	li r1, %d
loop:
	dec r1
	bne r1, r0, loop
	.word 0xFC000000 ; opcode 63: illegal
`, delay)
	spec := &workloads.Spec{Name: "faulting"}
	for i := 0; i < cores; i++ {
		src := "\thalt\n"
		if i == 0 {
			src = bad
		}
		spec.Programs = append(spec.Programs, asm.MustAssemble(src))
	}
	return spec
}

// TestPartialErrorFlushesLoadableCheckpoint: when a run aborts mid-flight
// with checkpointing active, the Partial error path must flush one final
// checkpoint, and that snapshot must load back into a fresh platform.
func TestPartialErrorFlushesLoadableCheckpoint(t *testing.T) {
	for _, depth := range []int{0, 2} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			cfg := testConfig(t, 2, nil)
			// ~2.5 sampling windows (50k cycles each at 500 MHz / 0.1 ms)
			// before the fault, so regular checkpoints precede the flush.
			cfg.Workload = faultingSpec(t, 4, 60_000)
			cfg.PipelineDepth = depth
			var cks []*checkpoint.Checkpoint
			cfg.CheckpointEvery = 1
			cfg.CheckpointSink = collectSink(&cks)

			res, err := Run(cfg, nil)
			if err == nil || !strings.Contains(err.Error(), "illegal opcode") {
				t.Fatalf("run err = %v, want the injected illegal opcode", err)
			}
			if !res.Partial {
				t.Fatal("aborted run not marked Partial")
			}
			if len(cks) < 2 {
				t.Fatalf("only %d checkpoints collected", len(cks))
			}
			last := cks[len(cks)-1]
			if !last.Partial {
				t.Fatal("final flushed checkpoint not marked Partial")
			}
			for _, c := range cks[:len(cks)-1] {
				if c.Partial {
					t.Fatal("regular cadence checkpoint marked Partial")
				}
			}

			// The partial snapshot is loadable: it restores into a fresh
			// platform of the same configuration (including the faulted
			// core state) and passes the embedded digest check.
			p, err := emu.New(cfg.Platform)
			if err != nil {
				t.Fatal(err)
			}
			for i, im := range cfg.Workload.Programs {
				if err := p.LoadProgram(i, im); err != nil {
					t.Fatal(err)
				}
			}
			if err := last.Apply(p); err != nil {
				t.Fatalf("partial checkpoint does not load: %v", err)
			}
			if p.Fault() == nil {
				t.Fatal("restored platform lost the fault state")
			}
		})
	}
}

// TestSinkFailureAbortsRun: a failing sink aborts the run with a Partial
// result and does not loop on the broken sink for the final flush.
func TestSinkFailureAbortsRun(t *testing.T) {
	calls := 0
	cfg := testConfig(t, 4, nil)
	cfg.CheckpointEvery = 1
	cfg.CheckpointSink = func(*checkpoint.Checkpoint) error {
		calls++
		return fmt.Errorf("disk full")
	}
	res, err := Run(cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("run err = %v, want the sink error", err)
	}
	if !res.Partial {
		t.Fatal("sink failure did not mark the result Partial")
	}
	if calls != 1 {
		t.Fatalf("broken sink called %d times, want 1", calls)
	}
}
