package core

import (
	"fmt"
	"time"

	"thermemu/internal/checkpoint"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/golden"
	"thermemu/internal/power"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/vpcm"
	"thermemu/internal/workloads"
)

// Config describes one co-emulation run.
type Config struct {
	Platform emu.Config
	Workload *workloads.Spec
	// Floorplan-derived thermal host. In in-process mode it is stepped
	// directly; in transport mode it only provides the component count and
	// geometry while the remote host owns the thermal state.
	Host *ThermalHost
	// WindowPs is the statistics sampling period in virtual picoseconds
	// (the paper uses 10 ms).
	WindowPs uint64
	// Policy is the run-time thermal-management policy (nil = none).
	Policy tm.Policy
	// Sensor models the physical temperature sensors feeding the VPCM
	// (quantisation/offset); the zero value is an ideal sensor.
	Sensor tm.SensorModel
	// Leakage, when non-nil, adds temperature-dependent static power
	// (future-node exploration; the paper ignores leakage at 130 nm).
	Leakage *power.LeakageModel
	// DVFS, when non-nil, applies voltage scaling on top of frequency
	// scaling at the curve's operating points.
	DVFS power.DVFSCurve
	// Transport, when non-nil, routes the power/temperature exchange over
	// the Ethernet link instead of direct calls; the peer must run
	// ThermalHost.Serve. DrainPhysCycles models the congestion penalty.
	Transport       etherlink.Transport
	DrainPhysCycles uint64
	// Link tunes the NACK/resend-window reliability protocol of the
	// dispatcher endpoint (zero values take the etherlink defaults);
	// LinkPlain disables it entirely.
	Link      etherlink.ReliableConfig
	LinkPlain bool
	// MaxCycles bounds the run (0 = until the workload halts, with a large
	// safety cap).
	MaxCycles uint64
	// ThermalTimeScale multiplies the thermal integration time of every
	// window (default 1). The paper runs minutes of emulation to cover the
	// seconds-scale thermal transients; this knob compresses the thermal
	// trajectory so short emulations exhibit the same heating/TM dynamics.
	// It affects only the thermal axis, never the cycle-accurate platform.
	ThermalTimeScale float64
	// Golden, when non-nil, accumulates a conformance digest of the run:
	// every sampling window's statistics snapshot plus the platform's full
	// architectural state at run end (see internal/golden). Two runs with
	// equal digests executed the same emulation bit for bit.
	Golden *golden.Trace
	// PipelineDepth > 0 runs the loop as a software pipeline: window N+1
	// emulates while window N's statistics are dispatched and solved, with
	// a bounded hand-off queue of that depth. Temperature/DFS feedback is
	// applied at deterministic window boundaries with a fixed sensor
	// latency of PipelineDepth windows (the serial loop has latency 0), so
	// pipelined runs are bit-reproducible run to run and — with TM feedback
	// off — digest-identical to serial runs. When the queue fills, the
	// virtual clock freezes under the vpcm.ThermalLagSource attribution
	// instead of corrupting windows. 0 keeps the serial loop. Incompatible
	// with Platform.EventLogging (the event ring drains inline with the
	// emulating stage).
	PipelineDepth int
	// DiscardSamples skips accumulating Result.Samples so week-long
	// monitoring runs keep a flat memory profile; onSample still observes
	// every window, but the sample's slices are only valid during the
	// callback (they are reused buffers on the pipelined hot path).
	DiscardSamples bool
	// CheckpointEvery cuts a checkpoint through CheckpointSink every N
	// committed sampling windows (0 with a sink set means every window).
	// Checkpointing requires the in-process thermal host — a transport-mode
	// run does not own the thermal state and is rejected. In a pipelined
	// run every checkpoint first drains the pipeline (a pipeline flush), so
	// the cadence is part of the run's determinism contract: two runs with
	// the same cadence are bit-identical, and a checkpointed run matches an
	// uncheckpointed one whenever TM feedback (DFS, leakage) is off.
	CheckpointEvery int
	// CheckpointSink receives each checkpoint as it is cut (e.g.
	// checkpoint.Checkpoint.WriteFile). A sink error aborts the run with a
	// Partial result. On any abort a final checkpoint with Partial set is
	// flushed, so a mid-run failure still leaves a loadable snapshot.
	CheckpointSink func(*checkpoint.Checkpoint) error
	// Resume, when non-nil, restores the platform, thermal model, policy
	// state and golden digest lineage from the checkpoint before the loop
	// starts: the resumed run's final golden digest equals an uninterrupted
	// run's. The platform/workload configuration must match the
	// checkpointed run — a mismatch is rejected at restore time by the
	// checkpoint's embedded state digest.
	Resume *checkpoint.Checkpoint
	// Fork skips Resume's golden-lineage seeding: the resumed run is a new
	// experiment branching off the snapshot (what-if exploration from a
	// shared warm-up prefix) rather than a continuation of the original.
	Fork bool
}

// Sample is one closed-loop observation: the end of one sampling window.
type Sample struct {
	Cycle      uint64
	TimePs     uint64
	FreqHz     uint64
	CompPowerW []float64
	CellTempK  []float64
	CompTempK  []float64
	MaxTempK   float64
	Throttled  bool // true while the policy holds a reduced frequency
}

// Result summarises a finished co-emulation.
type Result struct {
	Samples    []Sample
	Cycles     uint64
	VirtualS   float64
	Wall       time.Duration
	Done       bool
	DFSEvents  int
	MaxTempK   float64
	FinalSnap  emu.Snapshot
	Congestion etherlink.DispatcherStats
	// Link is the link-layer metrics snapshot of a transport-mode run
	// (frames, bytes, retries, gaps, CRC errors, latency histogram).
	Link etherlink.LinkSnapshot
	// Report is the platform's detailed statistics report at run end. It is
	// empty on a partial result: a half-stepped platform's counters are not
	// meaningful.
	Report string
	// Partial marks a run that aborted mid-window (e.g. on a link error):
	// Cycles, VirtualS and FinalSnap then describe the last *committed*
	// sampling window — the platform state past it was never solved and is
	// not reported.
	Partial bool
	// ThermalLagPs is the physical time the virtual clock spent frozen
	// because the thermal solve (or the link carrying it) lagged the
	// pipelined emulation (vpcm.ThermalLagSource). Always 0 in serial runs.
	ThermalLagPs uint64
	// Speculation is the speculative kernel's telemetry (zero-valued unless
	// the platform ran with Config.Speculate).
	Speculation emu.SpecStats
}

// DefaultWindowPs is the paper's 10 ms sampling period.
const DefaultWindowPs = 10_000_000_000

// Fig6Config builds the Figure 6 experiment: the Fig6 platform (4 RISC-32
// cores, 8 kB DM caches, 32 kB private + 32 kB shared memories, 4-switch
// NoC at 500 MHz), the Matrix-TM workload, the 4×ARM11 floorplan gridded
// into 28 thermal cells, and — when withTM is set — the 350 K/340 K
// threshold DFS policy.
func Fig6Config(iters int, withTM bool) (Config, error) {
	pcfg := emu.Fig6Config()
	spec, err := workloads.MatrixTM(4, 16, iters, pcfg.PrivKB)
	if err != nil {
		return Config{}, err
	}
	host, err := NewThermalHost(fig6Floorplan(), 28, thermal.DefaultOptions())
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Platform: pcfg,
		Workload: spec,
		Host:     host,
		WindowPs: DefaultWindowPs,
	}
	if withTM {
		cfg.Policy = tm.NewThresholdDFS()
	}
	return cfg, nil
}

// Run executes the co-emulation loop. onSample, when non-nil, receives
// every sample as it is produced (e.g. for CSV streaming).
func Run(cfg Config, onSample func(Sample)) (*Result, error) {
	if cfg.Workload == nil || cfg.Host == nil {
		return nil, fmt.Errorf("core: workload and host are required")
	}
	if cfg.PipelineDepth < 0 {
		return nil, fmt.Errorf("core: negative pipeline depth %d", cfg.PipelineDepth)
	}
	if cfg.PipelineDepth > 0 && cfg.Platform.EventLogging {
		return nil, fmt.Errorf("core: pipelined loop is incompatible with event logging (the BRAM ring drains inline with the emulating stage)")
	}
	if cfg.WindowPs == 0 {
		cfg.WindowPs = DefaultWindowPs
	}
	p, err := emu.New(cfg.Platform)
	if err != nil {
		return nil, err
	}
	if len(cfg.Workload.Programs) != len(p.Cores) {
		return nil, fmt.Errorf("core: workload has %d programs for %d cores",
			len(cfg.Workload.Programs), len(p.Cores))
	}
	for i, im := range cfg.Workload.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			return nil, err
		}
	}
	for _, b := range cfg.Workload.Shared {
		p.WriteShared(b.Addr, b.Data)
	}

	eval := NewPowerEvaluator(cfg.Host.FP)
	eval.Leakage = cfg.Leakage
	eval.DVFS = cfg.DVFS
	// Checkpoint/resume setup. Resume restores the platform (clock, cores,
	// memories, interconnect), the thermal model, the policy and the golden
	// lineage here, before the first snapshot below is taken.
	ck, resumedMax, err := newCkptRuntime(&cfg, p, eval)
	if err != nil {
		return nil, err
	}
	var disp *etherlink.Dispatcher
	if cfg.Transport != nil {
		var frz etherlink.Freezer = p.VPCM
		if cfg.PipelineDepth > 0 {
			// The dispatcher runs on the solver stage, concurrent with the
			// emulating stage that advances the VPCM: it must account frozen
			// time (mutex-guarded) but may not toggle the freeze flag the
			// emulator polls. The emulating stage raises its own
			// thermal-lag freeze when the hand-off queue fills.
			frz = asyncFreezer{p.VPCM}
		}
		disp = etherlink.NewDispatcher(cfg.Transport, frz, cfg.DrainPhysCycles)
		if !cfg.LinkPlain {
			disp.EnableReliability(cfg.Link)
		}
		if err := disp.SendCtrl(etherlink.CtrlStart, uint64(cfg.Host.NumComponents())); err != nil {
			return nil, err
		}
		if cfg.Platform.EventLogging {
			// Event-logging sniffers drain through the link; when the BRAM
			// ring fills mid-window the dispatcher pumps it out (freezing
			// the virtual clock on congestion, per Section 4.2).
			p.OnBufferFull = func() bool {
				_, err := disp.PumpEvents(p.Ring)
				return err == nil
			}
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 62
	}
	tscale := cfg.ThermalTimeScale
	if tscale <= 0 {
		tscale = 1
	}
	if cfg.PipelineDepth > 0 {
		return runPipelined(cfg, p, eval, disp, maxCycles, tscale, onSample, ck, resumedMax)
	}
	res := &Result{MaxTempK: resumedMax}
	start := time.Now()
	prev := p.Snapshot()
	// committed tracks the last fully-solved sampling window; an abort
	// mid-window reports it instead of the half-stepped platform state.
	committed := prev
	powers := make([]float64, cfg.Host.NumComponents())
	powerUW := make([]uint32, cfg.Host.NumComponents())
	partial := func(err error) (*Result, error) {
		err = ck.flushPartial(err, res.MaxTempK)
		res.Partial = true
		res.FinalSnap = committed
		res.Cycles = committed.Cycle
		res.VirtualS = float64(committed.TimePs) * 1e-12
		res.Wall = time.Since(start)
		res.DFSEvents = p.VPCM.DFSEvents()
		if disp != nil {
			res.Congestion = disp.Stats()
			res.Link = disp.Link().Snapshot()
		}
		return res, err
	}

	for !p.AllHalted() && p.VPCM.Cycle() < maxCycles {
		// One sampling window at the current virtual frequency.
		period := uint64(1e12) / p.VPCM.Frequency()
		n := cfg.WindowPs / period
		if n == 0 {
			n = 1
		}
		if left := maxCycles - p.VPCM.Cycle(); n > left {
			n = left
		}
		// With a Parallel platform the window is executed by the
		// deterministic parallel kernel; results are bit-identical to
		// serial stepping (asserted by the golden conformance suite), so
		// the whole closed loop — power, temperature, DFS — is unchanged.
		if cfg.Platform.Parallel {
			p.RunParallel(0, p.VPCM.Cycle()+n)
		} else {
			p.Step(n)
		}
		if err := p.Fault(); err != nil {
			return partial(err)
		}
		snap := p.Snapshot()
		emu.DigestSnapshot(cfg.Golden, snap)
		if disp != nil && cfg.Platform.EventLogging {
			if _, err := disp.PumpEvents(p.Ring); err != nil {
				return partial(err)
			}
		}
		if _, err := eval.Powers(prev, snap, powers); err != nil {
			return partial(err)
		}
		windowPs := uint64(float64(snap.TimePs-prev.TimePs) * tscale)
		prev = snap

		var cellTemps []float64
		if disp != nil {
			for i, w := range powers {
				powerUW[i] = uint32(w*1e6 + 0.5)
			}
			if err := disp.SendStats(&etherlink.Stats{
				Cycle: snap.Cycle, WindowPs: windowPs, PowerUW: powerUW,
			}); err != nil {
				return partial(err)
			}
			temps, err := disp.RecvTemps(nil)
			if err != nil {
				return partial(err)
			}
			cellTemps = make([]float64, len(temps.MilliK))
			for i := range temps.MilliK {
				cellTemps[i] = temps.Kelvin(i)
			}
		} else {
			cellTemps, err = cfg.Host.StepWindow(powers, float64(windowPs)*1e-12)
			if err != nil {
				return partial(err)
			}
		}

		compTemps := cfg.Host.ComponentTemps(cellTemps)
		eval.SetComponentTemps(compTemps)
		sample := Sample{
			Cycle:      snap.Cycle,
			TimePs:     snap.TimePs,
			FreqHz:     snap.FreqHz,
			CompPowerW: append([]float64(nil), powers...),
			CellTempK:  cellTemps,
			CompTempK:  compTemps,
		}
		for _, t := range cellTemps {
			if t > sample.MaxTempK {
				sample.MaxTempK = t
			}
		}
		if sample.MaxTempK > res.MaxTempK {
			res.MaxTempK = sample.MaxTempK
		}

		// Temperature sensors -> VPCM -> policy (DFS).
		if cfg.Policy != nil {
			sensors := make([]tm.Sensor, len(compTemps))
			for i := range compTemps {
				sensors[i] = tm.Sensor{Name: cfg.Host.FP.Components[i].Name,
					TempK: cfg.Sensor.Read(compTemps[i])}
			}
			action := cfg.Policy.Update(sensors)
			if action.SetFreqHz != 0 {
				p.VPCM.SetFrequency(action.SetFreqHz)
			}
			if th, ok := cfg.Policy.(*tm.ThresholdDFS); ok {
				sample.Throttled = th.Throttled()
			}
		}

		if !cfg.DiscardSamples {
			res.Samples = append(res.Samples, sample)
		}
		if onSample != nil {
			onSample(sample)
		}
		// The window is committed only once its temperatures arrived and the
		// policy ran: from here on its snapshot is safe to report.
		committed = snap
		ck.commit(compTemps)
		if ck.due() {
			if err := ck.write(false, res.MaxTempK); err != nil {
				return partial(err)
			}
		}
	}

	if disp != nil {
		if err := disp.SendCtrl(etherlink.CtrlStop, p.VPCM.Cycle()); err != nil {
			return partial(err)
		}
		res.Congestion = disp.Stats()
		res.Link = disp.Link().Snapshot()
	}
	p.DigestInto(cfg.Golden)
	res.Cycles = p.VPCM.Cycle()
	res.VirtualS = p.VPCM.Time()
	res.Wall = time.Since(start)
	res.Done = p.AllHalted()
	res.DFSEvents = p.VPCM.DFSEvents()
	res.FinalSnap = p.Snapshot()
	res.Report = p.Report()
	res.Speculation = p.SpecStats()

	if res.Done && cfg.Workload.Verify != nil {
		if err := cfg.Workload.Verify(p.ReadSharedWord); err != nil {
			return res, fmt.Errorf("core: workload verification: %w", err)
		}
	}
	return res, nil
}

// FreqHistory exposes the VPCM DFS trace of a finished platform run; the
// co-emulator records frequencies per sample, which is usually enough, but
// detailed traces can be taken from the platform directly.
type FreqHistory = vpcm.FreqChange
