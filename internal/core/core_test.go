package core

import (
	"math"
	"testing"

	"thermemu/internal/cpu"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/mem"
	"thermemu/internal/power"
	"thermemu/internal/sniffer"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// testConfig builds a small, fast closed-loop configuration: a 4-core
// 100 MHz platform running Matrix-TM, the ARM11 floorplan on 28 cells, a
// 0.1 ms sampling window and a large thermal time scale so the seconds-long
// thermal transient compresses into a handful of windows.
func testConfig(t *testing.T, iters int, policy tm.Policy) Config {
	t.Helper()
	pcfg := emu.DefaultConfig(4)
	pcfg.FreqHz = 500e6 // so the 500/100 MHz DFS policy has headroom
	pcfg.IC = emu.ICNoC
	pcfg.NoC = emu.Fig6NoC(4)
	spec, err := workloads.MatrixTM(4, 8, iters, pcfg.PrivKB)
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:         pcfg,
		Workload:         spec,
		Host:             host,
		WindowPs:         100_000_000, // 0.1 ms virtual
		Policy:           policy,
		ThermalTimeScale: 2000, // 0.1 ms window ≈ 0.2 s thermal
	}
}

func TestClosedLoopInProcess(t *testing.T) {
	cfg := testConfig(t, 4, nil)
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("workload did not finish")
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	// Temperatures rise above ambient while the cores are busy.
	if res.MaxTempK <= 300 {
		t.Errorf("max temp %.2f K never rose above ambient", res.MaxTempK)
	}
	// Samples carry a full power/temperature vector.
	s := res.Samples[0]
	if len(s.CompPowerW) != cfg.Host.NumComponents() {
		t.Errorf("sample power entries = %d", len(s.CompPowerW))
	}
	if len(s.CellTempK) != 28 {
		t.Errorf("sample cell temps = %d", len(s.CellTempK))
	}
	if len(s.CompTempK) != cfg.Host.NumComponents() {
		t.Errorf("sample component temps = %d", len(s.CompTempK))
	}
	// Virtual time advanced consistently with the windows.
	if res.VirtualS <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestSampleCallbackStreams(t *testing.T) {
	cfg := testConfig(t, 2, nil)
	n := 0
	var lastCycle uint64
	res, err := Run(cfg, func(s Sample) {
		n++
		if s.Cycle <= lastCycle {
			t.Errorf("samples not monotone: %d after %d", s.Cycle, lastCycle)
		}
		lastCycle = s.Cycle
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Samples) {
		t.Errorf("callback saw %d samples, result has %d", n, len(res.Samples))
	}
}

func TestThermalManagementThrottlesAndCaps(t *testing.T) {
	// The test uses a scaled-down threshold band (320/315 K) so a short
	// run exercises the full throttle/release mechanism; the paper's
	// 350/340 K band is covered by the Figure 6 harness.
	noTM, err := Run(testConfig(t, 60, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if noTM.MaxTempK <= 320 {
		t.Skipf("test workload only reached %.1f K; cannot exercise the policy", noTM.MaxTempK)
	}
	pol := &tm.ThresholdDFS{HighK: 320, LowK: 315, HighFreqHz: 500e6, LowFreqHz: 100e6}
	withTM, err := Run(testConfig(t, 60, pol), nil)
	if err != nil {
		t.Fatal(err)
	}
	if withTM.DFSEvents == 0 {
		t.Fatal("policy never acted")
	}
	if pol.Switches == 0 {
		t.Error("policy reports no switches")
	}
	if withTM.MaxTempK >= noTM.MaxTempK {
		t.Errorf("TM did not help: %.2f K with vs %.2f K without", withTM.MaxTempK, noTM.MaxTempK)
	}
	// Some sample must be marked throttled.
	throttledSeen := false
	lowFreqSeen := false
	for _, s := range withTM.Samples {
		if s.Throttled {
			throttledSeen = true
		}
		if s.FreqHz == 100e6 {
			lowFreqSeen = true
		}
	}
	if !throttledSeen || !lowFreqSeen {
		t.Errorf("throttling not visible in samples (throttled=%v lowfreq=%v)",
			throttledSeen, lowFreqSeen)
	}
}

func TestClosedLoopOverEthernet(t *testing.T) {
	cfg := testConfig(t, 3, nil)
	devTr, hostTr := etherlink.LoopbackPair(4)
	cfg.Transport = devTr
	cfg.DrainPhysCycles = 100

	// The host side runs Serve on its own goroutine, like cmd/thermserver.
	hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hostPlan.Serve(hostTr) }()

	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("host serve: %v", err)
	}
	if !res.Done || len(res.Samples) == 0 {
		t.Fatal("transport run incomplete")
	}
	if res.MaxTempK <= 300 {
		t.Error("no heating observed over the link")
	}

	// Cross-check: an identical in-process run produces the same
	// temperature trajectory (the link must be semantically transparent,
	// modulo the millikelvin quantisation of the Temps frames).
	direct, err := Run(testConfig(t, 3, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Samples) != len(res.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(direct.Samples), len(res.Samples))
	}
	for i := range direct.Samples {
		d, r := direct.Samples[i].MaxTempK, res.Samples[i].MaxTempK
		if math.Abs(d-r) > 0.002 {
			t.Fatalf("sample %d: direct %.4f K vs link %.4f K", i, d, r)
		}
	}
}

func TestPowerEvaluatorActivityMapping(t *testing.T) {
	fp := floorplan.FourARM11()
	ev := NewPowerEvaluator(fp)
	prev := emu.Snapshot{Cycle: 0, FreqHz: 100e6}
	cur := emu.Snapshot{Cycle: 1000, FreqHz: 100e6}
	for i := 0; i < 4; i++ {
		prev.Cores = append(prev.Cores, cpuStats(0, 0))
		cur.Cores = append(cur.Cores, cpuStats(500, 1000)) // 50% active
		prev.ICaches = append(prev.ICaches, cacheStats(0))
		cur.ICaches = append(cur.ICaches, cacheStats(800))
		prev.DCaches = append(prev.DCaches, cacheStats(0))
		cur.DCaches = append(cur.DCaches, cacheStats(200))
		prev.Ctrls = append(prev.Ctrls, ctrlStats(0, 0))
		cur.Ctrls = append(cur.Ctrls, ctrlStats(300, 100))
	}
	pw, err := ev.Powers(prev, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Core power = 1.5 W * 0.5 activity * (100 MHz / 500 MHz reference).
	ci := fp.Find("core0")
	if math.Abs(pw[ci]-0.15) > 1e-9 {
		t.Errorf("core power = %v, want 0.15", pw[ci])
	}
	// ICache: 800/1000 accesses * 11 mW.
	ii := fp.Find("icache0")
	if math.Abs(pw[ii]-0.8*11e-3) > 1e-9 {
		t.Errorf("icache power = %v", pw[ii])
	}
	// Shared memory sums over cores: 4*100/1000 = 0.4 activity * 15 mW.
	si := fp.Find("sharedmem")
	if math.Abs(pw[si]-0.4*15e-3) > 1e-9 {
		t.Errorf("shared power = %v", pw[si])
	}
	// Frequency scaling: the same activity at the ARM11's 500 MHz
	// reference point gives the full 1.5 W * 0.5 activity.
	cur.FreqHz = 500e6
	pw5, _ := ev.Powers(prev, cur, pw)
	if math.Abs(pw5[ci]-0.75) > 1e-9 {
		t.Errorf("scaled core power = %v", pw5[ci])
	}
}

func TestPowerEvaluatorZeroWindow(t *testing.T) {
	fp := floorplan.FourARM7()
	ev := NewPowerEvaluator(fp)
	s := emu.Snapshot{Cycle: 5, FreqHz: 100e6}
	pw, err := ev.Powers(s, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range pw {
		if w != 0 {
			t.Errorf("component %d has power %v in an empty window", i, w)
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig(t, 1, nil)
	cfg.Platform.Cores = 2 // mismatch with the 4-program workload
	if _, err := Run(cfg, nil); err == nil {
		t.Error("program/core mismatch accepted")
	}
}

func TestFig6ConfigConstruction(t *testing.T) {
	cfg, err := Fig6Config(10, true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Platform.FreqHz != 500e6 {
		t.Errorf("freq = %d", cfg.Platform.FreqHz)
	}
	if len(cfg.Host.SiCells) != 28 {
		t.Errorf("cells = %d", len(cfg.Host.SiCells))
	}
	if cfg.Policy == nil {
		t.Error("TM policy missing")
	}
	noTM, err := Fig6Config(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if noTM.Policy != nil {
		t.Error("policy present without TM")
	}
}

func TestHostServeComponentMismatch(t *testing.T) {
	devTr, hostTr := etherlink.LoopbackPair(4)
	host, err := NewThermalHost(floorplan.FourARM7(), 16, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- host.Serve(hostTr) }()
	ep := etherlink.NewEndpoint(devTr, etherlink.DeviceMAC, etherlink.HostMAC)
	if err := ep.Send(etherlink.MsgCtrl, (&etherlink.Ctrl{Op: etherlink.CtrlStart, Arg: 3}).MarshalPayload()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Error("component mismatch not rejected")
	}
}

// Helpers constructing synthetic snapshot entries.
func cpuStats(active, cycles uint64) cpu.Stats {
	return cpu.Stats{ActiveCycles: active, IdleCycles: cycles - active}
}

func cacheStats(reads uint64) mem.CacheStats {
	return mem.CacheStats{Reads: reads}
}

func ctrlStats(priv, shared uint64) mem.CtrlStats {
	return mem.CtrlStats{PrivateReads: priv, SharedReads: shared}
}

func TestEventStreamingOverEthernet(t *testing.T) {
	cfg := testConfig(t, 2, nil)
	cfg.Platform.EventLogging = true
	cfg.Platform.EventBufCap = 256
	devTr, hostTr := etherlink.LoopbackPair(8)
	cfg.Transport = devTr
	cfg.DrainPhysCycles = 50

	hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var firstBatch []sniffer.Event
	hostPlan.OnEvents = func(evs []sniffer.Event) {
		if firstBatch == nil {
			firstBatch = append([]sniffer.Event(nil), evs...)
		}
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hostPlan.Serve(hostTr) }()

	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run incomplete")
	}
	if hostPlan.EventsReceived == 0 {
		t.Fatal("host received no logged events")
	}
	if res.Congestion.EventsSent != hostPlan.EventsReceived {
		t.Errorf("device sent %d events, host received %d",
			res.Congestion.EventsSent, hostPlan.EventsReceived)
	}
	// The first batch carries real platform activity: monotone cycles and
	// fetch/memory kinds.
	if len(firstBatch) == 0 {
		t.Fatal("no first batch captured")
	}
	for i := 1; i < len(firstBatch); i++ {
		if firstBatch[i].Cycle < firstBatch[i-1].Cycle {
			t.Fatal("event cycles not monotone within a batch")
		}
	}
}

func TestPowerEvaluatorDarkCores(t *testing.T) {
	// A 2-core platform on the 4-core floorplan: cores 2 and 3 sit dark.
	fp := floorplan.FourARM11()
	ev := NewPowerEvaluator(fp)
	prev := emu.Snapshot{Cycle: 0, FreqHz: 500e6}
	cur := emu.Snapshot{Cycle: 1000, FreqHz: 500e6}
	for i := 0; i < 2; i++ {
		prev.Cores = append(prev.Cores, cpu.Stats{})
		cur.Cores = append(cur.Cores, cpu.Stats{ActiveCycles: 1000})
		prev.ICaches = append(prev.ICaches, mem.CacheStats{})
		cur.ICaches = append(cur.ICaches, mem.CacheStats{})
		prev.DCaches = append(prev.DCaches, mem.CacheStats{})
		cur.DCaches = append(cur.DCaches, mem.CacheStats{})
		prev.Ctrls = append(prev.Ctrls, mem.CtrlStats{})
		cur.Ctrls = append(cur.Ctrls, mem.CtrlStats{})
	}
	pw, err := ev.Powers(prev, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pw[fp.Find("core0")] == 0 || pw[fp.Find("core1")] == 0 {
		t.Error("instantiated cores report no power")
	}
	if pw[fp.Find("core2")] != 0 || pw[fp.Find("core3")] != 0 {
		t.Error("dark cores report power")
	}
}

func TestLeakageFeedbackLoop(t *testing.T) {
	// The same run with aggressive leakage must end hotter: the evaluator
	// injects temperature-dependent static power fed back from the
	// previous window.
	base, err := Run(testConfig(t, 20, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgL := testConfig(t, 20, nil)
	leak := power.Default65nm()
	cfgL.Leakage = &leak
	leaky, err := Run(cfgL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if leaky.MaxTempK <= base.MaxTempK {
		t.Errorf("leakage run (%.2f K) not hotter than baseline (%.2f K)",
			leaky.MaxTempK, base.MaxTempK)
	}
}

func TestDVFSCurveReducesThrottledPower(t *testing.T) {
	pol := &tm.ThresholdDFS{HighK: 310, LowK: 305, HighFreqHz: 500e6, LowFreqHz: 100e6}
	cfg := testConfig(t, 30, pol)
	cfg.DVFS = power.Default130nmCurve()
	withDVFS, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol2 := &tm.ThresholdDFS{HighK: 310, LowK: 305, HighFreqHz: 500e6, LowFreqHz: 100e6}
	plain, err := Run(testConfig(t, 30, pol2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare total power in throttled samples: voltage scaling must cut
	// deeper than frequency scaling alone.
	sum := func(res *Result) (float64, int) {
		var s float64
		n := 0
		for _, smp := range res.Samples {
			if smp.FreqHz == 100e6 {
				for _, w := range smp.CompPowerW {
					s += w
				}
				n++
			}
		}
		return s, n
	}
	sD, nD := sum(withDVFS)
	sP, nP := sum(plain)
	if nD == 0 || nP == 0 {
		t.Skipf("no throttled samples (%d/%d); policy never engaged", nD, nP)
	}
	if sD/float64(nD) >= sP/float64(nP) {
		t.Errorf("DVFS throttled power %.4f W/sample not below DFS-only %.4f W/sample",
			sD/float64(nD), sP/float64(nP))
	}
}
