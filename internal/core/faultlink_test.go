package core

import (
	"math"
	"testing"
	"time"

	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/thermal"
)

// TestClosedLoopUnderLinkFaults is the ISSUE acceptance scenario: the full
// co-emulation loop over a link dropping ~1% of the frames in each
// direction must produce bit-identical temperature samples to a clean run —
// the reliability layer heals the loss, and the freeze-don't-drop guarantee
// keeps the emulated timeline exact — while the link metrics record the
// recovery work.
func TestClosedLoopUnderLinkFaults(t *testing.T) {
	run := func(faulty bool) *Result {
		t.Helper()
		// A short sampling window multiplies the frame count so ~1.5% loss
		// each way is all but certain to hit several frames (the seed makes
		// it deterministic either way).
		cfg := testConfig(t, 40, nil)
		cfg.WindowPs = 2_000_000 // 2 µs virtual
		devTr, hostTr := etherlink.LoopbackPair(4)
		var dev etherlink.Transport = devTr
		if faulty {
			fcfg := etherlink.FaultConfig{Drop: 0.015}
			dev = etherlink.NewFaultTransport(devTr, 1234, fcfg, fcfg)
		}
		cfg.Transport = dev
		cfg.DrainPhysCycles = 100
		// Fast retries keep the healed run quick under test.
		cfg.Link = etherlink.ReliableConfig{RetryTimeout: 20 * time.Millisecond, MaxRetries: 500}

		hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() {
			serveErr <- hostPlan.ServeWith(hostTr, ServeOptions{
				RetryTimeout: 20 * time.Millisecond,
				MaxRetries:   500,
			})
		}()
		res, err := Run(cfg, nil)
		if err != nil {
			t.Fatalf("run (faulty=%v): %v", faulty, err)
		}
		if err := <-serveErr; err != nil {
			t.Fatalf("host serve (faulty=%v): %v", faulty, err)
		}
		if !res.Done || len(res.Samples) == 0 {
			t.Fatalf("run incomplete (faulty=%v)", faulty)
		}
		return res
	}

	clean := run(false)
	faulty := run(true)

	if len(clean.Samples) != len(faulty.Samples) {
		t.Fatalf("sample counts differ: clean %d vs faulty %d",
			len(clean.Samples), len(faulty.Samples))
	}
	for i := range clean.Samples {
		c, f := clean.Samples[i], faulty.Samples[i]
		if c.Cycle != f.Cycle || c.TimePs != f.TimePs {
			t.Fatalf("sample %d timeline diverged: clean (cycle %d, %d ps) vs faulty (cycle %d, %d ps)",
				i, c.Cycle, c.TimePs, f.Cycle, f.TimePs)
		}
		// Bit-identical: the reliability layer must deliver the exact same
		// frames, so the solver integrates the exact same inputs.
		if c.MaxTempK != f.MaxTempK {
			t.Fatalf("sample %d temperature diverged under loss: clean %v vs faulty %v (delta %g)",
				i, c.MaxTempK, f.MaxTempK, math.Abs(c.MaxTempK-f.MaxTempK))
		}
		for j := range c.CompTempK {
			if c.CompTempK[j] != f.CompTempK[j] {
				t.Fatalf("sample %d comp %d temperature diverged: %v vs %v",
					i, j, c.CompTempK[j], f.CompTempK[j])
			}
		}
	}

	// The healed run actually exercised the recovery machinery.
	link := faulty.Link
	if link.Retries == 0 && link.SeqGaps == 0 && link.Resent == 0 {
		t.Errorf("1%% loss each way left no recovery trace: %+v", link)
	}
	if link.FramesSent == 0 || link.FramesRecv == 0 {
		t.Errorf("link counters empty: %+v", link)
	}
	if clean.Link.Retries != 0 || clean.Link.SeqGaps != 0 {
		t.Errorf("clean run recorded recovery work: %+v", clean.Link)
	}
}
