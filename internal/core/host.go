// Package core implements the paper's primary contribution: the closed
// HW/SW co-emulation loop of Figure 5. The emulated MPSoC runs a workload
// while count-logging sniffers accumulate statistics; every sampling window
// the statistics are converted to per-component power values and sent (as
// framework MAC frames, or by direct call in in-process mode) to the SW
// thermal library, which integrates the RC network and feeds the new cell
// temperatures back; the temperature sensors then drive the run-time
// thermal-management policy, which programs the VPCM (e.g. DFS between
// 500 MHz and 100 MHz).
package core

import (
	"fmt"
	"time"

	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/sniffer"
	"thermemu/internal/thermal"
)

// fig6Floorplan is the die of the Figure 6 thermal experiment: four ARM11
// cores at 500 MHz (floorplan (b) of Figure 4).
func fig6Floorplan() *floorplan.Floorplan { return floorplan.FourARM11() }

// ThermalHost is the host-PC side of the framework: the floorplan-aware
// wrapper around the RC thermal model. Both endpoints construct the same
// geometry deterministically; only the thermal state lives on the host.
type ThermalHost struct {
	FP      *floorplan.Floorplan
	SiCells []thermal.Rect
	Model   *thermal.Model
	pm      *floorplan.PowerMap
	cellPw  []float64

	// EventsReceived counts exhaustively-logged events received over the
	// link (MsgEvents frames); OnEvents, when set, receives each batch.
	EventsReceived uint64
	OnEvents       func([]sniffer.Event)
}

// NewThermalHost grids the floorplan into about targetCells thermal cells
// (multi-resolution, refined over the high-power-density components) plus a
// coarser copper-spreader grid, and builds the RC model.
func NewThermalHost(fp *floorplan.Floorplan, targetCells int, opt thermal.Options) (*ThermalHost, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	si := fp.GridTargetCells(targetCells)
	cuN := 3
	cu := thermal.UniformGrid(fp.DieW, fp.DieH, cuN, cuN)
	model, err := thermal.NewModel(si, cu, opt)
	if err != nil {
		return nil, err
	}
	return &ThermalHost{
		FP:      fp,
		SiCells: si,
		Model:   model,
		pm:      floorplan.NewPowerMap(fp, si),
		cellPw:  make([]float64, len(si)),
	}, nil
}

// NumComponents returns the floorplan component count (the length of the
// power vectors the host expects).
func (h *ThermalHost) NumComponents() int { return len(h.FP.Components) }

// StepWindow injects one window of per-component power (watts) and
// integrates the thermal model over dt seconds. It returns the new
// bottom-surface cell temperatures.
func (h *ThermalHost) StepWindow(compPowerW []float64, dt float64) ([]float64, error) {
	return h.StepWindowInto(compPowerW, dt, nil)
}

// StepWindowInto is StepWindow with a caller-owned temperature buffer: the
// result reuses tempsOut's backing array when its capacity suffices, so a
// loop that hands the same buffer back every window allocates nothing.
func (h *ThermalHost) StepWindowInto(compPowerW []float64, dt float64, tempsOut []float64) ([]float64, error) {
	if len(compPowerW) != len(h.FP.Components) {
		return nil, fmt.Errorf("core: power vector has %d entries, floorplan has %d components",
			len(compPowerW), len(h.FP.Components))
	}
	h.pm.CellPowers(compPowerW, h.cellPw)
	if err := h.Model.SetPowers(h.cellPw); err != nil {
		return nil, err
	}
	h.Model.Step(dt)
	return h.Model.TempsInto(tempsOut), nil
}

// SteadyState injects one vector of per-component power (watts) and relaxes
// the thermal model to its equilibrium, returning the sweep count and the
// bottom-surface cell temperatures. On thermal.ErrNoConvergence the
// temperatures are still returned alongside the error as a best-effort
// result, so callers can branch with errors.Is and keep the partial answer.
func (h *ThermalHost) SteadyState(compPowerW []float64, tol float64, maxSweeps int) (int, []float64, error) {
	if len(compPowerW) != len(h.FP.Components) {
		return 0, nil, fmt.Errorf("core: power vector has %d entries, floorplan has %d components",
			len(compPowerW), len(h.FP.Components))
	}
	h.pm.CellPowers(compPowerW, h.cellPw)
	if err := h.Model.SetPowers(h.cellPw); err != nil {
		return 0, nil, err
	}
	sweeps, err := h.Model.SteadyState(tol, maxSweeps)
	return sweeps, h.Model.Temps(), err
}

// ComponentTemps converts per-cell temperatures into per-component sensor
// readings (area-weighted over the covering cells).
func (h *ThermalHost) ComponentTemps(cellTemps []float64) []float64 {
	return h.ComponentTempsInto(cellTemps, nil)
}

// ComponentTempsInto is ComponentTemps with a caller-owned output buffer,
// reused when its capacity suffices.
func (h *ThermalHost) ComponentTempsInto(cellTemps, out []float64) []float64 {
	n := len(h.FP.Components)
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range h.FP.Components {
		out[i] = floorplan.ComponentTemp(h.FP, h.SiCells, cellTemps, i)
	}
	return out
}

// ServeOptions tunes one Serve session.
type ServeOptions struct {
	// Stats, when non-nil, aggregates link metrics for this session (a
	// server shares one LinkStats across every connection it accepts).
	Stats *etherlink.LinkStats
	// Plain disables the NACK/resend-window reliability protocol; by
	// default the host heals link loss like the device does.
	Plain bool
	// Window overrides the resend-window depth (frames).
	Window int
	// RetryTimeout is how long the host waits for the device before
	// re-soliciting; with MaxRetries it forms the idle timeout after which
	// a silent connection is dropped with etherlink.ErrLinkStalled.
	RetryTimeout time.Duration
	MaxRetries   int
}

// Serve runs the host side of the Ethernet protocol on a transport: it
// answers every statistics frame with a temperature frame until a CtrlStop
// arrives or the transport closes. This is what cmd/thermserver runs on a
// TCP listener.
func (h *ThermalHost) Serve(tr etherlink.Transport) error {
	return h.ServeWith(tr, ServeOptions{})
}

// ServeWith is Serve with explicit link options.
func (h *ThermalHost) ServeWith(tr etherlink.Transport, opt ServeOptions) error {
	ep := etherlink.NewEndpoint(tr, etherlink.HostMAC, etherlink.DeviceMAC)
	if opt.Stats != nil {
		ep.SetLinkStats(opt.Stats)
	}
	if !opt.Plain {
		ep.EnableReliability(etherlink.ReliableConfig{
			Window:       opt.Window,
			RetryTimeout: opt.RetryTimeout,
			MaxRetries:   opt.MaxRetries,
		})
	}
	// Session-lifetime scratch buffers: the per-window serve path reuses
	// them so a long run does not allocate per frame.
	var (
		pwBuf      []float64
		tempsBuf   []float64
		milliKBuf  []uint32
		payloadBuf []byte
		batch      etherlink.StatsBatch
		reply      etherlink.TempsBatch
	)
	// stepStats solves one statistics window and quantises the resulting
	// cell temperatures into milliK (reusing its capacity).
	stepStats := func(s *etherlink.Stats, milliK []uint32) (uint64, []uint32, error) {
		if cap(pwBuf) < len(s.PowerUW) {
			pwBuf = make([]float64, len(s.PowerUW))
		}
		pwBuf = pwBuf[:len(s.PowerUW)]
		for i, uw := range s.PowerUW {
			pwBuf[i] = float64(uw) * 1e-6
		}
		temps, err := h.StepWindowInto(pwBuf, float64(s.WindowPs)*1e-12, tempsBuf)
		if err != nil {
			return 0, milliK, err
		}
		tempsBuf = temps
		if cap(milliK) < len(temps) {
			milliK = make([]uint32, len(temps))
		}
		milliK = milliK[:len(temps)]
		for i, k := range temps {
			if k < 0 {
				k = 0
			}
			milliK[i] = uint32(k*1000 + 0.5)
		}
		return uint64(h.Model.Time() * 1e12), milliK, nil
	}
	for {
		f, err := ep.Recv()
		if err != nil {
			return err
		}
		switch f.Type {
		case etherlink.MsgCtrl:
			c, err := etherlink.UnmarshalCtrl(f.Payload)
			if err != nil {
				return err
			}
			switch c.Op {
			case etherlink.CtrlStart:
				if int(c.Arg) != h.NumComponents() {
					return fmt.Errorf("core: device announces %d components, host floorplan has %d",
						c.Arg, h.NumComponents())
				}
				h.Model.Reset()
			case etherlink.CtrlStop:
				return nil
			}
		case etherlink.MsgEvents:
			evs, err := etherlink.UnmarshalEvents(f.Payload)
			if err != nil {
				return err
			}
			h.EventsReceived += uint64(len(evs.Entries))
			if h.OnEvents != nil {
				h.OnEvents(evs.Entries)
			}
		case etherlink.MsgStats:
			s, err := etherlink.UnmarshalStats(f.Payload)
			if err != nil {
				return err
			}
			timePs, milliK, err := stepStats(s, milliKBuf)
			milliKBuf = milliK
			if err != nil {
				return err
			}
			t := etherlink.Temps{TimePs: timePs, MilliK: milliK}
			payloadBuf = t.AppendPayload(payloadBuf[:0])
			if err := ep.Send(etherlink.MsgTemp, payloadBuf); err != nil {
				return err
			}
		case etherlink.MsgStatsBatch:
			if err := etherlink.UnmarshalStatsBatchInto(&batch, f.Payload); err != nil {
				return err
			}
			if cap(reply.Windows) < len(batch.Windows) {
				reply.Windows = append(reply.Windows[:cap(reply.Windows)],
					make([]etherlink.Temps, len(batch.Windows)-cap(reply.Windows))...)
			}
			reply.Windows = reply.Windows[:len(batch.Windows)]
			// Windows are solved strictly in order, so batching changes
			// only the framing, never the thermal trajectory.
			for i := range batch.Windows {
				timePs, milliK, err := stepStats(&batch.Windows[i], reply.Windows[i].MilliK)
				reply.Windows[i].TimePs = timePs
				reply.Windows[i].MilliK = milliK
				if err != nil {
					return err
				}
			}
			payloadBuf = reply.AppendPayload(payloadBuf[:0])
			if err := ep.Send(etherlink.MsgTempBatch, payloadBuf); err != nil {
				return err
			}
		}
	}
}
