package core

// The pipelined co-emulation loop: the software analogue of the paper's
// HW/SW overlap. On the FPGA the emulator keeps running at speed while the
// host PC integrates temperatures concurrently, and the VPCM freezes the
// virtual clock only when the link or the solver genuinely falls behind
// (Section 4.2, Table 3). The serial loop in coemulator.go instead blocks
// the emulation for every thermal solve. Here the loop is split into two
// stages connected by a bounded hand-off queue of PipelineDepth windows:
//
//	emulate stage (this goroutine)       solve stage (one goroutine)
//	┌──────────────────────────┐  work   ┌───────────────────────────┐
//	│ step window, snapshot,   │ ──────► │ dispatch stats (link or   │
//	│ power eval, golden digest│         │ in-process), thermal step,│
//	│ apply delayed feedback   │ ◄────── │ sensors, TM policy        │
//	└──────────────────────────┘  done   └───────────────────────────┘
//
// Determinism contract: the feedback of window N (DFS action and component
// temperatures for leakage) is applied at the fixed window boundary before
// window N+depth+1 emulates — a sensor latency of `depth` windows relative
// to the serial loop. Window boundaries therefore depend only on emulated
// state, never on host timing: pipelined runs are bit-reproducible run to
// run, and with TM feedback off (no DFS, no leakage) they are
// digest-identical to serial runs. Backpressure — the solver lagging so far
// that the queue fills — only freezes *physical* time via
// vpcm.ThermalLagSource, mirroring the Ethernet congestion freeze.
//
// Buffer ownership: depth+1 window jobs circulate free → work → done →
// free. A job is written by the emulate stage (snapshot, powers), handed
// off, written by the solve stage (temps, sensors, policy verdict), handed
// back, and read/recycled at the feedback boundary. Channel hand-off
// provides the happens-before edges, so no other synchronisation is
// needed, and the steady-state loop allocates nothing.

import (
	"fmt"
	"time"

	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/tm"
	"thermemu/internal/vpcm"
)

// asyncFreezer adapts the VPCM for link backpressure accounting raised from
// the solve stage: frozen time lands in the (mutex-guarded) per-source
// totals, but the freeze flag itself — which the emulate stage polls
// unsynchronised on every Advance — is never toggled. The emulate stage
// raises its own thermal-lag freeze when the hand-off queue fills, which is
// when link stalls actually reach the virtual clock.
type asyncFreezer struct{ v *vpcm.VPCM }

func (a asyncFreezer) RequestFreeze(string) {}
func (a asyncFreezer) ReleaseFreeze(string) {}
func (a asyncFreezer) AddFrozenTime(physCycles uint64) { a.v.AddFrozenTime(physCycles) }
func (a asyncFreezer) AddFrozenTimeSource(source string, physCycles uint64) {
	a.v.AddFrozenTimeSource(source, physCycles)
}

// window is one in-flight sampling window of the pipeline.
type window struct {
	seq      uint64 // 1-based window number
	windowPs uint64 // thermal integration span (time-scaled)
	snap     emu.Snapshot
	powers   []float64 // per-component dynamic+static power, W
	powerUW  []uint32  // link encoding of powers
	// Solve-stage results.
	cellTemps []float64
	compTemps []float64
	sensors   []tm.Sensor
	maxTempK  float64
	setFreqHz uint64 // 0 = no DFS action
	throttled bool
	err       error
}

// thermalLagPs extracts the thermal-lag frozen time from the VPCM.
func thermalLagPs(v *vpcm.VPCM) uint64 {
	for _, e := range v.FrozenPsBySource() {
		if e.Source == vpcm.ThermalLagSource {
			return e.Ps
		}
	}
	return 0
}

// runPipelined executes the co-emulation loop with a pipeline of the
// configured depth. The platform is already built and loaded; disp is nil
// in in-process mode.
func runPipelined(cfg Config, p *emu.Platform, eval *PowerEvaluator,
	disp *etherlink.Dispatcher, maxCycles uint64, tscale float64,
	onSample func(Sample), ck *ckptRuntime, resumedMax float64) (*Result, error) {

	depth := cfg.PipelineDepth
	ncomp := cfg.Host.NumComponents()
	free := make(chan *window, depth+1)
	for i := 0; i < depth+1; i++ {
		free <- &window{
			powers:  make([]float64, ncomp),
			powerUW: make([]uint32, ncomp),
		}
	}
	work := make(chan *window, depth)
	done := make(chan *window, depth+1)
	go solveStage(cfg, disp, work, done)

	res := &Result{MaxTempK: resumedMax}
	start := time.Now()
	var snap0 emu.Snapshot
	p.SnapshotInto(&snap0)
	prev := &snap0
	var committed emu.Snapshot
	snap0.CopyInto(&committed)
	// lagTemps is the evaluator-owned copy of the last applied component
	// temperatures (the job buffer is recycled after the boundary).
	lagTemps := make([]float64, 0, ncomp)

	var (
		seq     uint64 // windows emulated and handed off
		applied uint64 // window feedbacks consumed
	)

	// recvFeedback blocks on the next solved window. An empty done queue
	// means the solver is behind and the bounded queue has filled: virtual
	// time freezes for the wait, attributed to vpcm.ThermalLagSource.
	recvFeedback := func() (*window, bool) {
		select {
		case w, ok := <-done:
			return w, ok
		default:
		}
		t0 := time.Now()
		p.VPCM.RequestFreeze(vpcm.ThermalLagSource)
		w, ok := <-done
		p.VPCM.ReleaseFreeze(vpcm.ThermalLagSource)
		phys := uint64(time.Since(t0).Seconds() * float64(p.VPCM.PhysHz()))
		p.VPCM.AddFrozenTimeSource(vpcm.ThermalLagSource, phys)
		return w, ok
	}

	// sendWork hands a window to the solve stage. A full queue means the
	// solver is a full pipeline behind: the wait freezes virtual time just
	// like recvFeedback's.
	sendWork := func(job *window) {
		select {
		case work <- job:
			return
		default:
		}
		t0 := time.Now()
		p.VPCM.RequestFreeze(vpcm.ThermalLagSource)
		work <- job
		p.VPCM.ReleaseFreeze(vpcm.ThermalLagSource)
		phys := uint64(time.Since(t0).Seconds() * float64(p.VPCM.PhysHz()))
		p.VPCM.AddFrozenTimeSource(vpcm.ThermalLagSource, phys)
	}

	// apply commits window w's feedback at the current window boundary:
	// DFS programs the VPCM, component temperatures feed the next power
	// evaluation (leakage), and the sample is emitted.
	apply := func(w *window) {
		if w.setFreqHz != 0 {
			p.VPCM.SetFrequency(w.setFreqHz)
		}
		lagTemps = append(lagTemps[:0], w.compTemps...)
		eval.SetComponentTemps(lagTemps)
		sample := Sample{
			Cycle:     w.snap.Cycle,
			TimePs:    w.snap.TimePs,
			FreqHz:    w.snap.FreqHz,
			MaxTempK:  w.maxTempK,
			Throttled: w.throttled,
		}
		if cfg.DiscardSamples {
			// The sample's slices are reused buffers: valid only while the
			// callback runs (documented on Config.DiscardSamples).
			sample.CompPowerW = w.powers
			sample.CellTempK = w.cellTemps
			sample.CompTempK = w.compTemps
		} else {
			sample.CompPowerW = append([]float64(nil), w.powers...)
			sample.CellTempK = append([]float64(nil), w.cellTemps...)
			sample.CompTempK = append([]float64(nil), w.compTemps...)
			res.Samples = append(res.Samples, sample)
		}
		if w.maxTempK > res.MaxTempK {
			res.MaxTempK = w.maxTempK
		}
		if onSample != nil {
			onSample(sample)
		}
		w.snap.CopyInto(&committed)
		applied++
		ck.commit(w.compTemps)
		free <- w
	}

	// finishPartial tears the pipeline down after err and reports the last
	// committed window. workClosed tells whether close(work) already ran.
	finishPartial := func(err error, workClosed bool) (*Result, error) {
		if !workClosed {
			close(work)
		}
		for range done {
		}
		// The solver has exited (the drain above closed its output), so the
		// thermal model is quiescent and safe to snapshot for the flush.
		err = ck.flushPartial(err, res.MaxTempK)
		res.Partial = true
		res.FinalSnap = committed
		res.Cycles = committed.Cycle
		res.VirtualS = float64(committed.TimePs) * 1e-12
		res.Wall = time.Since(start)
		res.DFSEvents = p.VPCM.DFSEvents()
		res.ThermalLagPs = thermalLagPs(p.VPCM)
		if disp != nil {
			res.Congestion = disp.Stats()
			res.Link = disp.Link().Snapshot()
		}
		return res, err
	}

	for !p.AllHalted() && p.VPCM.Cycle() < maxCycles {
		// Checkpoint boundary: drain every in-flight window so the platform
		// state and all committed feedback coincide — a pipeline flush —
		// then cut the checkpoint. The drain applies feedback earlier than
		// the steady-state schedule, so the cadence is part of the run's
		// determinism contract (see Config.CheckpointEvery).
		if ck.pending(seq - applied) {
			for applied < seq {
				w, ok := recvFeedback()
				if !ok {
					return finishPartial(fmt.Errorf("core: pipeline solver exited early"), false)
				}
				if w.err != nil {
					err := w.err
					free <- w
					return finishPartial(err, false)
				}
				apply(w)
			}
			if err := ck.write(false, res.MaxTempK); err != nil {
				return finishPartial(err, false)
			}
		}
		// Deterministic feedback boundary: before window seq+1 emulates,
		// window seq-depth's feedback must be in effect. (seq-applied is the
		// in-flight count; a checkpoint drain resets it to 0 and the
		// pipeline refills.)
		if seq-applied > uint64(depth) {
			w, ok := recvFeedback()
			if !ok {
				return finishPartial(fmt.Errorf("core: pipeline solver exited early"), false)
			}
			if w.err != nil {
				err := w.err
				free <- w
				return finishPartial(err, false)
			}
			apply(w)
		}

		job := <-free
		period := uint64(1e12) / p.VPCM.Frequency()
		n := cfg.WindowPs / period
		if n == 0 {
			n = 1
		}
		if left := maxCycles - p.VPCM.Cycle(); n > left {
			n = left
		}
		if cfg.Platform.Parallel {
			p.RunParallel(0, p.VPCM.Cycle()+n)
		} else {
			p.Step(n)
		}
		if err := p.Fault(); err != nil {
			free <- job
			return finishPartial(err, false)
		}
		p.SnapshotInto(&job.snap)
		emu.DigestSnapshot(cfg.Golden, job.snap)
		if _, err := eval.Powers(*prev, job.snap, job.powers); err != nil {
			free <- job
			return finishPartial(err, false)
		}
		job.windowPs = uint64(float64(job.snap.TimePs-prev.TimePs) * tscale)
		prev = &job.snap
		seq++
		job.seq = seq
		job.err = nil
		sendWork(job)
	}

	// Drain: the remaining min(depth, seq) in-flight windows still owe
	// their feedback; commit them in order at the final boundary.
	close(work)
	for applied < seq {
		w, ok := recvFeedback()
		if !ok {
			return finishPartial(fmt.Errorf("core: pipeline solver exited early"), true)
		}
		if w.err != nil {
			err := w.err
			free <- w
			return finishPartial(err, true)
		}
		apply(w)
	}
	for range done {
	}

	if disp != nil {
		if err := disp.SendCtrl(etherlink.CtrlStop, p.VPCM.Cycle()); err != nil {
			return finishPartial(err, true)
		}
		res.Congestion = disp.Stats()
		res.Link = disp.Link().Snapshot()
	}
	p.DigestInto(cfg.Golden)
	res.Cycles = p.VPCM.Cycle()
	res.VirtualS = p.VPCM.Time()
	res.Wall = time.Since(start)
	res.Done = p.AllHalted()
	res.DFSEvents = p.VPCM.DFSEvents()
	res.ThermalLagPs = thermalLagPs(p.VPCM)
	res.FinalSnap = p.Snapshot()
	res.Report = p.Report()
	res.Speculation = p.SpecStats()

	if res.Done && cfg.Workload.Verify != nil {
		if err := cfg.Workload.Verify(p.ReadSharedWord); err != nil {
			return res, fmt.Errorf("core: workload verification: %w", err)
		}
	}
	return res, nil
}

// solveStage is the pipeline's consumer: it dispatches each window's
// statistics (in-process call or Ethernet frames), converts the returned
// cell temperatures to component sensor readings, and runs the TM policy,
// recording the DFS verdict for the emulate stage to apply at the
// deterministic boundary. In transport mode, windows that queued up while
// the link was busy are shipped as one MsgStatsBatch frame. After a
// failure every subsequent window is bounced with the same error so the
// emulate stage observes it at the next boundary.
func solveStage(cfg Config, disp *etherlink.Dispatcher, work <-chan *window, done chan<- *window) {
	defer close(done)
	var failed error
	maxBatch := 1
	if disp != nil {
		maxBatch = etherlink.MaxStatsBatch(cfg.Host.NumComponents())
		if maxBatch > cfg.PipelineDepth {
			maxBatch = cfg.PipelineDepth
		}
	}
	var (
		pend   []*window
		batch  etherlink.StatsBatch
		treply etherlink.TempsBatch
		temps  etherlink.Temps
	)
	for w := range work {
		pend = append(pend[:0], w)
		for len(pend) < maxBatch {
			select {
			case w2, ok := <-work:
				if !ok {
					goto process
				}
				pend = append(pend, w2)
				continue
			default:
			}
			break
		}
	process:
		if failed == nil {
			failed = solveWindows(cfg, disp, pend, &batch, &treply, &temps)
		} else {
			for _, w := range pend {
				w.err = failed
			}
		}
		for _, w := range pend {
			done <- w
		}
	}
}

// solveWindows solves a run of consecutive windows. On error the failing
// and every later window carry w.err; earlier windows stay valid.
func solveWindows(cfg Config, disp *etherlink.Dispatcher, pend []*window,
	batch *etherlink.StatsBatch, treply *etherlink.TempsBatch, temps *etherlink.Temps) error {

	if disp == nil {
		for _, w := range pend {
			ct, err := cfg.Host.StepWindowInto(w.powers, float64(w.windowPs)*1e-12, w.cellTemps)
			if err != nil {
				return failFrom(pend, w, err)
			}
			w.cellTemps = ct
			finishWindow(cfg, w)
		}
		return nil
	}

	for _, w := range pend {
		for i, pw := range w.powers {
			w.powerUW[i] = uint32(pw*1e6 + 0.5)
		}
	}
	if len(pend) == 1 {
		w := pend[0]
		if err := disp.SendStats(&etherlink.Stats{
			Cycle: w.snap.Cycle, WindowPs: w.windowPs, PowerUW: w.powerUW,
		}); err != nil {
			return failFrom(pend, w, err)
		}
		if err := disp.RecvTempsInto(temps, nil); err != nil {
			return failFrom(pend, w, err)
		}
		w.cellTemps = kelvinInto(w.cellTemps, temps.MilliK)
		finishWindow(cfg, w)
		return nil
	}

	if cap(batch.Windows) < len(pend) {
		batch.Windows = make([]etherlink.Stats, len(pend))
	}
	batch.Windows = batch.Windows[:len(pend)]
	for i, w := range pend {
		batch.Windows[i] = etherlink.Stats{
			Cycle: w.snap.Cycle, WindowPs: w.windowPs, PowerUW: w.powerUW,
		}
	}
	if err := disp.SendStatsBatch(batch); err != nil {
		return failFrom(pend, pend[0], err)
	}
	if err := disp.RecvTempsBatchInto(treply, nil); err != nil {
		return failFrom(pend, pend[0], err)
	}
	if len(treply.Windows) != len(pend) {
		return failFrom(pend, pend[0], fmt.Errorf(
			"core: host answered %d temperature windows for a %d-window batch",
			len(treply.Windows), len(pend)))
	}
	for i, w := range pend {
		w.cellTemps = kelvinInto(w.cellTemps, treply.Windows[i].MilliK)
		finishWindow(cfg, w)
	}
	return nil
}

// failFrom marks w and every window after it in pend with err.
func failFrom(pend []*window, w *window, err error) error {
	mark := false
	for _, x := range pend {
		if x == w {
			mark = true
		}
		if mark {
			x.err = err
		}
	}
	return err
}

// kelvinInto converts quantised millikelvin into a reused float buffer.
func kelvinInto(dst []float64, milliK []uint32) []float64 {
	if cap(dst) < len(milliK) {
		dst = make([]float64, len(milliK))
	}
	dst = dst[:len(milliK)]
	for i, v := range milliK {
		dst[i] = float64(v) / 1000
	}
	return dst
}

// finishWindow derives the window's sensor readings and policy verdict
// from its fresh cell temperatures.
func finishWindow(cfg Config, w *window) {
	w.compTemps = cfg.Host.ComponentTempsInto(w.cellTemps, w.compTemps)
	w.maxTempK = 0
	for _, t := range w.cellTemps {
		if t > w.maxTempK {
			w.maxTempK = t
		}
	}
	w.setFreqHz = 0
	w.throttled = false
	if cfg.Policy != nil {
		if cap(w.sensors) < len(w.compTemps) {
			w.sensors = make([]tm.Sensor, 0, len(w.compTemps))
		}
		w.sensors = w.sensors[:0]
		for i, t := range w.compTemps {
			w.sensors = append(w.sensors, tm.Sensor{
				Name:  cfg.Host.FP.Components[i].Name,
				TempK: cfg.Sensor.Read(t),
			})
		}
		action := cfg.Policy.Update(w.sensors)
		w.setFreqHz = action.SetFreqHz
		if th, ok := cfg.Policy.(*tm.ThresholdDFS); ok {
			w.throttled = th.Throttled()
		}
	}
}
