package core

import (
	"math"
	"testing"
	"time"

	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/golden"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
)

// runWithJournal runs the closed loop with a journaling golden trace
// attached and returns both.
func runWithJournal(t *testing.T, cfg Config) (*Result, *golden.Trace) {
	t.Helper()
	tr := golden.NewJournal()
	cfg.Golden = tr
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run incomplete")
	}
	return res, tr
}

// TestPipelinedDigestMatchesSerialTMOff is the differential matrix of the
// determinism contract: with thermal feedback off (no DFS policy, no
// leakage) the pipelined loop must be digest-identical to the serial loop
// at every depth, because window boundaries depend only on emulated state.
func TestPipelinedDigestMatchesSerialTMOff(t *testing.T) {
	serial, serialTr := runWithJournal(t, testConfig(t, 4, nil))

	for _, depth := range []int{1, 2} {
		cfg := testConfig(t, 4, nil)
		cfg.PipelineDepth = depth
		pipe, pipeTr := runWithJournal(t, cfg)

		if d := golden.Compare(serialTr, pipeTr); d != nil {
			t.Fatalf("depth %d diverged from serial: %v", depth, d)
		}
		if serial.Cycles != pipe.Cycles || serial.VirtualS != pipe.VirtualS {
			t.Fatalf("depth %d timeline differs: %d cy/%.6fs vs %d cy/%.6fs",
				depth, serial.Cycles, serial.VirtualS, pipe.Cycles, pipe.VirtualS)
		}
		// With TM off the solver consumes the exact same power windows in
		// the exact same order, so samples must be bit-identical too.
		if len(serial.Samples) != len(pipe.Samples) {
			t.Fatalf("depth %d sample counts: serial %d vs pipelined %d",
				depth, len(serial.Samples), len(pipe.Samples))
		}
		for i := range serial.Samples {
			s, p := serial.Samples[i], pipe.Samples[i]
			if s.Cycle != p.Cycle || s.TimePs != p.TimePs || s.FreqHz != p.FreqHz {
				t.Fatalf("depth %d sample %d timeline: %+v vs %+v", depth, i, s, p)
			}
			if s.MaxTempK != p.MaxTempK {
				t.Fatalf("depth %d sample %d temp: %v vs %v", depth, i, s.MaxTempK, p.MaxTempK)
			}
			for j := range s.CompPowerW {
				if s.CompPowerW[j] != p.CompPowerW[j] {
					t.Fatalf("depth %d sample %d power %d: %v vs %v",
						depth, i, j, s.CompPowerW[j], p.CompPowerW[j])
				}
			}
		}
		if serial.MaxTempK != pipe.MaxTempK {
			t.Fatalf("depth %d MaxTempK: %v vs %v", depth, serial.MaxTempK, pipe.MaxTempK)
		}
	}
}

// TestPipelinedTransportMatchesSerial runs the pipelined loop over the
// Ethernet loopback (exercising the batched stats dispatch) and checks it
// against an in-process serial run: identical golden digest, and the same
// temperature trajectory modulo millikelvin quantisation.
func TestPipelinedTransportMatchesSerial(t *testing.T) {
	serial, serialTr := runWithJournal(t, testConfig(t, 3, nil))

	cfg := testConfig(t, 3, nil)
	cfg.PipelineDepth = 2
	devTr, hostTr := etherlink.LoopbackPair(8)
	cfg.Transport = devTr
	cfg.DrainPhysCycles = 100

	hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hostPlan.Serve(hostTr) }()

	pipe, pipeTr := runWithJournal(t, cfg)
	if err := <-serveErr; err != nil {
		t.Fatalf("host serve: %v", err)
	}
	if d := golden.Compare(serialTr, pipeTr); d != nil {
		t.Fatalf("transport pipelined run diverged from serial: %v", d)
	}
	if len(serial.Samples) != len(pipe.Samples) {
		t.Fatalf("sample counts: serial %d vs pipelined %d",
			len(serial.Samples), len(pipe.Samples))
	}
	for i := range serial.Samples {
		d, r := serial.Samples[i].MaxTempK, pipe.Samples[i].MaxTempK
		if math.Abs(d-r) > 0.002 {
			t.Fatalf("sample %d: in-process %.4f K vs link %.4f K", i, d, r)
		}
	}
}

// TestPipelinedTMReproducible checks the bit-reproducibility half of the
// contract: with a DFS policy active (so feedback genuinely alters the
// emulated timeline) two depth-2 runs must be identical record for record.
// The CI race job runs this under -race, which also vets the channel
// hand-off discipline between the emulate and solve stages.
func TestPipelinedTMReproducible(t *testing.T) {
	run := func() (*Result, *golden.Trace) {
		cfg := testConfig(t, 60,
			&tm.ThresholdDFS{HighK: 320, LowK: 315, HighFreqHz: 500e6, LowFreqHz: 100e6})
		cfg.PipelineDepth = 2
		return runWithJournal(t, cfg)
	}
	a, aTr := run()
	b, bTr := run()

	if d := golden.Compare(aTr, bTr); d != nil {
		t.Fatalf("repeat runs diverged: %v", d)
	}
	if a.DFSEvents != b.DFSEvents {
		t.Fatalf("DFS events differ across repeats: %d vs %d", a.DFSEvents, b.DFSEvents)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		x, y := a.Samples[i], b.Samples[i]
		if x.Cycle != y.Cycle || x.TimePs != y.TimePs || x.FreqHz != y.FreqHz ||
			x.MaxTempK != y.MaxTempK || x.Throttled != y.Throttled {
			t.Fatalf("sample %d differs across repeats: %+v vs %+v", i, x, y)
		}
	}
	if a.DFSEvents > 0 {
		t.Logf("policy acted %d times with a 2-window sensor latency", a.DFSEvents)
	}
}

// slowPolicy stalls the solve stage without ever acting, so the emulated
// timeline stays identical to a policy-free run while the solver is
// reliably slower than the emulator.
type slowPolicy struct{ delay time.Duration }

func (s *slowPolicy) Name() string { return "slow-null" }
func (s *slowPolicy) Update([]tm.Sensor) tm.Action {
	time.Sleep(s.delay)
	return tm.Action{}
}

// TestPipelinedBackpressureFreezesVirtualTime forces the solve stage to lag
// (a policy that sleeps every window) and checks the producer reacts the
// way Section 4.2 prescribes for a congested link: virtual time freezes —
// accounted to vpcm.ThermalLagSource — and the emulated windows stay exact,
// so the golden digest still matches a serial run with no policy at all.
func TestPipelinedBackpressureFreezesVirtualTime(t *testing.T) {
	_, serialTr := runWithJournal(t, testConfig(t, 3, nil))

	cfg := testConfig(t, 3, &slowPolicy{delay: 2 * time.Millisecond})
	cfg.PipelineDepth = 1
	pipe, pipeTr := runWithJournal(t, cfg)

	if pipe.ThermalLagPs == 0 {
		t.Fatal("slow solver accrued no thermal-lag frozen time")
	}
	if d := golden.Compare(serialTr, pipeTr); d != nil {
		t.Fatalf("backpressure corrupted the emulated windows: %v", d)
	}
	t.Logf("thermal lag: %.3f ms frozen", float64(pipe.ThermalLagPs)*1e-9)
}

// TestPipelinedPartialResultOnLinkCut severs the link mid-run (no
// reliability layer, no redial) and checks the error path reports the last
// *committed* window instead of metrics from a half-stepped platform.
func TestPipelinedPartialResultOnLinkCut(t *testing.T) {
	for _, depth := range []int{0, 2} {
		cfg := testConfig(t, 40, nil)
		cfg.WindowPs = 2_000_000 // 2 µs: many windows, so the cut lands mid-run
		cfg.PipelineDepth = depth
		cfg.LinkPlain = true
		devTr, hostTr := etherlink.LoopbackPair(8)
		cfg.Transport = etherlink.NewFaultTransport(devTr, 99,
			etherlink.FaultConfig{CutAfter: 12}, etherlink.FaultConfig{})
		cfg.DrainPhysCycles = 100

		hostPlan, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- hostPlan.ServeWith(hostTr, ServeOptions{Plain: true}) }()

		res, err := Run(cfg, nil)
		if err == nil {
			t.Fatalf("depth %d: severed link produced no error", depth)
		}
		if res == nil {
			t.Fatalf("depth %d: no partial result alongside the error", depth)
		}
		if !res.Partial {
			t.Errorf("depth %d: result not marked partial", depth)
		}
		if res.Done {
			t.Errorf("depth %d: partial result claims completion", depth)
		}
		if res.Report != "" {
			t.Errorf("depth %d: partial result carries a platform report", depth)
		}
		// The summary must describe the last committed window exactly.
		if res.FinalSnap.Cycle != res.Cycles {
			t.Errorf("depth %d: FinalSnap.Cycle %d != Cycles %d",
				depth, res.FinalSnap.Cycle, res.Cycles)
		}
		if got, want := res.VirtualS, float64(res.FinalSnap.TimePs)*1e-12; got != want {
			t.Errorf("depth %d: VirtualS %v != committed %v", depth, got, want)
		}
		if n := len(res.Samples); n > 0 && res.Samples[n-1].Cycle != res.Cycles {
			t.Errorf("depth %d: last sample cycle %d != committed cycle %d",
				depth, res.Samples[n-1].Cycle, res.Cycles)
		}
		if res.Cycles == 0 {
			t.Errorf("depth %d: cut after 12 frames committed nothing", depth)
		}

		// Unblock and collect the host side (it sees the dead link as an
		// error or EOF — either is fine, the device already reported).
		devTr.Close()
		<-serveErr
	}
}

// TestPipelineConfigValidation pins the rejected configurations.
func TestPipelineConfigValidation(t *testing.T) {
	cfg := testConfig(t, 1, nil)
	cfg.PipelineDepth = -1
	if _, err := Run(cfg, nil); err == nil {
		t.Error("negative pipeline depth accepted")
	}

	cfg = testConfig(t, 1, nil)
	cfg.PipelineDepth = 1
	cfg.Platform.EventLogging = true
	if _, err := Run(cfg, nil); err == nil {
		t.Error("event logging combined with pipelining accepted")
	}
}

// TestPipelinedDiscardSamples checks the zero-retention mode used by the
// benchmarks: samples stream through the callback (with reused buffers) and
// nothing accumulates on the result.
func TestPipelinedDiscardSamples(t *testing.T) {
	cfg := testConfig(t, 2, nil)
	cfg.PipelineDepth = 1
	cfg.DiscardSamples = true
	n := 0
	var lastCycle uint64
	res, err := Run(cfg, func(s Sample) {
		n++
		if s.Cycle <= lastCycle {
			t.Errorf("samples not monotone: %d after %d", s.Cycle, lastCycle)
		}
		lastCycle = s.Cycle
		if len(s.CellTempK) != 28 {
			t.Errorf("callback sample has %d cell temps", len(s.CellTempK))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 0 {
		t.Errorf("DiscardSamples retained %d samples", len(res.Samples))
	}
	if n == 0 {
		t.Error("callback never fired")
	}
	if res.MaxTempK <= 300 {
		t.Error("max temperature not tracked in discard mode")
	}
}

// TestHostBatchMatchesSingles drives the host protocol directly: the same
// two statistics windows sent once as two MsgStats frames and once as one
// MsgStatsBatch frame must produce bit-identical temperature replies —
// batching changes the framing, never the thermal trajectory.
func TestHostBatchMatchesSingles(t *testing.T) {
	ncomp := len(floorplan.FourARM11().Components)
	mkPowers := func(base uint32) []uint32 {
		pw := make([]uint32, ncomp)
		for i := range pw {
			pw[i] = base + uint32(i)*37_000 // distinct, sub-watt per component
		}
		return pw
	}
	stats := []etherlink.Stats{
		{Cycle: 50_000, WindowPs: 200_000_000_000, PowerUW: mkPowers(400_000)},
		{Cycle: 100_000, WindowPs: 200_000_000_000, PowerUW: mkPowers(250_000)},
	}

	session := func(batched bool) []etherlink.Temps {
		t.Helper()
		devTr, hostTr := etherlink.LoopbackPair(8)
		host, err := NewThermalHost(floorplan.FourARM11(), 28, thermal.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := host.NumComponents(), len(stats[0].PowerUW); got != want {
			t.Fatalf("test vector has %d powers, floorplan has %d components", want, got)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- host.ServeWith(hostTr, ServeOptions{Plain: true}) }()

		ep := etherlink.NewEndpoint(devTr, etherlink.DeviceMAC, etherlink.HostMAC)
		start := &etherlink.Ctrl{Op: etherlink.CtrlStart, Arg: uint64(host.NumComponents())}
		if err := ep.Send(etherlink.MsgCtrl, start.MarshalPayload()); err != nil {
			t.Fatal(err)
		}
		var out []etherlink.Temps
		if batched {
			sb := &etherlink.StatsBatch{Windows: stats}
			if err := ep.Send(etherlink.MsgStatsBatch, sb.MarshalPayload()); err != nil {
				t.Fatal(err)
			}
			f, err := ep.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if f.Type != etherlink.MsgTempBatch {
				t.Fatalf("batch answered with %v", f.Type)
			}
			tb, err := etherlink.UnmarshalTempsBatch(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			out = tb.Windows
		} else {
			for i := range stats {
				if err := ep.Send(etherlink.MsgStats, stats[i].MarshalPayload()); err != nil {
					t.Fatal(err)
				}
				f, err := ep.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if f.Type != etherlink.MsgTemp {
					t.Fatalf("stats answered with %v", f.Type)
				}
				tp, err := etherlink.UnmarshalTemps(f.Payload)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, *tp)
			}
		}
		stop := &etherlink.Ctrl{Op: etherlink.CtrlStop}
		if err := ep.Send(etherlink.MsgCtrl, stop.MarshalPayload()); err != nil {
			t.Fatal(err)
		}
		if err := <-serveErr; err != nil {
			t.Fatalf("host serve: %v", err)
		}
		return out
	}

	singles := session(false)
	batch := session(true)
	if len(batch) != len(singles) {
		t.Fatalf("batch answered %d windows, singles %d", len(batch), len(singles))
	}
	for i := range singles {
		if singles[i].TimePs != batch[i].TimePs {
			t.Errorf("window %d time: single %d vs batch %d",
				i, singles[i].TimePs, batch[i].TimePs)
		}
		for j := range singles[i].MilliK {
			if singles[i].MilliK[j] != batch[i].MilliK[j] {
				t.Fatalf("window %d cell %d: single %d mK vs batch %d mK",
					i, j, singles[i].MilliK[j], batch[i].MilliK[j])
			}
		}
	}
}

// TestSnapshotCopyInto pins the reusable-buffer snapshot copy used by the
// pipeline's committed-window bookkeeping.
func TestSnapshotCopyInto(t *testing.T) {
	cfg := testConfig(t, 1, nil)
	p, err := emu.New(cfg.Platform)
	if err != nil {
		t.Fatal(err)
	}
	var a, b emu.Snapshot
	p.SnapshotInto(&a)
	a.CopyInto(&b)
	if len(b.Cores) != len(a.Cores) || b.Cycle != a.Cycle || b.TimePs != a.TimePs {
		t.Fatalf("copy differs: %+v vs %+v", b, a)
	}
	// The copy must be detached: refill a and check b is unchanged.
	aCores := b.Cores
	p.SnapshotInto(&a)
	a.Cores[0].ActiveCycles += 999
	if &aCores[0] == &a.Cores[0] {
		t.Fatal("copy aliases the source's core stats")
	}
}
