package core

import (
	"thermemu/internal/emu"
	"thermemu/internal/floorplan"
	"thermemu/internal/power"
)

// PowerEvaluator converts the sniffer statistics of one sampling window
// (the difference of two platform snapshots) into the per-component power
// vector of the floorplan, using the activity-based models of Table 1:
//
//   - cores:       fraction of cycles in active mode;
//   - caches:      accesses per cycle (at most one per cycle);
//   - private mem: controller private-range references per cycle;
//   - shared mem:  shared-range references per cycle, summed over cores;
//   - NoC switch:  flits per cycle, split across switches;
//   - bus:         beats carried per cycle.
//
// Power scales linearly with the current virtual clock frequency, so DFS
// actions are immediately visible in the next window's power.
type PowerEvaluator struct {
	fp       *floorplan.Floorplan
	switches int
	// Leakage, when non-nil, adds temperature-dependent static power per
	// component, evaluated at the previous window's component temperatures
	// (the leakage-thermal feedback loop the paper cites as decisive for
	// future technology nodes).
	Leakage *power.LeakageModel
	// DVFS, when non-nil, applies quadratic voltage scaling on top of the
	// linear frequency scaling, per the operating-point curve.
	DVFS power.DVFSCurve
	// lastTemps holds the previous window's component temperatures for the
	// leakage evaluation (ambient before the first window).
	lastTemps []float64
}

// NewPowerEvaluator builds an evaluator for the floorplan. The platform
// configuration only matters for the switch count, taken from the
// floorplan itself.
func NewPowerEvaluator(fp *floorplan.Floorplan) *PowerEvaluator {
	sw := 0
	for _, c := range fp.Components {
		if c.Kind == floorplan.KindNoCSwitch {
			sw++
		}
	}
	return &PowerEvaluator{fp: fp, switches: sw}
}

// SetComponentTemps feeds back the latest per-component temperatures for
// the leakage evaluation of the next window.
func (e *PowerEvaluator) SetComponentTemps(tempsK []float64) {
	e.lastTemps = tempsK
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Powers evaluates the window between two snapshots. out, if non-nil, is
// reused; the returned slice is indexed like fp.Components. Floorplan
// components belonging to cores the platform does not instantiate evaluate
// to zero power (dark silicon).
func (e *PowerEvaluator) Powers(prev, cur emu.Snapshot, out []float64) ([]float64, error) {
	if out == nil {
		out = make([]float64, len(e.fp.Components))
	}
	dc := cur.Cycle - prev.Cycle
	if dc == 0 {
		for i := range out {
			out[i] = 0
		}
		return out, nil
	}
	freq := float64(cur.FreqHz)
	window := float64(dc)
	for i, comp := range e.fp.Components {
		var activity float64
		switch comp.Kind {
		case floorplan.KindCore:
			if comp.CoreID >= len(cur.Cores) {
				// A die may have more cores than the emulated platform
				// instantiates (e.g. a 2-core configuration on the 4-core
				// floorplan); the unused cores sit dark.
				break
			}
			activity = float64(cur.Cores[comp.CoreID].ActiveCycles-prev.Cores[comp.CoreID].ActiveCycles) / window
		case floorplan.KindICache:
			if comp.CoreID >= len(cur.ICaches) {
				break
			}
			activity = float64(cur.ICaches[comp.CoreID].Accesses()-prev.ICaches[comp.CoreID].Accesses()) / window
		case floorplan.KindDCache:
			if comp.CoreID >= len(cur.DCaches) {
				break
			}
			activity = float64(cur.DCaches[comp.CoreID].Accesses()-prev.DCaches[comp.CoreID].Accesses()) / window
		case floorplan.KindPrivMem:
			if comp.CoreID >= len(cur.Ctrls) {
				break
			}
			c, p := cur.Ctrls[comp.CoreID], prev.Ctrls[comp.CoreID]
			refs := (c.PrivateReads + c.PrivateWrits + c.Fetches) - (p.PrivateReads + p.PrivateWrits + p.Fetches)
			activity = float64(refs) / window
		case floorplan.KindSharedMem:
			var refs uint64
			for ci := range cur.Ctrls {
				refs += (cur.Ctrls[ci].SharedReads + cur.Ctrls[ci].SharedWrits) -
					(prev.Ctrls[ci].SharedReads + prev.Ctrls[ci].SharedWrits)
			}
			activity = float64(refs) / window
		case floorplan.KindNoCSwitch:
			if cur.Noc != nil && e.switches > 0 {
				flits := cur.Noc.Flits - prev.Noc.Flits
				activity = float64(flits) / (window * float64(e.switches))
			}
		case floorplan.KindBus:
			if cur.Bus != nil {
				beats := cur.Bus.BeatsCarried - prev.Bus.BeatsCarried
				activity = float64(beats) / window
			}
		}
		if e.DVFS != nil {
			out[i] = comp.Model.PowerDVFS(clamp01(activity), freq, e.DVFS)
		} else {
			out[i] = comp.Model.Power(clamp01(activity), freq)
		}
		if e.Leakage != nil {
			t := 300.0
			if i < len(e.lastTemps) {
				t = e.lastTemps[i]
			}
			out[i] += e.Leakage.Power(comp.Model, t)
		}
	}
	return out, nil
}
