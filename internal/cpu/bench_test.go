package cpu

import (
	"math/rand"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/isa"
	"thermemu/internal/mem"
)

// benchWords is a realistic instruction-word mix: the working set of a
// small loop kernel (a few dozen distinct words), visited repeatedly the
// way a fetch stream does.
func benchWords() []uint32 {
	rng := rand.New(rand.NewSource(7))
	uniq := make([]uint32, 48)
	for i := range uniq {
		uniq[i] = rng.Uint32()
	}
	words := make([]uint32, 4096)
	for i := range words {
		words[i] = uniq[rng.Intn(len(uniq))]
	}
	return words
}

// BenchmarkDecodeRaw measures the pure field-unpacking decoder.
func BenchmarkDecodeRaw(b *testing.B) {
	words := benchWords()
	b.ResetTimer()
	var sink isa.Instr
	for i := 0; i < b.N; i++ {
		sink = isa.Decode(words[i%len(words)])
	}
	_ = sink
}

// BenchmarkDecodeMemoized measures the direct-mapped decoded-instruction
// table on the same word stream.
func BenchmarkDecodeMemoized(b *testing.B) {
	words := benchWords()
	var c isa.DecodeCache
	b.ResetTimer()
	var sink isa.Instr
	for i := 0; i < b.N; i++ {
		sink = c.Decode(words[i%len(words)])
	}
	_ = sink
}

// buildBenchCore assembles a non-halting loop kernel onto a fresh core.
func buildBenchCore(b *testing.B) *Core {
	b.Helper()
	im, err := asm.Assemble(`
		addi r1, r0, 1
		addi r2, r0, 0
		addi r4, r0, 0x100
	loop:
		add  r2, r2, r1
		sub  r3, r2, r1
		and  r5, r2, r3
		or   r6, r2, r3
		sw   r2, 0(r4)
		lw   r7, 0(r4)
		addi r4, r4, 4
		andi r4, r4, 0x1FC
		ori  r4, r4, 0x100
		jal  loop
	`)
	if err != nil {
		b.Fatal(err)
	}
	ctl := mem.NewController("ctl0", 0)
	priv := mem.NewMemory("priv", 64*1024, 0)
	if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate}); err != nil {
		b.Fatal(err)
	}
	for _, s := range im.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core := New(0, Microblaze, ctl)
	core.Reset(im.Entry)
	return core
}

// BenchmarkCoreStep measures the fetch/dispatch hot path end to end: one
// core stepping a loop kernel through the memoized decoder.
func BenchmarkCoreStep(b *testing.B) {
	core := buildBenchCore(b)
	b.ResetTimer()
	for now := uint64(0); now < uint64(b.N); now++ {
		core.Step(now)
	}
	if core.Fault() != nil {
		b.Fatal(core.Fault())
	}
	b.ReportMetric(float64(core.Stats().Instructions)/b.Elapsed().Seconds(), "instr/s")
}
