package cpu

// This file implements threaded-code basic-block dispatch: straight-line
// R32 blocks are discovered at first execution (isa.ScanBlock), pre-decoded
// into arrays of blockOp records whose run fields point at shared op
// functions, and executed whole. Per instruction this removes the Step call
// overhead, the address-range binary search, the functional fetch load, the
// decode-memo lookup and the two-level exec switch; per *window* it removes
// the serial event kernel's per-cycle scan. Everything observable — stats,
// stall accounting, activity-sniffer counters, memory-controller counters,
// fault semantics, pc on fault — is bit-identical to Step, which the golden
// differential matrix enforces.
//
// The block cache is derived state, keyed by code address. It is therefore
// invalidated by stores into translated ranges (the memory controller's
// code-write hook), discarded on Reset (program reloads) and on
// RestoreState (checkpoint resume restores to a cold cache), and never
// serialized. Contrast isa.DecodeCache, which is keyed by the instruction
// word itself and needs none of this.

import (
	"thermemu/internal/isa"
	"thermemu/internal/mem"
	"thermemu/internal/sniffer"
)

const (
	// blockTableBits sizes the direct-mapped front table over the block map.
	blockTableBits = 9
	blockTableSize = 1 << blockTableBits
	// blockCacheMax bounds live blocks; beyond it the cache is flushed
	// wholesale (pathological self-modifying or mid-block-entry workloads).
	blockCacheMax = 4096
	// blockPageBits is the invalidation granularity of the page index.
	blockPageBits = 12
	blockPageSize = 1 << blockPageBits
)

// blockOp is one pre-decoded instruction of a translated block: a threaded
// dispatch target plus the flattened fields it needs. run executes the
// operation (registers, memory, pc, branch/load/store counters), returning
// the data-stall cycles; on a memory fault it sets c.fault and leaves pc at
// the faulting instruction, exactly like Core.exec.
type blockOp struct {
	run  func(c *Core, x *blockOp, now uint64) uint64
	rd   uint8
	rs1  uint8
	rs2  uint8
	imm  int32
	pc   uint32 // fetch address of this instruction
	next uint32 // pc+4, or the taken target for jal/branches
}

// block is one translated straight-line run, entered only at entry.
type block struct {
	entry uint32
	end   uint32 // exclusive byte end: entry + 4*len(ops)
	valid bool
	ops   []blockOp
	fp    *mem.FetchPath
	// plan is the block's batched-fetch plan (nil when the fetch path
	// cannot batch).
	plan *mem.BatchPlan
}

func (b *block) overlaps(addr, n uint32) bool {
	return addr < b.end && b.entry < addr+n
}

type blockTabEntry struct {
	pc uint32
	b  *block
}

// BlockStats counts block-cache events (telemetry only; not digested and
// not checkpointed).
type BlockStats struct {
	Translated  uint64 // blocks translated
	Invalidated uint64 // blocks killed by code-range stores
	Flushes     uint64 // wholesale discards (reset, restore, capacity)
}

// blockCache holds one core's translated blocks. All accesses happen on the
// core's own stepping goroutine: translation and lookup from StepBlocks,
// invalidation from the controller's code-write hook, which fires
// synchronously inside the core's own store instructions.
type blockCache struct {
	table   [blockTableSize]blockTabEntry
	blocks  map[uint32]*block
	pages   map[uint32][]*block
	fps     []*mem.FetchPath
	scratch []isa.Instr
	// lo/hi bound every address ever covered by a translated block
	// (monotone — stale-but-safe after invalidations), so the store hook
	// rejects non-code stores with two compares.
	lo, hi  uint32
	haveAny bool
	stats   BlockStats
}

func newBlockCache() *blockCache {
	return &blockCache{
		blocks: make(map[uint32]*block),
		pages:  make(map[uint32][]*block),
	}
}

// EnableBlocks switches the core to translated basic-block dispatch: Step
// keeps working unchanged, and StepBlocks becomes available to the kernels.
// Call after the memory controller's address map is final. Idempotent.
func (c *Core) EnableBlocks() {
	if c.blocks != nil {
		return
	}
	c.blocks = newBlockCache()
	c.ctrl.SetCodeWriteHook(c.blocks.noteWrite)
}

// BlocksEnabled reports whether block dispatch is available.
func (c *Core) BlocksEnabled() bool { return c.blocks != nil }

// BlockStats returns the block-cache telemetry (zero when disabled).
func (c *Core) BlockStats() BlockStats {
	if c.blocks == nil {
		return BlockStats{}
	}
	return c.blocks.stats
}

// SetIssueHook installs fn, invoked with the issue cycle immediately before
// every instruction StepBlocks dispatches (nil uninstalls). The parallel
// kernel uses it to refresh its per-instruction shared-path gate state —
// the same two writes its runner loop performs before each Step — so gated
// accesses issued from inside a block park at the correct (cycle, coreID).
func (c *Core) SetIssueHook(fn func(cycle uint64)) { c.issueHook = fn }

// flushBlocks discards every translated block (derived state: program
// reloads and checkpoint restores must start cold).
func (c *Core) flushBlocks() {
	if c.blocks != nil {
		c.blocks.flush()
	}
}

func (bc *blockCache) flush() {
	bc.table = [blockTableSize]blockTabEntry{}
	bc.blocks = make(map[uint32]*block)
	bc.pages = make(map[uint32][]*block)
	bc.stats.Flushes++
}

// lookup returns the valid block entered at pc, or nil.
func (bc *blockCache) lookup(pc uint32) *block {
	e := &bc.table[(pc>>2)&(blockTableSize-1)]
	if b := e.b; b != nil && e.pc == pc && b.valid {
		return b
	}
	b := bc.blocks[pc]
	if b == nil || !b.valid {
		return nil
	}
	e.pc, e.b = pc, b
	return b
}

// noteWrite is the controller code-write hook: invalidate every block
// overlapping the stored bytes. The bounds check keeps the cost of
// non-code stores at two compares.
func (bc *blockCache) noteWrite(addr, n uint32) {
	if !bc.haveAny || addr >= bc.hi || addr+n <= bc.lo {
		return
	}
	first := addr &^ (blockPageSize - 1)
	last := (addr + n - 1) &^ (blockPageSize - 1)
	for pg := first; ; pg += blockPageSize {
		list := bc.pages[pg]
		for i := 0; i < len(list); {
			b := list[i]
			if b.valid && b.overlaps(addr, n) {
				b.valid = false
				delete(bc.blocks, b.entry)
				bc.stats.Invalidated++
			}
			if !b.valid {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				continue
			}
			i++
		}
		if len(list) == 0 {
			delete(bc.pages, pg)
		} else {
			bc.pages[pg] = list
		}
		if pg == last {
			break
		}
	}
}

// translate discovers, decodes and registers the block entered at pc, or
// returns nil when pc is not block-dispatchable (unaligned, unmapped, not
// plain-memory-backed, or starting at a non-executable word — the
// interpreter handles those identically to before).
func (c *Core) translate(pc uint32) *block {
	bc := c.blocks
	if pc%4 != 0 {
		return nil
	}
	fp := bc.fetchPath(c.ctrl, pc)
	if fp == nil {
		return nil
	}
	instrs, _ := isa.ScanBlock(pc, func(a uint32) (uint32, bool) {
		if !fp.Contains(a) || !fp.Contains(a+3) {
			return 0, false
		}
		return fp.PeekWord(a), true
	}, bc.scratch[:0])
	bc.scratch = instrs[:0]
	if len(instrs) == 0 {
		return nil
	}
	if len(bc.blocks) >= blockCacheMax {
		bc.flush()
	}
	b := &block{
		entry: pc,
		end:   pc + uint32(len(instrs))*4,
		valid: true,
		ops:   make([]blockOp, len(instrs)),
		fp:    fp,
	}
	for i, in := range instrs {
		emitOp(&b.ops[i], in, pc+uint32(i)*4)
	}
	b.plan = fp.NewBatchPlan(pc, uint32(len(instrs)))
	bc.blocks[pc] = b
	for pg := pc &^ (blockPageSize - 1); pg < b.end; pg += blockPageSize {
		bc.pages[pg] = append(bc.pages[pg], b)
	}
	if !bc.haveAny || pc < bc.lo {
		bc.lo = pc
	}
	if !bc.haveAny || b.end > bc.hi {
		bc.hi = b.end
	}
	bc.haveAny = true
	bc.stats.Translated++
	return b
}

// fetchPath resolves (and memoizes) the plain-memory fetch path covering pc.
func (bc *blockCache) fetchPath(ctrl *mem.Controller, pc uint32) *mem.FetchPath {
	for _, fp := range bc.fps {
		if fp.Contains(pc) {
			return fp
		}
	}
	fp := ctrl.FetchPathFor(pc)
	if fp != nil {
		bc.fps = append(bc.fps, fp)
	}
	return fp
}

// StepBlocks advances the core through translated blocks for up to max
// cycles starting at platform cycle now, returning the cycles consumed, the
// instructions issued and the stall cycles settled in bulk. A zero cycle
// count means block dispatch cannot run from the current state (disabled,
// tracing, dual-issue, stalled, halted, or an undispatchable pc) and the
// caller must fall back to Step. Every observable effect over the consumed
// cycles is bit-identical to that many Step calls.
func (c *Core) StepBlocks(now, max uint64) (cycles, steps, skipped uint64) {
	if c.blocks == nil || max == 0 || c.tracer != nil || c.issueWidth > 1 ||
		c.halt || c.fault != nil || c.stall > 0 {
		return 0, 0, 0
	}
	bc := c.blocks
	hook := c.issueHook
	cyc, end := now, now+max
	// issued counts instructions committed this invocation; the per-core
	// active-cycle and instruction counters are settled from it in one add
	// at each return (their intermediate values are unobservable inside the
	// window), keeping two counter updates off the per-instruction path.
	var issued uint64
	// Batched-fetch state, carried ACROSS block executions: while consecutive
	// executions re-enter the same Ready plan (the hot-loop case), their
	// fetches accumulate in fetched and settle in a single exact Settle call
	// when the plan changes, the per-instruction fetch path resumes, or the
	// window exits. pendPlan/pendFp name the plan the pending count belongs
	// to; zero pending means the per-instruction path is in use.
	var (
		pendPlan *mem.BatchPlan
		pendFp   *mem.FetchPath
		fetched  uint32
		fHit     uint64
	)
	for cyc < end {
		b := bc.lookup(c.pc)
		if b == nil {
			b = c.translate(c.pc)
			if b == nil {
				if fetched > 0 {
					pendFp.Settle(pendPlan, fetched)
				}
				c.stats.ActiveCycles += issued
				c.stats.Instructions += issued
				return cyc - now, issued, skipped
			}
		}
		fp := b.fp
		ops := b.ops
		batched := false
		if b.plan != nil {
			if b.plan == pendPlan && fetched > 0 {
				// Same plan re-entered with fetches still pending: batched
				// fetches defer all icache traffic and data accesses go to
				// the dcache, so nothing can have moved the icache epoch
				// since Ready proved residency — it is still Ready.
				batched = true
			} else if h, ok := fp.Ready(b.plan); ok {
				if fetched > 0 {
					pendFp.Settle(pendPlan, fetched)
					fetched = 0
				}
				pendPlan, pendFp, fHit = b.plan, fp, h
				batched = true
			}
		}
		if !batched && fetched > 0 {
			// Leaving the batched regime: settle before any per-instruction
			// fetch interleaves with the icache directory.
			pendFp.Settle(pendPlan, fetched)
			fetched = 0
			pendPlan = nil
		}
		for i := range ops {
			if cyc >= end {
				if fetched > 0 {
					pendFp.Settle(pendPlan, fetched)
				}
				c.stats.ActiveCycles += issued
				c.stats.Instructions += issued
				return cyc - now, issued, skipped
			}
			x := &ops[i]
			if hook != nil {
				hook(cyc)
			}
			// Active cycle: same charge order as Step.
			c.state = Active
			if c.act != nil {
				c.act.Accrue(sniffer.ModeActive, 1)
			}
			c.pc = x.pc // keep the Step invariant: pc is the issuing instruction
			var fstall uint64
			if batched {
				fetched++
				fstall = fHit
			} else {
				fstall = fp.Fetch(cyc, x.pc)
			}
			dstall := x.run(c, x, cyc)
			cyc++
			if c.fault != nil {
				// Faulting Step: cycle charged (the faulting issue is an
				// active cycle), no commit, stall untouched (the fetch
				// preceding the fault did happen).
				if fetched > 0 {
					pendFp.Settle(pendPlan, fetched)
				}
				c.stats.ActiveCycles += issued + 1
				c.stats.Instructions += issued
				return cyc - now, issued, skipped
			}
			c.stall = fstall + dstall
			issued++
			if c.halt {
				if fetched > 0 {
					pendFp.Settle(pendPlan, fetched)
				}
				c.stats.ActiveCycles += issued
				c.stats.Instructions += issued
				return cyc - now, issued, skipped
			}
			if c.stall > 0 {
				// Settle the stall span in bulk, clipped to the window.
				span := c.stall
				if left := end - cyc; span > left {
					span = left
				}
				c.AccrueStall(span)
				skipped += span
				cyc += span
				if c.stall > 0 {
					if fetched > 0 {
						pendFp.Settle(pendPlan, fetched)
					}
					c.stats.ActiveCycles += issued
					c.stats.Instructions += issued
					return cyc - now, issued, skipped
				}
			}
			if !b.valid {
				// Self-modified underfoot by this very instruction: the
				// commit above is complete, so resume at c.pc with a fresh
				// translation — the next instruction executes new code, the
				// same cycle the interpreter would run it.
				break
			}
		}
		// Fell off the end (straight-line exit, taken control transfer, or
		// invalidation): c.pc already points at the successor; pending
		// batched fetches stay pending in case the same block runs next.
	}
	if fetched > 0 {
		pendFp.Settle(pendPlan, fetched)
	}
	c.stats.ActiveCycles += issued
	c.stats.Instructions += issued
	return cyc - now, issued, skipped
}

// emitOp fills one blockOp from a decoded instruction at address pc. The
// instruction is executable (ScanBlock guarantees it), so the undefined
// opcode/funct arms of the interpreter are unreachable here.
func emitOp(x *blockOp, in isa.Instr, pc uint32) {
	x.rd, x.rs1, x.rs2, x.imm = in.Rd, in.Rs1, in.Rs2, in.Imm
	x.pc = pc
	x.next = pc + 4
	switch {
	case in.Op == isa.OpRType:
		x.run = rtypeOps[in.Funct]
	case in.Op == isa.OpHalt:
		x.run = opHalt
	case in.Op == isa.OpLui:
		x.run = opLui
	case in.Op == isa.OpJal:
		x.next = uint32(int64(pc+4) + int64(in.Imm)*4)
		x.run = opJal
	case in.Op == isa.OpJalr:
		x.run = opJalr
	case in.Op.IsBranch():
		x.next = uint32(int64(pc+4) + int64(in.Imm)*4) // taken target
		x.run = branchOps[in.Op-isa.OpBeq]
	case in.Op.IsMem():
		x.run = memOps[in.Op]
	default:
		x.run = aluIOps[in.Op]
	}
}

// setReg mirrors Core.SetReg without the method-call overhead on the
// threaded hot path.
func setReg(c *Core, r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// R-type ALU ops (one function per funct; edge-case semantics mirror aluR).
var rtypeOps = [...]func(*Core, *blockOp, uint64) uint64{
	isa.FnAdd: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]+c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnSub: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]-c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnAnd: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]&c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnOr: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]|c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnXor: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]^c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnNor: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, ^(c.regs[x.rs1] | c.regs[x.rs2]))
		c.pc = x.next
		return 0
	},
	isa.FnSll: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]<<(c.regs[x.rs2]&31))
		c.pc = x.next
		return 0
	},
	isa.FnSrl: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]>>(c.regs[x.rs2]&31))
		c.pc = x.next
		return 0
	},
	isa.FnSra: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, uint32(int32(c.regs[x.rs1])>>(c.regs[x.rs2]&31)))
		c.pc = x.next
		return 0
	},
	isa.FnSlt: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, b2u(int32(c.regs[x.rs1]) < int32(c.regs[x.rs2])))
		c.pc = x.next
		return 0
	},
	isa.FnSltu: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, b2u(c.regs[x.rs1] < c.regs[x.rs2]))
		c.pc = x.next
		return 0
	},
	isa.FnMul: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]*c.regs[x.rs2])
		c.pc = x.next
		return 0
	},
	isa.FnDiv: func(c *Core, x *blockOp, _ uint64) uint64 {
		v, _ := aluR(isa.FnDiv, c.regs[x.rs1], c.regs[x.rs2])
		setReg(c, x.rd, v)
		c.pc = x.next
		return 0
	},
	isa.FnDivu: func(c *Core, x *blockOp, _ uint64) uint64 {
		v, _ := aluR(isa.FnDivu, c.regs[x.rs1], c.regs[x.rs2])
		setReg(c, x.rd, v)
		c.pc = x.next
		return 0
	},
	isa.FnRem: func(c *Core, x *blockOp, _ uint64) uint64 {
		v, _ := aluR(isa.FnRem, c.regs[x.rs1], c.regs[x.rs2])
		setReg(c, x.rd, v)
		c.pc = x.next
		return 0
	},
	isa.FnRemu: func(c *Core, x *blockOp, _ uint64) uint64 {
		v, _ := aluR(isa.FnRemu, c.regs[x.rs1], c.regs[x.rs2])
		setReg(c, x.rd, v)
		c.pc = x.next
		return 0
	},
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Immediate ALU ops, indexed by opcode (only the aluI opcodes are filled).
var aluIOps = [isa.OpSwap + 1]func(*Core, *blockOp, uint64) uint64{
	isa.OpAddi: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]+uint32(x.imm))
		c.pc = x.next
		return 0
	},
	isa.OpAndi: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]&uint32(x.imm))
		c.pc = x.next
		return 0
	},
	isa.OpOri: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]|uint32(x.imm))
		c.pc = x.next
		return 0
	},
	isa.OpXori: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]^uint32(x.imm))
		c.pc = x.next
		return 0
	},
	isa.OpSlti: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, b2u(int32(c.regs[x.rs1]) < x.imm))
		c.pc = x.next
		return 0
	},
	isa.OpSltiu: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, b2u(c.regs[x.rs1] < uint32(x.imm)))
		c.pc = x.next
		return 0
	},
	isa.OpSlli: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]<<(uint32(x.imm)&31))
		c.pc = x.next
		return 0
	},
	isa.OpSrli: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, c.regs[x.rs1]>>(uint32(x.imm)&31))
		c.pc = x.next
		return 0
	},
	isa.OpSrai: func(c *Core, x *blockOp, _ uint64) uint64 {
		setReg(c, x.rd, uint32(int32(c.regs[x.rs1])>>(uint32(x.imm)&31)))
		c.pc = x.next
		return 0
	},
}

func opLui(c *Core, x *blockOp, _ uint64) uint64 {
	setReg(c, x.rd, uint32(x.imm)<<16)
	c.pc = x.next
	return 0
}

func opHalt(c *Core, x *blockOp, _ uint64) uint64 {
	c.halt = true
	c.pc = x.next // exec advances pc past HALT before stopping
	return 0
}

func opJal(c *Core, x *blockOp, _ uint64) uint64 {
	setReg(c, isa.LinkReg, x.pc+4)
	c.pc = x.next // pre-computed target
	c.stats.Branches++
	c.stats.Taken++
	return 0
}

func opJalr(c *Core, x *blockOp, _ uint64) uint64 {
	t := (c.regs[x.rs1] + uint32(x.imm)) &^ 3
	setReg(c, x.rd, x.pc+4)
	c.pc = t
	c.stats.Branches++
	c.stats.Taken++
	return 0
}

// Conditional branches, indexed by op - OpBeq. x.next is the taken target.
var branchOps = [...]func(*Core, *blockOp, uint64) uint64{
	func(c *Core, x *blockOp, _ uint64) uint64 { return branch(c, x, c.regs[x.rs1] == c.regs[x.rs2]) },
	func(c *Core, x *blockOp, _ uint64) uint64 { return branch(c, x, c.regs[x.rs1] != c.regs[x.rs2]) },
	func(c *Core, x *blockOp, _ uint64) uint64 {
		return branch(c, x, int32(c.regs[x.rs1]) < int32(c.regs[x.rs2]))
	},
	func(c *Core, x *blockOp, _ uint64) uint64 {
		return branch(c, x, int32(c.regs[x.rs1]) >= int32(c.regs[x.rs2]))
	},
	func(c *Core, x *blockOp, _ uint64) uint64 { return branch(c, x, c.regs[x.rs1] < c.regs[x.rs2]) },
	func(c *Core, x *blockOp, _ uint64) uint64 { return branch(c, x, c.regs[x.rs1] >= c.regs[x.rs2]) },
}

func branch(c *Core, x *blockOp, take bool) uint64 {
	c.stats.Branches++
	if take {
		c.stats.Taken++
		c.pc = x.next
	} else {
		c.pc = x.pc + 4
	}
	return 0
}

// Memory ops, indexed by opcode. Stats bumps precede the access and faults
// leave pc at the instruction, mirroring Core.memOp/exec exactly.
var memOps = [isa.OpSwap + 1]func(*Core, *blockOp, uint64) uint64{
	isa.OpLw: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Loads++
		v, stall, err := c.ctrl.ReadWord(now, c.regs[x.rs1]+uint32(x.imm))
		if err != nil {
			c.fault = err
			return 0
		}
		setReg(c, x.rd, v)
		c.pc = x.next
		return stall
	},
	isa.OpLb: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Loads++
		v, stall, err := c.ctrl.LoadByte(now, c.regs[x.rs1]+uint32(x.imm))
		if err != nil {
			c.fault = err
			return 0
		}
		setReg(c, x.rd, uint32(int32(int8(v))))
		c.pc = x.next
		return stall
	},
	isa.OpLbu: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Loads++
		v, stall, err := c.ctrl.LoadByte(now, c.regs[x.rs1]+uint32(x.imm))
		if err != nil {
			c.fault = err
			return 0
		}
		setReg(c, x.rd, uint32(v))
		c.pc = x.next
		return stall
	},
	isa.OpSw: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Stores++
		stall, err := c.ctrl.WriteWord(now, c.regs[x.rs1]+uint32(x.imm), c.regs[x.rd])
		if err != nil {
			c.fault = err
			return 0
		}
		c.pc = x.next
		return stall
	},
	isa.OpSb: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Stores++
		stall, err := c.ctrl.StoreByte(now, c.regs[x.rs1]+uint32(x.imm), byte(c.regs[x.rd]))
		if err != nil {
			c.fault = err
			return 0
		}
		c.pc = x.next
		return stall
	},
	isa.OpSwap: func(c *Core, x *blockOp, now uint64) uint64 {
		c.stats.Loads++
		c.stats.Stores++
		old, stall, err := c.ctrl.Swap(now, c.regs[x.rs1]+uint32(x.imm), c.regs[x.rd])
		if err != nil {
			c.fault = err
			return 0
		}
		setReg(c, x.rd, old)
		c.pc = x.next
		return stall
	},
}
