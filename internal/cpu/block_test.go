package cpu

import (
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/mem"
)

// runWithBlocks drives the core the way the serial kernel does with block
// dispatch on: translated blocks where possible, the interpreter elsewhere.
func runWithBlocks(t *testing.T, c *Core, maxCycles uint64) {
	t.Helper()
	c.EnableBlocks()
	for now := uint64(0); now < maxCycles && !c.Halted(); {
		if n, _, _ := c.StepBlocks(now, maxCycles-now); n > 0 {
			now += n
			continue
		}
		c.Step(now)
		now++
	}
	if !c.Halted() {
		t.Fatalf("core did not halt within %d cycles (pc=0x%x)", maxCycles, c.PC())
	}
	if c.Fault() != nil {
		t.Fatalf("core faulted: %v", c.Fault())
	}
}

// checkAgainstInterpreter runs src once through the plain interpreter and
// once through block dispatch and requires identical architectural and
// statistical outcomes.
func checkAgainstInterpreter(t *testing.T, src string, maxCycles uint64) *Core {
	t.Helper()
	ref, _ := buildCore(t, src)
	run(t, ref, maxCycles)
	blk, _ := buildCore(t, src)
	runWithBlocks(t, blk, maxCycles)
	for r := uint8(1); r < 32; r++ {
		if ref.Reg(r) != blk.Reg(r) {
			t.Errorf("r%d: interpreter %#x, blocks %#x", r, ref.Reg(r), blk.Reg(r))
		}
	}
	if ref.PC() != blk.PC() {
		t.Errorf("pc: interpreter %#x, blocks %#x", ref.PC(), blk.PC())
	}
	if ref.Stats() != blk.Stats() {
		t.Errorf("stats diverge:\n interpreter %+v\n blocks      %+v", ref.Stats(), blk.Stats())
	}
	return blk
}

// TestBlocksAllOps pushes every R32 opcode and funct through block dispatch
// and requires register/stat identity with the interpreter: ALU R-type
// (including the div/rem edge-case family), every immediate op, lui,
// jal/jalr, all six branches both taken and not taken, and the full memory
// op set including byte accesses and atomic swap.
func TestBlocksAllOps(t *testing.T) {
	src := `
		addi r1, r0, 7
		addi r2, r0, -3
		add  r3, r1, r2
		sub  r4, r1, r2
		and  r5, r1, r2
		or   r6, r1, r2
		xor  r7, r1, r2
		nor  r8, r1, r2
		addi r9, r0, 4
		sll  r10, r1, r9
		srl  r11, r2, r9
		sra  r12, r2, r9
		slt  r13, r2, r1
		sltu r14, r2, r1
		mul  r15, r1, r2
		div  r16, r1, r2
		divu r17, r1, r9
		rem  r18, r1, r2
		remu r19, r1, r9
		div  r20, r1, r0      ; divide by zero edge case
		rem  r21, r1, r0
		andi r22, r1, 5
		ori  r23, r1, 8
		xori r24, r1, 3
		slti r25, r2, 0
		sltiu r26, r1, 100
		slli r27, r1, 2
		srli r28, r2, 2
		srai r29, r2, 2
		lui  r30, 0x1234
		jal  sub1             ; taken jump, links r31
	back:
		beq  r1, r1, t1       ; taken
	t1:
		bne  r1, r1, bad      ; not taken
		blt  r2, r1, t2       ; taken
	t2:
		bge  r1, r2, t3       ; taken
	t3:
		bltu r2, r1, bad      ; not taken (unsigned: -3 is huge)
		bgeu r2, r1, t4       ; taken
	t4:
		li   r9, 0x800
		sw   r3, 0(r9)
		lw   r10, 0(r9)
		sb   r1, 5(r9)
		lb   r11, 5(r9)
		lbu  r12, 5(r9)
		addi r13, r0, 42
		swap r13, 8(r9)       ; old value (0) into r13
		lw   r14, 8(r9)       ; 42
		halt
	bad:
		addi r28, r0, 999
		halt
	sub1:
		addi r2, r2, 0        ; keep r2
		jalr r0, r31, 0       ; return
	`
	blk := checkAgainstInterpreter(t, src, 10_000)
	if got := blk.Reg(14); got != 42 {
		t.Errorf("swap/lw chain: r14 = %d, want 42", got)
	}
	if !blk.BlocksEnabled() {
		t.Error("BlocksEnabled() = false after EnableBlocks")
	}
}

// TestBlocksSelfModifyingCode is the fetch-coherence regression test: a
// store into an already-translated block must invalidate it, so the next
// execution of the patched address runs the new instruction — exactly when
// the interpreter would. Before the controller code-write hook existed,
// stores never reached any fetch-side state and the stale block would have
// executed the old code.
func TestBlocksSelfModifyingCode(t *testing.T) {
	// The patch site sits in a loop body: iteration 1 executes the original
	// instruction (+1) and then overwrites it with the donor word (+100);
	// iteration 2 must execute the patched one. r5 = 1 + 100 = 101.
	src := `
		li   r9, patch
		li   r10, donor
		lw   r8, 0(r10)
		addi r2, r0, 2
	loop:
	patch:
		addi r5, r5, 1
		sw   r8, 0(r9)
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	donor:
		addi r5, r5, 100
	`
	blk := checkAgainstInterpreter(t, src, 10_000)
	if got := blk.Reg(5); got != 101 {
		t.Errorf("r5 = %d, want 101 (stale block executed pre-store code)", got)
	}
	if st := blk.BlockStats(); st.Invalidated == 0 {
		t.Errorf("no block was invalidated by the code store: %+v", st)
	}
}

// TestBlocksPatchSameBlock patches the instruction *immediately after* the
// store, inside the very block being executed: the invalidation must take
// effect mid-block, before the patched instruction issues.
func TestBlocksPatchSameBlock(t *testing.T) {
	src := `
		li   r9, target
		li   r10, donor
		lw   r8, 0(r10)
		sw   r8, 0(r9)
	target:
		addi r5, r5, 1
		halt
	donor:
		addi r5, r5, 100
	`
	blk := checkAgainstInterpreter(t, src, 1_000)
	if got := blk.Reg(5); got != 100 {
		t.Errorf("r5 = %d, want 100 (block ran the pre-patch instruction)", got)
	}
}

// TestBlocksProgramReload pins the Reset flush: loaders write the new image
// below the code-write hook (Memory.WriteBytes), so Reset itself must
// discard every translated block or the core would keep executing the old
// program.
func TestBlocksProgramReload(t *testing.T) {
	progA := `
		addi r1, r0, 11
		halt
	`
	progB := `
		addi r1, r0, 22
		halt
	`
	core, priv := buildCore(t, progA)
	core.EnableBlocks()
	runWithBlocks(t, core, 1_000)
	if got := core.Reg(1); got != 11 {
		t.Fatalf("program A: r1 = %d, want 11", got)
	}

	imB, err := asm.Assemble(progB)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range imB.Sections {
		priv.WriteBytes(s.Addr, s.Data) // loader path: no code-write hook
	}
	core.Reset(imB.Entry)
	runWithBlocks(t, core, 1_000)
	if got := core.Reg(1); got != 22 {
		t.Errorf("after reload: r1 = %d, want 22 (stale block survived Reset)", got)
	}
	if st := core.BlockStats(); st.Flushes == 0 {
		t.Errorf("Reset did not flush the block cache: %+v", st)
	}
}

// TestBlocksRestoreStateCold pins the checkpoint contract at the core level:
// RestoreState must discard translated blocks, because the restored memory
// image may differ from the one the blocks were translated from.
func TestBlocksRestoreStateCold(t *testing.T) {
	src := `
		addi r1, r0, 5
		halt
	`
	core, priv := buildCore(t, src)
	core.EnableBlocks()
	saved := core.SaveState()
	runWithBlocks(t, core, 1_000)
	flushesBefore := core.BlockStats().Flushes

	// Restore over a *different* memory image, as a checkpoint apply does.
	imB, err := asm.Assemble(`
		addi r1, r0, 6
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range imB.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core.RestoreState(saved)
	if core.BlockStats().Flushes <= flushesBefore {
		t.Fatalf("RestoreState did not flush the block cache: %+v", core.BlockStats())
	}
	runWithBlocks(t, core, 1_000)
	if got := core.Reg(1); got != 6 {
		t.Errorf("after restore: r1 = %d, want 6 (block translated pre-restore survived)", got)
	}
}

// TestBlocksFaultSemantics checks that a memory fault raised from inside a
// block leaves the same pc, stats and fault as the interpreter.
func TestBlocksFaultSemantics(t *testing.T) {
	src := `
		addi r1, r0, 3
		lui  r2, 0x7fff
		lw   r3, 0(r2)     ; unmapped: faults here
		addi r4, r0, 9     ; never executes
		halt
	`
	ref, _ := buildCore(t, src)
	for now := uint64(0); now < 100 && !ref.Halted() && ref.Fault() == nil; now++ {
		ref.Step(now)
	}
	blk, _ := buildCore(t, src)
	blk.EnableBlocks()
	for now := uint64(0); now < 100 && !blk.Halted() && blk.Fault() == nil; {
		if n, _, _ := blk.StepBlocks(now, 100-now); n > 0 {
			now += n
			continue
		}
		blk.Step(now)
		now++
	}
	if ref.Fault() == nil || blk.Fault() == nil {
		t.Fatalf("expected faults; interpreter %v, blocks %v", ref.Fault(), blk.Fault())
	}
	if ref.Fault().Error() != blk.Fault().Error() {
		t.Errorf("fault: interpreter %q, blocks %q", ref.Fault(), blk.Fault())
	}
	if ref.PC() != blk.PC() {
		t.Errorf("pc at fault: interpreter %#x, blocks %#x", ref.PC(), blk.PC())
	}
	if ref.Reg(4) != 0 || blk.Reg(4) != 0 {
		t.Errorf("instruction after the fault executed: ref r4=%d blk r4=%d", ref.Reg(4), blk.Reg(4))
	}
	if ref.Stats() != blk.Stats() {
		t.Errorf("stats diverge at fault:\n interpreter %+v\n blocks      %+v", ref.Stats(), blk.Stats())
	}
}

// TestBlocksStatsAgainstInterpreter covers a mixed compute/branch/memory
// loop with a non-trivial dcache footprint under a memory with latency (the
// buildCore memory is latency 0, so add one with real stalls).
func TestBlocksMixedLoopWithLatency(t *testing.T) {
	src := `
		li   r4, 0x400
		addi r2, r0, 64
	loop:
		sw   r2, 0(r4)
		lw   r5, 0(r4)
		add  r6, r6, r5
		addi r4, r4, 4
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	`
	build := func() *Core {
		im, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		ctl := mem.NewController("ctl0", 0)
		priv := mem.NewMemory("priv", 64*1024, 3) // latency: real stall spans
		if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate, Cacheable: true}); err != nil {
			t.Fatal(err)
		}
		ic := mem.NewCache(mem.CacheConfig{Name: "ic", SizeBytes: 1024, LineBytes: 16, Assoc: 1, HitLatency: 0})
		dc := mem.NewCache(mem.CacheConfig{Name: "dc", SizeBytes: 512, LineBytes: 16, Assoc: 2, HitLatency: 0})
		ctl.AttachCaches(ic, dc)
		for _, s := range im.Sections {
			priv.WriteBytes(s.Addr, s.Data)
		}
		c := New(0, Microblaze, ctl)
		c.Reset(im.Entry)
		return c
	}
	ref := build()
	run(t, ref, 100_000)
	blk := build()
	runWithBlocks(t, blk, 100_000)
	if ref.Stats() != blk.Stats() {
		t.Errorf("stats diverge:\n interpreter %+v\n blocks      %+v", ref.Stats(), blk.Stats())
	}
	if ref.Reg(6) != blk.Reg(6) {
		t.Errorf("r6: interpreter %d, blocks %d", ref.Reg(6), blk.Reg(6))
	}
}
