// Package cpu models the processing elements of the emulated MPSoC as
// instruction-accurate, in-order 32-bit RISC cores executing the R32 ISA.
//
// The core is the unit the paper's HW sniffers monitor for thermal purposes:
// each cycle it is in exactly one of three modes — active (issuing an
// instruction), stalled (waiting for the memory hierarchy/interconnect) or
// idle (halted) — and the per-mode cycle counts drive the activity-based
// power model. Cores issue at most one instruction per cycle; all memory
// timing comes from the attached memory controller, so cache, bus and NoC
// configuration changes are directly visible in the stall statistics.
package cpu

import (
	"fmt"

	"thermemu/internal/isa"
	"thermemu/internal/mem"
	"thermemu/internal/sniffer"
)

// Kind identifies a core preset. The framework ports several core types
// (the paper uses a PowerPC405 hard-core and Microblaze soft-cores on the
// FPGA, and models ARM7/ARM11 cores for the thermal studies); in this
// reproduction they share the R32 ISA and differ in their physical
// parameters (default clock, power model, FPGA resource cost).
type Kind int

// Core presets.
const (
	Microblaze Kind = iota // RISC-32 soft-core
	PPC405                 // hard-core
	ARM7                   // low-power core of floorplan (a)
	ARM11                  // high-performance core of floorplan (b)
	VLIW2                  // dual-issue VLIW-class core (TC4SOC-style)
)

// String returns the preset name.
func (k Kind) String() string {
	switch k {
	case Microblaze:
		return "microblaze"
	case PPC405:
		return "ppc405"
	case ARM7:
		return "arm7"
	case ARM11:
		return "arm11"
	case VLIW2:
		return "vliw2"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefaultFreqHz returns the nominal clock of the preset.
func (k Kind) DefaultFreqHz() uint64 {
	switch k {
	case ARM11:
		return 500e6
	default:
		return 100e6
	}
}

// State is the per-cycle execution mode observed by the sniffers.
type State int

// Execution modes.
const (
	Active State = iota
	Stalled
	Idle
)

// String returns the mode name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Stalled:
		return "stalled"
	case Idle:
		return "idle"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Stats holds the per-core counters a count-logging sniffer exports.
type Stats struct {
	Instructions uint64
	ActiveCycles uint64
	StallCycles  uint64
	IdleCycles   uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Taken        uint64
	// Paired counts cycles where a dual-issue core committed two
	// instructions (always 0 for single-issue cores).
	Paired uint64
}

// Cycles returns the total cycles the core has been clocked.
func (s Stats) Cycles() uint64 { return s.ActiveCycles + s.StallCycles + s.IdleCycles }

// Activity returns the fraction of cycles the core was active (its dynamic
// power activity factor).
func (s Stats) Activity() float64 {
	if c := s.Cycles(); c > 0 {
		return float64(s.ActiveCycles) / float64(c)
	}
	return 0
}

// Core is one in-order R32 processing element.
type Core struct {
	id    int
	name  string
	kind  Kind
	ctrl  *mem.Controller
	regs  [isa.NumRegs]uint32
	pc    uint32
	stall uint64
	halt  bool
	fault error
	state State
	stats Stats
	// issueWidth is the maximum instructions issued per cycle (1 or 2:
	// the dual-issue mode models the VLIW-class cores of Section 3.1).
	issueWidth int
	// tracer, when set, observes every committed instruction.
	tracer func(pc uint32, word uint32)
	// dec memoizes instruction decode for the fetch/dispatch hot path.
	// Decode is pure, so the table never needs invalidation; it is per-core
	// so the parallel kernel's goroutines do not share it.
	dec isa.DecodeCache
	// act, when attached, mirrors every charged cycle into a count-logging
	// activity sniffer. It sits in Step/AccrueStall/AccrueIdle — the single
	// choke point all stepping kernels flow through — so span-accrued and
	// per-cycle stepping produce identical sniffer counters.
	act *sniffer.Activity
	// blocks, when enabled, caches pre-decoded straight-line blocks for
	// StepBlocks (see block.go). Derived state: flushed on Reset and
	// RestoreState, invalidated by code-range stores, never serialized.
	blocks *blockCache
	// issueHook, when set, fires before every block-dispatched instruction
	// (the parallel kernel's per-instruction gate refresh; see SetIssueHook).
	issueHook func(cycle uint64)
}

// New creates a core attached to its memory controller. The VLIW2 preset
// issues up to two instructions per cycle; every other preset is
// single-issue.
func New(id int, kind Kind, ctrl *mem.Controller) *Core {
	width := 1
	if kind == VLIW2 {
		width = 2
	}
	return &Core{id: id, name: fmt.Sprintf("%s%d", kind, id), kind: kind,
		ctrl: ctrl, state: Active, issueWidth: width}
}

// SetTracer installs a per-committed-instruction observer (nil disables).
// Tracing is intended for debugging custom workloads; it sees the pc and
// raw instruction word of every commit, including the second slot of
// dual-issue bundles.
func (c *Core) SetTracer(fn func(pc uint32, word uint32)) { c.tracer = fn }

// HasTracer reports whether an instruction tracer is attached. The
// speculative kernel forces gated execution while one is, so trace order
// matches the committed interleaving.
func (c *Core) HasTracer() bool { return c.tracer != nil }

// IssueWidth returns the core's maximum instructions per cycle.
func (c *Core) IssueWidth() int { return c.issueWidth }

// SetIssueWidth overrides the issue width (1 or 2).
func (c *Core) SetIssueWidth(w int) {
	if w < 1 {
		w = 1
	} else if w > 2 {
		w = 2
	}
	c.issueWidth = w
}

// ID returns the core index within the platform.
func (c *Core) ID() int { return c.id }

// Name returns the core instance name.
func (c *Core) Name() string { return c.name }

// Kind returns the core preset.
func (c *Core) Kind() Kind { return c.kind }

// Controller returns the attached memory controller.
func (c *Core) Controller() *mem.Controller { return c.ctrl }

// PC returns the current program counter.
func (c *Core) PC() uint32 { return c.pc }

// SetPC sets the program counter (used by loaders).
func (c *Core) SetPC(pc uint32) { c.pc = pc }

// Reg returns the value of register r.
func (c *Core) Reg(r uint8) uint32 { return c.regs[r] }

// SetReg sets register r (register 0 stays zero).
func (c *Core) SetReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// Halted reports whether the core has executed HALT or faulted.
func (c *Core) Halted() bool { return c.halt || c.fault != nil }

// Fault returns the fault that stopped the core, if any.
func (c *Core) Fault() error { return c.fault }

// State returns the mode of the most recent cycle.
func (c *Core) State() State { return c.state }

// Stats returns the cumulative counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (the core state is preserved).
func (c *Core) ResetStats() { c.stats = Stats{} }

// Reset returns the core to its power-on state at the given entry point.
// Translated blocks are discarded: program loaders write code through
// Memory.WriteBytes (below the controller's code-write hook) and then
// Reset, so the flush here is what keeps the block cache coherent across
// reloads.
func (c *Core) Reset(entry uint32) {
	c.regs = [isa.NumRegs]uint32{}
	c.pc = entry
	c.stall = 0
	c.halt = false
	c.fault = nil
	c.state = Active
	c.stats = Stats{}
	c.flushBlocks()
}

// AccrueIdle charges n idle cycles to a halted core without stepping it.
// The stepping kernels use it to batch the idle time of cores that halted
// before the end of a span, so their statistics match cycle-by-cycle serial
// stepping. n == 0 leaves the core's observed state untouched.
func (c *Core) AccrueIdle(n uint64) {
	if n == 0 {
		return
	}
	c.state = Idle
	c.stats.IdleCycles += n
	if c.act != nil {
		c.act.Accrue(sniffer.ModeIdle, n)
	}
}

// AccrueStall charges n stalled cycles in one step, consuming n cycles of
// the outstanding memory-stall countdown. It is the bulk equivalent of n
// consecutive Step calls on a stalled core: those steps only decrement the
// countdown and bump the stall counter, so skip-ahead kernels may jump the
// span and settle the books here without perturbing any other state.
// n == 0 leaves the core's observed state untouched; n beyond the
// outstanding stall is a kernel bug and panics.
func (c *Core) AccrueStall(n uint64) {
	if n == 0 {
		return
	}
	if n > c.stall {
		panic(fmt.Sprintf("cpu: %s: AccrueStall(%d) exceeds outstanding stall %d", c.name, n, c.stall))
	}
	c.stall -= n
	c.state = Stalled
	c.stats.StallCycles += n
	if c.act != nil {
		c.act.Accrue(sniffer.ModeStalled, n)
	}
}

// StallRemaining returns the outstanding memory-stall cycles: the number of
// consecutive future Step calls that would find the core stalled. 0 means
// the core issues an instruction on its next step (unless halted).
func (c *Core) StallRemaining() uint64 { return c.stall }

// WakeNever is the wake cycle of a halted core: no future step can make it
// issue an instruction again.
const WakeNever = ^uint64(0)

// WakeCycle returns the next cycle, at or after now, on which the core will
// issue an instruction — the end of its memory-stall countdown, or WakeNever
// once halted or faulted. Cycles before the wake cycle are pure stall time
// and may be charged in bulk with AccrueStall.
func (c *Core) WakeCycle(now uint64) uint64 {
	if c.Halted() {
		return WakeNever
	}
	return now + c.stall
}

// AttachActivity mirrors the core's per-mode cycle accounting into a
// count-logging activity sniffer (nil detaches). Attached at the core
// rather than a kernel so every stepping path — per-cycle, skip-ahead,
// parallel chunks — feeds the same counters identically.
func (c *Core) AttachActivity(a *sniffer.Activity) { c.act = a }

// Step advances the core by one clock cycle at platform cycle now.
func (c *Core) Step(now uint64) {
	if c.Halted() {
		c.state = Idle
		c.stats.IdleCycles++
		if c.act != nil {
			c.act.Accrue(sniffer.ModeIdle, 1)
		}
		return
	}
	if c.stall > 0 {
		c.stall--
		c.state = Stalled
		c.stats.StallCycles++
		if c.act != nil {
			c.act.Accrue(sniffer.ModeStalled, 1)
		}
		return
	}
	c.state = Active
	c.stats.ActiveCycles++
	if c.act != nil {
		c.act.Accrue(sniffer.ModeActive, 1)
	}
	w, fstall, err := c.ctrl.Fetch(now, c.pc)
	if err != nil {
		c.fault = err
		return
	}
	i1 := c.dec.Decode(w)
	// Dual issue: if the first operation does not end the bundle, peek the
	// next word and issue it in the same cycle when no structural or data
	// hazard exists between the pair.
	if c.issueWidth > 1 && !endsBundle(i1) {
		w2, f2, err := c.ctrl.Fetch(now, c.pc+4)
		if err == nil {
			i2 := c.dec.Decode(w2)
			if pairable(i1, i2) {
				if c.tracer != nil {
					c.tracer(c.pc, w)
					c.tracer(c.pc+4, w2)
				}
				d1, err := c.exec(now, i1)
				if err != nil {
					c.fault = err
					return
				}
				d2, err := c.exec(now, i2)
				if err != nil {
					c.fault = err
					return
				}
				c.stall = fstall + f2 + d1 + d2
				c.stats.Instructions += 2
				c.stats.Paired++
				return
			}
		}
		// Unpairable or second fetch faulted: fall through to single issue
		// (a real fetch unit would not commit the speculative fetch).
	}
	if c.tracer != nil {
		c.tracer(c.pc, w)
	}
	dstall, err := c.exec(now, i1)
	if err != nil {
		c.fault = err
		return
	}
	c.stall = fstall + dstall
	c.stats.Instructions++
}

// endsBundle reports whether the instruction must be the last of an issue
// bundle (control transfers and halt redirect the fetch stream).
func endsBundle(in isa.Instr) bool {
	switch {
	case in.Op == isa.OpJal, in.Op == isa.OpJalr, in.Op == isa.OpHalt:
		return true
	case in.Op.IsBranch():
		return true
	}
	return false
}

// writesReg returns the destination register an instruction writes, or
// (0, false) if it writes none.
func writesReg(in isa.Instr) (uint8, bool) {
	switch {
	case in.Op == isa.OpRType, in.Op == isa.OpLui, in.Op == isa.OpJalr,
		in.Op.IsLoad(), in.Op == isa.OpSwap:
		return in.Rd, in.Rd != 0
	case in.Op == isa.OpJal:
		return isa.LinkReg, true
	case in.Op.IsBranch(), in.Op.IsStore(), in.Op == isa.OpHalt:
		return 0, false
	default: // ALU immediates
		return in.Rd, in.Rd != 0
	}
}

// readsRegs lists the registers an instruction reads.
func readsRegs(in isa.Instr) [3]uint8 {
	switch {
	case in.Op == isa.OpRType:
		return [3]uint8{in.Rs1, in.Rs2, 0}
	case in.Op.IsBranch():
		return [3]uint8{in.Rs1, in.Rs2, 0}
	case in.Op.IsStore(), in.Op == isa.OpSwap:
		return [3]uint8{in.Rs1, in.Rd, 0} // stores read the data register
	case in.Op == isa.OpLui, in.Op == isa.OpHalt, in.Op == isa.OpJal:
		return [3]uint8{0, 0, 0}
	default:
		return [3]uint8{in.Rs1, 0, 0}
	}
}

// pairable reports whether i2 can issue in the same cycle as i1: at most
// one memory operation per bundle, no read-after-write on i1's result and
// no write-after-write collision.
func pairable(i1, i2 isa.Instr) bool {
	if i1.Op.IsMem() && i2.Op.IsMem() {
		return false // one memory port
	}
	rd1, writes1 := writesReg(i1)
	if writes1 {
		for _, r := range readsRegs(i2) {
			if r == rd1 {
				return false // RAW
			}
		}
		if rd2, writes2 := writesReg(i2); writes2 && rd2 == rd1 {
			return false // WAW
		}
	}
	return true
}

// exec executes one decoded instruction, returning extra stall cycles.
func (c *Core) exec(now uint64, in isa.Instr) (uint64, error) {
	next := c.pc + 4
	var stall uint64
	switch {
	case in.Op == isa.OpRType:
		v, err := aluR(in.Funct, c.regs[in.Rs1], c.regs[in.Rs2])
		if err != nil {
			return 0, fmt.Errorf("cpu: %s at pc=0x%x: %w", c.name, c.pc, err)
		}
		c.SetReg(in.Rd, v)
	case in.Op == isa.OpHalt:
		c.halt = true
	case in.Op == isa.OpLui:
		c.SetReg(in.Rd, uint32(in.Imm)<<16)
	case in.Op == isa.OpJal:
		c.SetReg(isa.LinkReg, next)
		next = uint32(int64(next) + int64(in.Imm)*4)
		c.stats.Branches++
		c.stats.Taken++
	case in.Op == isa.OpJalr:
		t := (c.regs[in.Rs1] + uint32(in.Imm)) &^ 3
		c.SetReg(in.Rd, next)
		next = t
		c.stats.Branches++
		c.stats.Taken++
	case in.Op.IsBranch():
		c.stats.Branches++
		if takeBranch(in.Op, c.regs[in.Rs1], c.regs[in.Rs2]) {
			c.stats.Taken++
			next = uint32(int64(next) + int64(in.Imm)*4)
		}
	case in.Op.IsMem():
		var err error
		stall, err = c.memOp(now, in)
		if err != nil {
			return 0, err
		}
	default:
		v, ok := aluI(in.Op, c.regs[in.Rs1], in.Imm)
		if !ok {
			return 0, fmt.Errorf("cpu: %s at pc=0x%x: illegal opcode %d", c.name, c.pc, in.Op)
		}
		c.SetReg(in.Rd, v)
	}
	c.pc = next
	return stall, nil
}

func (c *Core) memOp(now uint64, in isa.Instr) (uint64, error) {
	addr := c.regs[in.Rs1] + uint32(in.Imm)
	switch in.Op {
	case isa.OpLw:
		c.stats.Loads++
		v, stall, err := c.ctrl.ReadWord(now, addr)
		if err == nil {
			c.SetReg(in.Rd, v)
		}
		return stall, err
	case isa.OpLb:
		c.stats.Loads++
		v, stall, err := c.ctrl.LoadByte(now, addr)
		if err == nil {
			c.SetReg(in.Rd, uint32(int32(int8(v))))
		}
		return stall, err
	case isa.OpLbu:
		c.stats.Loads++
		v, stall, err := c.ctrl.LoadByte(now, addr)
		if err == nil {
			c.SetReg(in.Rd, uint32(v))
		}
		return stall, err
	case isa.OpSw:
		c.stats.Stores++
		return c.ctrl.WriteWord(now, addr, c.regs[in.Rd])
	case isa.OpSb:
		c.stats.Stores++
		return c.ctrl.StoreByte(now, addr, byte(c.regs[in.Rd]))
	case isa.OpSwap:
		c.stats.Loads++
		c.stats.Stores++
		old, stall, err := c.ctrl.Swap(now, addr, c.regs[in.Rd])
		if err == nil {
			c.SetReg(in.Rd, old)
		}
		return stall, err
	}
	return 0, fmt.Errorf("cpu: %s: not a memory op: %v", c.name, in.Op)
}

func aluR(fn isa.Funct, a, b uint32) (uint32, error) {
	switch fn {
	case isa.FnAdd:
		return a + b, nil
	case isa.FnSub:
		return a - b, nil
	case isa.FnAnd:
		return a & b, nil
	case isa.FnOr:
		return a | b, nil
	case isa.FnXor:
		return a ^ b, nil
	case isa.FnNor:
		return ^(a | b), nil
	case isa.FnSll:
		return a << (b & 31), nil
	case isa.FnSrl:
		return a >> (b & 31), nil
	case isa.FnSra:
		return uint32(int32(a) >> (b & 31)), nil
	case isa.FnSlt:
		if int32(a) < int32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.FnSltu:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case isa.FnMul:
		return a * b, nil
	case isa.FnDiv:
		if b == 0 {
			return 0xFFFFFFFF, nil // RISC-V style: div by zero yields -1
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a, nil // overflow: quotient = dividend
		}
		return uint32(int32(a) / int32(b)), nil
	case isa.FnDivu:
		if b == 0 {
			return 0xFFFFFFFF, nil
		}
		return a / b, nil
	case isa.FnRem:
		if b == 0 {
			return a, nil // rem by zero yields dividend
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0, nil
		}
		return uint32(int32(a) % int32(b)), nil
	case isa.FnRemu:
		if b == 0 {
			return a, nil
		}
		return a % b, nil
	}
	return 0, fmt.Errorf("illegal R-type funct %d", fn)
}

func aluI(op isa.Opcode, a uint32, imm int32) (uint32, bool) {
	switch op {
	case isa.OpAddi:
		return a + uint32(imm), true
	case isa.OpAndi:
		return a & uint32(imm), true
	case isa.OpOri:
		return a | uint32(imm), true
	case isa.OpXori:
		return a ^ uint32(imm), true
	case isa.OpSlti:
		if int32(a) < imm {
			return 1, true
		}
		return 0, true
	case isa.OpSltiu:
		if a < uint32(imm) {
			return 1, true
		}
		return 0, true
	case isa.OpSlli:
		return a << (uint32(imm) & 31), true
	case isa.OpSrli:
		return a >> (uint32(imm) & 31), true
	case isa.OpSrai:
		return uint32(int32(a) >> (uint32(imm) & 31)), true
	}
	return 0, false
}

func takeBranch(op isa.Opcode, a, b uint32) bool {
	switch op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int32(a) < int32(b)
	case isa.OpBge:
		return int32(a) >= int32(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	}
	return false
}
