package cpu

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"thermemu/internal/asm"
	"thermemu/internal/isa"
	"thermemu/internal/mem"
)

// buildCore assembles src into a fresh single-core platform with a 64 KiB
// private memory (latency 0 so timing tests are exact) and runs it.
func buildCore(t *testing.T, src string) (*Core, *mem.Memory) {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController("ctl0", 0)
	priv := mem.NewMemory("priv", 64*1024, 0)
	if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate}); err != nil {
		t.Fatal(err)
	}
	for _, s := range im.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core := New(0, Microblaze, ctl)
	core.Reset(im.Entry)
	return core, priv
}

// run steps the core until it halts or maxCycles elapse.
func run(t *testing.T, c *Core, maxCycles uint64) {
	t.Helper()
	for now := uint64(0); now < maxCycles && !c.Halted(); now++ {
		c.Step(now)
	}
	if !c.Halted() {
		t.Fatalf("core did not halt within %d cycles (pc=0x%x)", maxCycles, c.PC())
	}
	if c.Fault() != nil {
		t.Fatalf("core faulted: %v", c.Fault())
	}
}

func TestArithmetic(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, 7
		addi r2, r0, -3
		add  r3, r1, r2     ; 4
		sub  r4, r1, r2     ; 10
		mul  r5, r1, r2     ; -21
		div  r6, r4, r3     ; 2
		rem  r7, r4, r3     ; 2
		halt
	`)
	run(t, core, 100)
	minus21 := int32(-21)
	want := map[uint8]uint32{3: 4, 4: 10, 5: uint32(minus21), 6: 2, 7: 2}
	for r, v := range want {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %d (%#x), want %d", r, int32(got), got, int32(v))
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	core, _ := buildCore(t, `
		li   r1, 0xF0F0F0F0
		li   r2, 0x0FF00FF0
		and  r3, r1, r2
		or   r4, r1, r2
		xor  r5, r1, r2
		nor  r6, r1, r2
		addi r7, r0, 4
		sll  r8, r1, r7
		srl  r9, r1, r7
		sra  r10, r1, r7
		slli r11, r1, 1
		srai r12, r1, 28
		halt
	`)
	run(t, core, 100)
	a, b := uint32(0xF0F0F0F0), uint32(0x0FF00FF0)
	want := map[uint8]uint32{
		3: a & b, 4: a | b, 5: a ^ b, 6: ^(a | b),
		8: a << 4, 9: a >> 4, 10: uint32(int32(a) >> 4),
		11: a << 1, 12: uint32(int32(a) >> 28),
	}
	for r, v := range want {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestComparisons(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, -1
		addi r2, r0, 1
		slt   r3, r1, r2    ; 1 (signed)
		sltu  r4, r1, r2    ; 0 (unsigned: 0xFFFFFFFF > 1)
		slti  r5, r1, 0     ; 1
		sltiu r6, r2, 2     ; 1
		halt
	`)
	run(t, core, 100)
	for r, v := range map[uint8]uint32{3: 1, 4: 0, 5: 1, 6: 1} {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, 5
		add  r2, r0, r0
		div  r3, r1, r2     ; /0 -> -1
		rem  r4, r1, r2     ; %0 -> dividend
		divu r5, r1, r2     ; -1
		remu r6, r1, r2     ; 5
		li   r7, 0x80000000
		addi r8, r0, -1
		div  r9, r7, r8     ; overflow -> dividend
		rem  r10, r7, r8    ; overflow -> 0
		halt
	`)
	run(t, core, 100)
	want := map[uint8]uint32{3: 0xFFFFFFFF, 4: 5, 5: 0xFFFFFFFF, 6: 5, 9: 0x80000000, 10: 0}
	for r, v := range want {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestRegisterZeroIsHardwired(t *testing.T) {
	core, _ := buildCore(t, `
		addi r0, r0, 123
		add  r1, r0, r0
		halt
	`)
	run(t, core, 100)
	if core.Reg(0) != 0 || core.Reg(1) != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", core.Reg(0), core.Reg(1))
	}
}

func TestLoadsAndStores(t *testing.T) {
	core, m := buildCore(t, `
		li   r1, 0x1000
		li   r2, 0xDEADBEEF
		sw   r2, 0(r1)
		lw   r3, 0(r1)
		lb   r4, 3(r1)      ; 0xDE sign-extended
		lbu  r5, 3(r1)      ; 0xDE zero-extended
		addi r6, r0, 0x5A
		sb   r6, 1(r1)
		lw   r7, 0(r1)
		halt
	`)
	run(t, core, 100)
	if core.Reg(3) != 0xDEADBEEF {
		t.Errorf("lw = %#x", core.Reg(3))
	}
	if core.Reg(4) != 0xFFFFFFDE {
		t.Errorf("lb sign extension = %#x", core.Reg(4))
	}
	if core.Reg(5) != 0xDE {
		t.Errorf("lbu = %#x", core.Reg(5))
	}
	if core.Reg(7) != 0xDEAD5AEF {
		t.Errorf("after sb = %#x", core.Reg(7))
	}
	if m.LoadWord(0x1000) != 0xDEAD5AEF {
		t.Errorf("memory = %#x", m.LoadWord(0x1000))
	}
}

func TestBranchLoop(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, 10     ; counter
		add  r2, r0, r0     ; sum
	loop:
		add  r2, r2, r1
		subi r1, r1, 1
		bne  r1, r0, loop
		halt
	`)
	run(t, core, 1000)
	if got := core.Reg(2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	st := core.Stats()
	if st.Branches != 10 || st.Taken != 9 {
		t.Errorf("branches = %d taken = %d, want 10/9", st.Branches, st.Taken)
	}
}

func TestJalAndRet(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, 5
		jal  double
		mv   r3, r1
		halt
	double:
		add  r1, r1, r1
		ret
	`)
	run(t, core, 100)
	if core.Reg(3) != 10 {
		t.Errorf("result = %d, want 10", core.Reg(3))
	}
}

func TestSwapAtomic(t *testing.T) {
	core, m := buildCore(t, `
		li   r1, 0x2000
		addi r2, r0, 111
		sw   r2, 0(r1)
		addi r3, r0, 222
		swap r3, 0(r1)
		halt
	`)
	run(t, core, 100)
	if core.Reg(3) != 111 {
		t.Errorf("swap returned %d, want old value 111", core.Reg(3))
	}
	if m.LoadWord(0x2000) != 222 {
		t.Errorf("memory after swap = %d", m.LoadWord(0x2000))
	}
}

func TestHaltGoesIdle(t *testing.T) {
	core, _ := buildCore(t, "halt")
	for now := uint64(0); now < 10; now++ {
		core.Step(now)
	}
	st := core.Stats()
	if st.ActiveCycles != 1 || st.IdleCycles != 9 {
		t.Errorf("active=%d idle=%d, want 1/9", st.ActiveCycles, st.IdleCycles)
	}
	if core.State() != Idle {
		t.Errorf("state = %v", core.State())
	}
}

func TestFaultOnUnmapped(t *testing.T) {
	core, _ := buildCore(t, `
		li r1, 0x40000000
		lw r2, 0(r1)
		halt
	`)
	for now := uint64(0); now < 100 && !core.Halted(); now++ {
		core.Step(now)
	}
	if core.Fault() == nil {
		t.Fatal("expected fault")
	}
	if !strings.Contains(core.Fault().Error(), "unmapped") {
		t.Errorf("fault = %v", core.Fault())
	}
	// A faulted core idles forever.
	core.Step(200)
	if core.State() != Idle {
		t.Error("faulted core not idle")
	}
}

func TestFaultOnIllegalInstruction(t *testing.T) {
	core, _ := buildCore(t, `
		.word 0xFC000000   ; opcode 63: illegal
	`)
	core.Step(0)
	if core.Fault() == nil {
		t.Fatal("expected illegal instruction fault")
	}
}

func TestStallAccountingWithSlowMemory(t *testing.T) {
	im := asm.MustAssemble(`
		lw r1, 0x100(r0)
		halt
	`)
	ctl := mem.NewController("ctl0", 0)
	priv := mem.NewMemory("priv", 64*1024, 4)
	if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate}); err != nil {
		t.Fatal(err)
	}
	for _, s := range im.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core := New(0, Microblaze, ctl)
	core.Reset(im.Entry)
	var now uint64
	for ; !core.Halted() && now < 100; now++ {
		core.Step(now)
	}
	st := core.Stats()
	// Two instructions; lw pays fetch (4) + load (4) = 8 stall cycles. The
	// halt's own fetch stalls are absorbed into idle (a halted core does
	// not stall).
	if st.Instructions != 2 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
	if st.ActiveCycles != 2 || st.StallCycles != 8 {
		t.Errorf("active=%d stall=%d, want 2/8", st.ActiveCycles, st.StallCycles)
	}
	if st.Loads != 1 {
		t.Errorf("loads = %d", st.Loads)
	}
}

func TestActivityFraction(t *testing.T) {
	s := Stats{ActiveCycles: 25, StallCycles: 50, IdleCycles: 25}
	if got := s.Activity(); got != 0.25 {
		t.Errorf("activity = %v", got)
	}
	if (Stats{}).Activity() != 0 {
		t.Error("empty stats activity should be 0")
	}
}

// Property test: R-type ALU semantics match Go reference semantics for
// random operand values.
func TestALUSemanticsQuick(t *testing.T) {
	ref := map[isa.Funct]func(a, b uint32) uint32{
		isa.FnAdd: func(a, b uint32) uint32 { return a + b },
		isa.FnSub: func(a, b uint32) uint32 { return a - b },
		isa.FnAnd: func(a, b uint32) uint32 { return a & b },
		isa.FnOr:  func(a, b uint32) uint32 { return a | b },
		isa.FnXor: func(a, b uint32) uint32 { return a ^ b },
		isa.FnNor: func(a, b uint32) uint32 { return ^(a | b) },
		isa.FnSll: func(a, b uint32) uint32 { return a << (b & 31) },
		isa.FnSrl: func(a, b uint32) uint32 { return a >> (b & 31) },
		isa.FnSra: func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
		isa.FnMul: func(a, b uint32) uint32 { return a * b },
	}
	f := func(a, b uint32, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fns := []isa.Funct{isa.FnAdd, isa.FnSub, isa.FnAnd, isa.FnOr, isa.FnXor,
			isa.FnNor, isa.FnSll, isa.FnSrl, isa.FnSra, isa.FnMul}
		fn := fns[r.Intn(len(fns))]
		got, err := aluR(fn, a, b)
		if err != nil {
			return false
		}
		return got == ref[fn](a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property test: signed div/rem obey the Euclidean identity a = q*b + r
// whenever b != 0 and no overflow occurs.
func TestDivRemIdentityQuick(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == -1<<31 && b == -1) {
			return true
		}
		q, _ := aluR(isa.FnDiv, uint32(a), uint32(b))
		r, _ := aluR(isa.FnRem, uint32(a), uint32(b))
		return int64(int32(q))*int64(b)+int64(int32(r)) == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsState(t *testing.T) {
	core, _ := buildCore(t, `
		addi r1, r0, 9
		halt
	`)
	run(t, core, 10)
	core.Reset(0)
	if core.Reg(1) != 0 || core.Halted() || core.PC() != 0 || core.Stats().Instructions != 0 {
		t.Error("reset did not clear state")
	}
}

// buildKindCore is buildCore with a selectable core preset.
func buildKindCore(t *testing.T, kind Kind, src string) *Core {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController("ctl0", 0)
	priv := mem.NewMemory("priv", 64*1024, 0)
	if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate}); err != nil {
		t.Fatal(err)
	}
	for _, s := range im.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core := New(0, kind, ctl)
	core.Reset(im.Entry)
	return core
}

func TestDualIssuePairsIndependentOps(t *testing.T) {
	src := `
		addi r1, r0, 1
		addi r2, r0, 2
		addi r3, r0, 3
		addi r4, r0, 4
		halt
	`
	single := buildKindCore(t, Microblaze, src)
	dual := buildKindCore(t, VLIW2, src)
	run(t, single, 100)
	run(t, dual, 100)
	for r := uint8(1); r <= 4; r++ {
		if single.Reg(r) != dual.Reg(r) {
			t.Errorf("r%d differs: %d vs %d", r, single.Reg(r), dual.Reg(r))
		}
	}
	if dual.Stats().Paired == 0 {
		t.Error("dual-issue core never paired")
	}
	if dual.Stats().ActiveCycles >= single.Stats().ActiveCycles {
		t.Errorf("dual issue not faster: %d vs %d active cycles",
			dual.Stats().ActiveCycles, single.Stats().ActiveCycles)
	}
	if dual.Stats().Instructions != single.Stats().Instructions {
		t.Errorf("instruction counts differ: %d vs %d",
			dual.Stats().Instructions, single.Stats().Instructions)
	}
}

func TestDualIssueHazardsBlockPairing(t *testing.T) {
	// Every instruction depends on the previous one: nothing can pair.
	dual := buildKindCore(t, VLIW2, `
		addi r1, r0, 1
		addi r1, r1, 1
		addi r1, r1, 1
		addi r1, r1, 1
		halt
	`)
	run(t, dual, 100)
	// The dependent addis can never pair with each other; the only legal
	// bundle is the final addi together with halt.
	if dual.Stats().Paired != 1 {
		t.Errorf("RAW chain paired %d times, want 1 (addi+halt)", dual.Stats().Paired)
	}
	if dual.Reg(1) != 4 {
		t.Errorf("r1 = %d, want 4", dual.Reg(1))
	}
}

func TestDualIssueMemoryPortLimit(t *testing.T) {
	dual := buildKindCore(t, VLIW2, `
		li  r1, 0x1000
		sw  r1, 0(r1)
		lw  r2, 0(r1)     ; depends on memory, also mem-after-mem
		halt
	`)
	run(t, dual, 100)
	if dual.Reg(2) != 0x1000 {
		t.Errorf("r2 = %#x", dual.Reg(2))
	}
}

func TestDualIssueBranchSecondSlot(t *testing.T) {
	// An independent branch may fill the second slot; its target must be
	// computed from its own address.
	dual := buildKindCore(t, VLIW2, `
		addi r1, r0, 5
		beq  r0, r0, skip  ; pairs with the addi above
		addi r1, r0, 99    ; must be skipped
	skip:
		halt
	`)
	run(t, dual, 100)
	if dual.Reg(1) != 5 {
		t.Errorf("r1 = %d; branch in slot 2 mis-targeted", dual.Reg(1))
	}
	if dual.Stats().Paired == 0 {
		t.Error("addi+beq did not pair")
	}
}

// Differential property: random straight-line ALU programs produce the same
// architectural state on single- and dual-issue cores.
func TestDualIssueDifferentialQuick(t *testing.T) {
	ops := []string{"add", "sub", "and", "or", "xor", "sll", "srl", "mul"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := ""
		for i := 0; i < 3; i++ {
			src += "\taddi r" + itoa(i+1) + ", r0, " + itoa(r.Intn(1000)) + "\n"
		}
		for i := 0; i < 40; i++ {
			op := ops[r.Intn(len(ops))]
			rd := 1 + r.Intn(10)
			rs1 := 1 + r.Intn(10)
			rs2 := 1 + r.Intn(10)
			src += "\t" + op + " r" + itoa(rd) + ", r" + itoa(rs1) + ", r" + itoa(rs2) + "\n"
		}
		src += "\thalt\n"
		single := buildKindCore(t, Microblaze, src)
		dual := buildKindCore(t, VLIW2, src)
		run(t, single, 10000)
		run(t, dual, 10000)
		for reg := uint8(0); reg < 11; reg++ {
			if single.Reg(reg) != dual.Reg(reg) {
				t.Logf("seed %d: r%d = %d vs %d", seed, reg, single.Reg(reg), dual.Reg(reg))
				return false
			}
		}
		return dual.Stats().Instructions == single.Stats().Instructions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func TestSetIssueWidthClamps(t *testing.T) {
	c := buildKindCore(t, Microblaze, "halt")
	c.SetIssueWidth(0)
	if c.IssueWidth() != 1 {
		t.Error("width 0 not clamped")
	}
	c.SetIssueWidth(7)
	if c.IssueWidth() != 2 {
		t.Error("width 7 not clamped")
	}
	if New(0, VLIW2, nil).IssueWidth() != 2 {
		t.Error("VLIW2 preset not dual issue")
	}
}
