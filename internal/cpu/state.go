package cpu

import (
	"errors"

	"thermemu/internal/isa"
)

// CoreState is the complete checkpointable architectural and accounting
// state of one core. Faults are carried as their message: restoring loses
// the concrete error type, but every consumer of a restored platform (the
// run loop, the golden digest) only inspects the message.
type CoreState struct {
	Regs     [isa.NumRegs]uint32
	PC       uint32
	Stall    uint64
	Halt     bool
	FaultMsg string
	HasFault bool
	Mode     State
	Stats    Stats
}

// SaveState captures the core for checkpointing. The decode cache is a pure
// memo and the block cache is derived dispatch state; neither is part of
// the state — a restored core re-translates from the restored memory image,
// so no decoded representation ever leaks into TMCK streams.
func (c *Core) SaveState() CoreState {
	s := CoreState{
		Regs:  c.regs,
		PC:    c.pc,
		Stall: c.stall,
		Halt:  c.halt,
		Mode:  c.state,
		Stats: c.stats,
	}
	if c.fault != nil {
		s.HasFault = true
		s.FaultMsg = c.fault.Error()
	}
	return s
}

// RestoreState rewinds the core to a saved state. The block cache restores
// cold: checkpoints carry no derived dispatch state, and blocks translated
// from the pre-restore memory image must not survive into the restored one.
func (c *Core) RestoreState(s CoreState) {
	c.flushBlocks()
	c.regs = s.Regs
	c.pc = s.PC
	c.stall = s.Stall
	c.halt = s.Halt
	c.state = s.Mode
	c.stats = s.Stats
	c.fault = nil
	if s.HasFault {
		c.fault = errors.New(s.FaultMsg)
	}
}
