package cpu

// Tests for the skip-ahead support surface: wake-cycle reporting, bulk
// stall accrual and the activity-sniffer choke point. The contract under
// test is bit-identity: AccrueStall(n) must be indistinguishable from n
// per-cycle Step calls on a stalled core.

import (
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/mem"
	"thermemu/internal/sniffer"
)

// buildSlowCore assembles src onto a core whose private memory has the
// given access latency, so loads and fetches produce real stall spans.
func buildSlowCore(t *testing.T, latency uint64, src string) *Core {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ctl := mem.NewController("ctl0", 0)
	priv := mem.NewMemory("priv", 64*1024, latency)
	if err := ctl.AddRange(mem.Range{Name: "priv", Base: 0, Target: priv, Kind: mem.KindPrivate}); err != nil {
		t.Fatal(err)
	}
	for _, s := range im.Sections {
		priv.WriteBytes(s.Addr, s.Data)
	}
	core := New(0, Microblaze, ctl)
	core.Reset(im.Entry)
	return core
}

const slowLoop = `
	addi r1, r0, 20
loop:
	lw   r2, 0x100(r0)
	add  r3, r3, r2
	dec  r1
	bne  r1, r0, loop
	halt
`

// TestSkipSteppingMatchesPerCycle steps one core per-cycle and a twin with
// wake-cycle jumps plus bulk accrual, and demands identical statistics,
// registers and timing.
func TestSkipSteppingMatchesPerCycle(t *testing.T) {
	ref := buildSlowCore(t, 3, slowLoop)
	skip := buildSlowCore(t, 3, slowLoop)

	const maxCycles = 10_000
	var refEnd uint64
	for now := uint64(0); now < maxCycles && !ref.Halted(); now++ {
		ref.Step(now)
		refEnd = now + 1
	}
	if !ref.Halted() {
		t.Fatal("reference core did not halt")
	}

	var skipEnd uint64
	for now := uint64(0); now < maxCycles && !skip.Halted(); {
		w := skip.WakeCycle(now)
		if w > now {
			skip.AccrueStall(w - now)
			now = w
		}
		skip.Step(now)
		now++
		skipEnd = now
	}
	if !skip.Halted() {
		t.Fatal("skip-stepped core did not halt")
	}

	if refEnd != skipEnd {
		t.Fatalf("end cycle: per-cycle %d, skip %d", refEnd, skipEnd)
	}
	if ref.Stats() != skip.Stats() {
		t.Fatalf("stats diverge:\nper-cycle %+v\nskip      %+v", ref.Stats(), skip.Stats())
	}
	if ref.PC() != skip.PC() {
		t.Fatalf("pc: per-cycle %#x, skip %#x", ref.PC(), skip.PC())
	}
	for r := uint8(0); r < 32; r++ {
		if ref.Reg(r) != skip.Reg(r) {
			t.Fatalf("r%d: per-cycle %#x, skip %#x", r, ref.Reg(r), skip.Reg(r))
		}
	}
}

// TestAccrueStallPartialSpan cuts a stall span at an arbitrary boundary —
// what a kernel does when a sampling window ends mid-stall — and checks the
// remainder is consumed per-cycle with identical books.
func TestAccrueStallPartialSpan(t *testing.T) {
	c := buildSlowCore(t, 5, slowLoop)
	c.Step(0)
	s := c.StallRemaining()
	if s < 2 {
		t.Fatalf("expected a multi-cycle stall, got %d", s)
	}
	c.AccrueStall(s - 1)
	if c.State() != Stalled {
		t.Fatalf("state after partial accrual = %v, want stalled", c.State())
	}
	if got := c.StallRemaining(); got != 1 {
		t.Fatalf("remaining stall = %d, want 1", got)
	}
	if got := c.Stats().StallCycles; got != s-1 {
		t.Fatalf("stall cycles = %d, want %d", got, s-1)
	}
	// The last stalled cycle still behaves exactly like a per-cycle step.
	c.Step(s) // consumes the final stall cycle
	if c.State() != Stalled || c.StallRemaining() != 0 {
		t.Fatalf("final stall step: state %v, remaining %d", c.State(), c.StallRemaining())
	}
}

func TestAccrueStallZeroIsNoop(t *testing.T) {
	c := buildSlowCore(t, 3, slowLoop)
	c.Step(0)
	before, state := c.Stats(), c.State()
	c.AccrueStall(0)
	if c.Stats() != before || c.State() != state {
		t.Fatal("AccrueStall(0) changed observable state")
	}
}

func TestAccrueStallBeyondOutstandingPanics(t *testing.T) {
	c := buildSlowCore(t, 3, slowLoop)
	c.Step(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AccrueStall beyond the outstanding stall did not panic")
		}
	}()
	c.AccrueStall(c.StallRemaining() + 1)
}

func TestWakeCycleReporting(t *testing.T) {
	c := buildSlowCore(t, 4, slowLoop)
	if got := c.WakeCycle(0); got != 0 {
		t.Fatalf("fresh core wake = %d, want 0 (ready now)", got)
	}
	c.Step(0)
	s := c.StallRemaining()
	if s == 0 {
		t.Fatal("expected the first step to leave a stall")
	}
	if got := c.WakeCycle(1); got != 1+s {
		t.Fatalf("wake after step = %d, want %d", got, 1+s)
	}
	// Halt the core: wake becomes never.
	h := buildSlowCore(t, 0, "halt\n")
	h.Step(0)
	if !h.Halted() {
		t.Fatal("core did not halt")
	}
	if got := h.WakeCycle(1); got != WakeNever {
		t.Fatalf("halted wake = %d, want WakeNever", got)
	}
}

// TestActivitySnifferSeesAllModes attaches an activity sniffer and checks
// it mirrors the core's counters exactly, whether cycles arrive one at a
// time or as accrued spans.
func TestActivitySnifferSeesAllModes(t *testing.T) {
	c := buildSlowCore(t, 3, slowLoop)
	a := sniffer.NewActivity("activity0")
	c.AttachActivity(a)
	for now := uint64(0); now < 5_000 && !c.Halted(); {
		w := c.WakeCycle(now)
		if w > now {
			c.AccrueStall(w - now)
			now = w
		}
		c.Step(now)
		now++
	}
	c.AccrueIdle(17) // halted tail, accrued in bulk
	st := c.Stats()
	if got := a.Count(sniffer.ModeActive); got != st.ActiveCycles {
		t.Errorf("active: sniffer %d, core %d", got, st.ActiveCycles)
	}
	if got := a.Count(sniffer.ModeStalled); got != st.StallCycles {
		t.Errorf("stalled: sniffer %d, core %d", got, st.StallCycles)
	}
	if got := a.Count(sniffer.ModeIdle); got != st.IdleCycles {
		t.Errorf("idle: sniffer %d, core %d", got, st.IdleCycles)
	}
	if a.Cycles() != st.Cycles() {
		t.Errorf("total: sniffer %d, core %d", a.Cycles(), st.Cycles())
	}
}
