package emu_test

// Kernel throughput baseline: emulated cycles per host second for the
// serial and the deterministic parallel kernel, on the Table 3 matrix
// workload (compute-bound: cores run from private memory, little to skip)
// and on the MEMBOUND streaming workload (stall-bound: uncached shared
// loads, the case the skip-ahead kernel accelerates). CI records the output
// as BENCH_emu.json and cmd/benchgate enforces no cycles/s regression
// against the committed baseline, so future kernel PRs can prove they
// changed nothing but speed (their golden digests must not move; these
// numbers should only go up).

import (
	"fmt"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/workloads"
)

const benchMaxCycles = 50_000_000

func benchSpec(b *testing.B, stall bool, cores int) *workloads.Spec {
	b.Helper()
	var (
		spec *workloads.Spec
		err  error
	)
	if stall {
		spec, err = workloads.MemBound(cores, 2048, 8)
	} else {
		spec, err = workloads.Matrix(cores, 16, 8, 64)
	}
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

func benchPlatform(b *testing.B, spec *workloads.Spec, cores int, parallel, blocks, speculate bool) *emu.Platform {
	b.Helper()
	cfg := emu.DefaultConfig(cores)
	cfg.Parallel = parallel
	cfg.Blocks = blocks
	cfg.Speculate = speculate
	p := emu.MustNew(cfg)
	for i, im := range spec.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			b.Fatal(err)
		}
	}
	for _, blk := range spec.Shared {
		p.WriteShared(blk.Addr, blk.Data)
	}
	return p
}

func benchKernel(b *testing.B, stall bool, cores int, parallel, blocks, speculate bool) {
	spec := benchSpec(b, stall, cores)
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchPlatform(b, spec, cores, parallel, blocks, speculate)
		b.StartTimer()
		var (
			cyc  uint64
			done bool
		)
		if parallel {
			cyc, done = p.RunParallel(emu.DefaultChunk, benchMaxCycles)
		} else {
			cyc, done = p.Run(benchMaxCycles)
		}
		if !done {
			b.Fatalf("workload %s did not finish", spec.Name)
		}
		cycles += cyc
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkRunSerial(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, false, false, false)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, false, false, false)
		})
	}
}

func BenchmarkRunParallel(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, true, false, false)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, true, false, false)
		})
	}
}

// The Blocks variants run the same workloads with threaded-code block
// dispatch enabled (Config.Blocks). The matrix rows are the headline
// numbers of the translation kernel; the stall rows prove skip-ahead
// workloads don't regress when blocks are on.
func BenchmarkRunSerialBlocks(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, false, true, false)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, false, true, false)
		})
	}
}

func BenchmarkRunParallelBlocks(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, true, true, false)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, true, true, false)
		})
	}
}

// The Spec variants run the speculative shared-path kernel (Config.Speculate):
// free-running chunks with logged shared traffic, validated and committed in
// serial order at each boundary. The matrix rows are the scaling headline —
// aggregate cycles/s should hold nearly flat as cores are added, where the
// gated kernel collapses under arbitration.
func BenchmarkRunParallelSpec(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, true, false, true)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, true, false, true)
		})
	}
}

func BenchmarkRunParallelSpecBlocks(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, false, cores, true, true, true)
		})
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("stall/cores=%d", cores), func(b *testing.B) {
			benchKernel(b, true, cores, true, true, true)
		})
	}
}
