package emu_test

// Kernel throughput baseline: emulated cycles per host second for the
// serial and the deterministic parallel kernel on the Table 3 matrix
// workload. CI records the output as BENCH_emu.json so future kernel PRs
// can prove they changed nothing but speed (their golden digests must not
// move; these numbers should).

import (
	"fmt"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/workloads"
)

const benchMaxCycles = 50_000_000

func benchPlatform(b *testing.B, cores int, parallel bool) (*emu.Platform, *workloads.Spec) {
	b.Helper()
	spec, err := workloads.Matrix(cores, 16, 8, 64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := emu.DefaultConfig(cores)
	cfg.Parallel = parallel
	p := emu.MustNew(cfg)
	for i, im := range spec.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			b.Fatal(err)
		}
	}
	for _, blk := range spec.Shared {
		p.WriteShared(blk.Addr, blk.Data)
	}
	return p, spec
}

func benchKernel(b *testing.B, cores int, parallel bool) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, spec := benchPlatform(b, cores, parallel)
		b.StartTimer()
		var (
			cyc  uint64
			done bool
		)
		if parallel {
			cyc, done = p.RunParallel(emu.DefaultChunk, benchMaxCycles)
		} else {
			cyc, done = p.Run(benchMaxCycles)
		}
		if !done {
			b.Fatalf("workload %s did not finish", spec.Name)
		}
		cycles += cyc
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkRunSerial(b *testing.B) {
	for _, cores := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, cores, false)
		})
	}
}

func BenchmarkRunParallel(b *testing.B) {
	for _, cores := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			benchKernel(b, cores, true)
		})
	}
}
