package emu

// This file wires the golden-trace conformance machinery (internal/golden)
// into the platform: periodic statistics digests plus a full
// architectural-state digest, so any two runs — serial vs parallel, across
// chunk sizes, or across commits via golden files — can be asserted
// bit-identical, and a journaled trace pinpoints the first divergent cycle,
// core and field when they are not.

import (
	"fmt"

	"thermemu/internal/golden"
	"thermemu/internal/isa"
	"thermemu/internal/mem"
)

// DigestSnapshot folds every counter of a statistics snapshot into tr.
// A nil trace is ignored, so callers can thread an optional trace through
// unconditionally.
func DigestSnapshot(tr *golden.Trace, s Snapshot) {
	if tr == nil {
		return
	}
	cy := s.Cycle
	tr.Record(cy, -1, "time_ps", s.TimePs)
	tr.Record(cy, -1, "freq_hz", s.FreqHz)
	for i := range s.Cores {
		c := s.Cores[i]
		tr.Record(cy, i, "instructions", c.Instructions)
		tr.Record(cy, i, "active_cycles", c.ActiveCycles)
		tr.Record(cy, i, "stall_cycles", c.StallCycles)
		tr.Record(cy, i, "idle_cycles", c.IdleCycles)
		tr.Record(cy, i, "loads", c.Loads)
		tr.Record(cy, i, "stores", c.Stores)
		tr.Record(cy, i, "branches", c.Branches)
		tr.Record(cy, i, "taken", c.Taken)
		tr.Record(cy, i, "paired", c.Paired)
	}
	for i := range s.ICaches {
		digestCache(tr, cy, i, "icache", s.ICaches[i])
	}
	for i := range s.DCaches {
		digestCache(tr, cy, i, "dcache", s.DCaches[i])
	}
	for i := range s.L2s {
		digestCache(tr, cy, i, "l2", s.L2s[i])
	}
	for i := range s.Ctrls {
		c := s.Ctrls[i]
		tr.Record(cy, i, "ctrl_fetches", c.Fetches)
		tr.Record(cy, i, "ctrl_priv_reads", c.PrivateReads)
		tr.Record(cy, i, "ctrl_priv_writes", c.PrivateWrits)
		tr.Record(cy, i, "ctrl_shared_reads", c.SharedReads)
		tr.Record(cy, i, "ctrl_shared_writes", c.SharedWrits)
		tr.Record(cy, i, "ctrl_device_ops", c.DeviceOps)
		tr.Record(cy, i, "ctrl_stall_cycles", c.StallCycles)
	}
	tr.Record(cy, -1, "shared_reads", s.Shared.Reads)
	tr.Record(cy, -1, "shared_writes", s.Shared.Writes)
	if s.Bus != nil {
		b := s.Bus
		tr.Record(cy, -1, "bus_transactions", b.Transactions)
		tr.Record(cy, -1, "bus_reads", b.Reads)
		tr.Record(cy, -1, "bus_writes", b.Writes)
		tr.Record(cy, -1, "bus_busy_cycles", b.BusyCycles)
		tr.Record(cy, -1, "bus_wait_cycles", b.WaitCycles)
		tr.Record(cy, -1, "bus_beats", b.BeatsCarried)
		tr.Record(cy, -1, "bus_transitions", b.Transitions)
	}
	if s.Noc != nil {
		n := s.Noc
		tr.Record(cy, -1, "noc_packets", n.Packets)
		tr.Record(cy, -1, "noc_flits", n.Flits)
		tr.Record(cy, -1, "noc_ocp_reads", n.OCPReads)
		tr.Record(cy, -1, "noc_ocp_writes", n.OCPWrites)
		tr.Record(cy, -1, "noc_wait_cycles", n.WaitCycles)
		tr.Record(cy, -1, "noc_hops", n.HopsTraveled)
		tr.Record(cy, -1, "noc_transitions", n.Transitions)
	}
}

func digestCache(tr *golden.Trace, cy uint64, core int, name string, c mem.CacheStats) {
	tr.Record(cy, core, name+"_reads", c.Reads)
	tr.Record(cy, core, name+"_writes", c.Writes)
	tr.Record(cy, core, name+"_hits", c.Hits)
	tr.Record(cy, core, name+"_misses", c.Misses)
	tr.Record(cy, core, name+"_evictions", c.Evictions)
	tr.Record(cy, core, name+"_writebacks", c.Writebacks)
}

// DigestInto folds the platform's full architectural state into tr: per-core
// registers, PC, halt/fault status, every touched private and shared memory
// page, barrier state, the virtual clock and a closing statistics snapshot.
// It is typically called once at end of run; periodic sampling uses
// DigestSnapshot.
func (p *Platform) DigestInto(tr *golden.Trace) {
	if tr == nil {
		return
	}
	cy := p.VPCM.Cycle()
	for i, c := range p.Cores {
		tr.Record(cy, i, "pc", uint64(c.PC()))
		for r := 0; r < isa.NumRegs; r++ {
			// Pack the register index into the value so one field name
			// covers the file without losing which register diverged.
			tr.Record(cy, i, "reg", uint64(r)<<32|uint64(c.Reg(uint8(r))))
		}
		var halted uint64
		if c.Halted() {
			halted = 1
		}
		tr.Record(cy, i, "halted", halted)
		if err := c.Fault(); err != nil {
			tr.Record(cy, i, "fault", golden.HashString(err.Error()))
		}
	}
	for i, m := range p.Privs {
		digestMemory(tr, cy, i, "priv", m)
	}
	digestMemory(tr, cy, -1, "shared", p.Shared)
	tr.Record(cy, -1, "barrier_gen", uint64(p.Barrier.Generation()))
	tr.Record(cy, -1, "barrier_arrivals", uint64(p.Barrier.Arrivals()))
	tr.Record(cy, -1, "suppression_cycles", p.VPCM.SuppressionCycles())
	// Frozen time is measured from the host wall clock (link congestion,
	// solver lag in the pipelined loop), so it varies run to run; the digest
	// pins only the emulation-derived physical time, which is deterministic.
	tr.Record(cy, -1, "wall_ps", p.VPCM.EmulationWallPs())
	DigestSnapshot(tr, p.Snapshot())
}

func digestMemory(tr *golden.Trace, cy uint64, core int, name string, m *mem.Memory) {
	m.EachPage(func(addr uint32, page []byte) {
		tr.Record(cy, core, fmt.Sprintf("%s@%08x", name, addr), golden.HashBytes(page))
	})
}

// RunDigest is Run with conformance sampling: it executes the serial kernel
// until every core halts or maxCycles elapse, folding a statistics snapshot
// into tr every `every` cycles (0 uses DefaultChunk) and the full
// architectural state at the end.
func (p *Platform) RunDigest(maxCycles, every uint64, tr *golden.Trace) (uint64, bool) {
	if every == 0 {
		every = DefaultChunk
	}
	for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
		n := every
		if left := maxCycles - p.VPCM.Cycle(); n > left {
			n = left
		}
		p.Step(n)
		DigestSnapshot(tr, p.Snapshot())
	}
	p.DigestInto(tr)
	return p.VPCM.Cycle(), p.AllHalted()
}

// RunParallelDigest is RunParallel with conformance sampling at the same
// boundaries as RunDigest: snapshots are taken every `every` cycles (0 uses
// the chunk size) regardless of the chunk size, so serial and parallel
// digests of the same workload are directly comparable at any chunk size
// when run with equal `every`.
func (p *Platform) RunParallelDigest(chunk, maxCycles, every uint64, tr *golden.Trace) (uint64, bool) {
	if !p.Cfg.Parallel {
		panic("emu: RunParallelDigest on a platform built without Config.Parallel")
	}
	if chunk == 0 {
		chunk = DefaultChunk
	}
	if every == 0 {
		every = chunk
	}
	for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
		next := p.VPCM.Cycle() + every
		if next > maxCycles {
			next = maxCycles
		}
		for p.VPCM.Cycle() < next && !p.AllHalted() {
			p.advanceChunk(chunk, next)
		}
		DigestSnapshot(tr, p.Snapshot())
	}
	p.DigestInto(tr)
	return p.VPCM.Cycle(), p.AllHalted()
}
