// Package emu composes the emulated MPSoC platform of Section 3: processing
// cores, per-core memory controllers with configurable I/D caches, private
// memories, one shared main memory reached through a configurable
// interconnect (OPB/PLB/custom bus or an Xpipes-style NoC), the statistics
// extraction subsystem, and the VPCM virtual clock.
//
// The platform's fast kernel stands in for the FPGA fabric: every emulated
// cycle is a direct-dispatch step over the cores, and all statistics are
// O(1) counters, so — like the HW emulator of the paper — adding monitored
// components costs essentially nothing. Contrast with package mparm, which
// wraps the same platform in a signal-level evaluate/update kernel to model
// a cycle-accurate SW simulator.
package emu

import (
	"fmt"

	"thermemu/internal/asm"
	"thermemu/internal/bus"
	"thermemu/internal/cpu"
	"thermemu/internal/mem"
	"thermemu/internal/noc"
	"thermemu/internal/sniffer"
	"thermemu/internal/vpcm"
)

// Address-map constants of the emulated platform. The memory controller
// routes each range per Section 3.2; the sniffer control registers are
// memory-mapped so emulated software can toggle sniffers (Section 4.1).
const (
	PrivBase    = 0x0000_0000
	ScratchBase = 0x0800_0000
	SharedBase  = 0x1000_0000
	BarrierBase = 0x2000_0000
	SniffBase   = 0x2100_0000
	InfoBase    = 0x2200_0000
)

// ICKind selects the interconnect family.
type ICKind int

// Interconnect kinds.
const (
	ICBusOPB ICKind = iota
	ICBusPLB
	ICBusCustom
	ICNoC
)

// String returns the kind name.
func (k ICKind) String() string {
	switch k {
	case ICBusOPB:
		return "opb"
	case ICBusPLB:
		return "plb"
	case ICBusCustom:
		return "custom-bus"
	case ICNoC:
		return "noc"
	}
	return fmt.Sprintf("ic(%d)", int(k))
}

// NoCSpec instantiates an Xpipes-style NoC for the platform.
type NoCSpec struct {
	Topo      *noc.Topology
	Cfg       noc.Config
	MemSwitch int // switch hosting the shared memory's network interface
}

// Table3NoC returns the NoC of the paper's Table 3 exploration: two 32-bit
// switches with four I/O channels and 3-flit buffers; cores attach two per
// switch and the shared memory sits on switch 1.
func Table3NoC(cores int) *NoCSpec {
	topo := &noc.Topology{Name: "table3-2sw", Switches: 2,
		Links:           []noc.Link{{From: 0, To: 1}, {From: 1, To: 0}},
		InitiatorSwitch: map[int]int{}}
	for c := 0; c < cores; c++ {
		topo.Attach(c, c%2)
	}
	return &NoCSpec{Topo: topo, Cfg: noc.DefaultConfig(), MemSwitch: 1}
}

// Fig6NoC returns the NoC of the Figure 6 thermal experiment: four switches
// in a ring, one core per switch, shared memory on switch 0.
func Fig6NoC(cores int) *NoCSpec {
	topo := noc.Ring(4)
	for c := 0; c < cores; c++ {
		topo.Attach(c, c%4)
	}
	return &NoCSpec{Topo: topo, Cfg: noc.DefaultConfig(), MemSwitch: 0}
}

// Config parameterises a platform instance.
type Config struct {
	Cores    int
	CoreKind cpu.Kind
	// CoreKinds optionally overrides CoreKind per core, for heterogeneous
	// platforms like the paper's Table 3 design (one PowerPC405 hard-core
	// plus three Microblaze soft-cores). Entries beyond its length use
	// CoreKind.
	CoreKinds []cpu.Kind
	FreqHz    uint64 // virtual platform clock
	PhysHz    uint64 // FPGA oscillator (paper: 100 MHz)

	ICache *mem.CacheConfig // nil = uncached fetch path
	DCache *mem.CacheConfig // nil = uncached data path
	// L2 interposes a per-core second cache level on the shared-memory
	// path (between the L1s and the interconnect), per the paper's
	// "additional cache levels ... added in few minutes".
	L2 *mem.CacheConfig
	// ScratchKB adds a per-core software-managed scratchpad at
	// ScratchBase (0 = none).
	ScratchKB int

	PrivKB          int
	PrivLatency     uint64
	PrivPhysLatency uint64 // backing-device latency (BRAM = same, DDR = higher)

	SharedKB          int
	SharedLatency     uint64
	SharedPhysLatency uint64
	SharedCacheable   bool

	IC  ICKind
	Bus *bus.Config // overrides the preset when non-nil (ICBus* only)
	NoC *NoCSpec    // required for ICNoC

	EventLogging bool // attach event-logging sniffers to the controllers
	EventBufCap  int  // BRAM ring capacity (events)

	// Parallel builds the platform for deterministic multi-threaded
	// stepping (RunParallel): within each chunk the cores free-run
	// concurrently on private state, and every shared-resource access
	// (shared memory, interconnect, barrier, sniffer control) is committed
	// by a single arbiter in (cycle, coreID) order — exactly the serial
	// kernel's interleaving. This is the software analogue of the FPGA's
	// spatial parallelism — on a multi-core host the emulator's wall time
	// stays nearly flat as emulated cores are added, like the paper's
	// hardware — and it is deterministic by construction: RunParallel
	// produces bit-identical architectural state, cycle counts and
	// statistics to the serial Run, at any chunk size, run after run (the
	// golden-trace conformance suite asserts this). Serial stepping of a
	// Parallel-built platform also works and behaves identically.
	// Incompatible with EventLogging.
	Parallel bool

	// Blocks enables threaded-code basic-block dispatch: straight-line R32
	// runs are discovered at first execution, pre-decoded once and executed
	// whole, with the kernels falling back to per-cycle Step at block
	// exits, stalls, shared-path windows and self-modifying-code
	// invalidations. Bit-identical to Blocks=false — same digests, stats,
	// event logs and checkpoints (the block cache is derived state, rebuilt
	// after restore) — but substantially faster on compute-bound workloads.
	// Works with both the serial and the parallel kernel.
	Blocks bool

	// Speculate layers the speculative shared-path kernel over the parallel
	// arbiter (see spec.go): within each chunk the cores free-run against
	// epoch-local read/write logs instead of parking, and the chunk commits
	// only after a validation walk replays the logged shared traffic in
	// (cycle, coreID) order against the real platform; chunks that cannot be
	// proven equivalent to the serial interleaving are rolled back and
	// re-executed through the gated path. Bit-identical to the serial and
	// gated kernels — same digests, cycle counts and statistics — but
	// without per-access arbitration in the conflict-free common case.
	// Requires Parallel; incompatible with SharedCacheable and L2 (both put
	// per-core mutable state on the shared path that free-runs would
	// observe before commit).
	Speculate bool
}

// DefaultConfig mirrors the Table 3 exploration platform: N cores with 4 KB
// I/D caches, 16 KB private memory each, a 1 MB shared main memory and the
// OPB bus, clocked at 100 MHz. Use Table3Cores for the paper's exact
// heterogeneous core mix.
func DefaultConfig(cores int) Config {
	ic := &mem.CacheConfig{Name: "icache", SizeBytes: 4 * 1024, LineBytes: 16, Assoc: 1, HitLatency: 0}
	dc := &mem.CacheConfig{Name: "dcache", SizeBytes: 4 * 1024, LineBytes: 16, Assoc: 2, HitLatency: 0}
	return Config{
		Cores: cores, CoreKind: cpu.Microblaze,
		FreqHz: 100e6, PhysHz: 100e6,
		ICache: ic, DCache: dc,
		PrivKB: 64, PrivLatency: 1, PrivPhysLatency: 1,
		SharedKB: 1024, SharedLatency: 6, SharedPhysLatency: 6,
		IC:          ICBusOPB,
		EventBufCap: 4096,
	}
}

// Table3Cores returns the paper's Table 3 core mix for n cores: one
// PowerPC405 hard-core and n-1 Microblaze soft-cores.
func Table3Cores(n int) []cpu.Kind {
	kinds := make([]cpu.Kind, n)
	kinds[0] = cpu.PPC405
	for i := 1; i < n; i++ {
		kinds[i] = cpu.Microblaze
	}
	return kinds
}

// Fig6Config mirrors the Figure 6 thermal system: four RISC-32 cores with
// 8 kB direct-mapped I/D caches, 32 kB cacheable private memories, a 32 kB
// shared memory and a four-switch NoC, emulated at 500 MHz on the 100 MHz
// fabric.
func Fig6Config() Config {
	cfg := DefaultConfig(4)
	cfg.FreqHz = 500e6
	cfg.ICache = &mem.CacheConfig{Name: "icache", SizeBytes: 8 * 1024, LineBytes: 16, Assoc: 1, HitLatency: 0}
	cfg.DCache = &mem.CacheConfig{Name: "dcache", SizeBytes: 8 * 1024, LineBytes: 16, Assoc: 1, HitLatency: 0}
	cfg.PrivKB = 32
	cfg.SharedKB = 32
	cfg.IC = ICNoC
	cfg.NoC = Fig6NoC(4)
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("emu: need at least one core")
	}
	if c.FreqHz == 0 || c.PhysHz == 0 {
		return fmt.Errorf("emu: frequencies must be positive")
	}
	if c.PrivKB <= 0 || c.SharedKB <= 0 {
		return fmt.Errorf("emu: memory sizes must be positive")
	}
	if c.IC == ICNoC && c.NoC == nil {
		return fmt.Errorf("emu: NoC interconnect requires a NoCSpec")
	}
	if c.Parallel && c.EventLogging {
		return fmt.Errorf("emu: event logging is not supported in parallel mode")
	}
	if c.Speculate {
		if !c.Parallel {
			return fmt.Errorf("emu: Speculate requires Parallel")
		}
		if c.SharedCacheable {
			return fmt.Errorf("emu: Speculate is incompatible with a cacheable shared memory")
		}
		if c.L2 != nil {
			return fmt.Errorf("emu: Speculate is incompatible with L2 caches")
		}
	}
	for _, cc := range []*mem.CacheConfig{c.ICache, c.DCache, c.L2} {
		if cc != nil {
			if err := cc.Validate(); err != nil {
				return fmt.Errorf("emu: %w", err)
			}
		}
	}
	return nil
}

// Platform is one instantiated MPSoC emulation.
type Platform struct {
	Cfg     Config
	VPCM    *vpcm.VPCM
	Cores   []*cpu.Core
	Ctrls   []*mem.Controller
	Privs   []*mem.Memory
	Shared  *mem.Memory
	Bus     *bus.Bus     // nil for NoC platforms
	Net     *noc.Network // nil for bus platforms
	Barrier *mem.Barrier
	L2s     []*mem.Cache // per-core L2, when configured
	Hub     *sniffer.Hub
	Ring    *sniffer.Ring
	Events  []*sniffer.EventSniffer // per controller, when EventLogging

	// OnBufferFull is invoked when the event BRAM fills; it should drain
	// the ring (e.g. pump the Ethernet dispatcher) and report success.
	OnBufferFull func() bool

	sched *scheduler  // shared-path arbiter, built only with Config.Parallel
	spec  *specEngine // speculative kernel, built only with Config.Speculate

	// spms holds each core's scratchpad memory (nil entries when
	// Config.ScratchKB is 0) and issueHooks the parallel block-dispatch gate
	// refreshers; both are needed by the speculative kernel, which snapshots
	// scratchpads across chunks and swaps the hooks in and out around
	// free-runs.
	spms       []*mem.Memory
	issueHooks []func(uint64)

	// Skip-ahead kernel state: per-core wake cycles and idle-span origins
	// (reused across spans to keep Step/Run allocation-free) plus telemetry.
	wake     []uint64
	idleFrom []uint64
	skip     SkipStats

	acts []*sniffer.Activity // per-core activity sniffers, when attached
}

// New builds a platform from cfg.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{
		Cfg:  cfg,
		VPCM: vpcm.New(cfg.PhysHz, cfg.FreqHz),
		Hub:  sniffer.NewHub(),
	}
	if cfg.Parallel {
		p.sched = newScheduler(cfg.Cores)
	}
	cap := cfg.EventBufCap
	if cap <= 0 {
		cap = 4096
	}
	p.Ring = sniffer.NewRing(cap)

	p.Shared = mem.NewMemory("shared", uint32(cfg.SharedKB)*1024, cfg.SharedLatency)
	if cfg.SharedPhysLatency > cfg.SharedLatency {
		p.Shared.SetPhysicalLatency(cfg.SharedPhysLatency, p.VPCM)
	}
	p.Barrier = mem.NewBarrier("barrier", cfg.Cores, 1)

	var ic mem.Interconnect
	var specBusCfg *bus.Config // the resolved bus config, for spec shadow buses
	switch cfg.IC {
	case ICBusOPB, ICBusPLB, ICBusCustom:
		bc := bus.OPB(cfg.Cores)
		if cfg.IC == ICBusPLB {
			bc = bus.PLB(cfg.Cores)
		} else if cfg.IC == ICBusCustom {
			bc = bus.Custom(cfg.Cores, bus.RoundRobin, 32)
		}
		if cfg.Bus != nil {
			bc = *cfg.Bus
		}
		b, err := bus.New(bc)
		if err != nil {
			return nil, err
		}
		p.Bus = b
		ic = b
		specBusCfg = &bc
	case ICNoC:
		n, err := noc.New(cfg.NoC.Topo, cfg.NoC.Cfg)
		if err != nil {
			return nil, err
		}
		p.Net = n
		ic = n.TargetPort(cfg.NoC.MemSwitch)
	}
	if cfg.Speculate {
		p.spec = newSpecEngine(p, cfg, specBusCfg)
	}
	p.spms = make([]*mem.Memory, cfg.Cores)
	p.issueHooks = make([]func(uint64), cfg.Cores)

	for i := 0; i < cfg.Cores; i++ {
		ctl := mem.NewController(fmt.Sprintf("memctl%d", i), i)
		priv := mem.NewMemory(fmt.Sprintf("priv%d", i), uint32(cfg.PrivKB)*1024, cfg.PrivLatency)
		if cfg.PrivPhysLatency > cfg.PrivLatency {
			priv.SetPhysicalLatency(cfg.PrivPhysLatency, p.VPCM)
		}
		if err := ctl.AddRange(mem.Range{Name: "priv", Base: PrivBase, Target: priv,
			Cacheable: true, Kind: mem.KindPrivate}); err != nil {
			return nil, err
		}
		var shared mem.Target = &mem.Routed{Under: p.Shared, IC: ic, Initiator: i}
		if cfg.L2 != nil {
			l2cfg := *cfg.L2
			l2cfg.Name = fmt.Sprintf("l2_%d", i)
			l2 := mem.NewCache(l2cfg)
			p.L2s = append(p.L2s, l2)
			shared = mem.NewCachedTarget(l2, shared)
		}
		var barrier mem.Target = p.Barrier
		var sniffctl mem.Target = mem.NewRegDevice("sniffctl", 64, 1, p.Hub.CtrlLoad, p.Hub.CtrlStore)
		if cfg.Parallel {
			g := p.sched.gates[i]
			shared = &gated{gate: g, under: shared}
			barrier = &gated{gate: g, under: barrier}
			sniffctl = &gated{gate: g, under: sniffctl}
		}
		if cfg.Speculate {
			// The speculative wrapper sits above the gate: pass-through while
			// the core is not free-running (so gated chunks and the
			// validation walk reach the arbitrated chain), log-and-buffer
			// while it is.
			sc := p.spec.cores[i]
			sc.underShared, sc.underBarrier = shared, barrier
			shared = &specTarget{sc: sc, dev: specDevShared, under: shared}
			barrier = &specTarget{sc: sc, dev: specDevBarrier, under: barrier}
			sniffctl = &specTarget{sc: sc, dev: specDevSniff, under: sniffctl}
		}
		if err := ctl.AddRange(mem.Range{Name: "shared", Base: SharedBase, Target: shared,
			Cacheable: cfg.SharedCacheable, Kind: mem.KindShared}); err != nil {
			return nil, err
		}
		if err := ctl.AddRange(mem.Range{Name: "barrier", Base: BarrierBase,
			Target: barrier, Kind: mem.KindDevice}); err != nil {
			return nil, err
		}
		if err := ctl.AddRange(mem.Range{Name: "sniffctl", Base: SniffBase,
			Target: sniffctl, Kind: mem.KindDevice}); err != nil {
			return nil, err
		}
		if cfg.ScratchKB > 0 {
			spm := mem.Scratchpad(fmt.Sprintf("scratch%d", i), uint32(cfg.ScratchKB)*1024)
			if err := ctl.AddRange(mem.Range{Name: "scratch", Base: ScratchBase,
				Target: spm, Kind: mem.KindPrivate}); err != nil {
				return nil, err
			}
			p.spms[i] = spm
		}
		coreID := uint32(i)
		info := mem.NewRegDevice("info", 4, 1, func(reg uint32) uint32 {
			switch reg {
			case 0:
				return coreID
			case 1:
				return uint32(cfg.Cores)
			}
			return 0
		}, nil)
		if err := ctl.AddRange(mem.Range{Name: "info", Base: InfoBase,
			Target: info, Kind: mem.KindDevice}); err != nil {
			return nil, err
		}

		var icache, dcache *mem.Cache
		if cfg.ICache != nil {
			cc := *cfg.ICache
			cc.Name = fmt.Sprintf("icache%d", i)
			icache = mem.NewCache(cc)
		}
		if cfg.DCache != nil {
			cc := *cfg.DCache
			cc.Name = fmt.Sprintf("dcache%d", i)
			dcache = mem.NewCache(cc)
		}
		ctl.AttachCaches(icache, dcache)

		kind := cfg.CoreKind
		if i < len(cfg.CoreKinds) {
			kind = cfg.CoreKinds[i]
		}
		core := cpu.New(i, kind, ctl)
		if cfg.Blocks {
			core.EnableBlocks()
			if cfg.Parallel {
				// Block-dispatched instructions must refresh the shared-path
				// gate exactly like the parallel runner does before each
				// Step, so gated accesses park at the right (cycle, coreID).
				g := p.sched.gates[i]
				p.issueHooks[i] = func(cyc uint64) {
					g.cycle = cyc
					g.held = false
				}
				core.SetIssueHook(p.issueHooks[i])
			}
		}
		p.Cores = append(p.Cores, core)
		p.Ctrls = append(p.Ctrls, ctl)
		p.Privs = append(p.Privs, priv)

		if cfg.EventLogging {
			es := sniffer.NewEventSniffer(fmt.Sprintf("events%d", i), uint16(i), p.Ring,
				func() bool {
					if p.OnBufferFull != nil {
						return p.OnBufferFull()
					}
					return false
				})
			p.Hub.Register(es)
			p.Events = append(p.Events, es)
			ctl.SetObserver(func(a mem.Access) {
				kind := sniffer.EvMemRead
				switch {
				case a.Fetch:
					kind = sniffer.EvFetch
				case a.Write:
					kind = sniffer.EvMemWrite
				}
				es.Log(a.Cycle, kind, a.Addr, uint32(a.Stall))
			})
		}
	}
	return p, nil
}

// MustNew is New for trusted configurations.
func MustNew(cfg Config) *Platform {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// AttachActivitySniffers attaches one count-logging activity sniffer per
// core (named activityN, registered with the hub so emulated software can
// toggle them) and returns the sniffers indexed by core. The attachment
// point is cpu.Core's accounting choke point, so per-cycle, skip-ahead and
// parallel stepping all feed the counters identically. Idempotent: repeat
// calls return the already-attached sniffers.
func (p *Platform) AttachActivitySniffers() []*sniffer.Activity {
	if p.acts != nil {
		return p.acts
	}
	p.acts = make([]*sniffer.Activity, len(p.Cores))
	for i, c := range p.Cores {
		a := sniffer.NewActivity(fmt.Sprintf("activity%d", i))
		p.Hub.Register(a)
		c.AttachActivity(a)
		p.acts[i] = a
	}
	return p.acts
}

// LoadProgram writes an assembled image into core's private memory and
// points the core at its entry. Different binaries per core are supported,
// as with the EDK loader in the paper.
func (p *Platform) LoadProgram(core int, im *asm.Image) error {
	if core < 0 || core >= len(p.Cores) {
		return fmt.Errorf("emu: core %d out of range", core)
	}
	limit := uint32(p.Cfg.PrivKB) * 1024
	for _, s := range im.Sections {
		if s.Addr+uint32(len(s.Data)) > limit {
			return fmt.Errorf("emu: image section at 0x%x exceeds %d KB private memory",
				s.Addr, p.Cfg.PrivKB)
		}
		p.Privs[core].WriteBytes(s.Addr, s.Data)
	}
	p.Cores[core].Reset(im.Entry)
	return nil
}

// WriteShared initialises shared memory (used by workload loaders).
func (p *Platform) WriteShared(offset uint32, data []byte) {
	p.Shared.WriteBytes(offset, data)
}

// ReadSharedWord reads one word of shared memory without timing.
func (p *Platform) ReadSharedWord(offset uint32) uint32 {
	return p.Shared.LoadWord(offset)
}

// StepOne advances the platform by exactly one virtual cycle, sweeping
// every core. It is the per-cycle reference kernel the skip-ahead kernel is
// tested against; Step/Run are strictly faster and bit-identical.
func (p *Platform) StepOne() {
	now := p.VPCM.Cycle()
	for _, c := range p.Cores {
		c.Step(now)
	}
	p.VPCM.Advance(1)
}

// SkipStats is the skip-ahead kernel's telemetry: how much per-cycle work
// the event-driven stepping avoided.
type SkipStats struct {
	// EventCycles counts cycles on which at least one core was swept by
	// the serial skip-ahead kernel (and the single-core parallel fast
	// path; multi-core parallel chunks keep no per-step counts).
	EventCycles uint64
	// SkippedCycles counts core-cycles settled in bulk — stall/idle spans
	// charged by accrual instead of per-cycle Step calls. Serial spans and
	// parallel chunks both contribute.
	SkippedCycles uint64
	// CoreSteps counts individual core Step calls executed by the serial
	// kernel and the single-core parallel fast path.
	CoreSteps uint64
}

// SkipStats returns the cumulative skip-ahead telemetry.
func (p *Platform) SkipStats() SkipStats { return p.skip }

// icNextEvent returns the interconnect's next in-flight-transaction event
// after now — the cycle its busy horizon frees — and whether one exists.
// Interconnect timing is settled at access time (the initiating core's
// stall countdown already covers the transaction), so this is a jump bound
// for the event kernel, never a correctness requirement.
func (p *Platform) icNextEvent(now uint64) (uint64, bool) {
	if p.Bus != nil {
		return p.Bus.NextEvent(now)
	}
	if p.Net != nil {
		return p.Net.NextEvent(now)
	}
	return 0, false
}

// NextEventCycle returns the earliest cycle after now at which the platform
// can do anything: the minimum of every live core's wake cycle and the
// interconnect's in-flight-transaction horizon. It returns cpu.WakeNever
// when every core has halted and no transaction is in flight.
func (p *Platform) NextEventCycle(now uint64) uint64 {
	next := uint64(cpu.WakeNever)
	for _, c := range p.Cores {
		if w := c.WakeCycle(now); w < next {
			next = w
		}
	}
	if e, ok := p.icNextEvent(now); ok && e < next {
		next = e
	}
	return next
}

// Step advances the platform by n cycles (or until every core halts).
func (p *Platform) Step(n uint64) {
	p.stepSpan(p.VPCM.Cycle() + n)
}

// Run executes until every core halts or maxCycles elapse. It returns the
// cycle count at which it stopped and whether all cores halted.
func (p *Platform) Run(maxCycles uint64) (uint64, bool) {
	if p.VPCM.Cycle() < maxCycles {
		p.stepSpan(maxCycles)
	}
	return p.VPCM.Cycle(), p.AllHalted()
}

// stepSpan advances virtual time to limit (exclusive) — or to one cycle
// past the last core's halt, whichever comes first — with the event-driven
// skip-ahead kernel.
//
// Instead of sweeping every core every cycle, the kernel keeps one wake
// cycle per core: the next cycle on which that core issues an instruction
// (halted = never). Each iteration jumps straight to the minimum wake — one
// O(cores) scan per *event*, not per cycle — and steps only the cores due
// there, in core-ID order, exactly as the per-cycle sweep would reach them.
// The jumped span is pure stall/idle time: a stalled core's Step only
// decrements its countdown and bumps its stall counter, and a halted core's
// Step only bumps its idle counter, so those cycles are settled in bulk via
// cpu.AccrueStall/AccrueIdle when the core next wakes or when the span ends.
// Live cores are tracked as a count updated on halt transitions, so nothing
// scans for AllHalted mid-span. The result is bit-identical to per-cycle
// stepping — same counters, event logs, VPCM time and architectural state —
// which the golden digests and the differential matrix enforce.
func (p *Platform) stepSpan(limit uint64) {
	start := p.VPCM.Cycle()
	if start >= limit {
		return
	}
	if cap(p.wake) < len(p.Cores) {
		p.wake = make([]uint64, len(p.Cores))
		p.idleFrom = make([]uint64, len(p.Cores))
	}
	wake := p.wake[:len(p.Cores)]
	idleFrom := p.idleFrom[:len(p.Cores)]

	// Entry state: cores may have been reset, loaded or stepped elsewhere
	// since the last span, so the wake list is rebuilt each call.
	live := 0
	for i, c := range p.Cores {
		if c.Halted() {
			wake[i] = cpu.WakeNever
			idleFrom[i] = start
			continue
		}
		live++
		wake[i] = c.WakeCycle(start)
	}

	// stop tracks one past the latest cycle on which a core halted this
	// span: where the per-cycle kernel would stop once the last core halts.
	// Block dispatch can retire a halt many cycles past the current event
	// cycle, so this is tracked explicitly rather than read off the loop
	// variable.
	stop := start
	cyc := start
	for live > 0 && cyc < limit {
		// Jump to the next event: the earliest wake, bounded by the
		// interconnect's in-flight-transaction horizon (always at or before
		// the initiating core's wake, so this only splits a jump, never
		// moves an access).
		next := limit
		for _, w := range wake {
			if w < next {
				next = w
			}
		}
		if e, ok := p.icNextEvent(cyc); ok && e < next {
			next = e
		}
		if next > cyc {
			cyc = next
		}
		if cyc >= limit {
			break
		}
		p.skip.EventCycles++
		for i, c := range p.Cores {
			if wake[i] != cyc {
				continue
			}
			// Settle the stall span that ends here in one charge, then
			// issue. AccrueStall(s) ≡ s stalled Step calls, so the books
			// match the per-cycle sweep exactly.
			if s := c.StallRemaining(); s > 0 {
				p.skip.SkippedCycles += s
				c.AccrueStall(s)
			}
			if p.Cfg.Blocks {
				// Block window: run translated blocks up to the earliest
				// cycle any *other* core acts. Until then every other core
				// is pure stall/idle time, so this core's view of shared
				// state — and everyone's view of its writes — is exactly
				// the serial interleaving. (Cores due this same cycle make
				// the window empty, falling back to lockstep Step below.)
				w := limit
				for j, wj := range wake {
					if j != i && wj < w {
						w = wj
					}
				}
				if w > cyc {
					if n, bsteps, bskip := c.StepBlocks(cyc, w-cyc); n > 0 {
						p.skip.CoreSteps += bsteps
						p.skip.EventCycles += bsteps
						p.skip.SkippedCycles += bskip
						if c.Halted() {
							live--
							wake[i] = cpu.WakeNever
							idleFrom[i] = cyc + n
							if cyc+n > stop {
								stop = cyc + n
							}
						} else {
							wake[i] = c.WakeCycle(cyc + n)
						}
						continue
					}
				}
			}
			c.Step(cyc)
			p.skip.CoreSteps++
			if c.Halted() {
				live--
				wake[i] = cpu.WakeNever
				idleFrom[i] = cyc + 1
				if cyc+1 > stop {
					stop = cyc + 1
				}
			} else {
				wake[i] = c.WakeCycle(cyc + 1)
			}
		}
		cyc++
	}

	// End of span: when the last core halted at cycle h the per-cycle
	// kernel stops after sweeping h (time h+1); otherwise at limit.
	end := limit
	if live == 0 && stop < limit {
		end = stop
	}

	// Flush the open spans so observers between kernel calls (snapshots,
	// digests, power windows) see per-cycle-identical counters.
	for i, c := range p.Cores {
		if c.Halted() {
			p.skip.SkippedCycles += end - idleFrom[i]
			c.AccrueIdle(end - idleFrom[i])
			continue
		}
		if acct := wake[i] - c.StallRemaining(); end > acct {
			p.skip.SkippedCycles += end - acct
			c.AccrueStall(end - acct)
		}
	}
	if end > start {
		p.VPCM.Advance(end - start)
	}
}

// AllHalted reports whether every core has halted or faulted.
func (p *Platform) AllHalted() bool {
	for _, c := range p.Cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Fault returns the first core fault, if any.
func (p *Platform) Fault() error {
	for _, c := range p.Cores {
		if err := c.Fault(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot is a copy of every count-logging statistic of the platform at a
// point in time; subtracting two snapshots gives a sampling window.
type Snapshot struct {
	Cycle   uint64
	TimePs  uint64
	FreqHz  uint64
	Cores   []cpu.Stats
	ICaches []mem.CacheStats
	DCaches []mem.CacheStats
	L2s     []mem.CacheStats
	Ctrls   []mem.CtrlStats
	Shared  mem.MemStats
	Bus     *bus.Stats
	Noc     *noc.Stats
}

// Snapshot captures the current statistics.
func (p *Platform) Snapshot() Snapshot {
	var s Snapshot
	p.SnapshotInto(&s)
	return s
}

// SnapshotInto captures the current statistics into s, reusing its slices
// and Bus/Noc allocations. After the first call on a given buffer it
// allocates nothing, which is what the pipelined co-emulation loop needs on
// its per-window hot path.
func (p *Platform) SnapshotInto(s *Snapshot) {
	s.Cycle = p.VPCM.Cycle()
	s.TimePs = p.VPCM.TimePs()
	s.FreqHz = p.VPCM.Frequency()
	s.Shared = p.Shared.Stats()
	s.Cores = s.Cores[:0]
	s.ICaches = s.ICaches[:0]
	s.DCaches = s.DCaches[:0]
	s.L2s = s.L2s[:0]
	s.Ctrls = s.Ctrls[:0]
	for i, c := range p.Cores {
		s.Cores = append(s.Cores, c.Stats())
		if ic := p.Ctrls[i].ICache(); ic != nil {
			s.ICaches = append(s.ICaches, ic.Stats())
		} else {
			s.ICaches = append(s.ICaches, mem.CacheStats{})
		}
		if dc := p.Ctrls[i].DCache(); dc != nil {
			s.DCaches = append(s.DCaches, dc.Stats())
		} else {
			s.DCaches = append(s.DCaches, mem.CacheStats{})
		}
		s.Ctrls = append(s.Ctrls, p.Ctrls[i].Stats())
		if i < len(p.L2s) {
			s.L2s = append(s.L2s, p.L2s[i].Stats())
		}
	}
	if p.Bus != nil {
		if s.Bus == nil {
			s.Bus = new(bus.Stats)
		}
		*s.Bus = p.Bus.Stats()
	} else {
		s.Bus = nil
	}
	if p.Net != nil {
		if s.Noc == nil {
			s.Noc = new(noc.Stats)
		}
		*s.Noc = p.Net.Stats()
	} else {
		s.Noc = nil
	}
}

// CopyInto deep-copies the snapshot into dst, reusing dst's allocations the
// same way SnapshotInto does.
func (s *Snapshot) CopyInto(dst *Snapshot) {
	dst.Cycle = s.Cycle
	dst.TimePs = s.TimePs
	dst.FreqHz = s.FreqHz
	dst.Shared = s.Shared
	dst.Cores = append(dst.Cores[:0], s.Cores...)
	dst.ICaches = append(dst.ICaches[:0], s.ICaches...)
	dst.DCaches = append(dst.DCaches[:0], s.DCaches...)
	dst.L2s = append(dst.L2s[:0], s.L2s...)
	dst.Ctrls = append(dst.Ctrls[:0], s.Ctrls...)
	if s.Bus != nil {
		if dst.Bus == nil {
			dst.Bus = new(bus.Stats)
		}
		*dst.Bus = *s.Bus
	} else {
		dst.Bus = nil
	}
	if s.Noc != nil {
		if dst.Noc == nil {
			dst.Noc = new(noc.Stats)
		}
		*dst.Noc = *s.Noc
	} else {
		dst.Noc = nil
	}
}

// TotalInstructions returns the committed instruction count across cores.
func (p *Platform) TotalInstructions() uint64 {
	var n uint64
	for _, c := range p.Cores {
		n += c.Stats().Instructions
	}
	return n
}

// DefaultChunk is the default synchronisation quantum of RunParallel.
const DefaultChunk = 1024

// RunParallel executes until every core halts or maxCycles elapse, stepping
// the cores on concurrent goroutines in deterministic epochs of the given
// chunk size (0 uses DefaultChunk). The platform must have been built with
// Config.Parallel.
//
// Within a chunk the cores free-run on private state with no
// synchronisation; each shared-resource access parks its core until a
// single arbiter commits it in (cycle, coreID) order — the serial kernel's
// exact interleaving (see sched.go). RunParallel is therefore bit-identical
// to Run: same final cycle, same architectural state, same statistics, at
// any chunk size, run after run.
func (p *Platform) RunParallel(chunk uint64, maxCycles uint64) (uint64, bool) {
	if !p.Cfg.Parallel {
		panic("emu: RunParallel on a platform built without Config.Parallel")
	}
	if chunk == 0 {
		chunk = DefaultChunk
	}
	for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
		p.advanceChunk(chunk, maxCycles)
	}
	return p.VPCM.Cycle(), p.AllHalted()
}
