package emu

import (
	"strings"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/cpu"
	"thermemu/internal/mem"
	"thermemu/internal/sniffer"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := Fig6Config().Validate(); err != nil {
		t.Errorf("fig6 config invalid: %v", err)
	}
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	bad = DefaultConfig(2)
	bad.IC = ICNoC
	if err := bad.Validate(); err == nil {
		t.Error("NoC without spec accepted")
	}
	bad = DefaultConfig(2)
	bad.ICache = &mem.CacheConfig{Name: "x", SizeBytes: 100, LineBytes: 16, Assoc: 1}
	if err := bad.Validate(); err == nil {
		t.Error("invalid cache accepted")
	}
}

func TestICKindStrings(t *testing.T) {
	for k, want := range map[ICKind]string{ICBusOPB: "opb", ICBusPLB: "plb",
		ICBusCustom: "custom-bus", ICNoC: "noc"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

const spinProgram = `
	addi r1, r0, 100
loop:
	subi r1, r1, 1
	bne  r1, r0, loop
	halt
`

func TestRunUntilHalt(t *testing.T) {
	p := MustNew(DefaultConfig(2))
	im := asm.MustAssemble(spinProgram)
	for i := 0; i < 2; i++ {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	cycles, done := p.Run(100000)
	if !done {
		t.Fatal("did not halt")
	}
	if cycles == 0 || cycles >= 100000 {
		t.Errorf("cycles = %d", cycles)
	}
	if p.TotalInstructions() != 2*(1+100*2+1) {
		t.Errorf("instructions = %d", p.TotalInstructions())
	}
	if p.Fault() != nil {
		t.Errorf("fault: %v", p.Fault())
	}
}

func TestInfoDevice(t *testing.T) {
	p := MustNew(DefaultConfig(3))
	im := asm.MustAssemble(`
		li  r1, 0x22000000
		lw  r2, 0(r1)      ; core id
		lw  r3, 4(r1)      ; ncores
		li  r4, 0x10000000
		slli r5, r2, 2
		add r4, r4, r5
		sw  r3, 0(r4)      ; publish ncores at SHARED+4*id
		halt
	`)
	for i := 0; i < 3; i++ {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	if _, done := p.Run(10000); !done {
		t.Fatal("did not halt")
	}
	for i := uint32(0); i < 3; i++ {
		if got := p.ReadSharedWord(4 * i); got != 3 {
			t.Errorf("core %d reported ncores=%d", i, got)
		}
	}
}

func TestDFSMidRunKeepsFunctionalBehaviour(t *testing.T) {
	p := MustNew(DefaultConfig(1))
	im := asm.MustAssemble(`
		addi r1, r0, 1000
	loop:
		subi r1, r1, 1
		bne  r1, r0, loop
		li   r2, 0x10000000
		addi r3, r0, 77
		sw   r3, 0(r2)
		halt
	`)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	p.Step(500)
	p.VPCM.SetFrequency(500e6) // DFS mid-run
	if _, done := p.Run(1_000_000); !done {
		t.Fatal("did not halt")
	}
	if got := p.ReadSharedWord(0); got != 77 {
		t.Errorf("result = %d", got)
	}
	if p.VPCM.DFSEvents() != 1 {
		t.Errorf("DFS events = %d", p.VPCM.DFSEvents())
	}
}

func TestPhysicalLatencySuppressionFlowsToVPCM(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SharedLatency = 2
	cfg.SharedPhysLatency = 20 // DDR slower than the modelled SRAM
	p := MustNew(cfg)
	im := asm.MustAssemble(`
		li  r1, 0x10000000
		lw  r2, 0(r1)
		lw  r3, 4(r1)
		halt
	`)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	p.Run(10000)
	if got := p.VPCM.SuppressionCycles(); got != 2*(20-2) {
		t.Errorf("suppression = %d cycles, want 36", got)
	}
}

func TestEventLoggingAndCongestion(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.EventLogging = true
	cfg.EventBufCap = 8
	p := MustNew(cfg)
	drains := 0
	p.OnBufferFull = func() bool {
		drains++
		for p.Ring.Len() > 0 {
			p.Ring.Pop()
		}
		return true
	}
	im := asm.MustAssemble(spinProgram)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	p.Run(100000)
	if drains == 0 {
		t.Error("BRAM buffer never filled")
	}
	if p.Events[0].Dropped != 0 {
		t.Errorf("%d events dropped despite drain callback", p.Events[0].Dropped)
	}
	if p.Events[0].Logged == 0 {
		t.Error("no events logged")
	}
}

func TestSnifferControlFromSoftware(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.EventLogging = true
	p := MustNew(cfg)
	// The program disables sniffer 0 via the memory-mapped register, spins,
	// then re-enables it.
	im := asm.MustAssemble(`
		li  r1, 0x21000000
		sw  r0, 0(r1)        ; disable sniffer 0
		addi r2, r0, 50
	loop:
		subi r2, r2, 1
		bne  r2, r0, loop
		addi r3, r0, 1
		sw  r3, 0(r1)        ; re-enable
		halt
	`)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	p.Run(10000)
	if !p.Events[0].Enabled() {
		t.Error("sniffer left disabled")
	}
	// The spin loop ran with logging off, so far fewer events than cycles.
	if p.Events[0].Logged > 40 {
		t.Errorf("logged %d events; sniffer disable had no effect", p.Events[0].Logged)
	}
}

func TestSnapshotDeltas(t *testing.T) {
	p := MustNew(DefaultConfig(1))
	im := asm.MustAssemble(spinProgram)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	s0 := p.Snapshot()
	p.Step(50)
	s1 := p.Snapshot()
	if s1.Cycle-s0.Cycle != 50 {
		t.Errorf("cycle delta = %d", s1.Cycle-s0.Cycle)
	}
	if s1.Cores[0].Instructions <= s0.Cores[0].Instructions {
		t.Error("no instruction progress in snapshot")
	}
	if s1.FreqHz != 100e6 {
		t.Errorf("freq = %d", s1.FreqHz)
	}
	if s1.Bus == nil || s1.Noc != nil {
		t.Error("bus platform should snapshot bus stats only")
	}
}

func TestLoadProgramBounds(t *testing.T) {
	p := MustNew(DefaultConfig(1))
	im := asm.MustAssemble(`
		.org 0x100000
		.word 1
	`)
	if err := p.LoadProgram(0, im); err == nil {
		t.Error("oversized image accepted")
	}
	if err := p.LoadProgram(5, asm.MustAssemble("halt")); err == nil {
		t.Error("bad core index accepted")
	}
}

func TestFaultPropagation(t *testing.T) {
	p := MustNew(DefaultConfig(1))
	im := asm.MustAssemble(`
		li r1, 0x70000000
		lw r2, 0(r1)
		halt
	`)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	p.Run(1000)
	if p.Fault() == nil {
		t.Fatal("expected fault")
	}
	if !strings.Contains(p.Fault().Error(), "unmapped") {
		t.Errorf("fault = %v", p.Fault())
	}
	if !p.AllHalted() {
		t.Error("faulted platform should be halted")
	}
}

func TestBusVsNoCSameResults(t *testing.T) {
	prog := asm.MustAssemble(`
		li  r1, 0x10000000
		addi r2, r0, 50
		add r3, r0, r0
	loop:
		sw  r2, 0(r1)
		lw  r4, 0(r1)
		add r3, r3, r4
		addi r1, r1, 4
		subi r2, r2, 1
		bne r2, r0, loop
		li  r1, 0x10010000
		sw  r3, 0(r1)
		halt
	`)
	run := func(cfg Config) uint32 {
		p := MustNew(cfg)
		if err := p.LoadProgram(0, prog); err != nil {
			t.Fatal(err)
		}
		if _, done := p.Run(1_000_000); !done {
			t.Fatal("did not halt")
		}
		return p.ReadSharedWord(0x10000)
	}
	busResult := run(DefaultConfig(1))
	nocCfg := DefaultConfig(1)
	nocCfg.IC = ICNoC
	nocCfg.NoC = Table3NoC(1)
	nocResult := run(nocCfg)
	if busResult != nocResult {
		t.Errorf("bus %d != noc %d", busResult, nocResult)
	}
}

func TestSnifferHubRegistered(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EventLogging = true
	p := MustNew(cfg)
	if p.Hub.Len() != 2 {
		t.Errorf("hub has %d sniffers", p.Hub.Len())
	}
	if _, ok := p.Hub.Lookup("events1"); !ok {
		t.Error("events1 not registered")
	}
	// Ring is shared between the sniffers.
	p.Events[0].Log(1, sniffer.EvFetch, 0, 0)
	p.Events[1].Log(1, sniffer.EvFetch, 0, 0)
	if p.Ring.Len() != 2 {
		t.Errorf("ring has %d events", p.Ring.Len())
	}
}

func TestParallelModeFunctionalEquivalence(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Parallel = true
	p := MustNew(cfg)
	// Each core writes a distinct pattern, uses the barrier, then core 0
	// sums the per-core words.
	im := asm.MustAssemble(`
		li   r1, 0x22000000
		lw   r2, 0(r1)        ; core id
		lw   r3, 4(r1)        ; ncores
		addi r4, r2, 100
		li   r5, 0x10000000
		slli r6, r2, 2
		add  r5, r5, r6
		sw   r4, 0(r5)
		li   r7, 0x20000000
		lw   r8, 0(r7)
		sw   r0, 0(r7)
	spin:
		lw   r9, 0(r7)
		beq  r9, r8, spin
		bne  r2, r0, done
		li   r5, 0x10000000
		add  r10, r0, r0
	sum:
		lw   r11, 0(r5)
		add  r10, r10, r11
		addi r5, r5, 4
		subi r3, r3, 1
		bne  r3, r0, sum
		li   r5, 0x10000100
		sw   r10, 0(r5)
	done:
		halt
	`)
	for i := 0; i < 4; i++ {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	if _, done := p.RunParallel(256, 10_000_000); !done {
		t.Fatal("parallel run did not halt")
	}
	if err := p.Fault(); err != nil {
		t.Fatal(err)
	}
	// 100+101+102+103 = 406.
	if got := p.ReadSharedWord(0x100); got != 406 {
		t.Errorf("parallel sum = %d, want 406", got)
	}
}

func TestParallelModeRejectsEventLogging(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Parallel = true
	cfg.EventLogging = true
	if err := cfg.Validate(); err == nil {
		t.Error("parallel + event logging accepted")
	}
}

func TestRunParallelRequiresParallelConfig(t *testing.T) {
	p := MustNew(DefaultConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.RunParallel(0, 100)
}

func TestL2CacheReducesSharedStalls(t *testing.T) {
	prog := asm.MustAssemble(`
		li   r1, 0x10000000
		addi r2, r0, 200
	loop:
		lw   r3, 0(r1)       ; repeatedly read the same shared line
		lw   r4, 4(r1)
		subi r2, r2, 1
		bne  r2, r0, loop
		halt
	`)
	run := func(withL2 bool) uint64 {
		cfg := DefaultConfig(1)
		if withL2 {
			cfg.L2 = &mem.CacheConfig{Name: "l2", SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 4, HitLatency: 2}
		}
		p := MustNew(cfg)
		if err := p.LoadProgram(0, prog); err != nil {
			t.Fatal(err)
		}
		cycles, done := p.Run(10_000_000)
		if !done {
			t.Fatal("did not halt")
		}
		if withL2 {
			if len(p.L2s) != 1 {
				t.Fatal("L2 not instantiated")
			}
			st := p.L2s[0].Stats()
			if st.Hits == 0 {
				t.Error("L2 never hit")
			}
			if snap := p.Snapshot(); len(snap.L2s) != 1 {
				t.Error("snapshot missing L2 stats")
			}
		}
		return cycles
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("L2 did not speed up shared re-reads: %d vs %d cycles", with, without)
	}
}

func TestScratchpadRange(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ScratchKB = 4
	p := MustNew(cfg)
	im := asm.MustAssemble(`
		li   r1, 0x08000000
		addi r2, r0, 99
		sw   r2, 0(r1)
		lw   r3, 0(r1)
		li   r4, 0x10000000
		sw   r3, 0(r4)
		halt
	`)
	if err := p.LoadProgram(0, im); err != nil {
		t.Fatal(err)
	}
	if _, done := p.Run(10000); !done {
		t.Fatalf("did not halt (fault: %v)", p.Fault())
	}
	if got := p.ReadSharedWord(0); got != 99 {
		t.Errorf("scratchpad round trip = %d", got)
	}
}

func TestReportContents(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.L2 = &mem.CacheConfig{Name: "l2", SizeBytes: 8192, LineBytes: 32, Assoc: 2, HitLatency: 2}
	p := MustNew(cfg)
	im := asm.MustAssemble(`
		li   r1, 0x10000000
		addi r2, r0, 20
	loop:
		sw   r2, 0(r1)
		lw   r3, 0(r1)
		subi r2, r2, 1
		bne  r2, r0, loop
		halt
	`)
	for i := 0; i < 2; i++ {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	p.Run(1_000_000)
	rep := p.Report()
	for _, want := range []string{"processing cores:", "IPC", "memory subsystem:",
		"icache0", "dcache1", "l2_0", "memctl0", "shared memory:", "interconnect:",
		"opb bus:", "virtual platform clock:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestHeterogeneousCores(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.CoreKinds = Table3Cores(4)
	p := MustNew(cfg)
	if p.Cores[0].Kind() != cpu.PPC405 {
		t.Errorf("core 0 = %v, want ppc405", p.Cores[0].Kind())
	}
	for i := 1; i < 4; i++ {
		if p.Cores[i].Kind() != cpu.Microblaze {
			t.Errorf("core %d = %v, want microblaze", i, p.Cores[i].Kind())
		}
	}
	// Mixed issue widths run the same binary correctly.
	cfg.CoreKinds = []cpu.Kind{cpu.VLIW2, cpu.Microblaze}
	cfg.Cores = 2
	p = MustNew(cfg)
	im := asm.MustAssemble(`
		li  r1, 0x10000000
		li  r2, 0x22000000
		lw  r3, 0(r2)
		slli r4, r3, 2
		add r1, r1, r4
		addi r5, r0, 7
		sw  r5, 0(r1)
		halt
	`)
	for i := 0; i < 2; i++ {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	if _, done := p.Run(10000); !done {
		t.Fatal("did not halt")
	}
	for i := uint32(0); i < 2; i++ {
		if got := p.ReadSharedWord(4 * i); got != 7 {
			t.Errorf("core %d result = %d", i, got)
		}
	}
	if p.Cores[0].Stats().Paired == 0 {
		t.Error("VLIW core never paired")
	}
	if p.Cores[1].Stats().Paired != 0 {
		t.Error("scalar core paired")
	}
}
