package emu_test

// FuzzPlatformStep feeds random short programs to a two-core platform and
// asserts that the per-cycle sweep (StepOne), the serial skip-ahead kernel
// and the deterministic parallel kernel all produce bit-identical golden
// digests — including when the program faults, loops forever, hammers the
// barrier or races both cores over shared memory. This is the adversarial
// counterpart of the hand-written differential matrix.

import (
	"encoding/binary"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/isa"
)

// fuzzImage builds a loadable image: a prologue that points registers at
// the shared memory, barrier and sniffer-control ranges (so random
// instructions actually exercise the arbited paths), the fuzz payload, and
// a HALT fence.
func fuzzImage(payload []byte) *asm.Image {
	words := []uint32{
		isa.Encode(isa.Instr{Op: isa.OpLui, Rd: 1, Imm: 0x1000}), // r1 = SharedBase
		isa.Encode(isa.Instr{Op: isa.OpLui, Rd: 2, Imm: 0x2000}), // r2 = BarrierBase
		isa.Encode(isa.Instr{Op: isa.OpLui, Rd: 3, Imm: 0x2100}), // r3 = SniffBase
		isa.Encode(isa.Instr{Op: isa.OpAddi, Rd: 4, Rs1: 0, Imm: 0x40}),
	}
	for len(payload) >= 4 {
		words = append(words, binary.LittleEndian.Uint32(payload[:4]))
		payload = payload[4:]
	}
	words = append(words, isa.Encode(isa.Instr{Op: isa.OpHalt}))
	data := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(data[4*i:], w)
	}
	return &asm.Image{Entry: 0, Sections: []asm.Section{{Addr: 0, Data: data}}}
}

func FuzzPlatformStep(f *testing.F) {
	f.Add([]byte{})
	// A store to shared memory and a barrier arrival.
	f.Add(append(
		u32le(isa.Encode(isa.Instr{Op: isa.OpSw, Rd: 4, Rs1: 1, Imm: 0})),
		u32le(isa.Encode(isa.Instr{Op: isa.OpSw, Rd: 0, Rs1: 2, Imm: 0}))...))
	// A swap (read-modify-write) on shared memory and a backward branch.
	f.Add(append(
		u32le(isa.Encode(isa.Instr{Op: isa.OpSwap, Rd: 4, Rs1: 1, Imm: 8})),
		u32le(isa.Encode(isa.Instr{Op: isa.OpBne, Rs1: 4, Rs2: 0, Imm: -2}))...))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 256 {
			payload = payload[:256]
		}
		im := fuzzImage(payload)
		const (
			maxCycles = 3000
			every     = 64
			chunk     = 16
		)
		run := func(drive func(p *emu.Platform, tr *golden.Trace)) *golden.Trace {
			parallel := drive == nil
			cfg := emu.DefaultConfig(2)
			cfg.Parallel = parallel
			p := emu.MustNew(cfg)
			for c := range p.Cores {
				if err := p.LoadProgram(c, im); err != nil {
					t.Fatal(err)
				}
			}
			tr := golden.NewJournal()
			if parallel {
				p.RunParallelDigest(chunk, maxCycles, every, tr)
			} else {
				drive(p, tr)
			}
			return tr
		}
		perCycle := run(func(p *emu.Platform, tr *golden.Trace) {
			stepOneDigest(p, maxCycles, every, tr)
		})
		serial := run(func(p *emu.Platform, tr *golden.Trace) {
			p.RunDigest(maxCycles, every, tr)
		})
		single := run(func(p *emu.Platform, tr *golden.Trace) {
			stepWindowDigest(p, maxCycles, every, 1, tr)
		})
		par := run(nil)
		if d := golden.Compare(perCycle, serial); d != nil {
			t.Fatalf("skip-ahead kernel diverges from per-cycle sweep: %s", d)
		}
		if d := golden.Compare(perCycle, single); d != nil {
			t.Fatalf("Step(1) windows diverge from per-cycle sweep: %s", d)
		}
		if d := golden.Compare(perCycle, par); d != nil {
			t.Fatalf("parallel kernel diverges from per-cycle sweep: %s", d)
		}
	})
}

func u32le(w uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, w)
	return b
}
