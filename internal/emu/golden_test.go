package emu_test

// Differential conformance matrix for the deterministic parallel kernel:
// every seed workload, on both interconnect families, at 1/2/4 cores, must
// produce bit-identical golden digests from the serial kernel, from serial
// stepping of a Parallel-built platform, and from RunParallel at every
// chunk size — run after run. Failures report the first divergent cycle,
// core and field via the journaled traces.

import (
	"fmt"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/mem"
	"thermemu/internal/workloads"
)

const (
	diffMaxCycles = 5_000_000
	diffEvery     = 256 // sampling period shared by all runs under test
)

// diffParams sizes every corpus workload small enough that the whole
// matrix stays fast under -race even at chunk size 1.
var diffParams = workloads.Params{N: 4, Iters: 4, Size: 8, Words: 16}

// diffSpec builds one registry workload at diff-matrix scale. The kind is
// any registered corpus name, so new workloads join the differential tier
// by registering, not by editing this file.
func diffSpec(t *testing.T, kind string, cores int) *workloads.Spec {
	t.Helper()
	p := diffParams
	p.Cores = cores
	s, err := workloads.Build(kind, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// diffKinds returns every corpus workload runnable on `cores` cores.
func diffKinds(cores int) []string {
	var kinds []string
	for _, name := range workloads.Names() {
		if b, _ := workloads.Lookup(name); b.MinCores > cores {
			continue
		}
		kinds = append(kinds, name)
	}
	return kinds
}

func diffConfig(cores int, noc, parallel bool) emu.Config {
	cfg := emu.DefaultConfig(cores)
	cfg.Parallel = parallel
	if noc {
		cfg.IC = emu.ICNoC
		cfg.NoC = emu.Table3NoC(cores)
	}
	return cfg
}

func loadSpec(t *testing.T, p *emu.Platform, s *workloads.Spec) {
	t.Helper()
	for i, im := range s.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range s.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
}

// digestRun executes a fresh platform over the workload and returns its
// journaled golden trace. run receives the platform and must drive it to
// completion, returning the end cycle and the all-halted flag.
func digestRun(t *testing.T, cfg emu.Config, s *workloads.Spec,
	run func(p *emu.Platform, tr *golden.Trace) (uint64, bool)) *golden.Trace {
	t.Helper()
	p := emu.MustNew(cfg)
	loadSpec(t, p, s)
	tr := golden.NewJournal()
	cycles, done := run(p, tr)
	if err := p.Fault(); err != nil {
		t.Fatalf("platform fault after %d cycles: %v", cycles, err)
	}
	if !done {
		t.Fatalf("workload %s did not finish in %d cycles", s.Name, diffMaxCycles)
	}
	if s.Verify != nil {
		if err := s.Verify(p.ReadSharedWord); err != nil {
			t.Fatalf("verification failed after %d cycles: %v", cycles, err)
		}
	}
	return tr
}

func TestDifferentialSerialVsParallel(t *testing.T) {
	for _, ic := range []struct {
		name string
		noc  bool
	}{{"bus", false}, {"noc", true}} {
		for _, cores := range []int{1, 2, 4} {
			for _, kind := range diffKinds(cores) {
				t.Run(fmt.Sprintf("%s/%s/%dc", ic.name, kind, cores), func(t *testing.T) {
					spec := diffSpec(t, kind, cores)
					want := digestRun(t, diffConfig(cores, ic.noc, false), spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return p.RunDigest(diffMaxCycles, diffEvery, tr)
						})

					// Serial stepping of a Parallel-built platform: the
					// shared-path gates must be transparent.
					got := digestRun(t, diffConfig(cores, ic.noc, true), spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return p.RunDigest(diffMaxCycles, diffEvery, tr)
						})
					if d := golden.Compare(want, got); d != nil {
						t.Errorf("serial step of parallel platform diverges: %s", d)
					}

					for _, chunk := range []uint64{1, 64, emu.DefaultChunk} {
						chunk := chunk
						got := digestRun(t, diffConfig(cores, ic.noc, true), spec,
							func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
								return p.RunParallelDigest(chunk, diffMaxCycles, diffEvery, tr)
							})
						if d := golden.Compare(want, got); d != nil {
							t.Errorf("chunk %d diverges from serial: %s", chunk, d)
						}
					}

					// Block-dispatch columns: the same workload with
					// threaded-code blocks enabled, serial and parallel,
					// must match the interpreted serial reference
					// bit-for-bit.
					blkSerial := diffConfig(cores, ic.noc, false)
					blkSerial.Blocks = true
					gotBlk := digestRun(t, blkSerial, spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return p.RunDigest(diffMaxCycles, diffEvery, tr)
						})
					if d := golden.Compare(want, gotBlk); d != nil {
						t.Errorf("serial blocks diverge from interpreter: %s", d)
					}
					blkPar := diffConfig(cores, ic.noc, true)
					blkPar.Blocks = true
					gotBlkPar := digestRun(t, blkPar, spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return p.RunParallelDigest(64, diffMaxCycles, diffEvery, tr)
						})
					if d := golden.Compare(want, gotBlkPar); d != nil {
						t.Errorf("parallel blocks diverge from interpreter: %s", d)
					}
				})
			}
		}
	}
}

// TestParallelReproducible asserts run-to-run determinism of the parallel
// kernel itself: two identical parallel runs must produce identical digests
// (the old kernel resolved contention in host-arrival order and failed
// this).
func TestParallelReproducible(t *testing.T) {
	spec := diffSpec(t, "locks", 4)
	run := func() *golden.Trace {
		return digestRun(t, diffConfig(4, false, true), spec,
			func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
				return p.RunParallelDigest(64, diffMaxCycles, diffEvery, tr)
			})
	}
	a, b := run(), run()
	if d := golden.Compare(a, b); d != nil {
		t.Fatalf("parallel kernel is not reproducible: %s", d)
	}
}

// TestParallelL2Differential covers the L2-equipped shared path (cache fill
// plus write-back inside one granted instruction).
func TestParallelL2Differential(t *testing.T) {
	spec := diffSpec(t, "dithering", 4)
	mk := func(parallel bool) emu.Config {
		cfg := diffConfig(4, false, parallel)
		cfg.SharedCacheable = true
		cfg.L2 = &mem.CacheConfig{Name: "l2", SizeBytes: 8 * 1024, LineBytes: 16, Assoc: 2, HitLatency: 1}
		return cfg
	}
	want := digestRun(t, mk(false), spec,
		func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
			return p.RunDigest(diffMaxCycles, diffEvery, tr)
		})
	got := digestRun(t, mk(true), spec,
		func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
			return p.RunParallelDigest(64, diffMaxCycles, diffEvery, tr)
		})
	if d := golden.Compare(want, got); d != nil {
		t.Fatalf("L2 shared path diverges: %s", d)
	}
}
