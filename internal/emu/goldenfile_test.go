package emu_test

// Cross-PR golden-file regression suite: the digests of the Table 3
// benchmark programs and the Figure 6 thermal run are committed under
// testdata/golden/; any behavioural drift in the emulator — one extra stall
// cycle, one different cache miss — fails CI loudly. Regenerate after an
// intentional timing-model change with:
//
//	go test ./internal/emu/ -run TestGoldenFiles -update
//
// Each case is digested twice, by the serial kernel and by the parallel
// kernel, and both must match the committed file.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden digest files")

type goldenCase struct {
	name     string
	workload string // registry name, also the corpus-coverage key
	params   workloads.Params
	cfg      func() emu.Config
}

func (gc goldenCase) spec() (*workloads.Spec, error) {
	p := gc.params
	p.Cores = 4
	return workloads.Build(gc.workload, p)
}

func goldenCases() []goldenCase {
	table3 := func(noc bool) func() emu.Config {
		return func() emu.Config {
			cfg := emu.DefaultConfig(4)
			cfg.CoreKinds = emu.Table3Cores(4)
			cfg.Parallel = true
			if noc {
				cfg.IC = emu.ICNoC
				cfg.NoC = emu.Table3NoC(4)
			}
			return cfg
		}
	}
	fig6 := func() emu.Config {
		cfg := emu.Fig6Config()
		cfg.Parallel = true
		return cfg
	}
	return []goldenCase{
		{"table3-matrix-bus", "matrix", workloads.Params{N: 8, Iters: 2, PrivKB: 64}, table3(false)},
		{"table3-matrix-noc", "matrix", workloads.Params{N: 8, Iters: 2, PrivKB: 64}, table3(true)},
		{"table3-dithering-bus", "dithering", workloads.Params{Size: 16}, table3(false)},
		{"table3-dithering-noc", "dithering", workloads.Params{Size: 16}, table3(true)},
		{"table3-locks-bus", "locks", workloads.Params{Iters: 16}, table3(false)},
		{"table3-membound-bus", "membound", workloads.Params{Words: 64, Iters: 4}, table3(false)},
		{"table3-fir-noc", "fir", workloads.Params{N: 8, Words: 64, Iters: 2}, table3(true)},
		{"table3-histogram-bus", "histogram", workloads.Params{N: 16, Words: 64}, table3(false)},
		{"table3-pipeline-noc", "pipeline", workloads.Params{Words: 64}, table3(true)},
		{"fig6-matrixtm-noc", "matrix-tm", workloads.Params{N: 8, Iters: 4, PrivKB: 32}, fig6},
	}
}

// TestGoldenCorpusCoverage pins the invariant that every registered corpus
// workload has at least one committed golden digest: registering a workload
// without adding a golden case fails here, not in review.
func TestGoldenCorpusCoverage(t *testing.T) {
	covered := map[string]bool{}
	for _, gc := range goldenCases() {
		covered[gc.workload] = true
	}
	for _, name := range workloads.Names() {
		if !covered[name] {
			t.Errorf("corpus workload %q has no golden-file case", name)
		}
	}
}

func goldenDigest(t *testing.T, gc goldenCase, parallel bool) *golden.Trace {
	t.Helper()
	spec, err := gc.spec()
	if err != nil {
		t.Fatal(err)
	}
	p := emu.MustNew(gc.cfg())
	loadSpec(t, p, spec)
	tr := golden.New()
	var done bool
	if parallel {
		_, done = p.RunParallelDigest(emu.DefaultChunk, 20_000_000, 1024, tr)
	} else {
		_, done = p.RunDigest(20_000_000, 1024, tr)
	}
	if err := p.Fault(); err != nil {
		t.Fatalf("platform fault: %v", err)
	}
	if !done {
		t.Fatalf("workload %s did not finish", spec.Name)
	}
	if spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			t.Fatalf("verification failed: %v", err)
		}
	}
	return tr
}

func TestGoldenFiles(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			serial := goldenDigest(t, gc, false)
			line := fmt.Sprintf("%s %d\n", serial.Hex(), serial.Len())
			path := filepath.Join("testdata", "golden", gc.name+".digest")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %s", path, line)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if string(want) != line {
				t.Errorf("serial digest drift:\n  got  %s  want %s", line, want)
			}
			par := goldenDigest(t, gc, true)
			if pline := fmt.Sprintf("%s %d\n", par.Hex(), par.Len()); string(want) != pline {
				t.Errorf("parallel digest drift:\n  got  %s  want %s", pline, want)
			}
		})
	}
}
