package emu

import (
	"fmt"
	"strings"
)

// Report renders the "detailed cycle-accurate report" of the platform's
// count-logging statistics — the deliverable the paper's designers extract
// from a run: processing cores, memory subsystem and interconnection
// mechanisms, the three architectural levels of Section 1.
func (p *Platform) Report() string {
	var b strings.Builder
	cyc := p.VPCM.Cycle()
	fmt.Fprintf(&b, "platform: %d x %s @ %d MHz, %s interconnect, %d cycles (%.6f s virtual)\n",
		len(p.Cores), p.Cfg.CoreKind, p.VPCM.Frequency()/1e6, p.Cfg.IC, cyc, p.VPCM.Time())

	fmt.Fprintf(&b, "\nprocessing cores:\n")
	fmt.Fprintf(&b, "  %-6s %12s %6s %7s %7s %7s %10s %10s %8s\n",
		"core", "instr", "IPC", "active", "stall", "idle", "loads", "stores", "paired")
	for i, c := range p.Cores {
		st := c.Stats()
		total := st.Cycles()
		pct := func(v uint64) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(v) / float64(total)
		}
		ipc := 0.0
		if total > 0 {
			ipc = float64(st.Instructions) / float64(total)
		}
		fmt.Fprintf(&b, "  %-6d %12d %6.3f %6.1f%% %6.1f%% %6.1f%% %10d %10d %8d\n",
			i, st.Instructions, ipc, pct(st.ActiveCycles), pct(st.StallCycles),
			pct(st.IdleCycles), st.Loads, st.Stores, st.Paired)
	}

	fmt.Fprintf(&b, "\nmemory subsystem:\n")
	fmt.Fprintf(&b, "  %-10s %12s %9s %12s %12s\n", "cache", "accesses", "hit rate", "evictions", "writebacks")
	for i, ctl := range p.Ctrls {
		if ic := ctl.ICache(); ic != nil {
			s := ic.Stats()
			fmt.Fprintf(&b, "  icache%-4d %12d %8.1f%% %12d %12d\n",
				i, s.Accesses(), 100*(1-s.MissRate()), s.Evictions, s.Writebacks)
		}
		if dc := ctl.DCache(); dc != nil {
			s := dc.Stats()
			fmt.Fprintf(&b, "  dcache%-4d %12d %8.1f%% %12d %12d\n",
				i, s.Accesses(), 100*(1-s.MissRate()), s.Evictions, s.Writebacks)
		}
	}
	for i, l2 := range p.L2s {
		s := l2.Stats()
		fmt.Fprintf(&b, "  l2_%-7d %12d %8.1f%% %12d %12d\n",
			i, s.Accesses(), 100*(1-s.MissRate()), s.Evictions, s.Writebacks)
	}
	fmt.Fprintf(&b, "  %-10s %12s %12s %12s %12s\n", "controller", "fetches", "private r/w", "shared r/w", "stall cyc")
	for i, ctl := range p.Ctrls {
		s := ctl.Stats()
		fmt.Fprintf(&b, "  memctl%-4d %12d %5d/%-6d %5d/%-6d %12d\n",
			i, s.Fetches, s.PrivateReads, s.PrivateWrits, s.SharedReads, s.SharedWrits, s.StallCycles)
	}
	sm := p.Shared.Stats()
	fmt.Fprintf(&b, "  shared memory: %d reads, %d writes\n", sm.Reads, sm.Writes)

	fmt.Fprintf(&b, "\ninterconnect:\n")
	switch {
	case p.Bus != nil:
		s := p.Bus.Stats()
		fmt.Fprintf(&b, "  %s bus: %d transactions (%d r / %d w), %d beats, %d wait cycles, %.1f%% utilised\n",
			p.Bus.Name(), s.Transactions, s.Reads, s.Writes, s.BeatsCarried,
			s.WaitCycles, 100*p.Bus.Utilisation(cyc))
	case p.Net != nil:
		s := p.Net.Stats()
		fmt.Fprintf(&b, "  %s NoC: %d packets, %d flits (%d OCP reads, %d OCP writes), %d hops, %d wait cycles\n",
			p.Net.Topology().Name, s.Packets, s.Flits, s.OCPReads, s.OCPWrites,
			s.HopsTraveled, s.WaitCycles)
		for i, lu := range p.Net.LinkUtilisation() {
			if i >= 3 || lu.Cycles == 0 {
				break
			}
			fmt.Fprintf(&b, "    busiest link %d->%d: %d busy cycles\n",
				lu.Link.From, lu.Link.To, lu.Cycles)
		}
	}

	if p.Cfg.Speculate {
		st := p.SpecStats()
		fmt.Fprintf(&b, "\nspeculative kernel:\n")
		clean := 0.0
		if st.SpecChunks > 0 {
			clean = 100 * float64(st.CleanChunks) / float64(st.SpecChunks)
		}
		fmt.Fprintf(&b, "  %d chunks speculated (%.1f%% clean: %d committed, %d conflicts, %d poisoned), %d replays, %d gated\n",
			st.SpecChunks, clean, st.CleanChunks, st.Conflicts, st.Poisoned, st.Replays, st.GatedChunks)
		fmt.Fprintf(&b, "  %d shared-path ops logged; arbiter: %d parks, %d grants\n",
			st.LogEntries, st.Parks, st.Grants)
	}

	fmt.Fprintf(&b, "\nvirtual platform clock:\n")
	fmt.Fprintf(&b, "  %s, %d DFS events, %d suppression cycles\n",
		p.VPCM, p.VPCM.DFSEvents(), p.VPCM.SuppressionCycles())
	if p.Hub.Len() > 0 {
		enabled := 0
		for i := 0; i < p.Hub.Len(); i++ {
			if p.Hub.Get(i).Enabled() {
				enabled++
			}
		}
		var logged, dropped uint64
		for _, es := range p.Events {
			logged += es.Logged
			dropped += es.Dropped
		}
		fmt.Fprintf(&b, "  sniffers: %d registered (%d enabled), %d events logged, %d dropped, ring %d/%d\n",
			p.Hub.Len(), enabled, logged, dropped, p.Ring.Len(), p.Ring.Cap())
	}
	return b.String()
}
