package emu

// This file implements the deterministic parallel kernel (RunParallel):
// a two-phase step/commit loop over the cores of the platform.
//
// Phase 1 (free run): within a chunk every core steps on its own goroutine
// against strictly private state — registers, private memory, scratchpad,
// L1 caches, stall counters. This is the batched direct-dispatch fast path:
// private-only instruction runs pay no synchronisation at all, mirroring the
// FPGA's spatial parallelism where each core tile clocks independently.
//
// Phase 2 (arbited commit): the moment a core's instruction would touch a
// shared resource (shared memory, the bus/NoC interconnect, the barrier or
// the sniffer control registers) it parks *before* the first side effect and
// reports its issue cycle to the arbiter. Only when every core is parked or
// finished with the chunk does the arbiter grant the parked core with the
// smallest (cycle, coreID) — at that point no core can still park at an
// earlier position, so grants replay exactly the serial kernel's
// interleaving (StepOne steps cores in ID order within a cycle). The granted
// core performs its whole instruction — including cache fills, write-backs
// and read-modify-write swaps — exclusively, then free-runs again until its
// next shared touch or the chunk boundary.
//
// Because the commit order, the cycle stamps handed to the interconnect and
// the stall feedback into each core are all identical to the serial kernel,
// every architectural and statistical observable is bit-identical to Run —
// at any chunk size — which the golden-trace conformance suite asserts.

import (
	"thermemu/internal/cpu"
	"thermemu/internal/mem"
)

// skipStall settles core c's outstanding memory-stall span in one bulk
// charge, bounded by chunkEnd (exclusive) — the exact equivalent of
// stepping the core cycle-by-cycle from `from` while it stalls. It returns
// the cycles skipped and adds them to *skipped. Halted cores consume no
// stall (the kernels charge them idle time instead), matching the halt
// check at the top of cpu.Core.Step.
func skipStall(c *cpu.Core, from, chunkEnd uint64, skipped *uint64) uint64 {
	if c.Halted() || from >= chunkEnd {
		return 0
	}
	span := c.StallRemaining()
	if span == 0 {
		return 0
	}
	if left := chunkEnd - from; span > left {
		span = left
	}
	c.AccrueStall(span)
	*skipped += span
	return span
}

type schedEventKind int

const (
	evPark schedEventKind = iota // core stopped before a shared access
	evDone                       // core finished (or halted out of) the chunk
)

type schedEvent struct {
	kind schedEventKind
	core int
	// cycle is the issue cycle of the blocked access (evPark) or the first
	// cycle the core did not execute (evDone).
	cycle uint64
}

// coreGate is the per-core rendezvous between the core's runner goroutine
// and the arbiter. cycle and held are only touched by the runner (the gate
// methods execute on the runner's goroutine, from inside Core.Step).
type coreGate struct {
	sched *scheduler
	core  int
	cycle uint64 // platform cycle of the Step in progress
	held  bool   // this Step already holds the shared-path grant
	// solo is set by the arbiter (before the grant send that publishes it)
	// when every other core has finished the chunk: the last core standing
	// is trivially in serial order, so its remaining accesses skip
	// arbitration entirely. Reset after the chunk joins.
	solo  bool
	grant chan struct{} // arbiter -> runner: proceed
}

// enter blocks until the arbiter grants this core the shared path. It is a
// no-op outside RunParallel (running false: serial stepping of a parallel
// platform needs no arbitration) and for the second and later shared
// accesses of one instruction (held: the grant spans the whole Step, so a
// cache fill plus write-back, or a swap's read-modify-write, commits
// atomically exactly as it does serially).
func (g *coreGate) enter() {
	s := g.sched
	if !s.running || g.held || g.solo {
		return
	}
	g.held = true
	s.events <- schedEvent{kind: evPark, core: g.core, cycle: g.cycle}
	<-g.grant
}

// scheduler holds the arbitration state of one parallel platform. Buffers
// are reused across chunks to keep the steady-state kernel allocation-free.
type scheduler struct {
	// running is true only while runner goroutines are live. It is toggled
	// exclusively when no runners exist (before spawning / after joining),
	// with the spawn and the join providing the happens-before edges.
	running bool
	events  chan schedEvent
	gates   []*coreGate
	doneAt  []uint64
	// skipped holds per-core stall cycles settled in bulk this chunk; each
	// runner writes only its own slot, and the evDone send/receive orders
	// those writes before the arbiter sums them into the skip telemetry.
	skipped []uint64
	pending []schedEvent
	// parks/grants count arbiter traffic for the speculation/parallel
	// telemetry (SpecStats); both are touched only on the arbiter's
	// goroutine.
	parks  uint64
	grants uint64
}

func newScheduler(cores int) *scheduler {
	s := &scheduler{
		events:  make(chan schedEvent, cores),
		doneAt:  make([]uint64, cores),
		skipped: make([]uint64, cores),
	}
	for i := 0; i < cores; i++ {
		s.gates = append(s.gates, &coreGate{sched: s, core: i, grant: make(chan struct{})})
	}
	return s
}

// gated wraps a shared-path Target so that the first access of each
// instruction parks the core until the arbiter serialises it into (cycle,
// coreID) order. Size never parks: the controller probes it on every access
// to resolve the address range, and AddRange probes it at build time before
// any scheduler exists.
type gated struct {
	gate  *coreGate
	under mem.Target
}

// Latency implements mem.Target.
func (t *gated) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	t.gate.enter()
	return t.under.Latency(now, addr, bytes, write)
}

// LoadWord implements mem.Target.
func (t *gated) LoadWord(addr uint32) uint32 {
	t.gate.enter()
	return t.under.LoadWord(addr)
}

// StoreWord implements mem.Target.
func (t *gated) StoreWord(addr uint32, v uint32) {
	t.gate.enter()
	t.under.StoreWord(addr, v)
}

// LoadByte implements mem.Target.
func (t *gated) LoadByte(addr uint32) byte {
	t.gate.enter()
	return t.under.LoadByte(addr)
}

// StoreByte implements mem.Target.
func (t *gated) StoreByte(addr uint32, b byte) {
	t.gate.enter()
	t.under.StoreByte(addr, b)
}

// Size implements mem.Target (never parks; see type comment).
func (t *gated) Size() uint32 { return t.under.Size() }

// runChunk executes one deterministic epoch of up to n cycles starting at
// platform cycle base and returns the cycles actually covered. The return
// value is short of n only when every core halted inside the chunk, in which
// case it is trimmed to exactly where the serial kernel would have stopped
// (one past the cycle of the last HALT). The caller advances the VPCM.
func (p *Platform) runChunk(base, n uint64) uint64 {
	s := p.sched
	// Direct-dispatch fast path: a single core needs no arbitration (its
	// accesses are trivially in serial order), so step it inline with the
	// gates left transparent and skip the goroutine machinery entirely.
	if len(p.Cores) == 1 {
		c := p.Cores[0]
		cyc := base
		chunkEnd := base + n
		cyc += skipStall(c, cyc, chunkEnd, &p.skip.SkippedCycles)
		for cyc < chunkEnd && !c.Halted() {
			if p.Cfg.Blocks {
				// A lone core's accesses are trivially in serial order, so
				// translated blocks may run to the chunk boundary; the gates
				// are transparent here (the scheduler is not running).
				if bn, bsteps, bskip := c.StepBlocks(cyc, chunkEnd-cyc); bn > 0 {
					cyc += bn
					p.skip.CoreSteps += bsteps
					p.skip.EventCycles += bsteps
					p.skip.SkippedCycles += bskip
					continue
				}
			}
			c.Step(cyc)
			p.skip.CoreSteps++
			p.skip.EventCycles++
			cyc++
			if c.StallRemaining() > 0 {
				cyc += skipStall(c, cyc, chunkEnd, &p.skip.SkippedCycles)
			}
		}
		s.doneAt[0] = cyc
		end := chunkEnd
		if c.Halted() {
			end = cyc
		}
		c.AccrueIdle(end - cyc)
		return end - base
	}
	s.running = true
	for id := range p.Cores {
		go func(id int) {
			c := p.Cores[id]
			g := s.gates[id]
			cyc := base
			end := base + n
			// Stall spans touch no shared state and cannot park, so each
			// runner skips its own in bulk — including a span carried in
			// from the previous chunk — without perturbing the arbiter's
			// (cycle, coreID) commit order.
			var skipped uint64
			cyc += skipStall(c, cyc, end, &skipped)
			for cyc < end && !c.Halted() {
				if p.Cfg.Blocks {
					// Block dispatch inside the free-run phase: the issue
					// hook refreshes the gate before every instruction, so
					// shared touches park exactly as they do under Step.
					if bn, _, bskip := c.StepBlocks(cyc, end-cyc); bn > 0 {
						cyc += bn
						skipped += bskip
						continue
					}
				}
				g.cycle = cyc
				g.held = false
				c.Step(cyc)
				cyc++
				if c.StallRemaining() > 0 {
					cyc += skipStall(c, cyc, end, &skipped)
				}
			}
			s.skipped[id] = skipped
			s.events <- schedEvent{kind: evDone, core: id, cycle: cyc}
		}(id)
	}

	// Arbiter: drain park/done events; grant strictly in (cycle, coreID)
	// order, and only when no core is free-running — then no core can still
	// park at an earlier position, so the grant order equals serial order.
	running := len(p.Cores)
	done := 0
	pending := s.pending[:0]
	for running > 0 || len(pending) > 0 {
		if running == 0 {
			best := 0
			for i := 1; i < len(pending); i++ {
				if pending[i].cycle < pending[best].cycle ||
					(pending[i].cycle == pending[best].cycle && pending[i].core < pending[best].core) {
					best = i
				}
			}
			grant := pending[best]
			pending[best] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			if len(pending) == 0 && done == len(p.Cores)-1 {
				// Last core standing: no other core can issue a shared
				// access this chunk, so arbitration is unnecessary — let it
				// free-run to the chunk boundary (published by the grant).
				s.gates[grant.core].solo = true
			}
			running++
			s.grants++
			s.gates[grant.core].grant <- struct{}{}
		}
		ev := <-s.events
		running--
		switch ev.kind {
		case evPark:
			s.parks++
			pending = append(pending, ev)
		case evDone:
			s.doneAt[ev.core] = ev.cycle
			done++
		}
	}
	s.pending = pending[:0]
	s.running = false
	for _, g := range s.gates {
		g.solo = false
	}
	for i := range s.skipped {
		p.skip.SkippedCycles += s.skipped[i]
		s.skipped[i] = 0
	}

	// Halt trimming: the serial kernel stops as soon as every core has
	// halted, so when this chunk ran everything to completion the epoch ends
	// at the latest cycle any core still executed, not at the chunk
	// boundary. Cores that stopped earlier are then charged the idle cycles
	// they would have accumulated being stepped while halted.
	end := base + n
	if p.AllHalted() {
		end = base
		for _, d := range s.doneAt {
			if d > end {
				end = d
			}
		}
	}
	for i, c := range p.Cores {
		c.AccrueIdle(end - s.doneAt[i])
	}
	return end - base
}
