package emu_test

// Conformance suite for the event-driven skip-ahead kernel: Step/Run must
// be bit-identical to the retired per-cycle sweep (StepOne), which stays in
// the tree as the executable reference. Every statistic, event log and
// activity counter is compared — not just architectural state — because
// the skip kernel settles stall/idle spans in bulk and the accrual
// bookkeeping is exactly what could silently drift.

import (
	"fmt"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/sniffer"
	"thermemu/internal/workloads"
)

// stepOneDigest drives the platform one cycle at a time with StepOne — the
// per-cycle reference sweep — while journaling digests at exactly the same
// window boundaries as Platform.RunDigest, so the two traces are directly
// comparable.
func stepOneDigest(p *emu.Platform, maxCycles, every uint64, tr *golden.Trace) (uint64, bool) {
	for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
		n := every
		if left := maxCycles - p.VPCM.Cycle(); n > left {
			n = left
		}
		target := p.VPCM.Cycle() + n
		for p.VPCM.Cycle() < target && !p.AllHalted() {
			p.StepOne()
		}
		emu.DigestSnapshot(tr, p.Snapshot())
	}
	p.DigestInto(tr)
	return p.VPCM.Cycle(), p.AllHalted()
}

// stepWindowDigest drives the platform through the skip-ahead kernel in
// windows of `step` cycles (cutting stall spans at arbitrary boundaries),
// journaling at `every`-cycle boundaries like RunDigest.
func stepWindowDigest(p *emu.Platform, maxCycles, every, step uint64, tr *golden.Trace) (uint64, bool) {
	for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
		n := every
		if left := maxCycles - p.VPCM.Cycle(); n > left {
			n = left
		}
		target := p.VPCM.Cycle() + n
		for p.VPCM.Cycle() < target && !p.AllHalted() {
			w := step
			if left := target - p.VPCM.Cycle(); w > left {
				w = left
			}
			p.Step(w)
		}
		emu.DigestSnapshot(tr, p.Snapshot())
	}
	p.DigestInto(tr)
	return p.VPCM.Cycle(), p.AllHalted()
}

// TestSkipAheadMatchesPerCycle is the core bit-identity claim: for every
// seed workload, interconnect family and core count, the skip-ahead kernel
// produces the same golden trace as the per-cycle sweep — when driven in
// one span, in single-cycle Step(1) windows (a boundary flush every cycle)
// and in odd-sized windows that cut stall spans mid-flight.
func TestSkipAheadMatchesPerCycle(t *testing.T) {
	for _, ic := range []struct {
		name string
		noc  bool
	}{{"bus", false}, {"noc", true}} {
		for _, cores := range []int{1, 2, 4} {
			for _, kind := range diffKinds(cores) {
				t.Run(fmt.Sprintf("%s/%s/%dc", ic.name, kind, cores), func(t *testing.T) {
					spec := diffSpec(t, kind, cores)
					want := digestRun(t, diffConfig(cores, ic.noc, false), spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return stepOneDigest(p, diffMaxCycles, diffEvery, tr)
						})
					for _, step := range []uint64{0, 1, 7} {
						step := step
						name := "run"
						if step > 0 {
							name = fmt.Sprintf("step=%d", step)
						}
						got := digestRun(t, diffConfig(cores, ic.noc, false), spec,
							func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
								if step == 0 {
									return p.RunDigest(diffMaxCycles, diffEvery, tr)
								}
								return stepWindowDigest(p, diffMaxCycles, diffEvery, step, tr)
							})
						if d := golden.Compare(want, got); d != nil {
							t.Errorf("skip-ahead (%s) diverges from per-cycle sweep: %s", name, d)
						}
					}
				})
			}
		}
	}
}

// TestEventLogsIdenticalUnderSkipAhead runs an event-logging platform under
// both kernels and compares the BRAM event streams verbatim: same events,
// same cycle stamps, same order. Bulk accrual must not perturb logging
// because stalled and halted cores issue no accesses.
func TestEventLogsIdenticalUnderSkipAhead(t *testing.T) {
	spec := diffSpec(t, "membound", 2)
	const maxCycles = 200_000
	run := func(perCycle bool) []sniffer.Event {
		cfg := diffConfig(2, false, false)
		cfg.EventLogging = true
		cfg.EventBufCap = 1 << 20
		p := emu.MustNew(cfg)
		loadSpec(t, p, spec)
		if perCycle {
			for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
				p.StepOne()
			}
		} else {
			p.Run(maxCycles)
		}
		if !p.AllHalted() {
			t.Fatalf("workload %s did not finish in %d cycles", spec.Name, uint64(maxCycles))
		}
		out := make([]sniffer.Event, p.Ring.Len())
		p.Ring.Drain(out)
		return out
	}
	want := run(true)
	got := run(false)
	if len(want) == 0 {
		t.Fatal("per-cycle run logged no events")
	}
	if len(want) != len(got) {
		t.Fatalf("event counts diverge: per-cycle %d, skip-ahead %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d diverges: per-cycle %+v, skip-ahead %+v", i, want[i], got[i])
		}
	}
}

// TestActivitySniffersMatchCoreStats checks the sniffer choke point: the
// per-core activity counters must equal the core's own statistics under the
// per-cycle sweep, the serial skip-ahead kernel and the parallel kernel.
func TestActivitySniffersMatchCoreStats(t *testing.T) {
	spec := diffSpec(t, "membound", 2)
	const maxCycles = 200_000
	check := func(t *testing.T, p *emu.Platform, acts []*sniffer.Activity) {
		t.Helper()
		for i, c := range p.Cores {
			st := c.Stats()
			a := acts[i]
			if a.Count(sniffer.ModeActive) != st.ActiveCycles ||
				a.Count(sniffer.ModeStalled) != st.StallCycles ||
				a.Count(sniffer.ModeIdle) != st.IdleCycles {
				t.Errorf("core %d: sniffer (%d/%d/%d) != stats (%d/%d/%d)", i,
					a.Count(sniffer.ModeActive), a.Count(sniffer.ModeStalled), a.Count(sniffer.ModeIdle),
					st.ActiveCycles, st.StallCycles, st.IdleCycles)
			}
		}
	}
	for _, mode := range []string{"percycle", "serial", "parallel"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			p := emu.MustNew(diffConfig(2, false, mode == "parallel"))
			acts := p.AttachActivitySniffers()
			loadSpec(t, p, spec)
			var done bool
			switch mode {
			case "percycle":
				for p.VPCM.Cycle() < maxCycles && !p.AllHalted() {
					p.StepOne()
				}
				done = p.AllHalted()
			case "serial":
				_, done = p.Run(maxCycles)
			case "parallel":
				_, done = p.RunParallel(64, maxCycles)
			}
			if !done {
				t.Fatalf("workload %s did not finish", spec.Name)
			}
			check(t, p, acts)
		})
	}
}

// TestSkipStatsTelemetry pins the telemetry semantics on a single-core
// stall-bound run: every skipped cycle is a stall cycle (Run stops one past
// the halt, so no idle tail), every executed Step is an active cycle, and
// the event count stays far below the cycle count — the whole point of the
// kernel.
func TestSkipStatsTelemetry(t *testing.T) {
	spec, err := workloads.MemBound(1, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := emu.MustNew(emu.DefaultConfig(1))
	loadSpec(t, p, spec)
	cycles, done := p.Run(5_000_000)
	if !done {
		t.Fatal("membound did not finish")
	}
	st := p.Cores[0].Stats()
	sk := p.SkipStats()
	if sk.SkippedCycles == 0 {
		t.Fatal("stall-bound run skipped nothing")
	}
	if sk.SkippedCycles != st.StallCycles {
		t.Errorf("skipped %d cycles, core stalled %d", sk.SkippedCycles, st.StallCycles)
	}
	if sk.CoreSteps != st.ActiveCycles {
		t.Errorf("executed %d steps, core active %d cycles", sk.CoreSteps, st.ActiveCycles)
	}
	if sk.EventCycles >= cycles {
		t.Errorf("event cycles %d not below total %d — no skipping happened", sk.EventCycles, cycles)
	}
	// The books must balance: every cycle is either swept or skipped.
	if got := st.Cycles(); got != cycles {
		t.Errorf("core accounted %d cycles of %d", got, cycles)
	}
}
