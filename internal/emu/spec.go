package emu

// This file implements the speculative shared-path kernel: the third
// execution strategy for parallel chunks, layered over the gated arbiter of
// sched.go.
//
// The gated kernel is deterministic but pays a park/grant rendezvous for
// every shared-path access, and — far worse on a loaded host — every chunk
// runs at the pace of its slowest parked core. The speculative kernel removes
// the rendezvous from the common case: within a chunk every core free-runs to
// the chunk boundary against an epoch-local read/write log, with shared-path
// loads serviced from a per-core overlay (its own buffered writes) over a
// side-effect-free peek of the committed state, shared-path stores buffered
// in the overlay, and timing predicted against per-core shadow copies of the
// interconnect and barrier seeded from chunk-start state. Nothing under the
// controllers' shared/barrier/sniffctl ranges is mutated during a free-run.
//
// At the chunk boundary the arbiter walks the logs in (cycle, coreID) order —
// the serial kernel's exact interleaving — replaying every operation against
// the real targets: latency entries are recomputed and must equal the
// prediction, loads are re-read and must equal the speculated value (a
// per-page version stamp that has not moved since the chunk began proves this
// without comparing data), stores are applied. A chunk whose walk validates
// commits with every statistic, every latency and every memory image
// bit-identical to the serial kernel, because the free-run already charged
// the (now proven correct) timing and the walk performed the functional
// shared traffic in serial order. A chunk that fails validation — or that
// poisons itself by touching a sniffer control register, issuing an unaligned
// shared word access, or overflowing its log — is rolled back in full
// (registers, caches, private memories, statistics, sniffers, the partially
// applied walk) and re-executed through the gated path, which is
// deterministic by construction. Either way the committed interleaving is
// the serial one; speculation only changes how fast the kernel finds it.
//
// Determinism note: free-runs execute sequentially on the driver goroutine
// (core 0 first), so the log contents, the validation verdict and the
// adaptive pacer's decisions are a pure function of committed platform state
// — identical run after run, at any chunk size, with or without -race.

import (
	"thermemu/internal/bus"
	"thermemu/internal/cpu"
	"thermemu/internal/mem"
	"thermemu/internal/noc"
	"thermemu/internal/sniffer"
	"thermemu/internal/vpcm"
)

// Speculation pacer constants: chunk growth/backoff and log bounds.
const (
	specMinChunk  = 256     // floor after conflict-driven shrink
	specMaxChunk  = 1 << 16 // cap for clean-streak growth
	specLogMax    = 1 << 16 // per-core ops per chunk before poisoning
	specGatedRun  = 48      // gated chunks after a conflict streak
	specStreakMax = 3       // consecutive replayed chunks that trip the backoff
)

// SpecStats is the speculative kernel's telemetry. Like SkipStats it is
// observability, not architecture: none of it is digested, and the gated
// Parks/Grants counters are reported alongside it by Platform.SpecStats.
type SpecStats struct {
	SpecChunks  uint64 // chunks attempted speculatively
	CleanChunks uint64 // speculative chunks validated and committed
	Conflicts   uint64 // chunks whose validation walk found a divergence
	Poisoned    uint64 // chunks aborted before validation (device access, unaligned shared word, log overflow)
	Replays     uint64 // full gated re-runs after rollback (= Conflicts + Poisoned)
	GatedChunks uint64 // chunks run gated outright (pacer backoff, tracers or observers attached)
	LogEntries  uint64 // shared-path operations logged by free-runs
	Parks       uint64 // cores parked at the gated arbiter
	Grants      uint64 // grants issued by the gated arbiter
}

// specOp kinds (one controller-level Target call each).
const (
	specLat uint8 = iota
	specLoad
	specStore
)

// specTarget device classes.
const (
	specDevShared uint8 = iota
	specDevBarrier
	specDevSniff
)

// specOp is one logged shared-path operation of a free-running core. The
// controller calls Latency before the functional access of each instruction,
// so the latency entry carries the issue cycle and the functional entries of
// the same instruction inherit it (specCore.cycle).
type specOp struct {
	cycle uint64
	lat   uint64 // predicted stall (specLat)
	addr  uint32 // target-local address
	val   uint32 // speculated load value / buffered store value
	vers  uint32 // page version snapshot (shared word loads)
	bytes uint32 // access width: 4 (word) or 1 (byte)
	kind  uint8
	dev   uint8
	write bool
}

// specCore is one core's speculation context: its log, its write overlay and
// the shadow timing models its free-run predicts against.
type specCore struct {
	eng      *specEngine
	id       int
	active   bool
	poisoned bool
	cycle    uint64 // issue cycle of the instruction in progress
	log      []specOp
	// overlay buffers this core's speculative shared-memory writes at byte
	// granularity (keyed by target-local address), so its own loads observe
	// its own stores exactly as they would serially.
	overlay map[uint32]byte
	// shadow interconnect/barrier, re-seeded from committed state at every
	// chunk start; shadowIC is the prediction port over shadowBus/shadowNet.
	shadowBus *bus.Bus
	shadowNet *noc.Network
	shadowIC  mem.Interconnect
	shadowBar *mem.Barrier
	// underShared/underBarrier are the committed-path targets (the gated
	// wrappers, transparent while the arbiter is idle) the validation walk
	// replays against.
	underShared  mem.Target
	underBarrier mem.Target
}

func (sc *specCore) poison() {
	sc.poisoned = true
}

func (sc *specCore) record(op specOp) {
	if len(sc.log) >= specLogMax {
		sc.poison()
		return
	}
	sc.log = append(sc.log, op)
}

// specTarget interposes on one shared-path range of one core. While the
// core free-runs (sc.active) it executes the speculative protocol above;
// otherwise it is a transparent pass-through to the gated chain, so serial
// stepping, gated chunks and the validation walk all see the platform the
// gated kernel builds.
type specTarget struct {
	sc    *specCore
	dev   uint8
	under mem.Target
}

// Latency implements mem.Target.
func (t *specTarget) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	sc := t.sc
	if !sc.active {
		return t.under.Latency(now, addr, bytes, write)
	}
	sc.cycle = now
	switch t.dev {
	case specDevShared:
		lat := sc.shadowIC.Transaction(sc.id, now, bytes, write, sc.eng.shared.PureLatency(bytes))
		sc.record(specOp{kind: specLat, dev: t.dev, cycle: now, addr: addr, bytes: bytes, write: write, lat: lat})
		return lat
	case specDevBarrier:
		lat := sc.shadowBar.Latency(now, addr, bytes, write)
		sc.record(specOp{kind: specLat, dev: t.dev, cycle: now, addr: addr, bytes: bytes, write: write, lat: lat})
		return lat
	}
	// Sniffer control registers reconfigure live instrumentation; their side
	// effects cannot be buffered, so the chunk is abandoned to the gated path.
	sc.poison()
	return 0
}

// LoadWord implements mem.Target.
func (t *specTarget) LoadWord(addr uint32) uint32 {
	sc := t.sc
	if !sc.active {
		return t.under.LoadWord(addr)
	}
	switch t.dev {
	case specDevShared:
		if addr%4 != 0 {
			// The controller word paths fault before reaching a target, but a
			// defensive poison keeps any future unaligned caller exact.
			sc.poison()
			return 0
		}
		v := sc.peekWord(addr)
		sc.record(specOp{kind: specLoad, dev: t.dev, cycle: sc.cycle, addr: addr, val: v,
			vers: sc.eng.shared.PageVersion(addr), bytes: 4})
		return v
	case specDevBarrier:
		v := sc.shadowBar.LoadWord(addr)
		sc.record(specOp{kind: specLoad, dev: t.dev, cycle: sc.cycle, addr: addr, val: v, bytes: 4})
		return v
	}
	sc.poison()
	return 0
}

// StoreWord implements mem.Target.
func (t *specTarget) StoreWord(addr uint32, v uint32) {
	sc := t.sc
	if !sc.active {
		t.under.StoreWord(addr, v)
		return
	}
	switch t.dev {
	case specDevShared:
		if addr%4 != 0 {
			sc.poison()
			return
		}
		ov := sc.overlay
		ov[addr], ov[addr+1], ov[addr+2], ov[addr+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		sc.record(specOp{kind: specStore, dev: t.dev, cycle: sc.cycle, addr: addr, val: v, bytes: 4})
	case specDevBarrier:
		sc.shadowBar.StoreWord(addr, v)
		sc.record(specOp{kind: specStore, dev: t.dev, cycle: sc.cycle, addr: addr, val: v, bytes: 4})
	default:
		sc.poison()
	}
}

// LoadByte implements mem.Target.
func (t *specTarget) LoadByte(addr uint32) byte {
	sc := t.sc
	if !sc.active {
		return t.under.LoadByte(addr)
	}
	switch t.dev {
	case specDevShared:
		b, ok := sc.overlay[addr]
		if !ok {
			b = sc.eng.shared.PeekByte(addr)
		}
		sc.record(specOp{kind: specLoad, dev: t.dev, cycle: sc.cycle, addr: addr, val: uint32(b), bytes: 1})
		return b
	case specDevBarrier:
		b := sc.shadowBar.LoadByte(addr)
		sc.record(specOp{kind: specLoad, dev: t.dev, cycle: sc.cycle, addr: addr, val: uint32(b), bytes: 1})
		return b
	}
	sc.poison()
	return 0
}

// StoreByte implements mem.Target.
func (t *specTarget) StoreByte(addr uint32, b byte) {
	sc := t.sc
	if !sc.active {
		t.under.StoreByte(addr, b)
		return
	}
	switch t.dev {
	case specDevShared:
		sc.overlay[addr] = b
		sc.record(specOp{kind: specStore, dev: t.dev, cycle: sc.cycle, addr: addr, val: uint32(b), bytes: 1})
	case specDevBarrier:
		sc.shadowBar.StoreByte(addr, b)
		sc.record(specOp{kind: specStore, dev: t.dev, cycle: sc.cycle, addr: addr, val: uint32(b), bytes: 1})
	default:
		sc.poison()
	}
}

// Size implements mem.Target (pure, like gated.Size).
func (t *specTarget) Size() uint32 { return t.under.Size() }

// peekWord assembles the core's view of an aligned shared word: its own
// overlay bytes over a statistics-free peek of the committed contents.
func (sc *specCore) peekWord(addr uint32) uint32 {
	if len(sc.overlay) == 0 {
		return sc.eng.shared.PeekWord(addr)
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, ok := sc.overlay[addr+i]
		if !ok {
			b = sc.eng.shared.PeekByte(addr + i)
		}
		v |= uint32(b) << (8 * i)
	}
	return v
}

// specEngine is the per-platform speculation state: the per-core contexts,
// the reusable chunk-start snapshots for rollback, the spare interconnect
// used to rewind a partially applied walk, and the adaptive pacer.
type specEngine struct {
	p      *Platform
	shared *mem.Memory
	stats  SpecStats
	cores  []*specCore

	// Chunk-start snapshots (reused across chunks; allocation-free once warm).
	coreSnaps []cpu.CoreState
	icMirrors []mem.CacheMirror
	dcMirrors []mem.CacheMirror
	ctrlSnaps []mem.CtrlStats
	privStats []mem.MemStats
	spmStats  []mem.MemStats
	actSnaps  []sniffer.ActivityState
	vpcmSnap  vpcm.State
	needVPCM  bool
	doneAt    []uint64
	cursor    []int

	// Walk-start spares for rewinding a conflicted commit.
	spareBus *bus.Bus
	spareNet *noc.Network

	// Adaptive pacer: current speculative chunk size, consecutive replayed
	// chunks, and gated chunks still owed after a backoff trip.
	chunk     uint64
	streak    int
	gatedLeft int
}

// newSpecEngine builds the engine and its per-core shadow timing models.
// Called from New after the real interconnect exists and before the per-core
// target chains are wired.
func newSpecEngine(p *Platform, cfg Config, busCfg *bus.Config) *specEngine {
	e := &specEngine{
		p:      p,
		shared: p.Shared,
		needVPCM: cfg.PrivPhysLatency > cfg.PrivLatency ||
			cfg.SharedPhysLatency > cfg.SharedLatency,
		coreSnaps: make([]cpu.CoreState, cfg.Cores),
		icMirrors: make([]mem.CacheMirror, cfg.Cores),
		dcMirrors: make([]mem.CacheMirror, cfg.Cores),
		ctrlSnaps: make([]mem.CtrlStats, cfg.Cores),
		privStats: make([]mem.MemStats, cfg.Cores),
		spmStats:  make([]mem.MemStats, cfg.Cores),
		actSnaps:  make([]sniffer.ActivityState, cfg.Cores),
		doneAt:    make([]uint64, cfg.Cores),
		cursor:    make([]int, cfg.Cores),
	}
	p.Shared.EnableVersions()
	for i := 0; i < cfg.Cores; i++ {
		sc := &specCore{eng: e, id: i, overlay: make(map[uint32]byte),
			shadowBar: mem.NewBarrier("spec-barrier", cfg.Cores, 1)}
		if busCfg != nil {
			b, err := bus.New(*busCfg)
			if err != nil {
				panic("emu: spec shadow bus: " + err.Error())
			}
			sc.shadowBus, sc.shadowIC = b, b
		} else {
			n, err := noc.New(cfg.NoC.Topo, cfg.NoC.Cfg)
			if err != nil {
				panic("emu: spec shadow noc: " + err.Error())
			}
			sc.shadowNet = n
			sc.shadowIC = n.TargetPort(cfg.NoC.MemSwitch)
		}
		e.cores = append(e.cores, sc)
	}
	if busCfg != nil {
		b, err := bus.New(*busCfg)
		if err != nil {
			panic("emu: spec spare bus: " + err.Error())
		}
		e.spareBus = b
	} else {
		n, err := noc.New(cfg.NoC.Topo, cfg.NoC.Cfg)
		if err != nil {
			panic("emu: spec spare noc: " + err.Error())
		}
		e.spareNet = n
	}
	return e
}

// mustGate reports whether observation hooks force the gated path: tracers
// and access observers see events in execution order, which only the gated
// interleaving reproduces live.
func (e *specEngine) mustGate() bool {
	for i, c := range e.p.Cores {
		if c.HasTracer() || e.p.Ctrls[i].HasObserver() {
			return true
		}
	}
	return false
}

// SpecStats returns the speculative kernel's telemetry (zero-valued for
// platforms built without Config.Speculate), with the gated arbiter's
// park/grant counts folded in.
func (p *Platform) SpecStats() SpecStats {
	var s SpecStats
	if p.spec != nil {
		s = p.spec.stats
	}
	if p.sched != nil {
		s.Parks = p.sched.parks
		s.Grants = p.sched.grants
	}
	return s
}

// installIssueHooks (re)arms the parallel block-dispatch gate refresh before
// gated execution; clearIssueHooks disarms it for speculative free-runs,
// where no arbitration happens and the logged Latency cycle carries the
// issue position instead.
func (p *Platform) installIssueHooks() {
	for i, c := range p.Cores {
		c.SetIssueHook(p.issueHooks[i])
	}
}

func (p *Platform) clearIssueHooks() {
	for _, c := range p.Cores {
		c.SetIssueHook(nil)
	}
}

// advanceChunk executes one epoch of at most chunk cycles (clamped to limit)
// with the best applicable strategy — speculative, gated, or the single-core
// fast path — and advances the virtual clock. It is the shared inner step of
// RunParallel and RunParallelDigest.
func (p *Platform) advanceChunk(chunk, limit uint64) {
	base := p.VPCM.Cycle()
	n := chunk
	if left := limit - base; n > left {
		n = left
	}
	e := p.spec
	if e == nil || len(p.Cores) == 1 {
		// No engine (Config.Speculate off) or a single core, whose accesses
		// are trivially in serial order already.
		p.VPCM.Advance(p.runChunk(base, n))
		return
	}
	if e.chunk == 0 {
		e.chunk = chunk
	}
	if e.gatedLeft > 0 || e.mustGate() {
		if e.gatedLeft > 0 {
			e.gatedLeft--
		}
		e.stats.GatedChunks++
		p.installIssueHooks()
		p.VPCM.Advance(p.runChunk(base, n))
		return
	}
	if n > e.chunk {
		n = e.chunk
	}
	adv, ok := p.runChunkSpec(base, n)
	if ok {
		e.streak = 0
		if e.chunk < specMaxChunk {
			e.chunk *= 2
		}
		p.VPCM.Advance(adv)
		return
	}
	// Rolled back: shrink the window, trip the backoff on a streak, and
	// re-execute the same span through the gated path.
	e.stats.Replays++
	e.chunk /= 4
	if e.chunk < specMinChunk {
		e.chunk = specMinChunk
	}
	e.streak++
	if e.streak >= specStreakMax {
		e.streak = 0
		e.gatedLeft = specGatedRun
	}
	p.installIssueHooks()
	p.VPCM.Advance(p.runChunk(base, n))
}

// runChunkSpec attempts one speculative epoch of n cycles from base. It
// returns (advance, true) when the chunk validated and committed, with
// advance trimmed exactly like runChunk when every core halted inside the
// chunk. On conflict or poison it returns (0, false) with the platform
// restored bit-exactly to chunk-start state.
func (p *Platform) runChunkSpec(base, n uint64) (uint64, bool) {
	e := p.spec
	e.stats.SpecChunks++

	// Chunk-start snapshots: everything a free-run can touch.
	for i, c := range p.Cores {
		e.coreSnaps[i] = c.SaveState()
		ctl := p.Ctrls[i]
		if ic := ctl.ICache(); ic != nil {
			ic.MirrorInto(&e.icMirrors[i])
		}
		if dc := ctl.DCache(); dc != nil {
			dc.MirrorInto(&e.dcMirrors[i])
		}
		e.ctrlSnaps[i] = ctl.Stats()
		e.privStats[i] = p.Privs[i].Stats()
		p.Privs[i].BeginUndo()
		if spm := p.spms[i]; spm != nil {
			e.spmStats[i] = spm.Stats()
			spm.BeginUndo()
		}
	}
	for i, a := range p.acts {
		e.actSnaps[i] = a.SaveState()
	}
	if e.needVPCM {
		e.vpcmSnap = p.VPCM.SaveState()
	}

	// Free-run every core to the chunk boundary, sequentially, logging the
	// shared path. The scheduler is idle and the issue hooks are disarmed:
	// a private-only core runs at full single-core block-dispatch speed.
	p.clearIssueHooks()
	end := base + n
	var skipped uint64
	barSeed := p.Barrier.SaveState()
	for i, c := range p.Cores {
		sc := e.cores[i]
		sc.log = sc.log[:0]
		sc.poisoned = false
		clear(sc.overlay)
		if sc.shadowBus != nil {
			sc.shadowBus.CopyStateFrom(p.Bus)
		}
		if sc.shadowNet != nil {
			sc.shadowNet.CopyStateFrom(p.Net)
		}
		if err := sc.shadowBar.RestoreState(barSeed); err != nil {
			panic("emu: spec shadow barrier: " + err.Error())
		}
		sc.active = true
		cyc := base
		cyc += skipStall(c, cyc, end, &skipped)
		for cyc < end && !c.Halted() && !sc.poisoned {
			if p.Cfg.Blocks {
				if bn, _, bskip := c.StepBlocks(cyc, end-cyc); bn > 0 {
					cyc += bn
					skipped += bskip
					continue
				}
			}
			c.Step(cyc)
			cyc++
			if c.StallRemaining() > 0 {
				cyc += skipStall(c, cyc, end, &skipped)
			}
		}
		sc.active = false
		e.doneAt[i] = cyc
	}

	ok := true
	for _, sc := range e.cores {
		if sc.poisoned {
			ok = false
		}
	}
	if ok {
		ok = e.validateAndCommit()
	} else {
		e.stats.Poisoned++
		// Count the log even for poisoned chunks so the telemetry reflects
		// the speculation actually attempted.
		for _, sc := range e.cores {
			e.stats.LogEntries += uint64(len(sc.log))
		}
	}
	if ok {
		for i := range p.Cores {
			p.Privs[i].DropUndo()
			if spm := p.spms[i]; spm != nil {
				spm.DropUndo()
			}
		}
		p.skip.SkippedCycles += skipped
		e.stats.CleanChunks++
		endC := end
		if p.AllHalted() {
			endC = base
			for _, d := range e.doneAt {
				if d > endC {
					endC = d
				}
			}
		}
		for i, c := range p.Cores {
			c.AccrueIdle(endC - e.doneAt[i])
		}
		return endC - base, true
	}

	// Rollback: rewind every private effect of the free-runs. (A failed walk
	// already rewound the shared side before returning.) RestoreState flushes
	// the block caches, which also discards any block translated from
	// speculatively written code.
	for i, c := range p.Cores {
		c.RestoreState(e.coreSnaps[i])
		ctl := p.Ctrls[i]
		if ic := ctl.ICache(); ic != nil {
			ic.RestoreMirror(&e.icMirrors[i])
		}
		if dc := ctl.DCache(); dc != nil {
			dc.RestoreMirror(&e.dcMirrors[i])
		}
		ctl.RestoreStats(e.ctrlSnaps[i])
		p.Privs[i].RollbackUndo()
		p.Privs[i].RestoreStats(e.privStats[i])
		if spm := p.spms[i]; spm != nil {
			spm.RollbackUndo()
			spm.RestoreStats(e.spmStats[i])
		}
	}
	for i, a := range p.acts {
		a.RestoreState(e.actSnaps[i])
	}
	if e.needVPCM {
		if err := p.VPCM.RestoreState(e.vpcmSnap); err != nil {
			panic("emu: spec clock rollback: " + err.Error())
		}
	}
	return 0, false
}

// validateAndCommit walks the per-core logs in (cycle, coreID) order against
// the real shared-path targets. A clean walk IS the commit: loads re-read
// (and count) the committed state, stores apply in serial order, latency
// recomputation drives the real interconnect and suppression books. A dirty
// walk rewinds its partial effects and reports failure.
func (e *specEngine) validateAndCommit() bool {
	total := 0
	for _, sc := range e.cores {
		total += len(sc.log)
	}
	e.stats.LogEntries += uint64(total)
	if total == 0 {
		// No core touched the shared path: the free-runs were exact.
		return true
	}

	p := e.p
	e.shared.BeginUndo()
	sharedStats := e.shared.Stats()
	barSnap := p.Barrier.SaveState()
	if e.spareBus != nil {
		e.spareBus.CopyStateFrom(p.Bus)
	}
	if e.spareNet != nil {
		e.spareNet.CopyStateFrom(p.Net)
	}

	cursor := e.cursor
	for i := range cursor {
		cursor[i] = 0
	}
	ok := true
walk:
	for {
		best := -1
		var bestCycle uint64
		for ci, sc := range e.cores {
			i := cursor[ci]
			if i >= len(sc.log) {
				continue
			}
			// Strict < with ascending core order: ties commit lowest core
			// first, exactly as StepOne sweeps cores within a cycle.
			if best < 0 || sc.log[i].cycle < bestCycle {
				best, bestCycle = ci, sc.log[i].cycle
			}
		}
		if best < 0 {
			break
		}
		sc := e.cores[best]
		op := &sc.log[cursor[best]]
		cursor[best]++
		if !e.replay(sc, op) {
			ok = false
			break walk
		}
	}
	if ok {
		e.shared.DropUndo()
		return true
	}

	// Conflict: rewind the partially applied walk.
	e.stats.Conflicts++
	e.shared.RollbackUndo()
	e.shared.RestoreStats(sharedStats)
	if err := p.Barrier.RestoreState(barSnap); err != nil {
		panic("emu: spec barrier rollback: " + err.Error())
	}
	if e.spareBus != nil {
		p.Bus.CopyStateFrom(e.spareBus)
	}
	if e.spareNet != nil {
		p.Net.CopyStateFrom(e.spareNet)
	}
	return false
}

// replay applies one logged operation against the committed target chain and
// reports whether the speculation it encodes still holds.
func (e *specEngine) replay(sc *specCore, op *specOp) bool {
	t := sc.underShared
	if op.dev == specDevBarrier {
		t = sc.underBarrier
	}
	switch op.kind {
	case specLat:
		// The free-run charged the predicted stall into the core and its
		// controller; recomputing against the real interconnect at the same
		// cycle must agree or every downstream cycle stamp is wrong.
		return t.Latency(op.cycle, op.addr, op.bytes, op.write) == op.lat
	case specLoad:
		if op.bytes == 1 {
			return uint32(t.LoadByte(op.addr)) == op.val
		}
		got := t.LoadWord(op.addr)
		if op.dev == specDevShared && e.shared.PageVersion(op.addr) == op.vers {
			// Page version untouched since the chunk began: the optimistic
			// value is provably current (the functional read above still
			// counted, keeping traffic statistics serial-exact).
			return true
		}
		return got == op.val
	default: // specStore
		if op.bytes == 1 {
			t.StoreByte(op.addr, byte(op.val))
		} else {
			t.StoreWord(op.addr, op.val)
		}
		return true
	}
}
