package emu_test

// Differential conformance for the speculative shared-path kernel (spec.go):
// for every corpus workload, on both interconnect families, the speculative
// kernel — with and without block dispatch — must produce bit-identical
// golden digests to the serial reference, plus run-to-run reproducibility,
// telemetry invariants, and an adversarial fuzz harness over the
// commit/rollback engine.

import (
	"fmt"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/golden"
	"thermemu/internal/isa"
)

func specConfig(cores int, noc, blocks bool) emu.Config {
	cfg := diffConfig(cores, noc, true)
	cfg.Speculate = true
	cfg.Blocks = blocks
	return cfg
}

func TestDifferentialSpeculate(t *testing.T) {
	for _, ic := range []struct {
		name string
		noc  bool
	}{{"bus", false}, {"noc", true}} {
		for _, cores := range []int{1, 2, 4} {
			for _, kind := range diffKinds(cores) {
				t.Run(fmt.Sprintf("%s/%s/%dc", ic.name, kind, cores), func(t *testing.T) {
					spec := diffSpec(t, kind, cores)
					want := digestRun(t, diffConfig(cores, ic.noc, false), spec,
						func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
							return p.RunDigest(diffMaxCycles, diffEvery, tr)
						})
					for _, blocks := range []bool{false, true} {
						name := "interp"
						if blocks {
							name = "blocks"
						}
						got := digestRun(t, specConfig(cores, ic.noc, blocks), spec,
							func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
								return p.RunParallelDigest(64, diffMaxCycles, diffEvery, tr)
							})
						if d := golden.Compare(want, got); d != nil {
							t.Errorf("speculative kernel (%s) diverges from serial: %s", name, d)
						}
					}
				})
			}
		}
	}
}

// TestDifferentialSpeculate8Core is the wide-platform column: every corpus
// workload runnable on 8 cores, speculative blocks vs the serial reference.
// Bus only and a single chunk size, to keep the -race matrix affordable.
func TestDifferentialSpeculate8Core(t *testing.T) {
	const cores = 8
	for _, kind := range diffKinds(cores) {
		t.Run(kind, func(t *testing.T) {
			spec := diffSpec(t, kind, cores)
			want := digestRun(t, diffConfig(cores, false, false), spec,
				func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
					return p.RunDigest(diffMaxCycles, diffEvery, tr)
				})
			got := digestRun(t, specConfig(cores, false, true), spec,
				func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
					return p.RunParallelDigest(emu.DefaultChunk, diffMaxCycles, diffEvery, tr)
				})
			if d := golden.Compare(want, got); d != nil {
				t.Errorf("8-core speculative kernel diverges from serial: %s", d)
			}
		})
	}
}

// TestSpeculateReproducible asserts run-to-run determinism of the speculative
// kernel on a conflict-heavy workload, where the adaptive pacer's
// shrink/backoff decisions are actually exercised.
func TestSpeculateReproducible(t *testing.T) {
	spec := diffSpec(t, "locks", 4)
	run := func() *golden.Trace {
		return digestRun(t, specConfig(4, false, true), spec,
			func(p *emu.Platform, tr *golden.Trace) (uint64, bool) {
				return p.RunParallelDigest(64, diffMaxCycles, diffEvery, tr)
			})
	}
	a, b := run(), run()
	if d := golden.Compare(a, b); d != nil {
		t.Fatalf("speculative kernel is not reproducible: %s", d)
	}
}

// TestSpeculateTelemetry pins the accounting identities of SpecStats: every
// attempted chunk either commits clean or is rolled back (for a conflict or a
// poison) and re-run gated, and a contended workload actually speculates.
func TestSpeculateTelemetry(t *testing.T) {
	spec := diffSpec(t, "matrix", 4)
	p := emu.MustNew(specConfig(4, false, true))
	loadSpec(t, p, spec)
	if _, done := p.RunParallel(0, diffMaxCycles); !done {
		t.Fatal("workload did not finish")
	}
	st := p.SpecStats()
	if st.SpecChunks == 0 {
		t.Fatal("no chunks were attempted speculatively")
	}
	if st.CleanChunks == 0 {
		t.Error("a compute-bound workload should commit clean chunks")
	}
	if st.SpecChunks != st.CleanChunks+st.Conflicts+st.Poisoned {
		t.Errorf("chunk accounting broken: %d attempted != %d clean + %d conflicts + %d poisoned",
			st.SpecChunks, st.CleanChunks, st.Conflicts, st.Poisoned)
	}
	if st.Replays != st.Conflicts+st.Poisoned {
		t.Errorf("replay accounting broken: %d replays != %d conflicts + %d poisoned",
			st.Replays, st.Conflicts, st.Poisoned)
	}
}

// TestSpeculateValidate pins the configuration surface.
func TestSpeculateValidate(t *testing.T) {
	cfg := emu.DefaultConfig(2)
	cfg.Speculate = true
	if err := cfg.Validate(); err == nil {
		t.Error("Speculate without Parallel must be rejected")
	}
	cfg.Parallel = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("Speculate+Parallel rejected: %v", err)
	}
	shc := cfg
	shc.SharedCacheable = true
	if err := shc.Validate(); err == nil {
		t.Error("Speculate with a cacheable shared memory must be rejected")
	}
}

// FuzzSpeculateCommit feeds random short programs to a two-core speculative
// platform and asserts bit-identity with the per-cycle sweep — the
// adversarial harness for the commit/rollback engine (conflicting stores,
// barrier spins, sniffer-control poisons, faults, swaps). A tiny chunk keeps
// validation walks and rollbacks frequent.
func FuzzSpeculateCommit(f *testing.F) {
	f.Add([]byte{})
	// Both cores load-increment-store the same shared word: a guaranteed
	// validation conflict.
	f.Add(append(append(
		u32le(isa.Encode(isa.Instr{Op: isa.OpLw, Rd: 5, Rs1: 1, Imm: 0})),
		u32le(isa.Encode(isa.Instr{Op: isa.OpAddi, Rd: 5, Rs1: 5, Imm: 1}))...),
		u32le(isa.Encode(isa.Instr{Op: isa.OpSw, Rd: 5, Rs1: 1, Imm: 0}))...))
	// Sniffer-control store: poisons every speculative chunk.
	f.Add(u32le(isa.Encode(isa.Instr{Op: isa.OpSw, Rd: 4, Rs1: 3, Imm: 0})))
	// Shared swap then backward branch (atomic read-modify-write contention).
	f.Add(append(
		u32le(isa.Encode(isa.Instr{Op: isa.OpSwap, Rd: 4, Rs1: 1, Imm: 8})),
		u32le(isa.Encode(isa.Instr{Op: isa.OpBne, Rs1: 4, Rs2: 0, Imm: -2}))...))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 256 {
			payload = payload[:256]
		}
		im := fuzzImage(payload)
		const (
			maxCycles = 3000
			every     = 64
			chunk     = 16
		)
		load := func(p *emu.Platform) {
			for c := range p.Cores {
				if err := p.LoadProgram(c, im); err != nil {
					t.Fatal(err)
				}
			}
		}
		ref := emu.MustNew(emu.DefaultConfig(2))
		load(ref)
		want := golden.NewJournal()
		stepOneDigest(ref, maxCycles, every, want)

		for _, blocks := range []bool{false, true} {
			cfg := emu.DefaultConfig(2)
			cfg.Parallel = true
			cfg.Speculate = true
			cfg.Blocks = blocks
			p := emu.MustNew(cfg)
			load(p)
			got := golden.NewJournal()
			p.RunParallelDigest(chunk, maxCycles, every, got)
			if d := golden.Compare(want, got); d != nil {
				t.Fatalf("speculative kernel (blocks=%v) diverges from per-cycle sweep: %s", blocks, d)
			}
		}
	})
}
