package emu

// This file aggregates the component state of a running platform into one
// checkpointable value. PlatformState is pure data (no references into the
// live platform), so internal/checkpoint can serialize it and a replay
// debugger can diff two of them field by field.

import (
	"fmt"
	"strings"

	"thermemu/internal/bus"
	"thermemu/internal/cpu"
	"thermemu/internal/isa"
	"thermemu/internal/mem"
	"thermemu/internal/noc"
	"thermemu/internal/sniffer"
	"thermemu/internal/vpcm"
)

// PlatformState is the complete checkpointable state of a Platform. Slices
// are indexed by core where per-core; Bus and Noc are mutually exclusive,
// mirroring the platform. Skip is kernel telemetry: it is saved and
// restored for observability continuity but excluded from EachRecord and
// DiffStates, because the serial and parallel kernels legitimately count
// skipped work differently while remaining architecturally bit-identical.
type PlatformState struct {
	Clock   vpcm.State
	Cores   []cpu.CoreState
	ICaches []mem.CacheState
	DCaches []mem.CacheState
	L2s     []mem.CacheState
	Ctrls   []mem.CtrlStats
	Privs   []mem.MemoryState
	Scratch []mem.MemoryState // per core, only when Config.ScratchKB > 0
	Shared  mem.MemoryState
	Barrier mem.BarrierState
	Bus     *bus.State
	Noc     *noc.State
	Skip    SkipStats

	Acts       []sniffer.ActivityState // per core, when activity sniffers attached
	Events     []sniffer.EventCounters // per core, when Config.EventLogging
	RingEvents []sniffer.Event         // buffered BRAM events, when Config.EventLogging
}

// scratchMem returns core i's scratchpad memory, or nil when the platform
// has none.
func (p *Platform) scratchMem(i int) *mem.Memory {
	for _, r := range p.Ctrls[i].Ranges() {
		if r.Name == "scratch" {
			if m, ok := r.Target.(*mem.Memory); ok {
				return m
			}
		}
	}
	return nil
}

// SaveState captures the full platform state. The platform must be
// quiescent (between Step/Run calls); window boundaries of the co-emulation
// loop satisfy this by construction.
func (p *Platform) SaveState() *PlatformState {
	s := &PlatformState{
		Clock:   p.VPCM.SaveState(),
		Shared:  p.Shared.SaveState(),
		Barrier: p.Barrier.SaveState(),
		Skip:    p.skip,
	}
	for i, c := range p.Cores {
		s.Cores = append(s.Cores, c.SaveState())
		ctl := p.Ctrls[i]
		s.Ctrls = append(s.Ctrls, ctl.Stats())
		if ic := ctl.ICache(); ic != nil {
			s.ICaches = append(s.ICaches, ic.SaveState())
		}
		if dc := ctl.DCache(); dc != nil {
			s.DCaches = append(s.DCaches, dc.SaveState())
		}
		s.Privs = append(s.Privs, p.Privs[i].SaveState())
		if spm := p.scratchMem(i); spm != nil {
			s.Scratch = append(s.Scratch, spm.SaveState())
		}
	}
	for _, l2 := range p.L2s {
		s.L2s = append(s.L2s, l2.SaveState())
	}
	if p.Bus != nil {
		b := p.Bus.SaveState()
		s.Bus = &b
	}
	if p.Net != nil {
		n := p.Net.SaveState()
		s.Noc = &n
	}
	for _, a := range p.acts {
		s.Acts = append(s.Acts, a.SaveState())
	}
	if len(p.Events) > 0 {
		for _, es := range p.Events {
			s.Events = append(s.Events, es.SaveState())
		}
		s.RingEvents = p.Ring.SaveState()
	}
	return s
}

// RestoreState rewinds the platform to a saved state. Every component
// validates the state's shape against its live configuration, so restoring
// a checkpoint from a differently configured platform fails instead of
// silently resuming corrupt state. When the state carries activity-sniffer
// counters and the platform has none attached, the sniffers are attached
// first, so a resumed run observes the same instrumentation as the run
// that wrote the checkpoint.
func (p *Platform) RestoreState(s *PlatformState) error {
	if len(s.Cores) != len(p.Cores) {
		return fmt.Errorf("emu: checkpoint has %d cores, platform has %d", len(s.Cores), len(p.Cores))
	}
	nic, ndc := 0, 0
	for _, ctl := range p.Ctrls {
		if ctl.ICache() != nil {
			nic++
		}
		if ctl.DCache() != nil {
			ndc++
		}
	}
	switch {
	case len(s.ICaches) != nic:
		return fmt.Errorf("emu: checkpoint has %d icaches, platform has %d", len(s.ICaches), nic)
	case len(s.DCaches) != ndc:
		return fmt.Errorf("emu: checkpoint has %d dcaches, platform has %d", len(s.DCaches), ndc)
	case len(s.L2s) != len(p.L2s):
		return fmt.Errorf("emu: checkpoint has %d L2s, platform has %d", len(s.L2s), len(p.L2s))
	case len(s.Ctrls) != len(p.Ctrls):
		return fmt.Errorf("emu: checkpoint has %d controllers, platform has %d", len(s.Ctrls), len(p.Ctrls))
	case len(s.Privs) != len(p.Privs):
		return fmt.Errorf("emu: checkpoint has %d private memories, platform has %d", len(s.Privs), len(p.Privs))
	case (s.Bus != nil) != (p.Bus != nil):
		return fmt.Errorf("emu: checkpoint and platform disagree on bus interconnect")
	case (s.Noc != nil) != (p.Net != nil):
		return fmt.Errorf("emu: checkpoint and platform disagree on NoC interconnect")
	case len(s.Events) != len(p.Events):
		return fmt.Errorf("emu: checkpoint has %d event sniffers, platform has %d", len(s.Events), len(p.Events))
	}
	nspm := 0
	if p.Cfg.ScratchKB > 0 {
		nspm = len(p.Cores)
	}
	if len(s.Scratch) != nspm {
		return fmt.Errorf("emu: checkpoint has %d scratchpads, platform has %d", len(s.Scratch), nspm)
	}
	if len(s.Acts) > 0 && p.acts == nil {
		p.AttachActivitySniffers()
	}
	if len(s.Acts) != len(p.acts) {
		return fmt.Errorf("emu: checkpoint has %d activity sniffers, platform has %d", len(s.Acts), len(p.acts))
	}

	if err := p.VPCM.RestoreState(s.Clock); err != nil {
		return err
	}
	for i, c := range p.Cores {
		c.RestoreState(s.Cores[i])
		p.Ctrls[i].RestoreStats(s.Ctrls[i])
		if err := p.Privs[i].RestoreState(s.Privs[i]); err != nil {
			return err
		}
		if i < len(s.Scratch) {
			if err := p.scratchMem(i).RestoreState(s.Scratch[i]); err != nil {
				return err
			}
		}
	}
	ic, dc := 0, 0
	for _, ctl := range p.Ctrls {
		if c := ctl.ICache(); c != nil {
			if err := c.RestoreState(s.ICaches[ic]); err != nil {
				return err
			}
			ic++
		}
		if c := ctl.DCache(); c != nil {
			if err := c.RestoreState(s.DCaches[dc]); err != nil {
				return err
			}
			dc++
		}
	}
	for i, l2 := range p.L2s {
		if err := l2.RestoreState(s.L2s[i]); err != nil {
			return err
		}
	}
	if err := p.Shared.RestoreState(s.Shared); err != nil {
		return err
	}
	if err := p.Barrier.RestoreState(s.Barrier); err != nil {
		return err
	}
	if s.Bus != nil {
		if err := p.Bus.RestoreState(*s.Bus); err != nil {
			return err
		}
	}
	if s.Noc != nil {
		if err := p.Net.RestoreState(*s.Noc); err != nil {
			return err
		}
	}
	for i, a := range p.acts {
		a.RestoreState(s.Acts[i])
	}
	for i, es := range p.Events {
		es.RestoreState(s.Events[i])
	}
	if len(p.Events) > 0 {
		if err := p.Ring.RestoreState(s.RingEvents); err != nil {
			return err
		}
	}
	p.skip = s.Skip
	return nil
}

// EachRecord enumerates the architecturally meaningful state as labelled
// (core, field, value) records in a canonical order. The enumeration
// deliberately excludes kernel telemetry (SkipStats) and wall-clock-derived
// frozen time, mirroring what the golden digest pins, and is the substrate
// DiffStates compares.
func (s *PlatformState) EachRecord(fn func(core int, field string, value uint64)) {
	fn(-1, "cycle", s.Clock.Cycle)
	fn(-1, "time_ps", s.Clock.TimePs)
	fn(-1, "freq_hz", s.Clock.VirtHz)
	fn(-1, "wall_ps", s.Clock.WallPs)
	var supp uint64
	for _, sc := range s.Clock.Suppression {
		supp += sc.Cycles
	}
	fn(-1, "suppression_cycles", supp)
	for i := range s.Cores {
		c := &s.Cores[i]
		fn(i, "pc", uint64(c.PC))
		for r := 0; r < isa.NumRegs; r++ {
			fn(i, "reg", uint64(r)<<32|uint64(c.Regs[r]))
		}
		fn(i, "stall", c.Stall)
		var halted uint64
		if c.Halt {
			halted = 1
		}
		fn(i, "halted", halted)
		fn(i, "mode", uint64(c.Mode))
		if c.HasFault {
			fn(i, "fault", hashString(c.FaultMsg))
		}
		fn(i, "instructions", c.Stats.Instructions)
		fn(i, "active_cycles", c.Stats.ActiveCycles)
		fn(i, "stall_cycles", c.Stats.StallCycles)
		fn(i, "idle_cycles", c.Stats.IdleCycles)
		fn(i, "loads", c.Stats.Loads)
		fn(i, "stores", c.Stats.Stores)
		fn(i, "branches", c.Stats.Branches)
		fn(i, "taken", c.Stats.Taken)
		fn(i, "paired", c.Stats.Paired)
	}
	eachCache := func(name string, idx int, cs *mem.CacheState) {
		fn(idx, name+"_stamp", cs.Stamp)
		fn(idx, name+"_reads", cs.Stats.Reads)
		fn(idx, name+"_writes", cs.Stats.Writes)
		fn(idx, name+"_hits", cs.Stats.Hits)
		fn(idx, name+"_misses", cs.Stats.Misses)
		fn(idx, name+"_evictions", cs.Stats.Evictions)
		fn(idx, name+"_writebacks", cs.Stats.Writebacks)
		for li := range cs.Lines {
			ln := &cs.Lines[li]
			v := uint64(ln.Tag) << 2
			if ln.Valid {
				v |= 1
			}
			if ln.Dirty {
				v |= 2
			}
			fn(idx, fmt.Sprintf("%s_line%d", name, li), v)
		}
	}
	for i := range s.ICaches {
		eachCache("icache", i, &s.ICaches[i])
	}
	for i := range s.DCaches {
		eachCache("dcache", i, &s.DCaches[i])
	}
	for i := range s.L2s {
		eachCache("l2", i, &s.L2s[i])
	}
	for i := range s.Ctrls {
		c := &s.Ctrls[i]
		fn(i, "ctrl_fetches", c.Fetches)
		fn(i, "ctrl_priv_reads", c.PrivateReads)
		fn(i, "ctrl_priv_writes", c.PrivateWrits)
		fn(i, "ctrl_shared_reads", c.SharedReads)
		fn(i, "ctrl_shared_writes", c.SharedWrits)
		fn(i, "ctrl_device_ops", c.DeviceOps)
		fn(i, "ctrl_stall_cycles", c.StallCycles)
	}
	eachMem := func(name string, idx int, ms *mem.MemoryState) {
		fn(idx, name+"_reads", ms.Stats.Reads)
		fn(idx, name+"_writes", ms.Stats.Writes)
		for _, pg := range ms.Pages {
			fn(idx, fmt.Sprintf("%s@%08x", name, pg.Addr), hashBytes(pg.Data))
		}
	}
	for i := range s.Privs {
		eachMem("priv", i, &s.Privs[i])
	}
	for i := range s.Scratch {
		eachMem("scratch", i, &s.Scratch[i])
	}
	eachMem("shared", -1, &s.Shared)
	fn(-1, "barrier_gen", uint64(s.Barrier.Gen))
	fn(-1, "barrier_arrivals", uint64(s.Barrier.Arrivals))
	if s.Bus != nil {
		b := s.Bus
		fn(-1, "bus_busy_until", b.BusyUntil)
		fn(-1, "bus_last_grant", uint64(int64(b.LastGrant)))
		fn(-1, "bus_transactions", b.Stats.Transactions)
		fn(-1, "bus_reads", b.Stats.Reads)
		fn(-1, "bus_writes", b.Stats.Writes)
		fn(-1, "bus_busy_cycles", b.Stats.BusyCycles)
		fn(-1, "bus_wait_cycles", b.Stats.WaitCycles)
		fn(-1, "bus_beats", b.Stats.BeatsCarried)
		fn(-1, "bus_transitions", b.Stats.Transitions)
	}
	if s.Noc != nil {
		n := s.Noc
		for li, v := range n.LinkBusy {
			fn(-1, fmt.Sprintf("noc_link%d_busy", li), v)
		}
		fn(-1, "noc_packets", n.Stats.Packets)
		fn(-1, "noc_flits", n.Stats.Flits)
		fn(-1, "noc_ocp_reads", n.Stats.OCPReads)
		fn(-1, "noc_ocp_writes", n.Stats.OCPWrites)
		fn(-1, "noc_wait_cycles", n.Stats.WaitCycles)
		fn(-1, "noc_hops", n.Stats.HopsTraveled)
		fn(-1, "noc_transitions", n.Stats.Transitions)
	}
}

// hashString/hashBytes mirror golden.HashString/HashBytes so this file does
// not pull the golden package into the platform's core path.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// StateDiff is one field where two platform states disagree.
type StateDiff struct {
	Core  int
	Field string
	A, B  uint64
}

// String renders the diff for reports.
func (d StateDiff) String() string {
	if d.Core < 0 {
		return fmt.Sprintf("%s: A=%#x B=%#x", d.Field, d.A, d.B)
	}
	return fmt.Sprintf("core %d %s: A=%#x B=%#x", d.Core, d.Field, d.A, d.B)
}

type stateRecord struct {
	core  int
	field string
	value uint64
}

// DiffStates compares two platform states record by record and returns
// every disagreement. An error means the two states do not even have the
// same shape (different configurations), so a field-level diff would be
// meaningless.
func DiffStates(a, b *PlatformState) ([]StateDiff, error) {
	var ra, rb []stateRecord
	a.EachRecord(func(core int, field string, value uint64) {
		ra = append(ra, stateRecord{core, field, value})
	})
	b.EachRecord(func(core int, field string, value uint64) {
		rb = append(rb, stateRecord{core, field, value})
	})
	if len(ra) != len(rb) {
		return nil, fmt.Errorf("emu: states have different shapes (%d vs %d records)", len(ra), len(rb))
	}
	var diffs []StateDiff
	for i := range ra {
		if ra[i].core != rb[i].core || ra[i].field != rb[i].field {
			return nil, fmt.Errorf("emu: states have different shapes at record %d (%d/%s vs %d/%s)",
				i, ra[i].core, ra[i].field, rb[i].core, rb[i].field)
		}
		if ra[i].value != rb[i].value {
			diffs = append(diffs, StateDiff{Core: ra[i].core, Field: ra[i].field, A: ra[i].value, B: rb[i].value})
		}
	}
	return diffs, nil
}

// Dump renders the state for replay-to-divergence reports: the clock, every
// core's architectural state and the memory footprint.
func (s *PlatformState) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  t=%d ps  f=%d Hz\n", s.Clock.Cycle, s.Clock.TimePs, s.Clock.VirtHz)
	for i := range s.Cores {
		c := &s.Cores[i]
		fmt.Fprintf(&b, "core %d: pc=%#x mode=%d stall=%d halt=%v", i, c.PC, c.Mode, c.Stall, c.Halt)
		if c.HasFault {
			fmt.Fprintf(&b, " fault=%q", c.FaultMsg)
		}
		fmt.Fprintf(&b, " instr=%d\n", c.Stats.Instructions)
		for r := 0; r < isa.NumRegs; r++ {
			if r%8 == 0 {
				fmt.Fprintf(&b, "  r%02d:", r)
			}
			fmt.Fprintf(&b, " %08x", c.Regs[r])
			if r%8 == 7 || r == isa.NumRegs-1 {
				b.WriteByte('\n')
			}
		}
	}
	for i := range s.Privs {
		fmt.Fprintf(&b, "priv%d: %d pages\n", i, len(s.Privs[i].Pages))
	}
	fmt.Fprintf(&b, "shared: %d pages  barrier: gen=%d arrivals=%d\n",
		len(s.Shared.Pages), s.Barrier.Gen, s.Barrier.Arrivals)
	return b.String()
}
