package etherlink

import (
	"testing"
)

func sampleStatsBatch() StatsBatch {
	return StatsBatch{Windows: []Stats{
		{Cycle: 1_000, WindowPs: 100_000_000, PowerUW: []uint32{1, 2, 3}},
		{Cycle: 2_000, WindowPs: 100_000_000, PowerUW: []uint32{4, 5, 6}},
		{Cycle: 3_500, WindowPs: 150_000_000, PowerUW: []uint32{7, 8, 9}},
	}}
}

func TestStatsBatchRoundTrip(t *testing.T) {
	in := sampleStatsBatch()
	out, err := UnmarshalStatsBatch(in.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != len(in.Windows) {
		t.Fatalf("window count %d, want %d", len(out.Windows), len(in.Windows))
	}
	for i := range in.Windows {
		a, b := in.Windows[i], out.Windows[i]
		if a.Cycle != b.Cycle || a.WindowPs != b.WindowPs {
			t.Fatalf("window %d header: %+v vs %+v", i, a, b)
		}
		for j := range a.PowerUW {
			if a.PowerUW[j] != b.PowerUW[j] {
				t.Fatalf("window %d power %d: %d vs %d", i, j, a.PowerUW[j], b.PowerUW[j])
			}
		}
	}
}

func TestTempsBatchRoundTrip(t *testing.T) {
	in := TempsBatch{Windows: []Temps{
		{TimePs: 10, MilliK: []uint32{300_000, 310_500}},
		{TimePs: 20, MilliK: []uint32{301_250, 311_750}},
	}}
	out, err := UnmarshalTempsBatch(in.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != len(in.Windows) {
		t.Fatalf("window count %d, want %d", len(out.Windows), len(in.Windows))
	}
	for i := range in.Windows {
		a, b := in.Windows[i], out.Windows[i]
		if a.TimePs != b.TimePs {
			t.Fatalf("window %d time: %d vs %d", i, a.TimePs, b.TimePs)
		}
		for j := range a.MilliK {
			if a.MilliK[j] != b.MilliK[j] {
				t.Fatalf("window %d temp %d: %d vs %d", i, j, a.MilliK[j], b.MilliK[j])
			}
		}
	}
}

// TestBatchIntoReusesBuffers pins the zero-steady-state-allocation contract:
// repeated UnmarshalStatsBatchInto/UnmarshalTempsBatchInto calls with the
// same shape must not grow or replace the destination's backing arrays.
func TestBatchIntoReusesBuffers(t *testing.T) {
	in := sampleStatsBatch()
	payload := in.MarshalPayload()
	var dst StatsBatch
	if err := UnmarshalStatsBatchInto(&dst, payload); err != nil {
		t.Fatal(err)
	}
	win0 := &dst.Windows[0]
	pw0 := &dst.Windows[0].PowerUW[0]
	if err := UnmarshalStatsBatchInto(&dst, payload); err != nil {
		t.Fatal(err)
	}
	if &dst.Windows[0] != win0 || &dst.Windows[0].PowerUW[0] != pw0 {
		t.Error("second StatsBatch parse reallocated the destination buffers")
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := UnmarshalStatsBatchInto(&dst, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state StatsBatch parse allocates %.1f/op", allocs)
	}

	tb := TempsBatch{Windows: []Temps{
		{TimePs: 1, MilliK: []uint32{1, 2}},
		{TimePs: 2, MilliK: []uint32{3, 4}},
	}}
	tp := tb.MarshalPayload()
	var tdst TempsBatch
	if err := UnmarshalTempsBatchInto(&tdst, tp); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := UnmarshalTempsBatchInto(&tdst, tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state TempsBatch parse allocates %.1f/op", allocs)
	}
}

func TestBatchRejectsMalformedPayloads(t *testing.T) {
	sb := sampleStatsBatch()
	good := sb.MarshalPayload()
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", good[:1]},
		{"truncated window", good[:10]},
		{"truncated powers", good[:len(good)-2]},
		{"trailing bytes", append(append([]byte(nil), good...), 0xFF)},
	}
	for _, c := range cases {
		if _, err := UnmarshalStatsBatch(c.b); err == nil {
			t.Errorf("stats batch: %s accepted", c.name)
		}
	}
	tgood := (&TempsBatch{Windows: []Temps{{TimePs: 1, MilliK: []uint32{5}}}}).MarshalPayload()
	tcases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", tgood[:1]},
		{"truncated window", tgood[:6]},
		{"truncated temps", tgood[:len(tgood)-1]},
		{"trailing bytes", append(append([]byte(nil), tgood...), 0)},
	}
	for _, c := range tcases {
		if _, err := UnmarshalTempsBatch(c.b); err == nil {
			t.Errorf("temps batch: %s accepted", c.name)
		}
	}
}

// TestMaxStatsBatchFitsFrame checks the sizing helper against the real
// encoder: a MaxStatsBatch-sized batch must fit MaxPayload, one more must
// not.
func TestMaxStatsBatchFitsFrame(t *testing.T) {
	for _, comps := range []int{1, 21, 64} {
		n := MaxStatsBatch(comps)
		if n < 1 {
			t.Fatalf("%d components: MaxStatsBatch = %d", comps, n)
		}
		mk := func(count int) *StatsBatch {
			sb := &StatsBatch{Windows: make([]Stats, count)}
			for i := range sb.Windows {
				sb.Windows[i].PowerUW = make([]uint32, comps)
			}
			return sb
		}
		if got := len(mk(n).MarshalPayload()); got > MaxPayload {
			t.Errorf("%d components: %d windows need %d bytes > MaxPayload %d",
				comps, n, got, MaxPayload)
		}
		if got := len(mk(n + 1).MarshalPayload()); got <= MaxPayload {
			t.Errorf("%d components: %d windows still fit %d bytes — MaxStatsBatch too small",
				comps, n+1, got)
		}
	}
}

// TestBatchMsgTypesNamed keeps the wire enum and its debug names in sync.
func TestBatchMsgTypesNamed(t *testing.T) {
	if MsgStatsBatch.String() != "stats-batch" || MsgTempBatch.String() != "temp-batch" {
		t.Errorf("batch message names: %q, %q", MsgStatsBatch.String(), MsgTempBatch.String())
	}
}
