package etherlink

import "thermemu/internal/sniffer"

// Freezer is the VPCM surface the dispatcher uses when the Ethernet link
// congests: the virtual clock is stopped while the link drains so that no
// statistics are lost and the emulated timing is unaffected (Section 4.2).
type Freezer interface {
	RequestFreeze(source string)
	ReleaseFreeze(source string)
	AddFrozenTime(physCycles uint64)
}

// FreezeSource is the VPCM freeze-source name used by the dispatcher.
const FreezeSource = "ethernet"

// DispatcherStats counts dispatcher activity.
type DispatcherStats struct {
	StatsSent   uint64
	EventsSent  uint64
	TempsRecv   uint64
	CtrlRecv    uint64
	Congestions uint64
	FrozenPhys  uint64 // physical cycles spent frozen on congestion
}

// Dispatcher is the device-side Ethernet engine: it serialises statistics
// messages from the sampler onto the transport, and freezes the virtual
// platform clock through the VPCM whenever the link cannot accept a frame
// immediately.
type Dispatcher struct {
	ep    *Endpoint
	vpcm  Freezer
	stats DispatcherStats
	// drainPhysCycles models how many physical cycles one congested frame
	// costs the emulation while the virtual clock is frozen (FIFO drain at
	// line rate).
	drainPhysCycles uint64
}

// NewDispatcher creates a dispatcher over the transport. drainPhysCycles is
// charged to the VPCM per congestion event.
func NewDispatcher(tr Transport, vpcm Freezer, drainPhysCycles uint64) *Dispatcher {
	return &Dispatcher{
		ep:              NewEndpoint(tr, DeviceMAC, HostMAC),
		vpcm:            vpcm,
		drainPhysCycles: drainPhysCycles,
	}
}

// Stats returns the dispatcher counters.
func (d *Dispatcher) Stats() DispatcherStats { return d.stats }

// Endpoint exposes the underlying typed endpoint (e.g. for control traffic).
func (d *Dispatcher) Endpoint() *Endpoint { return d.ep }

// SendStats transmits one statistics window. On congestion the virtual
// clock is frozen until the transport accepts the frame.
func (d *Dispatcher) SendStats(s *Stats) error {
	b, err := d.ep.frame(MsgStats, s.MarshalPayload()).Marshal()
	if err != nil {
		return err
	}
	ok, err := d.ep.Tr.TrySend(b)
	if err != nil {
		return err
	}
	if !ok {
		// Link congested: stop the virtual clock, block until the FIFO
		// drains, account the frozen time, resume.
		d.stats.Congestions++
		if d.vpcm != nil {
			d.vpcm.RequestFreeze(FreezeSource)
		}
		err = d.ep.Tr.Send(b)
		if d.vpcm != nil {
			d.vpcm.AddFrozenTime(d.drainPhysCycles)
			d.vpcm.ReleaseFreeze(FreezeSource)
		}
		d.stats.FrozenPhys += d.drainPhysCycles
		if err != nil {
			return err
		}
	}
	d.ep.Sent++
	d.stats.StatsSent++
	return nil
}

// SendCtrl transmits a control message (blocking).
func (d *Dispatcher) SendCtrl(op CtrlOp, arg uint64) error {
	return d.ep.Send(MsgCtrl, (&Ctrl{Op: op, Arg: arg}).MarshalPayload())
}

// RecvTemps blocks until the next temperature message arrives, handling
// interleaved control frames via the provided callback (which may be nil).
func (d *Dispatcher) RecvTemps(onCtrl func(*Ctrl)) (*Temps, error) {
	for {
		f, err := d.ep.Recv()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case MsgTemp:
			d.stats.TempsRecv++
			return UnmarshalTemps(f.Payload)
		case MsgCtrl:
			d.stats.CtrlRecv++
			if onCtrl != nil {
				c, err := UnmarshalCtrl(f.Payload)
				if err != nil {
					return nil, err
				}
				onCtrl(c)
			}
		default:
			// Unknown frames are ignored, as real MAC endpoints do.
		}
	}
}

// PumpEvents drains the BRAM ring into MsgEvents frames, freezing the
// virtual clock on congestion like SendStats does. It returns the number of
// events shipped. This is the paper's event-logging path: exhaustive logs
// streamed to the host while count-logging statistics ride the MsgStats
// frames.
func (d *Dispatcher) PumpEvents(ring *sniffer.Ring) (int, error) {
	total := 0
	buf := make([]sniffer.Event, MaxEventsPerFrame)
	for ring.Len() > 0 {
		n := ring.Drain(buf)
		if n == 0 {
			break
		}
		payload := (&Events{Entries: buf[:n]}).MarshalPayload()
		b, err := d.ep.frame(MsgEvents, payload).Marshal()
		if err != nil {
			return total, err
		}
		ok, err := d.ep.Tr.TrySend(b)
		if err != nil {
			return total, err
		}
		if !ok {
			d.stats.Congestions++
			if d.vpcm != nil {
				d.vpcm.RequestFreeze(FreezeSource)
			}
			err = d.ep.Tr.Send(b)
			if d.vpcm != nil {
				d.vpcm.AddFrozenTime(d.drainPhysCycles)
				d.vpcm.ReleaseFreeze(FreezeSource)
			}
			d.stats.FrozenPhys += d.drainPhysCycles
			if err != nil {
				return total, err
			}
		}
		d.ep.Sent++
		d.stats.EventsSent += uint64(n)
		total += n
	}
	return total, nil
}
