package etherlink

import (
	"sync/atomic"
	"time"

	"thermemu/internal/sniffer"
)

// Freezer is the VPCM surface the dispatcher uses when the Ethernet link
// congests: the virtual clock is stopped while the link drains so that no
// statistics are lost and the emulated timing is unaffected (Section 4.2).
type Freezer interface {
	RequestFreeze(source string)
	ReleaseFreeze(source string)
	AddFrozenTime(physCycles uint64)
}

// FreezeAccounter is optionally implemented by Freezers that attribute
// frozen time to a named source (the VPCM does); the dispatcher uses it to
// separate congestion freezes from retransmission freezes.
type FreezeAccounter interface {
	AddFrozenTimeSource(source string, physCycles uint64)
}

// VPCM freeze-source names used by the dispatcher.
const (
	FreezeSource = "ethernet"
	// ResendFreezeSource attributes time frozen while the link protocol
	// heals loss (NACK/resend stalls) rather than plain congestion.
	ResendFreezeSource = "ethernet-resend"
)

// DispatcherStats counts dispatcher activity.
type DispatcherStats struct {
	StatsSent   uint64
	EventsSent  uint64
	TempsRecv   uint64
	CtrlRecv    uint64
	Congestions uint64
	FrozenPhys  uint64 // physical cycles spent frozen on congestion/resend
	Retries     uint64 // recv stalls healed by the reliable protocol
}

// Dispatcher is the device-side Ethernet engine: it serialises statistics
// messages from the sampler onto the transport, and freezes the virtual
// platform clock through the VPCM whenever the link cannot accept a frame
// immediately. Its counters are atomic, so Stats() may be read while the
// loop runs.
type Dispatcher struct {
	ep   *Endpoint
	vpcm Freezer
	// drainPhysCycles models how many physical cycles one congested frame
	// costs the emulation while the virtual clock is frozen (FIFO drain at
	// line rate).
	drainPhysCycles uint64

	statsSent   atomic.Uint64
	eventsSent  atomic.Uint64
	tempsRecv   atomic.Uint64
	ctrlRecv    atomic.Uint64
	congestions atomic.Uint64
	frozenPhys  atomic.Uint64
	retries     atomic.Uint64

	lastSendNs atomic.Int64 // wall clock of the last stats send, for RTT

	// payloadBuf and eventBuf are scratch buffers reused across sends so
	// the per-window hot path does not allocate payloads. The dispatcher is
	// not safe for concurrent sends, so plain fields suffice.
	payloadBuf []byte
	eventBuf   []sniffer.Event
}

// NewDispatcher creates a dispatcher over the transport. drainPhysCycles is
// charged to the VPCM per congestion event.
func NewDispatcher(tr Transport, vpcm Freezer, drainPhysCycles uint64) *Dispatcher {
	return &Dispatcher{
		ep:              NewEndpoint(tr, DeviceMAC, HostMAC),
		vpcm:            vpcm,
		drainPhysCycles: drainPhysCycles,
	}
}

// EnableReliability turns on the endpoint's NACK/resend-window protocol and
// hooks retransmission stalls into the VPCM freeze accounting, preserving
// the freeze-don't-drop guarantee over a faulty link.
func (d *Dispatcher) EnableReliability(cfg ReliableConfig) {
	inner := cfg.OnRetry
	cfg.OnRetry = func(attempt int) {
		d.retries.Add(1)
		d.accountFreeze(ResendFreezeSource)
		if inner != nil {
			inner(attempt)
		}
	}
	d.ep.EnableReliability(cfg)
}

// accountFreeze charges one drain period to the VPCM under the given
// source and mirrors it in the dispatcher/link counters.
func (d *Dispatcher) accountFreeze(source string) {
	if d.vpcm != nil {
		d.vpcm.RequestFreeze(source)
		if fa, ok := d.vpcm.(FreezeAccounter); ok {
			fa.AddFrozenTimeSource(source, d.drainPhysCycles)
		} else {
			d.vpcm.AddFrozenTime(d.drainPhysCycles)
		}
		d.vpcm.ReleaseFreeze(source)
	}
	d.frozenPhys.Add(d.drainPhysCycles)
	d.ep.stats.FrozenPhys.Add(d.drainPhysCycles)
}

// Stats returns a snapshot of the dispatcher counters.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		StatsSent:   d.statsSent.Load(),
		EventsSent:  d.eventsSent.Load(),
		TempsRecv:   d.tempsRecv.Load(),
		CtrlRecv:    d.ctrlRecv.Load(),
		Congestions: d.congestions.Load(),
		FrozenPhys:  d.frozenPhys.Load(),
		Retries:     d.retries.Load(),
	}
}

// Link returns the link-layer metrics aggregate of the dispatcher's
// endpoint (frames, bytes, gaps, CRC errors, retries, latency histogram).
func (d *Dispatcher) Link() *LinkStats { return d.ep.LinkStats() }

// Endpoint exposes the underlying typed endpoint (e.g. for control traffic).
func (d *Dispatcher) Endpoint() *Endpoint { return d.ep }

// sendBackpressured transmits a marshalled frame, freezing the virtual
// clock while the congested FIFO drains (Section 4.2): statistics are never
// dropped, emulated time is never skewed.
func (d *Dispatcher) sendBackpressured(b []byte) error {
	ok, err := d.ep.Tr.TrySend(b)
	if err != nil {
		return err
	}
	if !ok {
		d.congestions.Add(1)
		d.ep.stats.Congestions.Add(1)
		if d.vpcm != nil {
			d.vpcm.RequestFreeze(FreezeSource)
		}
		err = d.ep.Tr.Send(b)
		if d.vpcm != nil {
			if fa, ok := d.vpcm.(FreezeAccounter); ok {
				fa.AddFrozenTimeSource(FreezeSource, d.drainPhysCycles)
			} else {
				d.vpcm.AddFrozenTime(d.drainPhysCycles)
			}
			d.vpcm.ReleaseFreeze(FreezeSource)
		}
		d.frozenPhys.Add(d.drainPhysCycles)
		d.ep.stats.FrozenPhys.Add(d.drainPhysCycles)
		if err != nil {
			return err
		}
	}
	d.ep.noteSent(len(b))
	return nil
}

// SendStats transmits one statistics window. On congestion the virtual
// clock is frozen until the transport accepts the frame.
func (d *Dispatcher) SendStats(s *Stats) error {
	d.payloadBuf = s.AppendPayload(d.payloadBuf[:0])
	b, err := d.ep.nextFrame(MsgStats, d.payloadBuf)
	if err != nil {
		return err
	}
	if err := d.sendBackpressured(b); err != nil {
		return err
	}
	d.statsSent.Add(1)
	d.lastSendNs.Store(time.Now().UnixNano())
	return nil
}

// SendStatsBatch transmits several queued statistics windows in one
// MsgStatsBatch frame (the pipelined loop's catch-up path). The host solves
// the windows in order and answers with a single MsgTempBatch. The batch
// must fit one frame: len(ws) <= MaxStatsBatch(components).
func (d *Dispatcher) SendStatsBatch(sb *StatsBatch) error {
	d.payloadBuf = sb.AppendPayload(d.payloadBuf[:0])
	b, err := d.ep.nextFrame(MsgStatsBatch, d.payloadBuf)
	if err != nil {
		return err
	}
	if err := d.sendBackpressured(b); err != nil {
		return err
	}
	d.statsSent.Add(uint64(len(sb.Windows)))
	d.lastSendNs.Store(time.Now().UnixNano())
	return nil
}

// SendCtrl transmits a control message (blocking).
func (d *Dispatcher) SendCtrl(op CtrlOp, arg uint64) error {
	return d.ep.Send(MsgCtrl, (&Ctrl{Op: op, Arg: arg}).MarshalPayload())
}

// RecvTemps blocks until the next temperature message arrives, handling
// interleaved control frames via the provided callback (which may be nil).
func (d *Dispatcher) RecvTemps(onCtrl func(*Ctrl)) (*Temps, error) {
	t := &Temps{}
	if err := d.RecvTempsInto(t, onCtrl); err != nil {
		return nil, err
	}
	return t, nil
}

// RecvTempsInto is RecvTemps into a caller-owned message, reusing its
// MilliK backing array when its capacity suffices.
func (d *Dispatcher) RecvTempsInto(dst *Temps, onCtrl func(*Ctrl)) error {
	for {
		f, err := d.ep.Recv()
		if err != nil {
			return err
		}
		switch f.Type {
		case MsgTemp:
			d.tempsRecv.Add(1)
			if t0 := d.lastSendNs.Swap(0); t0 != 0 {
				d.ep.stats.ObserveLatency(time.Duration(time.Now().UnixNano() - t0))
			}
			return UnmarshalTempsInto(dst, f.Payload)
		case MsgCtrl:
			d.ctrlRecv.Add(1)
			if onCtrl != nil {
				c, err := UnmarshalCtrl(f.Payload)
				if err != nil {
					return err
				}
				onCtrl(c)
			}
		default:
			// Unknown frames are ignored, as real MAC endpoints do.
		}
	}
}

// RecvTempsBatchInto blocks until the next MsgTempBatch arrives (the answer
// to SendStatsBatch), handling interleaved control frames like RecvTemps.
func (d *Dispatcher) RecvTempsBatchInto(dst *TempsBatch, onCtrl func(*Ctrl)) error {
	for {
		f, err := d.ep.Recv()
		if err != nil {
			return err
		}
		switch f.Type {
		case MsgTempBatch:
			if t0 := d.lastSendNs.Swap(0); t0 != 0 {
				d.ep.stats.ObserveLatency(time.Duration(time.Now().UnixNano() - t0))
			}
			if err := UnmarshalTempsBatchInto(dst, f.Payload); err != nil {
				return err
			}
			d.tempsRecv.Add(uint64(len(dst.Windows)))
			return nil
		case MsgCtrl:
			d.ctrlRecv.Add(1)
			if onCtrl != nil {
				c, err := UnmarshalCtrl(f.Payload)
				if err != nil {
					return err
				}
				onCtrl(c)
			}
		default:
			// Unknown frames are ignored, as real MAC endpoints do.
		}
	}
}

// PumpEvents drains the BRAM ring into MsgEvents frames, freezing the
// virtual clock on congestion like SendStats does. It returns the number of
// events shipped. This is the paper's event-logging path: exhaustive logs
// streamed to the host while count-logging statistics ride the MsgStats
// frames.
func (d *Dispatcher) PumpEvents(ring *sniffer.Ring) (int, error) {
	total := 0
	if d.eventBuf == nil {
		d.eventBuf = make([]sniffer.Event, MaxEventsPerFrame)
	}
	buf := d.eventBuf
	for ring.Len() > 0 {
		n := ring.Drain(buf)
		if n == 0 {
			break
		}
		payload := (&Events{Entries: buf[:n]}).MarshalPayload()
		b, err := d.ep.nextFrame(MsgEvents, payload)
		if err != nil {
			return total, err
		}
		if err := d.sendBackpressured(b); err != nil {
			return total, err
		}
		d.eventsSent.Add(uint64(n))
		total += n
	}
	return total, nil
}
