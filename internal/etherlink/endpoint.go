package etherlink

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Errors of the sequencing/reliability layer.
var (
	// ErrSeqGap marks a frame that arrived ahead of the expected sequence
	// number on a non-reliable endpoint (frames were lost in between).
	ErrSeqGap = errors.New("etherlink: sequence gap")
	// ErrLinkStalled marks a reliable Recv that exhausted its retry budget
	// without making progress: the peer is gone or the link is dead.
	ErrLinkStalled = errors.New("etherlink: link stalled")
	// ErrResendWindow marks a resend request for a frame that has already
	// left the resend window; the session cannot be healed.
	ErrResendWindow = errors.New("etherlink: resend window overrun")
)

// ctrlStopSeq is the out-of-band sequence number a connection supervisor
// stamps on the graceful CtrlStop it emits at shutdown (it has no view of
// the endpoint's sequence space). CtrlStop is accepted regardless of
// sequence position — it is terminal, ordering no longer matters.
const ctrlStopSeq = ^uint32(0)

// seqBefore reports whether a precedes b in wraparound-safe order.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// ReliableConfig tunes an endpoint's loss-recovery protocol.
type ReliableConfig struct {
	// Window is how many sent frames are buffered for retransmission.
	Window int
	// RetryTimeout is how long Recv waits before re-soliciting the peer
	// with a NACK for the expected sequence number.
	RetryTimeout time.Duration
	// MaxRetries bounds consecutive solicits without any frame arriving;
	// exceeding it returns ErrLinkStalled. RetryTimeout × MaxRetries is the
	// endpoint's idle budget.
	MaxRetries int
	// OnRetry, when non-nil, observes every re-solicit (the dispatcher
	// hooks VPCM freeze accounting here so retransmission stalls do not
	// skew the emulated timing).
	OnRetry func(attempt int)
}

// DefaultReliability returns the production defaults: a 128-frame resend
// window and a 250 ms × 40 ≈ 10 s idle budget.
func DefaultReliability() ReliableConfig {
	return ReliableConfig{Window: 128, RetryTimeout: 250 * time.Millisecond, MaxRetries: 40}
}

func (c *ReliableConfig) fillDefaults() {
	d := DefaultReliability()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = d.RetryTimeout
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
}

// maxRecoveries bounds in-protocol recovery events (gaps, duplicates,
// corrupt frames) within one Recv call, so a pathological peer cannot spin
// the loop forever. Recoveries are cheap (a frame arrived), so the bound is
// generous.
const maxRecoveries = 10_000

type winEntry struct {
	seq   uint32
	frame []byte
}

// Endpoint is a typed wrapper over a Transport: it stamps addresses and
// sequence numbers on the way out, and validates destination MAC, CRC and
// sequence contiguity on the way in. With EnableReliability it additionally
// heals loss, duplication, reordering and corruption through a NACK/
// resend-window handshake, so the dispatcher's freeze-don't-drop guarantee
// holds over a faulty link.
//
// Counters are atomic: Stats()/SentCount()/ReceivedCount() may be read
// concurrently with the protocol loop.
type Endpoint struct {
	Tr     Transport
	Local  MAC
	Remote MAC

	seq      atomic.Uint32 // next sequence number to stamp
	sent     atomic.Uint64
	received atomic.Uint64
	expect   uint32 // next expected peer sequence number (Recv loop only)
	stats    *LinkStats

	rel *ReliableConfig // nil = plain (validate, but surface gaps as errors)

	sendMu sync.Mutex
	window []winEntry // resend ring, oldest first
}

// NewEndpoint builds an endpoint with the given addresses.
func NewEndpoint(tr Transport, local, remote MAC) *Endpoint {
	return &Endpoint{Tr: tr, Local: local, Remote: remote, stats: &LinkStats{}}
}

// SetLinkStats shares a metrics aggregate (e.g. one per server) with the
// endpoint; by default every endpoint owns a private LinkStats.
func (e *Endpoint) SetLinkStats(s *LinkStats) {
	if s != nil {
		e.stats = s
	}
}

// LinkStats returns the endpoint's metrics aggregate.
func (e *Endpoint) LinkStats() *LinkStats { return e.stats }

// EnableReliability switches the endpoint to the NACK/resend-window
// protocol. Zero-valued config fields take the DefaultReliability values.
// Both peers must enable it for loss healing to converge.
func (e *Endpoint) EnableReliability(cfg ReliableConfig) {
	cfg.fillDefaults()
	e.rel = &cfg
}

// NextSeq returns the sequence number the next sent frame will carry.
func (e *Endpoint) NextSeq() uint32 { return e.seq.Load() }

// SentCount and ReceivedCount report delivered traffic (frames accepted by
// the transport / frames handed to the caller).
func (e *Endpoint) SentCount() uint64     { return e.sent.Load() }
func (e *Endpoint) ReceivedCount() uint64 { return e.received.Load() }

// nextFrame marshals a typed frame stamped with the next sequence number
// and, in reliable mode, records it in the resend window.
func (e *Endpoint) nextFrame(typ MsgType, payload []byte) ([]byte, error) {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	seq := e.seq.Load()
	f := &Frame{Dst: e.Remote, Src: e.Local, Type: typ, Seq: seq, Payload: payload}
	b, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	e.seq.Add(1)
	if e.rel != nil {
		if len(e.window) >= e.rel.Window {
			e.window = e.window[1:]
		}
		e.window = append(e.window, winEntry{seq: seq, frame: b})
	}
	return b, nil
}

// noteSent accounts one frame accepted by the transport.
func (e *Endpoint) noteSent(n int) {
	e.sent.Add(1)
	e.stats.FramesSent.Add(1)
	e.stats.BytesSent.Add(uint64(n))
}

func (e *Endpoint) noteRecv(n int) {
	e.received.Add(1)
	e.stats.FramesRecv.Add(1)
	e.stats.BytesRecv.Add(uint64(n))
}

// Send marshals and transmits a typed message, blocking until accepted.
func (e *Endpoint) Send(typ MsgType, payload []byte) error {
	b, err := e.nextFrame(typ, payload)
	if err != nil {
		return err
	}
	if err := e.Tr.Send(b); err != nil {
		return err
	}
	e.noteSent(len(b))
	return nil
}

// sendNack best-effort requests a resend of everything from seq onward.
// NACKs ride outside the sequence space and are never buffered: a lost NACK
// is replaced by the next retry timeout.
func (e *Endpoint) sendNack(seq uint32) {
	f := &Frame{Dst: e.Remote, Src: e.Local, Type: MsgNack, Seq: seq}
	b, err := f.Marshal()
	if err != nil {
		return
	}
	if ok, _ := e.Tr.TrySend(b); ok {
		e.stats.NacksSent.Add(1)
	}
}

// resendFrom retransmits every buffered frame with sequence >= from. A
// request beyond the buffered horizon is unhealable and returns
// ErrResendWindow; a request for frames not yet sent is a stale NACK and is
// ignored. Retransmission is best-effort (TrySend): a congested link stops
// the burst and the peer's next NACK resumes it.
func (e *Endpoint) resendFrom(from uint32) error {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	next := e.seq.Load()
	if !seqBefore(from, next) {
		return nil // nothing outstanding at or past `from`
	}
	if len(e.window) == 0 || seqBefore(from, e.window[0].seq) {
		oldest := next
		if len(e.window) > 0 {
			oldest = e.window[0].seq
		}
		return fmt.Errorf("%w: peer wants seq %d, oldest buffered %d", ErrResendWindow, from, oldest)
	}
	for _, w := range e.window {
		if seqBefore(w.seq, from) {
			continue
		}
		ok, err := e.Tr.TrySend(w.frame)
		if err != nil || !ok {
			return nil // congested or transient: the peer will re-NACK
		}
		e.stats.Resent.Add(1)
	}
	return nil
}

// isCtrlStop reports whether the frame is a terminal CtrlStop, which is
// honoured regardless of its sequence position.
func isCtrlStop(f *Frame) bool {
	if f.Type != MsgCtrl {
		return false
	}
	c, err := UnmarshalCtrl(f.Payload)
	return err == nil && c.Op == CtrlStop
}

// Recv receives the next in-order frame. In reliable mode it transparently
// heals gaps, duplicates and corruption via the NACK protocol, returning
// ErrLinkStalled when the retry budget runs out. In plain mode a sequence
// gap is surfaced as an ErrSeqGap-wrapped error.
func (e *Endpoint) Recv() (*Frame, error) {
	if e.rel == nil {
		return e.recvPlain()
	}
	return e.recvReliable()
}

func (e *Endpoint) recvPlain() (*Frame, error) {
	for {
		b, err := e.Tr.Recv()
		if err != nil {
			return nil, err
		}
		f, err := Unmarshal(b)
		if err != nil {
			if errors.Is(err, ErrBadCRC) {
				e.stats.CRCErrors.Add(1)
			}
			return nil, err
		}
		if f.Dst != e.Local {
			// Not ours: real MAC endpoints drop silently.
			e.stats.DstMismatch.Add(1)
			continue
		}
		switch {
		case f.Type == MsgNack || f.Type == MsgAck:
			// Out-of-band frames carry no data sequence number.
		case isCtrlStop(f):
			// Terminal; accept at any sequence position.
		case f.Seq == e.expect:
			e.expect++
		case seqBefore(f.Seq, e.expect):
			e.stats.DupFrames.Add(1)
			return nil, fmt.Errorf("%w: duplicate seq %d, expected %d", ErrSeqGap, f.Seq, e.expect)
		default:
			e.stats.SeqGaps.Add(1)
			return nil, fmt.Errorf("%w: got seq %d, expected %d", ErrSeqGap, f.Seq, e.expect)
		}
		e.noteRecv(len(b))
		return f, nil
	}
}

func (e *Endpoint) recvReliable() (*Frame, error) {
	retries := 0 // consecutive timeouts without any frame
	recov := 0   // in-protocol recoveries this call
	for {
		if recov > maxRecoveries {
			return nil, fmt.Errorf("%w: %d recoveries without progress", ErrLinkStalled, recov)
		}
		e.Tr.SetRecvDeadline(time.Now().Add(e.rel.RetryTimeout))
		b, err := e.Tr.Recv()
		if err != nil {
			if errors.Is(err, ErrRecvTimeout) {
				retries++
				if retries > e.rel.MaxRetries {
					return nil, fmt.Errorf("%w: no frame within %v (%d solicits)",
						ErrLinkStalled, e.rel.RetryTimeout, retries-1)
				}
				e.stats.Retries.Add(1)
				if e.rel.OnRetry != nil {
					e.rel.OnRetry(retries)
				}
				// Re-solicit: asks the peer to retransmit from our expected
				// position. If our own last frame was the one lost, the
				// peer's symmetric timeout NACK recovers it.
				e.sendNack(e.expect)
				continue
			}
			return nil, err
		}
		retries = 0
		f, err := Unmarshal(b)
		if err != nil {
			// Any parse failure on an established link is corruption: the
			// frame's sequence number cannot be trusted, so solicit from
			// the expected position.
			recov++
			e.stats.CRCErrors.Add(1)
			e.sendNack(e.expect)
			continue
		}
		if f.Dst != e.Local {
			recov++
			e.stats.DstMismatch.Add(1)
			continue
		}
		if f.Type == MsgNack {
			e.stats.NacksRecv.Add(1)
			if err := e.resendFrom(f.Seq); err != nil {
				return nil, err
			}
			continue
		}
		switch {
		case f.Seq == e.expect:
			e.expect++
			e.noteRecv(len(b))
			return f, nil
		case isCtrlStop(f):
			e.noteRecv(len(b))
			return f, nil
		case seqBefore(f.Seq, e.expect):
			// Already delivered; the duplicate is dropped. If the peer is
			// resending because it lost our reply, its NACK (carried
			// separately) or our next timeout solicits the heal.
			recov++
			e.stats.DupFrames.Add(1)
			continue
		default:
			// Gap: frames between expect and f.Seq were lost. Go-back-N:
			// drop this frame and solicit a resend from the hole.
			recov++
			e.stats.SeqGaps.Add(1)
			e.sendNack(e.expect)
			continue
		}
	}
}
