package etherlink

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"thermemu/internal/sniffer"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Dst: HostMAC, Src: DeviceMAC, Type: MsgStats, Seq: 42,
		Payload: []byte{1, 2, 3, 4, 5}}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type || g.Seq != f.Seq {
		t.Errorf("header mismatch: %+v vs %+v", g, f)
	}
	if string(g.Payload) != string(f.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(seq uint32, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Frame{Dst: HostMAC, Src: DeviceMAC, Type: MsgTemp, Seq: seq, Payload: payload}
		b, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if out.Seq != seq || len(out.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if out.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	f := &Frame{Dst: HostMAC, Src: DeviceMAC, Type: MsgStats, Seq: 7,
		Payload: []byte("statistics")}
	b, _ := f.Marshal()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		c := append([]byte(nil), b...)
		c[r.Intn(len(c))] ^= 1 << uint(r.Intn(8))
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("trial %d: corrupted frame accepted", trial)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrTooShort) {
		t.Errorf("short frame: %v", err)
	}
	big := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := big.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversized: %v", err)
	}
	ok, _ := (&Frame{Type: MsgAck}).Marshal()
	bad := append([]byte(nil), ok...)
	bad[12] = 0x08 // wrong ethertype
	recrc := func(b []byte) {
		f, _ := Unmarshal(ok)
		_ = f
	}
	_ = recrc
	if _, err := Unmarshal(bad); err == nil {
		t.Error("wrong ethertype accepted")
	}
}

func TestStatsPayloadRoundTrip(t *testing.T) {
	s := &Stats{Cycle: 123456789, WindowPs: 10_000_000_000, PowerUW: []uint32{100, 0, 55_000, 1 << 30}}
	got, err := UnmarshalStats(s.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != s.Cycle || got.WindowPs != s.WindowPs || len(got.PowerUW) != 4 {
		t.Errorf("got %+v", got)
	}
	for i := range s.PowerUW {
		if got.PowerUW[i] != s.PowerUW[i] {
			t.Errorf("power %d: %d != %d", i, got.PowerUW[i], s.PowerUW[i])
		}
	}
	if _, err := UnmarshalStats([]byte{1}); err == nil {
		t.Error("short stats accepted")
	}
	if _, err := UnmarshalStats(make([]byte, 19)); err == nil {
		t.Error("inconsistent stats length accepted")
	}
}

func TestTempsPayloadRoundTrip(t *testing.T) {
	src := []float64{300.0, 350.125, 340.9996}
	tm := TempsFromKelvin(42_000, src)
	got, err := UnmarshalTemps(tm.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if got.TimePs != 42_000 {
		t.Errorf("time = %d", got.TimePs)
	}
	for i, want := range src {
		if d := got.Kelvin(i) - want; d > 0.001 || d < -0.001 {
			t.Errorf("cell %d: %.4f K, want %.4f K", i, got.Kelvin(i), want)
		}
	}
	if _, err := UnmarshalTemps([]byte{0}); err == nil {
		t.Error("short temps accepted")
	}
}

func TestCtrlPayloadRoundTrip(t *testing.T) {
	c := &Ctrl{Op: CtrlFreeze, Arg: 999}
	got, err := UnmarshalCtrl(c.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != CtrlFreeze || got.Arg != 999 {
		t.Errorf("got %+v", got)
	}
	if _, err := UnmarshalCtrl([]byte{1, 2}); err == nil {
		t.Error("short ctrl accepted")
	}
	if CtrlStart.String() != "start" || CtrlOp(99).String() == "" {
		t.Error("ctrl op strings")
	}
}

func TestLoopbackTransport(t *testing.T) {
	dev, host := LoopbackPair(4)
	if err := dev.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := host.Recv()
	if err != nil || string(b) != "hello" {
		t.Fatalf("recv %q, %v", b, err)
	}
	// Reverse direction.
	if err := host.Send([]byte("temps")); err != nil {
		t.Fatal(err)
	}
	if b, _ := dev.Recv(); string(b) != "temps" {
		t.Errorf("reverse recv %q", b)
	}
}

func TestLoopbackCongestion(t *testing.T) {
	dev, _ := LoopbackPair(2)
	for i := 0; i < 2; i++ {
		if ok, _ := dev.TrySend([]byte{byte(i)}); !ok {
			t.Fatalf("send %d rejected", i)
		}
	}
	if ok, _ := dev.TrySend([]byte{9}); ok {
		t.Error("TrySend succeeded on full link")
	}
}

func TestLoopbackClose(t *testing.T) {
	dev, host := LoopbackPair(2)
	dev.Send([]byte("x"))
	dev.Close()
	// Host can still drain queued frames, then sees EOF.
	if b, err := host.Recv(); err != nil || string(b) != "x" {
		t.Fatalf("drain after close: %q, %v", b, err)
	}
	if _, err := host.Recv(); err != io.EOF {
		t.Errorf("after drain: %v, want EOF", err)
	}
	if err := dev.Send([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

type fakeFreezer struct {
	mu       sync.Mutex
	frozen   map[string]bool
	events   int
	frozenCy uint64
}

func newFakeFreezer() *fakeFreezer { return &fakeFreezer{frozen: map[string]bool{}} }

func (f *fakeFreezer) RequestFreeze(s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozen[s] = true
	f.events++
}
func (f *fakeFreezer) ReleaseFreeze(s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.frozen, s)
}
func (f *fakeFreezer) AddFrozenTime(c uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozenCy += c
}

func TestDispatcherCongestionFreezesClock(t *testing.T) {
	dev, host := LoopbackPair(1)
	fz := newFakeFreezer()
	d := NewDispatcher(dev, fz, 500)
	// Slow consumer that drains one frame after a delay.
	go func() {
		time.Sleep(10 * time.Millisecond)
		for {
			if _, err := host.Recv(); err != nil {
				return
			}
		}
	}()
	s := &Stats{Cycle: 1, WindowPs: 1, PowerUW: []uint32{1}}
	if err := d.SendStats(s); err != nil { // fills the FIFO
		t.Fatal(err)
	}
	if err := d.SendStats(s); err != nil { // congested: must freeze+block
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Congestions == 0 {
		t.Error("no congestion recorded")
	}
	if fz.events == 0 || fz.frozenCy != 500*st.Congestions {
		t.Errorf("freezer events=%d frozen=%d", fz.events, fz.frozenCy)
	}
	fz.mu.Lock()
	stillFrozen := len(fz.frozen) > 0
	fz.mu.Unlock()
	if stillFrozen {
		t.Error("clock left frozen after congestion resolved")
	}
	dev.Close()
}

func TestDispatcherTempsAndCtrl(t *testing.T) {
	dev, hostTr := LoopbackPair(8)
	d := NewDispatcher(dev, nil, 0)
	host := NewEndpoint(hostTr, HostMAC, DeviceMAC)
	// Host sends a ctrl then a temps frame.
	if err := host.Send(MsgCtrl, (&Ctrl{Op: CtrlStart, Arg: 5}).MarshalPayload()); err != nil {
		t.Fatal(err)
	}
	if err := host.Send(MsgTemp, TempsFromKelvin(10, []float64{301, 302}).MarshalPayload()); err != nil {
		t.Fatal(err)
	}
	var gotCtrl *Ctrl
	tm, err := d.RecvTemps(func(c *Ctrl) { gotCtrl = c })
	if err != nil {
		t.Fatal(err)
	}
	if gotCtrl == nil || gotCtrl.Op != CtrlStart || gotCtrl.Arg != 5 {
		t.Errorf("ctrl = %+v", gotCtrl)
	}
	if len(tm.MilliK) != 2 || tm.Kelvin(1) != 302 {
		t.Errorf("temps = %+v", tm)
	}
	st := d.Stats()
	if st.TempsRecv != 1 || st.CtrlRecv != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		stats *Stats
		err   error
	}
	res := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			res <- result{nil, err}
			return
		}
		host := NewEndpoint(NewTCP(conn, 16), HostMAC, DeviceMAC)
		f, err := host.Recv()
		if err != nil {
			res <- result{nil, err}
			return
		}
		s, err := UnmarshalStats(f.Payload)
		if err != nil {
			res <- result{nil, err}
			return
		}
		// Answer with temperatures.
		err = host.Send(MsgTemp, TempsFromKelvin(77, []float64{315.5}).MarshalPayload())
		res <- result{s, err}
	}()

	tr, err := Dial(l.Addr().String(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	d := NewDispatcher(tr, nil, 0)
	want := &Stats{Cycle: 99, WindowPs: 10_000, PowerUW: []uint32{123, 456}}
	if err := d.SendStats(want); err != nil {
		t.Fatal(err)
	}
	tm, err := d.RecvTemps(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kelvin(0) != 315.5 {
		t.Errorf("temp = %v", tm.Kelvin(0))
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.stats.Cycle != 99 || r.stats.PowerUW[1] != 456 {
		t.Errorf("host got %+v", r.stats)
	}
}

func TestMACString(t *testing.T) {
	if DeviceMAC.String() != "02:54:45:4d:55:01" {
		t.Errorf("got %s", DeviceMAC)
	}
}

func TestEndpointSequenceNumbers(t *testing.T) {
	dev, host := LoopbackPair(8)
	e := NewEndpoint(dev, DeviceMAC, HostMAC)
	h := NewEndpoint(host, HostMAC, DeviceMAC)
	for i := uint32(0); i < 3; i++ {
		if e.NextSeq() != i {
			t.Errorf("next seq = %d, want %d", e.NextSeq(), i)
		}
		if err := e.Send(MsgAck, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 3; i++ {
		f, err := h.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != i {
			t.Errorf("recv seq = %d, want %d", f.Seq, i)
		}
	}
	if e.SentCount() != 3 || h.ReceivedCount() != 3 {
		t.Errorf("counters: sent=%d recv=%d", e.SentCount(), h.ReceivedCount())
	}
}

func TestEventsPayloadRoundTrip(t *testing.T) {
	in := &Events{Entries: []sniffer.Event{
		{Cycle: 1, Source: 2, Kind: sniffer.EvMemWrite, Addr: 0x1000, Info: 42},
		{Cycle: 999999, Source: 7, Kind: sniffer.EvFetch, Addr: 0xFFFF_FFF0, Info: 0},
	}}
	out, err := UnmarshalEvents(in.MarshalPayload())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d", len(out.Entries))
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, out.Entries[i], in.Entries[i])
		}
	}
	if _, err := UnmarshalEvents([]byte{9}); err == nil {
		t.Error("short events payload accepted")
	}
	if _, err := UnmarshalEvents(make([]byte, 2+5)); err == nil {
		t.Error("misaligned events payload accepted")
	}
	// A full frame's worth of events still fits the MTU.
	big := &Events{Entries: make([]sniffer.Event, MaxEventsPerFrame)}
	if len(big.MarshalPayload()) > MaxPayload {
		t.Error("max batch exceeds the MTU")
	}
}

func TestDispatcherPumpEvents(t *testing.T) {
	dev, host := LoopbackPair(4)
	d := NewDispatcher(dev, nil, 0)
	ring := sniffer.NewRing(500)
	for i := 0; i < 200; i++ {
		ring.Push(sniffer.Event{Cycle: uint64(i), Kind: sniffer.EvBusTxn})
	}
	type res struct {
		events int
		frames int
		err    error
	}
	resCh := make(chan res, 1)
	go func() {
		ep := NewEndpoint(host, HostMAC, DeviceMAC)
		var r res
		for r.events < 200 {
			f, err := ep.Recv()
			if err != nil {
				r.err = err
				break
			}
			if f.Type != MsgEvents {
				continue
			}
			evs, err := UnmarshalEvents(f.Payload)
			if err != nil {
				r.err = err
				break
			}
			r.frames++
			r.events += len(evs.Entries)
		}
		resCh <- r
	}()
	n, err := d.PumpEvents(ring)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 || ring.Len() != 0 {
		t.Fatalf("pumped %d, ring left %d", n, ring.Len())
	}
	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.events != 200 || r.frames < 3 {
		t.Errorf("host saw %d events in %d frames", r.events, r.frames)
	}
	if d.Stats().EventsSent != 200 {
		t.Errorf("dispatcher counted %d events", d.Stats().EventsSent)
	}
}
