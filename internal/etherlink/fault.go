package etherlink

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrLinkCut is returned by a FaultTransport after its configured
// mid-stream disconnect has triggered.
var ErrLinkCut = fmt.Errorf("etherlink: fault-injected link cut: %w", ErrClosed)

// FaultConfig describes the impairments of one direction of a faulty link.
// Rates are probabilities per frame in [0, 1].
type FaultConfig struct {
	Drop    float64       // frame silently discarded
	Dup     float64       // frame delivered twice
	Reorder float64       // frame held back and swapped with its successor
	Corrupt float64       // one random bit flipped
	Delay   time.Duration // max extra per-frame latency (uniform in [0, Delay])
	// CutAfter, when > 0, severs the link after this many frames have
	// crossed in this direction (models a mid-stream disconnect).
	CutAfter int
}

// Zero reports whether the config injects nothing.
func (c FaultConfig) Zero() bool {
	return c.Drop == 0 && c.Dup == 0 && c.Reorder == 0 && c.Corrupt == 0 &&
		c.Delay == 0 && c.CutAfter == 0
}

// ParseFaultSpec parses a comma-separated impairment spec such as
// "drop=0.01,dup=0.005,reorder=0.01,corrupt=0.001,delay=2ms,cut=500".
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("etherlink: fault spec %q: want key=value", kv)
		}
		switch k {
		case "drop", "dup", "reorder", "corrupt":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("etherlink: fault rate %s=%q: want a probability in [0,1]", k, v)
			}
			switch k {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "reorder":
				cfg.Reorder = p
			case "corrupt":
				cfg.Corrupt = p
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("etherlink: fault delay %q: %v", v, err)
			}
			cfg.Delay = d
		case "cut":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("etherlink: fault cut %q: want a frame count", v)
			}
			cfg.CutAfter = n
		default:
			return cfg, fmt.Errorf("etherlink: unknown fault key %q", k)
		}
	}
	return cfg, nil
}

// FaultCounts tallies the impairments a leg actually injected.
type FaultCounts struct {
	Frames     uint64 // frames that crossed this leg
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	Delayed    uint64
	Cut        bool
}

type faultLeg struct {
	cfg    FaultConfig
	counts FaultCounts
	held   []byte   // reorder hold-back slot
	ready  [][]byte // frames queued for delivery (recv side only)
}

// FaultTransport wraps a Transport and injects seeded, per-direction frame
// faults — drops, duplicates, reordering, bit corruption, latency and a
// mid-stream disconnect — so every protocol invariant can be tested under
// loss. The send leg impairs outgoing frames, the recv leg incoming ones.
type FaultTransport struct {
	inner Transport

	mu   sync.Mutex
	rng  *rand.Rand
	send faultLeg
	recv faultLeg
}

// NewFaultTransport wraps inner with the given per-direction impairments.
// The PRNG is seeded, so a given (seed, traffic) pair replays identically.
func NewFaultTransport(inner Transport, seed int64, send, recv FaultConfig) *FaultTransport {
	return &FaultTransport{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		send:  faultLeg{cfg: send},
		recv:  faultLeg{cfg: recv},
	}
}

// Counts returns the impairments injected so far on each leg.
func (ft *FaultTransport) Counts() (send, recv FaultCounts) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.send.counts, ft.recv.counts
}

// corrupt flips one random bit of a copy of the frame.
func (ft *FaultTransport) corrupt(b []byte) []byte {
	c := append([]byte(nil), b...)
	if len(c) > 0 {
		c[ft.rng.Intn(len(c))] ^= 1 << uint(ft.rng.Intn(8))
	}
	return c
}

// sendPlan decides, under the lock, what a send-leg frame turns into.
// It returns the frames to emit (possibly none), a delay, and whether the
// link was cut.
func (ft *FaultTransport) sendPlan(frame []byte) (out [][]byte, delay time.Duration, cut bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	leg := &ft.send
	if leg.counts.Cut {
		return nil, 0, true
	}
	leg.counts.Frames++
	if leg.cfg.CutAfter > 0 && leg.counts.Frames > uint64(leg.cfg.CutAfter) {
		leg.counts.Cut = true
		return nil, 0, true
	}
	if ft.rng.Float64() < leg.cfg.Drop {
		leg.counts.Dropped++
		return nil, 0, false
	}
	f := frame
	if ft.rng.Float64() < leg.cfg.Corrupt {
		leg.counts.Corrupted++
		f = ft.corrupt(f)
	}
	if leg.held != nil {
		// A previous frame is being held back: this one overtakes it.
		out = append(out, f, leg.held)
		leg.held = nil
		leg.counts.Reordered++
	} else if ft.rng.Float64() < leg.cfg.Reorder {
		leg.held = append([]byte(nil), f...)
	} else {
		out = append(out, f)
	}
	if len(out) > 0 && ft.rng.Float64() < leg.cfg.Dup {
		leg.counts.Duplicated++
		out = append(out, out[0])
	}
	if leg.cfg.Delay > 0 {
		leg.counts.Delayed++
		delay = time.Duration(ft.rng.Int63n(int64(leg.cfg.Delay) + 1))
	}
	return out, delay, false
}

func (ft *FaultTransport) Send(frame []byte) error {
	out, delay, cut := ft.sendPlan(frame)
	if cut {
		ft.inner.Close()
		return ErrLinkCut
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	for _, f := range out {
		if err := ft.inner.Send(f); err != nil {
			return err
		}
	}
	return nil
}

func (ft *FaultTransport) TrySend(frame []byte) (bool, error) {
	out, _, cut := ft.sendPlan(frame)
	if cut {
		ft.inner.Close()
		return false, ErrLinkCut
	}
	if len(out) == 0 {
		return true, nil // dropped or held: the link "accepted" it
	}
	ok, err := ft.inner.TrySend(out[0])
	if err != nil || !ok {
		return ok, err
	}
	for _, f := range out[1:] {
		// Best-effort for the extra copies; a full FIFO just loses them,
		// which is exactly what this transport is for.
		if _, err := ft.inner.TrySend(f); err != nil {
			return true, nil
		}
	}
	return true, nil
}

func (ft *FaultTransport) Recv() ([]byte, error) {
	for {
		ft.mu.Lock()
		if n := len(ft.recv.ready); n > 0 {
			f := ft.recv.ready[0]
			ft.recv.ready = ft.recv.ready[1:]
			ft.mu.Unlock()
			return f, nil
		}
		if ft.recv.counts.Cut {
			ft.mu.Unlock()
			return nil, ErrLinkCut
		}
		ft.mu.Unlock()

		b, err := ft.inner.Recv()
		if err != nil {
			return nil, err
		}

		ft.mu.Lock()
		leg := &ft.recv
		leg.counts.Frames++
		if leg.cfg.CutAfter > 0 && leg.counts.Frames > uint64(leg.cfg.CutAfter) {
			leg.counts.Cut = true
			ft.mu.Unlock()
			ft.inner.Close()
			return nil, ErrLinkCut
		}
		if ft.rng.Float64() < leg.cfg.Drop {
			leg.counts.Dropped++
			ft.mu.Unlock()
			continue
		}
		if ft.rng.Float64() < leg.cfg.Corrupt {
			leg.counts.Corrupted++
			b = ft.corrupt(b)
		}
		if leg.held != nil {
			// Deliver the newcomer first, then the held frame: swapped.
			leg.ready = append(leg.ready, leg.held)
			leg.held = nil
			leg.counts.Reordered++
		} else if ft.rng.Float64() < leg.cfg.Reorder {
			leg.held = b
			ft.mu.Unlock()
			continue
		}
		if ft.rng.Float64() < leg.cfg.Dup {
			leg.counts.Duplicated++
			leg.ready = append(leg.ready, append([]byte(nil), b...))
		}
		var delay time.Duration
		if leg.cfg.Delay > 0 {
			leg.counts.Delayed++
			delay = time.Duration(ft.rng.Int63n(int64(leg.cfg.Delay) + 1))
		}
		ft.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		return b, nil
	}
}

func (ft *FaultTransport) SetRecvDeadline(t time.Time) error {
	return ft.inner.SetRecvDeadline(t)
}

func (ft *FaultTransport) Close() error { return ft.inner.Close() }
