package etherlink

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("drop=0.01,dup=0.005,reorder=0.01,corrupt=0.001,delay=2ms,cut=500")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Drop: 0.01, Dup: 0.005, Reorder: 0.01, Corrupt: 0.001,
		Delay: 2 * time.Millisecond, CutAfter: 500}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if cfg.Zero() {
		t.Error("non-empty config reported Zero")
	}
	empty, err := ParseFaultSpec("  ")
	if err != nil || !empty.Zero() {
		t.Errorf("blank spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "delay=-1s", "cut=x", "frob=1", "drop"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestFaultTransportDeterminism verifies the seeded PRNG: the same seed and
// traffic must inject the same faults, so failures replay.
func TestFaultTransportDeterminism(t *testing.T) {
	run := func(seed int64) (FaultCounts, FaultCounts) {
		dev, host := LoopbackPair(64)
		defer host.Close()
		cfg := FaultConfig{Drop: 0.2, Dup: 0.2, Reorder: 0.2, Corrupt: 0.2}
		ft := NewFaultTransport(dev, seed, cfg, cfg)
		for i := 0; i < 50; i++ {
			ft.Send([]byte{byte(i), 1, 2, 3})
			host.Send([]byte{byte(i), 4, 5, 6})
		}
		ft.SetRecvDeadline(time.Now().Add(10 * time.Millisecond))
		for {
			if _, err := ft.Recv(); err != nil {
				break
			}
		}
		return ft.Counts()
	}
	s1, r1 := run(42)
	s2, r2 := run(42)
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed diverged:\nsend %+v vs %+v\nrecv %+v vs %+v", s1, s2, r1, r2)
	}
	if s1.Dropped == 0 && s1.Duplicated == 0 && s1.Reordered == 0 && s1.Corrupted == 0 {
		t.Error("20% rates injected nothing over 50 frames")
	}
}

// TestFaultTransportCut verifies the mid-stream disconnect: after CutAfter
// frames the link returns the typed ErrLinkCut.
func TestFaultTransportCut(t *testing.T) {
	dev, host := LoopbackPair(64)
	defer host.Close()
	ft := NewFaultTransport(dev, 1, FaultConfig{CutAfter: 3}, FaultConfig{})
	for i := 0; i < 3; i++ {
		if err := ft.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d before the cut: %v", i, err)
		}
	}
	if err := ft.Send([]byte{9}); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("send past the cut: %v, want ErrLinkCut", err)
	}
	if err := ft.Send([]byte{10}); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("cut is not sticky: %v", err)
	}
}

// faultCase is one cell of the fault matrix.
type faultCase struct {
	name string
	cfg  FaultConfig
}

func faultMatrix() []faultCase {
	return []faultCase{
		{"drop", FaultConfig{Drop: 0.08}},
		{"dup", FaultConfig{Dup: 0.15}},
		{"reorder", FaultConfig{Reorder: 0.15}},
		{"corrupt", FaultConfig{Corrupt: 0.08}},
		{"mixed", FaultConfig{Drop: 0.04, Dup: 0.05, Reorder: 0.05, Corrupt: 0.03}},
	}
}

// runReliableExchange drives a stats/temps ping-pong over the given
// transport pair with both endpoints in reliable mode, and fails the test
// unless every reply arrives in order — or a typed protocol error surfaces.
// It never hangs: the whole exchange runs under a hard deadline.
func runReliableExchange(t *testing.T, devTr, hostTr Transport, rounds int) {
	t.Helper()
	rel := ReliableConfig{Window: 64, RetryTimeout: 15 * time.Millisecond, MaxRetries: 400}

	dev := NewEndpoint(devTr, DeviceMAC, HostMAC)
	dev.EnableReliability(rel)
	host := NewEndpoint(hostTr, HostMAC, DeviceMAC)
	host.EnableReliability(rel)

	// Host: echo every stats window back as a temps frame.
	hostDone := make(chan struct{})
	go func() {
		defer close(hostDone)
		for {
			f, err := host.Recv()
			if err != nil {
				return // link torn down at the end of the exchange
			}
			if f.Type != MsgStats {
				continue
			}
			s, err := UnmarshalStats(f.Payload)
			if err != nil {
				t.Errorf("host: corrupt stats slipped through CRC: %v", err)
				return
			}
			reply := &Temps{TimePs: s.Cycle, MilliK: []uint32{300_000}}
			if err := host.Send(MsgTemp, reply.MarshalPayload()); err != nil {
				t.Errorf("host send: %v", err)
				return
			}
		}
	}()

	devErr := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			s := &Stats{Cycle: uint64(i), WindowPs: 1000, PowerUW: []uint32{100, 200}}
			if err := dev.Send(MsgStats, s.MarshalPayload()); err != nil {
				devErr <- err
				return
			}
			f, err := dev.Recv()
			if err != nil {
				devErr <- err
				return
			}
			if f.Type != MsgTemp {
				devErr <- errors.New("device: out-of-band frame delivered as data")
				return
			}
			tp, err := UnmarshalTemps(f.Payload)
			if err != nil {
				devErr <- err
				return
			}
			if tp.TimePs != uint64(i) {
				t.Errorf("round %d: reply for window %d (loss silently diverged the loop)", i, tp.TimePs)
			}
		}
		devErr <- nil
	}()

	select {
	case err := <-devErr:
		if err != nil {
			// A typed error is an acceptable outcome; a hang or an untyped
			// one is not.
			for _, typed := range []error{ErrLinkStalled, ErrResendWindow, ErrLinkCut, ErrClosed} {
				if errors.Is(err, typed) {
					t.Logf("exchange ended with typed error: %v", err)
					devTr.Close()
					hostTr.Close()
					<-hostDone
					return
				}
			}
			t.Fatalf("exchange failed with untyped error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("fault matrix exchange hung")
	}

	devTr.Close()
	hostTr.Close()
	select {
	case <-hostDone:
	case <-time.After(5 * time.Second):
		t.Fatal("host loop did not terminate after close")
	}
	if ds := dev.LinkStats().Snapshot(); ds.FramesRecv < uint64(rounds) {
		t.Errorf("device delivered %d frames, want >= %d", ds.FramesRecv, rounds)
	}
}

// TestReliableLinkFaultMatrix exercises the NACK/resend protocol against
// every impairment class over both transports. The closed loop must either
// complete with the replies in order or fail with a typed error — never
// hang, never silently diverge.
func TestReliableLinkFaultMatrix(t *testing.T) {
	const rounds = 150
	for _, fc := range faultMatrix() {
		fc := fc
		t.Run("loopback/"+fc.name, func(t *testing.T) {
			t.Parallel()
			dev, host := LoopbackPair(64)
			runReliableExchange(t, NewFaultTransport(dev, 7, fc.cfg, fc.cfg), host, rounds)
		})
		t.Run("tcp/"+fc.name, func(t *testing.T) {
			t.Parallel()
			c1, c2 := net.Pipe()
			dev, host := NewTCP(c1, 64), NewTCP(c2, 64)
			runReliableExchange(t, NewFaultTransport(dev, 7, fc.cfg, fc.cfg), host, rounds)
		})
	}
}

// TestReliableLinkCutSurfacesTypedError verifies a mid-stream disconnect
// ends the exchange with ErrLinkCut (via the fault transport) instead of a
// hang.
func TestReliableLinkCutSurfacesTypedError(t *testing.T) {
	dev, host := LoopbackPair(64)
	ft := NewFaultTransport(dev, 3, FaultConfig{CutAfter: 40}, FaultConfig{})
	runReliableExchange(t, ft, host, 500)
}

// TestSupervisorReconnect drops the first connection server-side and checks
// the supervisor redials, retries the failed Recv transparently, and counts
// the reconnect.
func TestSupervisorReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverDone := make(chan error, 1)
	stopFrame := make(chan []byte, 1)
	go func() {
		// First connection: drop it immediately (a flaky host).
		c1, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		c1.Close()
		// Second connection: deliver one frame, then collect the device's
		// graceful-stop frame.
		c2, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		tr := NewTCP(c2, 4)
		defer tr.Close()
		if err := tr.Send([]byte("hello-again")); err != nil {
			serverDone <- err
			return
		}
		tr.SetRecvDeadline(time.Now().Add(5 * time.Second))
		b, err := tr.Recv()
		if err != nil {
			serverDone <- err
			return
		}
		stopFrame <- b
		serverDone <- nil
	}()

	sup, err := DialSupervised(SupervisorConfig{
		Addr:           ln.Addr().String(),
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		GracefulStop:   true,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The first connection is already dead server-side: Recv fails, the
	// supervisor redials and retries, and the retry sees the frame.
	b, err := sup.Recv()
	if err != nil {
		t.Fatalf("recv across reconnect: %v", err)
	}
	if string(b) != "hello-again" {
		t.Fatalf("recv across reconnect delivered %q", b)
	}
	if got := sup.Stats().Reconnects.Load(); got == 0 {
		t.Error("reconnect not counted")
	}

	if err := sup.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	select {
	case b := <-stopFrame:
		f, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("graceful-stop frame: %v", err)
		}
		if !isCtrlStop(f) || f.Seq != ctrlStopSeq {
			t.Errorf("graceful stop sent %v seq %d, want CtrlStop seq %d", f.Type, f.Seq, ctrlStopSeq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful CtrlStop never arrived")
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	// A closed supervisor refuses further traffic.
	if err := sup.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

// TestSupervisorDialFailure verifies the backoff loop gives up with the
// typed ErrLinkDown when nothing listens.
func TestSupervisorDialFailure(t *testing.T) {
	// Grab a port and close it so the address is known-dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = DialSupervised(SupervisorConfig{
		Addr:           addr,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		MaxAttempts:    3,
	})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("dial dead address: %v, want ErrLinkDown", err)
	}
}
