// Package etherlink implements the communication channel between the
// FPGA-side emulation and the SW thermal tool on the host PC (Sections 4
// and 6 of the DAC'06 paper): statistics are sent as MAC packets "in our
// own format" over a standard Ethernet connection, and the computed
// temperatures are fed back the same way.
//
// The package provides the raw frame format (MAC header, custom payload,
// CRC32), typed payload codecs for the statistics, temperature and control
// messages, two transports (an in-process loopback and TCP via net.Conn),
// and the device-side Ethernet dispatcher that drains the BRAM statistics
// buffer and applies back-pressure to the VPCM when the link saturates.
package etherlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// EtherType is the experimental ethertype used for framework frames.
const EtherType = 0x88B5

// Version is the frame format version.
const Version = 1

// MAC is a 48-bit hardware address.
type MAC [6]byte

// Default addresses of the two endpoints.
var (
	DeviceMAC = MAC{0x02, 0x54, 0x45, 0x4D, 0x55, 0x01} // locally administered, "TEMU" 01
	HostMAC   = MAC{0x02, 0x54, 0x45, 0x4D, 0x55, 0x02}
)

// String formats the address in the canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MsgType identifies the payload carried by a frame.
type MsgType uint8

// Message types.
const (
	MsgStats  MsgType = iota + 1 // device -> host: per-component power statistics
	MsgTemp                      // host -> device: per-cell temperatures
	MsgCtrl                      // either direction: control operations
	MsgAck                       // acknowledgement carrying the peer's last seq
	MsgEvents                    // device -> host: exhaustive event log batch
	MsgNack                      // either direction: resend request from Seq onward
	// Batched variants let the pipelined co-emulation loop ship several
	// queued sampling windows in one frame when the solver lags the
	// emulator; the host steps them in order and answers with one
	// MsgTempBatch. Solve order — and therefore temperature — is identical
	// to per-window framing; only the frame count differs.
	MsgStatsBatch // device -> host: several statistics windows
	MsgTempBatch  // host -> device: per-cell temperatures for each window
	// MsgSweep carries the design-space sweep coordinator protocol: JSON
	// job/result messages chunked to fit the MTU (see internal/sweep).
	MsgSweep
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case MsgStats:
		return "stats"
	case MsgTemp:
		return "temp"
	case MsgCtrl:
		return "ctrl"
	case MsgAck:
		return "ack"
	case MsgEvents:
		return "events"
	case MsgNack:
		return "nack"
	case MsgStatsBatch:
		return "stats-batch"
	case MsgTempBatch:
		return "temp-batch"
	case MsgSweep:
		return "sweep"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Frame is one framework MAC frame.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    MsgType
	Seq     uint32
	Payload []byte
}

const (
	headerLen = 6 + 6 + 2 + 1 + 1 + 2 + 4 // macs, ethertype, version, type, len, seq
	crcLen    = 4
	// MaxPayload keeps frames within standard jumbo-free Ethernet MTUs.
	MaxPayload = 1480
)

// Errors returned by Unmarshal.
var (
	ErrTooShort   = errors.New("etherlink: frame too short")
	ErrBadCRC     = errors.New("etherlink: CRC mismatch")
	ErrBadVersion = errors.New("etherlink: unsupported frame version")
	ErrBadType    = errors.New("etherlink: not a framework frame")
	ErrTooLong    = errors.New("etherlink: payload exceeds MTU")
)

// Marshal serialises the frame, appending the CRC32 of everything before it.
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLong, len(f.Payload))
	}
	b := make([]byte, headerLen+len(f.Payload)+crcLen)
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	binary.BigEndian.PutUint16(b[12:14], EtherType)
	b[14] = Version
	b[15] = byte(f.Type)
	binary.LittleEndian.PutUint16(b[16:18], uint16(len(f.Payload)))
	binary.LittleEndian.PutUint32(b[18:22], f.Seq)
	copy(b[headerLen:], f.Payload)
	crc := crc32.ChecksumIEEE(b[:headerLen+len(f.Payload)])
	binary.LittleEndian.PutUint32(b[headerLen+len(f.Payload):], crc)
	return b, nil
}

// Unmarshal parses and verifies a serialised frame.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen+crcLen {
		return nil, ErrTooShort
	}
	if binary.BigEndian.Uint16(b[12:14]) != EtherType {
		return nil, ErrBadType
	}
	if b[14] != Version {
		return nil, ErrBadVersion
	}
	plen := int(binary.LittleEndian.Uint16(b[16:18]))
	if len(b) != headerLen+plen+crcLen {
		return nil, fmt.Errorf("%w: have %d bytes, header claims %d payload", ErrTooShort, len(b), plen)
	}
	want := binary.LittleEndian.Uint32(b[headerLen+plen:])
	if crc32.ChecksumIEEE(b[:headerLen+plen]) != want {
		return nil, ErrBadCRC
	}
	f := &Frame{Type: MsgType(b[15]), Seq: binary.LittleEndian.Uint32(b[18:22])}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	if plen > 0 {
		f.Payload = append([]byte(nil), b[headerLen:headerLen+plen]...)
	}
	return f, nil
}
