package etherlink

import "testing"

// FuzzUnmarshal exercises the frame parser with arbitrary bytes: it must
// never panic, and every frame it accepts must re-marshal to the identical
// wire image (the codec is canonical).
func FuzzUnmarshal(f *testing.F) {
	ok, _ := (&Frame{Dst: HostMAC, Src: DeviceMAC, Type: MsgStats, Seq: 9,
		Payload: []byte{1, 2, 3}}).Marshal()
	f.Add(ok)
	f.Add([]byte{})
	f.Add(make([]byte, headerLen+crcLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		if string(again) != string(data) {
			t.Fatalf("re-marshal differs from accepted wire image")
		}
	})
}

// FuzzUnmarshalStats checks the stats payload parser on arbitrary bytes.
func FuzzUnmarshalStats(f *testing.F) {
	f.Add((&Stats{Cycle: 1, WindowPs: 2, PowerUW: []uint32{3}}).MarshalPayload())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalStats(data)
		if err != nil {
			return
		}
		if string(s.MarshalPayload()) != string(data) {
			t.Fatal("stats payload not canonical")
		}
	})
}
