package etherlink

import (
	"fmt"
	"sync/atomic"
	"time"
)

// latencyBoundsUs are the upper edges (inclusive, microseconds) of the
// round-trip latency histogram buckets; observations above the last edge
// land in the overflow bucket.
var latencyBoundsUs = [...]uint64{50, 100, 200, 500, 1_000, 2_000, 5_000,
	10_000, 20_000, 50_000, 100_000, 500_000}

// LinkStats aggregates link-layer activity. Every field is atomic: one
// LinkStats may be shared by several endpoints and goroutines (e.g. all the
// connections a server accepts) and snapshotted while traffic flows.
type LinkStats struct {
	FramesSent atomic.Uint64
	FramesRecv atomic.Uint64
	BytesSent  atomic.Uint64
	BytesRecv  atomic.Uint64

	Retries     atomic.Uint64 // recv stalls that triggered a re-solicit
	SeqGaps     atomic.Uint64 // frames that arrived ahead of the expected seq
	CRCErrors   atomic.Uint64 // frames rejected for CRC/parse failures
	DupFrames   atomic.Uint64 // duplicate frames dropped
	DstMismatch atomic.Uint64 // frames addressed to another MAC
	NacksSent   atomic.Uint64
	NacksRecv   atomic.Uint64
	Resent      atomic.Uint64 // frames retransmitted from the resend window

	Congestions atomic.Uint64 // TrySend rejections that froze the virtual clock
	FrozenPhys  atomic.Uint64 // physical cycles spent frozen on the link
	Reconnects  atomic.Uint64 // supervisor redials after a link fault

	latBuckets [len(latencyBoundsUs) + 1]atomic.Uint64
	latCount   atomic.Uint64
	latSumUs   atomic.Uint64
	latMaxUs   atomic.Uint64
}

// ObserveLatency records one request/response round trip (e.g. the
// statistics-out/temperatures-back exchange of a sampling window).
func (s *LinkStats) ObserveLatency(d time.Duration) {
	if d < 0 {
		return
	}
	us := uint64(d / time.Microsecond)
	i := 0
	for i < len(latencyBoundsUs) && us > latencyBoundsUs[i] {
		i++
	}
	s.latBuckets[i].Add(1)
	s.latCount.Add(1)
	s.latSumUs.Add(us)
	for {
		cur := s.latMaxUs.Load()
		if us <= cur || s.latMaxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// LatencyBucket is one histogram bin of a snapshot. LeUs is the inclusive
// upper edge in microseconds; 0 marks the overflow bucket.
type LatencyBucket struct {
	LeUs  uint64 `json:"le_us"`
	Count uint64 `json:"count"`
}

// LinkSnapshot is a point-in-time copy of LinkStats, JSON-encodable for the
// thermserver metrics endpoint and the thermemu report.
type LinkSnapshot struct {
	FramesSent  uint64 `json:"frames_sent"`
	FramesRecv  uint64 `json:"frames_recv"`
	BytesSent   uint64 `json:"bytes_sent"`
	BytesRecv   uint64 `json:"bytes_recv"`
	Retries     uint64 `json:"retries"`
	SeqGaps     uint64 `json:"seq_gaps"`
	CRCErrors   uint64 `json:"crc_errors"`
	DupFrames   uint64 `json:"dup_frames"`
	DstMismatch uint64 `json:"dst_mismatch"`
	NacksSent   uint64 `json:"nacks_sent"`
	NacksRecv   uint64 `json:"nacks_recv"`
	Resent      uint64 `json:"resent"`
	Congestions uint64 `json:"congestions"`
	FrozenPhys  uint64 `json:"frozen_phys_cycles"`
	Reconnects  uint64 `json:"reconnects"`

	LatencyCount  uint64          `json:"latency_count"`
	LatencyMeanUs float64         `json:"latency_mean_us"`
	LatencyMaxUs  uint64          `json:"latency_max_us"`
	Latency       []LatencyBucket `json:"latency_hist,omitempty"`
}

// Snapshot copies the counters.
func (s *LinkStats) Snapshot() LinkSnapshot {
	sn := LinkSnapshot{
		FramesSent:  s.FramesSent.Load(),
		FramesRecv:  s.FramesRecv.Load(),
		BytesSent:   s.BytesSent.Load(),
		BytesRecv:   s.BytesRecv.Load(),
		Retries:     s.Retries.Load(),
		SeqGaps:     s.SeqGaps.Load(),
		CRCErrors:   s.CRCErrors.Load(),
		DupFrames:   s.DupFrames.Load(),
		DstMismatch: s.DstMismatch.Load(),
		NacksSent:   s.NacksSent.Load(),
		NacksRecv:   s.NacksRecv.Load(),
		Resent:      s.Resent.Load(),
		Congestions: s.Congestions.Load(),
		FrozenPhys:  s.FrozenPhys.Load(),
		Reconnects:  s.Reconnects.Load(),

		LatencyCount: s.latCount.Load(),
		LatencyMaxUs: s.latMaxUs.Load(),
	}
	if sn.LatencyCount > 0 {
		sn.LatencyMeanUs = float64(s.latSumUs.Load()) / float64(sn.LatencyCount)
	}
	for i := range s.latBuckets {
		n := s.latBuckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(0) // overflow bucket
		if i < len(latencyBoundsUs) {
			le = latencyBoundsUs[i]
		}
		sn.Latency = append(sn.Latency, LatencyBucket{LeUs: le, Count: n})
	}
	return sn
}

// String formats the snapshot as a compact human-readable summary.
func (sn LinkSnapshot) String() string {
	return fmt.Sprintf(
		"tx %d frames/%d B, rx %d frames/%d B; retries %d, gaps %d, crc %d, dups %d, nacks %d/%d, resent %d, congestions %d, reconnects %d; rtt mean %.0f us max %d us (%d obs)",
		sn.FramesSent, sn.BytesSent, sn.FramesRecv, sn.BytesRecv,
		sn.Retries, sn.SeqGaps, sn.CRCErrors, sn.DupFrames,
		sn.NacksSent, sn.NacksRecv, sn.Resent, sn.Congestions, sn.Reconnects,
		sn.LatencyMeanUs, sn.LatencyMaxUs, sn.LatencyCount)
}
