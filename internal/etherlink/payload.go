package etherlink

import (
	"encoding/binary"
	"fmt"

	"thermemu/internal/sniffer"
)

// Stats is the device-to-host statistics message: the power computed for
// each floorplan component over one sampling window, plus the emulated
// cycle and virtual-time position of the window.
type Stats struct {
	Cycle    uint64   // virtual platform cycle at the end of the window
	WindowPs uint64   // virtual duration of the window
	PowerUW  []uint32 // per-component power in microwatts
}

// MarshalPayload serialises the statistics payload.
func (s *Stats) MarshalPayload() []byte {
	return s.AppendPayload(nil)
}

// AppendPayload serialises the statistics payload onto b (reusing its
// capacity) and returns the extended slice.
func (s *Stats) AppendPayload(b []byte) []byte {
	off := len(b)
	n := 8 + 8 + 2 + 4*len(s.PowerUW)
	if cap(b) < off+n {
		nb := make([]byte, off+n, off+n)
		copy(nb, b)
		b = nb
	} else {
		b = b[:off+n]
	}
	binary.LittleEndian.PutUint64(b[off:], s.Cycle)
	binary.LittleEndian.PutUint64(b[off+8:], s.WindowPs)
	binary.LittleEndian.PutUint16(b[off+16:], uint16(len(s.PowerUW)))
	for i, p := range s.PowerUW {
		binary.LittleEndian.PutUint32(b[off+18+4*i:], p)
	}
	return b
}

// UnmarshalStats parses a statistics payload.
func UnmarshalStats(b []byte) (*Stats, error) {
	if len(b) < 18 {
		return nil, fmt.Errorf("etherlink: stats payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[16:18]))
	if len(b) != 18+4*n {
		return nil, fmt.Errorf("etherlink: stats payload length %d, want %d entries", len(b), n)
	}
	s := &Stats{
		Cycle:    binary.LittleEndian.Uint64(b[0:8]),
		WindowPs: binary.LittleEndian.Uint64(b[8:16]),
		PowerUW:  make([]uint32, n),
	}
	for i := range s.PowerUW {
		s.PowerUW[i] = binary.LittleEndian.Uint32(b[18+4*i:])
	}
	return s, nil
}

// Temps is the host-to-device temperature message: the new temperature of
// every thermal cell, fed back to the emulated temperature sensors.
type Temps struct {
	TimePs uint64   // virtual time the temperatures correspond to
	MilliK []uint32 // per-cell temperature in millikelvin
}

// MarshalPayload serialises the temperature payload.
func (t *Temps) MarshalPayload() []byte {
	return t.AppendPayload(nil)
}

// AppendPayload serialises the temperature payload onto b (reusing its
// capacity) and returns the extended slice.
func (t *Temps) AppendPayload(b []byte) []byte {
	off := len(b)
	n := 8 + 2 + 4*len(t.MilliK)
	if cap(b) < off+n {
		nb := make([]byte, off+n)
		copy(nb, b)
		b = nb
	} else {
		b = b[:off+n]
	}
	binary.LittleEndian.PutUint64(b[off:], t.TimePs)
	binary.LittleEndian.PutUint16(b[off+8:], uint16(len(t.MilliK)))
	for i, v := range t.MilliK {
		binary.LittleEndian.PutUint32(b[off+10+4*i:], v)
	}
	return b
}

// UnmarshalTemps parses a temperature payload.
func UnmarshalTemps(b []byte) (*Temps, error) {
	t := &Temps{}
	if err := UnmarshalTempsInto(t, b); err != nil {
		return nil, err
	}
	return t, nil
}

// UnmarshalTempsInto parses a temperature payload into dst, reusing its
// MilliK backing array when its capacity suffices.
func UnmarshalTempsInto(dst *Temps, b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("etherlink: temps payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[8:10]))
	if len(b) != 10+4*n {
		return fmt.Errorf("etherlink: temps payload length %d, want %d entries", len(b), n)
	}
	dst.TimePs = binary.LittleEndian.Uint64(b[0:8])
	if cap(dst.MilliK) < n {
		dst.MilliK = make([]uint32, n)
	}
	dst.MilliK = dst.MilliK[:n]
	for i := range dst.MilliK {
		dst.MilliK[i] = binary.LittleEndian.Uint32(b[10+4*i:])
	}
	return nil
}

// Kelvin returns cell i's temperature in kelvin.
func (t *Temps) Kelvin(i int) float64 { return float64(t.MilliK[i]) / 1000 }

// TempsFromKelvin builds a Temps message from float temperatures.
func TempsFromKelvin(timePs uint64, kelvin []float64) *Temps {
	t := &Temps{TimePs: timePs, MilliK: make([]uint32, len(kelvin))}
	for i, k := range kelvin {
		if k < 0 {
			k = 0
		}
		t.MilliK[i] = uint32(k*1000 + 0.5)
	}
	return t
}

// StatsBatch is the batched device-to-host statistics message: several
// consecutive sampling windows in one frame. The pipelined loop batches
// whatever windows are queued when the link becomes free; the host solves
// them in order, so results are bit-identical to per-window framing.
type StatsBatch struct {
	Windows []Stats
}

// statsEntryBytes returns the wire size of one batched stats window.
func statsEntryBytes(components int) int { return 8 + 8 + 2 + 4*components }

// MaxStatsBatch returns how many windows of the given component count fit
// one MAC frame.
func MaxStatsBatch(components int) int {
	n := (MaxPayload - 2) / statsEntryBytes(components)
	if n < 1 {
		n = 1
	}
	return n
}

// AppendPayload serialises the batch onto b (reusing its capacity) and
// returns the extended slice.
func (sb *StatsBatch) AppendPayload(b []byte) []byte {
	var u64 [8]byte
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(sb.Windows)))
	b = append(b, u16[:]...)
	for i := range sb.Windows {
		s := &sb.Windows[i]
		binary.LittleEndian.PutUint64(u64[:], s.Cycle)
		b = append(b, u64[:]...)
		binary.LittleEndian.PutUint64(u64[:], s.WindowPs)
		b = append(b, u64[:]...)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(s.PowerUW)))
		b = append(b, u16[:]...)
		for _, p := range s.PowerUW {
			binary.LittleEndian.PutUint32(u64[:4], p)
			b = append(b, u64[:4]...)
		}
	}
	return b
}

// MarshalPayload serialises the batch payload.
func (sb *StatsBatch) MarshalPayload() []byte { return sb.AppendPayload(nil) }

// UnmarshalStatsBatchInto parses a batch payload into dst, reusing its
// Windows and per-window PowerUW backing arrays when capacities suffice.
func UnmarshalStatsBatchInto(dst *StatsBatch, b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("etherlink: stats-batch payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	if cap(dst.Windows) < n {
		dst.Windows = append(dst.Windows[:cap(dst.Windows)],
			make([]Stats, n-cap(dst.Windows))...)
	}
	dst.Windows = dst.Windows[:n]
	off := 2
	for i := 0; i < n; i++ {
		if len(b) < off+18 {
			return fmt.Errorf("etherlink: stats-batch window %d truncated at %d bytes", i, len(b))
		}
		w := &dst.Windows[i]
		w.Cycle = binary.LittleEndian.Uint64(b[off:])
		w.WindowPs = binary.LittleEndian.Uint64(b[off+8:])
		c := int(binary.LittleEndian.Uint16(b[off+16:]))
		off += 18
		if len(b) < off+4*c {
			return fmt.Errorf("etherlink: stats-batch window %d wants %d entries, payload ends at %d", i, c, len(b))
		}
		if cap(w.PowerUW) < c {
			w.PowerUW = make([]uint32, c)
		}
		w.PowerUW = w.PowerUW[:c]
		for j := 0; j < c; j++ {
			w.PowerUW[j] = binary.LittleEndian.Uint32(b[off+4*j:])
		}
		off += 4 * c
	}
	if off != len(b) {
		return fmt.Errorf("etherlink: stats-batch payload has %d trailing bytes", len(b)-off)
	}
	return nil
}

// UnmarshalStatsBatch parses a batch payload.
func UnmarshalStatsBatch(b []byte) (*StatsBatch, error) {
	sb := &StatsBatch{}
	if err := UnmarshalStatsBatchInto(sb, b); err != nil {
		return nil, err
	}
	return sb, nil
}

// TempsBatch is the batched host-to-device temperature message answering a
// StatsBatch: one Temps entry per solved window, in order.
type TempsBatch struct {
	Windows []Temps
}

// AppendPayload serialises the batch onto b (reusing its capacity) and
// returns the extended slice.
func (tb *TempsBatch) AppendPayload(b []byte) []byte {
	var u64 [8]byte
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(tb.Windows)))
	b = append(b, u16[:]...)
	for i := range tb.Windows {
		t := &tb.Windows[i]
		binary.LittleEndian.PutUint64(u64[:], t.TimePs)
		b = append(b, u64[:]...)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(t.MilliK)))
		b = append(b, u16[:]...)
		for _, v := range t.MilliK {
			binary.LittleEndian.PutUint32(u64[:4], v)
			b = append(b, u64[:4]...)
		}
	}
	return b
}

// MarshalPayload serialises the batch payload.
func (tb *TempsBatch) MarshalPayload() []byte { return tb.AppendPayload(nil) }

// UnmarshalTempsBatchInto parses a batch payload into dst, reusing its
// Windows and per-window MilliK backing arrays when capacities suffice.
func UnmarshalTempsBatchInto(dst *TempsBatch, b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("etherlink: temp-batch payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	if cap(dst.Windows) < n {
		dst.Windows = append(dst.Windows[:cap(dst.Windows)],
			make([]Temps, n-cap(dst.Windows))...)
	}
	dst.Windows = dst.Windows[:n]
	off := 2
	for i := 0; i < n; i++ {
		if len(b) < off+10 {
			return fmt.Errorf("etherlink: temp-batch window %d truncated at %d bytes", i, len(b))
		}
		t := &dst.Windows[i]
		t.TimePs = binary.LittleEndian.Uint64(b[off:])
		c := int(binary.LittleEndian.Uint16(b[off+8:]))
		off += 10
		if len(b) < off+4*c {
			return fmt.Errorf("etherlink: temp-batch window %d wants %d entries, payload ends at %d", i, c, len(b))
		}
		if cap(t.MilliK) < c {
			t.MilliK = make([]uint32, c)
		}
		t.MilliK = t.MilliK[:c]
		for j := 0; j < c; j++ {
			t.MilliK[j] = binary.LittleEndian.Uint32(b[off+4*j:])
		}
		off += 4 * c
	}
	if off != len(b) {
		return fmt.Errorf("etherlink: temp-batch payload has %d trailing bytes", len(b)-off)
	}
	return nil
}

// UnmarshalTempsBatch parses a batch payload.
func UnmarshalTempsBatch(b []byte) (*TempsBatch, error) {
	tb := &TempsBatch{}
	if err := UnmarshalTempsBatchInto(tb, b); err != nil {
		return nil, err
	}
	return tb, nil
}

// CtrlOp is a control operation code.
type CtrlOp uint8

// Control operations.
const (
	CtrlStart  CtrlOp = iota + 1 // begin a run; Arg = component count
	CtrlStop                     // end of run; Arg = final cycle
	CtrlFreeze                   // host asks device to freeze the virtual clock
	CtrlResume                   // host releases the freeze
)

// String returns the op name.
func (op CtrlOp) String() string {
	switch op {
	case CtrlStart:
		return "start"
	case CtrlStop:
		return "stop"
	case CtrlFreeze:
		return "freeze"
	case CtrlResume:
		return "resume"
	}
	return fmt.Sprintf("ctrl(%d)", uint8(op))
}

// Ctrl is a control message.
type Ctrl struct {
	Op  CtrlOp
	Arg uint64
}

// MarshalPayload serialises the control payload.
func (c *Ctrl) MarshalPayload() []byte {
	b := make([]byte, 9)
	b[0] = byte(c.Op)
	binary.LittleEndian.PutUint64(b[1:], c.Arg)
	return b
}

// UnmarshalCtrl parses a control payload.
func UnmarshalCtrl(b []byte) (*Ctrl, error) {
	if len(b) != 9 {
		return nil, fmt.Errorf("etherlink: ctrl payload length %d, want 9", len(b))
	}
	return &Ctrl{Op: CtrlOp(b[0]), Arg: binary.LittleEndian.Uint64(b[1:])}, nil
}

// eventBytes is the wire size of one logged event.
const eventBytes = 8 + 2 + 1 + 4 + 4

// MaxEventsPerFrame is how many logged events fit a single MAC frame.
const MaxEventsPerFrame = (MaxPayload - 2) / eventBytes

// Events is the device-to-host exhaustive event-log message: the drained
// contents of the BRAM ring produced by event-logging sniffers.
type Events struct {
	Entries []sniffer.Event
}

// MarshalPayload serialises the event batch.
func (e *Events) MarshalPayload() []byte {
	b := make([]byte, 2+eventBytes*len(e.Entries))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(e.Entries)))
	off := 2
	for _, ev := range e.Entries {
		binary.LittleEndian.PutUint64(b[off:], ev.Cycle)
		binary.LittleEndian.PutUint16(b[off+8:], ev.Source)
		b[off+10] = byte(ev.Kind)
		binary.LittleEndian.PutUint32(b[off+11:], ev.Addr)
		binary.LittleEndian.PutUint32(b[off+15:], ev.Info)
		off += eventBytes
	}
	return b
}

// UnmarshalEvents parses an event batch payload.
func UnmarshalEvents(b []byte) (*Events, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("etherlink: events payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	if len(b) != 2+eventBytes*n {
		return nil, fmt.Errorf("etherlink: events payload length %d, want %d entries", len(b), n)
	}
	e := &Events{Entries: make([]sniffer.Event, n)}
	off := 2
	for i := range e.Entries {
		e.Entries[i] = sniffer.Event{
			Cycle:  binary.LittleEndian.Uint64(b[off:]),
			Source: binary.LittleEndian.Uint16(b[off+8:]),
			Kind:   sniffer.EventKind(b[off+10]),
			Addr:   binary.LittleEndian.Uint32(b[off+11:]),
			Info:   binary.LittleEndian.Uint32(b[off+15:]),
		}
		off += eventBytes
	}
	return e, nil
}
