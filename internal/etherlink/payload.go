package etherlink

import (
	"encoding/binary"
	"fmt"

	"thermemu/internal/sniffer"
)

// Stats is the device-to-host statistics message: the power computed for
// each floorplan component over one sampling window, plus the emulated
// cycle and virtual-time position of the window.
type Stats struct {
	Cycle    uint64   // virtual platform cycle at the end of the window
	WindowPs uint64   // virtual duration of the window
	PowerUW  []uint32 // per-component power in microwatts
}

// MarshalPayload serialises the statistics payload.
func (s *Stats) MarshalPayload() []byte {
	b := make([]byte, 8+8+2+4*len(s.PowerUW))
	binary.LittleEndian.PutUint64(b[0:8], s.Cycle)
	binary.LittleEndian.PutUint64(b[8:16], s.WindowPs)
	binary.LittleEndian.PutUint16(b[16:18], uint16(len(s.PowerUW)))
	for i, p := range s.PowerUW {
		binary.LittleEndian.PutUint32(b[18+4*i:], p)
	}
	return b
}

// UnmarshalStats parses a statistics payload.
func UnmarshalStats(b []byte) (*Stats, error) {
	if len(b) < 18 {
		return nil, fmt.Errorf("etherlink: stats payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[16:18]))
	if len(b) != 18+4*n {
		return nil, fmt.Errorf("etherlink: stats payload length %d, want %d entries", len(b), n)
	}
	s := &Stats{
		Cycle:    binary.LittleEndian.Uint64(b[0:8]),
		WindowPs: binary.LittleEndian.Uint64(b[8:16]),
		PowerUW:  make([]uint32, n),
	}
	for i := range s.PowerUW {
		s.PowerUW[i] = binary.LittleEndian.Uint32(b[18+4*i:])
	}
	return s, nil
}

// Temps is the host-to-device temperature message: the new temperature of
// every thermal cell, fed back to the emulated temperature sensors.
type Temps struct {
	TimePs uint64   // virtual time the temperatures correspond to
	MilliK []uint32 // per-cell temperature in millikelvin
}

// MarshalPayload serialises the temperature payload.
func (t *Temps) MarshalPayload() []byte {
	b := make([]byte, 8+2+4*len(t.MilliK))
	binary.LittleEndian.PutUint64(b[0:8], t.TimePs)
	binary.LittleEndian.PutUint16(b[8:10], uint16(len(t.MilliK)))
	for i, v := range t.MilliK {
		binary.LittleEndian.PutUint32(b[10+4*i:], v)
	}
	return b
}

// UnmarshalTemps parses a temperature payload.
func UnmarshalTemps(b []byte) (*Temps, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("etherlink: temps payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[8:10]))
	if len(b) != 10+4*n {
		return nil, fmt.Errorf("etherlink: temps payload length %d, want %d entries", len(b), n)
	}
	t := &Temps{TimePs: binary.LittleEndian.Uint64(b[0:8]), MilliK: make([]uint32, n)}
	for i := range t.MilliK {
		t.MilliK[i] = binary.LittleEndian.Uint32(b[10+4*i:])
	}
	return t, nil
}

// Kelvin returns cell i's temperature in kelvin.
func (t *Temps) Kelvin(i int) float64 { return float64(t.MilliK[i]) / 1000 }

// TempsFromKelvin builds a Temps message from float temperatures.
func TempsFromKelvin(timePs uint64, kelvin []float64) *Temps {
	t := &Temps{TimePs: timePs, MilliK: make([]uint32, len(kelvin))}
	for i, k := range kelvin {
		if k < 0 {
			k = 0
		}
		t.MilliK[i] = uint32(k*1000 + 0.5)
	}
	return t
}

// CtrlOp is a control operation code.
type CtrlOp uint8

// Control operations.
const (
	CtrlStart  CtrlOp = iota + 1 // begin a run; Arg = component count
	CtrlStop                     // end of run; Arg = final cycle
	CtrlFreeze                   // host asks device to freeze the virtual clock
	CtrlResume                   // host releases the freeze
)

// String returns the op name.
func (op CtrlOp) String() string {
	switch op {
	case CtrlStart:
		return "start"
	case CtrlStop:
		return "stop"
	case CtrlFreeze:
		return "freeze"
	case CtrlResume:
		return "resume"
	}
	return fmt.Sprintf("ctrl(%d)", uint8(op))
}

// Ctrl is a control message.
type Ctrl struct {
	Op  CtrlOp
	Arg uint64
}

// MarshalPayload serialises the control payload.
func (c *Ctrl) MarshalPayload() []byte {
	b := make([]byte, 9)
	b[0] = byte(c.Op)
	binary.LittleEndian.PutUint64(b[1:], c.Arg)
	return b
}

// UnmarshalCtrl parses a control payload.
func UnmarshalCtrl(b []byte) (*Ctrl, error) {
	if len(b) != 9 {
		return nil, fmt.Errorf("etherlink: ctrl payload length %d, want 9", len(b))
	}
	return &Ctrl{Op: CtrlOp(b[0]), Arg: binary.LittleEndian.Uint64(b[1:])}, nil
}

// eventBytes is the wire size of one logged event.
const eventBytes = 8 + 2 + 1 + 4 + 4

// MaxEventsPerFrame is how many logged events fit a single MAC frame.
const MaxEventsPerFrame = (MaxPayload - 2) / eventBytes

// Events is the device-to-host exhaustive event-log message: the drained
// contents of the BRAM ring produced by event-logging sniffers.
type Events struct {
	Entries []sniffer.Event
}

// MarshalPayload serialises the event batch.
func (e *Events) MarshalPayload() []byte {
	b := make([]byte, 2+eventBytes*len(e.Entries))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(e.Entries)))
	off := 2
	for _, ev := range e.Entries {
		binary.LittleEndian.PutUint64(b[off:], ev.Cycle)
		binary.LittleEndian.PutUint16(b[off+8:], ev.Source)
		b[off+10] = byte(ev.Kind)
		binary.LittleEndian.PutUint32(b[off+11:], ev.Addr)
		binary.LittleEndian.PutUint32(b[off+15:], ev.Info)
		off += eventBytes
	}
	return b
}

// UnmarshalEvents parses an event batch payload.
func UnmarshalEvents(b []byte) (*Events, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("etherlink: events payload too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	if len(b) != 2+eventBytes*n {
		return nil, fmt.Errorf("etherlink: events payload length %d, want %d entries", len(b), n)
	}
	e := &Events{Entries: make([]sniffer.Event, n)}
	off := 2
	for i := range e.Entries {
		e.Entries[i] = sniffer.Event{
			Cycle:  binary.LittleEndian.Uint64(b[off:]),
			Source: binary.LittleEndian.Uint16(b[off+8:]),
			Kind:   sniffer.EventKind(b[off+10]),
			Addr:   binary.LittleEndian.Uint32(b[off+11:]),
			Info:   binary.LittleEndian.Uint32(b[off+15:]),
		}
		off += eventBytes
	}
	return e, nil
}
