package etherlink

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrLinkDown is returned when the supervisor exhausts its reconnection
// budget without re-establishing the link.
var ErrLinkDown = errors.New("etherlink: link down")

// SupervisorConfig tunes the device-side connection supervisor.
type SupervisorConfig struct {
	// Addr is the host-side listener to (re)dial.
	Addr string
	// QueueDepth bounds the per-connection send queue (the device FIFO).
	QueueDepth int

	// Reconnect policy: capped exponential backoff with jitter.
	InitialBackoff time.Duration // default 100 ms
	MaxBackoff     time.Duration // default 5 s
	BackoffFactor  float64       // default 2
	Jitter         float64       // fraction of the backoff, default 0.2
	MaxAttempts    int           // dials per reconnect cycle, default 8

	// Per-connection I/O deadlines, forwarded to the TCP transport.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// GracefulStop, when set, emits a best-effort CtrlStop frame on Close
	// so the host ends the session cleanly instead of on a read error.
	GracefulStop bool

	// Wrap, when non-nil, decorates every established transport (e.g. with
	// a FaultTransport for soak testing).
	Wrap func(Transport) Transport

	// Stats receives reconnect accounting; nil allocates a private one.
	Stats *LinkStats
	// Logf, when non-nil, observes connection state changes.
	Logf func(format string, args ...any)
	// Seed seeds the jitter PRNG (0 uses a fixed default).
	Seed int64
}

func (c *SupervisorConfig) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		c.Jitter = 0.2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.Stats == nil {
		c.Stats = &LinkStats{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Supervisor is a self-healing device-side Transport: it dials the host,
// and on any I/O error tears the connection down and redials with capped
// exponential backoff plus jitter, transparently retrying the failed
// operation. Protocol state above the transport (sequence numbers, resend
// windows) is NOT resumed across a reconnect — the reliable endpoint layer
// surfaces an unhealable session as a typed error instead of hanging.
type Supervisor struct {
	cfg SupervisorConfig
	rng *rand.Rand

	mu       sync.Mutex
	tr       Transport
	deadline time.Time
	closed   bool
}

// DialSupervised connects to the host, retrying with backoff, and returns
// the supervising transport.
func DialSupervised(cfg SupervisorConfig) (*Supervisor, error) {
	cfg.fillDefaults()
	s := &Supervisor{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.redialLocked(false); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns the supervisor's metrics aggregate (shared with the
// transports it creates is the caller's choice via SetLinkStats).
func (s *Supervisor) Stats() *LinkStats { return s.cfg.Stats }

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// redialLocked establishes a fresh connection, with backoff between
// attempts. reconnect marks a mid-session redial (counted in the stats).
func (s *Supervisor) redialLocked(reconnect bool) error {
	backoff := s.cfg.InitialBackoff
	var lastErr error
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		if s.closed {
			return ErrClosed
		}
		tr, err := DialWith(s.cfg.Addr, s.cfg.QueueDepth, TCPOptions{
			ReadTimeout:  s.cfg.ReadTimeout,
			WriteTimeout: s.cfg.WriteTimeout,
		})
		if err == nil {
			if s.cfg.Wrap != nil {
				tr = s.cfg.Wrap(tr)
			}
			if !s.deadline.IsZero() {
				tr.SetRecvDeadline(s.deadline)
			}
			s.tr = tr
			if reconnect {
				s.cfg.Stats.Reconnects.Add(1)
				s.logf("etherlink: reconnected to %s (attempt %d)", s.cfg.Addr, attempt)
			}
			return nil
		}
		lastErr = err
		sleep := backoff
		if s.cfg.Jitter > 0 {
			sleep += time.Duration(s.rng.Float64() * s.cfg.Jitter * float64(backoff))
		}
		s.logf("etherlink: dial %s failed (attempt %d/%d): %v; retrying in %v",
			s.cfg.Addr, attempt, s.cfg.MaxAttempts, err, sleep)
		time.Sleep(sleep)
		backoff = time.Duration(float64(backoff) * s.cfg.BackoffFactor)
		if backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}
	}
	return fmt.Errorf("%w: %s unreachable after %d attempts: %v",
		ErrLinkDown, s.cfg.Addr, s.cfg.MaxAttempts, lastErr)
}

// current returns the live transport, if any.
func (s *Supervisor) current() (Transport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.tr == nil {
		if err := s.redialLocked(true); err != nil {
			return nil, err
		}
	}
	return s.tr, nil
}

// fail tears down the transport that just errored (unless another goroutine
// already replaced it) and redials.
func (s *Supervisor) fail(old Transport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.tr != old {
		return nil // already replaced
	}
	old.Close()
	s.tr = nil
	return s.redialLocked(true)
}

// retryable reports whether an op error should trigger a reconnect. A recv
// timeout is a protocol-level event, not a link fault.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, ErrRecvTimeout)
}

func (s *Supervisor) Send(frame []byte) error {
	for attempt := 0; ; attempt++ {
		tr, err := s.current()
		if err != nil {
			return err
		}
		if err = tr.Send(frame); !retryable(err) {
			return err
		}
		if attempt > 0 {
			return err
		}
		if rerr := s.fail(tr); rerr != nil {
			return rerr
		}
	}
}

func (s *Supervisor) TrySend(frame []byte) (bool, error) {
	for attempt := 0; ; attempt++ {
		tr, err := s.current()
		if err != nil {
			return false, err
		}
		ok, err := tr.TrySend(frame)
		if !retryable(err) {
			return ok, err
		}
		if attempt > 0 {
			return false, err
		}
		if rerr := s.fail(tr); rerr != nil {
			return false, rerr
		}
	}
}

func (s *Supervisor) Recv() ([]byte, error) {
	for attempt := 0; ; attempt++ {
		tr, err := s.current()
		if err != nil {
			return nil, err
		}
		b, err := tr.Recv()
		if !retryable(err) {
			return b, err
		}
		if attempt > 0 {
			return nil, err
		}
		if rerr := s.fail(tr); rerr != nil {
			return nil, rerr
		}
	}
}

func (s *Supervisor) SetRecvDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadline = t
	if s.tr != nil {
		return s.tr.SetRecvDeadline(t)
	}
	return nil
}

// Close shuts the supervisor down. With GracefulStop set it first emits a
// best-effort CtrlStop frame (stamped with the out-of-band terminal
// sequence number) so the host ends the session cleanly.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tr := s.tr
	s.tr = nil
	s.mu.Unlock()
	if tr == nil {
		return nil
	}
	if s.cfg.GracefulStop {
		f := &Frame{Dst: HostMAC, Src: DeviceMAC, Type: MsgCtrl, Seq: ctrlStopSeq,
			Payload: (&Ctrl{Op: CtrlStop}).MarshalPayload()}
		if b, err := f.Marshal(); err == nil {
			tr.TrySend(b)
		}
	}
	return tr.Close()
}
