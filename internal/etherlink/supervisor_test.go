package etherlink

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestSupervisorConcurrentEndpoints verifies the supervisor heals many
// independent device links against one host concurrently: a server boots K
// supervised clients, kills every connection at once, and all K must redial
// transparently on their next Recv — each counting exactly its own
// reconnect, with no cross-talk between the supervisors' state machines.
// (The sweep coordinator leans on exactly this: every distributed worker
// runs its own supervisor against the one coordinator listener.)
func TestSupervisorConcurrentEndpoints(t *testing.T) {
	const K = 4
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The server hands "boot" to the first K connections and "recovered" to
	// every later one. Clients only redial after the coordinated kill, so
	// the two phases cannot interleave.
	var (
		bootMu    sync.Mutex
		bootConns []Transport
		booted    = make(chan struct{}, K)
	)
	go func() {
		phase1 := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			tr := NewTCP(conn, 4)
			if phase1 < K {
				phase1++
				if err := tr.Send([]byte("boot")); err != nil {
					t.Errorf("server boot send: %v", err)
				}
				bootMu.Lock()
				bootConns = append(bootConns, tr)
				bootMu.Unlock()
				booted <- struct{}{}
			} else {
				if err := tr.Send([]byte("recovered")); err != nil {
					t.Errorf("server recovery send: %v", err)
				}
				// Left open; client Close tears it down.
			}
		}
	}()

	sups := make([]*Supervisor, K)
	var dialWG sync.WaitGroup
	for i := range sups {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			s, err := DialSupervised(SupervisorConfig{
				Addr:           ln.Addr().String(),
				InitialBackoff: 2 * time.Millisecond,
				MaxBackoff:     20 * time.Millisecond,
				Seed:           int64(i + 1),
			})
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			sups[i] = s
			b, err := s.Recv()
			if err != nil || string(b) != "boot" {
				t.Errorf("client %d boot recv: %q, %v", i, b, err)
			}
		}(i)
	}
	dialWG.Wait()
	for i := 0; i < K; i++ {
		<-booted
	}

	// The host "crashes": every established connection dies at once.
	bootMu.Lock()
	for _, tr := range bootConns {
		tr.Close()
	}
	bootMu.Unlock()

	var recvWG sync.WaitGroup
	for i, s := range sups {
		if s == nil {
			t.Fatalf("client %d never dialed", i)
		}
		recvWG.Add(1)
		go func(i int, s *Supervisor) {
			defer recvWG.Done()
			// The dead connection surfaces on this Recv; the supervisor must
			// redial and retry it transparently.
			b, err := s.Recv()
			if err != nil || string(b) != "recovered" {
				t.Errorf("client %d recv across reconnect: %q, %v", i, b, err)
				return
			}
			if got := s.Stats().Reconnects.Load(); got != 1 {
				t.Errorf("client %d counted %d reconnects, want 1", i, got)
			}
		}(i, s)
	}
	recvWG.Wait()
	for _, s := range sups {
		s.Close()
	}
}
