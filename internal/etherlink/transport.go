package etherlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport moves serialised frames between the device and the host.
// Send blocks until the frame is accepted; TrySend never blocks and reports
// whether the frame was accepted — the dispatcher uses it to detect link
// congestion and freeze the virtual clock instead of dropping statistics.
// SetRecvDeadline bounds the next Recv calls (the zero time clears the
// bound); an expired deadline surfaces as ErrRecvTimeout, which is the only
// Recv error a caller may retry without reconnecting.
type Transport interface {
	Send(frame []byte) error
	TrySend(frame []byte) (bool, error)
	Recv() ([]byte, error) // blocks; returns io.EOF after Close
	SetRecvDeadline(t time.Time) error
	Close() error
}

// Errors of the transport layer.
var (
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("etherlink: transport closed")
	// ErrRecvTimeout marks a Recv that expired its deadline without
	// consuming any bytes; the link is intact and the call may be retried.
	ErrRecvTimeout = errors.New("etherlink: recv timeout")
	// ErrDesync marks a Recv deadline that expired mid-frame: the byte
	// stream position is lost and the connection must be re-established.
	ErrDesync = errors.New("etherlink: stream desynchronised mid-frame")
)

// loopback is one endpoint of an in-process transport pair.
type loopback struct {
	out  chan []byte
	in   chan []byte
	once *sync.Once
	done chan struct{}

	mu       sync.Mutex
	deadline time.Time
}

// LoopbackPair creates two connected in-process transports whose link can
// buffer depth frames in each direction. It models the FPGA Ethernet core's
// FIFO: when the peer does not drain fast enough, TrySend fails.
func LoopbackPair(depth int) (device, host Transport) {
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	done := make(chan struct{})
	once := &sync.Once{}
	return &loopback{out: ab, in: ba, once: once, done: done},
		&loopback{out: ba, in: ab, once: once, done: done}
}

func (l *loopback) Send(frame []byte) error {
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case l.out <- f:
		return nil
	case <-l.done:
		return ErrClosed
	}
}

func (l *loopback) TrySend(frame []byte) (bool, error) {
	select {
	case <-l.done:
		return false, ErrClosed
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case l.out <- f:
		return true, nil
	default:
		return false, nil
	}
}

func (l *loopback) SetRecvDeadline(t time.Time) error {
	l.mu.Lock()
	l.deadline = t
	l.mu.Unlock()
	return nil
}

func (l *loopback) Recv() ([]byte, error) {
	l.mu.Lock()
	deadline := l.deadline
	l.mu.Unlock()
	var expired <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case f := <-l.in:
		return f, nil
	case <-l.done:
		// Drain anything already queued before reporting EOF.
		select {
		case f := <-l.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	case <-expired:
		// A frame may have raced the timer; prefer it.
		select {
		case f := <-l.in:
			return f, nil
		default:
			return nil, ErrRecvTimeout
		}
	}
}

func (l *loopback) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// TCPOptions tunes a TCP transport.
type TCPOptions struct {
	// WriteTimeout bounds each frame write; 0 means no bound. A write that
	// exceeds it kills the writer goroutine and fails subsequent sends.
	WriteTimeout time.Duration
	// ReadTimeout is the default Recv bound applied when the caller has not
	// set an explicit deadline; 0 means block forever.
	ReadTimeout time.Duration
}

// tcpTransport carries frames over a net.Conn, length-prefixed with a
// 32-bit little-endian size. A writer goroutine provides the non-blocking
// TrySend queue.
type tcpTransport struct {
	conn   net.Conn
	opts   TCPOptions
	sendCh chan []byte
	done   chan struct{}
	// writerDone is closed when the writer goroutine exits — on a write
	// error or after the Close flush. Send/TrySend select on it so a send
	// racing the writer's death fails instead of parking on a channel
	// nobody drains.
	writerDone chan struct{}
	once       sync.Once
	wg         sync.WaitGroup
	writeMu    sync.Mutex
	werr       error

	recvMu   sync.Mutex
	deadline time.Time
}

// NewTCP wraps an established connection (either side) into a Transport.
// queueDepth bounds the send queue, modelling the device FIFO.
func NewTCP(conn net.Conn, queueDepth int) Transport {
	return NewTCPWith(conn, queueDepth, TCPOptions{})
}

// NewTCPWith is NewTCP with explicit read/write deadline options.
func NewTCPWith(conn net.Conn, queueDepth int, opts TCPOptions) Transport {
	t := &tcpTransport{
		conn:       conn,
		opts:       opts,
		sendCh:     make(chan []byte, queueDepth),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.writer()
	return t
}

// Dial connects to a host-side listener and returns the device transport.
func Dial(addr string, queueDepth int) (Transport, error) {
	return DialWith(addr, queueDepth, TCPOptions{})
}

// DialWith is Dial with explicit read/write deadline options.
func DialWith(addr string, queueDepth int, opts TCPOptions) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("etherlink: dial %s: %w", addr, err)
	}
	return NewTCPWith(conn, queueDepth, opts), nil
}

func (t *tcpTransport) writer() {
	defer t.wg.Done()
	defer close(t.writerDone)
	for {
		select {
		case f := <-t.sendCh:
			if err := t.writeFrame(f); err != nil {
				t.setWriteErr(err)
				return
			}
		case <-t.done:
			// Flush whatever is still queued.
			for {
				select {
				case f := <-t.sendCh:
					if err := t.writeFrame(f); err != nil {
						t.setWriteErr(err)
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (t *tcpTransport) writeFrame(f []byte) error {
	if t.opts.WriteTimeout > 0 {
		t.conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	}
	// One write per frame: the length prefix and payload never straddle a
	// writer-side gap the reader's deadline could expire inside.
	buf := make([]byte, 4+len(f))
	binary.LittleEndian.PutUint32(buf, uint32(len(f)))
	copy(buf[4:], f)
	_, err := t.conn.Write(buf)
	return err
}

func (t *tcpTransport) setWriteErr(err error) {
	t.writeMu.Lock()
	if t.werr == nil {
		t.werr = err
	}
	t.writeMu.Unlock()
}

func (t *tcpTransport) sendErr() error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	return t.werr
}

// deadErr reports why the writer is gone: the stored write error, or
// ErrClosed after a clean shutdown.
func (t *tcpTransport) deadErr() error {
	if err := t.sendErr(); err != nil {
		return fmt.Errorf("etherlink: send after writer death: %w", err)
	}
	return ErrClosed
}

func (t *tcpTransport) Send(frame []byte) error {
	if err := t.sendErr(); err != nil {
		return fmt.Errorf("etherlink: send after writer death: %w", err)
	}
	f := append([]byte(nil), frame...)
	select {
	case t.sendCh <- f:
		// The enqueue may have raced the writer's death; a frame parked
		// behind a dead writer would otherwise be dropped silently.
		select {
		case <-t.writerDone:
			return t.deadErr()
		default:
			return nil
		}
	case <-t.writerDone:
		return t.deadErr()
	case <-t.done:
		return ErrClosed
	}
}

func (t *tcpTransport) TrySend(frame []byte) (bool, error) {
	if err := t.sendErr(); err != nil {
		return false, fmt.Errorf("etherlink: send after writer death: %w", err)
	}
	select {
	case <-t.done:
		return false, ErrClosed
	case <-t.writerDone:
		return false, t.deadErr()
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case t.sendCh <- f:
		select {
		case <-t.writerDone:
			return false, t.deadErr()
		default:
			return true, nil
		}
	default:
		return false, nil
	}
}

func (t *tcpTransport) SetRecvDeadline(d time.Time) error {
	t.recvMu.Lock()
	t.deadline = d
	t.recvMu.Unlock()
	return nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// recvGrace bounds the rest of a frame once its first bytes have arrived:
// the peer is committed mid-frame, so an expiring solicit deadline must not
// desynchronise the stream — only a genuinely stalled peer should.
const recvGrace = time.Second

func (t *tcpTransport) Recv() ([]byte, error) {
	t.recvMu.Lock()
	deadline := t.deadline
	t.recvMu.Unlock()
	if deadline.IsZero() && t.opts.ReadTimeout > 0 {
		deadline = time.Now().Add(t.opts.ReadTimeout)
	}
	t.conn.SetReadDeadline(deadline)
	var hdr [4]byte
	if n, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		if !isTimeout(err) {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: %v", ErrRecvTimeout, err)
		}
		t.conn.SetReadDeadline(time.Now().Add(recvGrace))
		if m, err := io.ReadFull(t.conn, hdr[n:]); err != nil {
			if isTimeout(err) {
				return nil, fmt.Errorf("%w: %d header bytes read", ErrDesync, n+m)
			}
			return nil, err
		}
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > headerLen+MaxPayload+crcLen {
		return nil, fmt.Errorf("etherlink: oversized frame (%d bytes)", n)
	}
	f := make([]byte, n)
	t.conn.SetReadDeadline(time.Now().Add(recvGrace))
	if m, err := io.ReadFull(t.conn, f); err != nil {
		if isTimeout(err) {
			return nil, fmt.Errorf("%w: %d of %d payload bytes read", ErrDesync, m, n)
		}
		return nil, err
	}
	return f, nil
}

// Close shuts the transport down: the writer flushes what it can, and any
// frames stranded in the queue (the writer died on a write error first) are
// reported, wrapped around the write error that killed it.
func (t *tcpTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	// Bound the writer's flush: a peer that stopped draining would block
	// the final writes forever, wedging Close behind the wg.Wait. The
	// deadline also unblocks a write already in flight.
	grace := t.opts.WriteTimeout
	if grace <= 0 {
		grace = time.Second
	}
	t.conn.SetWriteDeadline(time.Now().Add(grace))
	t.wg.Wait()
	cerr := t.conn.Close()
	stranded := 0
	for {
		select {
		case <-t.sendCh:
			stranded++
		default:
			if stranded > 0 {
				werr := t.sendErr()
				if werr == nil {
					werr = ErrClosed
				}
				return fmt.Errorf("etherlink: %d queued frames undelivered: %w", stranded, werr)
			}
			return cerr
		}
	}
}
