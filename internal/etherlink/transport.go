package etherlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Transport moves serialised frames between the device and the host.
// Send blocks until the frame is accepted; TrySend never blocks and reports
// whether the frame was accepted — the dispatcher uses it to detect link
// congestion and freeze the virtual clock instead of dropping statistics.
type Transport interface {
	Send(frame []byte) error
	TrySend(frame []byte) (bool, error)
	Recv() ([]byte, error) // blocks; returns io.EOF after Close
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("etherlink: transport closed")

// loopback is one endpoint of an in-process transport pair.
type loopback struct {
	out  chan []byte
	in   chan []byte
	once *sync.Once
	done chan struct{}
}

// LoopbackPair creates two connected in-process transports whose link can
// buffer depth frames in each direction. It models the FPGA Ethernet core's
// FIFO: when the peer does not drain fast enough, TrySend fails.
func LoopbackPair(depth int) (device, host Transport) {
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	done := make(chan struct{})
	once := &sync.Once{}
	return &loopback{out: ab, in: ba, once: once, done: done},
		&loopback{out: ba, in: ab, once: once, done: done}
}

func (l *loopback) Send(frame []byte) error {
	select {
	case <-l.done:
		return ErrClosed
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case l.out <- f:
		return nil
	case <-l.done:
		return ErrClosed
	}
}

func (l *loopback) TrySend(frame []byte) (bool, error) {
	select {
	case <-l.done:
		return false, ErrClosed
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case l.out <- f:
		return true, nil
	default:
		return false, nil
	}
}

func (l *loopback) Recv() ([]byte, error) {
	select {
	case f := <-l.in:
		return f, nil
	case <-l.done:
		// Drain anything already queued before reporting EOF.
		select {
		case f := <-l.in:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

func (l *loopback) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// tcpTransport carries frames over a net.Conn, length-prefixed with a
// 32-bit little-endian size. A writer goroutine provides the non-blocking
// TrySend queue.
type tcpTransport struct {
	conn    net.Conn
	sendCh  chan []byte
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	writeMu sync.Mutex
	werr    error
}

// NewTCP wraps an established connection (either side) into a Transport.
// queueDepth bounds the send queue, modelling the device FIFO.
func NewTCP(conn net.Conn, queueDepth int) Transport {
	t := &tcpTransport{conn: conn, sendCh: make(chan []byte, queueDepth), done: make(chan struct{})}
	t.wg.Add(1)
	go t.writer()
	return t
}

// Dial connects to a host-side listener and returns the device transport.
func Dial(addr string, queueDepth int) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("etherlink: dial %s: %w", addr, err)
	}
	return NewTCP(conn, queueDepth), nil
}

func (t *tcpTransport) writer() {
	defer t.wg.Done()
	for {
		select {
		case f := <-t.sendCh:
			if err := t.writeFrame(f); err != nil {
				t.writeMu.Lock()
				if t.werr == nil {
					t.werr = err
				}
				t.writeMu.Unlock()
				return
			}
		case <-t.done:
			// Flush whatever is still queued.
			for {
				select {
				case f := <-t.sendCh:
					if t.writeFrame(f) != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (t *tcpTransport) writeFrame(f []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(f)))
	if _, err := t.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.conn.Write(f)
	return err
}

func (t *tcpTransport) sendErr() error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	return t.werr
}

func (t *tcpTransport) Send(frame []byte) error {
	if err := t.sendErr(); err != nil {
		return err
	}
	f := append([]byte(nil), frame...)
	select {
	case t.sendCh <- f:
		return nil
	case <-t.done:
		return ErrClosed
	}
}

func (t *tcpTransport) TrySend(frame []byte) (bool, error) {
	if err := t.sendErr(); err != nil {
		return false, err
	}
	select {
	case <-t.done:
		return false, ErrClosed
	default:
	}
	f := append([]byte(nil), frame...)
	select {
	case t.sendCh <- f:
		return true, nil
	default:
		return false, nil
	}
}

func (t *tcpTransport) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > headerLen+MaxPayload+crcLen {
		return nil, fmt.Errorf("etherlink: oversized frame (%d bytes)", n)
	}
	f := make([]byte, n)
	if _, err := io.ReadFull(t.conn, f); err != nil {
		return nil, err
	}
	return f, nil
}

func (t *tcpTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	t.wg.Wait()
	return t.conn.Close()
}

// Endpoint is a typed convenience wrapper over a Transport: it stamps
// addresses and sequence numbers on the way out and parses frames on the
// way in.
type Endpoint struct {
	Tr       Transport
	Local    MAC
	Remote   MAC
	seq      uint32
	Received uint64
	Sent     uint64
}

// NewEndpoint builds an endpoint with the given addresses.
func NewEndpoint(tr Transport, local, remote MAC) *Endpoint {
	return &Endpoint{Tr: tr, Local: local, Remote: remote}
}

// NextSeq returns the sequence number the next sent frame will carry.
func (e *Endpoint) NextSeq() uint32 { return e.seq }

func (e *Endpoint) frame(typ MsgType, payload []byte) *Frame {
	f := &Frame{Dst: e.Remote, Src: e.Local, Type: typ, Seq: e.seq, Payload: payload}
	e.seq++
	return f
}

// Send marshals and transmits a typed message, blocking until accepted.
func (e *Endpoint) Send(typ MsgType, payload []byte) error {
	b, err := e.frame(typ, payload).Marshal()
	if err != nil {
		return err
	}
	if err := e.Tr.Send(b); err != nil {
		return err
	}
	e.Sent++
	return nil
}

// Recv receives and parses the next frame.
func (e *Endpoint) Recv() (*Frame, error) {
	b, err := e.Tr.Recv()
	if err != nil {
		return nil, err
	}
	f, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	e.Received++
	return f, nil
}
