package etherlink

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestSendAfterWriterDeathDoesNotDeadlock is the regression test for the
// writer-death deadlock: Send used to check the stored write error BEFORE
// enqueueing, so a send racing the writer goroutine's death parked forever
// on a channel nobody drains. The fixed transport signals writer death and
// surfaces the stored error instead.
//
// The sequence is deterministic: with an unbuffered queue over a net.Pipe,
// the first Send hands its frame straight to the writer, which blocks
// writing into the unread pipe; the second Send passes the error check
// (the writer has not failed yet) and parks on the queue; closing the peer
// then kills the writer, and only the death signal can unpark the send.
func TestSendAfterWriterDeathDoesNotDeadlock(t *testing.T) {
	dev, host := net.Pipe()
	tr := NewTCP(dev, 0)
	defer tr.Close()

	first := make(chan error, 1)
	go func() { first <- tr.Send([]byte("frame-1")) }()
	time.Sleep(20 * time.Millisecond) // writer now blocked in conn.Write

	second := make(chan error, 1)
	go func() { second <- tr.Send([]byte("frame-2")) }()
	time.Sleep(20 * time.Millisecond) // second send parked on the queue

	host.Close() // writer's blocked write fails; the writer dies

	select {
	case err := <-second:
		if err == nil {
			t.Fatal("send racing writer death reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadlock: Send never returned after the writer died")
	}
	// The first frame was accepted before the link died; either outcome
	// (nil from the pre-death enqueue, or the surfaced write error) is
	// fine — it must just return.
	select {
	case <-first:
	case <-time.After(2 * time.Second):
		t.Fatal("first Send never returned")
	}
	// Later sends fail fast with the stored error.
	if err := tr.Send([]byte("frame-3")); err == nil {
		t.Fatal("send after writer death succeeded")
	}
}

// TestTrySendAfterWriterDeath verifies the non-blocking path also surfaces
// writer death instead of silently queueing frames nobody will write.
func TestTrySendAfterWriterDeath(t *testing.T) {
	dev, host := net.Pipe()
	tr := NewTCP(dev, 4)
	defer tr.Close()

	host.Close()
	// Push frames until the write error propagates; the writer may accept
	// one frame into the race window, but must fail promptly after.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := tr.TrySend([]byte("x")); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("TrySend kept accepting frames after the writer died")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseReportsStrandedFrames verifies Close surfaces the number of
// queued frames the dead writer never delivered, wrapped around the write
// error that killed it.
func TestCloseReportsStrandedFrames(t *testing.T) {
	dev, host := net.Pipe()
	tr := NewTCP(dev, 8)

	host.Close()
	// Queue frames; the writer dies on the first write, stranding the rest.
	queued := 0
	for i := 0; i < 8; i++ {
		if err := tr.Send([]byte("frame")); err != nil {
			break
		}
		queued++
	}
	err := tr.Close()
	if queued > 1 {
		if err == nil {
			t.Fatalf("Close reported success with ~%d frames queued behind a dead writer", queued)
		}
		if !strings.Contains(err.Error(), "undelivered") {
			t.Errorf("Close error does not report stranded frames: %v", err)
		}
	}
}

// TestRecvDeadline verifies the timeout plumbing of both transports: an
// expired deadline surfaces as ErrRecvTimeout and the link stays usable.
func TestRecvDeadline(t *testing.T) {
	check := func(t *testing.T, a, b Transport) {
		t.Helper()
		a.SetRecvDeadline(time.Now().Add(30 * time.Millisecond))
		if _, err := a.Recv(); !errors.Is(err, ErrRecvTimeout) {
			t.Fatalf("recv past deadline: %v, want ErrRecvTimeout", err)
		}
		// The link still works afterwards.
		if err := b.Send([]byte("late")); err != nil {
			t.Fatal(err)
		}
		a.SetRecvDeadline(time.Now().Add(time.Second))
		f, err := a.Recv()
		if err != nil || string(f) != "late" {
			t.Fatalf("recv after timeout: %q, %v", f, err)
		}
		a.SetRecvDeadline(time.Time{})
	}
	t.Run("loopback", func(t *testing.T) {
		dev, host := LoopbackPair(4)
		defer dev.Close()
		check(t, dev, host)
	})
	t.Run("tcp", func(t *testing.T) {
		c1, c2 := net.Pipe()
		a, b := NewTCP(c1, 4), NewTCP(c2, 4)
		defer a.Close()
		defer b.Close()
		check(t, a, b)
	})
}
