// Package floorplan defines the physical layout of the emulated MPSoC dies:
// which architectural components (cores, caches, memories, NoC switches)
// occupy which rectangles of silicon, how the die is discretised into the
// thermal cells of the SW thermal library, and how per-component power maps
// onto per-cell injected power.
//
// The two reference floorplans of the paper's Figure 4 are provided: four
// ARM7 cores at 100 MHz and four ARM11 cores at 500 MHz, both in 130 nm.
// Component areas are derived from the paper's Table 1 power densities
// (area = max power / max density).
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"thermemu/internal/power"
	"thermemu/internal/thermal"
)

// ComponentKind classifies floorplan components.
type ComponentKind string

// Component kinds.
const (
	KindCore      ComponentKind = "core"
	KindICache    ComponentKind = "icache"
	KindDCache    ComponentKind = "dcache"
	KindPrivMem   ComponentKind = "privmem"
	KindSharedMem ComponentKind = "sharedmem"
	KindNoCSwitch ComponentKind = "nocswitch"
	KindBus       ComponentKind = "bus"
)

// Component is one placed architectural block.
type Component struct {
	Name   string
	Kind   ComponentKind
	Rect   thermal.Rect
	Model  power.Model
	CoreID int // owning core, or -1 for shared components
}

// Floorplan is a placed die.
type Floorplan struct {
	Name       string
	DieW, DieH float64 // metres
	Components []Component
}

// Validate checks that all components sit inside the die without overlaps.
func (fp *Floorplan) Validate() error {
	if fp.DieW <= 0 || fp.DieH <= 0 {
		return fmt.Errorf("floorplan %s: non-positive die", fp.Name)
	}
	const eps = 1e-12
	for i, c := range fp.Components {
		r := c.Rect
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("floorplan %s: component %s has empty rect", fp.Name, c.Name)
		}
		if r.X < -eps || r.Y < -eps || r.X+r.W > fp.DieW+eps || r.Y+r.H > fp.DieH+eps {
			return fmt.Errorf("floorplan %s: component %s outside die", fp.Name, c.Name)
		}
		for _, o := range fp.Components[i+1:] {
			if r.Overlap(o.Rect) > 1e-15 {
				return fmt.Errorf("floorplan %s: %s overlaps %s", fp.Name, c.Name, o.Name)
			}
		}
	}
	return nil
}

// DieArea returns the die area in m².
func (fp *Floorplan) DieArea() float64 { return fp.DieW * fp.DieH }

// UsedArea returns the summed component area in m².
func (fp *Floorplan) UsedArea() float64 {
	var a float64
	for _, c := range fp.Components {
		a += c.Rect.Area()
	}
	return a
}

// Utilisation returns used area over die area.
func (fp *Floorplan) Utilisation() float64 { return fp.UsedArea() / fp.DieArea() }

// Find returns the index of the named component, or -1.
func (fp *Floorplan) Find(name string) int {
	for i, c := range fp.Components {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// OfCore returns the indices of the components owned by the given core.
func (fp *Floorplan) OfCore(core int) []int {
	var out []int
	for i, c := range fp.Components {
		if c.CoreID == core {
			out = append(out, i)
		}
	}
	return out
}

// shelfPack places blocks (given as w/h pairs, already sized) into a region
// of the given width using first-fit decreasing-height shelves. It returns
// the placements in input order and the total height used.
func shelfPack(sizes []thermal.Rect, width float64) ([]thermal.Rect, float64) {
	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]].H > sizes[idx[b]].H })
	out := make([]thermal.Rect, len(sizes))
	var x, y, shelfH float64
	for _, i := range idx {
		b := sizes[i]
		if x+b.W > width+1e-12 { // open a new shelf
			y += shelfH
			x, shelfH = 0, 0
		}
		out[i] = thermal.Rect{X: x, Y: y, W: b.W, H: b.H}
		x += b.W
		if b.H > shelfH {
			shelfH = b.H
		}
	}
	return out, y + shelfH
}

// squareOf returns a square rect sized for the model's implied area.
func squareOf(m power.Model) thermal.Rect {
	s := math.Sqrt(m.AreaM2())
	return thermal.Rect{W: s, H: s}
}

// quadConfig describes the per-core block set of a four-core floorplan.
type quadConfig struct {
	core, icache, dcache, privmem power.Model
}

// fourCore builds a 2×2-quadrant floorplan: each quadrant holds one core
// with its caches and private memory; the shared memory and the NoC
// switches sit in a central strip between the quadrant rows, mirroring the
// arrangement of Figure 4.
func fourCore(name string, q quadConfig, switches int) *Floorplan {
	blocks := []thermal.Rect{squareOf(q.core), squareOf(q.icache), squareOf(q.dcache), squareOf(q.privmem)}
	var quadArea float64
	for _, b := range blocks {
		quadArea += b.Area()
	}
	// 40% whitespace so the shelf packer always fits.
	quadW := math.Sqrt(quadArea * 1.4)
	placed, quadH := shelfPack(blocks, quadW)
	if quadH > quadW {
		quadW = quadH // keep quadrants square-ish
	}

	// Central strip: shared memory and NoC switches.
	shared := squareOf(power.Mem32K)
	sw := squareOf(power.NoCSwitch)
	stripBlocks := []thermal.Rect{shared}
	for i := 0; i < switches; i++ {
		stripBlocks = append(stripBlocks, sw)
	}
	stripPlaced, stripH := shelfPack(stripBlocks, 2*quadW)
	stripH *= 1.2 // strip whitespace

	fp := &Floorplan{Name: name, DieW: 2 * quadW, DieH: 2*quadH + stripH}
	kinds := []ComponentKind{KindCore, KindICache, KindDCache, KindPrivMem}
	models := []power.Model{q.core, q.icache, q.dcache, q.privmem}
	for core := 0; core < 4; core++ {
		ox := float64(core%2) * quadW
		oy := float64(core/2) * (quadH + stripH)
		for b, r := range placed {
			fp.Components = append(fp.Components, Component{
				Name:   fmt.Sprintf("%s%d", kinds[b], core),
				Kind:   kinds[b],
				Rect:   thermal.Rect{X: ox + r.X, Y: oy + r.Y, W: r.W, H: r.H},
				Model:  models[b],
				CoreID: core,
			})
		}
	}
	for i, r := range stripPlaced {
		c := Component{
			Rect:   thermal.Rect{X: r.X, Y: quadH + r.Y, W: r.W, H: r.H},
			CoreID: -1,
		}
		if i == 0 {
			c.Name, c.Kind, c.Model = "sharedmem", KindSharedMem, power.Mem32K
		} else {
			c.Name, c.Kind, c.Model = fmt.Sprintf("switch%d", i-1), KindNoCSwitch, power.NoCSwitch
		}
		fp.Components = append(fp.Components, c)
	}
	return fp
}

// FourARM7 returns floorplan (a) of Figure 4: four ARM7 cores at 100 MHz
// with 8 kB DM I-caches, 8 kB 2-way D-caches, 32 kB private memories, one
// 32 kB shared memory and four NoC switches, in 130 nm.
func FourARM7() *Floorplan {
	return fourCore("4xARM7", quadConfig{
		core: power.ARM7, icache: power.ICache8KDM,
		dcache: power.DCache8K2W, privmem: power.Mem32K,
	}, 4)
}

// FourARM11 returns floorplan (b) of Figure 4: the same organisation with
// four ARM11 cores at 500 MHz.
func FourARM11() *Floorplan {
	return fourCore("4xARM11", quadConfig{
		core: power.ARM11, icache: power.ICache8KDM,
		dcache: power.DCache8K2W, privmem: power.Mem32K,
	}, 4)
}

// maxDensityIn returns the highest component power density (W/m²)
// overlapping the cell.
func (fp *Floorplan) maxDensityIn(cell thermal.Rect) float64 {
	var d float64
	for _, c := range fp.Components {
		if c.Rect.Overlap(cell) > 0 {
			if v := c.Model.DensityWmm2 * 1e6; v > d {
				d = v
			}
		}
	}
	return d
}

// Grid discretises the die into a uniform nx×ny thermal grid.
func (fp *Floorplan) Grid(nx, ny int) []thermal.Rect {
	return thermal.UniformGrid(fp.DieW, fp.DieH, nx, ny)
}

// GridRefined builds a multi-resolution grid: starting from nx×ny, the
// refine highest-density cells are split 2×2 (Figure 3(a): smallest cells
// at the crucial points). The resulting cell count is nx·ny + 3·refine.
func (fp *Floorplan) GridRefined(nx, ny, refine int) []thermal.Rect {
	base := fp.Grid(nx, ny)
	if refine <= 0 {
		return base
	}
	if refine > len(base) {
		refine = len(base)
	}
	type scored struct {
		i int
		d float64
	}
	sc := make([]scored, len(base))
	for i, c := range base {
		sc[i] = scored{i, fp.maxDensityIn(c)}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].d != sc[b].d {
			return sc[a].d > sc[b].d
		}
		return sc[a].i < sc[b].i
	})
	pickSet := make(map[int]bool, refine)
	for _, s := range sc[:refine] {
		pickSet[s.i] = true
	}
	i := -1
	return thermal.RefineGrid(base, func(thermal.Rect) bool {
		i++
		return pickSet[i]
	})
}

// GridTargetCells returns a multi-resolution grid with exactly target
// cells when reachable (target = nx² + 3k for the square base grid nx
// chosen), or the closest achievable count. The paper's experiment uses a
// 28-cell floorplan (4×4 base, 4 refined cells) and a 660-cell one (21×21
// base, 73 refined cells).
func (fp *Floorplan) GridTargetCells(target int) []thermal.Rect {
	bestNx, bestK, bestErr := 1, 0, math.MaxInt
	for nx := 2; nx*nx <= target; nx++ {
		rem := target - nx*nx
		k := rem / 3
		if k > nx*nx {
			continue
		}
		if e := rem % 3; e < bestErr || (e == bestErr && nx > bestNx) {
			bestErr, bestNx, bestK = e, nx, k
		}
	}
	return fp.GridRefined(bestNx, bestNx, bestK)
}

// PowerMap distributes per-component power onto thermal cells by area
// overlap: a cell receives, from each component, the component's power
// scaled by the covered fraction of the component.
type PowerMap struct {
	nCells  int
	entries [][]mapEntry
}

type mapEntry struct {
	comp int
	frac float64
}

// NewPowerMap precomputes the overlap fractions between the floorplan's
// components and the given thermal cells.
func NewPowerMap(fp *Floorplan, cells []thermal.Rect) *PowerMap {
	pm := &PowerMap{nCells: len(cells), entries: make([][]mapEntry, len(cells))}
	for ci, cell := range cells {
		for ki, comp := range fp.Components {
			if ov := comp.Rect.Overlap(cell); ov > 0 {
				pm.entries[ci] = append(pm.entries[ci], mapEntry{ki, ov / comp.Rect.Area()})
			}
		}
	}
	return pm
}

// CellPowers converts per-component powers (W, indexed like
// Floorplan.Components) into per-cell injected powers. out must have one
// entry per cell; it is overwritten and returned.
func (pm *PowerMap) CellPowers(compPowers []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, pm.nCells)
	}
	for i := range out {
		out[i] = 0
	}
	for ci, ents := range pm.entries {
		for _, e := range ents {
			out[ci] += compPowers[e.comp] * e.frac
		}
	}
	return out
}

// ComponentTemp estimates a component's sensor reading as the area-weighted
// average of the cells covering it.
func ComponentTemp(fp *Floorplan, cells []thermal.Rect, temps []float64, comp int) float64 {
	var wsum, tsum float64
	r := fp.Components[comp].Rect
	for ci, cell := range cells {
		if ov := r.Overlap(cell); ov > 0 {
			wsum += ov
			tsum += ov * temps[ci]
		}
	}
	if wsum == 0 {
		return 0
	}
	return tsum / wsum
}
