package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"thermemu/internal/power"
	"thermemu/internal/thermal"
)

func TestFourARM7Valid(t *testing.T) {
	fp := FourARM7()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 quadrants x 4 blocks + shared + 4 switches = 21 components.
	if len(fp.Components) != 21 {
		t.Errorf("components = %d", len(fp.Components))
	}
	if u := fp.Utilisation(); u <= 0.3 || u > 1 {
		t.Errorf("utilisation = %v", u)
	}
	// Component areas match Table 1 implied areas.
	i := fp.Find("core0")
	if i < 0 {
		t.Fatal("core0 missing")
	}
	want := power.ARM7.AreaM2()
	if got := fp.Components[i].Rect.Area(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("core0 area = %g, want %g", got, want)
	}
}

func TestFourARM11Valid(t *testing.T) {
	fp := FourARM11()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	// The ARM11 die must be larger (3 mm² cores vs 0.18 mm²).
	if fp.DieArea() <= FourARM7().DieArea() {
		t.Error("ARM11 die not larger than ARM7 die")
	}
	// Per-core ownership: exactly 4 blocks per core.
	for core := 0; core < 4; core++ {
		if got := len(fp.OfCore(core)); got != 4 {
			t.Errorf("core %d owns %d blocks", core, got)
		}
	}
	if len(fp.OfCore(-1)) != 5 {
		t.Errorf("shared blocks = %d", len(fp.OfCore(-1)))
	}
}

func TestValidateCatchesBrokenPlans(t *testing.T) {
	bad := &Floorplan{Name: "b", DieW: 1e-3, DieH: 1e-3, Components: []Component{
		{Name: "x", Rect: thermal.Rect{X: 0, Y: 0, W: 2e-3, H: 1e-4}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("component outside die accepted")
	}
	over := &Floorplan{Name: "o", DieW: 1e-3, DieH: 1e-3, Components: []Component{
		{Name: "a", Rect: thermal.Rect{X: 0, Y: 0, W: 5e-4, H: 5e-4}},
		{Name: "b", Rect: thermal.Rect{X: 2e-4, Y: 2e-4, W: 5e-4, H: 5e-4}},
	}}
	if err := over.Validate(); err == nil {
		t.Error("overlap accepted")
	}
	if err := (&Floorplan{Name: "z"}).Validate(); err == nil {
		t.Error("empty die accepted")
	}
}

func TestGridRefinedCellCount(t *testing.T) {
	fp := FourARM7()
	g := fp.GridRefined(4, 4, 4)
	if len(g) != 16+3*4 {
		t.Errorf("cells = %d, want 28", len(g))
	}
	// Area is preserved.
	var a float64
	for _, c := range g {
		a += c.Area()
	}
	if math.Abs(a-fp.DieArea())/fp.DieArea() > 1e-9 {
		t.Errorf("grid area %g != die %g", a, fp.DieArea())
	}
	// Refined cells are the high-density ones: at least one refined cell
	// overlaps a core.
	fine := 0
	for _, c := range g {
		if c.W < fp.DieW/4-1e-12 {
			fine++
		}
	}
	if fine != 16 {
		t.Errorf("fine cells = %d, want 16", fine)
	}
}

func TestGridTargetCells(t *testing.T) {
	fp := FourARM7()
	for _, target := range []int{28, 660, 100} {
		g := fp.GridTargetCells(target)
		if len(g) != target {
			t.Errorf("target %d: got %d cells", target, len(g))
		}
	}
}

func TestPowerMapConservesPower(t *testing.T) {
	fp := FourARM7()
	cells := fp.GridRefined(6, 6, 6)
	pm := NewPowerMap(fp, cells)
	powers := make([]float64, len(fp.Components))
	var total float64
	for i, c := range fp.Components {
		powers[i] = c.Model.MaxPowerW
		total += powers[i]
	}
	cellP := pm.CellPowers(powers, nil)
	var sum float64
	for _, p := range cellP {
		sum += p
	}
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("cell power sum %g != component total %g", sum, total)
	}
	// Reuse of the out slice.
	again := pm.CellPowers(powers, cellP)
	if &again[0] != &cellP[0] {
		t.Error("out slice not reused")
	}
}

func TestPowerMapLocalisesPower(t *testing.T) {
	fp := FourARM7()
	cells := fp.Grid(8, 8)
	pm := NewPowerMap(fp, cells)
	powers := make([]float64, len(fp.Components))
	ci := fp.Find("core0")
	powers[ci] = 1.0
	cellP := pm.CellPowers(powers, nil)
	// Power lands only in cells overlapping core0.
	r := fp.Components[ci].Rect
	for i, c := range cells {
		if cellP[i] > 0 && c.Overlap(r) == 0 {
			t.Errorf("cell %d received power without overlapping core0", i)
		}
	}
}

func TestComponentTemp(t *testing.T) {
	fp := FourARM7()
	cells := fp.Grid(4, 4)
	temps := make([]float64, len(cells))
	for i := range temps {
		temps[i] = 300 + float64(i)
	}
	ct := ComponentTemp(fp, cells, temps, fp.Find("core0"))
	if ct < 300 || ct > 300+float64(len(cells)) {
		t.Errorf("component temp = %v out of range", ct)
	}
}

func TestFloorplanDrivesThermalModel(t *testing.T) {
	// End-to-end: floorplan -> grid -> RC model -> steady state.
	fp := FourARM11()
	cells := fp.GridTargetCells(28)
	cu := thermal.UniformGrid(fp.DieW, fp.DieH, 3, 3)
	m, err := thermal.NewModel(cells, cu, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pm := NewPowerMap(fp, cells)
	powers := make([]float64, len(fp.Components))
	for i, c := range fp.Components {
		powers[i] = c.Model.Power(1.0, 500e6) // flat out at 500 MHz
	}
	if err := m.SetPowers(pm.CellPowers(powers, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyState(1e-8, 100000); err != nil {
		t.Fatal(err)
	}
	// 4 ARM11 flat-out at 500 MHz => 5x 1.5 W each: a serious rise over
	// ambient through a 20 K/W package. Sanity band only.
	rise := m.MaxTemp() - 300
	if rise < 50 {
		t.Errorf("implausibly small rise %.1f K for ~30 W", rise)
	}
	// Core cells are hotter than the shared memory.
	coreT := ComponentTemp(fp, cells, m.Temps(), fp.Find("core0"))
	memT := ComponentTemp(fp, cells, m.Temps(), fp.Find("sharedmem"))
	if coreT <= memT {
		t.Errorf("core (%.2f K) not hotter than shared memory (%.2f K)", coreT, memT)
	}
}

func TestShelfPackNoOverlap(t *testing.T) {
	sizes := []thermal.Rect{{W: 3, H: 2}, {W: 2, H: 1}, {W: 1, H: 4}, {W: 2, H: 2}, {W: 1, H: 1}}
	placed, h := shelfPack(sizes, 4)
	if h <= 0 {
		t.Fatal("no height")
	}
	for i := range placed {
		if placed[i].W != sizes[i].W || placed[i].H != sizes[i].H {
			t.Errorf("block %d resized", i)
		}
		for j := i + 1; j < len(placed); j++ {
			if placed[i].Overlap(placed[j]) > 0 {
				t.Errorf("blocks %d and %d overlap", i, j)
			}
		}
		if placed[i].X+placed[i].W > 4+1e-12 {
			t.Errorf("block %d exceeds width", i)
		}
		if placed[i].Y+placed[i].H > h+1e-12 {
			t.Errorf("block %d exceeds reported height", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	fp := FourARM11()
	var buf bytes.Buffer
	if err := fp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != fp.Name || len(got.Components) != len(fp.Components) {
		t.Fatalf("round trip lost structure: %s/%d", got.Name, len(got.Components))
	}
	for i := range fp.Components {
		a, b := fp.Components[i], got.Components[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.CoreID != b.CoreID {
			t.Errorf("component %d metadata differs", i)
		}
		if math.Abs(a.Rect.X-b.Rect.X) > 1e-12 || math.Abs(a.Rect.W-b.Rect.W) > 1e-12 {
			t.Errorf("component %d geometry differs", i)
		}
		if a.Model != b.Model {
			t.Errorf("component %d model differs: %+v vs %+v", i, a.Model, b.Model)
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Unknown model reference.
	bad := `{"name":"x","die_w_um":1000,"die_h_um":1000,
		"components":[{"name":"c","kind":"core","x_um":0,"y_um":0,"w_um":100,"h_um":100,
		"core_id":0,"model":"warp-core"}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("unknown model accepted")
	}
	// Component without any model.
	bad2 := `{"name":"x","die_w_um":1000,"die_h_um":1000,
		"components":[{"name":"c","kind":"core","x_um":0,"y_um":0,"w_um":100,"h_um":100,"core_id":0}]}`
	if _, err := ReadJSON(strings.NewReader(bad2)); err == nil {
		t.Error("model-less component accepted")
	}
	// Overlapping components fail Validate.
	bad3 := `{"name":"x","die_w_um":1000,"die_h_um":1000,"components":[
		{"name":"a","kind":"core","x_um":0,"y_um":0,"w_um":500,"h_um":500,"core_id":0,"model":"RISC32-ARM7"},
		{"name":"b","kind":"core","x_um":100,"y_um":100,"w_um":500,"h_um":500,"core_id":1,"model":"RISC32-ARM7"}]}`
	if _, err := ReadJSON(strings.NewReader(bad3)); err == nil {
		t.Error("overlapping JSON floorplan accepted")
	}
	// Unknown JSON fields are rejected (catches typos in hand-written plans).
	bad4 := `{"name":"x","die_w_um":1000,"die_h_um":1000,"zzz":1,"components":[]}`
	if _, err := ReadJSON(strings.NewReader(bad4)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestInlinePowerModelJSON(t *testing.T) {
	in := `{"name":"custom","die_w_um":2000,"die_h_um":2000,"components":[
		{"name":"dsp0","kind":"core","x_um":0,"y_um":0,"w_um":800,"h_um":800,"core_id":0,
		 "power":{"name":"DSP","max_power_w":0.2,"density_w_mm2":0.3,"ref_freq_mhz":200}}]}`
	fp, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := fp.Components[0].Model
	if m.Name != "DSP" || m.MaxPowerW != 0.2 || m.RefFreqHz != 200e6 {
		t.Errorf("inline model = %+v", m)
	}
	// Inline models survive a write/read cycle.
	var buf bytes.Buffer
	if err := fp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Components[0].Model != m {
		t.Error("inline model lost on round trip")
	}
}

func TestWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := FourARM7().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	// One rect per component plus the die outline.
	if n := strings.Count(svg, "<rect"); n != len(FourARM7().Components)+1 {
		t.Errorf("rect count = %d", n)
	}
	if !strings.Contains(svg, "4xARM7") {
		t.Error("caption missing")
	}
}

func TestModelByName(t *testing.T) {
	if m, ok := ModelByName("RISC32-ARM11"); !ok || m != power.ARM11 {
		t.Error("ARM11 lookup failed")
	}
	if _, ok := ModelByName("nope"); ok {
		t.Error("phantom model")
	}
}
