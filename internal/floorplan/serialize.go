package floorplan

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"thermemu/internal/power"
	"thermemu/internal/thermal"
)

// This file provides the floorplan interchange format: a JSON layout (all
// dimensions in micrometres, power models referenced by name or inlined)
// plus an SVG renderer for quick visual inspection — the "definition of the
// floorplanning to be evaluated" step of the paper's flow (Figure 5).

// modelRegistry maps Table 1 (and interconnect) model names for JSON use.
var modelRegistry = map[string]power.Model{
	power.ARM7.Name:       power.ARM7,
	power.ARM11.Name:      power.ARM11,
	power.DCache8K2W.Name: power.DCache8K2W,
	power.ICache8KDM.Name: power.ICache8KDM,
	power.Mem32K.Name:     power.Mem32K,
	power.NoCSwitch.Name:  power.NoCSwitch,
	power.SharedBus.Name:  power.SharedBus,
}

// ModelByName looks up a power model from the Table 1 registry.
func ModelByName(name string) (power.Model, bool) {
	m, ok := modelRegistry[name]
	return m, ok
}

type jsonModel struct {
	Name        string  `json:"name"`
	MaxPowerW   float64 `json:"max_power_w"`
	DensityWmm2 float64 `json:"density_w_mm2"`
	RefFreqMHz  float64 `json:"ref_freq_mhz"`
}

type jsonComponent struct {
	Name   string     `json:"name"`
	Kind   string     `json:"kind"`
	XUm    float64    `json:"x_um"`
	YUm    float64    `json:"y_um"`
	WUm    float64    `json:"w_um"`
	HUm    float64    `json:"h_um"`
	CoreID int        `json:"core_id"`
	Model  string     `json:"model,omitempty"` // registry reference
	Power  *jsonModel `json:"power,omitempty"` // inline model
}

type jsonFloorplan struct {
	Name       string          `json:"name"`
	DieWUm     float64         `json:"die_w_um"`
	DieHUm     float64         `json:"die_h_um"`
	Components []jsonComponent `json:"components"`
}

const um = 1e-6

// WriteJSON serialises the floorplan (micrometre units). Models present in
// the registry are written by name; others are inlined.
func (fp *Floorplan) WriteJSON(w io.Writer) error {
	out := jsonFloorplan{Name: fp.Name, DieWUm: fp.DieW / um, DieHUm: fp.DieH / um}
	for _, c := range fp.Components {
		jc := jsonComponent{
			Name: c.Name, Kind: string(c.Kind),
			XUm: c.Rect.X / um, YUm: c.Rect.Y / um,
			WUm: c.Rect.W / um, HUm: c.Rect.H / um,
			CoreID: c.CoreID,
		}
		if reg, ok := modelRegistry[c.Model.Name]; ok && reg == c.Model {
			jc.Model = c.Model.Name
		} else {
			jc.Power = &jsonModel{Name: c.Model.Name, MaxPowerW: c.Model.MaxPowerW,
				DensityWmm2: c.Model.DensityWmm2, RefFreqMHz: c.Model.RefFreqHz / 1e6}
		}
		out.Components = append(out.Components, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a floorplan written by WriteJSON (or authored by hand)
// and validates it.
func ReadJSON(r io.Reader) (*Floorplan, error) {
	var in jsonFloorplan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("floorplan: parse: %w", err)
	}
	fp := &Floorplan{Name: in.Name, DieW: in.DieWUm * um, DieH: in.DieHUm * um}
	for _, jc := range in.Components {
		c := Component{
			Name: jc.Name, Kind: ComponentKind(jc.Kind),
			Rect: thermal.Rect{X: jc.XUm * um, Y: jc.YUm * um,
				W: jc.WUm * um, H: jc.HUm * um},
			CoreID: jc.CoreID,
		}
		switch {
		case jc.Model != "":
			m, ok := modelRegistry[jc.Model]
			if !ok {
				return nil, fmt.Errorf("floorplan: component %s references unknown model %q", jc.Name, jc.Model)
			}
			c.Model = m
		case jc.Power != nil:
			c.Model = power.Model{Name: jc.Power.Name, MaxPowerW: jc.Power.MaxPowerW,
				DensityWmm2: jc.Power.DensityWmm2, RefFreqHz: jc.Power.RefFreqMHz * 1e6}
		default:
			return nil, fmt.Errorf("floorplan: component %s has neither a model reference nor inline power", jc.Name)
		}
		fp.Components = append(fp.Components, c)
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// kindFill maps component kinds to SVG fill colours.
var kindFill = map[ComponentKind]string{
	KindCore:      "#d9534f",
	KindICache:    "#f0ad4e",
	KindDCache:    "#ffd97a",
	KindPrivMem:   "#5bc0de",
	KindSharedMem: "#3b7dd8",
	KindNoCSwitch: "#5cb85c",
	KindBus:       "#777777",
}

// WriteSVG renders the floorplan as a standalone SVG drawing (the visual
// counterpart of the paper's Figure 4).
func (fp *Floorplan) WriteSVG(w io.Writer) error {
	const pxPerM = 200_000 // 0.2 px per µm
	width := fp.DieW * pxPerM
	height := fp.DieH * pxPerM
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		math.Ceil(width), math.Ceil(height+20), width, height+20)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.2f" height="%.2f" fill="#f4f1ea" stroke="#333"/>`+"\n",
		width, height)
	for _, c := range fp.Components {
		fill := kindFill[c.Kind]
		if fill == "" {
			fill = "#cccccc"
		}
		x, y := c.Rect.X*pxPerM, c.Rect.Y*pxPerM
		cw, ch := c.Rect.W*pxPerM, c.Rect.H*pxPerM
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#222" stroke-width="0.5"/>`+"\n",
			x, y, cw, ch, fill)
		fontSize := math.Min(ch*0.3, cw/float64(len(c.Name))*1.6)
		if fontSize >= 3 {
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
				x+cw/2, y+ch/2+fontSize/3, fontSize, c.Name)
		}
	}
	fmt.Fprintf(&b, `<text x="2" y="%.2f" font-size="8" font-family="sans-serif">%s — %.2f x %.2f mm, %.0f%% utilised</text>`+"\n",
		height+12, fp.Name, fp.DieW*1e3, fp.DieH*1e3, 100*fp.Utilisation())
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
