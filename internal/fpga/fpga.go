// Package fpga models the FPGA resource budget of the emulation platform.
// The paper reports the utilisation of every framework building block on a
// Xilinx Virtex-2 Pro vp30 (V2VP30, 3 Mgates, 13,696 slices, two embedded
// PowerPC hard cores): a Microblaze takes 574 slices (4%), a memory
// controller 2%, a private memory 1%, the custom bus 1%, an event-logging
// sniffer 0.2%, an event-counting sniffer 0.3%, the Table 3 four-processor
// design 66%, its NoC variant 80%, and a six-switch NoC system 70%.
//
// This package reproduces those numbers with a per-component slice-cost
// model, and lets designs be checked for fit before "synthesis" — the
// design-entry feasibility step of the paper's flow (Figure 5).
package fpga

import (
	"fmt"
	"sort"
)

// Device is an FPGA part.
type Device struct {
	Name      string
	Slices    int
	BRAMKbits int
	HardPPC   int // embedded PowerPC hard cores
}

// V2VP30 returns the paper's Xilinx Virtex-2 Pro vp30 board device.
func V2VP30() Device {
	return Device{Name: "XC2VP30", Slices: 13696, BRAMKbits: 2448, HardPPC: 2}
}

// BlockKind identifies a framework building block.
type BlockKind string

// Framework building blocks.
const (
	Microblaze    BlockKind = "microblaze"     // RISC-32 soft core (netlist)
	PPC405        BlockKind = "ppc405"         // hard core: no slices, uses a hard PPC site
	MemController BlockKind = "mem-controller" // per-core memory controller
	PrivateMem    BlockKind = "private-mem"    // private memory controller logic (+BRAM)
	SharedMemCtl  BlockKind = "shared-mem-ctl" // DDR/shared memory controller
	CacheCtl      BlockKind = "cache"          // one I- or D-cache controller
	CustomBus     BlockKind = "custom-bus"     // the configurable exploration bus
	OPBBus        BlockKind = "opb"
	PLBBus        BlockKind = "plb"
	NoCSwitch     BlockKind = "noc-switch"    // 4x4 switch, 3 output buffers
	NoCNI         BlockKind = "noc-ni"        // OCP network interface
	SnifferEvent  BlockKind = "sniffer-event" // event-logging sniffer
	SnifferCount  BlockKind = "sniffer-count" // event-counting sniffer
	EthernetCore  BlockKind = "ethernet"      // MAC core + dispatcher
	VPCMBlock     BlockKind = "vpcm"          // virtual platform clock manager
)

// sliceCost maps block kinds to V2VP30 slices. The directly quoted numbers
// from the paper (Microblaze 574; memory controller 2%; private memory 1%;
// custom bus 1%; sniffers 0.2%/0.3%) are used verbatim; the remaining
// blocks are calibrated so the paper's three system-level utilisation
// figures (66%, 80%, 70%) are reproduced — see the package tests.
var sliceCost = map[BlockKind]int{
	Microblaze:    574, // 4% of 13,696 (paper, Section 3.1)
	PPC405:        0,   // hard macro
	MemController: 274, // 2% (paper, Section 3.2)
	PrivateMem:    137, // 1% (paper, Section 3.2)
	SharedMemCtl:  800,
	CacheCtl:      400,
	CustomBus:     137, // 1% (paper, Section 3.3)
	OPBBus:        137,
	PLBBus:        200,
	NoCSwitch:     620,
	NoCNI:         130,
	SnifferEvent:  27, // 0.2% (paper, Section 4.1)
	SnifferCount:  41, // 0.3% (paper, Section 4.1)
	EthernetCore:  800,
	VPCMBlock:     300,
}

// bramCost maps block kinds to BRAM kilobits (caches and private memories
// are the main consumers; counts are per instance for the Table 3 sizes).
var bramCost = map[BlockKind]int{
	PrivateMem:   128, // 16 KB private memory
	CacheCtl:     36,  // 4 KB cache + tags
	EthernetCore: 36,  // statistics BRAM buffer
	NoCSwitch:    8,
}

// SliceCost returns the slice cost of one block instance.
func SliceCost(k BlockKind) int { return sliceCost[k] }

// Item is a block type with an instance count.
type Item struct {
	Kind  BlockKind
	Count int
}

// Design is a set of blocks to map onto a device.
type Design struct {
	Name  string
	Items []Item
}

// Add appends count instances of kind and returns the design for chaining.
func (d *Design) Add(kind BlockKind, count int) *Design {
	d.Items = append(d.Items, Item{Kind: kind, Count: count})
	return d
}

// Usage is one line of a utilisation report.
type Usage struct {
	Kind   BlockKind
	Count  int
	Slices int
}

// Report is the estimated utilisation of a design on a device.
type Report struct {
	Design    string
	Device    Device
	PerKind   []Usage
	Slices    int
	BRAMKbits int
	HardPPC   int
}

// SlicePct returns the slice utilisation as a percentage.
func (r Report) SlicePct() float64 { return 100 * float64(r.Slices) / float64(r.Device.Slices) }

// Fits reports whether the design fits the device.
func (r Report) Fits() bool {
	return r.Slices <= r.Device.Slices &&
		r.BRAMKbits <= r.Device.BRAMKbits &&
		r.HardPPC <= r.Device.HardPPC
}

// String renders the report as a table.
func (r Report) String() string {
	s := fmt.Sprintf("design %s on %s:\n", r.Design, r.Device.Name)
	for _, u := range r.PerKind {
		s += fmt.Sprintf("  %-16s x%-3d %6d slices (%5.2f%%)\n",
			u.Kind, u.Count, u.Slices, 100*float64(u.Slices)/float64(r.Device.Slices))
	}
	s += fmt.Sprintf("  total: %d/%d slices (%.1f%%), %d/%d BRAM kbits, %d/%d hard PPC",
		r.Slices, r.Device.Slices, r.SlicePct(), r.BRAMKbits, r.Device.BRAMKbits,
		r.HardPPC, r.Device.HardPPC)
	return s
}

// Estimate computes the utilisation of a design on a device.
func Estimate(d Design, dev Device) (Report, error) {
	rep := Report{Design: d.Name, Device: dev}
	agg := map[BlockKind]int{}
	for _, it := range d.Items {
		if it.Count < 0 {
			return rep, fmt.Errorf("fpga: negative count for %s", it.Kind)
		}
		if _, ok := sliceCost[it.Kind]; !ok {
			return rep, fmt.Errorf("fpga: unknown block kind %q", it.Kind)
		}
		agg[it.Kind] += it.Count
	}
	kinds := make([]BlockKind, 0, len(agg))
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		n := agg[k]
		u := Usage{Kind: k, Count: n, Slices: n * sliceCost[k]}
		rep.PerKind = append(rep.PerKind, u)
		rep.Slices += u.Slices
		rep.BRAMKbits += n * bramCost[k]
		if k == PPC405 {
			rep.HardPPC += n
		}
	}
	return rep, nil
}

// BusDesign builds the Table 3 bus-based design: hardCores PowerPC405 plus
// softCores Microblazes, per-core memory controllers, caches and private
// memories, the shared memory, the OPB bus with OCP bridging, the
// statistics subsystem and the framework infrastructure.
func BusDesign(hardCores, softCores, countSniffers, eventSniffers int) Design {
	n := hardCores + softCores
	d := Design{Name: fmt.Sprintf("bus-%dcores", n)}
	d.Add(PPC405, hardCores).
		Add(Microblaze, softCores).
		Add(MemController, n).
		Add(CacheCtl, 2*n). // I + D per core
		Add(PrivateMem, n).
		Add(SharedMemCtl, 1).
		Add(OPBBus, 1).
		Add(CustomBus, 1). // OCP bridge path of the main-memory bridge
		Add(SnifferCount, countSniffers).
		Add(SnifferEvent, eventSniffers).
		Add(EthernetCore, 1).
		Add(VPCMBlock, 1)
	return d
}

// NoCDesign is BusDesign with the bus replaced by a NoC of the given switch
// count plus one network interface per core and one for the shared memory.
func NoCDesign(hardCores, softCores, switches, countSniffers, eventSniffers int) Design {
	d := BusDesign(hardCores, softCores, countSniffers, eventSniffers)
	d.Name = fmt.Sprintf("noc-%dcores-%dsw", hardCores+softCores, switches)
	// Remove the buses.
	items := d.Items[:0]
	for _, it := range d.Items {
		if it.Kind != OPBBus && it.Kind != CustomBus {
			items = append(items, it)
		}
	}
	d.Items = items
	d.Add(NoCSwitch, switches).Add(NoCNI, hardCores+softCores+1)
	return d
}
