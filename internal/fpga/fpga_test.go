package fpga

import (
	"math"
	"strings"
	"testing"
)

func pct(slices int) float64 { return 100 * float64(slices) / float64(V2VP30().Slices) }

// TestPaperQuotedBlockCosts checks the per-block figures the paper states
// directly.
func TestPaperQuotedBlockCosts(t *testing.T) {
	cases := []struct {
		kind BlockKind
		want float64 // percent of the V2VP30
		tol  float64
	}{
		{Microblaze, 4.0, 0.25},   // "574 out of 13.696 slices" (4%)
		{MemController, 2.0, 0.1}, // "each memory controller takes 2%"
		{PrivateMem, 1.0, 0.1},    // "its synthesis takes 1%"
		{CustomBus, 1.0, 0.1},     // "Its synthesis takes 1%"
		{SnifferEvent, 0.2, 0.05}, // "0.2% for one event-logging sniffer"
		{SnifferCount, 0.3, 0.05}, // "0.3% for an event-counting sniffer"
	}
	for _, c := range cases {
		if got := pct(SliceCost(c.kind)); math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: %.2f%%, want %.2f%% ± %.2f", c.kind, got, c.want, c.tol)
		}
	}
	if SliceCost(Microblaze) != 574 {
		t.Errorf("Microblaze slices = %d, want 574", SliceCost(Microblaze))
	}
	if SliceCost(PPC405) != 0 {
		t.Error("hard core must take no slices")
	}
}

// TestTable3BusDesign reproduces "the MPSoC design with HW sniffers and 4
// processors (1 hard-core PowerPC and 3 soft-core Microblazes) consumes 66%
// of the V2VP30".
func TestTable3BusDesign(t *testing.T) {
	rep, err := Estimate(BusDesign(1, 3, 10, 4), V2VP30())
	if err != nil {
		t.Fatal(err)
	}
	if p := rep.SlicePct(); math.Abs(p-66) > 4 {
		t.Errorf("bus design utilisation %.1f%%, paper reports 66%%", p)
	}
	if !rep.Fits() {
		t.Error("bus design must fit the V2VP30")
	}
	if rep.HardPPC != 1 {
		t.Errorf("hard PPC count = %d", rep.HardPPC)
	}
}

// TestTable3NoCDesign reproduces "This NoC-based MPSoC required 80% of our
// FPGA" (2 switches, 4 in/out, 3-flit buffers).
func TestTable3NoCDesign(t *testing.T) {
	rep, err := Estimate(NoCDesign(1, 3, 2, 10, 4), V2VP30())
	if err != nil {
		t.Fatal(err)
	}
	if p := rep.SlicePct(); math.Abs(p-80) > 4 {
		t.Errorf("NoC design utilisation %.1f%%, paper reports 80%%", p)
	}
	if !rep.Fits() {
		t.Error("NoC design must fit")
	}
}

// TestSixSwitchSystem reproduces "a complex NoC-based system with 6
// switches of 4 input/output channels and 3 output buffers uses 70% of the
// V2VP30" (a two-core IP-validation style configuration).
func TestSixSwitchSystem(t *testing.T) {
	rep, err := Estimate(NoCDesign(0, 2, 6, 8, 2), V2VP30())
	if err != nil {
		t.Fatal(err)
	}
	if p := rep.SlicePct(); math.Abs(p-70) > 5 {
		t.Errorf("6-switch system utilisation %.1f%%, paper reports 70%%", p)
	}
}

func TestSnifferScalability(t *testing.T) {
	// "Practically an unlimited number of event-counting sniffers can be
	// added": utilisation grows by only 0.3% each.
	base, _ := Estimate(BusDesign(1, 3, 0, 0), V2VP30())
	many, _ := Estimate(BusDesign(1, 3, 40, 0), V2VP30())
	delta := many.SlicePct() - base.SlicePct()
	if math.Abs(delta-40*0.3) > 0.5 {
		t.Errorf("40 count sniffers added %.2f%%, want ~12%%", delta)
	}
}

func TestOversubscription(t *testing.T) {
	// Too many soft cores cannot fit.
	rep, err := Estimate(BusDesign(0, 16, 0, 0), V2VP30())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fits() {
		t.Errorf("16-core design reported as fitting at %.1f%%", rep.SlicePct())
	}
	// Three hard PPCs exceed the two on-die macros.
	d := Design{Name: "3ppc"}
	d.Add(PPC405, 3)
	rep, _ = Estimate(d, V2VP30())
	if rep.Fits() {
		t.Error("3 hard PPC design reported as fitting")
	}
}

func TestEstimateErrors(t *testing.T) {
	d := Design{Name: "bad", Items: []Item{{Kind: "warp-core", Count: 1}}}
	if _, err := Estimate(d, V2VP30()); err == nil {
		t.Error("unknown block accepted")
	}
	d = Design{Name: "neg", Items: []Item{{Kind: Microblaze, Count: -1}}}
	if _, err := Estimate(d, V2VP30()); err == nil {
		t.Error("negative count accepted")
	}
}

func TestReportString(t *testing.T) {
	rep, _ := Estimate(BusDesign(1, 3, 4, 0), V2VP30())
	s := rep.String()
	for _, want := range []string{"microblaze", "total:", "XC2VP30", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestDesignAggregatesDuplicates(t *testing.T) {
	d := Design{Name: "agg"}
	d.Add(Microblaze, 1).Add(Microblaze, 2)
	rep, err := Estimate(d, V2VP30())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerKind) != 1 || rep.PerKind[0].Count != 3 {
		t.Errorf("aggregation failed: %+v", rep.PerKind)
	}
	if rep.Slices != 3*574 {
		t.Errorf("slices = %d", rep.Slices)
	}
}

func TestResynthesisScaling(t *testing.T) {
	// Adding cores grows utilisation monotonically.
	prev := 0.0
	for n := 1; n <= 6; n++ {
		rep, _ := Estimate(BusDesign(0, n, 0, 0), V2VP30())
		if rep.SlicePct() <= prev {
			t.Fatalf("utilisation not monotone at %d cores", n)
		}
		prev = rep.SlicePct()
	}
}
