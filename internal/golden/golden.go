// Package golden provides the conformance-digest machinery of the
// framework: a streaming FNV-1a digest over labelled architectural-state
// records, with an optional journal that turns a digest mismatch into a
// human-diffable divergence report (first divergent cycle, core and field).
//
// The paper's headline claim is that the multi-MHz emulator produces the
// same results as the cycle-accurate MPARM reference (Table 3); this package
// is how the reproduction *proves* equivalences like that mechanically: any
// two runs — serial vs parallel, clean vs faulted link, this commit vs a
// committed golden file — record the same state fields into a Trace and are
// asserted bit-identical by comparing 64-bit digests. When a journal was
// kept, Compare pinpoints the first record where the runs diverged instead
// of just reporting "hashes differ".
package golden

import "fmt"

// FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Record is one labelled state observation: a named 64-bit value attributed
// to a platform cycle and (optionally) a core. Core -1 marks platform-wide
// state such as shared memory or interconnect counters.
type Record struct {
	Cycle uint64
	Core  int
	Field string
	Value uint64
}

// String formats the record for divergence reports.
func (r Record) String() string {
	if r.Core < 0 {
		return fmt.Sprintf("cycle %d: %s = %#x", r.Cycle, r.Field, r.Value)
	}
	return fmt.Sprintf("cycle %d core %d: %s = %#x", r.Cycle, r.Core, r.Field, r.Value)
}

// Trace accumulates state records into a streaming digest. The zero value
// is not ready to use; construct with New (digest only) or NewJournal
// (digest plus the record journal needed for divergence localisation).
type Trace struct {
	sum     uint64
	n       int
	keep    bool
	journal []Record
}

// New returns a digest-only trace: O(1) memory, suitable for golden files
// and production assertions.
func New() *Trace { return &Trace{sum: fnvOffset} }

// NewJournal returns a trace that additionally keeps every record, so
// Compare can report the first divergent cycle/core/field of a mismatch.
func NewJournal() *Trace { return &Trace{sum: fnvOffset, keep: true} }

func (t *Trace) mix(b byte) { t.sum = (t.sum ^ uint64(b)) * fnvPrime }

func (t *Trace) mix64(v uint64) {
	for i := 0; i < 8; i++ {
		t.mix(byte(v >> (8 * i)))
	}
}

// Record appends one labelled observation to the digest (and the journal,
// when kept). The stream is order-sensitive: both runs being compared must
// record the same fields in the same order.
func (t *Trace) Record(cycle uint64, core int, field string, value uint64) {
	t.mix64(cycle)
	t.mix64(uint64(int64(core)))
	t.mix64(uint64(len(field)))
	for i := 0; i < len(field); i++ {
		t.mix(field[i])
	}
	t.mix64(value)
	t.n++
	if t.keep {
		t.journal = append(t.journal, Record{Cycle: cycle, Core: core, Field: field, Value: value})
	}
}

// Seed primes a fresh digest-only trace with a saved accumulator, so a
// resumed run continues the digest lineage of the run that wrote the
// checkpoint: records folded after Seed extend the original stream exactly
// as if the run had never stopped. Seeding a trace that has already folded
// records, or one that keeps a journal (the pre-seed records are gone, so
// localisation would silently lie), is an error.
func (t *Trace) Seed(sum uint64, n int) error {
	if t.n != 0 {
		return fmt.Errorf("golden: cannot seed a trace holding %d records", t.n)
	}
	if t.keep {
		return fmt.Errorf("golden: cannot seed a journaling trace")
	}
	t.sum, t.n = sum, n
	return nil
}

// State returns the digest accumulator (sum, record count), the pair Seed
// needs to continue this trace in another run.
func (t *Trace) State() (sum uint64, n int) { return t.sum, t.n }

// Len returns the number of records folded into the digest so far.
func (t *Trace) Len() int { return t.n }

// Sum64 returns the current digest value.
func (t *Trace) Sum64() uint64 { return t.sum }

// Hex returns the digest as a fixed-width hex string (golden-file format).
func (t *Trace) Hex() string { return fmt.Sprintf("%016x", t.sum) }

// Journal returns the kept records (nil for digest-only traces).
func (t *Trace) Journal() []Record { return t.journal }

// HashString folds a string into a stand-alone FNV-1a value, for recording
// non-numeric state (e.g. fault messages) as a Record value.
func HashString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// HashBytes folds a byte slice into a stand-alone FNV-1a value, for
// recording bulk state (e.g. a memory page) as a single Record value.
func HashBytes(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// Divergence describes the first point where two traces disagree.
type Divergence struct {
	// Index is the journal position of the first disagreement, or -1 when
	// only the digests were available.
	Index int
	// A and B are the differing records (nil when that trace ended early or
	// kept no journal).
	A, B *Record
	// SumA and SumB are the final digests.
	SumA, SumB uint64
}

// String renders the divergence for test failures and CLI output.
func (d *Divergence) String() string {
	switch {
	case d == nil:
		return "traces identical"
	case d.Index < 0:
		return fmt.Sprintf("digests differ (%016x vs %016x); run with a journal to localise", d.SumA, d.SumB)
	case d.A == nil:
		return fmt.Sprintf("trace A ended at record %d; trace B continues with [%s]", d.Index, d.B)
	case d.B == nil:
		return fmt.Sprintf("trace B ended at record %d; trace A continues with [%s]", d.Index, d.A)
	default:
		return fmt.Sprintf("first divergence at record %d: A=[%s] B=[%s]", d.Index, d.A, d.B)
	}
}

// Compare returns nil when the two traces carry identical digests, and a
// Divergence otherwise. When both traces kept journals the divergence names
// the first differing record (cycle, core, field, both values); otherwise it
// reports only the digest mismatch.
func Compare(a, b *Trace) *Divergence {
	if a.sum == b.sum && a.n == b.n {
		return nil
	}
	d := &Divergence{Index: -1, SumA: a.sum, SumB: b.sum}
	if !a.keep || !b.keep {
		return d
	}
	for i := 0; i < len(a.journal) && i < len(b.journal); i++ {
		if a.journal[i] != b.journal[i] {
			d.Index = i
			d.A, d.B = &a.journal[i], &b.journal[i]
			return d
		}
	}
	// One journal is a strict prefix of the other.
	d.Index = min(len(a.journal), len(b.journal))
	if d.Index < len(a.journal) {
		d.A = &a.journal[d.Index]
	}
	if d.Index < len(b.journal) {
		d.B = &b.journal[d.Index]
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
