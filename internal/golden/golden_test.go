package golden

import (
	"strings"
	"testing"
)

func TestDigestDeterministic(t *testing.T) {
	mk := func() *Trace {
		tr := New()
		tr.Record(0, -1, "time_ps", 0)
		tr.Record(10, 0, "instructions", 7)
		tr.Record(10, 1, "instructions", 9)
		return tr
	}
	a, b := mk(), mk()
	if a.Sum64() != b.Sum64() || a.Len() != b.Len() {
		t.Fatalf("identical record streams digest differently: %s vs %s", a.Hex(), b.Hex())
	}
	if d := Compare(a, b); d != nil {
		t.Fatalf("Compare of identical traces: %s", d)
	}
	if got := a.Hex(); len(got) != 16 || strings.ToLower(got) != got {
		t.Fatalf("Hex format %q: want 16 lower-case hex digits", got)
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := func() *Trace { tr := New(); tr.Record(5, 2, "pc", 0x40); return tr }
	ref := base()
	for name, tr := range map[string]*Trace{
		"cycle": func() *Trace { tr := New(); tr.Record(6, 2, "pc", 0x40); return tr }(),
		"core":  func() *Trace { tr := New(); tr.Record(5, 3, "pc", 0x40); return tr }(),
		"field": func() *Trace { tr := New(); tr.Record(5, 2, "sp", 0x40); return tr }(),
		"value": func() *Trace { tr := New(); tr.Record(5, 2, "pc", 0x44); return tr }(),
	} {
		if tr.Sum64() == ref.Sum64() {
			t.Errorf("changing the %s did not change the digest", name)
		}
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	a := New()
	a.Record(1, 0, "x", 1)
	a.Record(1, 1, "x", 2)
	b := New()
	b.Record(1, 1, "x", 2)
	b.Record(1, 0, "x", 1)
	if a.Sum64() == b.Sum64() {
		t.Fatal("reordered records produced the same digest")
	}
}

func TestCompareLocalisesDivergence(t *testing.T) {
	a, b := NewJournal(), NewJournal()
	for _, tr := range []*Trace{a, b} {
		tr.Record(0, -1, "time_ps", 100)
		tr.Record(0, 0, "instructions", 50)
	}
	a.Record(64, 1, "stall_cycles", 3)
	b.Record(64, 1, "stall_cycles", 4)
	d := Compare(a, b)
	if d == nil {
		t.Fatal("divergent traces compared equal")
	}
	if d.Index != 2 || d.A == nil || d.B == nil {
		t.Fatalf("divergence not localised: %+v", d)
	}
	if d.A.Cycle != 64 || d.A.Core != 1 || d.A.Field != "stall_cycles" {
		t.Fatalf("wrong divergent record: %s", d.A)
	}
	if d.A.Value != 3 || d.B.Value != 4 {
		t.Fatalf("wrong divergent values: A=%#x B=%#x", d.A.Value, d.B.Value)
	}
	for _, want := range []string{"record 2", "cycle 64 core 1", "stall_cycles"} {
		if !strings.Contains(d.String(), want) {
			t.Errorf("divergence report %q missing %q", d.String(), want)
		}
	}
}

func TestComparePrefixDivergence(t *testing.T) {
	a, b := NewJournal(), NewJournal()
	a.Record(0, 0, "pc", 4)
	b.Record(0, 0, "pc", 4)
	b.Record(8, 0, "pc", 8)
	d := Compare(a, b)
	if d == nil {
		t.Fatal("prefix traces compared equal")
	}
	if d.Index != 1 || d.A != nil || d.B == nil {
		t.Fatalf("prefix divergence not reported: %+v", d)
	}
	if !strings.Contains(d.String(), "trace A ended") {
		t.Errorf("prefix report %q does not name the short trace", d.String())
	}
}

func TestCompareDigestOnly(t *testing.T) {
	a, b := New(), New()
	a.Record(0, 0, "pc", 4)
	b.Record(0, 0, "pc", 8)
	d := Compare(a, b)
	if d == nil {
		t.Fatal("divergent digest-only traces compared equal")
	}
	if d.Index != -1 || d.A != nil || d.B != nil {
		t.Fatalf("digest-only divergence carries journal data: %+v", d)
	}
	if !strings.Contains(d.String(), "journal") {
		t.Errorf("digest-only report %q should suggest journaling", d.String())
	}
}

func TestJournalKept(t *testing.T) {
	tr := NewJournal()
	tr.Record(3, -1, "wall_ps", 77)
	j := tr.Journal()
	if len(j) != 1 || j[0] != (Record{Cycle: 3, Core: -1, Field: "wall_ps", Value: 77}) {
		t.Fatalf("journal = %+v", j)
	}
	if New().Journal() != nil {
		t.Fatal("digest-only trace kept a journal")
	}
}

func TestHashHelpers(t *testing.T) {
	// Canonical FNV-1a 64 test vector.
	if got := HashString(""); got != fnvOffset {
		t.Fatalf("HashString(\"\") = %#x, want offset basis", got)
	}
	if got, want := HashString("a"), uint64(0xaf63dc4c8601ec8c); got != want {
		t.Fatalf("HashString(\"a\") = %#x, want %#x", got, want)
	}
	if HashBytes([]byte("abc")) != HashString("abc") {
		t.Fatal("HashBytes and HashString disagree on equal input")
	}
	if HashString("ab") == HashString("ba") {
		t.Fatal("HashString is order-insensitive")
	}
}
