package golden

import (
	"strings"
	"testing"
)

// TestSeedContinuesLineage: folding records 0..k into one trace, seeding a
// second trace with its state and folding k..n there must yield the exact
// digest of folding 0..n into a single trace — the checkpoint/resume digest
// contract.
func TestSeedContinuesLineage(t *testing.T) {
	full := New()
	for i := uint64(0); i < 100; i++ {
		full.Record(i, int(i%4), "pc", i*i)
	}

	head := New()
	for i := uint64(0); i < 37; i++ {
		head.Record(i, int(i%4), "pc", i*i)
	}
	sum, n := head.State()
	if n != 37 {
		t.Fatalf("head state n = %d, want 37", n)
	}

	tail := New()
	if err := tail.Seed(sum, n); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if tail.Len() != 37 {
		t.Fatalf("seeded trace Len = %d, want 37", tail.Len())
	}
	for i := uint64(37); i < 100; i++ {
		tail.Record(i, int(i%4), "pc", i*i)
	}
	if tail.Sum64() != full.Sum64() || tail.Len() != full.Len() {
		t.Fatalf("seeded lineage %s/%d != uninterrupted %s/%d",
			tail.Hex(), tail.Len(), full.Hex(), full.Len())
	}
	if Compare(tail, full) != nil {
		t.Fatal("seeded and uninterrupted traces compare unequal")
	}
}

// TestSeedRejectsUsedTrace: seeding must be refused once records have been
// folded — the lineage would silently skip them.
func TestSeedRejectsUsedTrace(t *testing.T) {
	tr := New()
	tr.Record(0, 0, "pc", 4)
	if err := tr.Seed(1, 1); err == nil {
		t.Fatal("seeding a used trace succeeded")
	}
}

// TestSeedRejectsJournal: a journaling trace cannot be seeded — the pre-seed
// records are gone, so localisation against it would lie.
func TestSeedRejectsJournal(t *testing.T) {
	if err := NewJournal().Seed(1, 1); err == nil {
		t.Fatal("seeding a journaling trace succeeded")
	}
}

// TestCompareMixedJournalFallsBackToDigest: when only one side kept a
// journal, Compare can report the mismatch but not localise it.
func TestCompareMixedJournalFallsBackToDigest(t *testing.T) {
	a, b := NewJournal(), New()
	a.Record(0, 0, "pc", 4)
	b.Record(0, 0, "pc", 8)
	d := Compare(a, b)
	if d == nil {
		t.Fatal("divergent traces compared equal")
	}
	if d.Index != -1 || d.A != nil || d.B != nil {
		t.Fatalf("mixed-journal compare localised from one journal: %+v", d)
	}
}

// TestCompareBPrefix covers the mirror of the A-prefix path: trace B ends
// early and the report names it.
func TestCompareBPrefix(t *testing.T) {
	a, b := NewJournal(), NewJournal()
	a.Record(0, 0, "pc", 4)
	a.Record(8, 0, "pc", 8)
	b.Record(0, 0, "pc", 4)
	d := Compare(a, b)
	if d == nil {
		t.Fatal("prefix traces compared equal")
	}
	if d.Index != 1 || d.B != nil || d.A == nil {
		t.Fatalf("B-prefix divergence not reported: %+v", d)
	}
	if !strings.Contains(d.String(), "trace B ended") {
		t.Errorf("B-prefix report %q does not name the short trace", d.String())
	}
}

// TestDivergenceNilString: the nil report renders as identity, so callers
// can print Compare's result unconditionally.
func TestDivergenceNilString(t *testing.T) {
	var d *Divergence
	if got := d.String(); got != "traces identical" {
		t.Fatalf("nil divergence renders %q", got)
	}
}

// TestRecordStringForms covers both the per-core and platform-wide record
// renderings used in divergence reports.
func TestRecordStringForms(t *testing.T) {
	r := Record{Cycle: 5, Core: 2, Field: "pc", Value: 16}
	if got := r.String(); !strings.Contains(got, "core 2") || !strings.Contains(got, "pc") {
		t.Errorf("per-core record renders %q", got)
	}
	r.Core = -1
	if got := r.String(); strings.Contains(got, "core") {
		t.Errorf("platform-wide record renders %q", got)
	}
}
