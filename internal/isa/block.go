package isa

// This file defines the straight-line basic-block discovery used by the
// cpu package's threaded-code block dispatch. Discovery is a pure function
// of the instruction words, so it lives here next to Decode and is fuzzed
// against it (FuzzBlockDiscovery).

// BlockMax caps the number of instructions in one discovered block. Longer
// straight-line runs simply split into consecutive blocks; the cap bounds
// both translation latency and the cost of re-translating after a
// self-modifying store.
const BlockMax = 64

// BlockEnd reports why block discovery stopped.
type BlockEnd int

// Block end reasons.
const (
	// EndControl: the block's final instruction is a control transfer
	// (conditional branch, JAL, JALR or HALT). The instruction is included;
	// execution continues at a pc the instruction itself determines.
	EndControl BlockEnd = iota
	// EndIllegal: the next word does not decode to an executable
	// instruction (undefined opcode, or an R-type with an undefined funct).
	// The block stops before it so the interpreter raises the exact fault.
	EndIllegal
	// EndUnmapped: the next fetch address left the readable window.
	EndUnmapped
	// EndLimit: BlockMax instructions were scanned without another reason.
	EndLimit
)

// String returns the reason name.
func (e BlockEnd) String() string {
	switch e {
	case EndControl:
		return "control"
	case EndIllegal:
		return "illegal"
	case EndUnmapped:
		return "unmapped"
	case EndLimit:
		return "limit"
	}
	return "end(?)"
}

// IsControl reports whether op redirects the fetch stream: conditional
// branches, JAL, JALR and HALT all end an issue bundle and a basic block.
func (op Opcode) IsControl() bool {
	return op.IsBranch() || op == OpJal || op == OpJalr || op == OpHalt
}

// Executable reports whether the decoded instruction would execute without
// an illegal-instruction fault: a defined opcode, and for R-type a defined
// funct. Register fields cannot be out of range by construction (5-bit
// encodings), so this is exactly the interpreter's fault condition.
func (in Instr) Executable() bool {
	if !in.Op.Valid() {
		return false
	}
	return in.Op != OpRType || in.Funct.Valid()
}

// ScanBlock discovers the straight-line block starting at pc, appending the
// decoded instructions to dst (which may be nil) and returning the extended
// slice plus the end reason. fetch reads the aligned word at an address and
// reports whether the address is readable; it must be a pure read (no timing
// or statistics side effects).
//
// The block covers consecutive words pc, pc+4, pc+8, ... and ends with the
// first control transfer (included), before the first non-executable word
// (excluded — the interpreter must raise that fault itself), at the edge of
// the readable window, or after BlockMax instructions. An unaligned pc or an
// unreadable/non-executable first word yields an empty block.
func ScanBlock(pc uint32, fetch func(addr uint32) (uint32, bool), dst []Instr) ([]Instr, BlockEnd) {
	if pc%4 != 0 {
		return dst, EndUnmapped
	}
	for n := 0; n < BlockMax; n++ {
		addr := pc + uint32(n)*4
		if addr < pc { // wrapped the 32-bit address space
			return dst, EndUnmapped
		}
		w, ok := fetch(addr)
		if !ok {
			return dst, EndUnmapped
		}
		in := Decode(w)
		if !in.Executable() {
			return dst, EndIllegal
		}
		dst = append(dst, in)
		if in.Op.IsControl() {
			return dst, EndControl
		}
	}
	return dst, EndLimit
}
