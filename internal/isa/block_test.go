package isa

import "testing"

// windowFetch builds a ScanBlock fetch function over a word window based at
// address base. Fetches outside [base, base+4*len(words)) report unmapped.
func windowFetch(t *testing.T, base uint32, words []uint32) func(uint32) (uint32, bool) {
	return func(addr uint32) (uint32, bool) {
		if addr%4 != 0 {
			t.Fatalf("ScanBlock fetched misaligned address %#x", addr)
		}
		if addr < base || uint64(addr) >= uint64(base)+uint64(len(words))*4 {
			return 0, false
		}
		return words[(addr-base)/4], true
	}
}

func TestScanBlockEndsAtControl(t *testing.T) {
	words := []uint32{
		Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 7}),
		Encode(Instr{Op: OpLw, Rd: 2, Rs1: 1, Imm: 0}),
		Encode(Instr{Op: OpBne, Rs1: 1, Rs2: 2, Imm: -2}),
		Encode(Instr{Op: OpAddi, Rd: 3, Rs1: 0, Imm: 1}), // beyond the block
	}
	got, end := ScanBlock(0x100, windowFetch(t, 0x100, words), nil)
	if end != EndControl || len(got) != 3 {
		t.Fatalf("got %d instrs, end %v; want 3, control", len(got), end)
	}
	for i, in := range got {
		if want := Decode(words[i]); in != want {
			t.Errorf("instr %d = %+v, want %+v", i, in, want)
		}
	}
}

func TestScanBlockStopsBeforeIllegal(t *testing.T) {
	bad := uint32(0xFFFFFFFF) // undefined opcode
	if Decode(bad).Executable() {
		t.Fatal("test word unexpectedly executable")
	}
	words := []uint32{
		Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 1}),
		bad,
	}
	got, end := ScanBlock(0, windowFetch(t, 0, words), nil)
	if end != EndIllegal || len(got) != 1 {
		t.Fatalf("got %d instrs, end %v; want 1, illegal (fault left to the interpreter)", len(got), end)
	}
}

func TestScanBlockWindowEdgeAndUnaligned(t *testing.T) {
	words := []uint32{Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 1, Imm: 1})}
	got, end := ScanBlock(0x200, windowFetch(t, 0x200, words), nil)
	if end != EndUnmapped || len(got) != 1 {
		t.Fatalf("window edge: got %d instrs, end %v; want 1, unmapped", len(got), end)
	}
	if got, end := ScanBlock(0x202, windowFetch(t, 0x200, words), nil); len(got) != 0 || end != EndUnmapped {
		t.Fatalf("unaligned pc: got %d instrs, end %v; want empty, unmapped", len(got), end)
	}
}

func TestScanBlockLimit(t *testing.T) {
	words := make([]uint32, BlockMax+8)
	for i := range words {
		words[i] = Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 1, Imm: 1})
	}
	got, end := ScanBlock(0, windowFetch(t, 0, words), nil)
	if end != EndLimit || len(got) != BlockMax {
		t.Fatalf("got %d instrs, end %v; want %d, limit", len(got), end, BlockMax)
	}
}

func TestBlockEndString(t *testing.T) {
	want := map[BlockEnd]string{
		EndControl: "control", EndIllegal: "illegal",
		EndUnmapped: "unmapped", EndLimit: "limit", BlockEnd(99): "end(?)",
	}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("BlockEnd(%d).String() = %q, want %q", int(e), e.String(), s)
		}
	}
}

// FuzzBlockDiscovery throws random word windows and start addresses at
// ScanBlock and checks every invariant the cpu block translator depends on
// against the pure decoder: instructions match Decode, only the final
// instruction may redirect control, non-executable words and window edges
// are never entered, and the end reason is consistent with what lies past
// the block.
func FuzzBlockDiscovery(f *testing.F) {
	add := func(ws ...uint32) {
		buf := make([]byte, 4*len(ws))
		for i, w := range ws {
			buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		}
		f.Add(buf, uint32(0))
	}
	add(Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 7}),
		Encode(Instr{Op: OpHalt}))
	add(Encode(Instr{Op: OpBeq, Imm: -1}))
	add(Encode(Instr{Op: OpLw, Rd: 2, Rs1: 1}), 0xFFFFFFFF)
	f.Add([]byte{}, uint32(0xFFFFFFFC))
	f.Add([]byte{1, 2, 3, 4}, uint32(2)) // unaligned start

	f.Fuzz(func(t *testing.T, data []byte, start uint32) {
		words := make([]uint32, len(data)/4)
		for i := range words {
			words[i] = uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
				uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
		}
		fetch := func(addr uint32) (uint32, bool) {
			if addr%4 != 0 {
				t.Fatalf("misaligned fetch %#x", addr)
			}
			i := uint64(addr) / 4
			if i >= uint64(len(words)) {
				return 0, false
			}
			return words[i], true
		}
		got, end := ScanBlock(start, fetch, nil)
		if len(got) > BlockMax {
			t.Fatalf("block of %d instructions exceeds BlockMax %d", len(got), BlockMax)
		}
		if start%4 != 0 {
			if len(got) != 0 || end != EndUnmapped {
				t.Fatalf("unaligned start %#x: got %d instrs, end %v", start, len(got), end)
			}
			return
		}
		for i, in := range got {
			addr := start + uint32(i)*4
			w, ok := fetch(addr)
			if !ok {
				t.Fatalf("instr %d at %#x lies outside the readable window", i, addr)
			}
			if want := Decode(w); in != want {
				t.Fatalf("instr %d at %#x = %+v, want Decode = %+v", i, addr, in, want)
			}
			if !in.Executable() {
				t.Fatalf("instr %d at %#x is not executable; blocks must stop before faults", i, addr)
			}
			if in.Op.IsControl() && i != len(got)-1 {
				t.Fatalf("control transfer at %d of %d is not the block end", i, len(got))
			}
		}
		next := start + uint32(len(got))*4
		wrapped := len(got) > 0 && next < start
		switch end {
		case EndControl:
			if len(got) == 0 || !got[len(got)-1].Op.IsControl() {
				t.Fatalf("EndControl but final instruction is not a control transfer")
			}
		case EndLimit:
			if len(got) != BlockMax {
				t.Fatalf("EndLimit with %d instructions, want %d", len(got), BlockMax)
			}
		case EndIllegal:
			w, ok := fetch(next)
			if wrapped || !ok || Decode(w).Executable() {
				t.Fatalf("EndIllegal but the next word at %#x is not an executable-fault site", next)
			}
		case EndUnmapped:
			if !wrapped {
				if _, ok := fetch(next); ok {
					t.Fatalf("EndUnmapped but the next word at %#x is readable", next)
				}
			}
		default:
			t.Fatalf("unknown end reason %v", end)
		}
	})
}
