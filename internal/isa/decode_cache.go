package isa

// DecodeCacheBits sizes the direct-mapped decoded-instruction table. 1024
// entries cover the working set of the framework's workloads (a few hundred
// distinct instruction words) with a per-core footprint of ~20 kB.
const DecodeCacheBits = 10

// DecodeCacheSize is the number of direct-mapped entries.
const DecodeCacheSize = 1 << DecodeCacheBits

// DecodeCache memoizes Decode behind a direct-mapped table keyed by the
// full instruction word. Decode is a pure function, so entries never need
// invalidation — not even across program reloads. The zero value is ready
// to use: an empty slot holds tag 0 and the zero Instr, and Decode(0) *is*
// the zero Instr (OpRType with all fields zero), so a zero-word lookup is
// already a correct hit.
//
// The no-invalidation claim holds precisely because the key is the 32-bit
// instruction word itself, never an address: the table caches the mapping
// word → Instr, which is immutable, not the binding pc → word, which any
// store or program reload can change. A reload that places different words
// at the same addresses simply looks up (and possibly installs) different
// keys; stale entries for the old words remain correct answers for those
// words and are at worst evicted by collisions. Contrast the address-keyed
// block cache of the cpu package, which caches pc → decoded straight-line
// run and therefore must be invalidated by code-range stores (the memory
// controller's code-write hook) and discarded wholesale on core reset and
// checkpoint restore. TestDecodeCacheSurvivesReload pins the word-keyed
// half of this contract; the cpu/emu self-modifying-code and reload tests
// pin the address-keyed half.
//
// Each core owns one cache; sharing a table across the parallel kernel's
// goroutines would race.
type DecodeCache struct {
	words  [DecodeCacheSize]uint32
	instrs [DecodeCacheSize]Instr
}

// Decode returns Decode(w), consulting the table first. The index mixes the
// whole word (Fibonacci hashing) because R32 packs opcode bits at the top
// and immediate bits at the bottom: plain low-bit indexing would collide
// every register-to-register opcode pair.
func (c *DecodeCache) Decode(w uint32) Instr {
	i := (w * 0x9E3779B1) >> (32 - DecodeCacheBits)
	if c.words[i] == w {
		return c.instrs[i]
	}
	in := Decode(w)
	c.words[i] = w
	c.instrs[i] = in
	return in
}
