package isa

import (
	"math/rand"
	"testing"
)

// TestDecodeCacheMatchesDecode hammers the direct-mapped table with a
// word stream wide enough to force evictions and checks every lookup
// against the pure decoder.
func TestDecodeCacheMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var c DecodeCache
	words := make([]uint32, 4*DecodeCacheSize)
	for i := range words {
		words[i] = rng.Uint32()
	}
	// Two interleaved passes: the second pass re-touches evicted words.
	for pass := 0; pass < 2; pass++ {
		for _, w := range words {
			if got, want := c.Decode(w), Decode(w); got != want {
				t.Fatalf("pass %d: cached decode of %#08x = %+v, want %+v", pass, w, got, want)
			}
		}
	}
}

// TestDecodeCacheZeroWord pins the zero-value trick the cache relies on: an
// empty slot (tag 0, zero Instr) must already be a correct hit for word 0.
func TestDecodeCacheZeroWord(t *testing.T) {
	if Decode(0) != (Instr{}) {
		t.Fatalf("Decode(0) = %+v, want the zero Instr; the zero-value DecodeCache depends on this", Decode(0))
	}
	var c DecodeCache
	if got := c.Decode(0); got != (Instr{}) {
		t.Fatalf("cold cache Decode(0) = %+v, want zero Instr", got)
	}
}

// TestDecodeCacheSurvivesReload pins the no-invalidation contract from the
// DecodeCache doc comment: the cache is keyed by the instruction *word*, not
// by the address it was fetched from, so overwriting a program image — the
// same addresses now holding different words — must need no flush. An
// address-keyed memo (the cpu block cache) would serve the old program here;
// the word-keyed memo cannot, because the new word is its own key.
func TestDecodeCacheSurvivesReload(t *testing.T) {
	var c DecodeCache
	// "Program A": addresses 0x100.. hold these words; warm the cache.
	progA := []uint32{
		Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 1}),
		Encode(Instr{Op: OpLw, Rd: 2, Rs1: 1, Imm: 8}),
		Encode(Instr{Op: OpHalt}),
	}
	// "Program B": the same addresses after a reload, different words.
	progB := []uint32{
		Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 99}),
		Encode(Instr{Op: OpSw, Rd: 2, Rs1: 1, Imm: 8}),
		Encode(Instr{Op: OpJal, Imm: -2}),
	}
	for _, w := range progA {
		if got, want := c.Decode(w), Decode(w); got != want {
			t.Fatalf("program A decode of %#08x = %+v, want %+v", w, got, want)
		}
	}
	// No invalidation between the programs — the reload is invisible to a
	// word-keyed cache, and every post-reload decode must still be exact.
	for i, w := range progB {
		got, want := c.Decode(w), Decode(w)
		if got != want {
			t.Fatalf("post-reload decode of %#08x = %+v, want %+v", w, got, want)
		}
		if got == Decode(progA[i]) && w != progA[i] {
			t.Fatalf("post-reload decode at slot %d returned program A's instruction", i)
		}
	}
}

// TestDecodeCacheCollision drives two words that map to the same slot and
// checks the tag comparison keeps them apart.
func TestDecodeCacheCollision(t *testing.T) {
	index := func(w uint32) uint32 { return (w * 0x9E3779B1) >> (32 - DecodeCacheBits) }
	w1 := uint32(0x04201234) // addi-class word
	var w2 uint32
	for w := uint32(1); ; w++ {
		if w != w1 && index(w) == index(w1) {
			w2 = w
			break
		}
	}
	var c DecodeCache
	for i := 0; i < 3; i++ {
		if got, want := c.Decode(w1), Decode(w1); got != want {
			t.Fatalf("w1 decode = %+v, want %+v", got, want)
		}
		if got, want := c.Decode(w2), Decode(w2); got != want {
			t.Fatalf("w2 decode = %+v, want %+v", got, want)
		}
	}
}
