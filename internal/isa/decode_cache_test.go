package isa

import (
	"math/rand"
	"testing"
)

// TestDecodeCacheMatchesDecode hammers the direct-mapped table with a
// word stream wide enough to force evictions and checks every lookup
// against the pure decoder.
func TestDecodeCacheMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var c DecodeCache
	words := make([]uint32, 4*DecodeCacheSize)
	for i := range words {
		words[i] = rng.Uint32()
	}
	// Two interleaved passes: the second pass re-touches evicted words.
	for pass := 0; pass < 2; pass++ {
		for _, w := range words {
			if got, want := c.Decode(w), Decode(w); got != want {
				t.Fatalf("pass %d: cached decode of %#08x = %+v, want %+v", pass, w, got, want)
			}
		}
	}
}

// TestDecodeCacheZeroWord pins the zero-value trick the cache relies on: an
// empty slot (tag 0, zero Instr) must already be a correct hit for word 0.
func TestDecodeCacheZeroWord(t *testing.T) {
	if Decode(0) != (Instr{}) {
		t.Fatalf("Decode(0) = %+v, want the zero Instr; the zero-value DecodeCache depends on this", Decode(0))
	}
	var c DecodeCache
	if got := c.Decode(0); got != (Instr{}) {
		t.Fatalf("cold cache Decode(0) = %+v, want zero Instr", got)
	}
}

// TestDecodeCacheCollision drives two words that map to the same slot and
// checks the tag comparison keeps them apart.
func TestDecodeCacheCollision(t *testing.T) {
	index := func(w uint32) uint32 { return (w * 0x9E3779B1) >> (32 - DecodeCacheBits) }
	w1 := uint32(0x04201234) // addi-class word
	var w2 uint32
	for w := uint32(1); ; w++ {
		if w != w1 && index(w) == index(w1) {
			w2 = w
			break
		}
	}
	var c DecodeCache
	for i := 0; i < 3; i++ {
		if got, want := c.Decode(w1), Decode(w1); got != want {
			t.Fatalf("w1 decode = %+v, want %+v", got, want)
		}
		if got, want := c.Decode(w2), Decode(w2); got != want {
			t.Fatalf("w2 decode = %+v, want %+v", got, want)
		}
	}
}
