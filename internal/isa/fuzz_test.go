package isa

import "testing"

// FuzzEncodeDecodeRoundTrip asserts that every 32-bit word that decodes to a
// valid instruction re-encodes to exactly the same word, and that decoding
// is stable across the roundtrip. Every instruction format uses the full
// word, so the encoding must be lossless for the emulator, the assembler
// and the disassembler to agree.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	// One seed per format family.
	f.Add(uint32(0))                       // R-type add r0,r0,r0
	f.Add(Encode(Instr{Op: OpRType, Funct: FnMul, Rd: 3, Rs1: 4, Rs2: 5}))
	f.Add(Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -7}))
	f.Add(Encode(Instr{Op: OpLui, Rd: 9, Imm: 0x1000}))
	f.Add(Encode(Instr{Op: OpJal, Imm: -123}))
	f.Add(Encode(Instr{Op: OpBne, Rs1: 1, Rs2: 2, Imm: 12}))
	f.Add(Encode(Instr{Op: OpLw, Rd: 6, Rs1: 7, Imm: 40}))
	f.Add(Encode(Instr{Op: OpSwap, Rd: 8, Rs1: 9, Imm: 0}))
	f.Add(Encode(Instr{Op: OpHalt}))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		if Validate(in) != nil {
			return // undefined encodings are allowed to be lossy
		}
		w2 := Encode(in)
		if w2 != w {
			t.Fatalf("Encode(Decode(%#08x)) = %#08x; instr %v", w, w2, in)
		}
		if again := Decode(w2); again != in {
			t.Fatalf("Decode unstable for %#08x: %v then %v", w, in, again)
		}
	})
}
