// Package isa defines R32, the 32-bit RISC instruction set executed by the
// emulated processing cores of the thermal-emulation framework.
//
// R32 stands in for the netlist-level soft cores (Microblaze-class) and hard
// cores (PowerPC405-class) that the DAC'06 paper maps onto the FPGA: it is a
// classic fixed-width load/store ISA with 32 general-purpose registers, which
// is enough to run the paper's MATRIX and DITHERING workloads as real
// instruction streams and to drive the memory hierarchy, interconnect and
// statistics sniffers with realistic reference traces.
//
// Encoding (32 bits, little-endian in memory):
//
//	R-type  op[31:26]=0  rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
//	I-type  op[31:26]    rd[25:21] rs1[20:16] imm16[15:0]
//	branch  op[31:26]    rs1[25:21] rs2[20:16] imm16[15:0]   (word offset)
//	J-type  op[31:26]    imm26[25:0]                         (word offset)
package isa

import "fmt"

// Opcode identifies the major operation class of an instruction.
type Opcode uint8

// Major opcodes.
const (
	OpRType Opcode = iota // register-register ALU group, selected by Funct
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpSlli
	OpSrli
	OpSrai
	OpLui
	OpLw
	OpLb
	OpLbu
	OpSw
	OpSb
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal
	OpJalr
	OpHalt
	OpSwap // atomic exchange: rd <-> M[rs1+imm]
	numOpcodes
)

// Funct selects the ALU operation for OpRType instructions.
type Funct uint16

// R-type function codes.
const (
	FnAdd Funct = iota
	FnSub
	FnAnd
	FnOr
	FnXor
	FnNor
	FnSll
	FnSrl
	FnSra
	FnSlt
	FnSltu
	FnMul
	FnDiv
	FnDivu
	FnRem
	FnRemu
	numFuncts
)

// NumRegs is the number of general-purpose registers. Register 0 is
// hard-wired to zero; register 31 is the link register written by JAL.
const NumRegs = 32

// LinkReg is the register that JAL writes its return address to.
const LinkReg = 31

var opNames = [...]string{
	OpRType: "rtype", OpAddi: "addi", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpSlti: "slti", OpSltiu: "sltiu", OpSlli: "slli",
	OpSrli: "srli", OpSrai: "srai", OpLui: "lui", OpLw: "lw", OpLb: "lb",
	OpLbu: "lbu", OpSw: "sw", OpSb: "sb", OpBeq: "beq", OpBne: "bne",
	OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr", OpHalt: "halt", OpSwap: "swap",
}

var fnNames = [...]string{
	FnAdd: "add", FnSub: "sub", FnAnd: "and", FnOr: "or", FnXor: "xor",
	FnNor: "nor", FnSll: "sll", FnSrl: "srl", FnSra: "sra", FnSlt: "slt",
	FnSltu: "sltu", FnMul: "mul", FnDiv: "div", FnDivu: "divu",
	FnRem: "rem", FnRemu: "remu",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// String returns the mnemonic for the R-type function.
func (fn Funct) String() string {
	if int(fn) < len(fnNames) {
		return fnNames[fn]
	}
	return fmt.Sprintf("fn(%d)", uint16(fn))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// Valid reports whether fn is a defined R-type function.
func (fn Funct) Valid() bool { return fn < numFuncts }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= OpBeq && op <= OpBgeu }

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op == OpLw || op == OpLb || op == OpLbu }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op == OpSw || op == OpSb }

// IsMem reports whether op accesses data memory (including atomic swap).
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() || op == OpSwap }

// Instr is a decoded R32 instruction.
type Instr struct {
	Op    Opcode
	Funct Funct // valid only when Op == OpRType
	Rd    uint8
	Rs1   uint8
	Rs2   uint8
	Imm   int32 // sign-extended imm16, or imm26 for OpJal
}

// ZeroExtImm reports whether the immediate of op is zero-extended rather
// than sign-extended (logical immediates and shift amounts).
func (op Opcode) ZeroExtImm() bool {
	switch op {
	case OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpLui:
		return true
	}
	return false
}

// Encode packs the instruction into its 32-bit representation.
// It panics if a field is out of range; use Validate to check first.
func Encode(in Instr) uint32 {
	if err := Validate(in); err != nil {
		panic("isa: encode: " + err.Error())
	}
	w := uint32(in.Op) << 26
	switch {
	case in.Op == OpRType:
		w |= uint32(in.Rd)<<21 | uint32(in.Rs1)<<16 | uint32(in.Rs2)<<11 | uint32(in.Funct)
	case in.Op == OpJal:
		w |= uint32(in.Imm) & 0x03FFFFFF
	case in.Op.IsBranch():
		w |= uint32(in.Rs1)<<21 | uint32(in.Rs2)<<16 | uint32(uint16(in.Imm))
	default: // I-type
		w |= uint32(in.Rd)<<21 | uint32(in.Rs1)<<16 | uint32(uint16(in.Imm))
	}
	return w
}

// Decode unpacks a 32-bit word into an Instr. Undefined opcodes decode with
// Op left as the raw value; callers should treat them as illegal.
func Decode(w uint32) Instr {
	op := Opcode(w >> 26)
	in := Instr{Op: op}
	switch {
	case op == OpRType:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		in.Rs2 = uint8(w >> 11 & 31)
		in.Funct = Funct(w & 0x7FF)
	case op == OpJal:
		imm := int32(w & 0x03FFFFFF)
		if imm&(1<<25) != 0 { // sign-extend 26-bit field
			imm |= ^int32(0x03FFFFFF)
		}
		in.Imm = imm
	case op.IsBranch():
		in.Rs1 = uint8(w >> 21 & 31)
		in.Rs2 = uint8(w >> 16 & 31)
		in.Imm = int32(int16(w))
	default:
		in.Rd = uint8(w >> 21 & 31)
		in.Rs1 = uint8(w >> 16 & 31)
		if op.ZeroExtImm() {
			in.Imm = int32(w & 0xFFFF)
		} else {
			in.Imm = int32(int16(w))
		}
	}
	return in
}

// Validate checks that every field of in is within its encodable range.
func Validate(in Instr) error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return fmt.Errorf("%s: register out of range (rd=%d rs1=%d rs2=%d)", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
	switch {
	case in.Op == OpRType:
		if !in.Funct.Valid() {
			return fmt.Errorf("invalid funct %d", in.Funct)
		}
	case in.Op == OpJal:
		if in.Imm < -(1<<25) || in.Imm > 1<<25-1 {
			return fmt.Errorf("jal offset %d out of 26-bit range", in.Imm)
		}
	case in.Op.ZeroExtImm():
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return fmt.Errorf("%s: immediate %d out of unsigned 16-bit range", in.Op, in.Imm)
		}
	default:
		if in.Imm < -(1<<15) || in.Imm > 1<<15-1 {
			return fmt.Errorf("%s: immediate %d out of signed 16-bit range", in.Op, in.Imm)
		}
	}
	return nil
}

// RegName returns the canonical assembly name of register r ("r0".."r31").
func RegName(r uint8) string { return fmt.Sprintf("r%d", r) }

// String disassembles the instruction into canonical assembly syntax.
func (in Instr) String() string {
	switch {
	case in.Op == OpRType:
		return fmt.Sprintf("%s %s, %s, %s", in.Funct, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case in.Op == OpJal:
		return fmt.Sprintf("jal %d", in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("jalr %s, %s, %d", RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case in.Op.IsMem():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case in.Op == OpLui:
		return fmt.Sprintf("lui %s, %d", RegName(in.Rd), in.Imm)
	case in.Op == OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	}
}
