package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripExamples(t *testing.T) {
	cases := []Instr{
		{Op: OpRType, Funct: FnAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpRType, Funct: FnRemu, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpAddi, Rd: 5, Rs1: 0, Imm: -1},
		{Op: OpAddi, Rd: 5, Rs1: 0, Imm: 32767},
		{Op: OpAndi, Rd: 5, Rs1: 6, Imm: 0xFFFF},
		{Op: OpLui, Rd: 7, Imm: 0xABCD},
		{Op: OpLw, Rd: 8, Rs1: 9, Imm: -4},
		{Op: OpSw, Rd: 8, Rs1: 9, Imm: 2044},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -100},
		{Op: OpBgeu, Rs1: 3, Rs2: 4, Imm: 100},
		{Op: OpJal, Imm: -(1 << 25)},
		{Op: OpJal, Imm: 1<<25 - 1},
		{Op: OpJalr, Rd: 0, Rs1: 31, Imm: 0},
		{Op: OpHalt},
		{Op: OpSwap, Rd: 10, Rs1: 11, Imm: 16},
	}
	for _, in := range cases {
		got := Decode(Encode(in))
		if got != in {
			t.Errorf("round trip %v: got %v", in, got)
		}
	}
}

// genInstr produces a random valid instruction.
func genInstr(r *rand.Rand) Instr {
	in := Instr{Op: Opcode(r.Intn(int(numOpcodes)))}
	reg := func() uint8 { return uint8(r.Intn(NumRegs)) }
	switch {
	case in.Op == OpRType:
		in.Funct = Funct(r.Intn(int(numFuncts)))
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
	case in.Op == OpJal:
		in.Imm = int32(r.Intn(1<<26)) - 1<<25
	case in.Op.IsBranch():
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(r.Intn(1<<16)) - 1<<15
	case in.Op.ZeroExtImm():
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int32(r.Intn(1 << 16))
	default:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int32(r.Intn(1<<16)) - 1<<15
	}
	return in
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			in := genInstr(r)
			if err := Validate(in); err != nil {
				t.Logf("generated invalid instr %v: %v", in, err)
				return false
			}
			out := Decode(Encode(in))
			if out != in {
				t.Logf("mismatch: in=%+v out=%+v", in, out)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsQuick(t *testing.T) {
	f := func(w uint32) bool {
		_ = Decode(w) // must not panic on arbitrary bit patterns
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	bad := []Instr{
		{Op: numOpcodes},
		{Op: OpRType, Funct: numFuncts},
		{Op: OpAddi, Rd: 32},
		{Op: OpAddi, Imm: 1 << 15},
		{Op: OpAddi, Imm: -(1<<15 + 1)},
		{Op: OpAndi, Imm: -1},
		{Op: OpAndi, Imm: 1 << 16},
		{Op: OpJal, Imm: 1 << 25},
	}
	for _, in := range bad {
		if err := Validate(in); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of invalid instruction did not panic")
		}
	}()
	Encode(Instr{Op: OpAddi, Imm: 1 << 20})
}

func TestOpcodeClassPredicates(t *testing.T) {
	if !OpLw.IsLoad() || !OpLb.IsLoad() || !OpLbu.IsLoad() {
		t.Error("load predicate broken")
	}
	if OpSw.IsLoad() || !OpSw.IsStore() || !OpSb.IsStore() {
		t.Error("store predicate broken")
	}
	if !OpSwap.IsMem() || OpAddi.IsMem() {
		t.Error("mem predicate broken")
	}
	for op := OpBeq; op <= OpBgeu; op++ {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	if OpJal.IsBranch() || OpJalr.IsBranch() {
		t.Error("jumps must not be classified as branches")
	}
}

func TestDisassemblyMentionsOperands(t *testing.T) {
	in := Instr{Op: OpLw, Rd: 8, Rs1: 9, Imm: -4}
	s := in.String()
	for _, want := range []string{"lw", "r8", "r9", "-4"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly %q missing %q", s, want)
		}
	}
	r := Instr{Op: OpRType, Funct: FnMul, Rd: 1, Rs1: 2, Rs2: 3}
	if s := r.String(); !strings.Contains(s, "mul") {
		t.Errorf("disassembly %q missing mul", s)
	}
}

func TestSignExtensionBoundaries(t *testing.T) {
	// imm16 = 0x8000 must decode as -32768 for sign-extended opcodes.
	w := Encode(Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -32768})
	if got := Decode(w).Imm; got != -32768 {
		t.Errorf("sign extension: got %d want -32768", got)
	}
	// Zero-extended opcodes must keep 0x8000 positive.
	w = Encode(Instr{Op: OpOri, Rd: 1, Rs1: 2, Imm: 0x8000})
	if got := Decode(w).Imm; got != 0x8000 {
		t.Errorf("zero extension: got %d want 32768", got)
	}
	// JAL 26-bit sign boundary.
	w = Encode(Instr{Op: OpJal, Imm: -(1 << 25)})
	if got := Decode(w).Imm; got != -(1 << 25) {
		t.Errorf("jal sign extension: got %d", got)
	}
}
