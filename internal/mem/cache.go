package mem

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes one private HW-controlled cache. Per the paper,
// total size, line size and latency are independently configurable for each
// cache, and both direct-mapped (Assoc == 1) and set-associative
// organisations are supported.
type CacheConfig struct {
	Name       string
	SizeBytes  uint32
	LineBytes  uint32
	Assoc      int
	HitLatency uint64
	// WriteThrough selects a write-through, no-write-allocate policy
	// instead of the default write-back, write-allocate one: every store
	// is forwarded to the next level (no dirty lines, no write-backs),
	// and a store miss does not install the line.
	WriteThrough bool
}

// Validate checks the configuration for structural consistency.
func (c CacheConfig) Validate() error {
	if c.SizeBytes == 0 || c.LineBytes == 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: size, line size and associativity must be positive", c.Name)
	}
	if c.LineBytes%4 != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d must be a power of two multiple of 4", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*uint32(c.Assoc)) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * uint32(c.Assoc))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events for the sniffers.
type CacheStats struct {
	Reads      uint64
	Writes     uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Accesses returns the total number of cache accesses.
func (s CacheStats) Accesses() uint64 { return s.Reads + s.Writes }

// MissRate returns misses over accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64 // last-touched stamp
}

// Cache is a timing directory modelling a write-back, write-allocate cache
// with per-set LRU replacement. It never holds data: the backing store is
// always consistent, so the cache only determines how many cycles an access
// costs and which refills/write-backs reach the next level.
type Cache struct {
	cfg  CacheConfig
	sets [][]cacheLine
	// lines is the flat backing array the per-set slices in sets view into;
	// Access indexes it directly (set*assoc) to keep the hot lookup free of
	// the double indirection.
	lines []cacheLine
	assoc uint32
	nSets uint32
	// lineShift/setShift/setMask precompute the power-of-two index
	// arithmetic (Validate guarantees both line size and set count are
	// powers of two), keeping runtime divisions off the per-access path.
	lineShift uint32
	setShift  uint32
	setMask   uint32
	stamp     uint64
	stats     CacheStats
	enable    bool
	// memoLine/memoIdx memoise the resident line of the previous access,
	// with a second entry behind it: emulated reference streams are
	// line-local (sequential instruction fetch especially), and data
	// streams often alternate between exactly two lines (a row-walk and a
	// column-walk in the same loop body), which a one-entry memo thrashes
	// on. The memos hold indices into the flat lines array rather than
	// pointers so repointing them on every access is barrier-free; -1 means
	// empty. They are repointed by Refill and dropped whenever the
	// directory could change under them — Invalidate, Flush, SetEnabled,
	// RestoreState and RestoreMirror all clear both.
	memoLine  uint32
	memoIdx   int32
	memoLine2 uint32
	memoIdx2  int32
	// epoch counts directory shape changes (refill, invalidate, flush,
	// enable toggle, restore): any event that can change which lines are
	// resident. Batched-fetch plans record the epoch they were validated at
	// and revalidate only when it moves, so a hot block's residency check
	// is one compare. Pure hits move only LRU state and leave it unchanged.
	epoch uint64
}

// NewCache builds a cache from cfg. It panics on invalid configurations;
// call cfg.Validate first if the source is untrusted.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic("mem: " + err.Error())
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * uint32(cfg.Assoc))
	sets := make([][]cacheLine, nSets)
	lines := make([]cacheLine, nSets*uint32(cfg.Assoc))
	rest := lines
	for i := range sets {
		sets[i], rest = rest[:cfg.Assoc], rest[cfg.Assoc:]
	}
	return &Cache{cfg: cfg, sets: sets, lines: lines, assoc: uint32(cfg.Assoc), nSets: nSets,
		lineShift: uint32(bits.TrailingZeros32(cfg.LineBytes)),
		setShift:  uint32(bits.TrailingZeros32(nSets)),
		setMask:   nSets - 1,
		memoIdx:   -1,
		memoIdx2:  -1,
		enable:    true}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the event counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// SetEnabled turns the cache on or off; when disabled every access goes
// straight to the backing target (used to make address ranges uncacheable
// at run time).
func (c *Cache) SetEnabled(on bool) {
	c.enable = on
	c.memoIdx, c.memoIdx2 = -1, -1
	c.epoch++
}

// Resolver maps a global address to the target that backs it and the
// target-local address (provided by the memory controller).
type Resolver func(addr uint32) (Target, uint32)

// Flush invalidates every line, charging write-backs for dirty ones against
// the target resolved for each victim line, starting at cycle now. It
// returns the total cycles spent.
func (c *Cache) Flush(now uint64, resolve Resolver) uint64 {
	c.memoIdx, c.memoIdx2 = -1, -1
	c.epoch++
	var total uint64
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			if ln.valid && ln.dirty {
				addr := c.lineAddr(ln.tag, uint32(si))
				if t, local := resolve(addr); t != nil {
					total += t.Latency(now+total, local, c.cfg.LineBytes, true)
				}
				c.stats.Writebacks++
			}
			*ln = cacheLine{}
		}
	}
	return total
}

func (c *Cache) index(addr uint32) (set, tag uint32) {
	line := addr >> c.lineShift
	return line & c.setMask, line >> c.setShift
}

func (c *Cache) lineAddr(tag, set uint32) uint32 {
	return (tag<<c.setShift | set) << c.lineShift
}

// Enabled reports whether the cache is currently active.
func (c *Cache) Enabled() bool { return c.enable }

// Access models one cache lookup at the given (global) address. On a hit it
// returns (true, hit latency); on a miss it returns (false, 0) and the
// caller is expected to call Refill and charge the refill/write-back timing
// against the appropriate targets. The functional data transfer is performed
// by the caller against the backing store; Access only accounts timing and
// directory state.
func (c *Cache) Access(addr uint32, write bool) (hit bool, stall uint64) {
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.stamp++
	line := addr >> c.lineShift
	if mi := c.memoIdx; mi >= 0 && line == c.memoLine {
		ln := &c.lines[mi]
		c.stats.Hits++
		ln.lru = c.stamp
		if write && !c.cfg.WriteThrough {
			ln.dirty = true
		}
		return true, c.cfg.HitLatency
	}
	if mi := c.memoIdx2; mi >= 0 && line == c.memoLine2 {
		c.memoLine2, c.memoIdx2 = c.memoLine, c.memoIdx
		c.memoLine, c.memoIdx = line, mi
		ln := &c.lines[mi]
		c.stats.Hits++
		ln.lru = c.stamp
		if write && !c.cfg.WriteThrough {
			ln.dirty = true
		}
		return true, c.cfg.HitLatency
	}
	set, tag := line&c.setMask, line>>c.setShift
	if c.assoc == 1 {
		// Direct-mapped fast path (the default icache shape): one candidate
		// line, indexed straight off the flat array.
		ln := &c.lines[set]
		if ln.valid && ln.tag == tag {
			c.stats.Hits++
			ln.lru = c.stamp
			if write && !c.cfg.WriteThrough {
				ln.dirty = true
			}
			c.memoLine2, c.memoIdx2 = c.memoLine, c.memoIdx
			c.memoLine, c.memoIdx = line, int32(set)
			return true, c.cfg.HitLatency
		}
		c.stats.Misses++
		return false, 0
	}
	base := set * c.assoc
	lines := c.lines[base : base+c.assoc]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.stats.Hits++
			lines[i].lru = c.stamp
			if write && !c.cfg.WriteThrough {
				lines[i].dirty = true
			}
			c.memoLine2, c.memoIdx2 = c.memoLine, c.memoIdx
			c.memoLine, c.memoIdx = line, int32(base+uint32(i))
			return true, c.cfg.HitLatency
		}
	}
	c.stats.Misses++
	return false, 0
}

// Refill installs the line containing addr, evicting the LRU way. It
// returns the victim's write-back requirement.
func (c *Cache) Refill(addr uint32, write bool) (victimAddr uint32, victimDirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	vi := 0
	for i := range lines {
		if !lines[i].valid {
			vi = i
			break
		}
		if lines[i].lru < lines[vi].lru {
			vi = i
		}
	}
	v := &lines[vi]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			victimAddr, victimDirty = c.lineAddr(v.tag, set), true
		}
	}
	c.stamp++
	dirty := write && !c.cfg.WriteThrough
	*v = cacheLine{tag: tag, valid: true, dirty: dirty, lru: c.stamp}
	// The refilled slot just changed residents: any memo pointing at it is
	// stale. Demote memo1 only if it survives the eviction.
	ni := int32(set*c.assoc + uint32(vi))
	if c.memoIdx2 == ni {
		c.memoIdx2 = -1
	}
	if c.memoIdx != ni {
		c.memoLine2, c.memoIdx2 = c.memoLine, c.memoIdx
	}
	c.memoLine, c.memoIdx = addr>>c.lineShift, ni
	c.epoch++
	return victimAddr, victimDirty
}

// resident returns the flat-array index of the valid line holding addr, or
// -1, without touching statistics, LRU state or the memo (pure directory
// probe for batched fetch planning).
func (c *Cache) resident(addr uint32) int32 {
	line := addr >> c.lineShift
	set, tag := line&c.setMask, line>>c.setShift
	base := set * c.assoc
	lines := c.lines[base : base+c.assoc]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			return int32(base + uint32(i))
		}
	}
	return -1
}

// Contains reports whether the line holding addr is currently resident
// (used by tests and by atomic-swap invalidation).
func (c *Cache) Contains(addr uint32) bool {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if resident, without write-back
// (used by atomic operations that bypass the cache).
func (c *Cache) Invalidate(addr uint32) {
	c.memoIdx, c.memoIdx2 = -1, -1
	c.epoch++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i] = cacheLine{}
			return
		}
	}
}

// CacheMirror is a reusable in-memory snapshot of a cache's directory and
// counters, sized for the high-frequency save/restore the speculative kernel
// performs at every chunk boundary (unlike CacheState, it is not a wire
// format and reuses its backing array across snapshots).
type CacheMirror struct {
	lines  []cacheLine
	stamp  uint64
	stats  CacheStats
	enable bool
}

// MirrorInto copies the cache's full directory state into m, reusing m's
// storage when already sized.
func (c *Cache) MirrorInto(m *CacheMirror) {
	m.lines = append(m.lines[:0], c.lines...)
	m.stamp, m.stats, m.enable = c.stamp, c.stats, c.enable
}

// RestoreMirror reinstates a snapshot taken by MirrorInto on the same cache.
func (c *Cache) RestoreMirror(m *CacheMirror) {
	copy(c.lines, m.lines)
	c.stamp, c.stats, c.enable = m.stamp, m.stats, m.enable
	c.memoIdx, c.memoIdx2 = -1, -1
	c.epoch++
}
