package mem

import (
	"fmt"
	"sort"
)

// RangeKind classifies the address ranges the memory controller routes to,
// mirroring the paper's three memory address ranges (private main memory,
// shared main memory, caches in front of them) plus memory-mapped devices
// such as the sniffer control registers.
type RangeKind int

// Range kinds.
const (
	KindPrivate RangeKind = iota
	KindShared
	KindDevice
)

// String returns the kind name.
func (k RangeKind) String() string {
	switch k {
	case KindPrivate:
		return "private"
	case KindShared:
		return "shared"
	case KindDevice:
		return "device"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Range maps [Base, Base+Target.Size()) in the core's address space onto a
// target component.
type Range struct {
	Name      string
	Base      uint32
	Target    Target
	Cacheable bool
	Kind      RangeKind
}

// Access describes one memory reference, delivered to the controller's
// observer. This is the signal bundle an event-logging HW sniffer captures.
type Access struct {
	Cycle uint64
	Core  int
	Addr  uint32
	Kind  RangeKind
	Write bool
	Fetch bool
	Stall uint64
}

// Observer receives every access routed through a controller.
type Observer func(Access)

// CtrlStats are the count-logging statistics of one memory controller.
type CtrlStats struct {
	Fetches      uint64
	PrivateReads uint64
	PrivateWrits uint64
	SharedReads  uint64
	SharedWrits  uint64
	DeviceOps    uint64
	StallCycles  uint64
}

// Controller captures all memory requests of one processing core and
// forwards them to the demanded memory according to the address (Section
// 3.2). One controller is attached to each core; it owns the core's private
// I/D caches and keeps the latency bookkeeping that, on the FPGA, drives the
// VIRTUAL_CLK_SUPPRESSION signal into the VPCM.
type Controller struct {
	name     string
	coreID   int
	ranges   []Range // sorted by Base
	icache   *Cache
	dcache   *Cache
	observer Observer
	stats    CtrlStats
}

// NewController creates a memory controller for core coreID.
func NewController(name string, coreID int) *Controller {
	return &Controller{name: name, coreID: coreID}
}

// Name returns the controller instance name.
func (c *Controller) Name() string { return c.name }

// CoreID returns the attached core's index.
func (c *Controller) CoreID() int { return c.coreID }

// Stats returns the count-logging statistics.
func (c *Controller) Stats() CtrlStats { return c.stats }

// ResetStats zeroes the statistics counters.
func (c *Controller) ResetStats() { c.stats = CtrlStats{} }

// ICache and DCache return the attached caches (nil when absent).
func (c *Controller) ICache() *Cache { return c.icache }

// DCache returns the attached data cache (nil when absent).
func (c *Controller) DCache() *Cache { return c.dcache }

// AttachCaches installs the private instruction and data caches. Either may
// be nil for an uncached configuration.
func (c *Controller) AttachCaches(icache, dcache *Cache) {
	c.icache, c.dcache = icache, dcache
}

// SetObserver installs the access observer (event-logging sniffer hook).
func (c *Controller) SetObserver(o Observer) { c.observer = o }

// AddRange registers an address range. Ranges must not overlap.
func (c *Controller) AddRange(r Range) error {
	if r.Target == nil {
		return fmt.Errorf("mem: %s: range %s has nil target", c.name, r.Name)
	}
	end := uint64(r.Base) + uint64(r.Target.Size())
	for _, e := range c.ranges {
		eEnd := uint64(e.Base) + uint64(e.Target.Size())
		if uint64(r.Base) < eEnd && uint64(e.Base) < end {
			return fmt.Errorf("mem: %s: range %s overlaps %s", c.name, r.Name, e.Name)
		}
	}
	c.ranges = append(c.ranges, r)
	sort.Slice(c.ranges, func(i, j int) bool { return c.ranges[i].Base < c.ranges[j].Base })
	return nil
}

// Ranges returns the registered ranges in address order.
func (c *Controller) Ranges() []Range { return c.ranges }

func (c *Controller) rangeFor(addr uint32) *Range {
	// Binary search over sorted bases.
	lo, hi := 0, len(c.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ranges[mid].Base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	r := &c.ranges[lo-1]
	if uint64(addr) < uint64(r.Base)+uint64(r.Target.Size()) {
		return r
	}
	return nil
}

// Resolve implements the cache Resolver over this controller's address map.
func (c *Controller) Resolve(addr uint32) (Target, uint32) {
	if r := c.rangeFor(addr); r != nil {
		return r.Target, addr - r.Base
	}
	return nil, 0
}

// FaultError describes an illegal memory reference.
type FaultError struct {
	Ctrl  string
	Addr  uint32
	Cause string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mem: %s: fault at 0x%08x: %s", e.Ctrl, e.Addr, e.Cause)
}

func (c *Controller) fault(addr uint32, cause string) error {
	return &FaultError{Ctrl: c.name, Addr: addr, Cause: cause}
}

func (c *Controller) account(a Access) {
	c.stats.StallCycles += a.Stall
	switch {
	case a.Fetch:
		c.stats.Fetches++
	case a.Kind == KindPrivate && a.Write:
		c.stats.PrivateWrits++
	case a.Kind == KindPrivate:
		c.stats.PrivateReads++
	case a.Kind == KindShared && a.Write:
		c.stats.SharedWrits++
	case a.Kind == KindShared:
		c.stats.SharedReads++
	default:
		c.stats.DeviceOps++
	}
	if c.observer != nil {
		c.observer(a)
	}
}

// timedAccess charges one reference of the given size through the cache (if
// cacheable) or directly, and returns the stall cycles.
func (c *Controller) timedAccess(cache *Cache, now uint64, r *Range, addr uint32, bytes uint32, write bool) uint64 {
	local := addr - r.Base
	if r.Kind == KindDevice || !r.Cacheable || cache == nil || !cache.Enabled() {
		return r.Target.Latency(now, local, bytes, write)
	}
	hit, stall := cache.Access(addr, write)
	if write && cache.Config().WriteThrough {
		// Write-through: the store always reaches the next level; a store
		// miss does not allocate.
		through := r.Target.Latency(now, local, bytes, true)
		if hit {
			return stall + through
		}
		return through
	}
	if hit {
		return stall
	}
	line := cache.Config().LineBytes
	victimAddr, victimDirty := cache.Refill(addr, write)
	var extra uint64
	if victimDirty {
		if vt, vlocal := c.Resolve(victimAddr); vt != nil {
			extra += vt.Latency(now, vlocal, line, true)
		}
	}
	lineLocal := local &^ (line - 1)
	extra += r.Target.Latency(now+extra, lineLocal, line, false)
	return cache.Config().HitLatency + extra
}

// Fetch reads one instruction word through the instruction cache.
func (c *Controller) Fetch(now uint64, addr uint32) (uint32, uint64, error) {
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned instruction fetch")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "fetch from unmapped address")
	}
	stall := c.timedAccess(c.icache, now, r, addr, 4, false)
	v := r.Target.LoadWord(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Fetch: true, Stall: stall})
	return v, stall, nil
}

// ReadWord performs a 32-bit data load.
func (c *Controller) ReadWord(now uint64, addr uint32) (uint32, uint64, error) {
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned word load")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "load from unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 4, false)
	v := r.Target.LoadWord(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Stall: stall})
	return v, stall, nil
}

// WriteWord performs a 32-bit data store.
func (c *Controller) WriteWord(now uint64, addr uint32, v uint32) (uint64, error) {
	if addr%4 != 0 {
		return 0, c.fault(addr, "unaligned word store")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, c.fault(addr, "store to unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 4, true)
	r.Target.StoreWord(addr-r.Base, v)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return stall, nil
}

// ReadByte performs an 8-bit data load.
func (c *Controller) LoadByte(now uint64, addr uint32) (byte, uint64, error) {
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "load from unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 1, false)
	v := r.Target.LoadByte(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Stall: stall})
	return v, stall, nil
}

// WriteByte performs an 8-bit data store.
func (c *Controller) StoreByte(now uint64, addr uint32, b byte) (uint64, error) {
	r := c.rangeFor(addr)
	if r == nil {
		return 0, c.fault(addr, "store to unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 1, true)
	r.Target.StoreByte(addr-r.Base, b)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return stall, nil
}

// Swap performs an atomic 32-bit exchange, bypassing (and invalidating in)
// the data cache: the returned value is the previous memory word.
func (c *Controller) Swap(now uint64, addr uint32, v uint32) (uint32, uint64, error) {
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned atomic swap")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "swap on unmapped address")
	}
	if c.dcache != nil {
		c.dcache.Invalidate(addr)
	}
	local := addr - r.Base
	// Read-modify-write held as a single bus transaction: charge one read
	// plus one extra cycle for the locked write phase.
	stall := r.Target.Latency(now, local, 4, true) + 1
	old := r.Target.LoadWord(local)
	r.Target.StoreWord(local, v)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return old, stall, nil
}
