package mem

import (
	"fmt"
	"sort"
)

// RangeKind classifies the address ranges the memory controller routes to,
// mirroring the paper's three memory address ranges (private main memory,
// shared main memory, caches in front of them) plus memory-mapped devices
// such as the sniffer control registers.
type RangeKind int

// Range kinds.
const (
	KindPrivate RangeKind = iota
	KindShared
	KindDevice
)

// String returns the kind name.
func (k RangeKind) String() string {
	switch k {
	case KindPrivate:
		return "private"
	case KindShared:
		return "shared"
	case KindDevice:
		return "device"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Range maps [Base, Base+Target.Size()) in the core's address space onto a
// target component.
type Range struct {
	Name      string
	Base      uint32
	Target    Target
	Cacheable bool
	Kind      RangeKind
	// end caches Base+Target.Size() (exclusive, 33-bit safe) so the
	// per-access bound check costs no interface call. AddRange fills it in.
	end uint64
}

// Access describes one memory reference, delivered to the controller's
// observer. This is the signal bundle an event-logging HW sniffer captures.
type Access struct {
	Cycle uint64
	Core  int
	Addr  uint32
	Kind  RangeKind
	Write bool
	Fetch bool
	Stall uint64
}

// Observer receives every access routed through a controller.
type Observer func(Access)

// CtrlStats are the count-logging statistics of one memory controller.
type CtrlStats struct {
	Fetches      uint64
	PrivateReads uint64
	PrivateWrits uint64
	SharedReads  uint64
	SharedWrits  uint64
	DeviceOps    uint64
	StallCycles  uint64
}

// Controller captures all memory requests of one processing core and
// forwards them to the demanded memory according to the address (Section
// 3.2). One controller is attached to each core; it owns the core's private
// I/D caches and keeps the latency bookkeeping that, on the FPGA, drives the
// VIRTUAL_CLK_SUPPRESSION signal into the VPCM.
type Controller struct {
	name     string
	coreID   int
	ranges   []Range // sorted by Base
	icache   *Cache
	dcache   *Cache
	observer Observer
	stats    CtrlStats
	// last memoises the most recently resolved range: core access streams
	// are strongly local (runs of fetches and data references into the same
	// private range), so two compares usually replace the binary search.
	last *Range
	// codeWrite, when set, observes every store this controller commits so
	// state *derived from* instruction memory (the cpu block cache) can be
	// invalidated. See SetCodeWriteHook.
	codeWrite func(addr, bytes uint32)
}

// NewController creates a memory controller for core coreID.
func NewController(name string, coreID int) *Controller {
	return &Controller{name: name, coreID: coreID}
}

// Name returns the controller instance name.
func (c *Controller) Name() string { return c.name }

// CoreID returns the attached core's index.
func (c *Controller) CoreID() int { return c.coreID }

// Stats returns the count-logging statistics.
func (c *Controller) Stats() CtrlStats { return c.stats }

// ResetStats zeroes the statistics counters.
func (c *Controller) ResetStats() { c.stats = CtrlStats{} }

// ICache and DCache return the attached caches (nil when absent).
func (c *Controller) ICache() *Cache { return c.icache }

// DCache returns the attached data cache (nil when absent).
func (c *Controller) DCache() *Cache { return c.dcache }

// AttachCaches installs the private instruction and data caches. Either may
// be nil for an uncached configuration.
func (c *Controller) AttachCaches(icache, dcache *Cache) {
	c.icache, c.dcache = icache, dcache
}

// SetObserver installs the access observer (event-logging sniffer hook).
func (c *Controller) SetObserver(o Observer) { c.observer = o }

// HasObserver reports whether an access observer is attached. The
// speculative kernel forces gated execution while one is: observer delivery
// order must match the committed interleaving exactly.
func (c *Controller) HasObserver() bool { return c.observer != nil }

// SetCodeWriteHook installs fn, invoked with the global address and width of
// every store this controller commits — word and byte data stores and the
// write half of atomic swaps — after the bytes have reached the backing
// store. nil uninstalls.
//
// This is the fetch-coherence notification the plain cache invalidations
// cannot provide: the I/D caches are timing directories over an
// always-consistent backing store, so fetched *data* is never stale and
// Swap's dcache-only invalidation is sufficient for them. Any state keyed
// by code *address* that caches decoded instructions — the cpu package's
// basic-block cache — is a different matter: a store into a decoded range
// silently desynchronises it unless it observes every store, which is what
// this hook delivers. The hook fires unconditionally (the receiver is
// expected to range-filter cheaply) and synchronously on the storing core's
// goroutine, so self-modifying code takes effect before the next
// instruction issues.
func (c *Controller) SetCodeWriteHook(fn func(addr, bytes uint32)) { c.codeWrite = fn }

// AddRange registers an address range. Ranges must not overlap.
func (c *Controller) AddRange(r Range) error {
	if r.Target == nil {
		return fmt.Errorf("mem: %s: range %s has nil target", c.name, r.Name)
	}
	end := uint64(r.Base) + uint64(r.Target.Size())
	for _, e := range c.ranges {
		eEnd := uint64(e.Base) + uint64(e.Target.Size())
		if uint64(r.Base) < eEnd && uint64(e.Base) < end {
			return fmt.Errorf("mem: %s: range %s overlaps %s", c.name, r.Name, e.Name)
		}
	}
	c.ranges = append(c.ranges, r)
	sort.Slice(c.ranges, func(i, j int) bool { return c.ranges[i].Base < c.ranges[j].Base })
	for i := range c.ranges {
		e := &c.ranges[i]
		e.end = uint64(e.Base) + uint64(e.Target.Size())
	}
	c.last = nil // the sort may have moved the memoised entry
	return nil
}

// Ranges returns the registered ranges in address order.
func (c *Controller) Ranges() []Range { return c.ranges }

func (c *Controller) rangeFor(addr uint32) *Range {
	if r := c.last; r != nil && addr >= r.Base && uint64(addr) < r.end {
		return r
	}
	// Binary search over sorted bases.
	lo, hi := 0, len(c.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ranges[mid].Base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	r := &c.ranges[lo-1]
	if uint64(addr) < r.end {
		c.last = r
		return r
	}
	return nil
}

// Resolve implements the cache Resolver over this controller's address map.
func (c *Controller) Resolve(addr uint32) (Target, uint32) {
	if r := c.rangeFor(addr); r != nil {
		return r.Target, addr - r.Base
	}
	return nil, 0
}

// FaultError describes an illegal memory reference.
type FaultError struct {
	Ctrl  string
	Addr  uint32
	Cause string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("mem: %s: fault at 0x%08x: %s", e.Ctrl, e.Addr, e.Cause)
}

func (c *Controller) fault(addr uint32, cause string) error {
	return &FaultError{Ctrl: c.name, Addr: addr, Cause: cause}
}

func (c *Controller) account(a Access) {
	c.stats.StallCycles += a.Stall
	switch {
	case a.Fetch:
		c.stats.Fetches++
	case a.Kind == KindPrivate && a.Write:
		c.stats.PrivateWrits++
	case a.Kind == KindPrivate:
		c.stats.PrivateReads++
	case a.Kind == KindShared && a.Write:
		c.stats.SharedWrits++
	case a.Kind == KindShared:
		c.stats.SharedReads++
	default:
		c.stats.DeviceOps++
	}
	if c.observer != nil {
		c.observer(a)
	}
}

// timedAccess charges one reference of the given size through the cache (if
// cacheable) or directly, and returns the stall cycles.
func (c *Controller) timedAccess(cache *Cache, now uint64, r *Range, addr uint32, bytes uint32, write bool) uint64 {
	local := addr - r.Base
	if r.Kind == KindDevice || !r.Cacheable || cache == nil || !cache.Enabled() {
		return r.Target.Latency(now, local, bytes, write)
	}
	hit, stall := cache.Access(addr, write)
	if write && cache.Config().WriteThrough {
		// Write-through: the store always reaches the next level; a store
		// miss does not allocate.
		through := r.Target.Latency(now, local, bytes, true)
		if hit {
			return stall + through
		}
		return through
	}
	if hit {
		return stall
	}
	return c.refillMiss(cache, now, r, addr, write)
}

// refillMiss charges a write-back/write-allocate miss: install the line,
// write back the dirty victim (if any) and stream the new line in.
func (c *Controller) refillMiss(cache *Cache, now uint64, r *Range, addr uint32, write bool) uint64 {
	line := cache.Config().LineBytes
	victimAddr, victimDirty := cache.Refill(addr, write)
	var extra uint64
	if victimDirty {
		if vt, vlocal := c.Resolve(victimAddr); vt != nil {
			extra += vt.Latency(now, vlocal, line, true)
		}
	}
	lineLocal := (addr - r.Base) &^ (line - 1)
	extra += r.Target.Latency(now+extra, lineLocal, line, false)
	return cache.Config().HitLatency + extra
}

// Fetch reads one instruction word through the instruction cache.
func (c *Controller) Fetch(now uint64, addr uint32) (uint32, uint64, error) {
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned instruction fetch")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "fetch from unmapped address")
	}
	stall := c.timedAccess(c.icache, now, r, addr, 4, false)
	v := r.Target.LoadWord(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Fetch: true, Stall: stall})
	return v, stall, nil
}

// ReadWord performs a 32-bit data load.
func (c *Controller) ReadWord(now uint64, addr uint32) (uint32, uint64, error) {
	// Hot path: an aligned load inside the memoised range hitting the
	// dcache's memoised line — the inner-loop shape of compute-bound code.
	// Every effect (cache stamp/LRU/stats, controller stats, functional
	// load, observer) is identical to the general path below, straight-lined.
	if r := c.last; r != nil && addr%4 == 0 &&
		addr >= r.Base && uint64(addr) < r.end && r.Cacheable && r.Kind != KindDevice {
		if d := c.dcache; d != nil && d.enable {
			line := addr >> d.lineShift
			mi := d.memoIdx
			if mi < 0 || line != d.memoLine {
				if m2 := d.memoIdx2; m2 >= 0 && line == d.memoLine2 {
					d.memoLine2, d.memoIdx2 = d.memoLine, d.memoIdx
					d.memoLine, d.memoIdx = line, m2
					mi = m2
				} else {
					mi = -1
				}
			}
			if mi >= 0 {
				d.stats.Reads++
				d.stats.Hits++
				d.stamp++
				d.lines[mi].lru = d.stamp
				stall := d.cfg.HitLatency
				v := r.Target.LoadWord(addr - r.Base)
				c.stats.StallCycles += stall
				if r.Kind == KindPrivate {
					c.stats.PrivateReads++
				} else {
					c.stats.SharedReads++
				}
				if c.observer != nil {
					c.observer(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Stall: stall})
				}
				return v, stall, nil
			}
		}
	}
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned word load")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "load from unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 4, false)
	v := r.Target.LoadWord(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Stall: stall})
	return v, stall, nil
}

// WriteWord performs a 32-bit data store.
func (c *Controller) WriteWord(now uint64, addr uint32, v uint32) (uint64, error) {
	// Hot path: the store twin of ReadWord's memo-hit path (write-back
	// caches only — write-through stores always reach the next level).
	if r := c.last; r != nil && addr%4 == 0 &&
		addr >= r.Base && uint64(addr) < r.end && r.Cacheable && r.Kind != KindDevice {
		if d := c.dcache; d != nil && d.enable && !d.cfg.WriteThrough {
			line := addr >> d.lineShift
			mi := d.memoIdx
			if mi < 0 || line != d.memoLine {
				if m2 := d.memoIdx2; m2 >= 0 && line == d.memoLine2 {
					d.memoLine2, d.memoIdx2 = d.memoLine, d.memoIdx
					d.memoLine, d.memoIdx = line, m2
					mi = m2
				} else {
					mi = -1
				}
			}
			if mi >= 0 {
				d.stats.Writes++
				d.stats.Hits++
				d.stamp++
				ln := &d.lines[mi]
				ln.lru = d.stamp
				ln.dirty = true
				stall := d.cfg.HitLatency
				r.Target.StoreWord(addr-r.Base, v)
				if c.codeWrite != nil {
					c.codeWrite(addr, 4)
				}
				c.stats.StallCycles += stall
				if r.Kind == KindPrivate {
					c.stats.PrivateWrits++
				} else {
					c.stats.SharedWrits++
				}
				if c.observer != nil {
					c.observer(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
				}
				return stall, nil
			}
		}
	}
	if addr%4 != 0 {
		return 0, c.fault(addr, "unaligned word store")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, c.fault(addr, "store to unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 4, true)
	r.Target.StoreWord(addr-r.Base, v)
	if c.codeWrite != nil {
		c.codeWrite(addr, 4)
	}
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return stall, nil
}

// ReadByte performs an 8-bit data load.
func (c *Controller) LoadByte(now uint64, addr uint32) (byte, uint64, error) {
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "load from unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 1, false)
	v := r.Target.LoadByte(addr - r.Base)
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Stall: stall})
	return v, stall, nil
}

// WriteByte performs an 8-bit data store.
func (c *Controller) StoreByte(now uint64, addr uint32, b byte) (uint64, error) {
	r := c.rangeFor(addr)
	if r == nil {
		return 0, c.fault(addr, "store to unmapped address")
	}
	stall := c.timedAccess(c.dcache, now, r, addr, 1, true)
	r.Target.StoreByte(addr-r.Base, b)
	if c.codeWrite != nil {
		c.codeWrite(addr, 1)
	}
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return stall, nil
}

// Swap performs an atomic 32-bit exchange, bypassing (and invalidating in)
// the data cache: the returned value is the previous memory word. Like all
// store paths it notifies the code-write hook — the data cache is the only
// *cache* that needs invalidating (the I-cache is a timing directory and
// never serves stale data), but decoded-state layers above fetch do.
func (c *Controller) Swap(now uint64, addr uint32, v uint32) (uint32, uint64, error) {
	if addr%4 != 0 {
		return 0, 0, c.fault(addr, "unaligned atomic swap")
	}
	r := c.rangeFor(addr)
	if r == nil {
		return 0, 0, c.fault(addr, "swap on unmapped address")
	}
	if c.dcache != nil {
		c.dcache.Invalidate(addr)
	}
	local := addr - r.Base
	// Read-modify-write held as a single bus transaction: charge one read
	// plus one extra cycle for the locked write phase.
	stall := r.Target.Latency(now, local, 4, true) + 1
	old := r.Target.LoadWord(local)
	r.Target.StoreWord(local, v)
	if c.codeWrite != nil {
		c.codeWrite(addr, 4)
	}
	c.account(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: r.Kind, Write: true, Stall: stall})
	return old, stall, nil
}

// FetchPath is a pre-resolved instruction-fetch channel over one address
// range backed directly by a plain Memory. It lets a block-dispatch kernel
// charge fetch timing and statistics without re-resolving the range or
// performing the functional word load on every instruction. Resolution is
// only valid while the controller's address map is stable; build the
// platform fully before resolving paths.
type FetchPath struct {
	ctrl *Controller
	r    *Range
	m    *Memory
	base uint32
	end  uint64 // exclusive global end of the range
	// cacheable folds the per-access range checks of timedAccess that are
	// fixed once the platform is built (kind and cacheability); only the
	// cache's runtime enable bit is left for fetch time.
	cacheable bool
}

// FetchPathFor resolves the fetch path covering addr, or nil when the
// address is unmapped or not backed by a plain Memory (interconnect-routed
// shared memory, gated parallel-kernel wrappers and devices are excluded on
// purpose: fetching through them has side effects a block kernel must not
// pre-execute or skip).
func (c *Controller) FetchPathFor(addr uint32) *FetchPath {
	r := c.rangeFor(addr)
	if r == nil {
		return nil
	}
	m, ok := r.Target.(*Memory)
	if !ok {
		return nil
	}
	return &FetchPath{ctrl: c, r: r, m: m, base: r.Base,
		end:       uint64(r.Base) + uint64(m.Size()),
		cacheable: r.Kind != KindDevice && r.Cacheable}
}

// Contains reports whether the global address lies inside the path's range.
func (fp *FetchPath) Contains(addr uint32) bool {
	return addr >= fp.base && uint64(addr) < fp.end
}

// PeekWord reads the aligned word at global address addr with no timing or
// statistics side effects (block-translation use). addr must be in range.
func (fp *FetchPath) PeekWord(addr uint32) uint32 {
	return fp.m.PeekWord(addr - fp.base)
}

// fetchSeg is one icache-line-aligned span of a translated block's fetch
// stream: instruction indices first..last (inclusive, zero-based from the
// block entry) all fetch from the line containing addr.
type fetchSeg struct {
	addr  uint32 // global address of the segment's first instruction
	first uint32 // index of the segment's first instruction in the block
	last  uint32 // index of the segment's last instruction in the block
}

// BatchPlan is the precomputed icache plan of one translated block: its
// line segmentation plus the resident-line indices of the last successful
// probe, tagged with the directory epoch they were validated at. While the
// epoch stands still (no refill/invalidate/flush/restore), re-entering the
// block costs one compare instead of a directory walk, and a whole run of
// hitting fetches settles in one batch with effects bit-identical to the
// per-instruction path.
type BatchPlan struct {
	segs  []fetchSeg
	lines []int32 // flat-array indices into the icache's line store
	epoch uint64
	ok    bool
}

// NewBatchPlan builds the fetch plan for a straight-line block of n
// instructions entered at the global address entry, or returns nil when the
// path cannot batch (uncacheable range or no icache).
func (fp *FetchPath) NewBatchPlan(entry uint32, n uint32) *BatchPlan {
	ic := fp.ctrl.icache
	if !fp.cacheable || ic == nil || n == 0 {
		return nil
	}
	lineBytes := uint32(1) << ic.lineShift
	p := &BatchPlan{epoch: ^uint64(0)}
	for i := uint32(0); i < n; {
		a := entry + 4*i
		last := i + ((a|(lineBytes-1))+1-a)/4 - 1
		if last > n-1 {
			last = n - 1
		}
		p.segs = append(p.segs, fetchSeg{addr: a, first: i, last: last})
		i = last + 1
	}
	p.lines = make([]int32, 0, len(p.segs))
	return p
}

// Ready reports whether every line of the plan is currently resident, so
// the block's fetch stream is guaranteed all hits, and returns the
// per-fetch hit latency. The probe mutates no cache state; when it fails
// the caller falls back to per-instruction Fetch, which performs the real
// directory update including the miss (and thereby moves the epoch, which
// re-arms the plan).
func (fp *FetchPath) Ready(p *BatchPlan) (hitLatency uint64, ok bool) {
	c := fp.ctrl
	ic := c.icache
	if ic == nil || !ic.enable || c.observer != nil {
		return 0, false
	}
	if p.epoch == ic.epoch {
		if p.ok {
			return ic.cfg.HitLatency, true
		}
		return 0, false
	}
	p.epoch = ic.epoch
	p.lines = p.lines[:0]
	for i := range p.segs {
		li := ic.resident(p.segs[i].addr)
		if li < 0 {
			p.ok = false
			return 0, false
		}
		p.lines = append(p.lines, li)
	}
	p.ok = true
	return ic.cfg.HitLatency, true
}

// Settle applies the exact directory and statistics effects of n fetches of
// a Ready block — up to a full pass per execution, across any number of
// back-to-back executions (n may exceed the block length): per-line LRU
// stamps, hit/read counters, controller fetch/stall accounting and the
// backing memory's functional read count all end up bit-identical to n
// individual Fetch calls. Nothing may touch the icache between Ready and
// Settle (data accesses go to the dcache; Swap invalidates only the dcache,
// and a pending batch is settled before any per-instruction fetch), so the
// plan's line indices still name the resident lines here.
func (fp *FetchPath) Settle(p *BatchPlan, n uint32) {
	c := fp.ctrl
	ic := c.icache
	base := ic.stamp
	ic.stamp += uint64(n)
	ic.stats.Reads += uint64(n)
	ic.stats.Hits += uint64(n)
	blockLen := p.segs[len(p.segs)-1].last + 1
	if n <= blockLen {
		// Single (possibly partial) pass: fetch j (0-based) takes stamp
		// base+j+1, so a line's final LRU is that of its last fetched slot.
		for i := range p.segs {
			s := &p.segs[i]
			if s.first >= n {
				break
			}
			end := s.last
			if end > n-1 {
				end = n - 1
			}
			ln := &ic.lines[p.lines[i]]
			ln.lru = base + uint64(end) + 1
			ic.memoLine, ic.memoIdx = s.addr>>ic.lineShift, p.lines[i]
		}
	} else {
		// k full passes then a final pass of rem fetches (1 <= rem <=
		// blockLen): a seg reached by the final pass was last fetched there,
		// any other seg in the last full pass. The memo ends on the line of
		// the very last fetch, exactly as repeated Access calls leave it.
		k := uint64(n / blockLen)
		rem := n % blockLen
		if rem == 0 {
			k--
			rem = blockLen
		}
		full := k * uint64(blockLen)
		for i := range p.segs {
			s := &p.segs[i]
			var lastIdx uint64
			if s.first < rem {
				e := s.last
				if e > rem-1 {
					e = rem - 1
				}
				lastIdx = full + uint64(e)
			} else {
				lastIdx = full - uint64(blockLen) + uint64(s.last)
			}
			ln := &ic.lines[p.lines[i]]
			ln.lru = base + lastIdx + 1
			if s.first <= rem-1 && rem-1 <= s.last {
				ic.memoLine, ic.memoIdx = s.addr>>ic.lineShift, p.lines[i]
			}
		}
	}
	c.stats.Fetches += uint64(n)
	c.stats.StallCycles += uint64(n) * ic.cfg.HitLatency
	fp.m.stats.Reads += uint64(n)
}

// Fetch charges one instruction fetch at the aligned, in-range global
// address addr — identical cache-directory update, stall computation,
// functional read accounting and observer delivery to Controller.Fetch —
// without the functional word load. Callers execute from pre-decoded state
// whose coherence with memory is maintained by the code-write hook; the
// backing memory's read counter is still bumped so functional traffic
// statistics match the loading fetch exactly.
func (fp *FetchPath) Fetch(now uint64, addr uint32) uint64 {
	c := fp.ctrl
	// Inlined timedAccess, specialised to a read on a pre-resolved range:
	// the icache hit is the overwhelmingly common case on this path, so it
	// pays only the directory probe, not the generic routing checks.
	var stall uint64
	if ic := c.icache; fp.cacheable && ic != nil && ic.enable {
		if hit, s := ic.Access(addr, false); hit {
			stall = s
		} else {
			stall = c.refillMiss(ic, now, fp.r, addr, false)
		}
	} else {
		stall = fp.r.Target.Latency(now, addr-fp.base, 4, false)
	}
	fp.m.stats.Reads++
	// Inlined account for the fetch kind; the Access record is only
	// materialised when a sniffer observer is actually attached.
	c.stats.StallCycles += stall
	c.stats.Fetches++
	if c.observer != nil {
		c.observer(Access{Cycle: now, Core: c.coreID, Addr: addr, Kind: fp.r.Kind, Fetch: true, Stall: stall})
	}
	return stall
}
