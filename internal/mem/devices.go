package mem

// This file provides the memory-mapped devices of the emulated platform:
// a generic register device (used for the sniffer control registers, which
// the paper maps into the processors' address range so SW can de/activate
// sniffers at run time) and a hardware barrier used by the parallel
// workloads for phase synchronisation.

// RegDevice is a small bank of 32-bit registers whose semantics are
// supplied by load/store callbacks. Accesses take a fixed latency.
type RegDevice struct {
	name    string
	words   uint32
	latency uint64
	onLoad  func(reg uint32) uint32
	onStore func(reg uint32, v uint32)
}

// NewRegDevice creates a device of `words` 32-bit registers. onLoad and
// onStore receive the register index (addr/4); either may be nil.
func NewRegDevice(name string, words uint32, latency uint64,
	onLoad func(uint32) uint32, onStore func(uint32, uint32)) *RegDevice {
	return &RegDevice{name: name, words: words, latency: latency, onLoad: onLoad, onStore: onStore}
}

// Name returns the device instance name.
func (d *RegDevice) Name() string { return d.name }

// Size implements Target.
func (d *RegDevice) Size() uint32 { return d.words * 4 }

// Latency implements Target.
func (d *RegDevice) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	return d.latency
}

// LoadWord implements Target.
func (d *RegDevice) LoadWord(addr uint32) uint32 {
	if d.onLoad != nil {
		return d.onLoad(addr / 4)
	}
	return 0
}

// StoreWord implements Target.
func (d *RegDevice) StoreWord(addr uint32, v uint32) {
	if d.onStore != nil {
		d.onStore(addr/4, v)
	}
}

// LoadByte implements Target (reads the addressed byte of the register).
func (d *RegDevice) LoadByte(addr uint32) byte {
	return byte(d.LoadWord(addr&^3) >> (8 * (addr % 4)))
}

// StoreByte implements Target. Byte stores are widened to word stores with
// the byte placed in its lane and other lanes zero; register devices on the
// platform are word-accessed, so this is only a convenience.
func (d *RegDevice) StoreByte(addr uint32, b byte) {
	d.StoreWord(addr&^3, uint32(b)<<(8*(addr%4)))
}

// Barrier is a hardware barrier for n participants, exposed as a one-word
// device. Protocol (per core):
//
//	g  = LoadWord(0)      // current generation
//	StoreWord(0, any)     // arrive
//	for LoadWord(0) == g  // spin until generation advances
//
// Every participant must arrive exactly once per phase.
type Barrier struct {
	name     string
	n        int
	latency  uint64
	arrivals int
	gen      uint32
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(name string, n int, latency uint64) *Barrier {
	return &Barrier{name: name, n: n, latency: latency}
}

// Name returns the barrier instance name.
func (b *Barrier) Name() string { return b.name }

// Generation returns the number of completed barrier phases.
func (b *Barrier) Generation() uint32 { return b.gen }

// Arrivals returns the number of participants that have arrived in the
// current (incomplete) phase.
func (b *Barrier) Arrivals() int { return b.arrivals }

// Size implements Target.
func (b *Barrier) Size() uint32 { return 4 }

// Latency implements Target.
func (b *Barrier) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	return b.latency
}

// LoadWord implements Target: returns the current generation.
func (b *Barrier) LoadWord(addr uint32) uint32 { return b.gen }

// StoreWord implements Target: registers an arrival.
func (b *Barrier) StoreWord(addr uint32, v uint32) {
	b.arrivals++
	if b.arrivals >= b.n {
		b.arrivals = 0
		b.gen++
	}
}

// LoadByte implements Target.
func (b *Barrier) LoadByte(addr uint32) byte { return byte(b.gen >> (8 * (addr % 4))) }

// StoreByte implements Target.
func (b *Barrier) StoreByte(addr uint32, _ byte) { b.StoreWord(0, 0) }
