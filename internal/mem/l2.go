package mem

// CachedTarget interposes a timing-directory cache in front of any Target.
// This is how the framework adds "additional cache levels ... to each
// processing element, or by processor groups" (Section 3.2): chain a
// CachedTarget in front of the memory (or the interconnect path to it) and
// the extra level is part of the hierarchy — data stays in the always-
// consistent backing store, the cache only filters timing and produces
// hit/miss statistics.
type CachedTarget struct {
	cache *Cache
	under Target
}

// NewCachedTarget wraps under with the given cache level.
func NewCachedTarget(cache *Cache, under Target) *CachedTarget {
	return &CachedTarget{cache: cache, under: under}
}

// Cache exposes the interposed cache (for statistics).
func (t *CachedTarget) Cache() *Cache { return t.cache }

// Latency implements Target: each cache line the access touches is looked
// up; hits cost the cache's hit latency, misses add the victim write-back
// and the line refill from the underlying target.
func (t *CachedTarget) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	if !t.cache.Enabled() {
		return t.under.Latency(now, addr, bytes, write)
	}
	line := t.cache.Config().LineBytes
	first := addr &^ (line - 1)
	last := (addr + bytes - 1) &^ (line - 1)
	var total uint64
	for la := first; ; la += line {
		hit, stall := t.cache.Access(la, write)
		if hit {
			total += stall
		} else {
			victimAddr, victimDirty := t.cache.Refill(la, write)
			if victimDirty {
				total += t.under.Latency(now+total, victimAddr, line, true)
			}
			total += t.cache.Config().HitLatency + t.under.Latency(now+total, la, line, false)
		}
		if la == last {
			break
		}
	}
	return total
}

// LoadWord implements Target.
func (t *CachedTarget) LoadWord(addr uint32) uint32 { return t.under.LoadWord(addr) }

// StoreWord implements Target.
func (t *CachedTarget) StoreWord(addr uint32, v uint32) { t.under.StoreWord(addr, v) }

// LoadByte implements Target.
func (t *CachedTarget) LoadByte(addr uint32) byte { return t.under.LoadByte(addr) }

// StoreByte implements Target.
func (t *CachedTarget) StoreByte(addr uint32, b byte) { t.under.StoreByte(addr, b) }

// Size implements Target.
func (t *CachedTarget) Size() uint32 { return t.under.Size() }

// Scratchpad is a small, fast, software-managed local memory (the paper
// lists scratchpads alongside caches as L1 alternatives the framework can
// explore). It is simply a Memory preset with single-cycle access.
func Scratchpad(name string, size uint32) *Memory {
	return NewMemory(name, size, 0)
}
