package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory("ram", 64*1024, 3)
	m.StoreWord(0, 0xDEADBEEF)
	if got := m.LoadWord(0); got != 0xDEADBEEF {
		t.Errorf("LoadWord(0) = %#x", got)
	}
	// Little-endian byte layout.
	if got := m.LoadByte(0); got != 0xEF {
		t.Errorf("LoadByte(0) = %#x, want 0xEF (little endian)", got)
	}
	if got := m.LoadByte(3); got != 0xDE {
		t.Errorf("LoadByte(3) = %#x, want 0xDE", got)
	}
	m.StoreByte(1, 0x00)
	if got := m.LoadWord(0); got != 0xDEAD00EF {
		t.Errorf("after byte store: %#x", got)
	}
	// Cross-page word access.
	m.StoreWord(pageSize-2, 0x11223344)
	if got := m.LoadWord(pageSize - 2); got != 0x11223344 {
		t.Errorf("cross-page word = %#x", got)
	}
	// Untouched memory reads as zero.
	if got := m.LoadWord(40000); got != 0 {
		t.Errorf("fresh memory = %#x, want 0", got)
	}
}

func TestMemoryLatencyBurst(t *testing.T) {
	m := NewMemory("ram", 4096, 10)
	if got := m.Latency(0, 0, 4, false); got != 10 {
		t.Errorf("single word latency = %d, want 10", got)
	}
	// 8-word burst streams after the first access: 10 + 7.
	if got := m.Latency(0, 0, 32, false); got != 17 {
		t.Errorf("burst latency = %d, want 17", got)
	}
}

type sinkRec struct {
	total uint64
	calls int
}

func (s *sinkRec) AddSuppression(source string, cycles uint64) {
	s.total += cycles
	s.calls++
}

func TestMemoryPhysicalLatencySuppression(t *testing.T) {
	m := NewMemory("ddr", 4096, 10)
	var sink sinkRec
	m.SetPhysicalLatency(25, &sink)
	m.Latency(0, 0, 4, false)
	if sink.total != 15 || sink.calls != 1 {
		t.Errorf("suppression = %d cycles in %d calls, want 15 in 1", sink.total, sink.calls)
	}
	// Physical device faster than model: no suppression.
	m2 := NewMemory("bram", 4096, 10)
	var sink2 sinkRec
	m2.SetPhysicalLatency(1, &sink2)
	m2.Latency(0, 0, 4, false)
	if sink2.calls != 0 {
		t.Errorf("unexpected suppression for fast device")
	}
}

func TestMemoryWriteReadBytes(t *testing.T) {
	m := NewMemory("ram", 4096, 1)
	data := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(100, data)
	got := m.ReadBytes(100, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("ReadBytes = %v", got)
		}
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	m := NewMemory("ram", 16, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.LoadWord(1 << 20)
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "d", SizeBytes: 8192, LineBytes: 32, Assoc: 2, HitLatency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "z", SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{Name: "l", SizeBytes: 8192, LineBytes: 24, Assoc: 1},
		{Name: "l2", SizeBytes: 8192, LineBytes: 2, Assoc: 1},
		{Name: "a", SizeBytes: 8192, LineBytes: 32, Assoc: 0},
		{Name: "s", SizeBytes: 8192 + 32, LineBytes: 32, Assoc: 1},
		{Name: "p", SizeBytes: 96, LineBytes: 16, Assoc: 2}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", c)
		}
	}
}

func TestCacheDirectMappedConflicts(t *testing.T) {
	// 4 lines of 16B, direct-mapped: addresses 0 and 64 conflict.
	c := NewCache(CacheConfig{Name: "dm", SizeBytes: 64, LineBytes: 16, Assoc: 1, HitLatency: 1})
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("cold access hit")
	}
	c.Refill(0, false)
	if hit, _ := c.Access(4, false); !hit {
		t.Fatal("same line should hit")
	}
	if hit, _ := c.Access(64, false); hit {
		t.Fatal("conflicting line hit")
	}
	c.Refill(64, false)
	if hit, _ := c.Access(0, false); hit {
		t.Fatal("evicted line still hits")
	}
	s := c.Stats()
	// Accesses: miss(0), hit(4), miss(64), miss(0 after eviction).
	if s.Misses != 3 || s.Hits != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheSetAssociativeLRU(t *testing.T) {
	// 2-way, 2 sets, 16B lines: set 0 holds lines 0, 32, 64, ...
	c := NewCache(CacheConfig{Name: "sa", SizeBytes: 64, LineBytes: 16, Assoc: 2, HitLatency: 1})
	c.Access(0, false)
	c.Refill(0, false)
	c.Access(32, false)
	c.Refill(32, false)
	// Touch 0 so 32 becomes LRU.
	c.Access(0, false)
	c.Access(64, false)
	c.Refill(64, false) // must evict 32
	if !c.Contains(0) {
		t.Error("MRU line 0 was evicted")
	}
	if c.Contains(32) {
		t.Error("LRU line 32 survived")
	}
	if !c.Contains(64) {
		t.Error("new line 64 not resident")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{Name: "wb", SizeBytes: 32, LineBytes: 16, Assoc: 1, HitLatency: 1})
	c.Access(0, true) // miss
	c.Refill(0, true) // dirty install
	c.Access(64, false)
	va, vd := c.Refill(64, false)
	if !vd || va != 0 {
		t.Errorf("victim = (%#x, %v), want dirty line 0", va, vd)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Clean eviction: no writeback.
	c.Access(128, false)
	_, vd = c.Refill(128, false)
	if vd {
		t.Error("clean victim reported dirty")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "inv", SizeBytes: 64, LineBytes: 16, Assoc: 2, HitLatency: 1})
	c.Access(0, true)
	c.Refill(0, true)
	c.Invalidate(4) // same line
	if c.Contains(0) {
		t.Error("line still resident after invalidate")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "fl", SizeBytes: 64, LineBytes: 16, Assoc: 1, HitLatency: 1})
	ram := NewMemory("ram", 4096, 5)
	c.Access(0, true)
	c.Refill(0, true)
	c.Access(16, false)
	c.Refill(16, false)
	cycles := c.Flush(0, func(addr uint32) (Target, uint32) { return ram, addr })
	if cycles == 0 {
		t.Error("flush of dirty line took no cycles")
	}
	if c.Contains(0) || c.Contains(16) {
		t.Error("lines resident after flush")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

// TestCacheHitRateProperty: for any access sequence, hits+misses == accesses
// and re-accessing the same address immediately always hits.
func TestCacheHitRateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCache(CacheConfig{Name: "q", SizeBytes: 256, LineBytes: 16, Assoc: 2, HitLatency: 1})
		for i := 0; i < 500; i++ {
			addr := uint32(r.Intn(4096)) &^ 3
			write := r.Intn(2) == 0
			hit, _ := c.Access(addr, write)
			if !hit {
				c.Refill(addr, write)
			}
			if hit2, _ := c.Access(addr, false); !hit2 {
				t.Logf("immediate re-access of %#x missed", addr)
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func buildController(t *testing.T, cacheable bool) (*Controller, *Memory, *Memory) {
	t.Helper()
	ctl := NewController("ctl0", 0)
	priv := NewMemory("priv", 64*1024, 2)
	shared := NewMemory("shared", 64*1024, 10)
	if err := ctl.AddRange(Range{Name: "priv", Base: 0, Target: priv, Cacheable: cacheable, Kind: KindPrivate}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AddRange(Range{Name: "shared", Base: 0x1000_0000, Target: shared, Kind: KindShared}); err != nil {
		t.Fatal(err)
	}
	return ctl, priv, shared
}

func TestControllerRouting(t *testing.T) {
	ctl, priv, shared := buildController(t, false)
	if _, err := ctl.WriteWord(0, 0x100, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.WriteWord(0, 0x1000_0000, 77); err != nil {
		t.Fatal(err)
	}
	if got := priv.LoadWord(0x100); got != 42 {
		t.Errorf("private mem = %d", got)
	}
	if got := shared.LoadWord(0); got != 77 {
		t.Errorf("shared mem = %d", got)
	}
	v, _, err := ctl.ReadWord(0, 0x1000_0000)
	if err != nil || v != 77 {
		t.Errorf("ReadWord shared = %d, %v", v, err)
	}
	st := ctl.Stats()
	if st.PrivateWrits != 1 || st.SharedWrits != 1 || st.SharedReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestControllerFaults(t *testing.T) {
	ctl, _, _ := buildController(t, false)
	if _, _, err := ctl.ReadWord(0, 0x5000_0000); err == nil {
		t.Error("unmapped load did not fault")
	}
	if _, _, err := ctl.ReadWord(0, 2); err == nil {
		t.Error("unaligned load did not fault")
	}
	if _, err := ctl.WriteWord(0, 0x5000_0000, 1); err == nil {
		t.Error("unmapped store did not fault")
	}
	if _, _, err := ctl.Fetch(0, 0x5000_0000); err == nil {
		t.Error("unmapped fetch did not fault")
	}
	if _, _, err := ctl.Swap(0, 3, 1); err == nil {
		t.Error("unaligned swap did not fault")
	}
	// Fault errors carry context.
	_, _, err := ctl.ReadWord(0, 0x5000_0000)
	if fe, ok := err.(*FaultError); !ok || fe.Addr != 0x5000_0000 {
		t.Errorf("fault error = %#v", err)
	}
}

func TestControllerOverlapRejected(t *testing.T) {
	ctl := NewController("c", 0)
	m := NewMemory("a", 4096, 1)
	if err := ctl.AddRange(Range{Name: "a", Base: 0, Target: m, Kind: KindPrivate}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AddRange(Range{Name: "b", Base: 2048, Target: NewMemory("b", 4096, 1), Kind: KindPrivate}); err == nil {
		t.Error("overlapping range accepted")
	}
}

func TestControllerCachedTiming(t *testing.T) {
	ctl, _, _ := buildController(t, true)
	dc := NewCache(CacheConfig{Name: "d", SizeBytes: 1024, LineBytes: 16, Assoc: 1, HitLatency: 1})
	ctl.AttachCaches(nil, dc)
	// Cold miss: hit latency + refill burst (mem latency 2 + 3 extra words).
	_, stall1, err := ctl.ReadWord(0, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if stall1 != 1+2+3 {
		t.Errorf("miss stall = %d, want 6", stall1)
	}
	// Hit: hit latency only.
	_, stall2, _ := ctl.ReadWord(1, 0x104)
	if stall2 != 1 {
		t.Errorf("hit stall = %d, want 1", stall2)
	}
	if dc.Stats().Misses != 1 || dc.Stats().Hits != 1 {
		t.Errorf("cache stats = %+v", dc.Stats())
	}
	// Uncacheable shared access bypasses cache.
	_, stall3, _ := ctl.ReadWord(2, 0x1000_0000)
	if stall3 != 10 {
		t.Errorf("uncached shared stall = %d, want 10", stall3)
	}
	if dc.Stats().Accesses() != 2 {
		t.Errorf("cache saw uncacheable access")
	}
}

func TestControllerDirtyEvictionTiming(t *testing.T) {
	ctl, priv, _ := buildController(t, true)
	dc := NewCache(CacheConfig{Name: "d", SizeBytes: 32, LineBytes: 16, Assoc: 1, HitLatency: 1})
	ctl.AttachCaches(nil, dc)
	if _, err := ctl.WriteWord(0, 0, 5); err != nil { // miss, dirty
		t.Fatal(err)
	}
	// Conflicting address 64 evicts dirty line 0: stall must include both
	// the write-back burst and the refill burst.
	_, stall, err := ctl.ReadWord(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	wantWB := priv.Latency(0, 0, 16, true)
	wantRF := priv.Latency(0, 64, 16, false)
	if stall != 1+wantWB+wantRF {
		t.Errorf("dirty eviction stall = %d, want %d", stall, 1+wantWB+wantRF)
	}
	// Functional data survives through it all.
	v, _, _ := ctl.ReadWord(2, 0)
	if v != 5 {
		t.Errorf("data lost across eviction: %d", v)
	}
}

func TestControllerSwapAtomicsAndInvalidation(t *testing.T) {
	ctl, _, _ := buildController(t, true)
	dc := NewCache(CacheConfig{Name: "d", SizeBytes: 1024, LineBytes: 16, Assoc: 1, HitLatency: 1})
	ctl.AttachCaches(nil, dc)
	if _, err := ctl.WriteWord(0, 0x200, 1); err != nil {
		t.Fatal(err)
	}
	old, _, err := ctl.Swap(1, 0x200, 9)
	if err != nil || old != 1 {
		t.Fatalf("swap = %d, %v", old, err)
	}
	if dc.Contains(0x200) {
		t.Error("swap left line cached")
	}
	v, _, _ := ctl.ReadWord(2, 0x200)
	if v != 9 {
		t.Errorf("after swap = %d", v)
	}
}

// Property: the cached hierarchy is functionally identical to a flat memory
// under random word traffic.
func TestControllerFunctionalEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ctl, _, _ := buildController(t, true)
		ctl.AttachCaches(nil, NewCache(CacheConfig{Name: "d", SizeBytes: 128, LineBytes: 16, Assoc: 2, HitLatency: 1}))
		ref := make(map[uint32]uint32)
		now := uint64(0)
		for i := 0; i < 400; i++ {
			region := uint32(0)
			if r.Intn(2) == 1 {
				region = 0x1000_0000
			}
			addr := region + uint32(r.Intn(1024))&^3
			if r.Intn(2) == 0 {
				v := r.Uint32()
				stall, err := ctl.WriteWord(now, addr, v)
				if err != nil {
					return false
				}
				ref[addr] = v
				now += stall + 1
			} else {
				v, stall, err := ctl.ReadWord(now, addr)
				if err != nil || v != ref[addr] {
					t.Logf("read %#x = %d, want %d", addr, v, ref[addr])
					return false
				}
				now += stall + 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerObserver(t *testing.T) {
	ctl, _, _ := buildController(t, false)
	var seen []Access
	ctl.SetObserver(func(a Access) { seen = append(seen, a) })
	ctl.WriteWord(5, 0x10, 1)
	ctl.ReadWord(6, 0x1000_0004)
	if len(seen) != 2 {
		t.Fatalf("observer saw %d accesses", len(seen))
	}
	if !seen[0].Write || seen[0].Kind != KindPrivate || seen[0].Cycle != 5 {
		t.Errorf("first access = %+v", seen[0])
	}
	if seen[1].Write || seen[1].Kind != KindShared {
		t.Errorf("second access = %+v", seen[1])
	}
}

func TestBarrierProtocol(t *testing.T) {
	b := NewBarrier("bar", 3, 1)
	g := b.LoadWord(0)
	b.StoreWord(0, 0) // core 0 arrives
	b.StoreWord(0, 0) // core 1 arrives
	if b.LoadWord(0) != g {
		t.Fatal("barrier released early")
	}
	b.StoreWord(0, 0) // core 2 arrives
	if b.LoadWord(0) != g+1 {
		t.Fatal("barrier did not release")
	}
	// Reusable across phases.
	for phase := 0; phase < 5; phase++ {
		g := b.LoadWord(0)
		for i := 0; i < 3; i++ {
			b.StoreWord(0, 0)
		}
		if b.LoadWord(0) != g+1 {
			t.Fatalf("phase %d did not complete", phase)
		}
	}
}

func TestRegDevice(t *testing.T) {
	stored := map[uint32]uint32{}
	d := NewRegDevice("regs", 8, 2,
		func(reg uint32) uint32 { return stored[reg] },
		func(reg uint32, v uint32) { stored[reg] = v })
	d.StoreWord(8, 0xAABBCCDD) // register 2
	if got := d.LoadWord(8); got != 0xAABBCCDD {
		t.Errorf("reg load = %#x", got)
	}
	if got := d.LoadByte(9); got != 0xCC {
		t.Errorf("reg byte load = %#x", got)
	}
	if d.Size() != 32 {
		t.Errorf("size = %d", d.Size())
	}
	if d.Latency(0, 0, 4, false) != 2 {
		t.Error("latency")
	}
}

func TestRoutedTargetTiming(t *testing.T) {
	under := NewMemory("shared", 4096, 10)
	ic := fakeIC{per: 7}
	r := &Routed{Under: under, IC: ic, Initiator: 3}
	if got := r.Latency(0, 0, 4, false); got != 17 {
		t.Errorf("routed latency = %d, want 17", got)
	}
	r.StoreWord(8, 123)
	if got := r.LoadWord(8); got != 123 {
		t.Errorf("routed data plane = %d", got)
	}
	if r.Size() != 4096 {
		t.Error("size passthrough")
	}
}

type fakeIC struct{ per uint64 }

func (f fakeIC) Transaction(initiator int, now uint64, bytes uint32, write bool, targetLatency uint64) uint64 {
	return f.per + targetLatency
}
func (f fakeIC) Name() string { return "fake" }

func TestCachedTargetTiming(t *testing.T) {
	under := NewMemory("l3", 64*1024, 10)
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 2})
	ct := NewCachedTarget(l2, under)
	// Cold miss: hit latency + 8-word refill burst (10 + 7).
	if got := ct.Latency(0, 0, 4, false); got != 2+17 {
		t.Errorf("cold miss latency = %d, want 19", got)
	}
	// Hit in the same line.
	if got := ct.Latency(1, 16, 4, false); got != 2 {
		t.Errorf("hit latency = %d, want 2", got)
	}
	// A burst spanning two lines: one hit + one miss.
	if got := ct.Latency(2, 28, 8, false); got != 2+2+17 {
		t.Errorf("spanning burst latency = %d, want 21", got)
	}
	if l2.Stats().Misses != 2 || l2.Stats().Hits != 2 {
		t.Errorf("l2 stats = %+v", l2.Stats())
	}
	// Functional passthrough.
	ct.StoreWord(0x40, 77)
	if under.LoadWord(0x40) != 77 || ct.LoadWord(0x40) != 77 {
		t.Error("data plane broken")
	}
	if ct.Size() != under.Size() {
		t.Error("size passthrough")
	}
	if ct.Cache() != l2 {
		t.Error("cache accessor")
	}
}

func TestCachedTargetDirtyWriteback(t *testing.T) {
	under := NewMemory("l3", 64*1024, 10)
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLatency: 0})
	ct := NewCachedTarget(l2, under)
	ct.Latency(0, 0, 4, true)          // dirty line 0
	got := ct.Latency(1, 64, 4, false) // conflict: write back + refill
	wb := under.Latency(0, 0, 32, true)
	rf := under.Latency(0, 64, 32, false)
	if got != wb+rf {
		t.Errorf("dirty eviction latency = %d, want %d", got, wb+rf)
	}
	if l2.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", l2.Stats().Writebacks)
	}
}

func TestCachedTargetDisabledBypasses(t *testing.T) {
	under := NewMemory("l3", 4096, 10)
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 64, LineBytes: 32, Assoc: 1, HitLatency: 0})
	ct := NewCachedTarget(l2, under)
	l2.SetEnabled(false)
	if got := ct.Latency(0, 0, 4, false); got != 10 {
		t.Errorf("bypass latency = %d, want raw 10", got)
	}
	if l2.Stats().Accesses() != 0 {
		t.Error("disabled cache saw traffic")
	}
}

func TestScratchpad(t *testing.T) {
	spm := Scratchpad("spm0", 4096)
	if spm.Latency(0, 0, 4, false) != 0 {
		t.Error("scratchpad should be single-cycle (zero extra stall)")
	}
	spm.StoreWord(0, 42)
	if spm.LoadWord(0) != 42 {
		t.Error("scratchpad data")
	}
}

func TestWriteThroughCache(t *testing.T) {
	ctl, priv, _ := buildController(t, true)
	wt := NewCache(CacheConfig{Name: "wt", SizeBytes: 64, LineBytes: 16, Assoc: 1,
		HitLatency: 1, WriteThrough: true})
	ctl.AttachCaches(nil, wt)
	// Store miss: pays the through-write only, does not allocate.
	stall, err := ctl.WriteWord(0, 0x40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := priv.Latency(0, 0x40, 4, true); stall != want {
		t.Errorf("WT store-miss stall = %d, want %d", stall, want)
	}
	if wt.Contains(0x40) {
		t.Error("write-through cache allocated on a store miss")
	}
	// Data is immediately in the backing store.
	if priv.LoadWord(0x40) != 5 {
		t.Error("store did not reach memory")
	}
	// Load miss installs the line; a store hit then pays hit + through and
	// leaves the line clean.
	if _, _, err := ctl.ReadWord(1, 0x40); err != nil {
		t.Fatal(err)
	}
	if !wt.Contains(0x40) {
		t.Fatal("load miss did not allocate")
	}
	stall, _ = ctl.WriteWord(2, 0x40, 9)
	if want := 1 + priv.Latency(0, 0x40, 4, true); stall != want {
		t.Errorf("WT store-hit stall = %d, want %d", stall, want)
	}
	// Eviction never writes back.
	ctl.ReadWord(3, 0x40+64) // conflicting line
	if wt.Stats().Writebacks != 0 {
		t.Errorf("write-through cache wrote back %d lines", wt.Stats().Writebacks)
	}
	if priv.LoadWord(0x40) != 9 {
		t.Error("store-hit data lost")
	}
}
