// Package mem models the configurable memory hierarchy of the emulated
// MPSoC: private and shared main memories with user-defined latencies,
// private HW-controlled instruction/data caches (direct-mapped and
// set-associative), and the per-core memory controller that captures every
// memory request of its processor and forwards it to the right device
// (Section 3.2 of the DAC'06 paper).
//
// The data plane and the timing plane are deliberately separated: a Target
// provides functional Load/Store access plus a Latency method that models
// the cycles a timed access takes. Caches are timing directories (tags, LRU
// and dirty state) over an always-consistent backing store, which keeps the
// emulated platform functionally exact while still producing exact hit,
// miss, eviction and write-back statistics for the sniffers.
package mem

import (
	"fmt"
	"sort"
)

// Target is a memory-mapped component: the functional data plane plus the
// access-timing model. Addresses passed to a Target are local (offset 0 is
// the first byte of the device); the Controller translates global addresses.
type Target interface {
	// Latency returns the number of cycles an access of the given size
	// starting at cycle now takes to complete. Implementations may keep
	// internal busy state (e.g. an interconnect path).
	Latency(now uint64, addr uint32, bytes uint32, write bool) uint64
	// LoadWord / StoreWord access a naturally aligned 32-bit word.
	LoadWord(addr uint32) uint32
	StoreWord(addr uint32, v uint32)
	// LoadByte / StoreByte access a single byte.
	LoadByte(addr uint32) byte
	StoreByte(addr uint32, b byte)
	// Size returns the addressable size of the component in bytes.
	Size() uint32
}

// SuppressionSink receives virtual-clock-inhibition requests. In the paper
// this is the VIRTUAL_CLK_SUPPRESSION signal into the VPCM: when the
// physical device backing an emulated memory (e.g. board DDR) is slower than
// the user-defined latency, the virtual clock is frozen for the difference
// so the emulated timing is preserved.
type SuppressionSink interface {
	AddSuppression(source string, cycles uint64)
}

// MemStats counts functional traffic into a memory device.
type MemStats struct {
	Reads  uint64
	Writes uint64
}

const pageSize = 1 << 12

// Memory is a RAM model with configurable size and user-defined latency.
// Storage is sparse (page-granular), so large address spaces cost nothing
// until touched.
type Memory struct {
	name    string
	size    uint32
	latency uint64
	// physLatency models the latency of the physical FPGA-board device
	// (BRAM vs DDR) that would implement this memory. When it exceeds the
	// user-defined latency the difference is reported to the suppression
	// sink, emulating the VPCM clock-freeze mechanism.
	physLatency uint64
	sink        SuppressionSink
	pages       map[uint32]*[pageSize]byte
	// lastIdx/lastPage memoise the page of the previous access: emulated
	// reference streams are page-local, so the memo replaces the map lookup
	// on the hot path. Pages are never freed or replaced once allocated, so
	// the pointer stays valid until RestoreState swaps the whole map (which
	// clears the memo).
	lastIdx  uint32
	lastPage *[pageSize]byte
	stats    MemStats
	// vers holds per-page version stamps, bumped on every store once
	// EnableVersions is called. The speculative kernel snapshots a page's
	// version with each optimistic load: an unchanged version at validation
	// time proves the loaded value is still current without comparing data.
	vers map[uint32]uint32
	// undoOn/undo journal old values of stores between BeginUndo and
	// DropUndo/RollbackUndo so a speculative chunk (or a partially applied
	// commit walk) can be rewound exactly.
	undoOn bool
	undo   []undoRec
}

type undoRec struct {
	addr   uint32
	old    uint32
	isByte bool
}

// NewMemory creates a memory of the given size (bytes) and user-defined
// access latency in cycles.
func NewMemory(name string, size uint32, latency uint64) *Memory {
	return &Memory{name: name, size: size, latency: latency, physLatency: latency,
		pages: make(map[uint32]*[pageSize]byte)}
}

// SetPhysicalLatency declares the latency of the physical device that backs
// this memory on the emulation board and the sink notified when it exceeds
// the modelled latency.
func (m *Memory) SetPhysicalLatency(cycles uint64, sink SuppressionSink) {
	m.physLatency = cycles
	m.sink = sink
}

// Name returns the memory's instance name.
func (m *Memory) Name() string { return m.name }

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// Stats returns the functional access counts.
func (m *Memory) Stats() MemStats { return m.stats }

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() { m.stats = MemStats{} }

func (m *Memory) page(addr uint32) *[pageSize]byte {
	if addr >= m.size {
		panic(fmt.Sprintf("mem: %s: address 0x%x beyond size 0x%x", m.name, addr, m.size))
	}
	idx := addr / pageSize
	if p := m.lastPage; p != nil && idx == m.lastIdx {
		return p
	}
	p := m.pages[idx]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// Latency implements Target. It also forwards physical-device slack to the
// suppression sink.
func (m *Memory) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	// A burst of n words is pipelined: first access pays the full latency,
	// subsequent words stream one per cycle.
	words := uint64((bytes + 3) / 4)
	if words == 0 {
		words = 1
	}
	lat := m.latency + (words - 1)
	if m.physLatency > m.latency && m.sink != nil {
		m.sink.AddSuppression(m.name, m.physLatency-m.latency)
	}
	return lat
}

// LoadWord implements Target.
func (m *Memory) LoadWord(addr uint32) uint32 {
	m.stats.Reads++
	p := m.page(addr)
	o := addr % pageSize
	if o+4 <= pageSize {
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	// Word straddles a page boundary (cannot happen for aligned accesses).
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.loadByteRaw(addr+i)) << (8 * i)
	}
	return v
}

// StoreWord implements Target.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	m.stats.Writes++
	p := m.page(addr)
	o := addr % pageSize
	if o+4 <= pageSize {
		if m.undoOn || m.vers != nil {
			m.noteWord(addr, uint32(p[o])|uint32(p[o+1])<<8|uint32(p[o+2])<<16|uint32(p[o+3])<<24)
		}
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.storeByteRaw(addr+i, byte(v>>(8*i)))
	}
}

// PeekWord returns the aligned 32-bit word at addr without counting the
// access. Loaders and the block translator use it: functional statistics
// must reflect only emulated traffic, never host-side inspection. Untouched
// pages read as zero without being allocated.
func (m *Memory) PeekWord(addr uint32) uint32 {
	if addr >= m.size {
		panic(fmt.Sprintf("mem: %s: address 0x%x beyond size 0x%x", m.name, addr, m.size))
	}
	p := m.pages[addr/pageSize]
	if p == nil {
		return 0
	}
	o := addr % pageSize
	if o+4 <= pageSize {
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.loadByteRaw(addr+i)) << (8 * i)
	}
	return v
}

func (m *Memory) loadByteRaw(addr uint32) byte { return m.page(addr)[addr%pageSize] }
func (m *Memory) storeByteRaw(addr uint32, b byte) {
	p := m.page(addr)
	if m.undoOn || m.vers != nil {
		m.noteByte(addr, p[addr%pageSize])
	}
	p[addr%pageSize] = b
}

func (m *Memory) noteWord(addr, old uint32) {
	if m.undoOn {
		m.undo = append(m.undo, undoRec{addr: addr, old: old})
	}
	if m.vers != nil {
		m.vers[addr/pageSize]++
	}
}

func (m *Memory) noteByte(addr uint32, old byte) {
	if m.undoOn {
		m.undo = append(m.undo, undoRec{addr: addr, old: uint32(old), isByte: true})
	}
	if m.vers != nil {
		m.vers[addr/pageSize]++
	}
}

// EnableVersions switches on per-page version stamping for this memory.
func (m *Memory) EnableVersions() {
	if m.vers == nil {
		m.vers = make(map[uint32]uint32)
	}
}

// PageVersion returns the version stamp of the page containing addr (0 until
// the page is first stored to after EnableVersions).
func (m *Memory) PageVersion(addr uint32) uint32 { return m.vers[addr/pageSize] }

// BeginUndo starts journalling old values of every subsequent store so
// RollbackUndo can rewind them. The journal is reset first.
func (m *Memory) BeginUndo() {
	m.undoOn = true
	m.undo = m.undo[:0]
}

// DropUndo commits the journalled stores: journalling stops and the journal
// is discarded.
func (m *Memory) DropUndo() {
	m.undoOn = false
	m.undo = m.undo[:0]
}

// RollbackUndo rewinds every store journalled since BeginUndo, newest first,
// and stops journalling. Rollback writes bypass statistics and version
// stamping (versions stay monotone; a stale stamp can only cause a spurious
// conflict, never a false clean).
func (m *Memory) RollbackUndo() {
	m.undoOn = false
	for i := len(m.undo) - 1; i >= 0; i-- {
		r := m.undo[i]
		if r.isByte {
			m.page(r.addr)[r.addr%pageSize] = byte(r.old)
			continue
		}
		p := m.page(r.addr)
		o := r.addr % pageSize
		if o+4 <= pageSize {
			p[o], p[o+1], p[o+2], p[o+3] = byte(r.old), byte(r.old>>8), byte(r.old>>16), byte(r.old>>24)
			continue
		}
		for j := uint32(0); j < 4; j++ {
			a := r.addr + j
			m.page(a)[a%pageSize] = byte(r.old >> (8 * j))
		}
	}
	m.undo = m.undo[:0]
}

// RestoreStats replaces the functional access counters (used by the
// speculative kernel's chunk rollback).
func (m *Memory) RestoreStats(s MemStats) { m.stats = s }

// PureLatency returns the user-defined access latency for a burst of the
// given size without the suppression side effect. The speculative kernel
// predicts timing with it during free-runs and defers the real Latency call
// (and its suppression accounting) to commit time, so suppression still
// accrues exactly once per access.
func (m *Memory) PureLatency(bytes uint32) uint64 {
	words := uint64((bytes + 3) / 4)
	if words == 0 {
		words = 1
	}
	return m.latency + (words - 1)
}

// PeekByte returns the byte at addr without counting the access; untouched
// pages read as zero without being allocated.
func (m *Memory) PeekByte(addr uint32) byte {
	if addr >= m.size {
		panic(fmt.Sprintf("mem: %s: address 0x%x beyond size 0x%x", m.name, addr, m.size))
	}
	p := m.pages[addr/pageSize]
	if p == nil {
		return 0
	}
	return p[addr%pageSize]
}

// LoadByte implements Target.
func (m *Memory) LoadByte(addr uint32) byte {
	m.stats.Reads++
	return m.loadByteRaw(addr)
}

// StoreByte implements Target.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.stats.Writes++
	m.storeByteRaw(addr, b)
}

// WriteBytes copies data into memory starting at addr (no timing, used by
// program loaders).
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.storeByteRaw(addr+uint32(i), b)
	}
}

// ReadBytes copies n bytes out of memory starting at addr (no timing).
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.loadByteRaw(addr + uint32(i))
	}
	return out
}

// Interconnect is the timing model of a path between a memory controller
// and a remote (shared) memory: a bus or a NoC. Implementations live in the
// bus and noc packages.
type Interconnect interface {
	// Transaction returns the cycles from now until a burst of the given
	// size completes for the initiator, including the target's service
	// latency, arbitration and contention.
	Transaction(initiator int, now uint64, bytes uint32, write bool, targetLatency uint64) uint64
	// Name identifies the interconnect instance.
	Name() string
}

// Routed is a Target reached through an Interconnect: the functional plane
// goes straight to the underlying target, while the timing plane pays the
// interconnect transaction cost.
type Routed struct {
	Under     Target
	IC        Interconnect
	Initiator int
}

// Latency implements Target.
func (r *Routed) Latency(now uint64, addr uint32, bytes uint32, write bool) uint64 {
	// The device's own latency is folded into the interconnect transaction
	// (the bus is held while the target services the access).
	target := r.Under.Latency(now, addr, bytes, write)
	return r.IC.Transaction(r.Initiator, now, bytes, write, target)
}

// LoadWord implements Target.
func (r *Routed) LoadWord(addr uint32) uint32 { return r.Under.LoadWord(addr) }

// StoreWord implements Target.
func (r *Routed) StoreWord(addr uint32, v uint32) { r.Under.StoreWord(addr, v) }

// LoadByte implements Target.
func (r *Routed) LoadByte(addr uint32) byte { return r.Under.LoadByte(addr) }

// StoreByte implements Target.
func (r *Routed) StoreByte(addr uint32, b byte) { r.Under.StoreByte(addr, b) }

// Size implements Target.
func (r *Routed) Size() uint32 { return r.Under.Size() }

// EachPage visits every touched, non-zero page of the memory in ascending
// address order, passing the page's base address and its contents. Pages
// that were allocated but hold only zeroes are skipped, so the iteration
// (and any digest built over it) depends only on the architectural contents
// of the memory, not on its allocation history.
func (m *Memory) EachPage(fn func(addr uint32, page []byte)) {
	idxs := make([]uint32, 0, len(m.pages))
	for idx := range m.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		p := m.pages[idx]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		fn(idx*pageSize, p[:])
	}
}
