package mem

// This file holds checkpointable state for the memory hierarchy: sparse
// memory pages, cache timing directories, controller counters and
// synchronisation devices. Save methods copy, never alias; Restore methods
// validate shape against the live object so a checkpoint from a differently
// configured platform is rejected instead of silently corrupting state.

import "fmt"

// PageState is one non-empty page of a sparse memory.
type PageState struct {
	Addr uint32 // page-aligned base address
	Data []byte // exactly one page
}

// MemoryState is the checkpointable state of a Memory.
type MemoryState struct {
	Pages []PageState // ascending by Addr
	Stats MemStats
}

// SaveState captures the memory contents (sparse page walk) and counters.
func (m *Memory) SaveState() MemoryState {
	s := MemoryState{Stats: m.stats}
	m.EachPage(func(addr uint32, page []byte) {
		s.Pages = append(s.Pages, PageState{Addr: addr, Data: append([]byte(nil), page...)})
	})
	return s
}

// RestoreState replaces the memory contents and counters with the saved
// state. Pages absent from the state are cleared.
func (m *Memory) RestoreState(s MemoryState) error {
	pages := make(map[uint32]*[pageSize]byte, len(s.Pages))
	for _, p := range s.Pages {
		if p.Addr%pageSize != 0 {
			return fmt.Errorf("mem %s: page address %#x not page-aligned", m.name, p.Addr)
		}
		if p.Addr >= m.size {
			return fmt.Errorf("mem %s: page address %#x beyond size %d", m.name, p.Addr, m.size)
		}
		if len(p.Data) != pageSize {
			return fmt.Errorf("mem %s: page %#x has %d bytes, want %d", m.name, p.Addr, len(p.Data), pageSize)
		}
		var buf [pageSize]byte
		copy(buf[:], p.Data)
		pages[p.Addr/pageSize] = &buf
	}
	m.pages = pages
	m.lastPage = nil // the memoised page belongs to the replaced map
	m.stats = s.Stats
	m.undoOn, m.undo = false, m.undo[:0] // the journal refers to replaced pages
	return nil
}

// CacheLineState is one way of one set of a cache timing directory.
type CacheLineState struct {
	Tag   uint32
	Valid bool
	Dirty bool
	LRU   uint64
}

// CacheState is the checkpointable state of a Cache. Lines are stored
// set-major (set 0 way 0, set 0 way 1, ...).
type CacheState struct {
	Lines   []CacheLineState
	Stamp   uint64 // monotonic LRU clock
	Stats   CacheStats
	Enabled bool
}

// SaveState captures the cache directory and counters.
func (c *Cache) SaveState() CacheState {
	s := CacheState{
		Lines:   make([]CacheLineState, 0, int(c.nSets)*c.cfg.Assoc),
		Stamp:   c.stamp,
		Stats:   c.stats,
		Enabled: c.enable,
	}
	for _, set := range c.sets {
		for _, ln := range set {
			s.Lines = append(s.Lines, CacheLineState{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty, LRU: ln.lru})
		}
	}
	return s
}

// RestoreState replaces the cache directory and counters with the saved
// state. The line count must match the live geometry.
func (c *Cache) RestoreState(s CacheState) error {
	want := int(c.nSets) * c.cfg.Assoc
	if len(s.Lines) != want {
		return fmt.Errorf("cache: checkpoint has %d lines, geometry needs %d", len(s.Lines), want)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			ln := s.Lines[i]
			set[w] = cacheLine{tag: ln.Tag, valid: ln.Valid, dirty: ln.Dirty, lru: ln.LRU}
			i++
		}
	}
	c.stamp = s.Stamp
	c.stats = s.Stats
	c.enable = s.Enabled
	c.memoIdx, c.memoIdx2 = -1, -1 // the memos may point at lines the checkpoint replaced
	c.epoch++
	return nil
}

// RestoreStats replaces the controller counters (the controller has no
// other mutable state).
func (c *Controller) RestoreStats(s CtrlStats) { c.stats = s }

// BarrierState is the checkpointable state of a Barrier.
type BarrierState struct {
	Arrivals int
	Gen      uint32
}

// SaveState captures the barrier phase.
func (b *Barrier) SaveState() BarrierState {
	return BarrierState{Arrivals: b.arrivals, Gen: b.gen}
}

// RestoreState rewinds the barrier phase.
func (b *Barrier) RestoreState(s BarrierState) error {
	if s.Arrivals < 0 || s.Arrivals >= b.n {
		return fmt.Errorf("barrier %s: %d arrivals out of range for %d participants", b.name, s.Arrivals, b.n)
	}
	b.arrivals = s.Arrivals
	b.gen = s.Gen
	return nil
}
