// Package mparm is the cycle-accurate SW-simulator baseline the framework
// is compared against in Table 3 of the DAC'06 paper (the MPARM SystemC
// environment).
//
// MPARM-class simulators are slow for a structural reason the paper calls
// "signal management overhead": every component port is a signal, every
// clock edge triggers an evaluate/update pass over the sensitive processes,
// and inter-module communication takes multiple delta cycles. The cost per
// simulated cycle therefore grows with the number of components and
// monitored statistics, which is exactly what the paper's HW emulator
// avoids.
//
// This package reproduces that cost structure honestly while staying
// functionally identical to the fast emulator: it wraps the same platform
// functional models in a signal-level kernel. Every cycle, the platform's
// port activity (program counters, execution states, memory handshakes,
// cache events, interconnect transactions) is driven onto signals, a
// delta-cycle loop propagates them through request/acknowledge handshake
// processes, and all statistics are recovered by observer processes from
// the signal traffic — never read directly from the fast counters. The
// package tests assert that the recovered statistics are bit-identical to
// the platform's own, which makes the Table 3 speed-up measurement an
// apples-to-apples comparison.
package mparm

import (
	"container/heap"
	"fmt"

	"thermemu/internal/cpu"
	"thermemu/internal/emu"
)

// signal is one wire of the simulated netlist, with evaluate/update
// semantics: writes land in next and become visible at the following delta
// commit.
type signal struct {
	name    string
	cur     uint64
	next    uint64
	written bool
	sens    []int // modules sensitive to this signal
}

// module is a simulated process, re-evaluated whenever a signal in its
// sensitivity list changes.
type module struct {
	name string
	eval func()
}

// KernelStats describes the work the signal kernel performed — the
// overhead a cycle-accurate SW simulator pays and an FPGA does not.
type KernelStats struct {
	Cycles      uint64
	DeltaCycles uint64
	Evaluations uint64
	SignalOps   uint64 // signal writes + commits
}

// Observed holds the statistics recovered purely from signal traffic.
type Observed struct {
	Instructions []uint64
	ActiveCycles []uint64
	StallCycles  []uint64
	IdleCycles   []uint64
	MemAccesses  []uint64 // loads+stores completed through the handshake
	ICacheMisses []uint64
	DCacheMisses []uint64
	BusTxns      uint64
	NocPackets   uint64
}

// Kernel is the signal-level simulator wrapped around an emu.Platform.
type Kernel struct {
	p     *emu.Platform
	sigs  []signal
	mods  []module
	dirty []int // signals written in the current delta
	queue []int // modules scheduled for the next delta
	inQ   []bool
	stats KernelStats
	obs   Observed

	// signal indices
	sigTick  int
	sigState []int
	sigInstr []int
	sigLoads []int
	sigStors []int
	sigIMiss []int
	sigDMiss []int
	sigReq   []int // memory access handshake: request
	sigAck   []int //   acknowledge (memory side)
	sigDone  []int //   completion (master side)
	sigBus   int
	sigNoc   int
	banks    []portBank
}

// New wraps a freshly configured platform (programs loaded, not yet run) in
// the signal kernel.
func New(p *emu.Platform) *Kernel {
	k := &Kernel{p: p}
	n := len(p.Cores)
	k.obs = Observed{
		Instructions: make([]uint64, n), ActiveCycles: make([]uint64, n),
		StallCycles: make([]uint64, n), IdleCycles: make([]uint64, n),
		MemAccesses: make([]uint64, n), ICacheMisses: make([]uint64, n),
		DCacheMisses: make([]uint64, n),
	}
	k.sigTick = k.newSignal("tick")
	for i := 0; i < n; i++ {
		k.sigState = append(k.sigState, k.newSignal(fmt.Sprintf("core%d.state", i)))
		k.sigInstr = append(k.sigInstr, k.newSignal(fmt.Sprintf("core%d.instr", i)))
		k.sigLoads = append(k.sigLoads, k.newSignal(fmt.Sprintf("core%d.loads", i)))
		k.sigStors = append(k.sigStors, k.newSignal(fmt.Sprintf("core%d.stores", i)))
		k.sigIMiss = append(k.sigIMiss, k.newSignal(fmt.Sprintf("icache%d.miss", i)))
		k.sigDMiss = append(k.sigDMiss, k.newSignal(fmt.Sprintf("dcache%d.miss", i)))
		k.sigReq = append(k.sigReq, k.newSignal(fmt.Sprintf("memctl%d.req", i)))
		k.sigAck = append(k.sigAck, k.newSignal(fmt.Sprintf("mem%d.ack", i)))
		k.sigDone = append(k.sigDone, k.newSignal(fmt.Sprintf("memctl%d.done", i)))
	}
	k.sigBus = k.newSignal("bus.txn")
	k.sigNoc = k.newSignal("noc.pkt")

	// Per-core clocked monitor: counts execution states every cycle, like
	// a SystemC SC_METHOD sensitive to the clock.
	for i := 0; i < n; i++ {
		i := i
		k.addModule(fmt.Sprintf("coreMon%d", i), func() {
			switch cpu.State(k.sigs[k.sigState[i]].cur) {
			case cpu.Active:
				k.obs.ActiveCycles[i]++
			case cpu.Stalled:
				k.obs.StallCycles[i]++
			default:
				k.obs.IdleCycles[i]++
			}
			k.obs.Instructions[i] = k.sigs[k.sigInstr[i]].cur
		}, k.sigTick)

		// Memory handshake chain: request generator -> memory slave ->
		// master completion. Three delta hops per cycle with traffic.
		k.addModule(fmt.Sprintf("memReq%d", i), func() {
			acc := k.sigs[k.sigLoads[i]].cur + k.sigs[k.sigStors[i]].cur
			k.write(k.sigReq[i], acc)
		}, k.sigLoads[i], k.sigStors[i])
		k.addModule(fmt.Sprintf("memSlave%d", i), func() {
			k.write(k.sigAck[i], k.sigs[k.sigReq[i]].cur)
		}, k.sigReq[i])
		k.addModule(fmt.Sprintf("memDone%d", i), func() {
			k.write(k.sigDone[i], k.sigs[k.sigAck[i]].cur)
		}, k.sigAck[i])
		k.addModule(fmt.Sprintf("memMon%d", i), func() {
			k.obs.MemAccesses[i] = k.sigs[k.sigDone[i]].cur
		}, k.sigDone[i])

		k.addModule(fmt.Sprintf("cacheMon%d", i), func() {
			k.obs.ICacheMisses[i] = k.sigs[k.sigIMiss[i]].cur
			k.obs.DCacheMisses[i] = k.sigs[k.sigDMiss[i]].cur
		}, k.sigIMiss[i], k.sigDMiss[i])
	}
	k.addModule("busMon", func() { k.obs.BusTxns = k.sigs[k.sigBus].cur }, k.sigBus)
	k.addModule("nocMon", func() { k.obs.NocPackets = k.sigs[k.sigNoc].cur }, k.sigNoc)

	// Pin-level port banks. A cycle-accurate simulator does not exchange
	// counters between components: it toggles the individual wires of every
	// port (address bus, data bus, control strobes) and re-evaluates one
	// process per monitored lane on every clock edge. Each bank below
	// models one such port: `laneCount` lane signals driven from real
	// platform state every cycle, observed by one process per lane. This is
	// the per-signal management cost of Section 2 — and exactly the work
	// the FPGA emulator never pays.
	for i := range p.Cores {
		c := p.Cores[i]
		ctl := p.Ctrls[i]
		k.addPortBank(fmt.Sprintf("core%d.pc_bus", i), func() uint64 { return uint64(c.PC()) })
		k.addPortBank(fmt.Sprintf("core%d.ifetch_bus", i), func() uint64 { return c.Stats().Instructions })
		k.addPortBank(fmt.Sprintf("core%d.daddr_bus", i), func() uint64 { return c.Stats().Loads })
		k.addPortBank(fmt.Sprintf("core%d.dwrite_bus", i), func() uint64 { return c.Stats().Stores })
		k.addPortBank(fmt.Sprintf("core%d.ctrl_pins", i), func() uint64 { return c.Stats().StallCycles })
		k.addPortBank(fmt.Sprintf("memctl%d.req_pins", i), func() uint64 { return ctl.Stats().StallCycles })
		if ic := ctl.ICache(); ic != nil {
			k.addPortBank(fmt.Sprintf("icache%d.tag_bus", i), func() uint64 { return ic.Stats().Hits })
			k.addPortBank(fmt.Sprintf("icache%d.refill_bus", i), func() uint64 { return ic.Stats().Misses })
		}
		if dc := ctl.DCache(); dc != nil {
			k.addPortBank(fmt.Sprintf("dcache%d.tag_bus", i), func() uint64 { return dc.Stats().Hits })
			k.addPortBank(fmt.Sprintf("dcache%d.refill_bus", i), func() uint64 { return dc.Stats().Misses })
		}
	}
	if p.Bus != nil {
		b := p.Bus
		k.addPortBank("bus.addr_bus", func() uint64 { return b.Stats().Transactions })
		k.addPortBank("bus.data_bus", func() uint64 { return b.Stats().BeatsCarried })
		k.addPortBank("bus.grant_pins", func() uint64 { return b.Stats().WaitCycles })
	}
	if p.Net != nil {
		n := p.Net
		k.addPortBank("noc.flit_bus", func() uint64 { return n.Stats().Flits })
		k.addPortBank("noc.route_pins", func() uint64 { return n.Stats().HopsTraveled })
		k.addPortBank("noc.credit_pins", func() uint64 { return n.Stats().WaitCycles })
	}
	return k
}

// laneCount is the number of wires modelled per port bank (nibble lanes of
// a 64-bit port).
const laneCount = 16

// portBank is one pin-level port: its lane signals and their running
// checksum (what a waveform/statistics observer accumulates).
type portBank struct {
	lanes []int
	src   func() uint64
	check uint64
}

// addPortBank creates the lane signals, one observer process per lane, and
// registers the bank for the per-cycle drive phase.
func (k *Kernel) addPortBank(name string, src func() uint64) {
	b := portBank{src: src, lanes: make([]int, laneCount)}
	bi := len(k.banks)
	for j := 0; j < laneCount; j++ {
		sig := k.newSignal(fmt.Sprintf("%s[%d]", name, j))
		b.lanes[j] = sig
		k.addModule(fmt.Sprintf("%sMon[%d]", name, j), func() {
			k.banks[bi].check = k.banks[bi].check*31 + k.sigs[sig].cur
		}, sig)
	}
	k.banks = append(k.banks, b)
}

// BankChecksum folds every port-bank observer checksum; it exists so the
// observer work is externally visible (and cannot be optimised away).
func (k *Kernel) BankChecksum() uint64 {
	var x uint64
	for i := range k.banks {
		x ^= k.banks[i].check
	}
	return x
}

// Platform returns the wrapped platform.
func (k *Kernel) Platform() *emu.Platform { return k.p }

// Stats returns the kernel work counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Observed returns the statistics recovered from the signal traffic.
func (k *Kernel) Observed() Observed { return k.obs }

func (k *Kernel) newSignal(name string) int {
	k.sigs = append(k.sigs, signal{name: name})
	return len(k.sigs) - 1
}

func (k *Kernel) addModule(name string, eval func(), sens ...int) int {
	id := len(k.mods)
	k.mods = append(k.mods, module{name: name, eval: eval})
	k.inQ = append(k.inQ, false)
	for _, s := range sens {
		k.sigs[s].sens = append(k.sigs[s].sens, id)
	}
	return id
}

// write schedules a signal value for the next delta commit.
func (k *Kernel) write(sig int, v uint64) {
	s := &k.sigs[sig]
	if !s.written {
		s.written = true
		k.dirty = append(k.dirty, sig)
	}
	s.next = v
	k.stats.SignalOps++
}

// runQueue is the scheduler's runnable-process set: a priority queue over
// module indices, as a dynamic simulation kernel maintains (processes fire
// in a deterministic order regardless of the order they were sensitised).
type runQueue []int

func (q runQueue) Len() int           { return len(q) }
func (q runQueue) Less(i, j int) bool { return q[i] < q[j] }
func (q runQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *runQueue) Push(x any)        { *q = append(*q, x.(int)) }
func (q *runQueue) Pop() any          { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

// settle runs delta cycles until no signal changes remain.
func (k *Kernel) settle() {
	for len(k.dirty) > 0 {
		k.stats.DeltaCycles++
		// Update phase: commit written signals, schedule sensitive
		// processes into the run queue for the evaluate phase.
		rq := runQueue(k.queue[:0])
		for _, si := range k.dirty {
			s := &k.sigs[si]
			s.written = false
			if s.next == s.cur {
				continue
			}
			s.cur = s.next
			k.stats.SignalOps++
			for _, m := range s.sens {
				if !k.inQ[m] {
					k.inQ[m] = true
					heap.Push(&rq, m)
				}
			}
		}
		k.dirty = k.dirty[:0]
		// Evaluate phase, in deterministic scheduler order.
		for rq.Len() > 0 {
			m := heap.Pop(&rq).(int)
			k.inQ[m] = false
			k.stats.Evaluations++
			k.mods[m].eval()
		}
		k.queue = rq[:0]
	}
}

// StepOne advances the simulation by one clock cycle: the functional model
// computes the cycle, then the port activity is driven onto the signal
// netlist and propagated to quiescence.
func (k *Kernel) StepOne() {
	k.p.StepOne()
	k.stats.Cycles++

	// Drive phase (clock edge): publish every port of every component.
	k.write(k.sigTick, k.stats.Cycles)
	for i, c := range k.p.Cores {
		st := c.Stats()
		k.write(k.sigState[i], uint64(c.State()))
		k.write(k.sigInstr[i], st.Instructions)
		k.write(k.sigLoads[i], st.Loads)
		k.write(k.sigStors[i], st.Stores)
		if ic := k.p.Ctrls[i].ICache(); ic != nil {
			k.write(k.sigIMiss[i], ic.Stats().Misses)
		}
		if dc := k.p.Ctrls[i].DCache(); dc != nil {
			k.write(k.sigDMiss[i], dc.Stats().Misses)
		}
	}
	if k.p.Bus != nil {
		k.write(k.sigBus, k.p.Bus.Stats().Transactions)
	}
	if k.p.Net != nil {
		k.write(k.sigNoc, k.p.Net.Stats().Packets)
	}
	// Drive every pin of every port bank. The lane values mix the port's
	// real state with the clock so the wires toggle like live buses do.
	mixer := k.stats.Cycles * 0x9E3779B97F4A7C15
	for i := range k.banks {
		v := k.banks[i].src() ^ mixer
		for j, sig := range k.banks[i].lanes {
			k.write(sig, v>>(4*uint(j))&0xF)
		}
	}
	k.settle()
}

// Run executes until every core halts or maxCycles elapse, mirroring
// emu.Platform.Run.
func (k *Kernel) Run(maxCycles uint64) (uint64, bool) {
	for k.p.VPCM.Cycle() < maxCycles && !k.p.AllHalted() {
		k.StepOne()
	}
	return k.p.VPCM.Cycle(), k.p.AllHalted()
}

// VerifyObserved cross-checks the signal-recovered statistics against the
// platform's own counters, returning an error on the first divergence. A
// nil result proves the two kernels are statistically identical.
func (k *Kernel) VerifyObserved() error {
	for i, c := range k.p.Cores {
		st := c.Stats()
		if k.obs.Instructions[i] != st.Instructions {
			return fmt.Errorf("mparm: core %d instructions %d != %d", i, k.obs.Instructions[i], st.Instructions)
		}
		if k.obs.ActiveCycles[i] != st.ActiveCycles ||
			k.obs.StallCycles[i] != st.StallCycles ||
			k.obs.IdleCycles[i] != st.IdleCycles {
			return fmt.Errorf("mparm: core %d state cycles (%d/%d/%d) != (%d/%d/%d)",
				i, k.obs.ActiveCycles[i], k.obs.StallCycles[i], k.obs.IdleCycles[i],
				st.ActiveCycles, st.StallCycles, st.IdleCycles)
		}
		if k.obs.MemAccesses[i] != st.Loads+st.Stores {
			return fmt.Errorf("mparm: core %d mem accesses %d != %d",
				i, k.obs.MemAccesses[i], st.Loads+st.Stores)
		}
		if ic := k.p.Ctrls[i].ICache(); ic != nil && k.obs.ICacheMisses[i] != ic.Stats().Misses {
			return fmt.Errorf("mparm: icache %d misses %d != %d", i, k.obs.ICacheMisses[i], ic.Stats().Misses)
		}
		if dc := k.p.Ctrls[i].DCache(); dc != nil && k.obs.DCacheMisses[i] != dc.Stats().Misses {
			return fmt.Errorf("mparm: dcache %d misses %d != %d", i, k.obs.DCacheMisses[i], dc.Stats().Misses)
		}
	}
	if k.p.Bus != nil && k.obs.BusTxns != k.p.Bus.Stats().Transactions {
		return fmt.Errorf("mparm: bus transactions %d != %d", k.obs.BusTxns, k.p.Bus.Stats().Transactions)
	}
	if k.p.Net != nil && k.obs.NocPackets != k.p.Net.Stats().Packets {
		return fmt.Errorf("mparm: noc packets %d != %d", k.obs.NocPackets, k.p.Net.Stats().Packets)
	}
	return nil
}

// Step advances the simulation by n clock cycles (or until every core
// halts), mirroring emu.Platform.Step.
func (k *Kernel) Step(n uint64) {
	for i := uint64(0); i < n && !k.p.AllHalted(); i++ {
		k.StepOne()
	}
}
