package mparm

import (
	"fmt"
	"math/rand"
	"testing"

	"thermemu/internal/asm"
	"thermemu/internal/emu"
	"thermemu/internal/workloads"
)

func loadSpec(t *testing.T, p *emu.Platform, s *workloads.Spec) {
	t.Helper()
	for i, im := range s.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range s.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
}

func TestSignalKernelFunctionallyIdentical(t *testing.T) {
	spec, err := workloads.Matrix(2, 8, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Fast kernel.
	fast := emu.MustNew(emu.DefaultConfig(2))
	loadSpec(t, fast, spec)
	fc, fdone := fast.Run(20_000_000)
	if !fdone || fast.Fault() != nil {
		t.Fatalf("fast kernel: done=%v fault=%v", fdone, fast.Fault())
	}
	// Signal kernel on an identical platform.
	slowP := emu.MustNew(emu.DefaultConfig(2))
	loadSpec(t, slowP, spec)
	k := New(slowP)
	sc, sdone := k.Run(20_000_000)
	if !sdone || slowP.Fault() != nil {
		t.Fatalf("signal kernel: done=%v fault=%v", sdone, slowP.Fault())
	}
	// Cycle-identical.
	if fc != sc {
		t.Errorf("cycle counts differ: fast %d, signal %d", fc, sc)
	}
	// Functionally identical results.
	if err := spec.Verify(slowP.ReadSharedWord); err != nil {
		t.Errorf("signal kernel result: %v", err)
	}
	// Statistics recovered from signals match the platform counters.
	if err := k.VerifyObserved(); err != nil {
		t.Error(err)
	}
	// And the two platforms agree counter-for-counter.
	fs, ss := fast.Snapshot(), slowP.Snapshot()
	for i := range fs.Cores {
		if fs.Cores[i] != ss.Cores[i] {
			t.Errorf("core %d stats diverge: %+v vs %+v", i, fs.Cores[i], ss.Cores[i])
		}
		if fs.DCaches[i] != ss.DCaches[i] {
			t.Errorf("dcache %d stats diverge", i)
		}
	}
	if *fs.Bus != *ss.Bus {
		t.Errorf("bus stats diverge: %+v vs %+v", *fs.Bus, *ss.Bus)
	}
}

func TestSignalKernelOnNoC(t *testing.T) {
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(4)
	spec, err := workloads.Dithering(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := emu.MustNew(cfg)
	loadSpec(t, p, spec)
	k := New(p)
	if _, done := k.Run(50_000_000); !done {
		t.Fatal("did not finish")
	}
	if err := spec.Verify(p.ReadSharedWord); err != nil {
		t.Error(err)
	}
	if err := k.VerifyObserved(); err != nil {
		t.Error(err)
	}
	if k.Observed().NocPackets == 0 {
		t.Error("no NoC packets observed through signals")
	}
}

func TestDeltaCycleOverheadStructure(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 200
	loop:
		li   r2, 0x10000000
		sw   r1, 0(r2)
		subi r1, r1, 1
		bne  r1, r0, loop
		halt
	`)
	run := func(cores int) KernelStats {
		p := emu.MustNew(emu.DefaultConfig(cores))
		for i := 0; i < cores; i++ {
			if err := p.LoadProgram(i, prog); err != nil {
				t.Fatal(err)
			}
		}
		k := New(p)
		if _, done := k.Run(1_000_000); !done {
			t.Fatal("did not halt")
		}
		return k.Stats()
	}
	s1 := run(1)
	s4 := run(4)
	// Strictly more deltas than clock cycles: handshake chains add extra
	// delta rounds on cycles with memory traffic.
	if s1.DeltaCycles <= s1.Cycles {
		t.Errorf("deltas %d for %d cycles: handshakes not multi-delta", s1.DeltaCycles, s1.Cycles)
	}
	// Per-cycle evaluation work grows with component count — the signal
	// management overhead of Section 2.
	perCycle1 := float64(s1.Evaluations) / float64(s1.Cycles)
	perCycle4 := float64(s4.Evaluations) / float64(s4.Cycles)
	if perCycle4 < 2*perCycle1 {
		t.Errorf("evaluations/cycle did not scale with cores: %.1f -> %.1f", perCycle1, perCycle4)
	}
	if s1.SignalOps == 0 {
		t.Error("no signal activity")
	}
}

func TestObservedIdleAccounting(t *testing.T) {
	// One core halts immediately; the other spins. Idle cycles must be
	// recovered through the state signal.
	p := emu.MustNew(emu.DefaultConfig(2))
	if err := p.LoadProgram(0, asm.MustAssemble("halt")); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadProgram(1, asm.MustAssemble(`
		addi r1, r0, 100
	loop:
		subi r1, r1, 1
		bne r1, r0, loop
		halt
	`)); err != nil {
		t.Fatal(err)
	}
	k := New(p)
	k.Run(100000)
	if err := k.VerifyObserved(); err != nil {
		t.Fatal(err)
	}
	obs := k.Observed()
	if obs.IdleCycles[0] == 0 {
		t.Error("halted core recorded no idle cycles")
	}
	if obs.ActiveCycles[1] < 200 {
		t.Errorf("spinning core active cycles = %d", obs.ActiveCycles[1])
	}
}

// TestRandomProgramDifferential cross-validates the two kernels on randomly
// generated programs: same registers, same memory, same cycle counts, and
// signal-recovered statistics equal to the platform counters.
func TestRandomProgramDifferential(t *testing.T) {
	ops := []string{"add", "sub", "and", "or", "xor", "nor", "sll", "srl", "sra",
		"slt", "sltu", "mul", "div", "rem"}
	gen := func(r *rand.Rand) string {
		src := "\tli r20, 0x10000000\n\tli r21, 0x4000\n"
		for i := 1; i <= 8; i++ {
			src += fmt.Sprintf("\tli r%d, %d\n", i, r.Intn(1<<16))
		}
		for i := 0; i < 120; i++ {
			switch r.Intn(6) {
			case 0: // load from the private scratch area
				src += fmt.Sprintf("\tlw r%d, %d(r21)\n", 1+r.Intn(8), 4*r.Intn(64))
			case 1: // store to the private scratch area
				src += fmt.Sprintf("\tsw r%d, %d(r21)\n", 1+r.Intn(8), 4*r.Intn(64))
			case 2: // shared-memory traffic (exercises the interconnect)
				src += fmt.Sprintf("\tsw r%d, %d(r20)\n", 1+r.Intn(8), 4*r.Intn(32))
			default:
				op := ops[r.Intn(len(ops))]
				src += fmt.Sprintf("\t%s r%d, r%d, r%d\n",
					op, 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8))
			}
		}
		// Publish a register digest.
		src += "\tadd r10, r0, r0\n"
		for i := 1; i <= 8; i++ {
			src += fmt.Sprintf("\txor r10, r10, r%d\n", i)
		}
		src += "\tsw r10, 0x200(r20)\n\thalt\n"
		return src
	}
	for trial := 0; trial < 10; trial++ {
		r := rand.New(rand.NewSource(int64(trial) * 7919))
		im, err := asm.Assemble(gen(r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cores := 1 + trial%3
		build := func() *emu.Platform {
			p := emu.MustNew(emu.DefaultConfig(cores))
			for c := 0; c < cores; c++ {
				if err := p.LoadProgram(c, im); err != nil {
					t.Fatal(err)
				}
			}
			return p
		}
		fast := build()
		fc, fdone := fast.Run(5_000_000)
		slowP := build()
		k := New(slowP)
		sc, sdone := k.Run(5_000_000)
		if fast.Fault() != nil || slowP.Fault() != nil {
			t.Fatalf("trial %d: faults %v / %v", trial, fast.Fault(), slowP.Fault())
		}
		if !fdone || !sdone || fc != sc {
			t.Fatalf("trial %d: cycles %d/%v vs %d/%v", trial, fc, fdone, sc, sdone)
		}
		for c := 0; c < cores; c++ {
			for reg := uint8(0); reg < 32; reg++ {
				if fast.Cores[c].Reg(reg) != slowP.Cores[c].Reg(reg) {
					t.Fatalf("trial %d core %d: r%d differs", trial, c, reg)
				}
			}
		}
		if fast.ReadSharedWord(0x200) != slowP.ReadSharedWord(0x200) {
			t.Fatalf("trial %d: shared digests differ", trial)
		}
		if err := k.VerifyObserved(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
