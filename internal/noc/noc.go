// Package noc models the Network-on-Chip interconnects of the emulated
// MPSoC. It plays the role of the Xpipes NoCs the paper instantiates with
// XpipesCompiler (Section 3.3): a generator builds application-specific
// topologies (meshes, rings, or custom switch/link graphs), cores and
// memories attach to switches through OCP-style network interfaces, and
// transactions travel as wormhole-switched flit packets through switches
// with configurable buffering.
//
// The timing model is per-link: each directed link keeps a busy-until
// horizon, packets pay a per-hop switch traversal plus link serialisation
// for their flits, and reads pay the return trip of the response packet.
package noc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Link is a directed connection between two switches.
type Link struct {
	From, To int
}

// Topology is a switch/link graph with endpoint attachments.
type Topology struct {
	Name     string
	Switches int
	Links    []Link
	// InitiatorSwitch maps an initiator (core) index to its switch.
	InitiatorSwitch map[int]int
}

// Validate checks structural consistency: link endpoints exist and every
// switch is reachable from every other (in the directed sense).
func (t *Topology) Validate() error {
	if t.Switches <= 0 {
		return fmt.Errorf("noc %s: no switches", t.Name)
	}
	for _, l := range t.Links {
		if l.From < 0 || l.From >= t.Switches || l.To < 0 || l.To >= t.Switches {
			return fmt.Errorf("noc %s: link %v references missing switch", t.Name, l)
		}
		if l.From == l.To {
			return fmt.Errorf("noc %s: self-link on switch %d", t.Name, l.From)
		}
	}
	for _, sw := range t.InitiatorSwitch {
		if sw < 0 || sw >= t.Switches {
			return fmt.Errorf("noc %s: initiator attached to missing switch %d", t.Name, sw)
		}
	}
	adj := t.adjacency()
	for src := 0; src < t.Switches; src++ {
		seen := t.bfs(src, adj)
		for dst := 0; dst < t.Switches; dst++ {
			if seen[dst] < 0 && dst != src {
				return fmt.Errorf("noc %s: switch %d cannot reach switch %d", t.Name, src, dst)
			}
		}
	}
	return nil
}

func (t *Topology) adjacency() [][]int {
	adj := make([][]int, t.Switches)
	for i, l := range t.Links {
		adj[l.From] = append(adj[l.From], i)
	}
	return adj
}

// bfs returns, per destination, the incoming link index of the shortest
// path tree rooted at src (-1 when unreachable).
func (t *Topology) bfs(src int, adj [][]int) []int {
	in := make([]int, t.Switches)
	for i := range in {
		in[i] = -1
	}
	visited := make([]bool, t.Switches)
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, li := range adj[cur] {
			next := t.Links[li].To
			if !visited[next] {
				visited[next] = true
				in[next] = li
				queue = append(queue, next)
			}
		}
	}
	return in
}

// Mesh generates a w×h 2D mesh with bidirectional links, attaching
// initiators 0..n to switches in row-major round-robin order. This mirrors
// the regular topologies XpipesCompiler emits.
func Mesh(w, h int) *Topology {
	t := &Topology{Name: fmt.Sprintf("mesh%dx%d", w, h), Switches: w * h,
		InitiatorSwitch: map[int]int{}}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				t.Links = append(t.Links, Link{id(x, y), id(x+1, y)}, Link{id(x+1, y), id(x, y)})
			}
			if y+1 < h {
				t.Links = append(t.Links, Link{id(x, y), id(x, y+1)}, Link{id(x, y+1), id(x, y)})
			}
		}
	}
	return t
}

// Ring generates an n-switch bidirectional ring.
func Ring(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("ring%d", n), Switches: n, InitiatorSwitch: map[int]int{}}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		t.Links = append(t.Links, Link{i, j}, Link{j, i})
	}
	return t
}

// Attach binds initiator (core) index to a switch.
func (t *Topology) Attach(initiator, sw int) *Topology {
	t.InitiatorSwitch[initiator] = sw
	return t
}

// Config sets the flit-level parameters of a NoC instance, matching the
// knobs of the paper's Xpipes instantiations (number of switches and links
// come from the Topology; buffers and widths here).
type Config struct {
	FlitBytes    uint32 // link width in bytes (32-bit switches => 4)
	BufferFlits  uint64 // output buffer depth per port ("3-package buffers")
	SwitchCycles uint64 // per-hop switch traversal delay
	LinkCycles   uint64 // per-hop link traversal delay
}

// DefaultConfig mirrors the Table 3 NoC: 32-bit switches, 3-flit buffers.
func DefaultConfig() Config {
	return Config{FlitBytes: 4, BufferFlits: 3, SwitchCycles: 1, LinkCycles: 1}
}

// Stats holds the count-logging sniffer counters of a NoC.
type Stats struct {
	Packets      uint64
	Flits        uint64
	OCPReads     uint64
	OCPWrites    uint64
	WaitCycles   uint64
	HopsTraveled uint64
	Transitions  uint64
}

// Network is the NoC timing model over a Topology.
type Network struct {
	topo     *Topology
	cfg      Config
	routes   [][][]int // routes[src][dst] = link indices
	linkBusy []uint64
	linkUse  []uint64
	stats    Stats
}

// New builds a network, validating the topology and precomputing
// shortest-path routes (the static source routing of Xpipes NIs).
func New(topo *Topology, cfg Config) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.FlitBytes == 0 {
		return nil, fmt.Errorf("noc %s: flit size must be positive", topo.Name)
	}
	n := &Network{topo: topo, cfg: cfg,
		linkBusy: make([]uint64, len(topo.Links)),
		linkUse:  make([]uint64, len(topo.Links))}
	adj := topo.adjacency()
	n.routes = make([][][]int, topo.Switches)
	for src := 0; src < topo.Switches; src++ {
		in := topo.bfs(src, adj)
		n.routes[src] = make([][]int, topo.Switches)
		for dst := 0; dst < topo.Switches; dst++ {
			if dst == src {
				continue
			}
			var rev []int
			for cur := dst; cur != src; {
				li := in[cur]
				rev = append(rev, li)
				cur = topo.Links[li].From
			}
			route := make([]int, len(rev))
			for i := range rev {
				route[i] = rev[len(rev)-1-i]
			}
			n.routes[src][dst] = route
		}
	}
	return n, nil
}

// MustNew is New for trusted topologies; it panics on error.
func MustNew(topo *Topology, cfg Config) *Network {
	n, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Topology returns the underlying switch graph.
func (n *Network) Topology() *Topology { return n.topo }

// CopyStateFrom overwrites this network's mutable timing state (link
// horizons, link usage, counters) with src's. Both networks must share the
// same topology and configuration; the speculative kernel uses identically
// configured shadow networks to predict transaction timing without
// disturbing the real one.
func (n *Network) CopyStateFrom(src *Network) {
	copy(n.linkBusy, src.linkBusy)
	copy(n.linkUse, src.linkUse)
	n.stats = src.stats
}

// Stats returns the sniffer counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the counters (link horizons are preserved).
func (n *Network) ResetStats() { n.stats = Stats{} }

// LinkUtilisation returns per-link busy cycles, most-used first, as
// (linkIndex, cycles) pairs.
func (n *Network) LinkUtilisation() []struct {
	Link   Link
	Cycles uint64
} {
	out := make([]struct {
		Link   Link
		Cycles uint64
	}, len(n.topo.Links))
	for i := range n.topo.Links {
		out[i].Link = n.topo.Links[i]
		out[i].Cycles = n.linkUse[i]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// NextEvent returns the cycle at which the earliest busy link frees and
// whether any link is busy after now. Packet timing is charged to the
// initiating core at access time, so — like bus.NextEvent — this is purely
// an event-query bound for skip-ahead kernels.
func (n *Network) NextEvent(now uint64) (uint64, bool) {
	next, any := uint64(0), false
	for _, b := range n.linkBusy {
		if b > now && (!any || b < next) {
			next, any = b, true
		}
	}
	return next, any
}

func (n *Network) flits(bytes uint32) uint64 {
	f := uint64((bytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	if f == 0 {
		f = 1
	}
	return f
}

// traverse sends a packet of the given flit count along a route starting at
// cycle t, returning the arrival cycle of the packet tail.
func (n *Network) traverse(route []int, t uint64, flits uint64) uint64 {
	for _, li := range route {
		depart := t
		waited := false
		if n.linkBusy[li] > depart {
			depart = n.linkBusy[li]
			waited = true
			n.stats.WaitCycles += depart - t
		}
		depart += n.cfg.SwitchCycles
		// Wormhole back-pressure approximation: if the packet is longer
		// than the output buffer and the link was contended, the excess
		// flits stall behind the buffer.
		if waited && flits > n.cfg.BufferFlits {
			depart += flits - n.cfg.BufferFlits
		}
		arrive := depart + n.cfg.LinkCycles
		n.linkBusy[li] = arrive + flits - 1
		n.linkUse[li] += n.cfg.LinkCycles + flits - 1
		n.stats.HopsTraveled++
		n.stats.Transitions += flits * uint64(n.cfg.FlitBytes) * 4 // ~half the wires toggle
		t = arrive
	}
	return t + flits - 1
}

// TargetPort binds a destination switch (where a shared memory's network
// interface sits) and returns a mem.Interconnect for it.
func (n *Network) TargetPort(sw int) *TargetPort {
	if sw < 0 || sw >= n.topo.Switches {
		panic(fmt.Sprintf("noc %s: target switch %d out of range", n.topo.Name, sw))
	}
	return &TargetPort{net: n, sw: sw}
}

// TargetPort is a destination-bound view of the network implementing
// mem.Interconnect for one target device.
type TargetPort struct {
	net *Network
	sw  int
}

// Name implements mem.Interconnect.
func (p *TargetPort) Name() string { return p.net.topo.Name }

// Transaction implements mem.Interconnect: an OCP read or write burst from
// the initiator's network interface to this port's switch.
func (p *TargetPort) Transaction(initiator int, now uint64, bytes uint32, write bool, targetLatency uint64) uint64 {
	n := p.net
	src, ok := n.topo.InitiatorSwitch[initiator]
	if !ok {
		panic(fmt.Sprintf("noc %s: initiator %d not attached", n.topo.Name, initiator))
	}
	n.stats.Packets++
	if write {
		n.stats.OCPWrites++
	} else {
		n.stats.OCPReads++
	}
	const headerFlits = 1
	t := now
	if src == p.sw {
		// Local NI-to-NI access: only the request/response serialisation.
		t += n.cfg.SwitchCycles
	}
	if write {
		req := headerFlits + n.flits(bytes)
		n.stats.Flits += req
		t = n.traverse(n.routes[src][p.sw], t, req)
		t += targetLatency
		// Posted write: the ack is a single-flit response.
		n.stats.Packets++
		n.stats.Flits++
		t = n.traverse(n.routes[p.sw][src], t, 1)
	} else {
		req := uint64(headerFlits + 1) // header + address flit
		n.stats.Flits += req
		t = n.traverse(n.routes[src][p.sw], t, req)
		t += targetLatency
		resp := headerFlits + n.flits(bytes)
		n.stats.Packets++
		n.stats.Flits += resp
		t = n.traverse(n.routes[p.sw][src], t, resp)
	}
	return t - now
}

// ParseTopology builds a topology from a compact spec string, the textual
// front-end of the Xpipes-style generator:
//
//	"mesh:WxH"   a W×H 2D mesh
//	"ring:N"     an N-switch ring
//	"pair"       the two-switch Table 3 configuration
//
// Initiators are not attached; callers attach cores afterwards.
func ParseTopology(spec string) (*Topology, error) {
	switch {
	case spec == "pair":
		return &Topology{Name: "pair", Switches: 2,
			Links:           []Link{{0, 1}, {1, 0}},
			InitiatorSwitch: map[int]int{}}, nil
	case strings.HasPrefix(spec, "mesh:"):
		dims := strings.Split(strings.TrimPrefix(spec, "mesh:"), "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("noc: mesh spec %q, want mesh:WxH", spec)
		}
		w, err1 := strconv.Atoi(dims[0])
		h, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || w < 1 || h < 1 || w*h < 2 {
			return nil, fmt.Errorf("noc: invalid mesh dimensions %q", spec)
		}
		return Mesh(w, h), nil
	case strings.HasPrefix(spec, "ring:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "ring:"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("noc: invalid ring size %q", spec)
		}
		return Ring(n), nil
	}
	return nil, fmt.Errorf("noc: unknown topology spec %q", spec)
}
