package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeshStructure(t *testing.T) {
	m := Mesh(3, 2)
	if m.Switches != 6 {
		t.Fatalf("switches = %d", m.Switches)
	}
	// 3x2 mesh: horizontal 2*2, vertical 3*1 edges, each bidirectional.
	if len(m.Links) != (2*2+3*1)*2 {
		t.Errorf("links = %d", len(m.Links))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingStructure(t *testing.T) {
	r := Ring(5)
	if len(r.Links) != 10 {
		t.Errorf("links = %d", len(r.Links))
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadTopologies(t *testing.T) {
	cases := []*Topology{
		{Name: "empty", Switches: 0},
		{Name: "badlink", Switches: 2, Links: []Link{{0, 5}}},
		{Name: "self", Switches: 2, Links: []Link{{0, 0}}},
		{Name: "disconnected", Switches: 3, Links: []Link{{0, 1}, {1, 0}}},
		{Name: "oneway", Switches: 2, Links: []Link{{0, 1}}},
		{Name: "badattach", Switches: 2, Links: []Link{{0, 1}, {1, 0}},
			InitiatorSwitch: map[int]int{0: 7}},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("topology %s accepted", c.Name)
		}
	}
}

func TestRoutesAreShortestPaths(t *testing.T) {
	m := Mesh(4, 4)
	n := MustNew(m, DefaultConfig())
	// Corner to corner: manhattan distance 6 hops.
	if got := len(n.routes[0][15]); got != 6 {
		t.Errorf("route length = %d, want 6", got)
	}
	// Adjacent: 1 hop.
	if got := len(n.routes[0][1]); got != 1 {
		t.Errorf("route length = %d, want 1", got)
	}
	// Routes are link-continuous.
	for src := 0; src < m.Switches; src++ {
		for dst := 0; dst < m.Switches; dst++ {
			if src == dst {
				continue
			}
			cur := src
			for _, li := range n.routes[src][dst] {
				if m.Links[li].From != cur {
					t.Fatalf("route %d->%d broken at link %d", src, dst, li)
				}
				cur = m.Links[li].To
			}
			if cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestTransactionLatencyScalesWithDistance(t *testing.T) {
	m := Mesh(4, 1)
	m.Attach(0, 0)
	m.Attach(1, 2)
	n := MustNew(m, DefaultConfig())
	far := n.TargetPort(3)
	lNear := far.Transaction(1, 0, 4, false, 5)   // 1 hop
	lFar := far.Transaction(0, 1000, 4, false, 5) // 3 hops
	if lFar <= lNear {
		t.Errorf("far latency %d not above near latency %d", lFar, lNear)
	}
}

func TestWriteVsReadPacketisation(t *testing.T) {
	m := Mesh(2, 1)
	m.Attach(0, 0)
	n := MustNew(m, DefaultConfig())
	p := n.TargetPort(1)
	p.Transaction(0, 0, 16, true, 0)
	s := n.Stats()
	// Write: request header + 4 payload flits, response ack 1 flit.
	if s.Flits != 6 {
		t.Errorf("write flits = %d, want 6", s.Flits)
	}
	if s.OCPWrites != 1 || s.OCPReads != 0 {
		t.Errorf("OCP counters = %+v", s)
	}
	n.ResetStats()
	p.Transaction(0, 1000, 16, false, 0)
	s = n.Stats()
	// Read: request header+addr, response header + 4 data flits.
	if s.Flits != 7 {
		t.Errorf("read flits = %d, want 7", s.Flits)
	}
}

func TestLinkContention(t *testing.T) {
	m := Mesh(2, 1)
	m.Attach(0, 0)
	m.Attach(1, 0)
	n := MustNew(m, DefaultConfig())
	p := n.TargetPort(1)
	l0 := p.Transaction(0, 0, 32, false, 0)
	l1 := p.Transaction(1, 0, 32, false, 0)
	if l1 <= l0 {
		t.Errorf("contended packet (%d) not delayed past first (%d)", l1, l0)
	}
	if n.Stats().WaitCycles == 0 {
		t.Error("no wait cycles recorded under contention")
	}
}

func TestLocalAccessCheapest(t *testing.T) {
	m := Mesh(3, 1)
	m.Attach(0, 0)
	n := MustNew(m, DefaultConfig())
	local := n.TargetPort(0).Transaction(0, 0, 4, false, 2)
	remote := n.TargetPort(2).Transaction(0, 1000, 4, false, 2)
	if local >= remote {
		t.Errorf("local access (%d) not cheaper than 2-hop (%d)", local, remote)
	}
}

func TestUnattachedInitiatorPanics(t *testing.T) {
	n := MustNew(Mesh(2, 1), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.TargetPort(1).Transaction(9, 0, 4, false, 0)
}

func TestLinkUtilisationReport(t *testing.T) {
	m := Mesh(2, 1)
	m.Attach(0, 0)
	n := MustNew(m, DefaultConfig())
	n.TargetPort(1).Transaction(0, 0, 64, true, 0)
	rep := n.LinkUtilisation()
	if len(rep) != len(m.Links) {
		t.Fatalf("report entries = %d", len(rep))
	}
	if rep[0].Cycles == 0 {
		t.Error("busiest link has zero cycles")
	}
	if rep[0].Cycles < rep[len(rep)-1].Cycles {
		t.Error("report not sorted descending")
	}
}

// Property: every transaction on a random mesh completes with latency at
// least hops*(switch+link) and the stats counters stay consistent.
func TestTransactionPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, h := 2+r.Intn(3), 1+r.Intn(3)
		m := Mesh(w, h)
		cores := 1 + r.Intn(4)
		for c := 0; c < cores; c++ {
			m.Attach(c, r.Intn(m.Switches))
		}
		n := MustNew(m, DefaultConfig())
		target := n.TargetPort(r.Intn(m.Switches))
		var now uint64
		for i := 0; i < 40; i++ {
			c := r.Intn(cores)
			bytes := uint32(4 * (1 + r.Intn(8)))
			hops := len(n.routes[m.InitiatorSwitch[c]][target.sw])
			lat := target.Transaction(c, now, bytes, r.Intn(2) == 0, 0)
			min := uint64(hops) * (n.cfg.SwitchCycles + n.cfg.LinkCycles)
			if lat < min {
				t.Logf("latency %d below floor %d", lat, min)
				return false
			}
			now += uint64(r.Intn(20))
		}
		s := n.Stats()
		return s.Packets >= 80 && s.Flits >= s.Packets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomTopologyTable3(t *testing.T) {
	// The Table 3 NoC: 2 switches with 4 in/out channels, 3-flit buffers.
	topo := &Topology{Name: "table3", Switches: 2,
		Links:           []Link{{0, 1}, {1, 0}},
		InitiatorSwitch: map[int]int{0: 0, 1: 0, 2: 1, 3: 1}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	n := MustNew(topo, DefaultConfig())
	lat := n.TargetPort(1).Transaction(0, 0, 4, false, 10)
	if lat == 0 {
		t.Error("zero latency")
	}
}

func TestParseTopology(t *testing.T) {
	m, err := ParseTopology("mesh:3x2")
	if err != nil || m.Switches != 6 {
		t.Errorf("mesh: %v, %v", m, err)
	}
	r, err := ParseTopology("ring:5")
	if err != nil || r.Switches != 5 {
		t.Errorf("ring: %v, %v", r, err)
	}
	p, err := ParseTopology("pair")
	if err != nil || p.Switches != 2 {
		t.Errorf("pair: %v, %v", p, err)
	}
	for _, bad := range []string{"mesh:3", "mesh:axb", "ring:1", "torus:2x2", "mesh:1x1"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestNextEventTracksLinkBusy(t *testing.T) {
	m := Mesh(2, 1)
	m.Attach(0, 0)
	n := MustNew(m, DefaultConfig())
	if _, ok := n.NextEvent(0); ok {
		t.Error("idle network reported an event")
	}
	n.TargetPort(1).Transaction(0, 0, 32, false, 0)
	e, ok := n.NextEvent(0)
	if !ok {
		t.Fatal("network with busy links reported no event")
	}
	var min, max uint64
	for _, b := range n.linkBusy {
		if b > 0 && (min == 0 || b < min) {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if e != min {
		t.Errorf("event cycle %d != earliest link release %d", e, min)
	}
	// Past the last release the network is quiet.
	if _, ok := n.NextEvent(max); ok {
		t.Error("event reported past the last busy link")
	}
}
