package noc

import "fmt"

// State is the complete checkpointable network state: per-link busy
// horizons, per-link utilisation and the global counters. Routes are
// config-derived and rebuilt at construction, so they are not state.
type State struct {
	LinkBusy []uint64
	LinkUse  []uint64
	Stats    Stats
}

// SaveState captures the network for checkpointing.
func (n *Network) SaveState() State {
	return State{
		LinkBusy: append([]uint64(nil), n.linkBusy...),
		LinkUse:  append([]uint64(nil), n.linkUse...),
		Stats:    n.stats,
	}
}

// RestoreState rewinds the network to a saved state. The link count must
// match the live topology.
func (n *Network) RestoreState(s State) error {
	if len(s.LinkBusy) != len(n.topo.Links) || len(s.LinkUse) != len(n.topo.Links) {
		return fmt.Errorf("noc %s: checkpoint has %d/%d links, topology has %d",
			n.topo.Name, len(s.LinkBusy), len(s.LinkUse), len(n.topo.Links))
	}
	copy(n.linkBusy, s.LinkBusy)
	copy(n.linkUse, s.LinkUse)
	n.stats = s.Stats
	return nil
}
