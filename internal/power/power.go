// Package power provides the component power models of the framework
// (Table 1 of the DAC'06 paper): maximum power and power density of the
// most important MPSoC components in 130 nm bulk CMOS, derived from
// industrial power models, plus the activity-based run-time evaluation that
// converts sniffer statistics into the per-component power values streamed
// to the thermal library.
//
// Leakage energy is ignored, as in the paper: at 130 nm its impact is very
// limited, particularly for low-power system design.
package power

import (
	"fmt"
	"math"
)

// Model is one row of Table 1: the power characteristics of a component
// class at its reference frequency.
type Model struct {
	Name        string
	MaxPowerW   float64 // maximum power at RefFreqHz
	DensityWmm2 float64 // maximum power density, W/mm²
	RefFreqHz   float64
}

// Table 1 of the paper (130 nm bulk CMOS, reference frequency 100 MHz).
var (
	// ARM7 is the low-power RISC-32 core: 5.5 mW @ 100 MHz, 0.03 W/mm².
	ARM7 = Model{Name: "RISC32-ARM7", MaxPowerW: 5.5e-3, DensityWmm2: 0.03, RefFreqHz: 100e6}
	// ARM11 is the high-performance RISC-32 core: 1.5 W max, 0.5 W/mm².
	// Table 1 marks this value "(Max)": it is the core's maximum power at
	// its 500 MHz operating point (floorplan (b) clocks the ARM11s at
	// 500 MHz), so the activity/frequency scaling is anchored there.
	ARM11 = Model{Name: "RISC32-ARM11", MaxPowerW: 1.5, DensityWmm2: 0.5, RefFreqHz: 500e6}
	// DCache8K2W is an 8 kB 2-way data cache: 43 mW, 0.012 W/mm².
	DCache8K2W = Model{Name: "DCache-8kB-2way", MaxPowerW: 43e-3, DensityWmm2: 0.012, RefFreqHz: 100e6}
	// ICache8KDM is an 8 kB direct-mapped instruction cache: 11 mW, 0.03 W/mm².
	ICache8KDM = Model{Name: "ICache-8kB-DM", MaxPowerW: 11e-3, DensityWmm2: 0.03, RefFreqHz: 100e6}
	// Mem32K is a 32 kB on-chip memory: 15 mW, 0.02 W/mm².
	Mem32K = Model{Name: "Memory-32kB", MaxPowerW: 15e-3, DensityWmm2: 0.02, RefFreqHz: 100e6}
)

// Interconnect component models. Table 1 does not list interconnect power;
// the paper obtained NoC dimensions "after building a layout" from an
// industrial partner. These values are engineering estimates documented in
// DESIGN.md: a 32-bit 4-in/4-out wormhole switch and the exploration bus.
var (
	// NoCSwitch is a 32-bit 4×4 wormhole switch with output buffering.
	NoCSwitch = Model{Name: "NoC-switch-4x4", MaxPowerW: 40e-3, DensityWmm2: 0.1, RefFreqHz: 100e6}
	// SharedBus is the configurable 32-bit data/address exploration bus.
	SharedBus = Model{Name: "Shared-bus-32", MaxPowerW: 25e-3, DensityWmm2: 0.05, RefFreqHz: 100e6}
)

// Table1 returns the five component models of the paper's Table 1 in
// presentation order.
func Table1() []Model {
	return []Model{ARM7, ARM11, DCache8K2W, ICache8KDM, Mem32K}
}

// AreaMM2 returns the component area implied by its maximum power and power
// density, in mm².
func (m Model) AreaMM2() float64 {
	if m.DensityWmm2 == 0 {
		return 0
	}
	return m.MaxPowerW / m.DensityWmm2
}

// AreaM2 returns the implied area in m².
func (m Model) AreaM2() float64 { return m.AreaMM2() * 1e-6 }

// Power evaluates the run-time dynamic power of the component: the maximum
// power scaled by the activity factor extracted by the sniffers (fraction
// of cycles the component switched) and linearly by clock frequency.
// Activity outside [0,1] is clamped.
func (m Model) Power(activity, freqHz float64) float64 {
	if activity < 0 {
		activity = 0
	} else if activity > 1 {
		activity = 1
	}
	scale := 1.0
	if m.RefFreqHz > 0 {
		scale = freqHz / m.RefFreqHz
	}
	return m.MaxPowerW * activity * scale
}

// Density returns the run-time power density in W/m² for the given activity
// and frequency.
func (m Model) Density(activity, freqHz float64) float64 {
	a := m.AreaM2()
	if a == 0 {
		return 0
	}
	return m.Power(activity, freqHz) / a
}

// String formats the model as a Table 1 row.
func (m Model) String() string {
	return fmt.Sprintf("%-16s %9.4g W @ %.0f MHz  %.3g W/mm²  (%.3g mm²)",
		m.Name, m.MaxPowerW, m.RefFreqHz/1e6, m.DensityWmm2, m.AreaMM2())
}

// LeakageModel adds temperature-dependent static power — the effect the
// paper deliberately ignores at 130 nm but cites as decisive for future
// nodes ([2], [13]: leakage grows with temperature, closing a positive
// feedback loop with the thermal model). Leakage is modelled as a fraction
// of the component's maximum power at the reference temperature, doubling
// every DoubleEveryK kelvin:
//
//	P_leak(T) = FracAtRef · MaxPowerW · 2^((T-RefK)/DoubleEveryK)
type LeakageModel struct {
	FracAtRef    float64 // leakage as a fraction of MaxPowerW at RefK
	RefK         float64 // reference temperature (typically 300 K)
	DoubleEveryK float64
	// CapFrac bounds the leakage at CapFrac·MaxPowerW (0 = default 4x).
	// The exponential law is only valid over the model's calibration
	// range; without a cap a true thermal runaway diverges numerically
	// instead of settling at the physical failure ceiling.
	CapFrac float64
}

// Default130nm returns a mild leakage model consistent with the paper's
// "very limited impact" statement at 130 nm.
func Default130nm() LeakageModel {
	return LeakageModel{FracAtRef: 0.02, RefK: 300, DoubleEveryK: 25, CapFrac: 1}
}

// Default65nm returns an aggressive model for exploring future-node
// behaviour (leakage a quarter of max power at ambient, doubling every
// 20 K).
func Default65nm() LeakageModel {
	return LeakageModel{FracAtRef: 0.25, RefK: 300, DoubleEveryK: 20, CapFrac: 3}
}

// Power evaluates the leakage of component m at temperature tempK.
func (l LeakageModel) Power(m Model, tempK float64) float64 {
	if l.FracAtRef <= 0 || l.DoubleEveryK <= 0 {
		return 0
	}
	p := l.FracAtRef * m.MaxPowerW * math.Exp2((tempK-l.RefK)/l.DoubleEveryK)
	cap := l.CapFrac
	if cap <= 0 {
		cap = 4
	}
	if max := cap * m.MaxPowerW; p > max {
		return max
	}
	return p
}

// DVFSPoint pairs an operating frequency with its minimum supply voltage.
type DVFSPoint struct {
	FreqHz uint64
	Volt   float64
}

// DVFSCurve is a frequency/voltage operating table, ordered by frequency.
// With voltage scaling, dynamic power goes as f·V², so dropping from the
// top to the bottom operating point saves far more than frequency scaling
// alone — the natural extension of the paper's DFS policy.
type DVFSCurve []DVFSPoint

// Default130nmCurve returns a 1.2 V @ 500 MHz ... 0.8 V @ 100 MHz table.
func Default130nmCurve() DVFSCurve {
	return DVFSCurve{
		{FreqHz: 100e6, Volt: 0.8},
		{FreqHz: 200e6, Volt: 0.9},
		{FreqHz: 300e6, Volt: 1.0},
		{FreqHz: 400e6, Volt: 1.1},
		{FreqHz: 500e6, Volt: 1.2},
	}
}

// VoltAt returns the supply voltage for the given frequency: the lowest
// tabulated point at or above it (the highest point when f exceeds the
// table).
func (c DVFSCurve) VoltAt(freqHz uint64) float64 {
	if len(c) == 0 {
		return 1
	}
	for _, p := range c {
		if freqHz <= p.FreqHz {
			return p.Volt
		}
	}
	return c[len(c)-1].Volt
}

// PowerDVFS evaluates dynamic power with both frequency and quadratic
// voltage scaling relative to the curve's top operating point.
func (m Model) PowerDVFS(activity float64, freqHz float64, curve DVFSCurve) float64 {
	p := m.Power(activity, freqHz)
	if len(curve) == 0 {
		return p
	}
	vTop := curve[len(curve)-1].Volt
	v := curve.VoltAt(uint64(freqHz))
	return p * (v * v) / (vTop * vTop)
}
