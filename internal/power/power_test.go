package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1Values(t *testing.T) {
	// The exact rows of the paper's Table 1.
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	check := func(m Model, watts, density, ref float64) {
		t.Helper()
		if m.MaxPowerW != watts || m.DensityWmm2 != density {
			t.Errorf("%s: %g W / %g W/mm², want %g / %g", m.Name, m.MaxPowerW, m.DensityWmm2, watts, density)
		}
		if m.RefFreqHz != ref {
			t.Errorf("%s: ref freq %g, want %g", m.Name, m.RefFreqHz, ref)
		}
	}
	check(ARM7, 5.5e-3, 0.03, 100e6)
	// The ARM11's "(Max)" rating anchors at its 500 MHz operating point.
	check(ARM11, 1.5, 0.5, 500e6)
	check(DCache8K2W, 43e-3, 0.012, 100e6)
	check(ICache8KDM, 11e-3, 0.03, 100e6)
	check(Mem32K, 15e-3, 0.02, 100e6)
}

func TestImpliedAreas(t *testing.T) {
	if a := ARM11.AreaMM2(); math.Abs(a-3.0) > 1e-12 {
		t.Errorf("ARM11 area = %g mm², want 3", a)
	}
	if a := Mem32K.AreaMM2(); math.Abs(a-0.75) > 1e-12 {
		t.Errorf("Mem32K area = %g mm², want 0.75", a)
	}
	if a := ARM7.AreaM2(); math.Abs(a-5.5e-3/0.03*1e-6) > 1e-18 {
		t.Errorf("ARM7 area m² = %g", a)
	}
	if (Model{}).AreaMM2() != 0 {
		t.Error("zero model area should be 0")
	}
}

func TestActivityScaling(t *testing.T) {
	// Full activity at reference frequency gives max power.
	if p := ARM7.Power(1.0, 100e6); p != 5.5e-3 {
		t.Errorf("max power = %g", p)
	}
	// Half activity halves power; 5x frequency multiplies by 5.
	if p := ARM7.Power(0.5, 500e6); math.Abs(p-5.5e-3*2.5) > 1e-15 {
		t.Errorf("scaled power = %g", p)
	}
	// Idle component burns nothing (leakage ignored per the paper).
	if p := ARM11.Power(0, 500e6); p != 0 {
		t.Errorf("idle power = %g", p)
	}
}

func TestActivityClamping(t *testing.T) {
	if p := ARM7.Power(-0.5, 100e6); p != 0 {
		t.Errorf("negative activity gave %g", p)
	}
	if p := ARM7.Power(1.5, 100e6); p != 5.5e-3 {
		t.Errorf("activity > 1 gave %g", p)
	}
}

func TestDensityConsistentWithPower(t *testing.T) {
	d := ARM11.Density(1.0, 500e6)
	want := ARM11.MaxPowerW / ARM11.AreaM2()
	if math.Abs(d-want)/want > 1e-12 {
		t.Errorf("density = %g, want %g", d, want)
	}
	// At max activity and reference frequency it equals the Table 1
	// density (in W/m²).
	if math.Abs(d-0.5e6) > 1e-6 {
		t.Errorf("ARM11 density = %g W/m², want 5e5", d)
	}
}

// Property: power is monotone in activity and frequency, and never negative.
func TestPowerMonotoneQuick(t *testing.T) {
	f := func(a1, a2, f1, f2 uint16) bool {
		act1, act2 := float64(a1)/65535, float64(a2)/65535
		fr1, fr2 := float64(f1)*1e4, float64(f2)*1e4
		p11 := ARM11.Power(act1, fr1)
		if p11 < 0 {
			return false
		}
		if act2 >= act1 && ARM11.Power(act2, fr1) < p11 {
			return false
		}
		if fr2 >= fr1 && ARM11.Power(act1, fr2) < p11 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	s := ARM7.String()
	if !strings.Contains(s, "ARM7") || !strings.Contains(s, "mm²") {
		t.Errorf("String() = %q", s)
	}
}

func TestLeakageModel(t *testing.T) {
	l := Default130nm()
	// At the reference temperature: the configured fraction.
	if got := l.Power(ARM11, 300); math.Abs(got-0.02*1.5) > 1e-12 {
		t.Errorf("leakage at 300 K = %g", got)
	}
	// One doubling interval hotter: exactly twice.
	if got := l.Power(ARM11, 325); math.Abs(got-2*0.02*1.5) > 1e-12 {
		t.Errorf("leakage at 325 K = %g", got)
	}
	// Cooler than reference: less than the base fraction.
	if got := l.Power(ARM11, 280); got >= 0.02*1.5 {
		t.Errorf("leakage at 280 K = %g not reduced", got)
	}
	// Zero model leaks nothing.
	if got := (LeakageModel{}).Power(ARM11, 400); got != 0 {
		t.Errorf("zero model leaked %g", got)
	}
	// The aggressive model dominates dynamic power when hot.
	hot := Default65nm().Power(ARM11, 380)
	if hot <= ARM11.MaxPowerW {
		t.Errorf("65nm leakage at 380 K = %g, expected thermal-runaway territory", hot)
	}
}

// Property: leakage is monotone in temperature.
func TestLeakageMonotoneQuick(t *testing.T) {
	l := Default65nm()
	f := func(a, b uint16) bool {
		t1 := 280 + float64(a%200)
		t2 := 280 + float64(b%200)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return l.Power(ARM7, t1) <= l.Power(ARM7, t2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSCurve(t *testing.T) {
	c := Default130nmCurve()
	if v := c.VoltAt(100e6); v != 0.8 {
		t.Errorf("V(100MHz) = %v", v)
	}
	if v := c.VoltAt(500e6); v != 1.2 {
		t.Errorf("V(500MHz) = %v", v)
	}
	if v := c.VoltAt(250e6); v != 1.0 {
		t.Errorf("V(250MHz) = %v, want next point up", v)
	}
	if v := c.VoltAt(900e6); v != 1.2 {
		t.Errorf("V beyond table = %v", v)
	}
	if v := (DVFSCurve{}).VoltAt(1e6); v != 1 {
		t.Errorf("empty curve voltage = %v", v)
	}
}

func TestPowerDVFSQuadraticSavings(t *testing.T) {
	c := Default130nmCurve()
	top := ARM11.PowerDVFS(1, 500e6, c)
	if math.Abs(top-ARM11.MaxPowerW) > 1e-12 {
		t.Errorf("top operating point = %g, want max power", top)
	}
	// At 100 MHz: frequency alone gives 1/5; voltage adds (0.8/1.2)^2.
	low := ARM11.PowerDVFS(1, 100e6, c)
	want := ARM11.MaxPowerW / 5 * (0.8 * 0.8) / (1.2 * 1.2)
	if math.Abs(low-want) > 1e-12 {
		t.Errorf("low operating point = %g, want %g", low, want)
	}
	// DVFS saves strictly more than DFS alone.
	if dfsOnly := ARM11.Power(1, 100e6); low >= dfsOnly {
		t.Errorf("DVFS (%g) not below DFS-only (%g)", low, dfsOnly)
	}
}

func TestLeakageCapBoundsRunaway(t *testing.T) {
	l := Default65nm()
	// Far beyond the calibration range the model saturates at the cap
	// instead of diverging.
	if got := l.Power(ARM11, 10000); got != 3*ARM11.MaxPowerW {
		t.Errorf("capped leakage = %g, want %g", got, 3*ARM11.MaxPowerW)
	}
	// Default cap is 4x when unset.
	uncapped := LeakageModel{FracAtRef: 0.5, RefK: 300, DoubleEveryK: 10}
	if got := uncapped.Power(ARM7, 1000); got != 4*ARM7.MaxPowerW {
		t.Errorf("default cap = %g, want %g", got, 4*ARM7.MaxPowerW)
	}
}
