package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"thermemu/internal/core"
	"thermemu/internal/golden"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden scenario digest files")

// scenariosDir is the committed example corpus, relative to this package.
const scenariosDir = "../../examples/scenarios"

// conformanceMaxCycles caps runaway scenarios; every committed example
// halts far below it.
const conformanceMaxCycles = 20_000_000

func exampleScenarios(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example scenarios under %s", scenariosDir)
	}
	sort.Strings(paths)
	return paths
}

// TestScenarioConformance lints and runs every committed example scenario
// end to end — platform, workload, thermal loop, policy — and holds its
// golden digest to the committed value. Regenerate after an intentional
// behavioural change with:
//
//	go test ./internal/scenario/ -run TestScenarioConformance -update
func TestScenarioConformance(t *testing.T) {
	for _, path := range exampleScenarios(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".scn")
		t.Run(name, func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := s.CoEmulation()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Golden = golden.New()
			cfg.MaxCycles = conformanceMaxCycles
			res, err := core.Run(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done {
				t.Fatalf("scenario did not halt within %d cycles", uint64(conformanceMaxCycles))
			}
			line := fmt.Sprintf("%s %d\n", cfg.Golden.Hex(), cfg.Golden.Len())
			goldenPath := filepath.Join("testdata", "golden", name+".digest")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(line), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %s", goldenPath, line)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if string(want) != line {
				t.Errorf("scenario digest drift (%s kernel):\n  got  %s  want %s",
					kernelName(s), line, want)
			}
		})
	}
}

// kernelName names the execution kernel a scenario's platform flags select,
// so a digest drift report says which kernel produced the mismatch.
func kernelName(s *Scenario) string {
	k := "serial"
	switch {
	case s.Speculate:
		k = "speculative"
	case s.Parallel:
		k = "parallel"
	}
	if s.Blocks {
		return k + "+blocks"
	}
	return k + "+interp"
}

// TestScenarioExamplesRoundTrip holds every committed example to the
// canonical round-trip invariant — the files stay loadable through a
// render/reparse cycle with nothing lost.
func TestScenarioExamplesRoundTrip(t *testing.T) {
	for _, path := range exampleScenarios(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		s2, err := Parse(s1.Render())
		if err != nil {
			t.Fatalf("%s: reparse of render: %v", path, err)
		}
		if s1.Render() != s2.Render() {
			t.Errorf("%s: render is not a fixed point", path)
		}
	}
}
