package scenario

import (
	"reflect"
	"testing"
)

// FuzzScenarioParse holds the parser to its two contracts: malformed input
// — truncated files, duplicate keys, binary garbage — errors cleanly
// instead of panicking, and any input the parser accepts survives a
// render/reparse round trip unchanged.
func FuzzScenarioParse(f *testing.F) {
	f.Add("")
	f.Add(Header)
	f.Add(Header + "\n[platform]\ncores = 4\nic = noc:ring:4\n")
	f.Add(Header + "\n[workload]\nname = fir\nwords = 32\n")
	f.Add(Header + "\n[program]\n\taddi r1, r0, 1\n\thalt\n")
	f.Add(Header + "\n[program 0]\nhalt\n[program 1]\nhalt\n")
	f.Add(Header + "\n[shared]\n0x8000 = 1 2 3\n")
	f.Add(Header + "\n[thermal]\nwindow-ms = 0.25\n[tm]\npolicy = threshold-dfs\n")
	f.Add(Header + "\n[fault]\nspec = drop=0.1\nseed = 3\n")
	f.Add(fullFile)
	f.Add(Header + "\n[platform]\ncores = 2\ncores = 2\n")
	f.Add("thermemu-scenario v9\n")
	f.Add(Header + "\n[platform\ncores")
	f.Add(Header + "\n[scenario]\nname = a # b\n")
	f.Fuzz(func(t *testing.T, src string) {
		s1, err := Parse(src)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		rendered := s1.Render()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted input renders unparsable: %v\ninput: %q\nrender:\n%s", err, src, rendered)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip changed the scenario\ninput: %q\nfirst:  %+v\nsecond: %+v", src, s1, s2)
		}
		// Canonical form is a fixed point: rendering the reparse is identical.
		if r2 := s2.Render(); r2 != rendered {
			t.Fatalf("render is not canonical\nfirst:\n%s\nsecond:\n%s", rendered, r2)
		}
	})
}
