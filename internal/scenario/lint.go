package scenario

import (
	"errors"
	"fmt"
	"sort"

	"thermemu/internal/workloads"
)

// Lint validates a scenario without running it. It collects every problem
// it can find — unknown workload/policy/floorplan/interconnect names,
// non-positive platform or thermal parameters, programs that overrun
// private memory, shared-memory blocks that overlap each other or fall
// outside shared memory, program counts that disagree with the core count,
// unparsable fault specs — and returns them joined, so a broken file
// reports all its faults in one pass.
func (s *Scenario) Lint() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if s.Cores < 1 {
		fail("platform: cores must be at least 1, got %d", s.Cores)
	}
	if _, _, err := parseIC(s.IC); err != nil {
		fail("platform: %v", err)
	}
	if s.FreqMHz < 0 {
		fail("platform: freq-mhz must be non-negative, got %d", s.FreqMHz)
	}
	if s.PrivKB < 1 {
		fail("platform: priv-kb must be at least 1, got %d", s.PrivKB)
	}
	if s.SharedKB < 1 {
		fail("platform: shared-kb must be at least 1, got %d", s.SharedKB)
	}
	if s.Speculate && !s.Parallel {
		fail("platform: speculate requires parallel = true")
	}

	if _, ok := floorplans[s.Floorplan]; !ok {
		fail("thermal: unknown floorplan %q (want arm7 | arm11)", s.Floorplan)
	}
	if s.Cells < 1 {
		fail("thermal: cells must be at least 1, got %d", s.Cells)
	}
	if !(s.WindowMs > 0) {
		fail("thermal: window-ms must be positive, got %v", s.WindowMs)
	}
	if !(s.Timescale > 0) {
		fail("thermal: timescale must be positive, got %v", s.Timescale)
	}
	if s.Pipeline < 0 {
		fail("thermal: pipeline must be non-negative, got %d", s.Pipeline)
	}
	if s.Workers < 0 {
		fail("thermal: workers must be non-negative, got %d", s.Workers)
	}

	if _, ok := policies[s.Policy]; !ok {
		fail("tm: unknown policy %q (want none | proportional-dfs | threshold-dfs)", s.Policy)
	}

	if s.Workload != "" {
		if _, ok := workloads.Lookup(s.Workload); !ok {
			fail("workload: unknown workload %q (want %s)", s.Workload, workloads.NamesHelp())
		}
	}

	if s.Fault != "" {
		if _, err := s.FaultConfig(); err != nil {
			fail("fault: %v", err)
		}
	}

	// The deep checks need a buildable workload; skip them if the shallow
	// checks already doomed the platform parameters the build depends on.
	if s.Cores >= 1 && s.PrivKB >= 1 && s.SharedKB >= 1 {
		if err := s.lintWorkload(fail); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Warnings reports lint findings that do not invalidate the scenario but
// usually mean lost evidence. The only rule so far: a [fault] spec with TM
// off and no digest — the run injects link faults, yet records neither the
// policy's reaction nor a conformance digest, so a silently-corrupted run
// is indistinguishable from a clean one.
func (s *Scenario) Warnings() []string {
	var ws []string
	if s.Fault != "" && s.Policy == "none" && !s.Digest {
		ws = append(ws, fmt.Sprintf(
			"fault spec %q with tm policy off and no digest: nothing records whether the faulty link corrupted the run; set digest = true in [scenario] (or a [tm] policy) to keep chaos-run evidence", s.Fault))
	}
	return ws
}

// lintWorkload builds the workload spec and checks its address map against
// the platform's memories: one program per core, every program image inside
// private memory, every shared block word-aligned, inside shared memory and
// non-overlapping.
func (s *Scenario) lintWorkload(fail func(string, ...any)) error {
	spec, err := s.Spec()
	if err != nil {
		return err
	}
	if len(spec.Programs) != s.Cores {
		fail("workload %q provides %d programs for a %d-core platform", spec.Name, len(spec.Programs), s.Cores)
	}
	privBytes := uint32(s.PrivKB) * 1024
	for c, im := range spec.Programs {
		if im == nil {
			fail("workload %q: core %d has no program", spec.Name, c)
			continue
		}
		if end := im.End(); end > privBytes {
			fail("workload %q: core %d program ends at %#x, beyond the %d KB private memory", spec.Name, c, end, s.PrivKB)
		}
	}

	type span struct {
		lo, hi uint32 // [lo, hi) byte range in shared memory
	}
	sharedBytes := uint32(s.SharedKB) * 1024
	spans := make([]span, 0, len(spec.Shared))
	for _, blk := range spec.Shared {
		if blk.Addr%4 != 0 {
			fail("shared block at %#x is not word-aligned", blk.Addr)
		}
		end := uint64(blk.Addr) + uint64(len(blk.Data))
		if end > uint64(sharedBytes) {
			fail("shared block [%#x, %#x) falls outside the %d KB shared memory", blk.Addr, end, s.SharedKB)
			continue
		}
		spans = append(spans, span{blk.Addr, uint32(end)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			fail("shared blocks overlap: [%#x, %#x) collides with [%#x, %#x)",
				spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
	return nil
}
