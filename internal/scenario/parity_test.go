package scenario

import (
	"fmt"
	"testing"

	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/floorplan"
	"thermemu/internal/golden"
	"thermemu/internal/noc"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// digestOf runs one closed-loop configuration to completion and returns
// its golden digest line.
func digestOf(t *testing.T, cfg core.Config) string {
	t.Helper()
	cfg.Golden = golden.New()
	cfg.MaxCycles = conformanceMaxCycles
	res, err := core.Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not halt")
	}
	return fmt.Sprintf("%s %d", cfg.Golden.Hex(), cfg.Golden.Len())
}

// TestScenarioMatchesFlagDrivenRun is the bit-identity acceptance claim:
// a scenario file and the cmd/thermemu flag plumbing it replaces build
// configurations whose runs digest identically. The flag side below is a
// line-by-line replica of cmd/thermemu's construction order.
func TestScenarioMatchesFlagDrivenRun(t *testing.T) {
	cases := []struct {
		name string
		scn  string
		// flags mirrors: -cores -workload -n -iters -size -words -ic -noc
		// -freq -blocks -tm -window -timescale -cells
		cfg func(t *testing.T) core.Config
	}{
		{
			name: "matrix-opb",
			scn: Header + `
[platform]
cores = 4
[workload]
name = matrix
n = 8
iters = 2
`,
			cfg: func(t *testing.T) core.Config {
				return flagConfig(t, flagSet{cores: 4, workload: "matrix", n: 8, iters: 2})
			},
		},
		{
			// -freq 100 loses to matrix-tm's pinned 500 MHz operating point
			// on both sides.
			name: "matrix-tm-forced-freq",
			scn: Header + `
[platform]
cores = 4
ic = noc:ring:4
freq-mhz = 100
[workload]
name = matrix-tm
n = 8
iters = 2
[tm]
policy = threshold-dfs
`,
			cfg: func(t *testing.T) core.Config {
				return flagConfig(t, flagSet{cores: 4, workload: "matrix-tm", n: 8, iters: 2,
					ic: "noc", nocSpec: "ring:4", freqMHz: 100, withTM: true})
			},
		},
		{
			name: "fir-blocks-plb",
			scn: Header + `
[platform]
cores = 4
ic = plb
blocks = true
[workload]
name = fir
n = 8
words = 32
iters = 2
`,
			cfg: func(t *testing.T) core.Config {
				return flagConfig(t, flagSet{cores: 4, workload: "fir", n: 8, words: 32, iters: 2,
					ic: "plb", blocks: true})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse(tc.scn)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Lint(); err != nil {
				t.Fatal(err)
			}
			scfg, err := s.CoEmulation()
			if err != nil {
				t.Fatal(err)
			}
			got := digestOf(t, scfg)
			want := digestOf(t, tc.cfg(t))
			if got != want {
				t.Errorf("scenario digest %s differs from flag-driven digest %s", got, want)
			}
		})
	}
}

// flagSet carries the cmd/thermemu flag values the parity cases exercise;
// zero values are the CLI defaults.
type flagSet struct {
	cores            int
	workload         string
	n, iters, size   int
	words            int
	ic, nocSpec      string
	freqMHz          int
	blocks, withTM   bool
	windowMs, tscale float64
	cells            int
}

// flagConfig replicates cmd/thermemu's run() construction order exactly.
func flagConfig(t *testing.T, f flagSet) core.Config {
	t.Helper()
	if f.ic == "" {
		f.ic = "opb"
	}
	if f.n == 0 {
		f.n = 16
	}
	if f.iters == 0 {
		f.iters = 10
	}
	if f.size == 0 {
		f.size = 64
	}
	if f.words == 0 {
		f.words = 64
	}
	if f.windowMs == 0 {
		f.windowMs = 1.0
	}
	if f.tscale == 0 {
		f.tscale = 100
	}
	if f.cells == 0 {
		f.cells = 28
	}
	pcfg := emu.DefaultConfig(f.cores)
	switch f.ic {
	case "opb":
		pcfg.IC = emu.ICBusOPB
	case "plb":
		pcfg.IC = emu.ICBusPLB
	case "noc":
		pcfg.IC = emu.ICNoC
		topo, err := noc.ParseTopology(f.nocSpec)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < f.cores; c++ {
			topo.Attach(c, c%topo.Switches)
		}
		pcfg.NoC = &emu.NoCSpec{Topo: topo, Cfg: noc.DefaultConfig(), MemSwitch: topo.Switches - 1}
	default:
		t.Fatalf("unknown interconnect %q", f.ic)
	}
	if f.freqMHz > 0 {
		pcfg.FreqHz = uint64(f.freqMHz) * 1e6
	}
	spec, err := workloads.Build(f.workload, workloads.Params{
		Cores: f.cores, PrivKB: pcfg.PrivKB, N: f.n, Iters: f.iters, Size: f.size, Words: f.words,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := workloads.Lookup(f.workload); b.ForceFreqMHz > 0 {
		pcfg.FreqHz = uint64(b.ForceFreqMHz) * 1e6
	}
	pcfg.Blocks = f.blocks
	host, err := core.NewThermalHost(floorplan.FourARM11(), f.cells, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Platform:         pcfg,
		Workload:         spec,
		Host:             host,
		WindowPs:         uint64(f.windowMs * 1e9),
		ThermalTimeScale: f.tscale,
	}
	if f.withTM {
		cfg.Policy = tm.NewThresholdDFS()
	}
	return cfg
}
