package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a scenario from its text form. The parser is strict:
// malformed lines, unknown sections or keys, duplicate keys, truncated
// headers and out-of-range numbers are all errors — never panics — and
// every error carries its line number. Fields not present in the file keep
// the New() defaults, so Parse(Header) is exactly New() and
// load → Render → load is the identity on valid files.
func Parse(src string) (*Scenario, error) {
	s := New()
	p := &parser{s: s}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return s, nil
}

type parser struct {
	s *Scenario

	section  string          // current key-value section name, "" outside
	seenSec  map[string]bool // key-value sections already closed
	seenKey  map[string]bool // section-qualified keys already set
	seenAddr map[uint32]bool // [shared] block addresses

	program     *Program // program section being accumulated, nil outside
	programAll  bool     // a [program] (all-cores) section exists
	programPer  bool     // a [program N] section exists
	programSeen map[int]bool
	workloadSec bool // a [workload] section appeared
}

func (p *parser) run(src string) error {
	p.seenSec = map[string]bool{}
	p.seenKey = map[string]bool{}
	p.seenAddr = map[uint32]bool{}
	p.programSeen = map[int]bool{}

	lines := strings.Split(src, "\n")
	header := false
	for i, raw := range lines {
		no := i + 1
		if p.program != nil && !isSection(raw) {
			p.program.Src += raw + "\n"
			continue
		}
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		if !header {
			if line != Header {
				return fmt.Errorf("line %d: not a scenario file: first line must be %q, got %q", no, Header, line)
			}
			header = true
			continue
		}
		switch {
		case isSection(raw):
			if err := p.closeProgram(); err != nil {
				return fmt.Errorf("line %d: %w", no, err)
			}
			if err := p.openSection(line); err != nil {
				return fmt.Errorf("line %d: %w", no, err)
			}
		default:
			if err := p.keyValue(line); err != nil {
				return fmt.Errorf("line %d: %w", no, err)
			}
		}
	}
	if !header {
		return fmt.Errorf("empty scenario: missing %q header", Header)
	}
	if err := p.closeProgram(); err != nil {
		return err
	}
	if len(p.s.Programs) > 0 {
		if p.workloadSec {
			return fmt.Errorf("scenario has both a [workload] section and inline [program] sections")
		}
		p.s.Workload = ""
	}
	return nil
}

// isSection reports whether the raw line opens a section. Program bodies
// are terminated by any line whose first non-blank character is '[', so
// the check runs on the raw line before comment stripping.
func isSection(raw string) bool {
	t := strings.TrimSpace(raw)
	return strings.HasPrefix(t, "[")
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

// kvSections lists the key-value sections and their accepted keys.
var kvSections = map[string][]string{
	"scenario": {"name", "digest"},
	"platform": {"cores", "ic", "freq-mhz", "priv-kb", "shared-kb", "blocks", "parallel", "speculate"},
	"workload": {"name", "n", "iters", "size", "words"},
	"thermal":  {"floorplan", "cells", "window-ms", "timescale", "pipeline", "workers"},
	"tm":       {"policy"},
	"fault":    {"spec", "seed"},
	"shared":   nil, // keys are addresses
}

func (p *parser) openSection(line string) error {
	if !strings.HasSuffix(line, "]") {
		return fmt.Errorf("malformed section header %q", line)
	}
	name := strings.TrimSpace(line[1 : len(line)-1])
	if name == "program" || strings.HasPrefix(name, "program ") {
		return p.openProgram(name)
	}
	if _, ok := kvSections[name]; !ok {
		return fmt.Errorf("unknown section [%s]", name)
	}
	if p.seenSec[name] {
		return fmt.Errorf("duplicate section [%s]", name)
	}
	p.seenSec[name] = true
	p.section = name
	if name == "workload" {
		p.workloadSec = true
	}
	return nil
}

func (p *parser) openProgram(name string) error {
	core := -1
	if rest := strings.TrimSpace(strings.TrimPrefix(name, "program")); rest != "" {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("malformed program section [%s]: want [program] or [program N]", name)
		}
		core = n
	}
	if core < 0 {
		if p.programAll {
			return fmt.Errorf("duplicate [program] section")
		}
		p.programAll = true
	} else {
		if p.programSeen[core] {
			return fmt.Errorf("duplicate [program %d] section", core)
		}
		p.programSeen[core] = true
		p.programPer = true
	}
	if p.programAll && p.programPer {
		return fmt.Errorf("mix of [program] (all cores) and per-core [program N] sections")
	}
	p.section = ""
	p.program = &Program{Core: core}
	return nil
}

func (p *parser) closeProgram() error {
	if p.program == nil {
		return nil
	}
	pr := *p.program
	p.program = nil
	pr.Src = strings.Trim(pr.Src, "\n")
	if strings.TrimSpace(pr.Src) == "" {
		if pr.Core >= 0 {
			return fmt.Errorf("[program %d] section is empty", pr.Core)
		}
		return fmt.Errorf("[program] section is empty")
	}
	p.s.Programs = append(p.s.Programs, pr)
	return nil
}

func (p *parser) keyValue(line string) error {
	if p.section == "" {
		return fmt.Errorf("%q outside any section", line)
	}
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("malformed line %q: want key = value", line)
	}
	key := strings.TrimSpace(line[:eq])
	val := strings.TrimSpace(line[eq+1:])
	if key == "" {
		return fmt.Errorf("malformed line %q: empty key", line)
	}
	if p.section == "shared" {
		return p.sharedBlock(key, val)
	}
	known := false
	for _, k := range kvSections[p.section] {
		if k == key {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown key %q in [%s]", key, p.section)
	}
	qual := p.section + "." + key
	if p.seenKey[qual] {
		return fmt.Errorf("duplicate key %q in [%s]", key, p.section)
	}
	p.seenKey[qual] = true
	if val == "" {
		return fmt.Errorf("key %q in [%s] has no value", key, p.section)
	}
	return p.assign(qual, val)
}

func (p *parser) sharedBlock(key, val string) error {
	addr64, err := strconv.ParseUint(key, 0, 32)
	if err != nil {
		return fmt.Errorf("[shared] address %q: %v", key, err)
	}
	addr := uint32(addr64)
	if p.seenAddr[addr] {
		return fmt.Errorf("duplicate [shared] block at 0x%x", addr)
	}
	p.seenAddr[addr] = true
	fields := strings.Fields(val)
	if len(fields) == 0 {
		return fmt.Errorf("[shared] block at 0x%x has no words", addr)
	}
	ws := make([]uint32, len(fields))
	for i, f := range fields {
		w, err := strconv.ParseUint(f, 0, 32)
		if err != nil {
			return fmt.Errorf("[shared] block at 0x%x word %d: %v", addr, i, err)
		}
		ws[i] = uint32(w)
	}
	p.s.Shared = append(p.s.Shared, SharedWords{Addr: addr, Words: ws})
	return nil
}

// assign routes one parsed key to its scenario field.
func (p *parser) assign(qual, val string) error {
	s := p.s
	switch qual {
	case "scenario.name":
		s.Name = val
	case "scenario.digest":
		return parseBool(&s.Digest, qual, val)
	case "platform.cores":
		return parseInt(&s.Cores, qual, val)
	case "platform.ic":
		s.IC = val
	case "platform.freq-mhz":
		return parseInt(&s.FreqMHz, qual, val)
	case "platform.priv-kb":
		return parseInt(&s.PrivKB, qual, val)
	case "platform.shared-kb":
		return parseInt(&s.SharedKB, qual, val)
	case "platform.blocks":
		return parseBool(&s.Blocks, qual, val)
	case "platform.parallel":
		return parseBool(&s.Parallel, qual, val)
	case "platform.speculate":
		return parseBool(&s.Speculate, qual, val)
	case "workload.name":
		s.Workload = val
	case "workload.n":
		return parseInt(&s.N, qual, val)
	case "workload.iters":
		return parseInt(&s.Iters, qual, val)
	case "workload.size":
		return parseInt(&s.Size, qual, val)
	case "workload.words":
		return parseInt(&s.Words, qual, val)
	case "thermal.floorplan":
		s.Floorplan = val
	case "thermal.cells":
		return parseInt(&s.Cells, qual, val)
	case "thermal.window-ms":
		return parseFloat(&s.WindowMs, qual, val)
	case "thermal.timescale":
		return parseFloat(&s.Timescale, qual, val)
	case "thermal.pipeline":
		return parseInt(&s.Pipeline, qual, val)
	case "thermal.workers":
		return parseInt(&s.Workers, qual, val)
	case "tm.policy":
		s.Policy = val
	case "fault.spec":
		s.Fault = val
	case "fault.seed":
		n, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return fmt.Errorf("%s: %v", qual, err)
		}
		s.FaultSeed = n
	default:
		return fmt.Errorf("unhandled key %s", qual) // unreachable: kvSections gates keys
	}
	return nil
}

func parseInt(dst *int, qual, val string) error {
	n, err := strconv.ParseInt(val, 0, 32)
	if err != nil {
		return fmt.Errorf("%s: %v", qual, err)
	}
	*dst = int(n)
	return nil
}

func parseBool(dst *bool, qual, val string) error {
	switch val {
	case "true", "on", "yes", "1":
		*dst = true
	case "false", "off", "no", "0":
		*dst = false
	default:
		return fmt.Errorf("%s: invalid boolean %q", qual, val)
	}
	return nil
}

func parseFloat(dst *float64, qual, val string) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("%s: %v", qual, err)
	}
	if f != f || f > 1e300 || f < -1e300 {
		return fmt.Errorf("%s: non-finite value %q", qual, val)
	}
	*dst = f
	return nil
}
