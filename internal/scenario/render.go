package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Render writes the scenario in canonical form: every key written
// explicitly (defaults included), sections in a fixed order, numbers in
// their shortest form and shared words in hex. Parse(s.Render()) is
// guaranteed to reproduce s for any scenario that came out of Parse, which
// is the round-trip invariant the fuzzer holds the parser to.
func (s *Scenario) Render() string {
	var b strings.Builder
	b.WriteString(Header + "\n")
	if s.Name != "" || s.Digest {
		b.WriteString("\n[scenario]\n")
		if s.Name != "" {
			fmt.Fprintf(&b, "name = %s\n", s.Name)
		}
		if s.Digest {
			fmt.Fprintf(&b, "digest = %t\n", s.Digest)
		}
	}
	b.WriteString("\n[platform]\n")
	fmt.Fprintf(&b, "cores = %d\n", s.Cores)
	fmt.Fprintf(&b, "ic = %s\n", s.IC)
	fmt.Fprintf(&b, "freq-mhz = %d\n", s.FreqMHz)
	fmt.Fprintf(&b, "priv-kb = %d\n", s.PrivKB)
	fmt.Fprintf(&b, "shared-kb = %d\n", s.SharedKB)
	fmt.Fprintf(&b, "blocks = %t\n", s.Blocks)
	fmt.Fprintf(&b, "parallel = %t\n", s.Parallel)
	fmt.Fprintf(&b, "speculate = %t\n", s.Speculate)
	if len(s.Programs) == 0 {
		b.WriteString("\n[workload]\n")
		fmt.Fprintf(&b, "name = %s\n", s.Workload)
		fmt.Fprintf(&b, "n = %d\n", s.N)
		fmt.Fprintf(&b, "iters = %d\n", s.Iters)
		fmt.Fprintf(&b, "size = %d\n", s.Size)
		fmt.Fprintf(&b, "words = %d\n", s.Words)
	}
	for _, p := range s.Programs {
		if p.Core < 0 {
			b.WriteString("\n[program]\n")
		} else {
			fmt.Fprintf(&b, "\n[program %d]\n", p.Core)
		}
		b.WriteString(strings.Trim(p.Src, "\n") + "\n")
	}
	if len(s.Shared) > 0 {
		b.WriteString("\n[shared]\n")
		for _, blk := range s.Shared {
			fmt.Fprintf(&b, "0x%x =", blk.Addr)
			for _, w := range blk.Words {
				fmt.Fprintf(&b, " 0x%x", w)
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\n[thermal]\n")
	fmt.Fprintf(&b, "floorplan = %s\n", s.Floorplan)
	fmt.Fprintf(&b, "cells = %d\n", s.Cells)
	fmt.Fprintf(&b, "window-ms = %s\n", strconv.FormatFloat(s.WindowMs, 'g', -1, 64))
	fmt.Fprintf(&b, "timescale = %s\n", strconv.FormatFloat(s.Timescale, 'g', -1, 64))
	fmt.Fprintf(&b, "pipeline = %d\n", s.Pipeline)
	fmt.Fprintf(&b, "workers = %d\n", s.Workers)
	b.WriteString("\n[tm]\n")
	fmt.Fprintf(&b, "policy = %s\n", s.Policy)
	if s.Fault != "" || s.FaultSeed != 1 {
		b.WriteString("\n[fault]\n")
		if s.Fault != "" {
			fmt.Fprintf(&b, "spec = %s\n", s.Fault)
		}
		fmt.Fprintf(&b, "seed = %d\n", s.FaultSeed)
	}
	return b.String()
}
