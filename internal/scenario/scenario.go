// Package scenario is the declarative front-end of the framework: a
// versioned text format that describes a complete emulation run — platform
// (cores, interconnect, frequency, memories), workload (a named corpus
// entry or inline R32 assembly), thermal configuration (floorplan, cell
// count, sampling window, pipeline depth), TM policy and an optional link
// fault spec — plus a strict parser, a canonical renderer, a validating
// linter and builders that turn a scenario into the same emu/core
// configurations the CLI flags produce, bit for bit.
//
// A scenario file looks like:
//
//	thermemu-scenario v1
//
//	[scenario]
//	name = table3-matrix
//
//	[platform]
//	cores = 4
//	ic = noc:ring:4
//	freq-mhz = 500
//
//	[workload]
//	name = matrix
//	n = 16
//	iters = 100
//
//	[tm]
//	policy = threshold-dfs
//
// Scenarios make new experiments data files instead of Go changes: every
// flag combination of cmd/thermemu is expressible, and the conformance
// tier proves a scenario-driven run digests identically to its flag-driven
// twin.
package scenario

import (
	"fmt"
	"os"

	"thermemu/internal/asm"
	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/noc"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// Version is the scenario format version this package reads and writes.
const Version = 1

// Header is the first non-comment line of every scenario file.
const Header = "thermemu-scenario v1"

// Program is one inline R32 assembly program. Core -1 means "all cores"
// (the [program] section); a non-negative core index comes from a
// [program N] section and applies to that core only.
type Program struct {
	Core int
	Src  string
}

// SharedWords is one initial shared-memory block, word-granular.
type SharedWords struct {
	Addr  uint32 // byte offset within shared memory, word-aligned
	Words []uint32
}

// Scenario is one fully-described run. The zero value is not runnable;
// Parse and Load return scenarios with all defaults applied, and New
// returns the default scenario to build on programmatically.
type Scenario struct {
	Name string
	// Digest asks the runner to accumulate the golden conformance digest
	// (the -digest flag in scenario form), pinning the run's evidence to
	// the file that describes it.
	Digest bool

	// [platform]
	Cores    int
	IC       string // opb | plb | custom | noc:pair | noc:mesh:WxH | noc:ring:N
	FreqMHz  int    // 0 = platform default (workloads may force their own)
	PrivKB   int
	SharedKB int
	Blocks   bool
	Parallel bool
	// Speculate selects the speculative shared-path kernel (requires
	// Parallel; results stay bit-identical to the serial kernel).
	Speculate bool

	// [workload] — a named corpus workload with its parameters...
	Workload string
	N        int
	Iters    int
	Size     int
	Words    int

	// ...or inline assembly ([program] / [program N] sections).
	Programs []Program

	// [shared] — extra initial shared-memory words.
	Shared []SharedWords

	// [thermal]
	Floorplan string // arm7 | arm11
	Cells     int
	WindowMs  float64
	Timescale float64
	Pipeline  int
	Workers   int

	// [tm]
	Policy string // none | threshold-dfs | proportional-dfs

	// [fault]
	Fault     string
	FaultSeed int64
}

// New returns a scenario with every field at its default — the same
// defaults the cmd/thermemu flags carry, so an empty scenario file (just
// the header) describes the CLI's default run.
func New() *Scenario {
	return &Scenario{
		Cores:     4,
		IC:        "opb",
		PrivKB:    64,
		SharedKB:  1024,
		N:         16,
		Iters:     10,
		Size:      64,
		Words:     64,
		Workload:  "matrix",
		Floorplan: "arm11",
		Cells:     28,
		WindowMs:  1.0,
		Timescale: 100,
		Policy:    "none",
		FaultSeed: 1,
	}
}

// Load reads, parses and lints a scenario file.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Lint(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// icKinds maps the bus spellings to their emu kinds; NoC specs are handled
// separately because they carry a topology suffix.
var icKinds = map[string]emu.ICKind{
	"opb":    emu.ICBusOPB,
	"plb":    emu.ICBusPLB,
	"custom": emu.ICBusCustom,
}

// parseIC splits an interconnect spec into its kind and, for NoC kinds,
// the parsed topology.
func parseIC(spec string) (emu.ICKind, *noc.Topology, error) {
	if k, ok := icKinds[spec]; ok {
		return k, nil, nil
	}
	if len(spec) > 4 && spec[:4] == "noc:" {
		topo, err := noc.ParseTopology(spec[4:])
		if err != nil {
			return 0, nil, err
		}
		return emu.ICNoC, topo, nil
	}
	return 0, nil, fmt.Errorf("unknown interconnect %q (want opb | plb | custom | noc:pair | noc:mesh:WxH | noc:ring:N)", spec)
}

// Platform builds the emulation platform configuration. It reproduces
// cmd/thermemu's flag plumbing exactly: DefaultConfig, interconnect switch
// (NoC cores attached round-robin, shared memory on the last switch),
// frequency override, then any workload-forced operating point.
func (s *Scenario) Platform() (emu.Config, error) {
	cfg := emu.DefaultConfig(s.Cores)
	cfg.PrivKB = s.PrivKB
	cfg.SharedKB = s.SharedKB
	kind, topo, err := parseIC(s.IC)
	if err != nil {
		return emu.Config{}, fmt.Errorf("scenario: %w", err)
	}
	cfg.IC = kind
	if topo != nil {
		for c := 0; c < s.Cores; c++ {
			topo.Attach(c, c%topo.Switches)
		}
		cfg.NoC = &emu.NoCSpec{Topo: topo, Cfg: noc.DefaultConfig(), MemSwitch: topo.Switches - 1}
	}
	if s.FreqMHz > 0 {
		cfg.FreqHz = uint64(s.FreqMHz) * 1e6
	}
	if s.Workload != "" {
		if b, ok := workloads.Lookup(s.Workload); ok && b.ForceFreqMHz > 0 {
			cfg.FreqHz = uint64(b.ForceFreqMHz) * 1e6
		}
	}
	cfg.Blocks = s.Blocks
	cfg.Parallel = s.Parallel
	cfg.Speculate = s.Speculate
	return cfg, nil
}

// Params returns the workload parameters the scenario carries.
func (s *Scenario) Params() workloads.Params {
	return workloads.Params{
		Cores:  s.Cores,
		PrivKB: s.PrivKB,
		N:      s.N,
		Iters:  s.Iters,
		Size:   s.Size,
		Words:  s.Words,
	}
}

// Spec builds the workload: the named corpus entry, or the inline programs
// assembled into an anonymous spec (no Go reference verifier — inline
// programs carry their own semantics). Scenario [shared] blocks are
// appended after the workload's own.
func (s *Scenario) Spec() (*workloads.Spec, error) {
	var spec *workloads.Spec
	switch {
	case s.Workload != "" && len(s.Programs) > 0:
		return nil, fmt.Errorf("scenario: both a named workload (%q) and inline programs given", s.Workload)
	case s.Workload != "":
		built, err := workloads.Build(s.Workload, s.Params())
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		// Shallow-copy so appending scenario shared blocks never mutates
		// a spec the registry's builder might share.
		c := *built
		c.Shared = append([]workloads.SharedBlock{}, built.Shared...)
		spec = &c
	case len(s.Programs) > 0:
		images, err := s.assemblePrograms()
		if err != nil {
			return nil, err
		}
		spec = &workloads.Spec{Name: s.inlineName(), Programs: images}
	default:
		return nil, fmt.Errorf("scenario: no workload: set [workload] name or add [program] sections")
	}
	for _, b := range s.Shared {
		spec.Shared = append(spec.Shared, workloads.SharedBlock{Addr: b.Addr, Data: packWords(b.Words)})
	}
	return spec, nil
}

func (s *Scenario) inlineName() string {
	if s.Name != "" {
		return "inline/" + s.Name
	}
	return "inline"
}

// assemblePrograms assembles the inline programs into one image per core.
func (s *Scenario) assemblePrograms() ([]*asm.Image, error) {
	images := make([]*asm.Image, s.Cores)
	for _, p := range s.Programs {
		im, err := asm.Assemble(p.Src)
		if err != nil {
			which := "program"
			if p.Core >= 0 {
				which = fmt.Sprintf("program %d", p.Core)
			}
			return nil, fmt.Errorf("scenario: [%s]: %w", which, err)
		}
		if p.Core < 0 {
			for i := range images {
				images[i] = im
			}
		} else {
			if p.Core >= s.Cores {
				return nil, fmt.Errorf("scenario: [program %d] targets core beyond the %d-core platform", p.Core, s.Cores)
			}
			images[p.Core] = im
		}
	}
	for i, im := range images {
		if im == nil {
			return nil, fmt.Errorf("scenario: core %d has no program (give [program] for all cores or one [program N] per core)", i)
		}
	}
	return images, nil
}

// policies maps policy names to constructors. "none" maps to nil.
var policies = map[string]func() tm.Policy{
	"none":             func() tm.Policy { return nil },
	"threshold-dfs":    func() tm.Policy { return tm.NewThresholdDFS() },
	"proportional-dfs": func() tm.Policy { return tm.NewProportionalDFS() },
}

// PolicyNames lists the accepted [tm] policy values.
func PolicyNames() []string { return []string{"none", "proportional-dfs", "threshold-dfs"} }

// floorplans maps floorplan names to the Figure 4 layouts.
var floorplans = map[string]func() *floorplan.Floorplan{
	"arm7":  floorplan.FourARM7,
	"arm11": floorplan.FourARM11,
}

// CoEmulation builds the full closed-loop configuration: platform,
// workload, thermal host, window/pipeline settings and TM policy. The
// caller owns transport/fault wiring (FaultConfig below) and run-control
// knobs (digest, checkpoints, MaxCycles).
func (s *Scenario) CoEmulation() (core.Config, error) {
	pcfg, err := s.Platform()
	if err != nil {
		return core.Config{}, err
	}
	spec, err := s.Spec()
	if err != nil {
		return core.Config{}, err
	}
	fpBuild, ok := floorplans[s.Floorplan]
	if !ok {
		return core.Config{}, fmt.Errorf("scenario: unknown floorplan %q (want arm7 | arm11)", s.Floorplan)
	}
	topt := thermal.DefaultOptions()
	if s.Workers > 0 {
		topt.Workers = s.Workers
	}
	host, err := core.NewThermalHost(fpBuild(), s.Cells, topt)
	if err != nil {
		return core.Config{}, err
	}
	mkPolicy, ok := policies[s.Policy]
	if !ok {
		return core.Config{}, fmt.Errorf("scenario: unknown policy %q (want none | threshold-dfs | proportional-dfs)", s.Policy)
	}
	return core.Config{
		Platform:         pcfg,
		Workload:         spec,
		Host:             host,
		WindowPs:         uint64(s.WindowMs * 1e9),
		ThermalTimeScale: s.Timescale,
		PipelineDepth:    s.Pipeline,
		Policy:           mkPolicy(),
	}, nil
}

// FaultConfig parses the scenario's link-fault spec (for transport-mode
// runs; the zero config means a clean link).
func (s *Scenario) FaultConfig() (etherlink.FaultConfig, error) {
	return etherlink.ParseFaultSpec(s.Fault)
}

// packWords serialises uint32s little-endian.
func packWords(vs []uint32) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return b
}
