package scenario

import (
	"reflect"
	"strings"
	"testing"

	"thermemu/internal/emu"
	"thermemu/internal/workloads"
)

// fullFile exercises every section and key of the format.
const fullFile = `thermemu-scenario v1

# A scenario exercising the whole grammar.
[scenario]
name = kitchen-sink

[platform]
cores = 2
ic = noc:ring:4
freq-mhz = 500
priv-kb = 32
shared-kb = 64
blocks = true
parallel = false

[workload]
name = fir
n = 8
iters = 3
size = 16
words = 32

[shared]
0x8000 = 0xdeadbeef 1 2 3
0x9000 = 42

[thermal]
floorplan = arm7
cells = 12
window-ms = 0.5
timescale = 50
pipeline = 2
workers = 1

[tm]
policy = threshold-dfs

[fault]
spec = drop=0.01,delay=2ms
seed = 7
`

func TestParseDefaultsMatchNew(t *testing.T) {
	s, err := Parse(Header + "\n")
	if err != nil {
		t.Fatalf("Parse(header only): %v", err)
	}
	if !reflect.DeepEqual(s, New()) {
		t.Errorf("header-only scenario = %+v, want New() = %+v", s, New())
	}
}

func TestParseFullFile(t *testing.T) {
	s, err := Parse(fullFile)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := &Scenario{
		Name:  "kitchen-sink",
		Cores: 2, IC: "noc:ring:4", FreqMHz: 500, PrivKB: 32, SharedKB: 64,
		Blocks:   true,
		Workload: "fir", N: 8, Iters: 3, Size: 16, Words: 32,
		Shared: []SharedWords{
			{Addr: 0x8000, Words: []uint32{0xdeadbeef, 1, 2, 3}},
			{Addr: 0x9000, Words: []uint32{42}},
		},
		Floorplan: "arm7", Cells: 12, WindowMs: 0.5, Timescale: 50, Pipeline: 2, Workers: 1,
		Policy: "threshold-dfs",
		Fault:  "drop=0.01,delay=2ms", FaultSeed: 7,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("Parse(fullFile) =\n%+v\nwant\n%+v", s, want)
	}
	if err := s.Lint(); err != nil {
		t.Errorf("Lint(fullFile): %v", err)
	}
}

func TestParseInlineProgram(t *testing.T) {
	src := Header + `
[platform]
cores = 2

[program]
start:
	addi r1, r0, 5   ; five
	halt
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Workload != "" {
		t.Errorf("inline scenario kept named workload %q", s.Workload)
	}
	if len(s.Programs) != 1 || s.Programs[0].Core != -1 {
		t.Fatalf("programs = %+v", s.Programs)
	}
	if !strings.Contains(s.Programs[0].Src, "addi r1, r0, 5") {
		t.Errorf("program body lost: %q", s.Programs[0].Src)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if len(spec.Programs) != 2 {
		t.Errorf("inline [program] replicated to %d cores, want 2", len(spec.Programs))
	}
}

func TestParsePerCorePrograms(t *testing.T) {
	src := Header + `
[platform]
cores = 2

[program 1]
	halt

[program 0]
	addi r1, r0, 1
	halt
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	if spec.Programs[0] == spec.Programs[1] {
		t.Errorf("per-core programs should differ")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "missing"},
		{"no header", "[platform]\ncores = 4\n", "first line"},
		{"bad version", "thermemu-scenario v2\n", "first line"},
		{"unknown section", Header + "\n[nope]\n", "unknown section"},
		{"duplicate section", Header + "\n[platform]\ncores = 2\n[platform]\n", "duplicate section"},
		{"unknown key", Header + "\n[platform]\nspeed = 9\n", "unknown key"},
		{"duplicate key", Header + "\n[platform]\ncores = 2\ncores = 4\n", "duplicate key"},
		{"key outside section", Header + "\ncores = 4\n", "outside any section"},
		{"no equals", Header + "\n[platform]\ncores\n", "want key = value"},
		{"empty key", Header + "\n[platform]\n= 4\n", "empty key"},
		{"missing value", Header + "\n[platform]\ncores =\n", "no value"},
		{"bad int", Header + "\n[platform]\ncores = many\n", "cores"},
		{"int overflow", Header + "\n[platform]\ncores = 99999999999999\n", "cores"},
		{"bad bool", Header + "\n[platform]\nblocks = maybe\n", "boolean"},
		{"bad float", Header + "\n[thermal]\nwindow-ms = soon\n", "window-ms"},
		{"inf float", Header + "\n[thermal]\nwindow-ms = 1e999\n", "window-ms"},
		{"unclosed section", Header + "\n[platform\n", "malformed section"},
		{"bad program index", Header + "\n[program x]\n", "malformed program"},
		{"negative program index", Header + "\n[program -1]\n", "malformed program"},
		{"empty program", Header + "\n[program]\n\n[tm]\npolicy = none\n", "empty"},
		{"empty trailing program", Header + "\n[program 0]\n", "empty"},
		{"duplicate program", Header + "\n[program]\nhalt\n[program]\nhalt\n", "duplicate [program]"},
		{"duplicate program N", Header + "\n[program 1]\nhalt\n[program 1]\nhalt\n", "duplicate [program 1]"},
		{"mixed program forms", Header + "\n[program]\nhalt\n[program 0]\nhalt\n", "mix"},
		{"program and workload", Header + "\n[workload]\nname = matrix\n[program]\nhalt\n", "both"},
		{"bad shared addr", Header + "\n[shared]\nzz = 1\n", "address"},
		{"duplicate shared addr", Header + "\n[shared]\n0x10 = 1\n16 = 2\n", "duplicate [shared]"},
		{"shared no words", Header + "\n[shared]\n0x10 =\n", "no words"},
		{"bad shared word", Header + "\n[shared]\n0x10 = 1 x 3\n", "word 1"},
		{"shared word overflow", Header + "\n[shared]\n0x10 = 0x1ffffffff\n", "word 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRenderRoundTrip(t *testing.T) {
	for _, src := range []string{
		Header + "\n",
		fullFile,
		Header + "\n[platform]\ncores = 3\n[program]\n\t; spin\nhalt\n",
		Header + "\n[program 0]\nhalt\n[program 2]\nhalt # not a comment inside a program\n",
		Header + "\n[fault]\nseed = 99\n",
		Header + "\n[scenario]\ndigest = true\n",
		Header + "\n[scenario]\nname = pinned\ndigest = true\n[fault]\nspec = drop=0.01\n",
	} {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v\n%s", err, src)
		}
		s2, err := Parse(s1.Render())
		if err != nil {
			t.Fatalf("reparse of render: %v\n%s", err, s1.Render())
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("round trip changed the scenario:\nfirst  %+v\nsecond %+v\nrender:\n%s", s1, s2, s1.Render())
		}
	}
}

// TestWarnings covers the non-fatal lint tier: a chaos run with thermal
// management off and no digest leaves no evidence the faulty link stayed
// transparent, so the linter flags it — and stays quiet once any evidence
// channel (digest or a policy whose decisions would diverge) is on.
func TestWarnings(t *testing.T) {
	base := func() *Scenario {
		s := New()
		s.Fault = "drop=0.01,dup=0.005"
		return s
	}
	s := base()
	ws := s.Warnings()
	if len(ws) != 1 || !strings.Contains(ws[0], "digest") {
		t.Fatalf("fault+no-tm+no-digest warnings = %q, want the evidence warning", ws)
	}
	if err := s.Lint(); err != nil {
		t.Fatalf("a warning-only scenario must still lint clean: %v", err)
	}

	s = base()
	s.Digest = true
	if ws := s.Warnings(); len(ws) != 0 {
		t.Errorf("digest on: unexpected warnings %q", ws)
	}
	s = base()
	s.Policy = "threshold-dfs"
	if ws := s.Warnings(); len(ws) != 0 {
		t.Errorf("policy on: unexpected warnings %q", ws)
	}
	s = New() // no fault spec at all
	if ws := s.Warnings(); len(ws) != 0 {
		t.Errorf("no fault: unexpected warnings %q", ws)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Scenario)
		want string
	}{
		{"no cores", func(s *Scenario) { s.Cores = 0 }, "cores"},
		{"bad ic", func(s *Scenario) { s.IC = "hyperbus" }, "interconnect"},
		{"negative freq", func(s *Scenario) { s.FreqMHz = -1 }, "freq-mhz"},
		{"no priv", func(s *Scenario) { s.PrivKB = 0 }, "priv-kb"},
		{"no shared", func(s *Scenario) { s.SharedKB = 0 }, "shared-kb"},
		{"bad workload", func(s *Scenario) { s.Workload = "fibonacci" }, "unknown workload"},
		{"bad floorplan", func(s *Scenario) { s.Floorplan = "x86" }, "floorplan"},
		{"no cells", func(s *Scenario) { s.Cells = 0 }, "cells"},
		{"zero window", func(s *Scenario) { s.WindowMs = 0 }, "window-ms"},
		{"zero timescale", func(s *Scenario) { s.Timescale = 0 }, "timescale"},
		{"negative pipeline", func(s *Scenario) { s.Pipeline = -1 }, "pipeline"},
		{"negative workers", func(s *Scenario) { s.Workers = -2 }, "workers"},
		{"bad policy", func(s *Scenario) { s.Policy = "cryo" }, "policy"},
		{"bad fault", func(s *Scenario) { s.Fault = "drop=2" }, "fault"},
		{"workload params", func(s *Scenario) { s.Workload = "fir"; s.Words = 30 }, "divide evenly"},
		{"pipeline min cores", func(s *Scenario) { s.Workload = "pipeline"; s.Cores = 1 }, "at least 2"},
		{"unaligned shared", func(s *Scenario) {
			s.Shared = []SharedWords{{Addr: 0x8002, Words: []uint32{1}}}
		}, "word-aligned"},
		{"shared outside memory", func(s *Scenario) {
			s.SharedKB = 32
			s.Shared = []SharedWords{{Addr: 0x8000, Words: []uint32{1}}}
		}, "outside"},
		{"shared overlaps workload", func(s *Scenario) {
			// The fir workload preloads its input stream; collide with it.
			s.Workload = "fir"
			s.Shared = []SharedWords{{Addr: workloads.FIRInBase, Words: []uint32{1, 2}}}
		}, "overlap"},
		{"shared blocks overlap each other", func(s *Scenario) {
			s.Shared = []SharedWords{
				{Addr: 0x8000, Words: []uint32{1, 2, 3}},
				{Addr: 0x8008, Words: []uint32{4}},
			}
		}, "overlap"},
		{"program beyond priv memory", func(s *Scenario) {
			s.PrivKB = 1
		}, "private memory"},
		{"inline core out of range", func(s *Scenario) {
			s.Workload = ""
			s.Programs = []Program{{Core: 7, Src: "halt"}}
		}, "beyond"},
		{"inline core missing", func(s *Scenario) {
			s.Workload = ""
			s.Programs = []Program{{Core: 0, Src: "halt"}}
		}, "no program"},
		{"inline bad asm", func(s *Scenario) {
			s.Workload = ""
			s.Programs = []Program{{Core: -1, Src: "frobnicate r1"}}
		}, "program"},
		{"no workload at all", func(s *Scenario) { s.Workload = "" }, "no workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			tc.edit(s)
			err := s.Lint()
			if err == nil {
				t.Fatalf("Lint accepted %+v", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := New().Lint(); err != nil {
		t.Errorf("Lint rejected the default scenario: %v", err)
	}
}

func TestLintReportsMultipleProblems(t *testing.T) {
	s := New()
	s.Cores = 0
	s.Policy = "cryo"
	err := s.Lint()
	if err == nil {
		t.Fatal("Lint accepted a doubly-broken scenario")
	}
	for _, want := range []string{"cores", "policy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined lint error %q misses the %s problem", err, want)
		}
	}
}

func TestPlatformMatchesCLIPlumbing(t *testing.T) {
	s := New()
	s.Cores = 4
	s.IC = "noc:mesh:2x2"
	s.FreqMHz = 250
	cfg, err := s.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IC != emu.ICNoC || cfg.NoC == nil {
		t.Fatalf("IC = %v, NoC = %v", cfg.IC, cfg.NoC)
	}
	if cfg.NoC.MemSwitch != cfg.NoC.Topo.Switches-1 {
		t.Errorf("MemSwitch = %d, want last switch %d", cfg.NoC.MemSwitch, cfg.NoC.Topo.Switches-1)
	}
	if cfg.FreqHz != 250e6 {
		t.Errorf("FreqHz = %d, want 250 MHz", cfg.FreqHz)
	}

	// matrix-tm forces its Figure 6 operating point over any freq-mhz.
	s = New()
	s.Workload = "matrix-tm"
	s.FreqMHz = 100
	cfg, err = s.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FreqHz != 500e6 {
		t.Errorf("matrix-tm FreqHz = %d, want forced 500 MHz", cfg.FreqHz)
	}
}

func TestSpecAppendsScenarioShared(t *testing.T) {
	s := New()
	s.Shared = []SharedWords{{Addr: 0xF000, Words: []uint32{0xabcd}}}
	spec1, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	// Appending the scenario block twice must not leak into the registry's
	// spec: both builds see exactly one copy.
	n1, n2 := countAt(spec1, 0xF000), countAt(spec2, 0xF000)
	if n1 != 1 || n2 != 1 {
		t.Errorf("scenario shared block appears %d and %d times, want once each", n1, n2)
	}
}

func countAt(spec *workloads.Spec, addr uint32) int {
	n := 0
	for _, b := range spec.Shared {
		if b.Addr == addr {
			n++
		}
	}
	return n
}
