// Package sniffer implements the statistics-extraction subsystem of the
// emulation framework (Section 4 of the DAC'06 paper): HW sniffers that
// transparently monitor signals of the memory controllers and the external
// pinout of emulated components, a BRAM ring buffer where extracted
// statistics are stored, and memory-mapped control registers so software
// running on the emulated cores can de/activate sniffers at run time.
//
// Two sniffer types are provided, mirroring the paper:
//
//   - count-logging sniffers keep O(1) counters of switching activity and
//     high-level events (cache misses, bus transactions, memory accesses);
//     an effectively unlimited number can be attached without slowing the
//     emulation;
//   - event-logging sniffers exhaustively log every event into the BRAM
//     buffer, which the Ethernet dispatcher drains; when the buffer fills,
//     the congestion callback asks the VPCM to freeze the virtual clock.
package sniffer

import (
	"fmt"
	"sort"
)

// EventKind classifies a logged platform event.
type EventKind uint8

// Event kinds.
const (
	EvFetch EventKind = iota
	EvMemRead
	EvMemWrite
	EvCacheMiss
	EvBusTxn
	EvNocPacket
	EvStateChange
	EvCustom
)

// String returns the kind name.
func (k EventKind) String() string {
	names := [...]string{"fetch", "mem-read", "mem-write", "cache-miss",
		"bus-txn", "noc-packet", "state-change", "custom"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one exhaustively-logged platform event.
type Event struct {
	Cycle  uint64
	Source uint16 // index of the monitored component
	Kind   EventKind
	Addr   uint32
	Info   uint32
}

// Ring is the BRAM buffer where sniffers store extracted statistics before
// the Ethernet dispatcher sends them to the host.
type Ring struct {
	buf  []Event
	head int
	n    int
}

// NewRing creates a buffer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("sniffer: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Cap returns the buffer capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of buffered events.
func (r *Ring) Len() int { return r.n }

// Full reports whether the buffer cannot accept another event.
func (r *Ring) Full() bool { return r.n == len(r.buf) }

// Push appends an event, reporting false when the buffer is full.
func (r *Ring) Push(ev Event) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ev
	r.n++
	return true
}

// Pop removes and returns the oldest event.
func (r *Ring) Pop() (Event, bool) {
	if r.n == 0 {
		return Event{}, false
	}
	ev := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return ev, true
}

// Drain removes up to max events into out, returning the count.
func (r *Ring) Drain(out []Event) int {
	k := 0
	for k < len(out) {
		ev, ok := r.Pop()
		if !ok {
			break
		}
		out[k] = ev
		k++
	}
	return k
}

// Sniffer is the common control surface of both sniffer types, matching the
// paper's basic sniffer skeleton.
type Sniffer interface {
	Name() string
	Enabled() bool
	SetEnabled(bool)
}

// Counter is one named statistic of a count-logging sniffer.
type Counter struct {
	Name  string
	Value uint64
}

// CountSniffer counts switching activity and high-level events. Counters
// are registered once and addressed by dense index, so the per-event cost
// is a single array increment — the property that lets the paper attach
// "practically an unlimited number" of them without slowing emulation.
type CountSniffer struct {
	name    string
	enabled bool
	values  []uint64
	names   []string
	index   map[string]int
}

// NewCountSniffer creates an enabled count-logging sniffer.
func NewCountSniffer(name string) *CountSniffer {
	return &CountSniffer{name: name, enabled: true, index: make(map[string]int)}
}

// Name implements Sniffer.
func (s *CountSniffer) Name() string { return s.name }

// Enabled implements Sniffer.
func (s *CountSniffer) Enabled() bool { return s.enabled }

// SetEnabled implements Sniffer.
func (s *CountSniffer) SetEnabled(on bool) { s.enabled = on }

// Register adds a counter and returns its dense index.
func (s *CountSniffer) Register(counter string) int {
	if i, ok := s.index[counter]; ok {
		return i
	}
	i := len(s.values)
	s.values = append(s.values, 0)
	s.names = append(s.names, counter)
	s.index[counter] = i
	return i
}

// Add increments counter i by delta (no-op while disabled).
func (s *CountSniffer) Add(i int, delta uint64) {
	if s.enabled {
		s.values[i] += delta
	}
}

// Set overwrites counter i (used for gauge-style statistics).
func (s *CountSniffer) Set(i int, v uint64) {
	if s.enabled {
		s.values[i] = v
	}
}

// Value returns the current value of counter i.
func (s *CountSniffer) Value(i int) uint64 { return s.values[i] }

// Snapshot returns all counters sorted by name.
func (s *CountSniffer) Snapshot() []Counter {
	out := make([]Counter, len(s.values))
	for i := range s.values {
		out[i] = Counter{Name: s.names[i], Value: s.values[i]}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Reset zeroes every counter.
func (s *CountSniffer) Reset() {
	for i := range s.values {
		s.values[i] = 0
	}
}

// Mode is the per-cycle execution mode an activity sniffer attributes
// cycles to. The order matches cpu.State (active, stalled, idle).
type Mode uint8

// Execution modes.
const (
	ModeActive Mode = iota
	ModeStalled
	ModeIdle
	numModes
)

// String returns the mode name.
func (m Mode) String() string {
	names := [...]string{"active", "stalled", "idle"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Activity is the count-logging sniffer that watches a core's execution
// mode for the activity-based power model. In hardware it samples the
// pipeline-stall and sleep signals once per clock; the software model
// additionally accepts whole spans, so a skip-ahead kernel that jumps a
// stall or idle region can settle the same books in one call. Accrue(m, n)
// is defined to be exactly n Tick(m) calls, which keeps span-accrued
// counters bit-identical to per-cycle logging.
type Activity struct {
	name    string
	enabled bool
	counts  [numModes]uint64
}

// NewActivity creates an enabled activity sniffer.
func NewActivity(name string) *Activity {
	return &Activity{name: name, enabled: true}
}

// Name implements Sniffer.
func (a *Activity) Name() string { return a.name }

// Enabled implements Sniffer.
func (a *Activity) Enabled() bool { return a.enabled }

// SetEnabled implements Sniffer.
func (a *Activity) SetEnabled(on bool) { a.enabled = on }

// Tick charges one cycle to mode m (no-op while disabled).
func (a *Activity) Tick(m Mode) { a.Accrue(m, 1) }

// Accrue charges cycles cycles to mode m in one step (no-op while
// disabled).
func (a *Activity) Accrue(m Mode, cycles uint64) {
	if a.enabled {
		a.counts[m] += cycles
	}
}

// Count returns the cycles charged to mode m.
func (a *Activity) Count(m Mode) uint64 { return a.counts[m] }

// Cycles returns the total cycles charged across all modes.
func (a *Activity) Cycles() uint64 {
	var t uint64
	for _, c := range a.counts {
		t += c
	}
	return t
}

// Reset zeroes every mode counter.
func (a *Activity) Reset() { a.counts = [numModes]uint64{} }

// EventSniffer exhaustively logs events into the shared BRAM ring.
type EventSniffer struct {
	name     string
	enabled  bool
	source   uint16
	ring     *Ring
	onFull   func() bool // asks the dispatcher to drain; reports success
	Logged   uint64
	Dropped  uint64
	FullHits uint64
}

// NewEventSniffer creates an enabled event-logging sniffer writing to ring
// with the given source id. onFull is invoked when the ring is full; it
// should drain the ring (e.g. by pumping the Ethernet dispatcher, possibly
// freezing the virtual clock meanwhile) and report whether space was made.
func NewEventSniffer(name string, source uint16, ring *Ring, onFull func() bool) *EventSniffer {
	return &EventSniffer{name: name, enabled: true, source: source, ring: ring, onFull: onFull}
}

// Name implements Sniffer.
func (s *EventSniffer) Name() string { return s.name }

// Enabled implements Sniffer.
func (s *EventSniffer) Enabled() bool { return s.enabled }

// SetEnabled implements Sniffer.
func (s *EventSniffer) SetEnabled(on bool) { s.enabled = on }

// Log records one event.
func (s *EventSniffer) Log(cycle uint64, kind EventKind, addr, info uint32) {
	if !s.enabled {
		return
	}
	ev := Event{Cycle: cycle, Source: s.source, Kind: kind, Addr: addr, Info: info}
	if s.ring.Push(ev) {
		s.Logged++
		return
	}
	s.FullHits++
	if s.onFull != nil && s.onFull() && s.ring.Push(ev) {
		s.Logged++
		return
	}
	s.Dropped++
}

// Hub registers every sniffer in the platform and exposes the memory-mapped
// enable/disable registers (one register per sniffer: write 0/1, read back
// the enable state).
type Hub struct {
	sniffers []Sniffer
	byName   map[string]int
}

// NewHub creates an empty sniffer registry.
func NewHub() *Hub {
	return &Hub{byName: make(map[string]int)}
}

// Register adds a sniffer and returns its control-register index.
func (h *Hub) Register(s Sniffer) int {
	if _, dup := h.byName[s.Name()]; dup {
		panic(fmt.Sprintf("sniffer: duplicate name %q", s.Name()))
	}
	i := len(h.sniffers)
	h.sniffers = append(h.sniffers, s)
	h.byName[s.Name()] = i
	return i
}

// Len returns the number of registered sniffers.
func (h *Hub) Len() int { return len(h.sniffers) }

// Get returns sniffer i.
func (h *Hub) Get(i int) Sniffer { return h.sniffers[i] }

// Lookup finds a sniffer by name.
func (h *Hub) Lookup(name string) (Sniffer, bool) {
	if i, ok := h.byName[name]; ok {
		return h.sniffers[i], true
	}
	return nil, false
}

// CtrlLoad implements the read side of the control registers.
func (h *Hub) CtrlLoad(reg uint32) uint32 {
	if int(reg) >= len(h.sniffers) {
		return 0
	}
	if h.sniffers[reg].Enabled() {
		return 1
	}
	return 0
}

// CtrlStore implements the write side of the control registers.
func (h *Hub) CtrlStore(reg uint32, v uint32) {
	if int(reg) < len(h.sniffers) {
		h.sniffers[reg].SetEnabled(v != 0)
	}
}
