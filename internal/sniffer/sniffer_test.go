package sniffer

import (
	"testing"
	"testing/quick"
)

func TestRingPushPop(t *testing.T) {
	r := NewRing(3)
	for i := uint64(0); i < 3; i++ {
		if !r.Push(Event{Cycle: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !r.Full() {
		t.Error("ring should be full")
	}
	if r.Push(Event{Cycle: 9}) {
		t.Error("push into full ring succeeded")
	}
	for i := uint64(0); i < 3; i++ {
		ev, ok := r.Pop()
		if !ok || ev.Cycle != i {
			t.Fatalf("pop %d: got %v, %v", i, ev, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	for i := uint64(0); i < 100; i++ {
		if !r.Push(Event{Cycle: i}) {
			t.Fatalf("push %d", i)
		}
		ev, _ := r.Pop()
		if ev.Cycle != i {
			t.Fatalf("wrap: got %d want %d", ev.Cycle, i)
		}
	}
}

func TestRingDrain(t *testing.T) {
	r := NewRing(8)
	for i := uint64(0); i < 5; i++ {
		r.Push(Event{Cycle: i})
	}
	buf := make([]Event, 3)
	if n := r.Drain(buf); n != 3 {
		t.Fatalf("drain = %d", n)
	}
	if buf[0].Cycle != 0 || buf[2].Cycle != 2 {
		t.Errorf("drained %v", buf)
	}
	if r.Len() != 2 {
		t.Errorf("remaining = %d", r.Len())
	}
}

// Property: a ring never loses or reorders events under random interleaved
// push/pop traffic.
func TestRingFIFOPropertyQuick(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRing(16)
		next, expect := uint64(0), uint64(0)
		for _, push := range ops {
			if push {
				if r.Push(Event{Cycle: next}) {
					next++
				}
			} else if ev, ok := r.Pop(); ok {
				if ev.Cycle != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountSniffer(t *testing.T) {
	s := NewCountSniffer("core0")
	active := s.Register("active_cycles")
	misses := s.Register("cache_misses")
	if again := s.Register("active_cycles"); again != active {
		t.Error("re-registration changed index")
	}
	s.Add(active, 10)
	s.Add(misses, 2)
	s.Add(active, 5)
	if s.Value(active) != 15 || s.Value(misses) != 2 {
		t.Errorf("values = %d, %d", s.Value(active), s.Value(misses))
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "active_cycles" || snap[0].Value != 15 {
		t.Errorf("snapshot = %v", snap)
	}
	// Disabled sniffers ignore updates (run-time deactivation via SW).
	s.SetEnabled(false)
	s.Add(active, 100)
	if s.Value(active) != 15 {
		t.Error("disabled sniffer counted")
	}
	s.SetEnabled(true)
	s.Set(misses, 7)
	if s.Value(misses) != 7 {
		t.Error("Set failed")
	}
	s.Reset()
	if s.Value(active) != 0 {
		t.Error("reset failed")
	}
}

func TestEventSnifferLogsAndDrops(t *testing.T) {
	ring := NewRing(2)
	s := NewEventSniffer("mem0", 3, ring, nil)
	s.Log(1, EvMemRead, 0x100, 0)
	s.Log(2, EvMemWrite, 0x104, 42)
	s.Log(3, EvCacheMiss, 0x108, 0) // full, no onFull: dropped
	if s.Logged != 2 || s.Dropped != 1 || s.FullHits != 1 {
		t.Errorf("logged=%d dropped=%d full=%d", s.Logged, s.Dropped, s.FullHits)
	}
	ev, _ := ring.Pop()
	if ev.Source != 3 || ev.Kind != EvMemRead || ev.Addr != 0x100 {
		t.Errorf("event = %+v", ev)
	}
}

func TestEventSnifferCongestionCallback(t *testing.T) {
	ring := NewRing(1)
	drains := 0
	s := NewEventSniffer("bus", 0, ring, func() bool {
		drains++
		// The dispatcher drains the ring (freezing the virtual clock in
		// the real platform while it does so).
		for {
			if _, ok := ring.Pop(); !ok {
				break
			}
		}
		return true
	})
	s.Log(1, EvBusTxn, 0, 0)
	s.Log(2, EvBusTxn, 0, 0) // triggers drain, then succeeds
	if drains != 1 {
		t.Errorf("drains = %d", drains)
	}
	if s.Dropped != 0 || s.Logged != 2 {
		t.Errorf("logged=%d dropped=%d", s.Logged, s.Dropped)
	}
}

func TestEventSnifferDisabled(t *testing.T) {
	ring := NewRing(4)
	s := NewEventSniffer("x", 0, ring, nil)
	s.SetEnabled(false)
	s.Log(1, EvFetch, 0, 0)
	if ring.Len() != 0 || s.Logged != 0 {
		t.Error("disabled sniffer logged")
	}
}

func TestHubControlRegisters(t *testing.T) {
	h := NewHub()
	a := NewCountSniffer("a")
	b := NewCountSniffer("b")
	ia := h.Register(a)
	ib := h.Register(b)
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	// Disable b through its memory-mapped register.
	h.CtrlStore(uint32(ib), 0)
	if b.Enabled() {
		t.Error("ctrl store did not disable")
	}
	if h.CtrlLoad(uint32(ib)) != 0 || h.CtrlLoad(uint32(ia)) != 1 {
		t.Error("ctrl load wrong")
	}
	h.CtrlStore(uint32(ib), 1)
	if !b.Enabled() {
		t.Error("ctrl store did not re-enable")
	}
	// Out-of-range registers are inert.
	h.CtrlStore(99, 0)
	if h.CtrlLoad(99) != 0 {
		t.Error("missing register should read 0")
	}
	if s, ok := h.Lookup("a"); !ok || s != a {
		t.Error("lookup failed")
	}
	if _, ok := h.Lookup("zzz"); ok {
		t.Error("phantom lookup")
	}
}

func TestHubDuplicatePanics(t *testing.T) {
	h := NewHub()
	h.Register(NewCountSniffer("dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	h.Register(NewCountSniffer("dup"))
}

func TestEventKindStrings(t *testing.T) {
	if EvCacheMiss.String() != "cache-miss" {
		t.Errorf("got %q", EvCacheMiss.String())
	}
	if EventKind(200).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestActivitySnifferAccrueEqualsTicks(t *testing.T) {
	ticked := NewActivity("a0")
	accrued := NewActivity("a1")
	spans := []struct {
		m Mode
		n uint64
	}{{ModeActive, 3}, {ModeStalled, 17}, {ModeActive, 1}, {ModeIdle, 9}}
	for _, s := range spans {
		for i := uint64(0); i < s.n; i++ {
			ticked.Tick(s.m)
		}
		accrued.Accrue(s.m, s.n)
	}
	for _, m := range []Mode{ModeActive, ModeStalled, ModeIdle} {
		if ticked.Count(m) != accrued.Count(m) {
			t.Errorf("%s: ticked %d, accrued %d", m, ticked.Count(m), accrued.Count(m))
		}
	}
	if ticked.Cycles() != 30 || accrued.Cycles() != 30 {
		t.Errorf("totals = %d, %d, want 30", ticked.Cycles(), accrued.Cycles())
	}
}

func TestActivitySnifferDisableAndReset(t *testing.T) {
	a := NewActivity("a0")
	if !a.Enabled() || a.Name() != "a0" {
		t.Fatalf("fresh sniffer: enabled=%v name=%q", a.Enabled(), a.Name())
	}
	a.Accrue(ModeStalled, 5)
	a.SetEnabled(false)
	a.Accrue(ModeStalled, 100)
	a.Tick(ModeActive)
	if a.Count(ModeStalled) != 5 || a.Count(ModeActive) != 0 {
		t.Errorf("disabled sniffer counted: %d/%d", a.Count(ModeStalled), a.Count(ModeActive))
	}
	a.SetEnabled(true)
	a.Reset()
	if a.Cycles() != 0 {
		t.Errorf("cycles after reset = %d", a.Cycles())
	}
}

func TestModeStrings(t *testing.T) {
	if ModeActive.String() != "active" || ModeStalled.String() != "stalled" || ModeIdle.String() != "idle" {
		t.Errorf("mode names: %s/%s/%s", ModeActive, ModeStalled, ModeIdle)
	}
	if Mode(9).String() != "mode(9)" {
		t.Errorf("unknown mode = %s", Mode(9))
	}
}
