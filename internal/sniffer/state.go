package sniffer

import "fmt"

// ActivityState is the checkpointable state of an Activity sniffer: one
// cycle counter per execution mode plus the enable bit.
type ActivityState struct {
	Counts  [int(numModes)]uint64
	Enabled bool
}

// SaveState captures the activity sniffer for checkpointing.
func (a *Activity) SaveState() ActivityState {
	return ActivityState{Counts: a.counts, Enabled: a.enabled}
}

// RestoreState rewinds the activity sniffer.
func (a *Activity) RestoreState(s ActivityState) {
	a.counts = s.Counts
	a.enabled = s.Enabled
}

// EventCounters is the checkpointable state of an EventSniffer (the ring it
// writes to is checkpointed separately, once, since it is shared).
type EventCounters struct {
	Logged   uint64
	Dropped  uint64
	FullHits uint64
	Enabled  bool
}

// SaveState captures the event sniffer counters for checkpointing.
func (s *EventSniffer) SaveState() EventCounters {
	return EventCounters{Logged: s.Logged, Dropped: s.Dropped, FullHits: s.FullHits, Enabled: s.enabled}
}

// RestoreState rewinds the event sniffer counters.
func (s *EventSniffer) RestoreState(c EventCounters) {
	s.Logged = c.Logged
	s.Dropped = c.Dropped
	s.FullHits = c.FullHits
	s.enabled = c.Enabled
}

// SaveState returns the buffered events oldest-first.
func (r *Ring) SaveState() []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// RestoreState replaces the buffer contents with evs (oldest-first). The
// events must fit the ring's capacity.
func (r *Ring) RestoreState(evs []Event) error {
	if len(evs) > len(r.buf) {
		return fmt.Errorf("sniffer: %d buffered events exceed ring capacity %d", len(evs), len(r.buf))
	}
	r.head = 0
	r.n = copy(r.buf, evs)
	return nil
}
