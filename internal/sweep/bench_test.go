package sweep

import (
	"runtime"
	"testing"

	"thermemu/internal/etherlink"
)

// benchWorkers measures aggregate grid throughput at a given worker-pool
// size. The canonical rows BenchmarkSweepWorkers{1,4,8} feed the benchgate
// -sweep scaling contracts: near-linear growth on multi-CPU runners, a
// bounded coordination tax on single-CPU ones.
func benchWorkers(b *testing.B, workers int) {
	points := smallGrid(b)
	windows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := RunPoints("bench", points, 0, Options{Workers: workers, StragglerAfter: -1})
		if err != nil {
			b.Fatal(err)
		}
		windows += out.Windows()
	}
	b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
}

func BenchmarkSweepWorkers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkSweepWorkers4(b *testing.B) { benchWorkers(b, 4) }
func BenchmarkSweepWorkers8(b *testing.B) { benchWorkers(b, 8) }

// warmupBenchGrid: one platform, every TM policy — a single warm-up group,
// so prefix sharing eliminates (policies-1) redundant warm-up runs.
func warmupBenchGrid(b *testing.B) []Point {
	var points []Point
	for _, pol := range []string{"none", "threshold-dfs", "proportional-dfs"} {
		s := smallScenario()
		s.Policy = pol
		s.Name = "warm/" + pol
		if err := s.Lint(); err != nil {
			b.Fatal(err)
		}
		points = append(points, Point{Index: len(points), Name: s.Name, Scenario: s})
	}
	return points
}

// warmupPrefixWindows is most of the small workload's ~63-window run: the
// regime the paper's Figure 6 sweeps live in, where every grid point repeats
// a long identical warm-up before its policies diverge.
const warmupPrefixWindows = 40

// benchWarmup measures grid wall time with and without prefix sharing on a
// single worker (wall is then proportional to emulated windows, so the
// ns/op gap is exactly the redundant warm-up work eliminated).
func benchWarmup(b *testing.B, prefix int) {
	points := warmupBenchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPoints("warm", points, prefix, Options{Workers: 1, StragglerAfter: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWarmupCold(b *testing.B)   { benchWarmup(b, 0) }
func BenchmarkSweepWarmupShared(b *testing.B) { benchWarmup(b, warmupPrefixWindows) }

// BenchmarkSweepChaos keeps a throughput row for the chaos configuration so
// regressions in the fault-healing path show up as windows/s, not just as
// test wall time.
func BenchmarkSweepChaos(b *testing.B) {
	points := smallGrid(b)
	windows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := RunPoints("chaos", points, 0, Options{
			Workers:        4,
			StragglerAfter: -1,
			Fault:          etherlink.FaultConfig{Drop: 0.02, Dup: 0.01, Reorder: 0.02, Corrupt: 0.005},
			FaultSeed:      int64(1000 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		windows += out.Windows()
	}
	b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
}
