package sweep

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"thermemu/internal/etherlink"
)

// Options tunes a sweep run.
type Options struct {
	// Workers is the in-process worker-pool size for Run (ignored by
	// Serve, where workers dial in). Default 1.
	Workers int
	// StragglerAfter is how long a dispatched point may stay in flight
	// before an idle worker re-dispatches it speculatively (work
	// stealing). 0 takes the default (2 s); negative disables stealing.
	StragglerAfter time.Duration
	// Fault, when non-zero, wraps every in-process worker link in a
	// FaultTransport (both directions) seeded with FaultSeed+workerIndex:
	// chaos soak for the dispatch protocol.
	Fault     etherlink.FaultConfig
	FaultSeed int64
	// Link tunes the reliable endpoint protocol of every session (zero
	// fields take sweep defaults: a window sized for checkpoint-carrying
	// jobs and a 60 s idle budget to cover long points).
	Link etherlink.ReliableConfig
	// Logf, when non-nil, observes dispatch events.
	Logf func(format string, args ...any)
}

// sweepLink fills the Options.Link defaults. Jobs carry warm-up
// checkpoints (megabytes chunked into ~1.5 kB frames), so the go-back-N
// resend window must span a whole job burst; the idle budget must outlast
// the slowest point a worker computes between protocol messages.
func (o *Options) sweepLink() etherlink.ReliableConfig {
	l := o.Link
	if l.Window == 0 {
		l.Window = 4096
	}
	if l.RetryTimeout == 0 {
		l.RetryTimeout = 100 * time.Millisecond
	}
	if l.MaxRetries == 0 {
		l.MaxRetries = 600
	}
	return l
}

func (o *Options) stragglerAfter() time.Duration {
	if o.StragglerAfter == 0 {
		return 2 * time.Second
	}
	return o.StragglerAfter
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Outcome is a finished sweep: every point's result in grid order plus the
// dispatch accounting.
type Outcome struct {
	Name    string
	Results []*Result
	// WallS is the whole sweep's wall time including warm-up cutting;
	// WarmupWallS is the warm-up share of it.
	WallS         float64
	WarmupWallS   float64
	WarmupGroups  int
	WarmupWindows int
	Workers       int
	// Steals counts speculative re-dispatches of straggling points,
	// Duplicates the redundant results that produced (each verified
	// digest-identical), SessionFailures the worker sessions lost to link
	// or worker death (their points were re-queued).
	Steals          int
	Duplicates      int
	SessionFailures int
}

// Windows totals the committed sampling windows across the grid.
func (o *Outcome) Windows() int {
	n := 0
	for _, r := range o.Results {
		n += r.RunSummary.Windows
	}
	return n
}

// AggregateWindowsPerS is the sweep's headline throughput: grid windows
// emulated+solved per wall second, across all workers.
func (o *Outcome) AggregateWindowsPerS() float64 {
	if o.WallS <= 0 {
		return 0
	}
	return float64(o.Windows()) / o.WallS
}

// pointState tracks one grid point through dispatch.
type pointState struct {
	point     Point
	warmupKey string
	done      bool
	result    *Result
	// assigned maps session id -> dispatch time for every in-flight copy
	// (more than one under stealing).
	assigned      map[int64]time.Time
	firstDispatch time.Time
}

// Coordinator owns a sweep's dispatch state. Sessions (one per connected
// worker) pull points from a FIFO queue; an idle session with an empty
// queue steals the oldest straggling in-flight point; a dead session's
// points return to the queue; duplicate results must be digest-identical.
type Coordinator struct {
	opt     Options
	warmups map[string][]byte

	mu          sync.Mutex
	cond        *sync.Cond
	st          []*pointState
	pending     []int // point indexes awaiting (re-)dispatch, FIFO
	doneCount   int
	failed      error
	nextSession int64
	steals      int
	dups        int
	sessFails   int
}

// NewCoordinator builds a coordinator over an expanded grid. Call
// CutWarmups before serving if the sweep shares warm-up prefixes.
func NewCoordinator(points []Point, opt Options) *Coordinator {
	c := &Coordinator{opt: opt, warmups: map[string][]byte{}}
	c.cond = sync.NewCond(&c.mu)
	for i := range points {
		c.st = append(c.st, &pointState{
			point:     points[i],
			warmupKey: points[i].WarmupKey(),
			assigned:  map[int64]time.Time{},
		})
		c.pending = append(c.pending, i)
	}
	return c
}

// CutWarmups runs each distinct platform's TM-off warm-up prefix once
// (grouped by WarmupKey, up to parallel of them concurrently) and stores
// the encoded checkpoints for dispatch. It returns the group count.
func (c *Coordinator) CutWarmups(windows, parallel int) (int, error) {
	type group struct {
		key   string
		point Point
	}
	var groups []group
	seen := map[string]bool{}
	for _, st := range c.st {
		if !seen[st.warmupKey] {
			seen[st.warmupKey] = true
			groups = append(groups, group{st.warmupKey, st.point})
		}
	}
	if parallel < 1 {
		parallel = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		sem  = make(chan struct{}, parallel)
	)
	for _, g := range groups {
		wg.Add(1)
		go func(g group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ck, err := CutWarmup(g.point.Scenario, windows)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("point %s: %w", g.point.Name, err))
				return
			}
			c.warmups[g.key] = ck
		}(g)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, fmt.Errorf("sweep: warm-up: %w", err)
	}
	c.opt.logf("sweep: cut %d warm-up prefix checkpoint(s) at window %d", len(groups), windows)
	return len(groups), nil
}

// fail aborts the sweep with the first fatal error.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed == nil {
		c.failed = err
	}
	c.cond.Broadcast()
}

// finished reports (under no lock) whether dispatch is over.
func (c *Coordinator) finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed != nil || c.doneCount == len(c.st)
}

// next blocks until a point is available for the session, the grid
// completes, or the sweep fails. It prefers the re-dispatch/fresh FIFO;
// with nothing queued it steals the longest-in-flight straggler not
// already held by this session, once the straggler threshold passes.
func (c *Coordinator) next(sid int64) (int, bool) {
	straggler := c.opt.stragglerAfter()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failed != nil || c.doneCount == len(c.st) {
			return 0, false
		}
		if len(c.pending) > 0 {
			idx := c.pending[0]
			c.pending = c.pending[1:]
			c.assignLocked(idx, sid)
			return idx, true
		}
		if straggler >= 0 {
			now := time.Now()
			best := -1
			var bestStart time.Time
			for i, st := range c.st {
				if st.done || len(st.assigned) == 0 {
					continue
				}
				if _, mine := st.assigned[sid]; mine {
					continue
				}
				if now.Sub(st.firstDispatch) < straggler {
					continue
				}
				if best < 0 || st.firstDispatch.Before(bestStart) {
					best, bestStart = i, st.firstDispatch
				}
			}
			if best >= 0 {
				c.steals++
				c.opt.logf("sweep: stealing straggler %s (in flight %v)",
					c.st[best].point.Name, time.Since(bestStart).Round(time.Millisecond))
				c.assignLocked(best, sid)
				return best, true
			}
		}
		c.cond.Wait()
	}
}

func (c *Coordinator) assignLocked(idx int, sid int64) {
	st := c.st[idx]
	now := time.Now()
	st.assigned[sid] = now
	if st.firstDispatch.IsZero() {
		st.firstDispatch = now
	}
}

// complete records one result. A duplicate (the point was stolen and both
// copies finished) must carry the same digest — the determinism contract
// holds even for the redundant run — and is then dropped.
func (c *Coordinator) complete(sid int64, m *wireMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.ID < 0 || m.ID >= len(c.st) {
		return fmt.Errorf("sweep: result for unknown point id %d from worker %s", m.ID, m.Worker)
	}
	st := c.st[m.ID]
	delete(st.assigned, sid)
	if m.Error != "" {
		// A point that cannot run is a grid configuration error, not a
		// link fault: deterministic on every worker, so the sweep fails.
		return fmt.Errorf("sweep: point %s failed on worker %s: %s", st.point.Name, m.Worker, m.Error)
	}
	if m.Result == nil {
		return fmt.Errorf("sweep: empty result for point %s from worker %s", st.point.Name, m.Worker)
	}
	if st.done {
		c.dups++
		if st.result.Digest != m.Result.Digest {
			return fmt.Errorf("sweep: point %s: duplicate result digest %s != %s — the grid is not deterministic",
				st.point.Name, m.Result.Digest, st.result.Digest)
		}
		return nil
	}
	st.done = true
	st.result = m.Result
	c.doneCount++
	c.cond.Broadcast()
	return nil
}

// release returns a dead session's in-flight points to the queue (unless
// another copy is still in flight or already done).
func (c *Coordinator) release(sid int64, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if failed {
		c.sessFails++
	}
	for i, st := range c.st {
		if _, mine := st.assigned[sid]; !mine {
			continue
		}
		delete(st.assigned, sid)
		if !st.done && len(st.assigned) == 0 {
			c.pending = append([]int{i}, c.pending...)
			c.opt.logf("sweep: re-queueing %s after its session died", st.point.Name)
		}
	}
	c.cond.Broadcast()
}

// ServeSession speaks the worker protocol over one transport until the
// grid completes or the link dies; on death its points are re-queued. It
// is safe to run one session per connected worker concurrently.
func (c *Coordinator) ServeSession(tr etherlink.Transport) error {
	// Closing the transport on exit releases a worker blocked on its next
	// message (e.g. when the sweep fails fatally): it sees the link die now
	// rather than after its full resend budget.
	defer tr.Close()
	sid := func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.nextSession++
		return c.nextSession
	}()
	ep := newEndpoint(tr, true, c.opt.sweepLink())
	sessErr := func(err error) error {
		// A clean stop or a link death after completion is a normal exit.
		clean := errors.Is(err, errPeerStopped) || c.finished()
		c.release(sid, !clean)
		if clean {
			return nil
		}
		return err
	}
	for {
		m, err := recvMsg(ep)
		if err != nil {
			return sessErr(err)
		}
		switch m.Type {
		case "ready":
			idx, ok := c.next(sid)
			if !ok {
				err := sendMsg(ep, &wireMsg{Type: "done"})
				c.release(sid, false)
				if c.failedErr() != nil {
					return c.failedErr()
				}
				return err
			}
			st := c.st[idx]
			job := &wireMsg{
				Type:     "job",
				ID:       idx,
				Name:     st.point.Name,
				Scenario: st.point.Scenario.Render(),
				Warmup:   c.warmups[st.warmupKey],
			}
			if err := sendMsg(ep, job); err != nil {
				return sessErr(err)
			}
		case "result":
			if err := c.complete(sid, m); err != nil {
				c.fail(err)
				return err
			}
		default:
			err := fmt.Errorf("sweep: unexpected %q message from worker", m.Type)
			c.fail(err)
			return err
		}
	}
}

func (c *Coordinator) failedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// wake periodically broadcasts so sessions waiting in next re-evaluate the
// straggler threshold; it stops when stop is closed.
func (c *Coordinator) wake(stop <-chan struct{}) {
	straggler := c.opt.stragglerAfter()
	if straggler < 0 {
		return
	}
	interval := straggler / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.cond.Broadcast()
		}
	}
}

// outcome assembles the final report, failing if any point never finished.
func (c *Coordinator) outcome(name string, workers int, wall, warmupWall time.Duration, warmupWindows, warmupGroups int) (*Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	o := &Outcome{
		Name:            name,
		WallS:           wall.Seconds(),
		WarmupWallS:     warmupWall.Seconds(),
		WarmupGroups:    warmupGroups,
		WarmupWindows:   warmupWindows,
		Workers:         workers,
		Steals:          c.steals,
		Duplicates:      c.dups,
		SessionFailures: c.sessFails,
	}
	var missing []string
	for _, st := range c.st {
		if !st.done {
			missing = append(missing, st.point.Name)
			continue
		}
		o.Results = append(o.Results, st.result)
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("sweep: %d point(s) never finished (every worker lost?): %v", len(missing), missing)
	}
	return o, nil
}

// Run executes a sweep with an in-process worker pool: opt.Workers
// loopback-linked workers (optionally behind chaos FaultTransports) drain
// the grid through the same session protocol distributed workers use.
func Run(spec *Spec, dir string, opt Options) (*Outcome, error) {
	points, err := spec.Expand(dir)
	if err != nil {
		return nil, err
	}
	return RunPoints(spec.Name, points, spec.WarmupWindows, opt)
}

// RunPoints is Run over an already-expanded grid.
func RunPoints(name string, points []Point, warmupWindows int, opt Options) (*Outcome, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	c := NewCoordinator(points, opt)
	start := time.Now()
	warmupGroups := 0
	var warmupWall time.Duration
	if warmupWindows > 0 {
		var err error
		if warmupGroups, err = c.CutWarmups(warmupWindows, workers); err != nil {
			return nil, err
		}
		warmupWall = time.Since(start)
	}
	stop := make(chan struct{})
	go c.wake(stop)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		devTr, coordTr := etherlink.LoopbackPair(256)
		var wtr etherlink.Transport = devTr
		if !opt.Fault.Zero() {
			seed := opt.FaultSeed
			if seed == 0 {
				seed = 1
			}
			wtr = etherlink.NewFaultTransport(devTr, seed+int64(i), opt.Fault, opt.Fault)
		}
		w := &Worker{Name: fmt.Sprintf("w%d", i), Link: opt.sweepLink(), Logf: opt.Logf}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := w.Serve(wtr); err != nil {
				opt.logf("sweep: worker %s: %v", w.Name, err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := c.ServeSession(coordTr); err != nil {
				opt.logf("sweep: session: %v", err)
			}
		}()
	}
	wg.Wait()
	close(stop)
	return c.outcome(name, workers, time.Since(start), warmupWall, warmupWindows, warmupGroups)
}

// Serve executes a sweep as a TCP coordinator: workers dial ln's address
// (cmd/sweep -worker) and each accepted connection becomes a session. It
// returns once the grid completes or fails; the listener is closed but
// established sessions finish their last exchanges on their own.
func Serve(spec *Spec, dir string, ln net.Listener, opt Options) (*Outcome, error) {
	points, err := spec.Expand(dir)
	if err != nil {
		return nil, err
	}
	c := NewCoordinator(points, opt)
	start := time.Now()
	warmupGroups := 0
	var warmupWall time.Duration
	if spec.WarmupWindows > 0 {
		parallel := opt.Workers
		if parallel < 1 {
			parallel = 1
		}
		if warmupGroups, err = c.CutWarmups(spec.WarmupWindows, parallel); err != nil {
			return nil, err
		}
		warmupWall = time.Since(start)
	}
	stop := make(chan struct{})
	go c.wake(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			opt.logf("sweep: worker connected from %s", conn.RemoteAddr())
			go func() {
				if err := c.ServeSession(etherlink.NewTCP(conn, 256)); err != nil {
					opt.logf("sweep: session %s: %v", conn.RemoteAddr(), err)
				}
			}()
		}
	}()
	// Wait for completion (or failure), then stop accepting.
	c.mu.Lock()
	for c.failed == nil && c.doneCount < len(c.st) {
		c.cond.Wait()
	}
	c.mu.Unlock()
	close(stop)
	ln.Close()
	return c.outcome(spec.Name, 0, time.Since(start), warmupWall, spec.WarmupWindows, warmupGroups)
}
