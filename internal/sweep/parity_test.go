package sweep

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"thermemu/internal/etherlink"
)

// TestWarmupResumeDigestParity is the warm-up sharing contract for TM-off
// points: resuming the shared prefix checkpoint continues the golden
// lineage, so the final digest is bit-identical to an uninterrupted serial
// run — the saved warm-up cycles are provably free.
func TestWarmupResumeDigestParity(t *testing.T) {
	s := smallScenario()
	s.Name = "tm-off"
	cold, err := RunPoint(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = 8
	ck, err := CutWarmup(s, prefix)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunPoint(s, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warmed || warm.Forked {
		t.Fatalf("lineage flags: warmed=%v forked=%v, want warmed resume", warm.Warmed, warm.Forked)
	}
	if warm.Digest != cold.Digest || warm.DigestRecords != cold.DigestRecords {
		t.Fatalf("warm resume digest %s/%d, cold %s/%d — lineage broken",
			warm.Digest, warm.DigestRecords, cold.Digest, cold.DigestRecords)
	}
	if warm.RunSummary.Windows != cold.RunSummary.Windows-prefix {
		t.Fatalf("warm run emulated %d windows, want %d (cold %d minus the %d-window prefix)",
			warm.RunSummary.Windows, cold.RunSummary.Windows-prefix, cold.RunSummary.Windows, prefix)
	}
}

// TestWarmupForkDeterminism: a point with a TM policy forks from the shared
// prefix — a fresh digest lineage — and that branch is itself fully
// deterministic.
func TestWarmupForkDeterminism(t *testing.T) {
	s := smallScenario()
	s.Policy = "threshold-dfs"
	s.Name = "tm-on"
	const prefix = 8
	ck, err := CutWarmup(s, prefix)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := RunPoint(s, ck)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := RunPoint(s, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Forked || !f1.Warmed {
		t.Fatalf("lineage flags: warmed=%v forked=%v, want a fork", f1.Warmed, f1.Forked)
	}
	if f1.Digest != f2.Digest || f1.DigestRecords != f2.DigestRecords {
		t.Fatalf("fork lineage not deterministic: %s/%d vs %s/%d",
			f1.Digest, f1.DigestRecords, f2.Digest, f2.DigestRecords)
	}
}

func TestCutWarmupErrors(t *testing.T) {
	s := smallScenario()
	if _, err := CutWarmup(s, 0); err == nil {
		t.Error("CutWarmup accepted a zero-window prefix")
	}
	if _, err := CutWarmup(s, 1_000_000); err == nil {
		t.Error("CutWarmup accepted a prefix longer than the whole workload")
	}
}

// TestSweepWarmupGridParity runs a shared-prefix sweep end to end and checks
// each point against its serial twin fed the same checkpoint bytes — and
// the TM-off point additionally against the cold serial run (the resume
// lineage makes those identical).
func TestSweepWarmupGridParity(t *testing.T) {
	const prefix = 8
	var points []Point
	for _, pol := range []string{"none", "threshold-dfs"} {
		s := smallScenario()
		s.Policy = pol
		s.Name = "base/" + pol
		if err := s.Lint(); err != nil {
			t.Fatal(err)
		}
		points = append(points, Point{Index: len(points), Name: s.Name, Scenario: s})
	}
	if points[0].WarmupKey() != points[1].WarmupKey() {
		t.Fatal("the two policies should share one warm-up group")
	}
	ck, err := CutWarmup(points[0].Scenario, prefix)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, p := range points {
		r, err := RunPoint(p.Scenario, ck)
		if err != nil {
			t.Fatal(err)
		}
		ref[p.Name] = r.Digest
	}
	coldNone, err := RunPoint(points[0].Scenario, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref["base/none"] != coldNone.Digest {
		t.Fatalf("warmed TM-off reference %s != cold serial %s", ref["base/none"], coldNone.Digest)
	}

	out, err := RunPoints("warm", points, prefix, Options{Workers: 2, StragglerAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "warmup-grid", out, ref)
	if out.WarmupGroups != 1 {
		t.Errorf("warm-up groups = %d, want 1", out.WarmupGroups)
	}
	for _, r := range out.Results {
		if !r.Warmed {
			t.Errorf("point %s did not use the shared prefix", r.Name)
		}
		if (r.Name == "base/threshold-dfs") != r.Forked {
			t.Errorf("point %s forked=%v, want fork iff the point runs a policy", r.Name, r.Forked)
		}
	}
}

// TestSweepTCPParity drives the distributed path: a TCP coordinator, two
// dialing workers, warm-up checkpoints shipped over the wire — digests must
// still match the serial references.
func TestSweepTCPParity(t *testing.T) {
	dir := t.TempDir()
	base := smallScenario()
	if err := os.WriteFile(filepath.Join(dir, "base.scn"), []byte(base.Render()), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec("thermemu-sweep v1\n[sweep]\nname = tcp\nwarmup-windows = 8\n[base]\nscenario = base.scn\n[axis policy]\nvalues = none, threshold-dfs\n")
	if err != nil {
		t.Fatal(err)
	}
	points, err := spec.Expand(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := CutWarmup(points[0].Scenario, spec.WarmupWindows)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for _, p := range points {
		r, err := RunPoint(p.Scenario, ck)
		if err != nil {
			t.Fatal(err)
		}
		ref[p.Name] = r.Digest
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go func(name string) {
			tr, err := etherlink.Dial(ln.Addr().String(), 256)
			if err != nil {
				t.Errorf("worker %s dial: %v", name, err)
				return
			}
			w := &Worker{Name: name}
			if err := w.Serve(tr); err != nil {
				t.Logf("worker %s: %v", name, err)
			}
		}("tcp-w" + string(rune('0'+i)))
	}
	out, err := Serve(spec, dir, ln, Options{StragglerAfter: -1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "tcp", out, ref)
}
