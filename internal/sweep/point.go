package sweep

import (
	"errors"
	"fmt"

	"thermemu/internal/checkpoint"
	"thermemu/internal/core"
	"thermemu/internal/golden"
	"thermemu/internal/scenario"
	"thermemu/internal/trace"
)

// Result is one grid point's outcome: the structured run summary plus the
// point's grid coordinates and its warm-up lineage.
type Result struct {
	Point int    `json:"point"`
	Name  string `json:"name"`
	trace.RunSummary
	// Warmed marks a run that started from the shared warm-up prefix
	// checkpoint; Forked additionally marks a fresh digest lineage (the
	// point runs a TM policy, so its digest is a branch off the prefix,
	// not a continuation of the TM-off run).
	Warmed bool `json:"warmed,omitempty"`
	Forked bool `json:"forked,omitempty"`
}

// RunPoint executes one grid point: the scenario is compiled through the
// same CoEmulation builder the CLI uses, with the golden digest always on.
// warmup, when non-nil, is an encoded TMCK checkpoint of the point's TM-off
// warm-up prefix: a TM-off point resumes it (continuing the golden lineage,
// so its final digest equals an uninterrupted serial run's), a point with a
// policy forks from it (fresh lineage, shared prefix cycles still saved).
func RunPoint(s *scenario.Scenario, warmup []byte) (*Result, error) {
	cfg, err := s.CoEmulation()
	if err != nil {
		return nil, err
	}
	cfg.Golden = golden.New()
	res := &Result{Name: s.Name}
	if warmup != nil {
		ck, err := checkpoint.Decode(warmup)
		if err != nil {
			return nil, fmt.Errorf("sweep: warm-up checkpoint: %w", err)
		}
		cfg.Resume = ck
		cfg.Fork = s.Policy != "none"
		res.Warmed = true
		res.Forked = cfg.Fork
	}
	windows := 0
	cfg.DiscardSamples = true
	run, err := core.Run(cfg, func(core.Sample) { windows++ })
	if err != nil {
		return nil, err
	}
	res.RunSummary = trace.NewRunSummary(cfg.Workload.Name, cfg.Host.FP, run, windows, cfg.Golden)
	return res, nil
}

// errWarmupCut aborts the warm-up prefix run once its checkpoint is cut:
// the remaining windows belong to the grid points, not the prefix.
var errWarmupCut = errors.New("sweep: warm-up prefix complete")

// CutWarmup runs the TM-off warm-up prefix of a grid point's platform for
// the given number of sampling windows and returns the encoded checkpoint
// at that boundary. The prefix runs with the digest on, so a TM-off point
// resuming it continues a real golden lineage.
func CutWarmup(s *scenario.Scenario, windows int) ([]byte, error) {
	if windows <= 0 {
		return nil, fmt.Errorf("sweep: warm-up windows must be positive, got %d", windows)
	}
	c := *s
	c.Policy = "none"
	cfg, err := c.CoEmulation()
	if err != nil {
		return nil, err
	}
	cfg.Golden = golden.New()
	cfg.DiscardSamples = true
	var cut *checkpoint.Checkpoint
	cfg.CheckpointEvery = windows
	cfg.CheckpointSink = func(ck *checkpoint.Checkpoint) error {
		if ck.Partial {
			return nil
		}
		cut = ck
		return errWarmupCut
	}
	if _, err := core.Run(cfg, nil); err != nil && !errors.Is(err, errWarmupCut) {
		return nil, fmt.Errorf("sweep: warm-up prefix: %w", err)
	}
	if cut == nil {
		return nil, fmt.Errorf("sweep: workload %q halts before the %d-window warm-up prefix ends", s.Workload, windows)
	}
	return checkpoint.Encode(cut), nil
}
