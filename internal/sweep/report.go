package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// WriteBench emits the outcome in the benchgate line format — one
// BenchmarkSweepPoint row per grid point plus a BenchmarkSweepGrid
// aggregate — so a sweep's throughput regression-gates exactly like the
// committed benchmark baselines (`benchgate -sweep NEW BASELINE`). Digest
// lines ride along as comments: the evidence and the numbers live in one
// artifact.
func (o *Outcome) WriteBench(w io.Writer) error {
	name := o.Name
	if name == "" {
		name = "grid"
	}
	for _, r := range o.Results {
		wall := r.WallS
		if wall <= 0 {
			wall = 1e-9
		}
		if _, err := fmt.Fprintf(w, "BenchmarkSweepPoint/%s 1 %.0f ns/op %.1f windows/s %.2f maxtemp-K\n",
			sanitizeBench(r.Name), wall*1e9, r.WindowsPerS, r.MaxTempK); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "BenchmarkSweepGrid/%s 1 %.0f ns/op %.1f windows/s %d workers %d maxprocs\n",
		sanitizeBench(name), o.WallS*1e9, o.AggregateWindowsPerS(), o.Workers, runtime.GOMAXPROCS(0)); err != nil {
		return err
	}
	for _, r := range o.Results {
		if _, err := fmt.Fprintf(w, "# digest %s %s over %d records\n", r.Name, r.Digest, r.DigestRecords); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeBench keeps a grid point name valid inside a benchmark row (no
// whitespace; benchgate parses up to the first space).
func sanitizeBench(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, name)
}

// WriteTable prints the human-readable sweep report.
func (o *Outcome) WriteTable(w io.Writer) error {
	rows := append([]*Result(nil), o.Results...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Point < rows[j].Point })
	nameW := len("point")
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %8s  %10s  %9s  %4s  %-16s  %s\n",
		nameW, "point", "windows", "windows/s", "max K", "dfs", "digest", "lineage")
	for _, r := range rows {
		lineage := "cold"
		switch {
		case r.Forked:
			lineage = "warm+fork"
		case r.Warmed:
			lineage = "warm"
		}
		fmt.Fprintf(w, "%-*s  %8d  %10.1f  %9.2f  %4d  %-16s  %s\n",
			nameW, r.Name, r.RunSummary.Windows, r.WindowsPerS, r.MaxTempK, r.DFSEvents, r.Digest, lineage)
	}
	fmt.Fprintf(w, "\ngrid:    %d points, %d windows in %.2fs wall -> %.1f aggregate windows/s\n",
		len(rows), o.Windows(), o.WallS, o.AggregateWindowsPerS())
	if o.WarmupWindows > 0 {
		fmt.Fprintf(w, "warm-up: %d prefix group(s) x %d windows shared via checkpoints (%.2fs wall)\n",
			o.WarmupGroups, o.WarmupWindows, o.WarmupWallS)
	}
	if o.Steals > 0 || o.Duplicates > 0 || o.SessionFailures > 0 {
		fmt.Fprintf(w, "dispatch: %d steal(s), %d duplicate result(s), %d session failure(s)\n",
			o.Steals, o.Duplicates, o.SessionFailures)
	}
	return nil
}
