// Package sweep runs design-space exploration grids: a versioned spec file
// names a base scenario and up to five axes (scenario × workload × TM
// policy × floorplan × frequency), the coordinator expands the cartesian
// grid into points, fans them out to workers over etherlink — in-process
// loopback pairs for single-machine runs, TCP transports for distributed
// ones — with work-stealing straggler re-dispatch, and merges the per-point
// results into the benchgate line format so sweeps regression-gate like
// benchmarks.
//
// Determinism is the contract: every point runs through the exact
// scenario→core.Config path cmd/thermemu uses, so a point's golden digest
// is bit-identical to the same scenario run serially, no matter which
// worker ran it, how often it was re-dispatched, or how faulty the link
// was.
//
// When the spec sets warmup-windows, the coordinator first runs each
// platform's common prefix once with TM off, cuts a TMCK checkpoint at the
// warm-up boundary, and ships it with every job: points with TM off resume
// the lineage (their digest equals the uninterrupted serial run), points
// with a policy fork from it (a what-if branch off the shared prefix),
// eliminating the redundant warm-up cycles across the grid.
package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"thermemu/internal/scenario"
)

// Header is the first non-comment line of every sweep spec file.
const Header = "thermemu-sweep v1"

// Spec is one parsed sweep grid description.
type Spec struct {
	Name string
	// WarmupWindows > 0 shares a TM-off warm-up prefix of this many
	// sampling windows across the grid via checkpoints.
	WarmupWindows int
	// Base is the base scenario file, relative to the spec file
	// ("" = the default scenario).
	Base string

	// The axes. An empty axis keeps the base scenario's value; the grid is
	// the cartesian product of the non-empty ones.
	Scenarios  []string // scenario file paths, relative to the spec file
	Workloads  []string
	Policies   []string
	Floorplans []string
	FreqsMHz   []int
}

// axisNames lists the accepted [axis ...] section names.
var axisNames = []string{"scenario", "workload", "policy", "floorplan", "freq-mhz"}

// ParseSpec reads a sweep spec from its text form, with the same strict
// stance as the scenario parser: unknown sections or keys, duplicates and
// malformed values are errors carrying their line number.
func ParseSpec(src string) (*Spec, error) {
	sp := &Spec{}
	seenSec := map[string]bool{}
	seenKey := map[string]bool{}
	section := ""
	header := false
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		line := strings.TrimSpace(raw)
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = strings.TrimSpace(line[:j])
		}
		if line == "" {
			continue
		}
		if !header {
			if line != Header {
				return nil, fmt.Errorf("line %d: not a sweep spec: first line must be %q, got %q", no, Header, line)
			}
			header = true
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: malformed section header %q", no, line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			switch {
			case name == "sweep", name == "base":
			case strings.HasPrefix(name, "axis "):
				axis := strings.TrimSpace(strings.TrimPrefix(name, "axis "))
				if !validAxis(axis) {
					return nil, fmt.Errorf("line %d: unknown axis %q (want %s)", no, axis, strings.Join(axisNames, " | "))
				}
			default:
				return nil, fmt.Errorf("line %d: unknown section [%s]", no, name)
			}
			if seenSec[name] {
				return nil, fmt.Errorf("line %d: duplicate section [%s]", no, name)
			}
			seenSec[name] = true
			section = name
			continue
		}
		if section == "" {
			return nil, fmt.Errorf("line %d: %q outside any section", no, line)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed line %q: want key = value", no, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		qual := section + "." + key
		if seenKey[qual] {
			return nil, fmt.Errorf("line %d: duplicate key %q in [%s]", no, key, section)
		}
		seenKey[qual] = true
		if val == "" {
			return nil, fmt.Errorf("line %d: key %q in [%s] has no value", no, key, section)
		}
		if err := sp.assign(section, key, val); err != nil {
			return nil, fmt.Errorf("line %d: %v", no, err)
		}
	}
	if !header {
		return nil, fmt.Errorf("empty sweep spec: missing %q header", Header)
	}
	return sp, nil
}

func validAxis(name string) bool {
	for _, a := range axisNames {
		if a == name {
			return true
		}
	}
	return false
}

func (sp *Spec) assign(section, key, val string) error {
	switch section + "." + key {
	case "sweep.name":
		sp.Name = val
	case "sweep.warmup-windows":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("sweep.warmup-windows: want a non-negative window count, got %q", val)
		}
		sp.WarmupWindows = n
	case "base.scenario":
		sp.Base = val
	case "axis scenario.values":
		sp.Scenarios = splitValues(val)
	case "axis workload.values":
		sp.Workloads = splitValues(val)
	case "axis policy.values":
		sp.Policies = splitValues(val)
	case "axis floorplan.values":
		sp.Floorplans = splitValues(val)
	case "axis freq-mhz.values":
		for _, v := range splitValues(val) {
			mhz, err := strconv.Atoi(v)
			if err != nil || mhz <= 0 {
				return fmt.Errorf("axis freq-mhz: want positive MHz values, got %q", v)
			}
			sp.FreqsMHz = append(sp.FreqsMHz, mhz)
		}
	default:
		return fmt.Errorf("unknown key %q in [%s]", key, section)
	}
	return nil
}

func splitValues(val string) []string {
	var out []string
	for _, v := range strings.Split(val, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// LoadSpec reads and parses a sweep spec file.
func LoadSpec(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	sp, err := ParseSpec(string(src))
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return sp, nil
}

// Point is one expanded grid point: a fully-described, linted scenario.
type Point struct {
	Index    int
	Name     string
	Scenario *scenario.Scenario
}

// WarmupKey groups points that share a warm-up prefix: the canonical render
// of the point's scenario with the TM policy forced off and identity fields
// cleared. Two points with equal keys run the same platform, workload and
// thermal configuration up to the first policy decision, so one TM-off
// prefix checkpoint serves them all.
func (p *Point) WarmupKey() string {
	c := *p.Scenario
	c.Name = ""
	c.Digest = false
	c.Policy = "none"
	return c.Render()
}

// Expand builds the cartesian grid. dir resolves the spec's scenario file
// paths (the spec file's directory). Every point is linted; a broken point
// reports its grid coordinates.
func (sp *Spec) Expand(dir string) ([]Point, error) {
	type basePair struct {
		label string
		s     *scenario.Scenario
	}
	var bases []basePair
	load := func(rel string) (*scenario.Scenario, error) {
		return scenario.Load(filepath.Join(dir, rel))
	}
	switch {
	case len(sp.Scenarios) > 0:
		if sp.Base != "" {
			return nil, fmt.Errorf("sweep: both [base] scenario and an [axis scenario] given")
		}
		for _, rel := range sp.Scenarios {
			s, err := load(rel)
			if err != nil {
				return nil, fmt.Errorf("sweep: axis scenario %q: %w", rel, err)
			}
			label := strings.TrimSuffix(filepath.Base(rel), filepath.Ext(rel))
			bases = append(bases, basePair{label, s})
		}
	case sp.Base != "":
		s, err := load(sp.Base)
		if err != nil {
			return nil, fmt.Errorf("sweep: base scenario %q: %w", sp.Base, err)
		}
		label := strings.TrimSuffix(filepath.Base(sp.Base), filepath.Ext(sp.Base))
		bases = append(bases, basePair{label, s})
	default:
		bases = append(bases, basePair{"default", scenario.New()})
	}

	// An empty axis contributes the base's own value, marked "" so the
	// point name omits it.
	orEmpty := func(vs []string) []string {
		if len(vs) == 0 {
			return []string{""}
		}
		return vs
	}
	freqs := sp.FreqsMHz
	if len(freqs) == 0 {
		freqs = []int{0}
	}

	var points []Point
	for _, base := range bases {
		for _, w := range orEmpty(sp.Workloads) {
			for _, fp := range orEmpty(sp.Floorplans) {
				for _, pol := range orEmpty(sp.Policies) {
					for _, mhz := range freqs {
						s := *base.s
						parts := []string{base.label}
						if w != "" {
							s.Workload = w
							s.Programs = nil
							parts = append(parts, w)
						}
						if fp != "" {
							s.Floorplan = fp
							parts = append(parts, fp)
						}
						if pol != "" {
							s.Policy = pol
							parts = append(parts, pol)
						}
						if mhz != 0 {
							s.FreqMHz = mhz
							parts = append(parts, fmt.Sprintf("%dMHz", mhz))
						}
						name := strings.Join(parts, "/")
						s.Name = name
						// A sweep's evidence is its digests: every point
						// accumulates one regardless of the base scenario.
						s.Digest = true
						if err := s.Lint(); err != nil {
							return nil, fmt.Errorf("sweep: point %s: %w", name, err)
						}
						points = append(points, Point{Index: len(points), Name: name, Scenario: &s})
					}
				}
			}
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: the grid is empty")
	}
	return points, nil
}
