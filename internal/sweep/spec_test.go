package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const specAll = `thermemu-sweep v1
# full grid over the default scenario
[sweep]
name = all-axes
warmup-windows = 8

[axis workload]
values = matrix, fir

[axis policy]
values = none, threshold-dfs

[axis freq-mhz]
values = 100, 200
`

func TestParseSpecFull(t *testing.T) {
	sp, err := ParseSpec(specAll)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "all-axes" || sp.WarmupWindows != 8 {
		t.Fatalf("header fields: %+v", sp)
	}
	if len(sp.Workloads) != 2 || sp.Workloads[1] != "fir" {
		t.Fatalf("workload axis: %v", sp.Workloads)
	}
	if len(sp.Policies) != 2 || len(sp.FreqsMHz) != 2 || sp.FreqsMHz[1] != 200 {
		t.Fatalf("axes: %+v", sp)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing-header", "[sweep]\nname = x\n", "first line must be"},
		{"empty", "\n\n", "missing"},
		{"unknown-section", "thermemu-sweep v1\n[grid]\n", "unknown section"},
		{"unknown-axis", "thermemu-sweep v1\n[axis voltage]\n", "unknown axis"},
		{"unknown-key", "thermemu-sweep v1\n[sweep]\nvolts = 3\n", "unknown key"},
		{"duplicate-section", "thermemu-sweep v1\n[sweep]\n[sweep]\n", "duplicate section"},
		{"duplicate-key", "thermemu-sweep v1\n[sweep]\nname = a\nname = b\n", "duplicate key"},
		{"orphan-line", "thermemu-sweep v1\nname = a\n", "outside any section"},
		{"bad-warmup", "thermemu-sweep v1\n[sweep]\nwarmup-windows = -3\n", "non-negative"},
		{"bad-freq", "thermemu-sweep v1\n[axis freq-mhz]\nvalues = 100, fast\n", "positive MHz"},
		{"no-value", "thermemu-sweep v1\n[sweep]\nname =\n", "has no value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseSpec = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandGrid(t *testing.T) {
	sp, err := ParseSpec(specAll)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*2*2 {
		t.Fatalf("grid size %d, want 8", len(points))
	}
	names := map[string]bool{}
	for _, p := range points {
		if names[p.Name] {
			t.Fatalf("duplicate point name %q", p.Name)
		}
		names[p.Name] = true
		if !p.Scenario.Digest {
			t.Errorf("point %s: digest not forced on", p.Name)
		}
		if p.Scenario.Name != p.Name {
			t.Errorf("point %s: scenario name %q", p.Name, p.Scenario.Name)
		}
	}
	if !names["default/fir/threshold-dfs/200MHz"] {
		t.Fatalf("expected point name missing; got %v", names)
	}
}

func TestExpandRejectsBadPoint(t *testing.T) {
	sp, err := ParseSpec("thermemu-sweep v1\n[axis workload]\nvalues = matrix, no-such-workload\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sp.Expand(".")
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("Expand = %v, want the broken point's coordinates", err)
	}
}

func TestExpandRejectsBaseAndScenarioAxis(t *testing.T) {
	sp := &Spec{Base: "a.scn", Scenarios: []string{"b.scn"}}
	if _, err := sp.Expand("."); err == nil {
		t.Fatal("Expand accepted both [base] and [axis scenario]")
	}
}

func TestExpandScenarioAxis(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []struct{ name, body string }{
		{"small.scn", "thermemu-scenario v1\n[platform]\ncores = 2\n"},
		{"big.scn", "thermemu-scenario v1\n[platform]\ncores = 8\n"},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := ParseSpec("thermemu-sweep v1\n[axis scenario]\nvalues = small.scn, big.scn\n[axis policy]\nvalues = none, threshold-dfs\n")
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("grid size %d, want 4", len(points))
	}
	if points[0].Name != "small/none" || points[0].Scenario.Cores != 2 {
		t.Fatalf("point 0: %q cores %d", points[0].Name, points[0].Scenario.Cores)
	}
	if points[3].Name != "big/threshold-dfs" || points[3].Scenario.Cores != 8 {
		t.Fatalf("point 3: %q cores %d", points[3].Name, points[3].Scenario.Cores)
	}
}

// TestWarmupKeyGroupsPolicies: points that differ only in TM policy share a
// warm-up prefix; points with different workloads or frequencies do not.
func TestWarmupKeyGroupsPolicies(t *testing.T) {
	sp, err := ParseSpec(specAll)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand(".")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]map[string]bool{} // warmup key -> set of point names
	for i := range points {
		k := points[i].WarmupKey()
		if keys[k] == nil {
			keys[k] = map[string]bool{}
		}
		keys[k][points[i].Name] = true
	}
	// 2 workloads x 2 freqs = 4 platform groups, each covering 2 policies.
	if len(keys) != 4 {
		t.Fatalf("%d warm-up groups, want 4: %v", len(keys), keys)
	}
	for k, group := range keys {
		if len(group) != 2 {
			t.Errorf("group %q has %d points, want 2 (the two policies)", k, len(group))
		}
	}
}
