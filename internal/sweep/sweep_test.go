package sweep

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"thermemu/internal/etherlink"
	"thermemu/internal/scenario"
)

// smallScenario is the test grid's base platform: the default scenario
// shrunk so a point runs in tens of milliseconds and its warm-up
// checkpoint stays well inside one go-back-N resend window.
func smallScenario() *scenario.Scenario {
	s := scenario.New()
	s.SharedKB = 64
	s.N = 12
	s.Iters = 20
	s.WindowMs = 0.05
	s.Digest = true
	return s
}

// smallGrid builds a 4-point grid by hand: two workloads x two policies on
// the small platform.
func smallGrid(t testing.TB) []Point {
	t.Helper()
	var points []Point
	for _, w := range []string{"matrix", "fir"} {
		for _, pol := range []string{"none", "threshold-dfs"} {
			s := smallScenario()
			s.Workload = w
			s.Policy = pol
			s.Name = w + "/" + pol
			if err := s.Lint(); err != nil {
				t.Fatal(err)
			}
			points = append(points, Point{Index: len(points), Name: s.Name, Scenario: s})
		}
	}
	return points
}

// serialDigests runs every point serially (the cmd/thermemu path) and
// returns name -> digest: the reference the parallel columns must match.
func serialDigests(t *testing.T, points []Point) map[string]string {
	t.Helper()
	ref := map[string]string{}
	for _, p := range points {
		r, err := RunPoint(p.Scenario, nil)
		if err != nil {
			t.Fatalf("serial %s: %v", p.Name, err)
		}
		if r.Digest == "" || r.DigestRecords == 0 {
			t.Fatalf("serial %s: no digest accumulated", p.Name)
		}
		ref[p.Name] = r.Digest
	}
	return ref
}

func checkParity(t *testing.T, column string, out *Outcome, ref map[string]string) {
	t.Helper()
	if len(out.Results) != len(ref) {
		t.Fatalf("%s: %d results, want %d", column, len(out.Results), len(ref))
	}
	for _, r := range out.Results {
		want, ok := ref[r.Name]
		if !ok {
			t.Errorf("%s: unexpected point %s", column, r.Name)
			continue
		}
		if r.Digest != want {
			t.Errorf("%s: point %s digest %s, want serial %s", column, r.Name, r.Digest, want)
		}
	}
}

// TestWireRoundTrip pushes an oversized protocol message (a fake multi-chunk
// warm-up checkpoint) through a loopback endpoint pair and checks it
// reassembles bit-identically.
func TestWireRoundTrip(t *testing.T) {
	devTr, coordTr := etherlink.LoopbackPair(256)
	link := (&Options{}).sweepLink()
	worker := newEndpoint(devTr, false, link)
	coord := newEndpoint(coordTr, true, link)
	defer devTr.Close()
	defer coordTr.Close()

	warmup := make([]byte, 4*maxChunk+123)
	for i := range warmup {
		warmup[i] = byte(i * 31)
	}
	sent := &wireMsg{Type: "job", ID: 7, Name: "p7", Scenario: "thermemu-scenario v1\n", Warmup: warmup}

	errc := make(chan error, 1)
	go func() { errc <- sendMsg(worker, sent) }()
	got, err := recvMsg(coord)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Type != "job" || got.ID != 7 || got.Name != "p7" || got.Scenario != sent.Scenario {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	if !bytes.Equal(got.Warmup, warmup) {
		t.Fatalf("round trip mangled the %d-byte warmup payload", len(warmup))
	}

	// A graceful CtrlStop mid-stream surfaces as errPeerStopped, not a frame.
	stop := &etherlink.Ctrl{Op: etherlink.CtrlStop}
	if err := worker.Send(etherlink.MsgCtrl, stop.MarshalPayload()); err != nil {
		t.Fatal(err)
	}
	if _, err := recvMsg(coord); !errors.Is(err, errPeerStopped) {
		t.Fatalf("recv after CtrlStop = %v, want errPeerStopped", err)
	}
}

// TestSweepInProcessParity is the core determinism contract: a 4-worker
// in-process sweep produces, for every point, the digest the serial
// cmd/thermemu path produces.
func TestSweepInProcessParity(t *testing.T) {
	points := smallGrid(t)
	ref := serialDigests(t, points)
	out, err := RunPoints("grid", points, 0, Options{Workers: 4, StragglerAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "workers=4", out, ref)
	if out.Windows() == 0 || out.AggregateWindowsPerS() <= 0 {
		t.Fatalf("throughput accounting: %+v", out)
	}
}

// TestSweepStealsStraggler forces work stealing: two workers, one point, a
// straggler threshold far below the point's runtime. The idle worker must
// re-dispatch the in-flight point, and any duplicate result must be
// digest-verified rather than dropped blind.
func TestSweepStealsStraggler(t *testing.T) {
	s := smallScenario()
	s.Name = "lone"
	if err := s.Lint(); err != nil {
		t.Fatal(err)
	}
	points := []Point{{Index: 0, Name: "lone", Scenario: s}}
	ref := serialDigests(t, points)
	out, err := RunPoints("steal", points, 0, Options{Workers: 2, StragglerAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "steal", out, ref)
	if out.Steals == 0 {
		t.Error("idle worker never stole the straggling point")
	}
}

// TestSweepChaosParity soaks the dispatch protocol: every worker link drops,
// duplicates, reorders and corrupts frames, and the digests still match the
// serial reference exactly.
func TestSweepChaosParity(t *testing.T) {
	points := smallGrid(t)
	ref := serialDigests(t, points)
	out, err := RunPoints("chaos", points, 0, Options{
		Workers:        4,
		StragglerAfter: -1,
		Fault:          etherlink.FaultConfig{Drop: 0.02, Dup: 0.01, Reorder: 0.02, Corrupt: 0.005},
		FaultSeed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "chaos", out, ref)
}

// TestSweepWorkerDeathRequeues kills one of two workers mid-grid (link cut
// after a fixed frame budget) and checks the dead session's points are
// re-queued and the grid still completes with serial digests.
func TestSweepWorkerDeathRequeues(t *testing.T) {
	points := smallGrid(t)
	ref := serialDigests(t, points)

	opt := Options{StragglerAfter: -1, Logf: t.Logf}
	c := NewCoordinator(points, opt)
	stop := make(chan struct{})
	go c.wake(stop)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		devTr, coordTr := etherlink.LoopbackPair(256)
		var wtr etherlink.Transport = devTr
		if i == 1 {
			// The doomed worker: its send leg dies on the frame after its
			// "ready" — i.e. while delivering its first result — so exactly
			// one computed point is stranded and must be re-queued, however
			// the scheduler interleaved the two workers.
			wtr = etherlink.NewFaultTransport(devTr, 9, etherlink.FaultConfig{CutAfter: 1}, etherlink.FaultConfig{})
		}
		w := &Worker{Name: "w" + string(rune('0'+i)), Link: opt.sweepLink()}
		wg.Add(2)
		go func(tr etherlink.Transport) {
			defer wg.Done()
			w.Serve(tr) // the doomed worker returns a link error; that's the point
		}(wtr)
		go func(tr etherlink.Transport) {
			defer wg.Done()
			c.ServeSession(tr)
		}(coordTr)
	}
	wg.Wait()
	close(stop)
	out, err := c.outcome("death", 2, time.Since(start), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, "worker-death", out, ref)
	if out.SessionFailures == 0 {
		t.Error("the cut session was not counted as a failure")
	}
}

// TestSweepPointErrorFailsFast: a point that cannot run (unknown workload
// smuggled past lint) is a grid configuration error and aborts the sweep
// rather than being retried forever.
func TestSweepPointErrorFailsFast(t *testing.T) {
	s := smallScenario()
	s.Workload = "no-such-workload"
	s.Name = "broken"
	points := []Point{{Index: 0, Name: "broken", Scenario: s}}
	_, err := RunPoints("broken", points, 0, Options{Workers: 1, StragglerAfter: -1})
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("RunPoints = %v, want the point's configuration error", err)
	}
}

// TestOutcomeBenchFormat checks the benchgate artifact round-trips through
// the same line shapes benchgate parses.
func TestOutcomeBenchFormat(t *testing.T) {
	points := smallGrid(t)[:1]
	out, err := RunPoints("fmt", points, 0, Options{Workers: 1, StragglerAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"BenchmarkSweepPoint/matrix/none 1 ", "BenchmarkSweepGrid/fmt 1 ", " windows/s", " maxprocs", "# digest matrix/none "} {
		if !strings.Contains(text, want) {
			t.Errorf("bench artifact missing %q:\n%s", want, text)
		}
	}
	var tbl bytes.Buffer
	if err := out.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "aggregate windows/s") {
		t.Errorf("table missing aggregate line:\n%s", tbl.String())
	}
}
