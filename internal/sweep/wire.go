package sweep

import (
	"encoding/json"
	"errors"
	"fmt"

	"thermemu/internal/etherlink"
)

// The coordinator-worker protocol rides MsgSweep frames over a reliable
// endpoint (go-back-N NACK/resend healing), so the job stream survives the
// same drops, duplicates, reordering and corruption the co-emulation link
// does. Messages are JSON documents chunked to the MTU; the endpoint
// delivers frames in order, so a chunk needs only a last-chunk marker.
//
// The exchange, strictly alternating per worker:
//
//	worker -> coordinator: ready {worker}
//	coordinator -> worker: job {id, name, scenario, warmup} | done {}
//	worker -> coordinator: result {id, name, result | error}, then ready
//
// A worker that dies mid-job simply never sends its result; the
// coordinator's session ends on the transport error and the job returns to
// the queue. An idle worker whose job is stolen and completed elsewhere may
// still deliver a duplicate result — the coordinator verifies the digests
// match and drops it.
type wireMsg struct {
	Type     string  `json:"type"` // ready | job | result | done
	Worker   string  `json:"worker,omitempty"`
	ID       int     `json:"id,omitempty"`
	Name     string  `json:"name,omitempty"`
	Scenario string  `json:"scenario,omitempty"` // canonical scenario render
	Warmup   []byte  `json:"warmup,omitempty"`   // encoded TMCK prefix checkpoint
	Result   *Result `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// maxChunk keeps a chunk plus its 1-byte last-marker inside MaxPayload.
const maxChunk = etherlink.MaxPayload - 1

// errPeerStopped reports a graceful CtrlStop from the peer (e.g. a
// supervisor shutting down) observed mid-conversation.
var errPeerStopped = errors.New("sweep: peer stopped")

func sendMsg(ep *etherlink.Endpoint, m *wireMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	for len(b) > maxChunk {
		if err := ep.Send(etherlink.MsgSweep, append([]byte{0}, b[:maxChunk]...)); err != nil {
			return err
		}
		b = b[maxChunk:]
	}
	return ep.Send(etherlink.MsgSweep, append([]byte{1}, b...))
}

func recvMsg(ep *etherlink.Endpoint) (*wireMsg, error) {
	var doc []byte
	for {
		f, err := ep.Recv()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case etherlink.MsgSweep:
		case etherlink.MsgCtrl:
			if c, err := etherlink.UnmarshalCtrl(f.Payload); err == nil && c.Op == etherlink.CtrlStop {
				return nil, errPeerStopped
			}
			continue
		default:
			continue // not ours (e.g. stray acks); the sweep stream is MsgSweep only
		}
		if len(f.Payload) == 0 {
			return nil, fmt.Errorf("sweep: empty protocol frame")
		}
		doc = append(doc, f.Payload[1:]...)
		if f.Payload[0] == 0 {
			continue
		}
		var m wireMsg
		if err := json.Unmarshal(doc, &m); err != nil {
			return nil, fmt.Errorf("sweep: malformed protocol message: %w", err)
		}
		return &m, nil
	}
}

// newEndpoint wires a transport into the sweep protocol endpoint. The
// coordinator is the host side, workers are devices; both run the reliable
// go-back-N protocol so the chunk stream heals under link faults.
func newEndpoint(tr etherlink.Transport, coordinator bool, link etherlink.ReliableConfig) *etherlink.Endpoint {
	local, remote := etherlink.DeviceMAC, etherlink.HostMAC
	if coordinator {
		local, remote = etherlink.HostMAC, etherlink.DeviceMAC
	}
	ep := etherlink.NewEndpoint(tr, local, remote)
	ep.EnableReliability(link)
	return ep
}
