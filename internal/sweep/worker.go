package sweep

import (
	"errors"
	"fmt"

	"thermemu/internal/etherlink"
	"thermemu/internal/scenario"
)

// Worker executes grid points for a coordinator. It is stateless between
// jobs: every job carries its full scenario (canonical render) and, when
// the sweep shares warm-up prefixes, the encoded TMCK checkpoint to resume
// or fork from — so any worker can run any point, and a re-dispatched
// point computes the same digest wherever it lands.
type Worker struct {
	Name string
	// Link tunes the reliable endpoint (zero fields take the sweep
	// defaults via Options).
	Link etherlink.ReliableConfig
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Serve pulls jobs over the transport until the coordinator sends done
// (returns nil) or the link dies (returns the error). The transport is
// closed on exit.
func (w *Worker) Serve(tr etherlink.Transport) error {
	defer tr.Close()
	link := w.Link
	if link.Window == 0 || link.RetryTimeout == 0 || link.MaxRetries == 0 {
		link = (&Options{Link: link}).sweepLink()
	}
	ep := newEndpoint(tr, false, link)
	if err := sendMsg(ep, &wireMsg{Type: "ready", Worker: w.Name}); err != nil {
		return err
	}
	for {
		m, err := recvMsg(ep)
		if err != nil {
			if errors.Is(err, errPeerStopped) {
				return nil
			}
			return err
		}
		switch m.Type {
		case "job":
			w.logf("sweep: %s running %s", w.Name, m.Name)
			reply := &wireMsg{Type: "result", Worker: w.Name, ID: m.ID, Name: m.Name}
			res, err := w.runJob(m)
			if err != nil {
				reply.Error = err.Error()
			} else {
				reply.Result = res
			}
			if err := sendMsg(ep, reply); err != nil {
				return err
			}
			if err := sendMsg(ep, &wireMsg{Type: "ready", Worker: w.Name}); err != nil {
				return err
			}
		case "done":
			w.logf("sweep: %s done", w.Name)
			return nil
		default:
			return fmt.Errorf("sweep: unexpected %q message from coordinator", m.Type)
		}
	}
}

func (w *Worker) runJob(m *wireMsg) (*Result, error) {
	s, err := scenario.Parse(m.Scenario)
	if err != nil {
		return nil, err
	}
	res, err := RunPoint(s, m.Warmup)
	if err != nil {
		return nil, err
	}
	res.Point = m.ID
	res.Name = m.Name
	return res, nil
}
