package thermal

import (
	"math"
	"testing"
)

// fuzzRects decodes up to six silicon rectangles from raw fuzz bytes. Each
// rectangle consumes four bytes interpreted in 20 µm units, so the fuzzer
// naturally produces degenerate (zero-width/height), overlapping, and
// disjoint layouts, all within a few millimetres of the origin.
func fuzzRects(data []byte) []Rect {
	const unit = 20e-6
	var rects []Rect
	for i := 0; i+4 <= len(data) && len(rects) < 6; i += 4 {
		rects = append(rects, Rect{
			X: float64(data[i]) * unit,
			Y: float64(data[i+1]) * unit,
			W: float64(data[i+2]) * unit,
			H: float64(data[i+3]) * unit,
		})
	}
	return rects
}

// FuzzNewModel feeds arbitrary cell rectangles to NewModel and requires one
// of two outcomes: a validation error, or a model whose Step stays stable
// (finite temperatures, never below ambient) under power injection. A model
// that constructs successfully but then produces NaN/Inf or sub-ambient
// temperatures is a bug in grid validation.
func FuzzNewModel(f *testing.F) {
	// Valid 2x2 grid of 1 mm cells.
	f.Add([]byte{0, 0, 50, 50, 50, 0, 50, 50, 0, 50, 50, 50, 50, 50, 50, 50})
	// Degenerate zero-width cell.
	f.Add([]byte{0, 0, 0, 50})
	// Two fully overlapping cells.
	f.Add([]byte{0, 0, 50, 50, 0, 0, 50, 50})
	// Disjoint islands.
	f.Add([]byte{0, 0, 20, 20, 200, 200, 20, 20})
	// Single valid cell.
	f.Add([]byte{10, 10, 100, 100})

	f.Fuzz(func(t *testing.T, data []byte) {
		si := fuzzRects(data)
		if len(si) == 0 {
			return
		}
		// Copper spreader: uniform grid over the silicon bounding box, the
		// same construction real callers use. If the silicon is invalid the
		// box may be degenerate too — NewModel must reject that, not crash.
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, r := range si {
			minX = math.Min(minX, r.X)
			minY = math.Min(minY, r.Y)
			maxX = math.Max(maxX, r.X+r.W)
			maxY = math.Max(maxY, r.Y+r.H)
		}
		cuN := 1
		if len(si) > 2 {
			cuN = 2
		}
		cu := UniformGrid(maxX-minX, maxY-minY, cuN, cuN)
		for i := range cu {
			cu[i].X += minX
			cu[i].Y += minY
		}

		m, err := NewModel(si, cu, DefaultOptions())
		if err != nil {
			return // rejecting bad input is a valid outcome
		}
		m.SetPower(0, 0.2)
		for i := 0; i < 5; i++ {
			m.Step(1e-4)
		}
		amb := DefaultProperties().AmbientK
		for i, v := range m.AllTemps() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("cell %d temperature is %v after Step on accepted grid %+v", i, v, si)
			}
			if v < amb-1e-9 {
				t.Fatalf("cell %d at %.12f K undershot ambient %.1f K on accepted grid %+v", i, v, amb, si)
			}
		}
	})
}
